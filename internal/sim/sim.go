// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine drives every protocol stack and network element in this
// repository. Time is virtual: an event loop pops timestamped events from
// a binary heap and advances the clock to each event's deadline. Nothing
// ever sleeps, so a multi-second emulated transfer completes in
// microseconds of wall time and every run with the same seed is
// bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp, measured as a duration since the start of
// the simulation. The zero Time is the simulation epoch.
type Time time.Duration

// Duration converts t to a time.Duration since the simulation epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds since the epoch.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Add returns t shifted forward by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

func (t Time) String() string { return time.Duration(t).String() }

// Never is a sentinel deadline meaning "no deadline armed".
const Never = Time(math.MaxInt64)

// Event is a unit of scheduled work.
type Event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among events with equal deadlines
	fn   func()
	dead bool // cancelled
	idx  int  // heap index, -1 when popped
}

// At reports the deadline of the event.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from running. Cancelling an already-executed
// or already-cancelled event is a no-op.
func (e *Event) Cancel() { e.dead = true }

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e.dead }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Clock is the simulation event loop. It is not safe for concurrent use;
// the whole simulation is single-threaded by design (determinism).
type Clock struct {
	now     Time
	heap    eventHeap
	seq     uint64
	running bool
	stopped bool
	// Processed counts executed (non-cancelled) events, for tests and
	// runaway detection.
	Processed uint64
	// Limit aborts Run with an error when more than Limit events execute.
	// Zero means no limit.
	Limit uint64
}

// NewClock returns a Clock at the simulation epoch.
func NewClock() *Clock { return &Clock{} }

// Now reports the current virtual time.
func (c *Clock) Now() Time { return c.now }

// At schedules fn to run at the absolute virtual time at. Scheduling in
// the past (at < Now) is an error in the caller; the event is clamped to
// run "now" to keep the loop monotonic.
func (c *Clock) At(at Time, fn func()) *Event {
	if at < c.now {
		at = c.now
	}
	e := &Event{at: at, seq: c.seq, fn: fn}
	c.seq++
	heap.Push(&c.heap, e)
	return e
}

// After schedules fn to run d after the current time.
func (c *Clock) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return c.At(c.now.Add(d), fn)
}

// Stop makes Run return after the currently executing event finishes.
func (c *Clock) Stop() { c.stopped = true }

// Pending reports the number of scheduled (possibly cancelled) events.
func (c *Clock) Pending() int { return len(c.heap) }

// NextDeadline reports the deadline of the earliest live event, or Never.
func (c *Clock) NextDeadline() Time {
	for len(c.heap) > 0 {
		if c.heap[0].dead {
			heap.Pop(&c.heap)
			continue
		}
		return c.heap[0].at
	}
	return Never
}

// Run executes events in deadline order until the heap drains, Stop is
// called, or the event limit is exceeded.
func (c *Clock) Run() error {
	if c.running {
		return fmt.Errorf("sim: Run re-entered")
	}
	c.running = true
	c.stopped = false
	defer func() { c.running = false }()
	for len(c.heap) > 0 && !c.stopped {
		e := heap.Pop(&c.heap).(*Event)
		if e.dead {
			continue
		}
		if e.at < c.now {
			return fmt.Errorf("sim: time went backwards: %v -> %v", c.now, e.at)
		}
		c.now = e.at
		c.Processed++
		if c.Limit > 0 && c.Processed > c.Limit {
			return fmt.Errorf("sim: event limit %d exceeded at t=%v", c.Limit, c.now)
		}
		e.fn()
	}
	return nil
}

// RunUntil executes events with deadlines <= deadline, then advances the
// clock to exactly deadline. It returns any Run error.
func (c *Clock) RunUntil(deadline Time) error {
	if c.running {
		return fmt.Errorf("sim: RunUntil re-entered")
	}
	c.running = true
	c.stopped = false
	defer func() { c.running = false }()
	for len(c.heap) > 0 && !c.stopped {
		if c.heap[0].dead {
			heap.Pop(&c.heap)
			continue
		}
		if c.heap[0].at > deadline {
			break
		}
		e := heap.Pop(&c.heap).(*Event)
		c.now = e.at
		c.Processed++
		if c.Limit > 0 && c.Processed > c.Limit {
			return fmt.Errorf("sim: event limit %d exceeded at t=%v", c.Limit, c.now)
		}
		e.fn()
	}
	if c.now < deadline {
		c.now = deadline
	}
	return nil
}

// Timer is a re-armable single-shot timer bound to a Clock, analogous to
// time.Timer but virtual. The zero value is unusable; use NewTimer.
type Timer struct {
	clock *Clock
	ev    *Event
	fn    func()
}

// NewTimer returns an unarmed timer that runs fn when it fires.
func NewTimer(c *Clock, fn func()) *Timer {
	return &Timer{clock: c, fn: fn}
}

// Reset (re)arms the timer to fire at absolute time at, replacing any
// previously armed deadline.
func (t *Timer) Reset(at Time) {
	t.Stop()
	t.ev = t.clock.At(at, t.fire)
}

// ResetAfter (re)arms the timer to fire d from now.
func (t *Timer) ResetAfter(d time.Duration) { t.Reset(t.clock.Now().Add(d)) }

func (t *Timer) fire() {
	t.ev = nil
	t.fn()
}

// Stop disarms the timer. It reports whether a pending firing was
// prevented.
func (t *Timer) Stop() bool {
	if t.ev == nil {
		return false
	}
	t.ev.Cancel()
	t.ev = nil
	return true
}

// Armed reports whether the timer currently has a pending deadline.
func (t *Timer) Armed() bool { return t.ev != nil }

// Deadline reports the pending deadline, or Never when unarmed.
func (t *Timer) Deadline() Time {
	if t.ev == nil {
		return Never
	}
	return t.ev.at
}
