#!/bin/sh
# check.sh — the pre-commit gate: formatting, vet, the full test
# suite, and a race-enabled pass over the fast (internal) packages.
# Run it as `scripts/check.sh` or `make check` from the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== mpq-vet"
go run ./cmd/mpq-vet ./...

# The escape gate replays `go build -gcflags=-m` and verifies every
# //mpq:noescape function compiles allocation-free. It exits 0 but
# prints a loud SKIPPED line if the toolchain output is unparseable —
# grep for it so a silent skip cannot masquerade as a pass.
echo "== mpq-escape"
go run ./cmd/mpq-escape ./...

echo "== doclint"
go run ./scripts/doclint.go

# Optional linters: run when present on PATH, skip (loudly) when not.
# CI installs pinned versions; local sandboxes without network access
# still get the full first-party gate above.
if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck"
    staticcheck ./...
else
    echo "== staticcheck (skipped: not installed)"
fi
if command -v govulncheck >/dev/null 2>&1; then
    echo "== govulncheck"
    govulncheck ./...
else
    echo "== govulncheck (skipped: not installed)"
fi

echo "== go test"
go test ./...

# The root package hosts the grid benchmarks; every internal package
# is seconds-fast even under the race detector.
echo "== go test -race (internal packages)"
go test -race ./internal/...

echo "ok"
