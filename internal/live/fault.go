// Live-path fault tolerance: the per-socket health ladder.
//
// Real sockets fail in ways the emulator never did: transient kernel
// errors (ENOBUFS under load), routes vanishing mid-transfer
// (EHOSTUNREACH when an interface drops), and outright socket death
// (close/EBADF when an address is torn down). The seed driver treated
// every reader error as terminal for the whole driver; this file
// replaces that with a per-path ladder:
//
//	healthy ──transient error──▶ retry in place (counted)
//	   ▲                              │ storm / persistent error
//	   │                              ▼
//	rebound ◀──bind succeeds── degraded: exponential-backoff rebind
//	                                  │ attempts exhausted
//	                                  ▼
//	                               failed (socket abandoned)
//
// While a socket is degraded the driver marks the core paths using its
// local address potentially failed (the §4.3 PF state), so the
// scheduler steers traffic onto the surviving paths — live failover is
// the same mechanism as the paper's WiFi-loss handover, triggered by a
// socket event instead of an RTO. The driver itself dies only when
// every path socket has failed (ErrAllPathsDown) or its caller's
// until/timeout budget expires.
//
// Domain split: the ladder runs in the reader goroutine that owns the
// socket (readers may block and sleep; the run loop must not). The
// reader reports transitions to the run loop as packetIn events over
// recvCh — the same sanctioned crossing ingress datagrams use — and
// the run loop folds them into Stats, traces and PF state. The active
// socket handle crosses the other way through pathSocket's atomic conn
// pointer.
package live

import (
	"errors"
	"net"
	"net/netip"
	"syscall"
	"time"

	"mpquic/internal/netem"
	"mpquic/internal/trace"
)

// UDPConn is the socket surface the driver needs: the subset of
// *net.UDPConn it calls. Tests and chaos harnesses substitute
// fault-injecting implementations via WithSocketWrapper
// (internal/faultnet's wrapper satisfies this interface structurally,
// with no import in either direction).
type UDPConn interface {
	ReadFromUDPAddrPort(b []byte) (int, netip.AddrPort, error)
	WriteToUDPAddrPort(b []byte, addr netip.AddrPort) (int, error)
	Close() error
	SetReadBuffer(bytes int) error
	SetWriteBuffer(bytes int) error
}

// SocketWrapper intercepts every socket the driver binds — at
// construction and again on every rebind. path is the socket's path
// index (bind order). The wrapper owns closing c if it replaces it.
type SocketWrapper func(path int, c UDPConn) UDPConn

// ErrAllPathsDown is returned by Run when every path socket has walked
// its rebind ladder to the failed state: the driver has no way left to
// move packets.
var ErrAllPathsDown = errors.New("live: all path sockets failed")

const (
	// DefaultRebindMax is the default rebind-attempt budget per
	// degraded socket (see WithRebind).
	DefaultRebindMax = 8
	// DefaultRebindBackoff is the default first-attempt rebind delay;
	// attempt k waits base<<min(k, rebindBackoffCap).
	DefaultRebindBackoff = 50 * time.Millisecond
	// rebindBackoffCap caps the backoff exponent (64× base).
	rebindBackoffCap = 6
	// transientReadLimit is how many consecutive transient read errors
	// a socket may return before the reader stops believing they are
	// transient and escalates to the rebind ladder.
	transientReadLimit = 64
)

// WithRebind sets the per-socket self-healing budget: up to max rebind
// attempts per failure, the k-th after an exponential backoff of
// base<<min(k,6). max <= 0 disables rebinding: a persistent socket
// error fails the path immediately.
func WithRebind(max int, base time.Duration) Option {
	return func(d *Driver) {
		d.rebindMax = max
		if base > 0 {
			d.rebindBase = base
		}
	}
}

// WithSocketWrapper interposes w on every socket the driver binds
// (fault injection, instrumentation). Applied at bind and at every
// rebind.
func WithSocketWrapper(w SocketWrapper) Option {
	return func(d *Driver) { d.wrap = w }
}

// WithTracer attaches a tracer to the driver itself: socket health
// transitions (SocketDegraded/SocketRebound/SocketFailed) are emitted
// here, stamped with the driver's sim clock. Protocol events keep
// flowing through the endpoint's own tracer; giving both the same
// tracer interleaves them on one timeline.
//
//mpq:confined run-loop
func WithTracer(t trace.Tracer) Option {
	return func(d *Driver) { d.tracer = t }
}

// sockEventKind tags a packetIn as either a datagram (evData) or a
// socket health transition crossing from a reader to the run loop.
type sockEventKind uint8

const (
	evData       sockEventKind = iota // a received datagram
	evTransient                       // transient read error, retried in place
	evDegraded                        // persistent failure, rebind ladder entered
	evRebindFail                      // one rebind attempt failed
	evRebound                         // rebind succeeded, socket healthy again
	evFailed                          // ladder exhausted, socket abandoned
)

// isPersistentErr classifies a socket error as unrecoverable-in-place:
// the fd is gone (closed under us, scripted kill, EBADF). Everything
// else is presumed transient and retried where it occurred.
func isPersistentErr(err error) bool {
	return errors.Is(err, net.ErrClosed) || errors.Is(err, syscall.EBADF)
}

// isNoRouteErr classifies an egress error as routing loss (interface
// or route gone): the datagram is dropped like a wire would drop it,
// without indicting the socket.
func isNoRouteErr(err error) bool {
	return errors.Is(err, syscall.EHOSTUNREACH) || errors.Is(err, syscall.ENETUNREACH)
}

// closing reports whether Close has begun. Readers use it to tell a
// driver shutdown (exit quietly) from a socket dying under them (walk
// the ladder).
func (d *Driver) closing() bool {
	select {
	case <-d.closeCh:
		return true
	default:
		return false
	}
}

// postEvent hands a health transition to the run loop. Reader domain:
// blocking on the sanctioned recvCh crossing is the readers' job.
func (d *Driver) postEvent(p packetIn) {
	select {
	case d.recvCh <- p:
	case <-d.closeCh:
	}
}

// sleepInterruptible blocks the reader for the given backoff, giving
// up early (false) when the driver closes.
func (d *Driver) sleepInterruptible(delay time.Duration) bool {
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-d.closeCh:
		return false
	}
}

// bindPathSocket opens a fresh socket on the path's original address.
// Rebinding to the same ip:port preserves the path identity: core
// addresses the path by its local string, and the peer learns remotes
// per-datagram, so a successful rebind resumes the path in place.
func (d *Driver) bindPathSocket(s *pathSocket) (UDPConn, error) {
	pc, err := net.ListenUDP("udp", net.UDPAddrFromAddrPort(s.ap))
	if err != nil {
		return nil, err
	}
	if d.sockBuf > 0 {
		pc.SetReadBuffer(d.sockBuf)
		pc.SetWriteBuffer(d.sockBuf)
	}
	if d.wrap != nil {
		return d.wrap(s.idx, pc), nil
	}
	return pc, nil
}

// rebindLadder walks one socket's recovery ladder in its reader
// goroutine: close the broken conn, tell the run loop the socket is
// degraded (PF steers traffic away), then retry binding under
// exponential backoff until it works, the budget runs out, or the
// driver closes. attempts persists across invocations and resets only
// on a successful read, so a flapping socket keeps escalating instead
// of resetting its ladder on every brief recovery.
func (d *Driver) rebindLadder(s *pathSocket, old UDPConn, cause error, attempts *int) (UDPConn, bool) {
	old.Close() // best-effort: the socket already failed
	d.postEvent(packetIn{s: s, kind: evDegraded, err: cause})
	for {
		if d.rebindMax <= 0 || *attempts >= d.rebindMax {
			d.postEvent(packetIn{s: s, kind: evFailed, err: cause})
			return nil, false
		}
		shift := *attempts
		if shift > rebindBackoffCap {
			shift = rebindBackoffCap
		}
		*attempts++
		if !d.sleepInterruptible(d.rebindBase << shift) {
			return nil, false
		}
		conn, err := d.bindPathSocket(s)
		if err != nil {
			d.postEvent(packetIn{s: s, kind: evRebindFail, err: err})
			continue
		}
		// Publish, then re-check closing: Close may have swept the
		// sockets between the bind and the store. Both sides may close
		// the same conn; closing twice is harmless.
		s.storeConn(conn)
		if d.closing() {
			conn.Close()
			return nil, false
		}
		d.postEvent(packetIn{s: s, kind: evRebound})
		return conn, true
	}
}

// errDetail renders an event cause for traces (nil-safe).
func errDetail(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// trace emits a driver-level event on the attached tracer, stamped
// with the current sim time.
//
//mpq:confined run-loop
func (d *Driver) trace(ev trace.Event) {
	if d.tracer == nil {
		return
	}
	ev.Time = d.clock.Now().Duration()
	d.tracer.Trace(ev)
}

// failPaths relays a local socket failure into the protocol: every
// core path using this local address goes potentially failed, so the
// scheduler steers traffic to surviving paths until (if ever) acks
// flow here again.
//
//go:noinline
func (d *Driver) failPaths(local netem.Addr) {
	if fp, ok := d.handlers[local].(interface{ FailPathsOn(netem.Addr) int }); ok {
		fp.FailPathsOn(local)
	}
}

// allSocketsFailed reports whether every path socket has walked its
// ladder to the failed state.
func (d *Driver) allSocketsFailed() bool {
	for _, failed := range d.sockFailed {
		if !failed {
			return false
		}
	}
	return len(d.sockFailed) > 0
}

// handleSockEvent folds one reader-posted health transition into
// Stats, traces and PF state. Kept out of the inliner so ingest stays
// //mpq:noescape (an inlined callee's escapes land on the call site).
//
//go:noinline
func (d *Driver) handleSockEvent(s *pathSocket, kind sockEventKind, err error) {
	switch kind {
	case evTransient:
		d.Stats.TransientReadErrs++
	case evDegraded:
		d.Stats.SocketsDegraded++
		d.trace(trace.Event{Type: trace.SocketDegraded, Path: uint8(s.idx), Detail: errDetail(err)})
		d.failPaths(s.local)
	case evRebindFail:
		d.Stats.RebindFailures++
	case evRebound:
		d.Stats.Rebinds++
		d.trace(trace.Event{Type: trace.SocketRebound, Path: uint8(s.idx), Detail: string(s.local)})
	case evFailed:
		d.trace(trace.Event{Type: trace.SocketFailed, Path: uint8(s.idx), Detail: errDetail(err)})
		d.failPaths(s.local)
		if !d.sockFailed[s.idx] {
			d.sockFailed[s.idx] = true
			d.Stats.PathsFailedLive++
		}
		if d.allSocketsFailed() {
			d.fatal = ErrAllPathsDown
		}
	}
}

// noteWriteErr classifies one egress write failure. Routing errors are
// wire loss (NoRoute). Persistent socket errors additionally climb a
// small per-socket counter; at the threshold the conn is closed, which
// wakes the blocked reader and hands recovery to its rebind ladder —
// the write side never rebinds, it only nudges. Kept out of the
// inliner so flush stays //mpq:noescape.
//
//go:noinline
func (d *Driver) noteWriteErr(s *pathSocket, err error) {
	if isNoRouteErr(err) {
		d.Stats.NoRoute++
		return
	}
	d.Stats.WriteErrors++
	if !isPersistentErr(err) {
		return
	}
	d.writeFails[s.idx]++
	if d.writeFails[s.idx] == writeFailThreshold {
		s.loadConn().Close()
		d.failPaths(s.local)
	}
}

// writeFailThreshold is how many consecutive persistent write errors
// one socket absorbs before the run loop closes it to force the
// reader's ladder.
const writeFailThreshold = 3
