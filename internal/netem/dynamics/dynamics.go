// Package dynamics scripts time-varying link behaviour over virtual
// time — the reproduction's equivalent of driving Linux netem with
// `tc qdisc change` from a Mininet experiment script.
//
// A Script is a list of timestamped Events, each applying a Change
// (rate, delay, loss, down/up) to one path of a topology. Scripts run
// on the simulation clock, so they are exactly reproducible: the same
// script and seed yield the same packet-level outcome every run.
// Recurring patterns (WiFi-fading bandwidth oscillation, periodic
// flaky-link outages) are expressed compactly with Repeat, and the
// generator functions below build the common shapes.
//
// The package also provides pluggable loss processes for
// netem.Link.SetLossModel: the memoryless Bernoulli model and a
// two-state Gilbert–Elliott bursty-loss model (see loss.go).
package dynamics

import (
	"math"
	"sort"
	"time"

	"mpquic/internal/netem"
	"mpquic/internal/sim"
)

// Change mutates one path. Nil fields leave the corresponding factor
// untouched, so a Change is a sparse delta, not a full configuration.
type Change struct {
	// RateMbps replaces the capacity of both directions, re-deriving
	// each link's queue capacity from its unchanged QueueDelay bound.
	RateMbps *float64
	// Delay replaces the one-way propagation delay.
	Delay *time.Duration
	// Loss replaces the Bernoulli random-loss probability. It has no
	// effect while a LossModel is installed on the link.
	Loss *float64
	// Down takes the path down (true) or back up (false).
	Down *bool
}

// apply pushes the change onto one link.
func (c Change) apply(l *netem.Link) {
	cfg := l.Config()
	reconf := false
	if c.RateMbps != nil {
		cfg.RateMbps = *c.RateMbps
		reconf = true
	}
	if c.Delay != nil {
		cfg.Delay = *c.Delay
		reconf = true
	}
	if c.Loss != nil {
		cfg.LossRate = *c.Loss
		reconf = true
	}
	if reconf {
		l.Reconfigure(cfg)
	}
	if c.Down != nil {
		l.SetDown(*c.Down)
	}
}

// Rate builds a capacity-only change.
func Rate(mbps float64) Change { return Change{RateMbps: &mbps} }

// Delay builds a propagation-delay-only change.
func Delay(d time.Duration) Change { return Change{Delay: &d} }

// Loss builds a Bernoulli-loss-only change.
func Loss(p float64) Change { return Change{Loss: &p} }

// Down builds a link-down (true) or link-up (false) change.
func Down(down bool) Change { return Change{Down: &down} }

// Event is one scripted change at a virtual time.
type Event struct {
	At     time.Duration
	Path   int
	Change Change
}

// Target is anything whose paths a script can mutate. Both directions
// of a path receive every change. *netem.TwoPathNet implements it.
type Target interface {
	PathLinks(path int) []*netem.Link
}

// Script is a deterministic schedule of link changes.
type Script struct {
	// Events, in non-decreasing At order (Apply sorts a copy if not).
	Events []Event
	// Repeat, when positive, re-runs the whole event list shifted by
	// one Repeat period after each pass, turning the script into a
	// recurring pattern. Zero means run once.
	Repeat time.Duration
	// Until, when positive, stops scheduling events whose absolute
	// time is >= Until (a horizon for repeating scripts).
	Until time.Duration
}

// Then appends an event and returns the extended script (builder
// style; the receiver is not mutated).
func (s Script) Then(at time.Duration, path int, c Change) Script {
	out := s
	out.Events = append(append([]Event(nil), s.Events...), Event{At: at, Path: path, Change: c})
	return out
}

// Apply schedules the script on clock against tg. Scheduling is lazy:
// only the next pending event occupies the event heap, so unbounded
// repeating scripts cost O(1) memory. Events are applied in timestamp
// order (ties in listed order); each event's change is applied to
// every link of its path, forward direction first.
func (s Script) Apply(clock *sim.Clock, tg Target) {
	if len(s.Events) == 0 {
		return
	}
	events := append([]Event(nil), s.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	var schedule func(idx int, offset time.Duration)
	schedule = func(idx int, offset time.Duration) {
		if idx == len(events) {
			if s.Repeat <= 0 {
				return
			}
			idx, offset = 0, offset+s.Repeat
		}
		ev := events[idx]
		at := ev.At + offset
		if s.Until > 0 && at >= s.Until {
			return
		}
		clock.At(sim.Time(at), func() {
			for _, l := range tg.PathLinks(ev.Path) {
				ev.Change.apply(l)
			}
			schedule(idx+1, offset)
		})
	}
	schedule(0, 0)
}

// KillAt scripts the §4.3 handover event: path goes permanently down
// at the given time.
func KillAt(path int, at time.Duration) Script {
	return Script{Events: []Event{{At: at, Path: path, Change: Down(true)}}}
}

// DegradeAt scripts a one-shot mid-transfer degradation: the change is
// applied once at the given time (e.g. the capacity collapses, or the
// loss rate jumps).
func DegradeAt(path int, at time.Duration, c Change) Script {
	return Script{Events: []Event{{At: at, Path: path, Change: c}}}
}

// Flap scripts a periodically failing link: starting at firstDown, the
// path goes down for outage, comes back, and repeats every period.
// outage must be shorter than period.
func Flap(path int, firstDown, outage, period time.Duration) Script {
	if outage >= period {
		panic("dynamics: Flap outage must be shorter than the period")
	}
	return Script{
		Events: []Event{
			{At: firstDown, Path: path, Change: Down(true)},
			{At: firstDown + outage, Path: path, Change: Down(false)},
		},
		Repeat: period,
	}
}

// OscillateSteps is the number of rate samples per oscillation period.
const OscillateSteps = 8

// OscillateRate scripts WiFi-fading-like bandwidth oscillation: the
// path's capacity follows a sinusoid around mean with the given
// relative depth (0 < depth < 1), sampled OscillateSteps times per
// period. The first sample fires at one step into the period (at t=0
// the link already runs at its configured mean).
func OscillateRate(path int, meanMbps, depth float64, period time.Duration) Script {
	if depth <= 0 || depth >= 1 {
		panic("dynamics: OscillateRate depth must be in (0,1)")
	}
	step := period / OscillateSteps
	events := make([]Event, OscillateSteps)
	for i := 1; i <= OscillateSteps; i++ {
		rate := meanMbps * (1 + depth*sinTurns(float64(i)/OscillateSteps))
		events[i-1] = Event{At: time.Duration(i) * step, Path: path, Change: Rate(rate)}
	}
	return Script{Events: events, Repeat: period}
}

// sinTurns is sin of x expressed in turns (x=1 is one full period).
func sinTurns(x float64) float64 { return math.Sin(2 * math.Pi * x) }
