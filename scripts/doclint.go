// Command doclint keeps the repo's documentation honest. It is
// stdlib-only and wired into scripts/check.sh (and thereby `make
// check` and CI). Two checks:
//
//  1. Intra-repo markdown links: every relative link target in every
//     tracked *.md file must exist on the filesystem, so renames and
//     deletions cannot silently orphan documentation.
//  2. Event-schema coverage: every trace.EventType the code defines
//     (the trace.AllEventTypes registry) must be documented in
//     OBSERVABILITY.md, so the trace vocabulary cannot grow past its
//     reference.
//
// Usage (from the repo root):
//
//	go run ./scripts/doclint.go
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"mpquic/internal/trace"
)

// linkPattern matches inline markdown links [text](target). Reference
// definitions and autolinks are out of scope: the repo's docs use
// inline links only.
var linkPattern = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// externalLink reports whether a link target points outside the
// repository (or inside the same document) and is therefore not ours
// to verify.
func externalLink(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}

// checkLinks verifies every relative link of one markdown file,
// appending a message per broken target.
func checkLinks(path string, data []byte, problems []string) []string {
	for _, m := range linkPattern.FindAllSubmatch(data, -1) {
		target := string(m[1])
		if externalLink(target) {
			continue
		}
		// Drop a trailing #fragment; only the file part is checkable.
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
			if target == "" {
				continue
			}
		}
		resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
		if _, err := os.Stat(resolved); err != nil {
			problems = append(problems, fmt.Sprintf("%s: broken link %q (%s does not exist)", path, string(m[0]), resolved))
		}
	}
	return problems
}

// markdownFiles lists every *.md file in the tree, skipping dot
// directories and testdata.
func markdownFiles(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".md") {
			out = append(out, path)
		}
		return nil
	})
	return out, err
}

func main() {
	var problems []string

	files, err := markdownFiles(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(1)
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(1)
		}
		problems = checkLinks(path, data, problems)
	}

	// Schema coverage: OBSERVABILITY.md documents every event type, as
	// a `code span` so prose mentioning a word like "timeout" cannot
	// accidentally satisfy the check.
	const schemaDoc = "OBSERVABILITY.md"
	schema, err := os.ReadFile(schemaDoc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(1)
	}
	for _, et := range trace.AllEventTypes() {
		if !strings.Contains(string(schema), "`"+string(et)+"`") {
			problems = append(problems, fmt.Sprintf("%s: event type `%s` is not documented", schemaDoc, et))
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "doclint:", p)
		}
		os.Exit(1)
	}
}
