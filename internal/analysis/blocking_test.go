package analysis_test

import (
	"testing"

	"mpquic/internal/analysis"
	"mpquic/internal/analysis/analysistest"
)

func TestBlocking(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Blocking, "blocking")
}
