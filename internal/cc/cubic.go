package cc

import (
	"math"
	"time"
)

// CUBIC constants per RFC 8312 (and the Linux/quic-go implementations
// the paper's testbed ran).
const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// Cubic implements the CUBIC congestion controller used by single-path
// TCP and QUIC in the evaluation (§4.1: "we use CUBIC congestion
// control with the two single path protocols").
type Cubic struct {
	mss int
	now func() time.Duration // virtual-time source

	cwnd     int
	ssthresh int
	maxCwnd  int

	// Cubic epoch state.
	epochStart   time.Duration // zero = no epoch
	wMax         float64       // window before the last decrease (bytes)
	k            float64       // time to reach wMax again (seconds)
	ackedInEpoch float64       // bytes, for the TCP-friendly region
	cwndTCP      float64       // Reno-friendly estimate (bytes)
}

// NewCubic builds a CUBIC controller. now supplies monotonic virtual
// time (the simulation clock).
func NewCubic(mss int, now func() time.Duration) *Cubic {
	return &Cubic{
		mss:      mss,
		now:      now,
		cwnd:     InitialWindowPackets * mss,
		ssthresh: 1 << 30,
		maxCwnd:  1 << 30,
	}
}

// SetMaxCwnd clamps the window.
func (c *Cubic) SetMaxCwnd(b int) { c.maxCwnd = b }

func (c *Cubic) Name() string           { return "cubic" }
func (c *Cubic) Cwnd() int              { return c.cwnd }
func (c *Cubic) InSlowStart() bool      { return c.cwnd < c.ssthresh }
func (c *Cubic) OnPacketSent(bytes int) {}

func (c *Cubic) OnPacketAcked(bytes int, rtt time.Duration) {
	if c.InSlowStart() {
		c.cwnd += bytes
		if c.cwnd > c.maxCwnd {
			c.cwnd = c.maxCwnd
		}
		return
	}
	now := c.now()
	if c.epochStart == 0 {
		// First ack of a new epoch (after a decrease or slow start
		// exit): anchor the cubic curve.
		c.epochStart = now
		if float64(c.cwnd) < c.wMax {
			c.k = math.Cbrt((c.wMax - float64(c.cwnd)) / float64(c.mss) / cubicC)
		} else {
			c.k = 0
			c.wMax = float64(c.cwnd)
		}
		c.ackedInEpoch = 0
		c.cwndTCP = float64(c.cwnd)
	}
	c.ackedInEpoch += float64(bytes)
	t := (now - c.epochStart).Seconds() + rtt.Seconds()
	// W_cubic(t) in bytes.
	wCubic := (cubicC*math.Pow(t-c.k, 3) + c.wMax/float64(c.mss)) * float64(c.mss)
	// TCP-friendly region: emulate Reno's growth over the epoch.
	c.cwndTCP += float64(c.mss) * float64(bytes) / c.cwndTCP
	target := wCubic
	if c.cwndTCP > target {
		target = c.cwndTCP
	}
	if target > float64(c.cwnd) {
		// Approach the target at most one MSS per cwnd/mss acks, as
		// real implementations do, by increasing proportionally.
		inc := (target - float64(c.cwnd)) / float64(c.cwnd) * float64(bytes)
		if inc > float64(bytes) {
			inc = float64(bytes) // never faster than slow start
		}
		c.cwnd += int(inc)
	}
	if c.cwnd > c.maxCwnd {
		c.cwnd = c.maxCwnd
	}
}

func (c *Cubic) OnCongestionEvent() {
	c.epochStart = 0
	w := float64(c.cwnd)
	// Fast convergence: release bandwidth faster when the new wMax is
	// below the previous one.
	if w < c.wMax {
		c.wMax = w * (1 + cubicBeta) / 2
	} else {
		c.wMax = w
	}
	c.cwnd = int(w * cubicBeta)
	if c.cwnd < MinWindowPackets*c.mss {
		c.cwnd = MinWindowPackets * c.mss
	}
	c.ssthresh = c.cwnd
}

func (c *Cubic) OnRTO() {
	c.epochStart = 0
	c.wMax = float64(c.cwnd)
	c.ssthresh = int(float64(c.cwnd) * cubicBeta)
	if c.ssthresh < MinWindowPackets*c.mss {
		c.ssthresh = MinWindowPackets * c.mss
	}
	c.cwnd = MinWindowPackets * c.mss
}
