package mptcpsim

import (
	"fmt"
	"sort"
	"time"

	"mpquic/internal/cc"
	"mpquic/internal/netem"
	"mpquic/internal/rtt"
	"mpquic/internal/sim"
	"mpquic/internal/stream"
	"mpquic/internal/tcpsim"
	"mpquic/internal/trace"
)

// Config tunes an MPTCP connection.
type Config struct {
	// RecvWindow is the connection-level receive window (16 MB in the
	// paper's setup).
	RecvWindow uint64
	// TLS enables the 2-RTT TLS 1.2 exchange on the initial subflow.
	TLS bool
	// ORP enables Opportunistic Retransmission and Penalization.
	// Ablation switch (§4.1 blames ORP for goodput loss on
	// heterogeneous paths).
	ORP bool
	// IdleTimeout aborts a silent connection.
	IdleTimeout time.Duration
	// Tracer receives lifecycle and recovery events (subflow opened,
	// handshake done, RTO fired, segments lost, PF transitions, close)
	// when non-nil. Events carry the subflow ID as the path. A tracer
	// is a pure observer: attaching one never changes a run's schedule
	// or results, and a nil tracer costs one branch per event.
	Tracer trace.Tracer
}

// DefaultConfig mirrors MPTCP v0.91 with the paper's settings.
func DefaultConfig() Config {
	return Config{RecvWindow: 16 << 20, TLS: true, ORP: true, IdleTimeout: 120 * time.Second}
}

// Stats aggregates connection counters.
type Stats struct {
	EstablishedAt time.Duration
	Reinjections  uint64
	Penalizations uint64
	RTOs          uint64
}

// dataChunk queues connection-level data for (re)injection.
type dataChunk struct {
	start, end uint64
	dataFin    bool
}

// Conn is one endpoint of an MPTCP connection.
type Conn struct {
	cfg      Config
	clock    *sim.Clock
	nw       *netem.Network
	isClient bool
	token    uint32

	locals  []netem.Addr
	remotes []netem.Addr

	subflows []*Subflow
	olia     *cc.Olia

	established bool // secure (TLS) established on subflow 0

	// Connection-level send state.
	writeOffset   uint64
	dataNxt       uint64
	finQueued     bool
	finAssigned   bool
	finAcked      bool
	dataAcked     uint64 // peer's cumulative data ack
	peerDataLimit uint64 // dataAck + window high-water mark
	reinjectQueue []dataChunk
	lastORPAt     uint64 // dataAcked value of the last ORP reinjection
	orpArmed      bool

	// Connection-level receive state.
	dataReceived stream.IntervalSet
	consumed     uint64
	lastAdvWnd   uint64 // last advertised data-level window
	dataFinRecvd bool
	dataFinSeq   uint64

	timer        *sim.Timer
	lastRecvTime time.Duration
	closed       bool
	closeErr     error

	onEstablished func()
	onData        func()
	onClosed      func(error)

	Stats Stats
}

func newConn(nw *netem.Network, cfg Config, isClient bool, token uint32, locals, remotes []netem.Addr) *Conn {
	c := &Conn{
		cfg:      cfg,
		clock:    nw.Clock(),
		nw:       nw,
		isClient: isClient,
		token:    token,
		locals:   locals,
		remotes:  remotes,
		olia:     cc.NewOlia(MSS),
	}
	c.timer = sim.NewTimer(c.clock, c.onTimer)
	c.lastRecvTime = c.now()
	return c
}

func (c *Conn) now() time.Duration { return c.clock.Now().Duration() }

// trace emits ev when tracing is enabled, stamping the current time.
func (c *Conn) trace(ev trace.Event) {
	if c.cfg.Tracer == nil {
		return
	}
	ev.Time = c.now()
	c.cfg.Tracer.Trace(ev)
}

// SampleInto appends one PathSample per subflow (creation order) to
// rec, stamped with the current simulated time. Sampling only reads
// state; attaching a sampler never changes a run's schedule or
// results.
func (c *Conn) SampleInto(rec *trace.SeriesRecorder) {
	now := c.now()
	for _, sf := range c.subflows {
		rec.Add(trace.PathSample{
			T:          now,
			Path:       sf.ID,
			Cwnd:       sf.cc.Cwnd(),
			SRTT:       sf.est.SmoothedRTT(),
			InFlight:   sf.bytesInFlight,
			BytesSent:  sf.SentBytes,
			BytesAcked: sf.cumAcked,
			SlowStart:  sf.cc.InSlowStart(),
		})
	}
}

// DialMPTCP starts a client connection: the initial subflow's 3-way
// handshake (plus TLS) runs on locals[0]→remotes[0]; additional
// subflows join — each with its own 3-way handshake — once the
// connection is established.
func DialMPTCP(nw *netem.Network, cfg Config, token uint32, locals, remotes []netem.Addr) *Conn {
	if len(locals) == 0 || len(remotes) == 0 {
		panic("mptcpsim: need at least one address pair")
	}
	c := newConn(nw, cfg, true, token, locals, remotes)
	for _, a := range locals {
		nw.Register(a, c)
	}
	sf := c.addSubflow(0, locals[0], remotes[0])
	sf.state = sfSynSent
	c.sendHandshakeSeg(sf, &tcpsim.Segment{SYN: true})
	sf.hsTimer.ResetAfter(sf.est.RTO())
	return c
}

// Listener accepts MPTCP connections, demultiplexing by token.
type Listener struct {
	nw     *netem.Network
	cfg    Config
	addrs  []netem.Addr
	conns  map[uint32]*Conn
	onConn func(*Conn)
}

// ListenMPTCP registers a server on the given addresses.
func ListenMPTCP(nw *netem.Network, cfg Config, addrs []netem.Addr) *Listener {
	l := &Listener{nw: nw, cfg: cfg, addrs: addrs, conns: make(map[uint32]*Conn)}
	for _, a := range addrs {
		nw.Register(a, l)
	}
	return l
}

// OnConnection registers the accept callback.
func (l *Listener) OnConnection(fn func(*Conn)) { l.onConn = fn }

// Conns returns accepted connections, sorted by token so the order is
// deterministic (map iteration order must not leak).
func (l *Listener) Conns() []*Conn {
	tokens := make([]uint32, 0, len(l.conns))
	for tok := range l.conns {
		tokens = append(tokens, tok)
	}
	sort.Slice(tokens, func(i, j int) bool { return tokens[i] < tokens[j] })
	out := make([]*Conn, 0, len(tokens))
	for _, tok := range tokens {
		out = append(out, l.conns[tok])
	}
	return out
}

// HandleDatagram implements netem.Handler for the listener.
func (l *Listener) HandleDatagram(dg netem.Datagram) {
	seg, ok := dg.Payload.(*tcpsim.Segment)
	if !ok {
		return
	}
	c, exists := l.conns[seg.Token]
	if !exists {
		if !seg.SYN {
			return
		}
		c = newConn(l.nw, l.cfg, false, seg.Token, l.addrs, []netem.Addr{dg.From})
		l.conns[seg.Token] = c
		if l.onConn != nil {
			l.onConn(c)
		}
	}
	c.handleSegment(dg, seg)
}

// HandleDatagram implements netem.Handler for the client side.
func (c *Conn) HandleDatagram(dg netem.Datagram) {
	seg, ok := dg.Payload.(*tcpsim.Segment)
	if !ok {
		return
	}
	c.handleSegment(dg, seg)
}

// addSubflow creates subflow state.
func (c *Conn) addSubflow(id uint8, local, remote netem.Addr) *Subflow {
	sf := &Subflow{
		conn:   c,
		ID:     id,
		Local:  local,
		Remote: remote,
		est:    rtt.New(rtt.DefaultTCP()),
		cc:     c.olia.AddPath(),
	}
	sf.cc.SetMaxCwnd(int(c.cfg.RecvWindow))
	sf.hsTimer = sim.NewTimer(c.clock, func() { c.onSubflowHsTimeout(sf) })
	c.subflows = append(c.subflows, sf)
	return sf
}

// SubflowByID returns a subflow or nil.
func (c *Conn) SubflowByID(id uint8) *Subflow {
	for _, sf := range c.subflows {
		if sf.ID == id {
			return sf
		}
	}
	return nil
}

// Subflows returns all subflows.
func (c *Conn) Subflows() []*Subflow { return c.subflows }

// Established reports whether the secure handshake completed.
func (c *Conn) Established() bool { return c.established }

// Closed reports termination.
func (c *Conn) Closed() bool { return c.closed }

// Err returns the close reason.
func (c *Conn) Err() error { return c.closeErr }

// OnEstablished registers the establishment callback.
func (c *Conn) OnEstablished(fn func()) {
	c.onEstablished = fn
	if c.established {
		fn()
	}
}

// OnData registers the data callback.
func (c *Conn) OnData(fn func()) { c.onData = fn }

// OnClosed registers the close callback.
func (c *Conn) OnClosed(fn func(error)) { c.onClosed = fn }

// --- application API (mirrors tcpsim) ---

// WriteSynthetic queues n connection-level stream bytes.
func (c *Conn) WriteSynthetic(n uint64) {
	c.writeOffset += n
	c.trySend()
}

// CloseWrite queues the DATA_FIN after all data.
func (c *Conn) CloseWrite() {
	c.finQueued = true
	c.trySend()
}

// Readable reports in-order connection-level bytes past the consumer.
func (c *Conn) Readable() uint64 {
	return c.dataReceived.FirstMissingFrom(c.consumed) - c.consumed
}

// Read consumes up to n bytes, opening the shared receive window.
// Reopening a (near-)zero window advertises it immediately on every
// established subflow, mirroring the TCP zero-window update.
func (c *Conn) Read(n uint64) uint64 {
	avail := c.Readable()
	if n > avail {
		n = avail
	}
	c.consumed += n
	if n > 0 && c.established && c.lastAdvWnd < MSS && c.advertisedWindow() >= MSS {
		for _, sf := range c.subflows {
			if sf.state == sfEstablished {
				c.sendAck(sf)
			}
		}
	}
	return n
}

// BytesReceived reports distinct data bytes received.
func (c *Conn) BytesReceived() uint64 { return c.dataReceived.Size() }

// FinReceived reports an in-order DATA_FIN.
func (c *Conn) FinReceived() bool {
	return c.dataFinRecvd && c.dataReceived.FirstMissingFrom(0) >= c.dataFinSeq
}

// Finished reports full consumption of the incoming stream.
func (c *Conn) Finished() bool { return c.FinReceived() && c.consumed == c.dataFinSeq }

func (c *Conn) closeWith(err error) {
	if c.closed {
		return
	}
	c.closed = true
	c.closeErr = err
	c.timer.Stop()
	for _, sf := range c.subflows {
		sf.hsTimer.Stop()
	}
	detail := ""
	if err != nil {
		detail = err.Error()
	}
	c.trace(trace.Event{Type: trace.ConnClosed, Detail: detail})
	if c.onClosed != nil {
		c.onClosed(err)
	}
}

var errIdle = fmt.Errorf("mptcpsim: idle timeout")
