// Package wsp implements the WSP (Wootton, Sergent, Phan-Tan-Luu)
// space-filling design algorithm of Santiago et al. [45], the method
// the paper's experimental design uses to select its 253 scenarios per
// class from the Table 1 parameter ranges (§4.1, following Paasch et
// al. [37]).
//
// WSP selects, from a large candidate cloud in the unit hypercube, a
// subset whose points are pairwise at least dmin apart: starting from
// a seed point, all candidates closer than dmin are discarded, the
// nearest survivor becomes the next selected point, and the process
// repeats. Adjusting dmin tunes the subset size; Select binary-searches
// dmin to hit a requested count.
package wsp

import (
	"math"

	"mpquic/internal/sim"
)

// Point is one design point in [0,1)^d.
type Point []float64

// dist2 is squared Euclidean distance.
func dist2(a, b Point) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Candidates generates n uniform random points in [0,1)^d.
func Candidates(n, d int, rng *sim.Rand) []Point {
	pts := make([]Point, n)
	for i := range pts {
		p := make(Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

// wspOnce runs the core WSP selection with a fixed minimum distance,
// returning the selected subset (order of selection preserved).
func wspOnce(candidates []Point, dmin float64, seedIdx int) []Point {
	d2 := dmin * dmin
	alive := make([]bool, len(candidates))
	for i := range alive {
		alive[i] = true
	}
	var selected []Point
	cur := seedIdx
	for {
		selected = append(selected, candidates[cur])
		alive[cur] = false
		// Discard everything within dmin of the current point, and
		// find the nearest survivor.
		nearest, nearestD := -1, math.MaxFloat64
		for i, ok := range alive {
			if !ok {
				continue
			}
			dd := dist2(candidates[cur], candidates[i])
			if dd < d2 {
				alive[i] = false
				continue
			}
			if dd < nearestD {
				nearestD = dd
				nearest = i
			}
		}
		if nearest == -1 {
			return selected
		}
		cur = nearest
	}
}

// Select picks approximately want points from a candidate cloud of
// size pool in [0,1)^d, binary-searching the WSP minimum distance. The
// result is truncated to exactly want points when the search
// overshoots (it selects the prefix, preserving WSP's ordering).
func Select(want, d int, seed uint64) []Point {
	if want <= 0 {
		return nil
	}
	rng := sim.NewRand(seed)
	pool := want * 40
	if pool < 2000 {
		pool = 2000
	}
	candidates := Candidates(pool, d, rng)
	seedIdx := rng.Intn(pool)

	// dmin too small selects nearly everything; too large selects few.
	lo, hi := 0.0, math.Sqrt(float64(d)) // max possible distance
	var best []Point
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		got := wspOnce(candidates, mid, seedIdx)
		if len(got) >= want {
			best = got
			lo = mid // try a larger dmin → fewer, better-spread points
		} else {
			hi = mid
		}
		if len(got) == want {
			break
		}
	}
	if best == nil {
		best = wspOnce(candidates, lo, seedIdx)
	}
	if len(best) > want {
		best = best[:want]
	}
	return best
}

// MinPairwiseDistance reports the smallest pairwise distance of a
// design — the quantity WSP maximizes (used by tests).
func MinPairwiseDistance(pts []Point) float64 {
	min := math.MaxFloat64
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if d := dist2(pts[i], pts[j]); d < min {
				min = d
			}
		}
	}
	if min == math.MaxFloat64 {
		return 0
	}
	return math.Sqrt(min)
}
