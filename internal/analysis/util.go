package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Well-known package paths the analyzers reason about.
const (
	simPkgPath   = "mpquic/internal/sim"
	wirePkgPath  = "mpquic/internal/wire"
	netemPkgPath = "mpquic/internal/netem"
	perfPkgPath  = "mpquic/internal/perf"
	livePkgPath  = "mpquic/internal/live"
)

// pkgFunc reports whether call invokes the function fn from the
// package with import path pkgPath (e.g. time.Now, wire.PutPacketBuf).
// It resolves through the type checker, so aliased imports are seen.
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, fn string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != fn {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		return false
	}
	// A package-level function: the selector base is a package name.
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := info.Uses[id].(*types.PkgName); !isPkg {
			return false
		}
	}
	return obj.Pkg().Path() == pkgPath
}

// namedFromPkg reports whether t (after pointer indirection) is the
// named type pkgPath.name.
func namedFromPkg(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// ifaceMethodNamed reports whether call invokes a method with one of
// the given names on an interface-typed receiver. Interface dispatch
// hides the concrete type from methodOn, so blocking-by-shape checks
// (a UDP read behind live.UDPConn) use the method name instead.
func ifaceMethodNamed(info *types.Info, call *ast.CallExpr, methods ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	recv := selection.Recv()
	if recv == nil {
		return false
	}
	if _, isIface := recv.Underlying().(*types.Interface); !isIface {
		return false
	}
	for _, m := range methods {
		if sel.Sel.Name == m {
			return true
		}
	}
	return false
}

// methodOn reports whether call is a method call whose receiver's type
// is named recvName in package pkgPath (pointer or value receiver).
// When methods is non-empty the method name must be one of them.
func methodOn(info *types.Info, call *ast.CallExpr, pkgPath, recvName string, methods ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	if !namedFromPkg(selection.Recv(), pkgPath, recvName) {
		return false
	}
	if len(methods) == 0 {
		return true
	}
	for _, m := range methods {
		if sel.Sel.Name == m {
			return true
		}
	}
	return false
}

// identObj resolves an identifier expression (possibly parenthesized)
// to its object, or nil.
func identObj(info *types.Info, e ast.Expr) types.Object {
	e = ast.Unparen(e)
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// usesObject reports whether any identifier under n resolves to obj.
func usesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// funcBodies yields every function or method body in the file,
// including function literals, as (node containing the body, body).
func funcBodies(f *ast.File, visit func(ast.Node, *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn, fn.Body)
			}
		case *ast.FuncLit:
			visit(fn, fn.Body)
		}
		return true
	})
}

// isTestFile reports whether the position's file is a _test.go file.
func isTestFile(filename string) bool {
	return strings.HasSuffix(filename, "_test.go")
}

// declaredWithin reports whether obj's declaration lies inside node's
// source range — i.e. whether obj is local to that subtree.
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj != nil && obj.Pos() != 0 && n.Pos() <= obj.Pos() && obj.Pos() <= n.End()
}
