// Command mpq-handover regenerates Fig. 11: request/response traffic
// over Multipath QUIC with the initial path failing mid-connection.
// The failure is a netem/dynamics script; -mode selects its shape —
// the paper's hard kill, a periodically flapping link, or fading
// (oscillating) capacity.
//
//	mpq-handover                 # the paper's parameters
//	mpq-handover -no-paths-frame # ablation: without the PATHS signal
//	mpq-handover -mode flap -period 2s -outage 500ms
//	mpq-handover -mode oscillate -period 1s -depth 0.8
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mpquic/internal/expdesign"
)

func main() {
	var (
		rtt0     = flag.Duration("rtt0", 15*time.Millisecond, "initial path RTT")
		rtt1     = flag.Duration("rtt1", 25*time.Millisecond, "second path RTT")
		capMbps  = flag.Float64("cap", 10, "path capacity [Mbps]")
		failAt   = flag.Duration("fail-at", 3*time.Second, "initial path failure time")
		duration = flag.Duration("duration", 15*time.Second, "request train duration")
		noPaths  = flag.Bool("no-paths-frame", false, "ablation: disable the PATHS frame on failure")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		mode     = flag.String("mode", "kill", "failure dynamics: kill, flap, oscillate")
		period   = flag.Duration("period", 2*time.Second, "flap/oscillation period")
		outage   = flag.Duration("outage", 500*time.Millisecond, "flap outage length")
		depth    = flag.Float64("depth", 0.8, "oscillation depth in (0,1)")
	)
	flag.Parse()

	switch *mode {
	case expdesign.HandoverKill, expdesign.HandoverFlap, expdesign.HandoverOscillate:
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q (want kill, flap or oscillate)\n", *mode)
		os.Exit(2)
	}
	hc := expdesign.HandoverConfig{
		InitialRTT:          *rtt0,
		SecondRTT:           *rtt1,
		CapacityMbps:        *capMbps,
		FailAt:              *failAt,
		Duration:            *duration,
		PathsFrameOnFailure: !*noPaths,
		Seed:                *seed,
		Mode:                *mode,
		Period:              *period,
		Outage:              *outage,
		Depth:               *depth,
	}
	res := expdesign.RunHandover(hc)
	title := "Network handover over Multipath QUIC"
	if *mode != expdesign.HandoverKill {
		title += " (" + *mode + " dynamics)"
	}
	fmt.Print(expdesign.ReportHandover(res, title))
}
