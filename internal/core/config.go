// Package core implements Multipath QUIC — the paper's contribution
// (§3): explicit Path IDs in the public header, one packet-number space
// and one congestion controller per path, a path manager driving
// ADD_ADDRESS/PATHS frames, and a lowest-RTT packet scheduler that
// duplicates traffic onto paths whose characteristics are still
// unknown.
//
// Single-path QUIC is the same engine with multipath disabled, exactly
// as the paper's implementation extends quic-go (one codebase, the
// multipath machinery dormant); package mpquic/internal/quic exposes
// that configuration.
package core

import (
	"time"

	"mpquic/internal/trace"
	"mpquic/internal/wire"
)

// SchedulerKind selects the packet scheduler (§3, Packet Scheduling).
type SchedulerKind int

const (
	// SchedLowestRTT prefers the lowest-smoothed-RTT path with
	// congestion window space, duplicating onto RTT-less paths — the
	// paper's default scheduler.
	SchedLowestRTT SchedulerKind = iota
	// SchedLowestRTTNoDup is the ablation without the duplication
	// phase: unknown paths get fresh data directly.
	SchedLowestRTTNoDup
	// SchedRoundRobin rotates across available paths — the fragile
	// alternative §3 argues against.
	SchedRoundRobin
	// SchedBLEST is a blocking-estimation scheduler inspired by BLEST
	// (Ferlin et al. [16], cited in §3): it skips a slower path when
	// the data parked there would outlive the send window and block
	// the faster path. An extension beyond the paper's scheduler.
	SchedBLEST
)

func (k SchedulerKind) String() string {
	switch k {
	case SchedLowestRTT:
		return "lowest-rtt"
	case SchedLowestRTTNoDup:
		return "lowest-rtt-nodup"
	case SchedRoundRobin:
		return "round-robin"
	case SchedBLEST:
		return "blest"
	default:
		return "unknown"
	}
}

// CCKind selects the congestion controller.
type CCKind int

const (
	// CCCubic is used by single-path QUIC and TCP in the evaluation.
	CCCubic CCKind = iota
	// CCOlia is the coupled controller used by MPQUIC and MPTCP.
	CCOlia
	// CCReno is a reference controller for tests and ablations.
	CCReno
	// CCLia is the RFC 6356 coupled controller [48] — implemented as
	// the "other multipath congestion control scheme" §3 defers to
	// further study.
	CCLia
)

func (k CCKind) String() string {
	switch k {
	case CCCubic:
		return "cubic"
	case CCOlia:
		return "olia"
	case CCReno:
		return "reno"
	case CCLia:
		return "lia"
	default:
		return "unknown"
	}
}

// Config tunes a connection. The zero value is not usable; start from
// DefaultConfig or DefaultSinglePathConfig.
type Config struct {
	// Multipath enables the MPQUIC extensions. When false the
	// connection is plain QUIC: no Path ID byte, one path, one
	// packet-number space.
	Multipath bool
	// MaxPaths bounds concurrently active paths (including path 0).
	MaxPaths int
	// Scheduler picks the packet scheduler.
	Scheduler SchedulerKind
	// CC picks the congestion controller family.
	CC CCKind

	// StreamWindow and ConnWindow are the flow-control credit granted
	// per stream and per connection (§4.1: 16 MB maximum receive
	// window, for both TCP and QUIC).
	StreamWindow uint64
	ConnWindow   uint64

	// DuplicateOnNewPath enables the scheduler's duplication phase for
	// paths without an RTT estimate (§3). Ablation switch.
	DuplicateOnNewPath bool
	// WindowUpdateAllPaths broadcasts WINDOW_UPDATE frames on every
	// active path (§3). Ablation switch.
	WindowUpdateAllPaths bool
	// PathsFrameOnFailure sends a PATHS frame flagging a
	// potentially-failed path so the peer avoids its own RTO during
	// handover (§4.3). Ablation switch.
	PathsFrameOnFailure bool

	// EnableCrypto seals every protected packet with real AES-GCM.
	// When false, packets still pay the AEAD size overhead but skip
	// the cipher work (struct-mode sweeps).
	EnableCrypto bool
	// WireSerialization forces every packet through full
	// encode/decode across the emulated network instead of struct
	// mode. Integration tests use it to prove both modes agree.
	WireSerialization bool
	// AdvertiseAddresses makes the endpoint advertise its non-initial
	// local addresses via ADD_ADDRESS after the handshake (the
	// dual-stack server use case of §3).
	AdvertiseAddresses bool

	// MaxOffer bounds a server push; zero means unlimited.
	// (Reserved for applications.)
	MaxOffer uint64

	// IdleTimeout closes the connection after this long without
	// receiving anything. Zero disables.
	IdleTimeout time.Duration

	// HandshakeSeed seeds the deterministic key exchange.
	HandshakeSeed uint64

	// Tracer receives structured protocol events (qlog-style). Nil
	// disables tracing.
	Tracer trace.Tracer

	// TailReinjection is an extension beyond the paper (§5 future
	// work): when a path has window space but nothing new to send,
	// un-acknowledged stream data outstanding on other paths is
	// duplicated onto it, cutting the lossy-path completion tail.
	// Off by default to stay faithful to the paper's scheduler.
	TailReinjection bool

	// ZeroRTT models Google QUIC's repeat-connection handshake: the
	// client holds a cached server config (represented by the shared
	// HandshakeSeed), derives keys immediately, and places request
	// data in its very first flight. Both endpoints must enable it.
	// Off by default — the paper evaluates the 1-RTT handshake.
	ZeroRTT bool
}

// DefaultConfig returns the paper's MPQUIC configuration.
func DefaultConfig() Config {
	return Config{
		Multipath:            true,
		MaxPaths:             2,
		Scheduler:            SchedLowestRTT,
		CC:                   CCOlia,
		StreamWindow:         16 << 20,
		ConnWindow:           16 << 20,
		DuplicateOnNewPath:   true,
		WindowUpdateAllPaths: true,
		PathsFrameOnFailure:  true,
		IdleTimeout:          120 * time.Second,
		HandshakeSeed:        1,
	}
}

// DefaultSinglePathConfig returns the plain-QUIC configuration used as
// the paper's single-path baseline (CUBIC, one path).
func DefaultSinglePathConfig() Config {
	c := DefaultConfig()
	c.Multipath = false
	c.MaxPaths = 1
	c.CC = CCCubic
	c.DuplicateOnNewPath = false
	c.WindowUpdateAllPaths = false
	c.PathsFrameOnFailure = false
	return c
}

// Role distinguishes the connection endpoints.
type Role int

const (
	// RoleClient initiates connections (odd new Path IDs).
	RoleClient Role = iota
	// RoleServer accepts connections (even new Path IDs).
	RoleServer
)

func (r Role) String() string {
	if r == RoleClient {
		return "client"
	}
	return "server"
}

// Stream ID allocation: stream 1 is reserved (crypto in Google QUIC);
// client application streams are 3, 5, 7, ...
const (
	// FirstClientStream is the first client-initiated app stream ID.
	FirstClientStream wire.StreamID = 3
	// FirstServerStream is the first server-initiated app stream ID.
	FirstServerStream wire.StreamID = 2
)
