# Convenience targets; see scripts/check.sh for the pre-commit gate.

.PHONY: build test bench check

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem

check:
	sh scripts/check.sh
