package tcpsim

import (
	"testing"
	"time"

	"mpquic/internal/netem"
	"mpquic/internal/sim"
	"mpquic/internal/stream"
)

type tcpHarness struct {
	clock  *sim.Clock
	net    *netem.Network
	lis    *Listener
	client *Conn
	fwd    *netem.Link
	rev    *netem.Link
}

func newTCPHarness(t *testing.T, cfg Config, link netem.LinkConfig) *tcpHarness {
	t.Helper()
	clock := sim.NewClock()
	clock.Limit = 20_000_000
	nw := netem.New(clock, sim.NewRand(5))
	h := &tcpHarness{clock: clock, net: nw}
	h.fwd, h.rev = nw.Connect("c:1", "s:443", link)
	h.lis = ListenTCP(nw, cfg, "s:443")
	h.client = DialTCP(nw, cfg, "c:1", "s:443")
	return h
}

func (h *tcpHarness) run(t *testing.T, until time.Duration) {
	t.Helper()
	if err := h.clock.RunUntil(sim.Time(until)); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func link10M(rtt time.Duration) netem.LinkConfig {
	return netem.LinkConfig{RateMbps: 10, Delay: rtt / 2, QueueDelay: 100 * time.Millisecond}
}

func TestTCPHandshakeTakesThreeRTTsWithTLS(t *testing.T) {
	h := newTCPHarness(t, DefaultConfig(), link10M(40*time.Millisecond))
	var at time.Duration
	h.client.OnEstablished(func() { at = h.clock.Now().Duration() })
	h.run(t, 2*time.Second)
	if !h.client.Established() {
		t.Fatal("not established")
	}
	// 3 RTTs = 120 ms plus serialization of the small flights.
	if at < 120*time.Millisecond || at > 140*time.Millisecond {
		t.Fatalf("established at %v, want ~3 RTT (120ms)", at)
	}
}

func TestTCPHandshakeOneRTTWithoutTLS(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TLS = false
	h := newTCPHarness(t, cfg, link10M(40*time.Millisecond))
	var at time.Duration
	h.client.OnEstablished(func() { at = h.clock.Now().Duration() })
	h.run(t, 2*time.Second)
	if at < 40*time.Millisecond || at > 50*time.Millisecond {
		t.Fatalf("established at %v, want ~1 RTT", at)
	}
}

func TestTCPTransferCompletesAndGoodput(t *testing.T) {
	h := newTCPHarness(t, DefaultConfig(), link10M(30*time.Millisecond))
	ServeGet(h.lis, 2<<20)
	var res *GetResult
	GetOverTCP(h.client, 2<<20, func() time.Duration { return h.clock.Now().Duration() },
		func(r GetResult) { res = &r })
	h.run(t, 60*time.Second)
	if res == nil {
		t.Fatal("download did not finish")
	}
	// 2 MiB at 10 Mbps ≈ 1.7 s floor.
	if res.Elapsed() < 1600*time.Millisecond || res.Elapsed() > 6*time.Second {
		t.Fatalf("download took %v", res.Elapsed())
	}
	gp := res.GoodputBps() / 1e6
	if gp < 2.5 || gp > 10 {
		t.Fatalf("goodput %.1f Mbps", gp)
	}
}

func TestTCPSurvivesRandomLoss(t *testing.T) {
	link := link10M(30 * time.Millisecond)
	link.LossRate = 0.02
	h := newTCPHarness(t, DefaultConfig(), link)
	ServeGet(h.lis, 1<<20)
	var res *GetResult
	GetOverTCP(h.client, 1<<20, func() time.Duration { return h.clock.Now().Duration() },
		func(r GetResult) { res = &r })
	h.run(t, 300*time.Second)
	if res == nil {
		t.Fatal("download did not survive 2% loss")
	}
	if h.client.Stats.RTOCount == 0 && h.lis.Conns()[0].Stats.RTOCount == 0 &&
		h.lis.Conns()[0].Stats.FastRetransmit == 0 {
		t.Fatal("no recovery activity despite loss")
	}
}

func TestTCPHandshakeSurvivesSYNLoss(t *testing.T) {
	link := link10M(30 * time.Millisecond)
	clock := sim.NewClock()
	nw := netem.New(clock, sim.NewRand(5))
	fwd, _ := nw.Connect("c:1", "s:443", link)
	lis := ListenTCP(nw, DefaultConfig(), "s:443")
	fwd.SetDown(true) // SYN will be lost
	client := DialTCP(nw, DefaultConfig(), "c:1", "s:443")
	clock.At(sim.Time(500*time.Millisecond), func() { fwd.SetDown(false) })
	clock.RunUntil(sim.Time(10 * time.Second))
	if !client.Established() {
		t.Fatal("handshake did not recover from SYN loss")
	}
	_ = lis
}

func TestTCPReceiveWindowLimitsSender(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecvWindow = 64 << 10 // tiny window
	// High-BDP link: 10 Mbps, 200 ms RTT → BDP 250 KB >> 64 KB window.
	h := newTCPHarness(t, cfg, netem.LinkConfig{RateMbps: 10, Delay: 100 * time.Millisecond, QueueDelay: 500 * time.Millisecond})
	ServeGet(h.lis, 1<<20)
	var res *GetResult
	GetOverTCP(h.client, 1<<20, func() time.Duration { return h.clock.Now().Duration() },
		func(r GetResult) { res = &r })
	h.run(t, 120*time.Second)
	if res == nil {
		t.Fatal("did not finish")
	}
	// Window-limited goodput ≈ rwnd/RTT = 64KB/200ms = 2.6 Mbps.
	gp := res.GoodputBps() / 1e6
	if gp > 3.5 {
		t.Fatalf("goodput %.1f Mbps exceeds window limit", gp)
	}
}

func TestTCPSACKLimitedToThreeBlocks(t *testing.T) {
	intervals := []stream.Interval{{Start: 10, End: 20}, {Start: 30, End: 40},
		{Start: 50, End: 60}, {Start: 70, End: 80}, {Start: 90, End: 100}}
	blocks := buildSACK(intervals, 0)
	if len(blocks) != MaxSACKBlocks {
		t.Fatalf("got %d blocks, want %d", len(blocks), MaxSACKBlocks)
	}
	// Most recent (highest) first.
	if blocks[0].Start != 90 || blocks[2].Start != 50 {
		t.Fatalf("blocks %+v", blocks)
	}
}

func TestTCPSegmentWireSize(t *testing.T) {
	plain := &Segment{Len: MSS}
	if plain.WireSize() != MSS+headerBase {
		t.Fatalf("size %d", plain.WireSize())
	}
	withSACK := &Segment{Len: 0, SACK: []SACKBlock{{0, 1}, {2, 3}}}
	if withSACK.WireSize() != headerBase+sackOptionOverhead+2*sackBlockSize {
		t.Fatalf("size %d", withSACK.WireSize())
	}
	mp := &Segment{Len: 100, MP: true}
	if mp.WireSize() != 100+headerBase+20 {
		t.Fatalf("mp size %d", mp.WireSize())
	}
	// Full segment must fit the emulator MTU.
	if full := (&Segment{Len: MSS, MP: true, SACK: []SACKBlock{{0, 1}, {2, 3}, {4, 5}}}).WireSize(); full > netem.MTU {
		t.Fatalf("full segment %d exceeds MTU", full)
	}
}

func TestTCPKarnNoSampleFromRetransmission(t *testing.T) {
	link := link10M(30 * time.Millisecond)
	link.LossRate = 0.10 // heavy loss to force retransmissions
	h := newTCPHarness(t, DefaultConfig(), link)
	ServeGet(h.lis, 256<<10)
	var res *GetResult
	GetOverTCP(h.client, 256<<10, func() time.Duration { return h.clock.Now().Duration() },
		func(r GetResult) { res = &r })
	h.run(t, 600*time.Second)
	if res == nil {
		t.Fatal("did not finish under heavy loss")
	}
	srv := h.lis.Conns()[0]
	if srv.Stats.Retransmits == 0 {
		t.Fatal("no retransmissions under 10% loss")
	}
	// Coarse granularity: srtt should be a whole millisecond multiple.
	if srtt := srv.RTT().SmoothedRTT(); srtt == 0 {
		t.Fatal("no RTT samples at all")
	}
}
