package rtt

import (
	"testing"
	"testing/quick"
	"time"
)

func TestFirstSampleInitializes(t *testing.T) {
	e := New(DefaultQUIC())
	if e.HasSample() {
		t.Fatal("fresh estimator has sample")
	}
	e.Update(100*time.Millisecond, 0)
	if !e.HasSample() || e.SmoothedRTT() != 100*time.Millisecond {
		t.Fatalf("srtt %v", e.SmoothedRTT())
	}
	if e.Var() != 50*time.Millisecond {
		t.Fatalf("rttvar %v", e.Var())
	}
	if e.MinRTT() != 100*time.Millisecond {
		t.Fatalf("min %v", e.MinRTT())
	}
}

func TestSmoothingConverges(t *testing.T) {
	e := New(DefaultQUIC())
	for i := 0; i < 100; i++ {
		e.Update(80*time.Millisecond, 0)
	}
	if d := e.SmoothedRTT() - 80*time.Millisecond; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("srtt %v did not converge", e.SmoothedRTT())
	}
}

func TestAckDelaySubtractedInPreciseMode(t *testing.T) {
	e := New(DefaultQUIC())
	e.Update(50*time.Millisecond, 0) // min RTT = 50ms
	e.Update(100*time.Millisecond, 30*time.Millisecond)
	if e.LatestRTT() != 70*time.Millisecond {
		t.Fatalf("latest %v, want 70ms", e.LatestRTT())
	}
}

func TestAckDelayNotSubtractedBelowMinRTT(t *testing.T) {
	e := New(DefaultQUIC())
	e.Update(50*time.Millisecond, 0)
	e.Update(60*time.Millisecond, 30*time.Millisecond) // 60-30 < min 50
	if e.LatestRTT() != 60*time.Millisecond {
		t.Fatalf("latest %v, want raw 60ms", e.LatestRTT())
	}
}

func TestCoarseModeIgnoresAckDelayAndQuantizes(t *testing.T) {
	e := New(DefaultTCP())
	e.Update(10400*time.Microsecond, 5*time.Millisecond)
	if e.LatestRTT() != 10*time.Millisecond {
		t.Fatalf("latest %v, want quantized 10ms", e.LatestRTT())
	}
	e2 := New(DefaultTCP())
	e2.Update(100*time.Microsecond, 0)
	if e2.LatestRTT() != time.Millisecond {
		t.Fatalf("sub-granularity sample %v, want 1ms floor", e2.LatestRTT())
	}
}

func TestRTOBeforeSamples(t *testing.T) {
	e := New(DefaultQUIC())
	if e.RTO() != 500*time.Millisecond {
		t.Fatalf("initial RTO %v", e.RTO())
	}
	e2 := New(DefaultTCP())
	if e2.RTO() != time.Second {
		t.Fatalf("initial TCP RTO %v", e2.RTO())
	}
}

func TestRTOFloorsAndBackoff(t *testing.T) {
	e := New(DefaultQUIC())
	e.Update(10*time.Millisecond, 0)
	// srtt+4var = 10+20=30ms < 200ms floor.
	if e.RTO() != 200*time.Millisecond {
		t.Fatalf("RTO %v, want floored 200ms", e.RTO())
	}
	e.Backoff()
	if e.RTO() != 400*time.Millisecond {
		t.Fatalf("backed-off RTO %v", e.RTO())
	}
	e.Backoff()
	if e.RTO() != 800*time.Millisecond {
		t.Fatalf("RTO %v", e.RTO())
	}
	e.ResetBackoff()
	if e.RTO() != 200*time.Millisecond {
		t.Fatalf("RTO after reset %v", e.RTO())
	}
	// New sample also clears backoff.
	e.Backoff()
	e.Update(10*time.Millisecond, 0)
	if e.RTO() != 200*time.Millisecond {
		t.Fatalf("RTO after sample %v", e.RTO())
	}
}

func TestRTOCapped(t *testing.T) {
	e := New(DefaultQUIC())
	e.Update(time.Second, 0)
	for i := 0; i < 40; i++ {
		e.Backoff()
	}
	if e.RTO() != 60*time.Second {
		t.Fatalf("RTO %v, want capped 60s", e.RTO())
	}
}

func TestNonPositiveSamplesIgnored(t *testing.T) {
	e := New(DefaultQUIC())
	e.Update(0, 0)
	e.Update(-time.Second, 0)
	if e.HasSample() {
		t.Fatal("bogus samples accepted")
	}
}

func TestMinRTTTracksSmallest(t *testing.T) {
	e := New(DefaultQUIC())
	e.Update(100*time.Millisecond, 0)
	e.Update(40*time.Millisecond, 0)
	e.Update(90*time.Millisecond, 0)
	if e.MinRTT() != 40*time.Millisecond {
		t.Fatalf("min %v", e.MinRTT())
	}
}

// Property: srtt stays within the sample envelope and RTO >= MinRTO.
func TestEstimatorBoundsProperty(t *testing.T) {
	cfg := DefaultQUIC()
	f := func(samplesMS []uint16) bool {
		e := New(cfg)
		lo, hi := time.Duration(1<<62), time.Duration(0)
		for _, ms := range samplesMS {
			s := time.Duration(ms%1000+1) * time.Millisecond
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
			e.Update(s, 0)
		}
		if !e.HasSample() {
			return true
		}
		if e.SmoothedRTT() < lo || e.SmoothedRTT() > hi {
			return false
		}
		return e.RTO() >= cfg.MinRTO && e.MinRTT() == lo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
