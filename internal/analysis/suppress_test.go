package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpquic/internal/analysis"
)

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// TestMalformedAllowAnnotationsFail proves suppressions cannot rot: an
// //mpqvet:allow with a missing reason or an unknown analyzer name is
// itself an error, even when nothing is flagged.
func TestMalformedAllowAnnotationsFail(t *testing.T) {
	root := moduleRoot(t)
	pkg, err := analysis.LoadFromDir(root, filepath.Join("testdata", "src", "badallow"), "badallow")
	if err != nil {
		t.Fatal(err)
	}
	_, err = analysis.RunAnalyzers(pkg, analysis.All())
	if err == nil {
		t.Fatal("malformed //mpqvet:allow annotations were accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `needs "<analyzer> <reason>"`) {
		t.Errorf("missing-reason annotation not reported: %v", err)
	}
	if !strings.Contains(msg, "unknown analyzer") {
		t.Errorf("unknown-analyzer annotation not reported: %v", err)
	}
}

// TestStaleAllowFails proves allows cannot rot in the other direction
// either: an //mpqvet:allow that suppresses zero diagnostics is itself
// an error — but only when the analyzer it names actually ran, so
// `mpq-vet -analyzers maporder` does not reject the walltime allows it
// never evaluated.
func TestStaleAllowFails(t *testing.T) {
	root := moduleRoot(t)
	pkg, err := analysis.LoadFromDir(root, filepath.Join("testdata", "src", "staleallow"), "staleallow")
	if err != nil {
		t.Fatal(err)
	}
	_, err = analysis.RunAnalyzers(pkg, analysis.All())
	if err == nil {
		t.Fatal("a stale //mpqvet:allow (matching zero diagnostics) was accepted")
	}
	if !strings.Contains(err.Error(), "stale") || !strings.Contains(err.Error(), "walltime") {
		t.Errorf("stale allow not reported as such: %v", err)
	}

	// The same package is fine when walltime does not run: staleness is
	// only judged for analyzers that executed.
	if _, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{analysis.MapOrder}); err != nil {
		t.Errorf("allow for a non-run analyzer reported stale: %v", err)
	}
}

// TestSuiteRegistry pins the analyzer names the //mpqvet:allow syntax
// and the cmd/mpq-vet -analyzers flag depend on.
func TestSuiteRegistry(t *testing.T) {
	want := []string{
		"walltime", "globalrand", "maporder", "poolsafety", "eventhandle",
		"confine", "ringsafety", "blocking", "annotation",
	}
	all := analysis.All()
	if len(all) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(all), len(want))
	}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("analyzer %d is %q, want %q", i, all[i].Name, name)
		}
		if analysis.ByName(name) != all[i] {
			t.Errorf("ByName(%q) does not return the suite analyzer", name)
		}
	}
	if analysis.ByName("nosuch") != nil {
		t.Error("ByName accepted an unknown name")
	}
}
