// Package netem is a deterministic network emulator.
//
// It plays the role Mininet plays in the paper: packets travel over
// links with a configurable capacity, propagation delay, bounded
// tail-drop queue, and Bernoulli random loss — the four factors of the
// paper's Table 1. Everything runs on a sim.Clock, so transfers are
// exact in virtual time.
//
// The emulator is payload-agnostic: it moves Datagrams whose Size the
// sending stack computed from its wire format. This lets the QUIC, TCP,
// MPTCP and MPQUIC stacks share one network substrate.
package netem

import (
	"fmt"
	"time"

	"mpquic/internal/sim"
	"mpquic/internal/trace"
)

// Addr identifies an interface endpoint, e.g. "10.0.1.1:443" or
// "[2001:db8::1]:443". Addresses are opaque strings to the emulator.
type Addr string

// Payload is any packet body a protocol stack hands to the network.
type Payload interface {
	// WireSize is the number of bytes the payload occupies inside the
	// transport datagram (excluding IP/UDP framing, which the sender
	// accounts for in Datagram.Size).
	WireSize() int
}

// Datagram is one network packet in flight.
type Datagram struct {
	From, To Addr
	// Size is the total on-wire size in bytes, including network- and
	// transport-layer framing. Links serialize Size bytes.
	Size    int
	Payload Payload
	// Raw carries the serialized packet bytes in wire-serialization
	// mode; Payload is nil then. A plain field rather than a Payload
	// implementation so the per-packet hot paths never pay an
	// interface-boxing allocation (a slice does not fit an interface
	// word; see core.RawDatagram).
	Raw []byte
}

// Handler receives datagrams addressed to a registered address.
type Handler interface {
	HandleDatagram(dg Datagram)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(dg Datagram)

// HandleDatagram calls f(dg).
func (f HandlerFunc) HandleDatagram(dg Datagram) { f(dg) }

// LinkConfig describes one unidirectional link.
type LinkConfig struct {
	// RateMbps is the link capacity in megabits per second.
	RateMbps float64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// QueueDelay bounds the tail-drop queue: the queue holds at most
	// RateMbps×QueueDelay worth of bytes (floored at two MTUs so a
	// zero-buffer link can still carry back-to-back packets).
	QueueDelay time.Duration
	// LossRate is the probability in [0,1] that a packet is dropped
	// after leaving the queue (random wire loss, independent of
	// congestion).
	LossRate float64
}

// MTU is the maximum datagram size the emulator forwards, in bytes,
// including framing. Larger datagrams are rejected with a panic: stacks
// are responsible for segmentation.
const MTU = 1500

// LinkStats counts per-link activity.
type LinkStats struct {
	SentPackets   uint64 // delivered to the far end
	SentBytes     uint64
	QueueDrops    uint64 // tail-drop (congestion) losses
	RandomDrops   uint64 // random (wire) losses, whatever the loss model
	EnqueuedBytes uint64
}

// LossModel decides the fate of each packet as it leaves the link's
// serializer. Implementations are stateful (e.g. a two-state bursty
// process) and must be deterministic given their own seeded PRNG; one
// model instance serves exactly one link. A nil model on a link means
// the built-in Bernoulli draw over LinkConfig.LossRate.
type LossModel interface {
	// Drop reports whether the packet of the given on-wire size is
	// dropped. Called once per packet in transmission order.
	Drop(size int) bool
}

// Link is one unidirectional emulated link.
type Link struct {
	clock *sim.Clock
	rand  *sim.Rand
	cfg   LinkConfig
	name  string

	rateBps    float64 // bytes per second
	queueCap   int     // bytes
	queueBytes int
	busyUntil  sim.Time
	deliver    func(dg Datagram)
	down       bool

	lossModel  LossModel
	jitter     time.Duration
	jitterRand *sim.Rand
	tracer     trace.Tracer

	free []*linkPkt // recycled in-flight packet records

	Stats LinkStats
}

// linkPkt carries one datagram through the link's two-stage pipeline
// (serializer finish, then delivery after propagation) without
// allocating per-packet closures: the finish/deliver callbacks are
// bound once when the record is created and the record is recycled
// after delivery or drop.
type linkPkt struct {
	l         *Link
	dg        Datagram
	finishFn  func()
	deliverFn func()
}

func (l *Link) getPkt(dg Datagram) *linkPkt {
	if n := len(l.free); n > 0 {
		p := l.free[n-1]
		l.free[n-1] = nil
		l.free = l.free[:n-1]
		p.dg = dg
		return p
	}
	p := &linkPkt{l: l, dg: dg}
	p.finishFn = p.finish
	p.deliverFn = p.deliverNow
	return p
}

func (l *Link) putPkt(p *linkPkt) {
	p.dg = Datagram{} // drop the payload reference
	l.free = append(l.free, p)
}

// finish runs when the packet leaves the serializer: free its queue
// space, apply random loss, then schedule delivery after propagation.
func (p *linkPkt) finish() {
	l := p.l
	l.queueBytes -= p.dg.Size
	// Random loss is applied as the packet leaves the serializer: it
	// occupied queue space but never arrives.
	if l.lossModel != nil {
		if l.lossModel.Drop(p.dg.Size) {
			l.Stats.RandomDrops++
			l.putPkt(p)
			return
		}
	} else if l.cfg.LossRate > 0 && l.rand.Bernoulli(l.cfg.LossRate) {
		l.Stats.RandomDrops++
		l.putPkt(p)
		return
	}
	l.Stats.SentPackets++
	l.Stats.SentBytes += uint64(p.dg.Size)
	delay := l.cfg.Delay
	if l.jitter > 0 && l.jitterRand != nil {
		delay += time.Duration(l.jitterRand.Float64() * float64(l.jitter))
	}
	l.clock.At(l.clock.Now().Add(delay), p.deliverFn)
}

// deliverNow hands the datagram to the sink. The record is recycled
// first (the datagram is copied out), so a sink that synchronously
// sends on the same link can reuse it.
func (p *linkPkt) deliverNow() {
	l := p.l
	dg := p.dg
	l.putPkt(p)
	l.deliver(dg)
}

// NewLink builds a link delivering to the given sink.
func NewLink(clock *sim.Clock, rand *sim.Rand, name string, cfg LinkConfig, deliver func(dg Datagram)) *Link {
	if cfg.RateMbps <= 0 {
		panic(fmt.Sprintf("netem: link %s has non-positive rate", name))
	}
	l := &Link{
		clock:   clock,
		rand:    rand,
		cfg:     cfg,
		name:    name,
		deliver: deliver,
	}
	l.derive()
	return l
}

// derive recomputes the rate- and queue-capacity parameters from cfg.
func (l *Link) derive() {
	l.rateBps = l.cfg.RateMbps * 1e6 / 8
	l.queueCap = int(l.rateBps * l.cfg.QueueDelay.Seconds())
	if l.queueCap < 2*MTU {
		l.queueCap = 2 * MTU
	}
}

// Config returns the link's configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// QueueCapacityBytes reports the tail-drop bound.
func (l *Link) QueueCapacityBytes() int { return l.queueCap }

// SetLossRate changes the random loss probability at runtime (used by
// scenarios where a path becomes lossy mid-run). It has no effect on a
// link with an installed LossModel, which replaces the Bernoulli draw.
func (l *Link) SetLossRate(p float64) {
	l.cfg.LossRate = p
	l.emitReconfigured()
}

// SetDown drops every subsequent packet when down is true. State
// transitions emit link_down / link_up trace events.
func (l *Link) SetDown(down bool) {
	if down == l.down {
		return
	}
	l.down = down
	if l.tracer != nil {
		typ := trace.LinkUp
		if down {
			typ = trace.LinkDown
		}
		l.tracer.Trace(trace.Event{Time: l.clock.Now().Duration(), Type: typ, Detail: l.name})
	}
}

// Down reports whether the link is currently dropping every packet.
func (l *Link) Down() bool { return l.down }

// Reconfigure replaces the link's configuration at runtime,
// re-deriving the serialization rate and the tail-drop queue capacity.
// Packets already being serialized finish at the old rate; packets
// queued behind them serialize at the new one. A queue that exceeds
// the shrunk capacity is not truncated — it drains and then tail-drops
// at the new bound, as a real qdisc change does.
func (l *Link) Reconfigure(cfg LinkConfig) {
	if cfg.RateMbps <= 0 {
		panic(fmt.Sprintf("netem: reconfigure of link %s with non-positive rate", l.name))
	}
	l.cfg = cfg
	l.derive()
	l.emitReconfigured()
}

// SetRateMbps changes only the link capacity, re-deriving the queue
// capacity from the unchanged QueueDelay bound.
func (l *Link) SetRateMbps(rate float64) {
	cfg := l.cfg
	cfg.RateMbps = rate
	l.Reconfigure(cfg)
}

// SetDelay changes only the one-way propagation delay. Packets already
// propagating keep their old delay, so a large downward step can
// reorder across the change, exactly as a route change can.
func (l *Link) SetDelay(d time.Duration) {
	cfg := l.cfg
	cfg.Delay = d
	l.Reconfigure(cfg)
}

// SetLossModel installs (or, with nil, removes) a pluggable loss
// process, replacing the built-in Bernoulli draw over cfg.LossRate.
func (l *Link) SetLossModel(m LossModel) {
	l.lossModel = m
	l.emitReconfigured()
}

// SetJitter adds a uniform per-packet propagation-delay jitter in
// [0, j): each delivered packet draws an independent extra delay from
// r, so closely spaced packets can arrive reordered. The jitter PRNG
// is separate from the link's loss PRNG, keeping loss sequences
// unchanged when jitter is toggled. j <= 0 disables jitter.
func (l *Link) SetJitter(j time.Duration, r *sim.Rand) {
	l.jitter = j
	l.jitterRand = r
	l.emitReconfigured()
}

// SetTracer attaches a tracer receiving the link's lifecycle events
// (link_down, link_up, link_reconfigured). Nil detaches.
func (l *Link) SetTracer(t trace.Tracer) { l.tracer = t }

func (l *Link) emitReconfigured() {
	if l.tracer == nil {
		return
	}
	detail := fmt.Sprintf("%s rate=%gMbps delay=%v queue=%dB loss=%g",
		l.name, l.cfg.RateMbps, l.cfg.Delay, l.queueCap, l.cfg.LossRate)
	if l.lossModel != nil {
		detail += " loss_model=custom"
	}
	if l.jitter > 0 {
		detail += fmt.Sprintf(" jitter=%v", l.jitter)
	}
	l.tracer.Trace(trace.Event{Time: l.clock.Now().Duration(), Type: trace.LinkReconfigured, Detail: detail})
}

// Send enqueues dg. Drops (queue overflow, random loss, link down)
// are silent, exactly as on a real wire.
func (l *Link) Send(dg Datagram) {
	if dg.Size <= 0 || dg.Size > MTU {
		panic(fmt.Sprintf("netem: datagram size %d out of (0,%d] on %s", dg.Size, MTU, l.name))
	}
	if l.down {
		l.Stats.RandomDrops++
		return
	}
	if l.queueBytes+dg.Size > l.queueCap {
		l.Stats.QueueDrops++
		return
	}
	l.queueBytes += dg.Size
	l.Stats.EnqueuedBytes += uint64(dg.Size)

	now := l.clock.Now()
	start := l.busyUntil
	if start < now {
		start = now
	}
	txTime := time.Duration(float64(dg.Size) / l.rateBps * float64(time.Second))
	finish := start.Add(txTime)
	l.busyUntil = finish

	l.clock.At(finish, l.getPkt(dg).finishFn)
}

// QueueBytes reports the current queue occupancy.
func (l *Link) QueueBytes() int { return l.queueBytes }

// Network connects registered addresses through routed links.
type Network struct {
	clock    *sim.Clock
	rand     *sim.Rand
	handlers map[Addr]Handler
	routes   map[routeKey]*Link
	// Dropped counts datagrams sent to an address with no route.
	Dropped uint64
}

type routeKey struct{ from, to Addr }

// New creates an empty network on the given clock. rand seeds the
// per-link loss processes.
func New(clock *sim.Clock, rand *sim.Rand) *Network {
	return &Network{
		clock:    clock,
		rand:     rand,
		handlers: make(map[Addr]Handler),
		routes:   make(map[routeKey]*Link),
	}
}

// Clock returns the simulation clock the network runs on.
func (n *Network) Clock() *sim.Clock { return n.clock }

// Register attaches a handler to an address. Re-registering replaces
// the previous handler (used when an endpoint rebinds).
func (n *Network) Register(addr Addr, h Handler) {
	n.handlers[addr] = h
}

// Unregister detaches the handler for addr.
func (n *Network) Unregister(addr Addr) { delete(n.handlers, addr) }

// AddRoute installs a unidirectional link carrying traffic from->to.
func (n *Network) AddRoute(from, to Addr, link *Link) {
	n.routes[routeKey{from, to}] = link
}

// Connect builds a bidirectional link pair between a and b with the
// same config in both directions and returns (a->b, b->a).
func (n *Network) Connect(a, b Addr, cfg LinkConfig) (*Link, *Link) {
	fwd := NewLink(n.clock, n.rand.Fork(), fmt.Sprintf("%s->%s", a, b), cfg, n.deliverTo(b))
	rev := NewLink(n.clock, n.rand.Fork(), fmt.Sprintf("%s->%s", b, a), cfg, n.deliverTo(a))
	n.AddRoute(a, b, fwd)
	n.AddRoute(b, a, rev)
	return fwd, rev
}

// ConnectAsym is Connect with distinct per-direction configs.
func (n *Network) ConnectAsym(a, b Addr, ab, ba LinkConfig) (*Link, *Link) {
	fwd := NewLink(n.clock, n.rand.Fork(), fmt.Sprintf("%s->%s", a, b), ab, n.deliverTo(b))
	rev := NewLink(n.clock, n.rand.Fork(), fmt.Sprintf("%s->%s", b, a), ba, n.deliverTo(a))
	n.AddRoute(a, b, fwd)
	n.AddRoute(b, a, rev)
	return fwd, rev
}

func (n *Network) deliverTo(addr Addr) func(dg Datagram) {
	return func(dg Datagram) {
		if h, ok := n.handlers[addr]; ok {
			h.HandleDatagram(dg)
		}
	}
}

// Send routes one datagram. Datagrams with no installed route are
// counted in Dropped and discarded.
func (n *Network) Send(dg Datagram) {
	link, ok := n.routes[routeKey{dg.From, dg.To}]
	if !ok {
		n.Dropped++
		return
	}
	link.Send(dg)
}

// Route returns the link from->to, or nil.
func (n *Network) Route(from, to Addr) *Link {
	return n.routes[routeKey{from, to}]
}
