package mpquic_test

import (
	"errors"
	"testing"
	"time"

	"mpquic"
)

func twoPathSpec(seed uint64) mpquic.TwoPathConfig {
	return mpquic.TwoPathConfig{
		Path0: mpquic.PathSpec{CapacityMbps: 10, RTT: 30 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
		Path1: mpquic.PathSpec{CapacityMbps: 10, RTT: 40 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
		Seed:  seed,
	}
}

// A transfer whose every path dies mid-run cannot finish: Download must
// report that as ErrTimeout, not hang or return a zero result.
func TestDownloadTimeoutOnKilledPaths(t *testing.T) {
	net := mpquic.NewTwoPathNetwork(twoPathSpec(1))
	server := net.Listen(mpquic.DefaultConfig())
	net.ServeGet(server)
	client := net.Dial(mpquic.DefaultConfig(), 42)

	// Both paths fail one second into the transfer.
	net.At(time.Second, func() {
		net.KillPath(0)
		net.KillPath(1)
	})

	_, err := net.DownloadWith(client, 64<<20, mpquic.DownloadOpts{Deadline: 30 * time.Second})
	if !errors.Is(err, mpquic.ErrTimeout) {
		t.Fatalf("Download on killed paths: err = %v, want ErrTimeout", err)
	}
}

// The deprecated free-function facade must keep its nil-on-timeout
// contract while it exists.
func TestDeprecatedDownloadNilOnTimeout(t *testing.T) {
	net := mpquic.NewTwoPathNetwork(twoPathSpec(1))
	server := net.Listen(mpquic.DefaultConfig())
	net.ServeGet(server)
	client := net.Dial(mpquic.DefaultConfig(), 42)
	net.At(time.Second, func() {
		net.KillPath(0)
		net.KillPath(1)
	})
	if res := mpquic.Download(net, client, 64<<20); res != nil {
		t.Fatalf("deprecated Download = %+v, want nil on timeout", res)
	}
}

// EventLimit must be honored and surfaced as an error from the clock.
func TestEventLimitSurfacesError(t *testing.T) {
	cfg := twoPathSpec(1)
	cfg.EventLimit = 1000 // far too few events for a 4 MB transfer
	net := mpquic.NewTwoPathNetwork(cfg)
	server := net.Listen(mpquic.DefaultConfig())
	net.ServeGet(server)
	client := net.Dial(mpquic.DefaultConfig(), 42)
	_, err := net.Download(client, 4<<20)
	if err == nil || errors.Is(err, mpquic.ErrTimeout) {
		t.Fatalf("Download with tiny EventLimit: err = %v, want event-limit error", err)
	}
}

// Download with the default deadline completes and reports the same
// transfer the deprecated facade did.
func TestDownloadMethodCompletes(t *testing.T) {
	net := mpquic.NewTwoPathNetwork(twoPathSpec(1))
	server := net.Listen(mpquic.DefaultConfig())
	net.ServeGet(server)
	client := net.Dial(mpquic.DefaultConfig(), 42)
	res, err := net.Download(client, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != 1<<20 || res.Elapsed() <= 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
}
