package analysis_test

import (
	"testing"

	"mpquic/internal/analysis"
	"mpquic/internal/analysis/analysistest"
)

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.GlobalRand, "globalrand")
}
