package expdesign

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// The committed smoke-grid baselines: sha256 of the JSONL artifact each
// config below writes. Captured on linux/amd64; any behavioural change
// to the simulator, the seed derivation, the scenario generator or the
// artifact encoding shows up here as a hash mismatch.
//
// If you changed behaviour ON PURPOSE, re-run the config (e.g.
// `mpq-bench -exp fig3 -scenarios 8 -artifacts out -progress=false`),
// paste the new sha256sum, and say why in the commit message. If you
// did NOT mean to change behaviour, this failure is the bug.
var goldenSmokeGrids = []struct {
	name      string
	class     Class
	scenarios int
	sha256    string
}{
	{"fig3-smoke", LowBDPNoLoss, 8,
		"f7cd940412d0c3dfb2f433c9cd81422520dd1c378d6a7a02d7a687a5f12e47e8"},
	{"dyn-bursty-smoke", BurstyLossGrid, 4,
		"de81a86d09501ef3773f874eee9247dbc9f8a5b6e3d155e6eaa6e05c2270b04a"},
}

// TestSmokeGridGoldenArtifacts runs the two smoke grids twice each and
// asserts (a) the two runs are byte-identical — same-seed determinism,
// on every platform — and (b) on amd64, that the bytes hash to the
// committed baseline, pinning today's artifacts to the pre-existing
// ones. The hash check is gated to amd64 because the Go spec lets
// other architectures fuse floating-point multiply-adds, which can
// legitimately perturb low-order bits of simulated transfer times.
func TestSmokeGridGoldenArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke grids take ~30s; skipped with -short")
	}
	for _, g := range goldenSmokeGrids {
		t.Run(g.name, func(t *testing.T) {
			dir := t.TempDir()
			var runs [][]byte
			for i := 0; i < 2; i++ {
				path := filepath.Join(dir, ArtifactFileName(g.class, LargeTransfer, 0, 1))
				if _, err := RunGrid(GridConfig{
					Class:        g.class,
					Scenarios:    g.scenarios,
					Size:         LargeTransfer,
					Reps:         1,
					ArtifactPath: path,
				}); err != nil {
					t.Fatal(err)
				}
				b, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				runs = append(runs, b)
				os.Remove(path)
			}
			if !bytes.Equal(runs[0], runs[1]) {
				t.Fatal("two same-seed smoke grid runs produced different artifact bytes")
			}
			if runtime.GOARCH != "amd64" {
				t.Logf("skipping baseline hash on %s (FMA may perturb float results)", runtime.GOARCH)
				return
			}
			sum := sha256.Sum256(runs[0])
			if got := hex.EncodeToString(sum[:]); got != g.sha256 {
				t.Errorf("smoke grid %s drifted from the committed baseline:\n got %s\nwant %s\n"+
					"If this change is intentional, update goldenSmokeGrids and explain in the commit.",
					g.name, got, g.sha256)
			}
		})
	}
}
