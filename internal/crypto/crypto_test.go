package crypto

import (
	"bytes"
	"testing"
	"testing/quick"

	"mpquic/internal/wire"
)

func handshakeSealers(t *testing.T) (*Sealer, *Sealer) {
	t.Helper()
	c := NewClientHandshake(1)
	s := NewServerHandshake(2)
	shlo, err := s.OnCHLO(c.CHLO())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.OnSHLO(shlo); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Secret(), s.Secret()) {
		t.Fatal("handshake secrets differ")
	}
	c2s, _ := SessionKeys(c.Secret())
	seal, err := NewSealer(c2s, true)
	if err != nil {
		t.Fatal(err)
	}
	open, err := NewSealer(c2s, true)
	if err != nil {
		t.Fatal(err)
	}
	return seal, open
}

func TestHandshakeDerivesSharedSecret(t *testing.T) {
	c := NewClientHandshake(10)
	s := NewServerHandshake(20)
	if c.Done() || s.Done() {
		t.Fatal("done before exchange")
	}
	shlo, err := s.OnCHLO(c.CHLO())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.OnSHLO(shlo); err != nil {
		t.Fatal(err)
	}
	if !c.Done() || !s.Done() {
		t.Fatal("not done after exchange")
	}
	if !bytes.Equal(c.Secret(), s.Secret()) {
		t.Fatal("secret mismatch")
	}
	if len(c.CHLO()) != HandshakeMessageSize {
		t.Fatalf("CHLO size %d", len(c.CHLO()))
	}
}

func TestHandshakeDifferentSeedsDifferentSecrets(t *testing.T) {
	run := func(cs, ss uint64) []byte {
		c := NewClientHandshake(cs)
		s := NewServerHandshake(ss)
		shlo, _ := s.OnCHLO(c.CHLO())
		c.OnSHLO(shlo)
		return c.Secret()
	}
	if bytes.Equal(run(1, 2), run(3, 4)) {
		t.Fatal("different seeds produced same secret")
	}
}

func TestHandshakeRejectsShortMessages(t *testing.T) {
	c := NewClientHandshake(1)
	if err := c.OnSHLO([]byte{1, 2, 3}); err == nil {
		t.Fatal("short SHLO accepted")
	}
	s := NewServerHandshake(1)
	if _, err := s.OnCHLO(nil); err == nil {
		t.Fatal("short CHLO accepted")
	}
}

func TestSecretPanicsBeforeCompletion(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewClientHandshake(1).Secret()
}

func TestSealOpenRoundTrip(t *testing.T) {
	seal, open := handshakeSealers(t)
	header := []byte{0x04, 1, 2, 3}
	pt := []byte("some protected frames")
	ct := seal.Seal(1, 42, header, pt)
	if len(ct) != len(pt)+wire.AEADOverhead {
		t.Fatalf("ciphertext length %d, want %d", len(ct), len(pt)+wire.AEADOverhead)
	}
	got, err := open.Open(1, 42, header, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatal("plaintext mismatch")
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	seal, open := handshakeSealers(t)
	header := []byte{0x04, 9}
	ct := seal.Seal(0, 7, header, []byte("data"))

	bad := append([]byte{}, ct...)
	bad[0] ^= 1
	if _, err := open.Open(0, 7, header, bad); err == nil {
		t.Fatal("tampered ciphertext accepted")
	}
	if _, err := open.Open(0, 7, []byte{0xff}, ct); err == nil {
		t.Fatal("tampered header (AAD) accepted")
	}
	if _, err := open.Open(0, 8, header, ct); err == nil {
		t.Fatal("wrong packet number accepted")
	}
	if _, err := open.Open(1, 7, header, ct); err == nil {
		t.Fatal("wrong path accepted")
	}
}

func TestMultipathNonceUniqueAcrossPaths(t *testing.T) {
	seal, _ := handshakeSealers(t)
	// Same PN on different paths must give different nonces (the §3
	// security requirement).
	n0 := seal.NonceFor(0, 1000)
	n1 := seal.NonceFor(1, 1000)
	if bytes.Equal(n0, n1) {
		t.Fatal("nonce reused across paths")
	}
}

func TestSinglepathNonceCollidesAcrossPaths(t *testing.T) {
	// The strawman the paper warns about: without the Path ID in the
	// nonce, two paths reuse nonces.
	k := DeriveKeys([]byte("secret"), "c2s")
	s, err := NewSealer(k, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s.NonceFor(0, 1000), s.NonceFor(3, 1000)) {
		t.Fatal("expected collision without multipath nonce")
	}
}

func TestNonceUniquenessProperty(t *testing.T) {
	seal, _ := handshakeSealers(t)
	f := func(p1, p2 uint8, pn1, pn2 uint32) bool {
		if p1 == p2 && pn1 == pn2 {
			return true
		}
		n1 := seal.NonceFor(wire.PathID(p1), wire.PacketNumber(pn1))
		n2 := seal.NonceFor(wire.PathID(p2), wire.PacketNumber(pn2))
		return !bytes.Equal(n1, n2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveKeysDistinctPerLabel(t *testing.T) {
	a := DeriveKeys([]byte("s"), "c2s")
	b := DeriveKeys([]byte("s"), "s2c")
	if a.Key == b.Key || a.IV == b.IV {
		t.Fatal("directional keys not distinct")
	}
}

func TestSealedPacketThroughWireCodec(t *testing.T) {
	seal, open := handshakeSealers(t)
	p := &wire.Packet{
		Header: wire.Header{ConnID: 5, Multipath: true, PathID: 1, PacketNumber: 9},
		Frames: []wire.Frame{&wire.StreamFrame{StreamID: 3, Offset: 0, Data: []byte("secret payload")}},
	}
	b := p.Encode(seal)
	if len(b) != p.EncodedSize() {
		t.Fatalf("sealed size %d != EncodedSize %d", len(b), p.EncodedSize())
	}
	got, err := wire.Decode(b, wire.InvalidPacketNumber, open)
	if err != nil {
		t.Fatal(err)
	}
	sf := got.Frames[0].(*wire.StreamFrame)
	if string(sf.Data) != "secret payload" {
		t.Fatalf("payload %q", sf.Data)
	}
	// Decode with nil sealer must NOT recover the plaintext frames.
	if p2, err := wire.Decode(b, wire.InvalidPacketNumber, nil); err == nil {
		for _, f := range p2.Frames {
			if sf, ok := f.(*wire.StreamFrame); ok && string(sf.Data) == "secret payload" {
				t.Fatal("sealed payload readable without keys")
			}
		}
	}
}
