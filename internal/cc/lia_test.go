package cc

import (
	"testing"
	"time"
)

func TestLiaSlowStartDoubles(t *testing.T) {
	l := NewLia(mss)
	p := l.AddPath()
	w := p.Cwnd()
	for b := 0; b < w; b += mss {
		p.OnPacketAcked(mss, 20*time.Millisecond)
	}
	if p.Cwnd() != 2*w {
		t.Fatalf("slow start %d", p.Cwnd())
	}
}

func TestLiaCoupledSlowerThanUncoupled(t *testing.T) {
	l := NewLia(mss)
	p1 := l.AddPath()
	p2 := l.AddPath()
	p1.OnCongestionEvent()
	p2.OnCongestionEvent()
	w1, w2 := p1.Cwnd(), p2.Cwnd()
	for i := 0; i < 1000; i++ {
		p1.OnPacketAcked(mss, 20*time.Millisecond)
		p2.OnPacketAcked(mss, 20*time.Millisecond)
	}
	grown := (p1.Cwnd() - w1) + (p2.Cwnd() - w2)
	if grown <= 0 {
		t.Fatal("LIA did not grow")
	}
	// Two uncoupled Renos would grow ~1000 MSS combined; LIA must be
	// decisively slower.
	if grown > 600*mss {
		t.Fatalf("LIA grew %d bytes — not coupled", grown)
	}
}

func TestLiaSinglePathApproachesReno(t *testing.T) {
	l := NewLia(mss)
	p := l.AddPath()
	p.OnCongestionEvent() // leave slow start
	w := p.Cwnd()
	// Ack one full window: Reno grows ~1 MSS; LIA with one path has
	// alpha=1 → min(acked·mss/total, acked·mss/w) = same, so ≈ 1 MSS.
	for b := 0; b < w; b += mss {
		p.OnPacketAcked(mss, 20*time.Millisecond)
	}
	grown := p.Cwnd() - w
	if grown < mss/2 || grown > 2*mss {
		t.Fatalf("single-path LIA grew %d, want ~1 MSS", grown)
	}
}

func TestLiaDecreaseAndRTO(t *testing.T) {
	l := NewLia(mss)
	p := l.AddPath()
	for i := 0; i < 100; i++ {
		p.OnPacketAcked(mss, 0)
	}
	w := p.Cwnd()
	p.OnCongestionEvent()
	if p.Cwnd() != w/2 {
		t.Fatalf("halving: %d vs %d", p.Cwnd(), w)
	}
	p.OnRTO()
	if p.Cwnd() != MinWindowPackets*mss {
		t.Fatalf("RTO floor: %d", p.Cwnd())
	}
}

func TestLiaAlphaBounded(t *testing.T) {
	l := NewLia(mss)
	p1 := l.AddPath()
	p2 := l.AddPath()
	p1.srtt, p2.srtt = 10*time.Millisecond, 200*time.Millisecond
	p1.cwnd, p2.cwnd = 100*mss, 4*mss
	a := l.alpha()
	if a <= 0 {
		t.Fatalf("alpha %v", a)
	}
	// RFC 6356's alpha keeps the aggregate no more aggressive than one
	// flow on the best path; for these values it stays near ~1.
	if a > 10 {
		t.Fatalf("alpha %v unreasonably large", a)
	}
}

func TestLiaClose(t *testing.T) {
	l := NewLia(mss)
	p1 := l.AddPath()
	p2 := l.AddPath()
	p2.Close()
	if got := len(l.Paths()); got != 1 || l.Paths()[0] != p1 {
		t.Fatalf("close broken: %d live", got)
	}
	if p1.Name() != "lia" {
		t.Fatal("name")
	}
}
