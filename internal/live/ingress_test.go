package live_test

import (
	"errors"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"mpquic/internal/live"
	"mpquic/internal/netem"
)

// Adversarial ingress tests: packet bursts, kernel receive-queue
// overflow, and cancellation — the failure modes the batched fast
// lane must absorb without wedging or miscounting.

// newDriverOpts is newDriver with construction options.
func newDriverOpts(t *testing.T, n int, opts ...live.Option) *live.Driver {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	d, err := live.NewDriver(addrs, opts...)
	if err != nil {
		if errors.Is(err, os.ErrPermission) || strings.Contains(err.Error(), "not permitted") ||
			strings.Contains(err.Error(), "permission denied") {
			t.Skipf("UDP sockets unavailable in this sandbox: %v", err)
		}
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// countingHandler counts datagrams delivered by the driver loop. Only
// the Run goroutine touches it (the driver's single-writer contract).
type countingHandler struct{ packets, bytes int }

func (h *countingHandler) HandleDatagram(dg netem.Datagram) {
	h.packets++
	h.bytes += int(dg.Size)
}

// blast fires count UDP datagrams of size bytes at the driver's first
// socket from a throwaway sender, as fast as the kernel accepts them.
func blast(t *testing.T, d *live.Driver, count, size int) {
	t.Helper()
	dst, err := net.ResolveUDPAddr("udp", string(d.LocalAddrs()[0]))
	if err != nil {
		t.Fatal(err)
	}
	sender, err := net.DialUDP("udp", nil, dst)
	if err != nil {
		t.Skipf("UDP sender unavailable: %v", err)
	}
	defer sender.Close()
	payload := make([]byte, size)
	for i := 0; i < count; i++ {
		sender.Write(payload)
	}
}

// A burst arriving while the loop is busy elsewhere queues in the
// reader channel (visible via PendingIngress) and is then injected in
// large batches — many packets per clock step, not one step each.
func TestBurstIngressIsBatched(t *testing.T) {
	d := newDriverOpts(t, 1)
	h := &countingHandler{}
	d.Register(d.LocalAddrs()[0], h)

	const burst = 400
	blast(t, d, burst, 1200)

	// The driver is not running yet, so the burst must pile up in the
	// reader queue.
	deadline := time.Now().Add(5 * time.Second)
	for d.PendingIngress() < burst/2 {
		if time.Now().After(deadline) {
			t.Fatalf("burst never queued: PendingIngress = %d after blasting %d", d.PendingIngress(), burst)
		}
		time.Sleep(time.Millisecond)
	}

	// Loopback delivery is reliable at these sizes, but the contract
	// under test is batching, not zero loss — require most of the
	// burst, in far fewer steps than packets.
	if err := d.Run(func() bool { return h.packets >= burst*9/10 }); err != nil {
		t.Fatal(err)
	}
	if d.Stats.IngressBatches == 0 || d.Stats.MaxBatch < 2 {
		t.Fatalf("burst was not batched: %d batches, max batch %d", d.Stats.IngressBatches, d.Stats.MaxBatch)
	}
	if steps := d.Stats.IngressBatches; steps > burst/4 {
		t.Fatalf("burst of %d took %d clock steps; batching is not effective", burst, steps)
	}
	if d.Stats.PacketsIn != uint64(h.packets) {
		t.Fatalf("stats disagree with handler: PacketsIn=%d, handler saw %d", d.Stats.PacketsIn, h.packets)
	}
	// BytesIn counts raw UDP payload (dg.Size adds the emulator's
	// header overhead, so compare against the known payload size).
	if d.Stats.BytesIn != d.Stats.PacketsIn*1200 {
		t.Fatalf("BytesIn = %d, want %d", d.Stats.BytesIn, d.Stats.PacketsIn*1200)
	}
}

// With a deliberately tiny SO_RCVBUF, a sustained burst must overflow
// the kernel receive queue; the driver surfaces the kernel's drop
// counter through Stats.RcvQueueDrops instead of hiding the loss, and
// keeps working afterwards.
func TestTinySocketBufferOverflowSurfaced(t *testing.T) {
	if _, err := os.ReadFile("/proc/net/udp"); err != nil {
		t.Skipf("kernel drop counters unavailable: %v", err)
	}
	d := newDriverOpts(t, 1, live.WithSocketBuffer(2048))
	h := &countingHandler{}
	d.Register(d.LocalAddrs()[0], h)

	// Far more than the reader queue plus a 2 KB kernel buffer can
	// hold: the tail has nowhere to go and the kernel must drop it.
	const flood = 4000
	blast(t, d, flood, 1200)

	deadline := time.Now().Add(10 * time.Second)
	for {
		d.UpdateSocketStats()
		if d.Stats.RcvQueueDrops > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flooded %d packets into a 2 KB socket buffer, kernel drop counter still zero", flood)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The queued survivors still flow once the loop runs: overflow is
	// loss, not a wedge.
	if err := d.Run(func() bool { return h.packets > 0 }); err != nil {
		t.Fatal(err)
	}
	if h.packets == 0 {
		t.Fatal("no packets delivered after overflow")
	}
	d.UpdateSocketStats()
	t.Logf("flood=%d delivered=%d kernel drops=%d", flood, h.packets, d.Stats.RcvQueueDrops)
}

// Cancellation mid-download: the Cancel channel wakes a blocked loop
// promptly and surfaces ErrCanceled (the facade maps it to the
// caller's context error).
func TestDownloadCancel(t *testing.T) {
	silent := newDriver(t, 1) // bound sockets, no endpoint: never answers
	client, conn := dial(t, silent, 1, 77)
	cancel := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(cancel)
	}()
	start := time.Now()
	_, err := live.DownloadWith(client, conn, 1<<20, live.DownloadOpts{
		Deadline: 30 * time.Second,
		Cancel:   cancel,
	})
	if !errors.Is(err, live.ErrCanceled) {
		t.Fatalf("DownloadWith after cancel = %v, want ErrCanceled", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt wake-up", el)
	}
}
