// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation, plus ablation benchmarks for the §3 design
// choices. Each benchmark runs a (subsampled) grid and reports the
// figure's headline statistics as custom metrics, so
//
//	go test -bench=Fig3 -benchmem
//
// regenerates the Figure 3 numbers. Set MPQUIC_BENCH_SCENARIOS to
// scale the grids (the paper uses 253 scenarios and 3 repetitions;
// cmd/mpq-bench -full runs that scale with progress output).
package mpquic

import (
	"os"
	"strconv"
	"testing"
	"time"

	"mpquic/internal/core"
	"mpquic/internal/expdesign"
	"mpquic/internal/netem"
	"mpquic/internal/stats"
)

// benchScenarios controls grid size: small by default so the full
// bench suite completes in minutes on one core.
func benchScenarios() int {
	if v := os.Getenv("MPQUIC_BENCH_SCENARIOS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 8
}

func benchGrid(b *testing.B, class expdesign.Class, size uint64) expdesign.FigureData {
	b.Helper()
	var fd expdesign.FigureData
	for i := 0; i < b.N; i++ {
		var err error
		fd, err = expdesign.RunGrid(expdesign.GridConfig{
			Class:     class,
			Scenarios: benchScenarios(),
			Size:      size,
			Reps:      1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return fd
}

func reportRatios(b *testing.B, fd expdesign.FigureData) {
	single, multi := fd.TimeRatios()
	b.ReportMetric(stats.Median(single), "median_ratio_tcp/quic")
	b.ReportMetric(stats.Median(multi), "median_ratio_mptcp/mpquic")
	b.ReportMetric(100*stats.FractionAbove(single, 1), "%quic_faster")
	b.ReportMetric(100*stats.FractionAbove(multi, 1), "%mpquic_faster")
}

func reportBenefits(b *testing.B, fd expdesign.FigureData) {
	fracT, boxT := fd.BenefitSummary(expdesign.FamilyTCP)
	fracQ, boxQ := fd.BenefitSummary(expdesign.FamilyQUIC)
	b.ReportMetric(100*fracT, "%mptcp_eben>0")
	b.ReportMetric(100*fracQ, "%mpquic_eben>0")
	b.ReportMetric(boxT.Median, "median_eben_mptcp")
	b.ReportMetric(boxQ.Median, "median_eben_mpquic")
}

// BenchmarkTable1Design regenerates the experimental design of
// Table 1: the WSP selection over both parameter ranges.
func BenchmarkTable1Design(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, c := range expdesign.Classes {
			scs := expdesign.GenerateScenarios(c, expdesign.PaperScenarioCount)
			if len(scs) != expdesign.PaperScenarioCount {
				b.Fatalf("%s: %d scenarios", c.Name, len(scs))
			}
		}
	}
	b.ReportMetric(expdesign.PaperScenarioCount, "scenarios/class")
}

// BenchmarkFig3LowBDPNoLoss20MB: CDF of download-time ratios, 20 MB,
// low-BDP without random losses. Paper: single-path ratio ≈ 1;
// MPQUIC faster than MPTCP in 89% of sims.
func BenchmarkFig3LowBDPNoLoss20MB(b *testing.B) {
	fd := benchGrid(b, expdesign.LowBDPNoLoss, expdesign.LargeTransfer)
	reportRatios(b, fd)
}

// BenchmarkFig4AggBenefitLowBDPNoLoss: experimental aggregation
// benefit boxes. Paper: MPQUIC beats its single-path variant in 77% of
// scenarios, MPTCP in 45%.
func BenchmarkFig4AggBenefitLowBDPNoLoss(b *testing.B) {
	fd := benchGrid(b, expdesign.LowBDPNoLoss, expdesign.LargeTransfer)
	reportBenefits(b, fd)
}

// BenchmarkFig5LowBDPLoss20MB: time-ratio CDFs under random losses.
// Paper: (MP)QUIC nearly always faster than (MP)TCP.
func BenchmarkFig5LowBDPLoss20MB(b *testing.B) {
	fd := benchGrid(b, expdesign.LowBDPLosses, expdesign.LargeTransfer)
	reportRatios(b, fd)
}

// BenchmarkFig6AggBenefitLowBDPLoss: aggregation benefit with random
// losses. Paper: multipath still beneficial to QUIC, higher variance.
func BenchmarkFig6AggBenefitLowBDPLoss(b *testing.B) {
	fd := benchGrid(b, expdesign.LowBDPLosses, expdesign.LargeTransfer)
	reportBenefits(b, fd)
}

// BenchmarkFig7AggBenefitHighBDPNoLoss: aggregation benefit in
// high-BDP environments. Paper: MPTCP positive in only 20% of
// scenarios, MPQUIC in 58%.
func BenchmarkFig7AggBenefitHighBDPNoLoss(b *testing.B) {
	fd := benchGrid(b, expdesign.HighBDPNoLoss, expdesign.LargeTransfer)
	reportBenefits(b, fd)
}

// BenchmarkFig8HighBDPLoss20MB: time ratios in lossy high-BDP
// networks. Paper: (MP)QUIC better copes with loss.
func BenchmarkFig8HighBDPLoss20MB(b *testing.B) {
	fd := benchGrid(b, expdesign.HighBDPLosses, expdesign.LargeTransfer)
	reportRatios(b, fd)
}

// BenchmarkFig9ShortTransfer: 256 KB downloads. Paper: QUIC beats
// TCP thanks to the 1-RTT vs 3-RTT handshake.
func BenchmarkFig9ShortTransfer(b *testing.B) {
	fd := benchGrid(b, expdesign.LowBDPNoLoss, expdesign.ShortTransfer)
	reportRatios(b, fd)
}

// BenchmarkFig10AggBenefitShort: aggregation benefit for short
// transfers. Paper: multipath is not useful for short transfers.
func BenchmarkFig10AggBenefitShort(b *testing.B) {
	fd := benchGrid(b, expdesign.LowBDPNoLoss, expdesign.ShortTransfer)
	reportBenefits(b, fd)
}

// BenchmarkFig11Handover: the §4.3 request/response handover. Reports
// the worst response delay right after the failure (the recovery
// spike) and the steady-state delay on the surviving path.
func BenchmarkFig11Handover(b *testing.B) {
	var res expdesign.HandoverResult
	for i := 0; i < b.N; i++ {
		res = expdesign.RunHandover(expdesign.DefaultHandoverConfig())
	}
	var spike, after time.Duration
	for _, s := range res.Samples {
		if s.SentAt > 3*time.Second && s.Delay > spike {
			spike = s.Delay
		}
		if s.SentAt > 6*time.Second && s.Delay > after {
			after = s.Delay
		}
	}
	b.ReportMetric(float64(spike)/1e6, "recovery_spike_ms")
	b.ReportMetric(float64(after)/1e6, "steady_after_ms")
	b.ReportMetric(boolMetric(res.ServerSawPathsFrame), "paths_frame_delivered")
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// --- ablation benchmarks: the §3 design choices ---

// ablationScenarios is a handcrafted scenario set chosen to expose the
// design choices: strongly heterogeneous paths (where scheduling and
// coupling decisions matter), a balanced pair (aggregation), and a
// lossy asymmetric pair (recovery routing).
func ablationScenarios() []expdesign.Scenario {
	mk := func(id int, p0, p1 netem.PathSpec) expdesign.Scenario {
		return expdesign.Scenario{ID: id, Class: "ablation", Paths: [2]netem.PathSpec{p0, p1}}
	}
	ms := time.Millisecond
	return []expdesign.Scenario{
		// Heterogeneous capacity and RTT: a scheduler that leans on
		// the slow path pays for it.
		mk(0, netem.PathSpec{CapacityMbps: 20, RTT: 15 * ms, QueueDelay: 50 * ms},
			netem.PathSpec{CapacityMbps: 2, RTT: 150 * ms, QueueDelay: 150 * ms}),
		// Balanced: aggregation potential 2x.
		mk(1, netem.PathSpec{CapacityMbps: 8, RTT: 30 * ms, QueueDelay: 80 * ms},
			netem.PathSpec{CapacityMbps: 8, RTT: 35 * ms, QueueDelay: 80 * ms}),
		// Lossy slow path: retransmission routing and coupling matter.
		mk(2, netem.PathSpec{CapacityMbps: 12, RTT: 25 * ms, QueueDelay: 60 * ms},
			netem.PathSpec{CapacityMbps: 3, RTT: 80 * ms, QueueDelay: 100 * ms, LossRate: 0.01}),
		// Extreme RTT asymmetry with a tight queue.
		mk(3, netem.PathSpec{CapacityMbps: 10, RTT: 10 * ms, QueueDelay: 30 * ms},
			netem.PathSpec{CapacityMbps: 5, RTT: 250 * ms, QueueDelay: 60 * ms}),
	}
}

func runVariant(b *testing.B, cfg core.Config) (meanElapsed float64, completed int) {
	b.Helper()
	var el []float64
	for _, sc := range ablationScenarios() {
		res := expdesign.RunMPQUICVariant(sc, cfg, 4<<20, 0, 11)
		if res.Completed {
			completed++
		}
		el = append(el, res.Elapsed.Seconds())
	}
	return stats.Mean(el), completed
}

// BenchmarkAblationScheduler compares the paper's lowest-RTT scheduler
// against round-robin (§3 argues round-robin is fragile with
// heterogeneous paths).
func BenchmarkAblationScheduler(b *testing.B) {
	var lr, rr float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		lr, _ = runVariant(b, cfg)
		cfg.Scheduler = core.SchedRoundRobin
		rr, _ = runVariant(b, cfg)
	}
	b.ReportMetric(lr, "lowest_rtt_mean_s")
	b.ReportMetric(rr, "round_robin_mean_s")
}

// BenchmarkAblationDuplication toggles the duplicate-on-fresh-path
// phase of the scheduler (§3: duplication trades some overhead for
// immediate use of new paths without head-of-line risk).
func BenchmarkAblationDuplication(b *testing.B) {
	var withDup, noDup float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		withDup, _ = runVariant(b, cfg)
		cfg.DuplicateOnNewPath = false
		cfg.Scheduler = core.SchedLowestRTTNoDup
		noDup, _ = runVariant(b, cfg)
	}
	b.ReportMetric(withDup, "duplication_mean_s")
	b.ReportMetric(noDup, "no_duplication_mean_s")
}

// BenchmarkAblationCongestionControl compares coupled OLIA against
// running decoupled CUBIC on every path (§3: decoupled CUBIC on a
// multipath connection is unfair; OLIA is the paper's choice).
func BenchmarkAblationCongestionControl(b *testing.B) {
	var olia, cubic float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		olia, _ = runVariant(b, cfg)
		cfg.CC = core.CCCubic
		cubic, _ = runVariant(b, cfg)
	}
	b.ReportMetric(olia, "olia_mean_s")
	b.ReportMetric(cubic, "decoupled_cubic_mean_s")
}

// BenchmarkAblationWindowUpdateBroadcast toggles sending WINDOW_UPDATE
// frames on all paths (§3: broadcast avoids receive-buffer blocking).
func BenchmarkAblationWindowUpdateBroadcast(b *testing.B) {
	var bcast, single float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		bcast, _ = runVariant(b, cfg)
		cfg.WindowUpdateAllPaths = false
		single, _ = runVariant(b, cfg)
	}
	b.ReportMetric(bcast, "wu_all_paths_mean_s")
	b.ReportMetric(single, "wu_single_path_mean_s")
}

// BenchmarkAblationBLEST compares the paper's lowest-RTT scheduler
// against the BLEST-inspired blocking-estimation scheduler (extension;
// BLEST is cited as related work [16]) on a window-constrained,
// heterogeneous scenario where blocking estimation should help.
func BenchmarkAblationBLEST(b *testing.B) {
	var lowest, blest float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.ConnWindow = 512 << 10
		cfg.StreamWindow = 512 << 10
		lowest, _ = runVariant(b, cfg)
		cfg.Scheduler = core.SchedBLEST
		blest, _ = runVariant(b, cfg)
	}
	b.ReportMetric(lowest, "lowest_rtt_mean_s")
	b.ReportMetric(blest, "blest_mean_s")
}

// BenchmarkAblationLIAvsOLIA compares the two coupled congestion
// controllers (the comparison §3 leaves to further study).
func BenchmarkAblationLIAvsOLIA(b *testing.B) {
	var olia, lia float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		olia, _ = runVariant(b, cfg)
		cfg.CC = core.CCLia
		lia, _ = runVariant(b, cfg)
	}
	b.ReportMetric(olia, "olia_mean_s")
	b.ReportMetric(lia, "lia_mean_s")
}

// BenchmarkAblationTailReinjection measures the completion-tail
// extension on the blackholed-path scenario its test pins down.
func BenchmarkAblationTailReinjection(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.TailReinjection = true
		with, _ = runVariant(b, cfg)
		cfg.TailReinjection = false
		without, _ = runVariant(b, cfg)
	}
	b.ReportMetric(with, "tail_reinjection_mean_s")
	b.ReportMetric(without, "no_reinjection_mean_s")
}

// BenchmarkAblationZeroRTT quantifies the 0-RTT resumption extension
// on Fig. 9's short-transfer workload, where §4.2 shows handshake
// latency dominates.
func BenchmarkAblationZeroRTT(b *testing.B) {
	run := func(zeroRTT bool) float64 {
		var el []float64
		for _, sc := range ablationScenarios() {
			cfg := core.DefaultConfig()
			cfg.ZeroRTT = zeroRTT
			res := expdesign.RunMPQUICVariant(sc, cfg, expdesign.ShortTransfer, 0, 13)
			el = append(el, res.Elapsed.Seconds())
		}
		return stats.Median(el)
	}
	var zero, one float64
	for i := 0; i < b.N; i++ {
		zero = run(true)
		one = run(false)
	}
	b.ReportMetric(zero*1000, "zero_rtt_median_ms")
	b.ReportMetric(one*1000, "one_rtt_median_ms")
}

// BenchmarkAblationPathsFrame measures the §4.3 handover recovery
// spike with and without the PATHS-frame failure signal.
func BenchmarkAblationPathsFrame(b *testing.B) {
	spikeOf := func(paths bool) float64 {
		hc := expdesign.DefaultHandoverConfig()
		hc.PathsFrameOnFailure = paths
		res := expdesign.RunHandover(hc)
		var spike time.Duration
		for _, s := range res.Samples {
			if s.SentAt > 3*time.Second && s.Delay > spike {
				spike = s.Delay
			}
		}
		return float64(spike) / 1e6
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = spikeOf(true)
		without = spikeOf(false)
	}
	b.ReportMetric(with, "spike_with_paths_ms")
	b.ReportMetric(without, "spike_without_paths_ms")
}
