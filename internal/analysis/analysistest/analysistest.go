// Package analysistest runs an analyzer over a testdata package and
// checks its diagnostics against `// want "regexp"` comments, in the
// style of golang.org/x/tools/go/analysis/analysistest but built only
// on the standard library.
//
// A test package lives at testdata/src/<name>/ and marks each expected
// finding with a trailing comment on the offending line:
//
//	for k := range m { // want `map iteration order`
//
// Several expectations on one line are written as several quoted
// regexps: `// want "a" "b"`. Both double-quoted and backquoted forms
// are accepted. Suppressions (//mpqvet:allow ...) are applied before
// matching, so a line carrying a valid allow and no want comment
// asserts the suppression works.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"mpquic/internal/analysis"
)

// wantRe extracts the quoted regexps of a `// want` comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// Run loads each named package from testdata/src/<pkg>, applies the
// analyzer, and reports mismatches between actual diagnostics and the
// // want expectations through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		loaded, err := analysis.LoadFromDir(root, dir, pkg)
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}
		diags, err := analysis.RunAnalyzers(loaded, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("%s: %v", pkg, err)
		}
		check(t, loaded, diags)
	}
}

// expectation is one // want regexp with match bookkeeping.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

func check(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				// A want may also be embedded after a nested "//", so a
				// line whose only comment is an //mpq: directive can still
				// carry an expectation: //mpq:bogus // want `unknown`.
				if i := strings.Index(text, "// want"); i >= 0 {
					text = strings.TrimSpace(text[i+2:])
				}
				if !strings.HasPrefix(text, "want ") && text != "want" {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				for _, m := range wantRe.FindAllStringSubmatch(strings.TrimPrefix(text, "want"), -1) {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, raw, err)
						continue
					}
					wants = append(wants, &expectation{pos.Filename, pos.Line, re, raw, false})
				}
			}
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d.Format(pkg.Fset))
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
