// Package cc implements the congestion controllers the paper compares:
// NewReno (as a reference), CUBIC (used by both single-path TCP and
// QUIC, §4.1), and the OLIA coupled multipath controller (used by both
// MPTCP and MPQUIC, §3 Congestion Control).
//
// Controllers are window-based and byte-counted. Pacing, in-flight
// accounting and once-per-window congestion-event filtering are the
// transport's job; controllers only maintain the window.
package cc

import "time"

// Controller is a per-path congestion controller.
type Controller interface {
	// OnPacketSent informs the controller bytes left the sender.
	OnPacketSent(bytes int)
	// OnPacketAcked credits newly acknowledged bytes. rtt is the
	// path's current smoothed RTT (used by coupled controllers).
	OnPacketAcked(bytes int, rtt time.Duration)
	// OnCongestionEvent applies one multiplicative decrease. Callers
	// must filter duplicate signals from the same loss episode (at
	// most one event per window).
	OnCongestionEvent()
	// OnRTO collapses the window after a retransmission timeout.
	OnRTO()
	// Cwnd reports the congestion window in bytes.
	Cwnd() int
	// InSlowStart reports whether the controller is in slow start.
	InSlowStart() bool
	// Name identifies the algorithm for traces.
	Name() string
}

// Default window constants (in MSS units), matching quic-go and Linux.
const (
	// InitialWindowPackets is the initial congestion window.
	InitialWindowPackets = 10
	// MinWindowPackets floors the window after decreases.
	MinWindowPackets = 2
)

// Reno is byte-counted NewReno: slow start doubling, AIMD congestion
// avoidance, half-window decrease.
type Reno struct {
	mss      int
	cwnd     int
	ssthresh int
	acked    int // bytes accumulated toward the next CA increase
	maxCwnd  int
}

// NewReno returns a NewReno controller for the given MSS.
func NewReno(mss int) *Reno {
	return &Reno{
		mss:      mss,
		cwnd:     InitialWindowPackets * mss,
		ssthresh: 1 << 30,
		maxCwnd:  1 << 30,
	}
}

// SetMaxCwnd clamps the window (emulating sendbuf limits).
func (r *Reno) SetMaxCwnd(b int) { r.maxCwnd = b }

func (r *Reno) Name() string           { return "reno" }
func (r *Reno) Cwnd() int              { return r.cwnd }
func (r *Reno) InSlowStart() bool      { return r.cwnd < r.ssthresh }
func (r *Reno) OnPacketSent(bytes int) {}

func (r *Reno) OnPacketAcked(bytes int, _ time.Duration) {
	if r.InSlowStart() {
		r.cwnd += bytes
	} else {
		r.acked += bytes
		if r.acked >= r.cwnd {
			r.acked -= r.cwnd
			r.cwnd += r.mss
		}
	}
	if r.cwnd > r.maxCwnd {
		r.cwnd = r.maxCwnd
	}
}

func (r *Reno) OnCongestionEvent() {
	r.cwnd /= 2
	if r.cwnd < MinWindowPackets*r.mss {
		r.cwnd = MinWindowPackets * r.mss
	}
	r.ssthresh = r.cwnd
	r.acked = 0
}

func (r *Reno) OnRTO() {
	r.ssthresh = r.cwnd / 2
	if r.ssthresh < MinWindowPackets*r.mss {
		r.ssthresh = MinWindowPackets * r.mss
	}
	r.cwnd = MinWindowPackets * r.mss
	r.acked = 0
}
