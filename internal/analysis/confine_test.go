package analysis_test

import (
	"testing"

	"mpquic/internal/analysis"
	"mpquic/internal/analysis/analysistest"
)

func TestConfine(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Confine, "confine")
}
