package stream

// FlowController enforces one flow-control level (a single stream or
// the whole connection). QUIC flow control is credit-based: the
// receiver advertises an absolute byte limit via WINDOW_UPDATE and the
// sender never exceeds it (§2: the WINDOW_UPDATE frame "is used to
// advertise the receive window of the peer").
type FlowController struct {
	// Send side: the peer's advertised limit and our consumption.
	sendLimit uint64
	sent      uint64

	// Receive side: what we advertised, what arrived, what the app
	// consumed, and the window size we grant.
	recvLimit    uint64
	highestRecvd uint64
	consumed     uint64
	windowSize   uint64
}

// NewFlowController builds a controller granting (and assuming the
// peer grants) initialWindow bytes of credit.
func NewFlowController(initialWindow uint64) *FlowController {
	return &FlowController{
		sendLimit:  initialWindow,
		recvLimit:  initialWindow,
		windowSize: initialWindow,
	}
}

// --- send side ---

// SendAllowance reports how many more bytes may be sent right now.
func (f *FlowController) SendAllowance() uint64 {
	if f.sent >= f.sendLimit {
		return 0
	}
	return f.sendLimit - f.sent
}

// AddBytesSent consumes send credit.
func (f *FlowController) AddBytesSent(n uint64) { f.sent += n }

// SendLimit returns the peer's advertised absolute limit.
func (f *FlowController) SendLimit() uint64 { return f.sendLimit }

// BytesSent returns the cumulative flow-controlled bytes sent.
func (f *FlowController) BytesSent() uint64 { return f.sent }

// UpdateSendLimit raises the limit from a received WINDOW_UPDATE.
// Regressions (stale frames) are ignored. It reports whether the
// window actually grew — the signal to unblock the sender.
func (f *FlowController) UpdateSendLimit(limit uint64) bool {
	if limit <= f.sendLimit {
		return false
	}
	f.sendLimit = limit
	return true
}

// Blocked reports whether the sender is out of credit.
func (f *FlowController) Blocked() bool { return f.SendAllowance() == 0 }

// --- receive side ---

// OnReceive records stream bytes arriving up to absolute offset end.
// It reports whether the peer violated flow control.
func (f *FlowController) OnReceive(end uint64) (ok bool) {
	if end > f.highestRecvd {
		f.highestRecvd = end
	}
	return end <= f.recvLimit
}

// OnConsume records the application reading n more bytes, freeing
// receive credit.
func (f *FlowController) OnConsume(n uint64) { f.consumed += n }

// ShouldSendUpdate reports whether enough credit was freed that a
// WINDOW_UPDATE is worth sending (less than half the window remains
// since the last advertisement).
func (f *FlowController) ShouldSendUpdate() bool {
	next := f.consumed + f.windowSize
	return next >= f.recvLimit+f.windowSize/2
}

// NextUpdate returns (and commits to) the limit a WINDOW_UPDATE should
// carry.
func (f *FlowController) NextUpdate() uint64 {
	next := f.consumed + f.windowSize
	if next > f.recvLimit {
		f.recvLimit = next
	}
	return f.recvLimit
}

// RecvLimit returns the current advertised limit.
func (f *FlowController) RecvLimit() uint64 { return f.recvLimit }
