package wire

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

// fuzzSeedPackets builds one encodable packet per frame type (plus a
// handshake packet and a single-path packet), the native-fuzzing seed
// corpus for FuzzDecode and FuzzDecodeBorrowed.
func fuzzSeedPackets() []*Packet {
	hdr := func(pn PacketNumber) Header {
		return Header{ConnID: 0xfeed_beef_cafe_f00d, Multipath: true, PathID: 1, PacketNumber: pn}
	}
	return []*Packet{
		{Header: hdr(1), Frames: []Frame{&PaddingFrame{Length: 7}}},
		{Header: hdr(2), Frames: []Frame{&PingFrame{}}},
		{Header: hdr(3), Frames: []Frame{&StreamFrame{StreamID: 5, Offset: 1 << 16, Data: []byte("stream data"), Fin: true}}},
		{Header: hdr(4), LargestAcked: 3, Frames: []Frame{&AckFrame{
			PathID:   1,
			Ranges:   []AckRange{{Smallest: 9, Largest: 12}, {Smallest: 2, Largest: 5}},
			AckDelay: 250 * time.Microsecond,
		}}},
		{Header: hdr(5), Frames: []Frame{&WindowUpdateFrame{StreamID: 3, Offset: 1 << 24}}},
		{Header: hdr(6), Frames: []Frame{&BlockedFrame{StreamID: 3}}},
		{Header: hdr(7), Frames: []Frame{&AddAddressFrame{AddrIndex: 1, Address: "server-v6"}}},
		{Header: hdr(8), Frames: []Frame{&PathsFrame{Paths: []PathInfo{
			{PathID: 0, SRTT: 30 * time.Millisecond},
			{PathID: 1, PotentiallyFailed: true, SRTT: 90 * time.Millisecond},
		}}}},
		{Header: hdr(9), Frames: []Frame{&ConnectionCloseFrame{ErrorCode: 42, Reason: "done"}}},
		{Header: Header{ConnID: 1, Handshake: true, PacketNumber: 1},
			Frames: []Frame{&HandshakeFrame{Message: HandshakeCHLO, Payload: []byte("chlo")}}},
		{Header: Header{ConnID: 2, PacketNumber: 10},
			Frames: []Frame{&StreamFrame{StreamID: 1, Data: []byte("single path")}}},
	}
}

// FuzzDecode asserts two properties on arbitrary input: decoding never
// panics, and any packet that decodes successfully re-encodes to a
// byte-level fixed point (encode∘decode∘encode = encode), so the codec
// is lossless over its accepted language.
func FuzzDecode(f *testing.F) {
	for _, p := range fuzzSeedPackets() {
		f.Add(p.Encode(nil), uint32(p.Header.PacketNumber))
	}
	f.Add([]byte{}, uint32(0))
	f.Fuzz(func(t *testing.T, b []byte, largest uint32) {
		p1, err := Decode(b, PacketNumber(largest), nil)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		e1 := p1.Encode(nil)
		p2, err := Decode(e1, PacketNumber(largest), nil)
		if err != nil {
			t.Fatalf("re-encoded packet no longer decodes: %v\ninput:   %x\nencoded: %x", err, b, e1)
		}
		e2 := p2.Encode(nil)
		if !bytes.Equal(e1, e2) {
			t.Fatalf("encode is not a fixed point:\ne1: %x\ne2: %x", e1, e2)
		}
	})
}

// FuzzDecodeBorrowed asserts DecodeBorrowed never panics and agrees
// exactly with Decode — same error, structurally identical packet —
// and that the borrowed packet's aliases really point into the input
// (mutating the buffer after a copying Decode must not change it,
// while the borrowed decode is free to).
func FuzzDecodeBorrowed(f *testing.F) {
	for _, p := range fuzzSeedPackets() {
		f.Add(p.Encode(nil), uint32(p.Header.PacketNumber))
	}
	f.Fuzz(func(t *testing.T, b []byte, largest uint32) {
		owned, errOwned := Decode(append([]byte(nil), b...), PacketNumber(largest), nil)
		borrowed, errBorrowed := DecodeBorrowed(append([]byte(nil), b...), PacketNumber(largest), nil)
		if (errOwned == nil) != (errBorrowed == nil) {
			t.Fatalf("Decode err=%v but DecodeBorrowed err=%v on %x", errOwned, errBorrowed, b)
		}
		if errOwned != nil {
			return
		}
		if !reflect.DeepEqual(owned, borrowed) {
			t.Fatalf("DecodeBorrowed disagrees with Decode on %x:\nowned:    %#v\nborrowed: %#v", b, owned, borrowed)
		}
	})
}
