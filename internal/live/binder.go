package live

import (
	"fmt"
	"net"
	"net/netip"
	"sync/atomic"

	"mpquic/internal/netem"
)

// connBox wraps the active socket handle so it can sit behind an
// atomic pointer (atomic.Pointer needs a concrete pointee; UDPConn is
// an interface).
type connBox struct{ c UDPConn }

// pathSocket is one bound UDP socket slot: the real-world incarnation
// of a local path address. The slot outlives any single socket — a
// reader's rebind ladder may replace the conn — but the identity
// (idx, local, ap) is fixed at bind time, which is what keeps the
// binder's socks slice and byLocal map immutable after construction.
type pathSocket struct {
	// conn is the active socket, swapped atomically by the owning
	// reader's rebind ladder and read by the run loop's flush.
	//mpq:crossing
	conn  atomic.Pointer[connBox]
	idx   int            // path index (bind order): names the socket in traces and fault scripts
	local netem.Addr     // the actually-bound "ip:port", the path identity
	ap    netip.AddrPort // the same address as a value, for /proc matching and rebinding
}

// loadConn returns the active socket.
func (s *pathSocket) loadConn() UDPConn { return s.conn.Load().c }

// storeConn publishes a replacement socket.
func (s *pathSocket) storeConn(c UDPConn) { s.conn.Store(&connBox{c: c}) }

// PathBinder maps the address identities the core stack uses for its
// paths onto real UDP endpoints. Core identifies a path by its
// (local, remote) netem.Addr pair; in live mode those strings are
// literal "ip:port" addresses, so the binder resolves:
//
//   - local netem.Addr → the pathSocket slot that owns it (egress
//     socket selection, one socket per local interface address);
//   - remote netem.Addr → a resolved netip.AddrPort (egress
//     destination), cached after the first lookup so the per-packet
//     egress path allocates nothing.
//
// Path IDs map through position: core.Dial pairs locals[i] with
// remotes[i] as path i, and Locals() preserves the order the sockets
// were bound in, so index i of the binder is the local endpoint of
// path i (the paper's WiFi+LTE dual-homing is two loopback ports in
// the tests). Servers need no remote table up front: remotes are
// learned per-datagram from the ingress source address.
//
// The socks slice and byLocal map never mutate after construction
// (rebinds swap a slot's conn pointer, not the slot); the remotes
// cache is driver-goroutine-only (reader goroutines touch only the
// slots' atomic conn).
type PathBinder struct {
	socks   []*pathSocket
	byLocal map[netem.Addr]*pathSocket
	remotes map[netem.Addr]netip.AddrPort
	sockBuf int
}

// newPathBinder binds one UDP socket per local address. Addresses may
// use port 0; the kernel-assigned port becomes part of the path
// identity (see Locals). sockBuf is the SO_RCVBUF/SO_SNDBUF request
// per socket. wrap, when non-nil, interposes on every bound socket
// (fault injection). On error, already-bound sockets are closed.
func newPathBinder(localAddrs []string, sockBuf int, wrap SocketWrapper) (*PathBinder, error) {
	if len(localAddrs) == 0 {
		return nil, fmt.Errorf("live: need at least one local address")
	}
	b := &PathBinder{
		byLocal: make(map[netem.Addr]*pathSocket, len(localAddrs)),
		remotes: make(map[netem.Addr]netip.AddrPort),
		sockBuf: sockBuf,
	}
	for i, a := range localAddrs {
		ua, err := net.ResolveUDPAddr("udp", a)
		if err == nil && ua.IP == nil {
			// A wildcard bind would make the local path identity
			// ambiguous (the From address core stamps on egress must
			// name one socket).
			err = fmt.Errorf("wildcard address not allowed; bind an explicit IP")
		}
		var pc *net.UDPConn
		if err == nil {
			pc, err = net.ListenUDP("udp", ua)
		}
		if err != nil {
			b.closeSockets()
			return nil, fmt.Errorf("live: bind %s: %w", a, err)
		}
		// Deep socket buffers: the driver drains sockets in batches
		// between protocol events, so the kernel queue is the only
		// thing standing between a burst and loss. Best-effort — the
		// OS clamps to its limits. Overflow shows up in
		// Stats.RcvQueueDrops.
		if sockBuf > 0 {
			pc.SetReadBuffer(sockBuf)
			pc.SetWriteBuffer(sockBuf)
		}
		lap := pc.LocalAddr().(*net.UDPAddr).AddrPort()
		lap = netip.AddrPortFrom(lap.Addr().Unmap(), lap.Port())
		s := &pathSocket{idx: i, local: netem.Addr(lap.String()), ap: lap}
		var c UDPConn = pc
		if wrap != nil {
			c = wrap(i, pc)
		}
		s.storeConn(c)
		b.socks = append(b.socks, s)
		b.byLocal[s.local] = s
	}
	return b, nil
}

// Locals returns the actually-bound local addresses in bind order:
// index i is the local endpoint of path i. Pass this slice to
// core.Dial/core.Listen so the path identities match the sockets.
func (b *PathBinder) Locals() []netem.Addr {
	out := make([]netem.Addr, len(b.socks))
	for i, s := range b.socks {
		out[i] = s.local
	}
	return out
}

// NumPaths reports the number of bound local path endpoints.
func (b *PathBinder) NumPaths() int { return len(b.socks) }

// LocalUDP returns the bound UDP address of local path endpoint i.
func (b *PathBinder) LocalUDP(i int) *net.UDPAddr {
	return net.UDPAddrFromAddrPort(b.socks[i].ap)
}

// socketFor returns the socket slot owning a local address, or nil.
func (b *PathBinder) socketFor(local netem.Addr) *pathSocket {
	return b.byLocal[local]
}

// remoteAddrPort resolves a remote path address, caching the result
// (egress runs per packet; resolution must not, and the cached value
// type keeps the hot path allocation-free).
func (b *PathBinder) remoteAddrPort(addr netem.Addr) (netip.AddrPort, bool) {
	if ap, ok := b.remotes[addr]; ok {
		return ap, ok
	}
	ua, err := net.ResolveUDPAddr("udp", string(addr))
	if err != nil {
		return netip.AddrPort{}, false
	}
	ap := ua.AddrPort()
	ap = netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
	b.remotes[addr] = ap
	return ap, true
}

// RemoteUDP resolves a remote path address to a UDP address, caching
// the underlying lookup.
func (b *PathBinder) RemoteUDP(addr netem.Addr) (*net.UDPAddr, error) {
	ap, ok := b.remoteAddrPort(addr)
	if !ok {
		return nil, fmt.Errorf("live: resolve %s: unresolvable address", addr)
	}
	return net.UDPAddrFromAddrPort(ap), nil
}

// kernelDrops sums the kernel receive-queue overflow counters of every
// bound socket (see sockstats.go); zero where unavailable.
func (b *PathBinder) kernelDrops() uint64 {
	var total uint64
	for _, s := range b.socks {
		total += procUDPDrops(s.ap)
	}
	return total
}

// closeSockets closes every slot's active socket, unblocking reader
// loops. A reader mid-rebind may store a fresh conn concurrently; the
// ladder re-checks the close flag after publishing and closes its own
// conn then, so every socket is closed by at least one side.
func (b *PathBinder) closeSockets() {
	for _, s := range b.socks {
		s.loadConn().Close()
	}
}
