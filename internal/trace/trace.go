// Package trace provides structured event tracing for the protocol
// stacks — the reproduction's equivalent of qlog. A Tracer receives
// typed events (packets sent/received/acked/lost, congestion-window
// updates, path lifecycle, handshake milestones) and writers render
// them as human-readable text, newline-delimited JSON, or
// qlog-compatible JSONL (Qlog). Beyond event streams, the package
// holds the two observability primitives the experiment grids build
// on: the per-path time-series sampler (PathSample/SeriesRecorder) and
// the bounded post-mortem ring buffer (FlightRecorder).
//
// Tracing is opt-in per connection (Config.Tracer); a nil tracer costs
// one branch per event and zero allocations on the hot send/receive
// path (enforced by the allocation-budget tests in internal/perf).
//
// Determinism contract: every timestamp in this package is simulated
// time (time.Duration since the run's start) — wall clocks are banned
// repo-wide by the `mpq-vet walltime` analyzer — and every encoder
// writes through fixed-field structs in a fixed order. Two runs with
// equal seeds therefore produce byte-identical traces, series and
// dumps. The full event schema, the qlog mapping and the sampling
// semantics are documented in OBSERVABILITY.md.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// EventType classifies trace events.
type EventType string

// Event types emitted by the core engine.
const (
	PacketSent     EventType = "packet_sent"
	PacketReceived EventType = "packet_received"
	PacketAcked    EventType = "packet_acked"
	PacketLost     EventType = "packet_lost"
	CwndUpdated    EventType = "cwnd_updated"
	RTOFired       EventType = "rto_fired"
	PathOpened     EventType = "path_opened"
	PathFailed     EventType = "path_potentially_failed"
	PathRecovered  EventType = "path_recovered"
	HandshakeDone  EventType = "handshake_done"
	ConnClosed     EventType = "connection_closed"
)

// Event types emitted by the live driver's socket health ladder (see
// internal/live): a socket hit a persistent error and its paths were
// marked potentially failed; a rebind brought a fresh socket up on the
// same local address; the rebind budget ran out and the path is dead
// for the rest of the run.
const (
	SocketDegraded EventType = "socket_degraded"
	SocketRebound  EventType = "socket_rebound"
	SocketFailed   EventType = "socket_failed"
)

// Event types emitted by the network emulator (link lifecycle). These
// explain dynamic scenarios: a link going down/up and runtime
// reconfigurations (rate/delay/loss changes, loss-model or jitter
// installation) appear in the trace alongside the protocol's reaction.
const (
	LinkDown         EventType = "link_down"
	LinkUp           EventType = "link_up"
	LinkReconfigured EventType = "link_reconfigured"
)

// AllEventTypes returns every EventType this package defines, in
// declaration order. It is the registry the documentation linter
// (scripts/doclint.go) checks OBSERVABILITY.md against and the qlog
// tests enumerate; extend it when adding an event type.
func AllEventTypes() []EventType {
	return []EventType{
		PacketSent, PacketReceived, PacketAcked, PacketLost,
		CwndUpdated, RTOFired,
		PathOpened, PathFailed, PathRecovered,
		HandshakeDone, ConnClosed,
		SocketDegraded, SocketRebound, SocketFailed,
		LinkDown, LinkUp, LinkReconfigured,
	}
}

// Event is one trace record. Fields irrelevant to a given type are
// zero.
type Event struct {
	Time   time.Duration `json:"t"`
	Type   EventType     `json:"ev"`
	Path   uint8         `json:"path"`
	PN     uint64        `json:"pn,omitempty"`
	Size   int           `json:"size,omitempty"`
	Cwnd   int           `json:"cwnd,omitempty"`
	SRTT   time.Duration `json:"srtt,omitempty"`
	Detail string        `json:"detail,omitempty"`
}

// Tracer consumes events. Implementations must not mutate simulation
// state: a tracer is a pure observer, and attaching or detaching one
// must never change a run's schedule or results (the golden grid tests
// pin this — artifacts are byte-identical with tracing on or off).
type Tracer interface {
	Trace(ev Event)
}

// Nop discards all events.
type Nop struct{}

// Trace implements Tracer.
func (Nop) Trace(Event) {}

// Text renders events as aligned text lines. Output is a pure
// function of the event stream (byte-identical across same-seed runs).
type Text struct {
	W io.Writer
}

// NewText builds a text tracer.
func NewText(w io.Writer) *Text { return &Text{W: w} }

// Trace implements Tracer.
func (t *Text) Trace(ev Event) {
	fmt.Fprintf(t.W, "%12.6f  %-24s path=%d", ev.Time.Seconds(), ev.Type, ev.Path)
	if ev.Type == PacketSent || ev.Type == PacketReceived || ev.Type == PacketAcked || ev.Type == PacketLost {
		fmt.Fprintf(t.W, " pn=%d size=%d", ev.PN, ev.Size)
	}
	if ev.Cwnd > 0 {
		fmt.Fprintf(t.W, " cwnd=%d", ev.Cwnd)
	}
	if ev.SRTT > 0 {
		fmt.Fprintf(t.W, " srtt=%v", ev.SRTT)
	}
	if ev.Detail != "" {
		fmt.Fprintf(t.W, " %s", ev.Detail)
	}
	fmt.Fprintln(t.W)
}

// JSON renders events as newline-delimited JSON (qlog-lite: this
// package's own Event encoding, one object per line). For the
// qvis-loadable qlog shape use Qlog instead. Output is a pure function
// of the event stream.
type JSON struct {
	W   io.Writer
	enc *json.Encoder
}

// NewJSON builds a JSON tracer.
func NewJSON(w io.Writer) *JSON {
	return &JSON{W: w, enc: json.NewEncoder(w)}
}

// Trace implements Tracer.
func (j *JSON) Trace(ev Event) { _ = j.enc.Encode(ev) }

// Counter aggregates event counts — useful in tests and summaries.
// Counts and ByPath are maps; iterate them through sorted keys when
// rendering (see the `mpq-vet maporder` analyzer) to keep output
// deterministic.
type Counter struct {
	Counts map[EventType]int
	ByPath map[uint8]map[EventType]int
}

// NewCounter builds an empty counter.
func NewCounter() *Counter {
	return &Counter{
		Counts: make(map[EventType]int),
		ByPath: make(map[uint8]map[EventType]int),
	}
}

// Trace implements Tracer.
func (c *Counter) Trace(ev Event) {
	c.Counts[ev.Type]++
	m := c.ByPath[ev.Path]
	if m == nil {
		m = make(map[EventType]int)
		c.ByPath[ev.Path] = m
	}
	m[ev.Type]++
}

// Multi fans events out to several tracers.
type Multi []Tracer

// Trace implements Tracer.
func (m Multi) Trace(ev Event) {
	for _, t := range m {
		t.Trace(ev)
	}
}

// Filter passes only the listed event types to the inner tracer.
type Filter struct {
	Inner Tracer
	Types map[EventType]bool
}

// NewFilter builds a filter.
func NewFilter(inner Tracer, types ...EventType) *Filter {
	m := make(map[EventType]bool, len(types))
	for _, t := range types {
		m[t] = true
	}
	return &Filter{Inner: inner, Types: m}
}

// Trace implements Tracer.
func (f *Filter) Trace(ev Event) {
	if f.Types[ev.Type] {
		f.Inner.Trace(ev)
	}
}
