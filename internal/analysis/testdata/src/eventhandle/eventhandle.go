// Package eventhandle exercises the eventhandle analyzer: *sim.Event
// handles must not outlive the current call — no struct fields,
// globals, map/slice elements, returns or channel sends. sim.Timer is
// the sanctioned holder.
package eventhandle

import (
	"time"

	"mpquic/internal/sim"
)

type badHolder struct {
	ev *sim.Event // want `struct field of type \*sim\.Event holds a poolable handle`
}

// goodHolder keeps a re-armable deadline the sanctioned way.
type goodHolder struct {
	timer *sim.Timer
}

var globalEv *sim.Event

func leakReturn(c *sim.Clock) *sim.Event { // want `returning \*sim\.Event hands out a handle`
	return c.After(time.Millisecond, func() {})
}

func leakGlobal(c *sim.Clock) {
	globalEv = c.After(time.Millisecond, func() {}) // want `storing \*sim\.Event in a field/map/global`
}

func leakField(h *badHolder, c *sim.Clock) {
	h.ev = c.After(time.Millisecond, func() {}) // want `storing \*sim\.Event in a field/map/global`
}

func leakMap(m map[int]*sim.Event, c *sim.Clock) {
	m[1] = c.After(time.Millisecond, func() {}) // want `storing \*sim\.Event in a field/map/global`
}

func leakChannel(ch chan *sim.Event, c *sim.Clock) {
	ch <- c.After(time.Millisecond, func() {}) // want `sending \*sim\.Event on a channel`
}

// localHandle is fine: the handle never outlives the activation.
func localHandle(c *sim.Clock) bool {
	ev := c.After(time.Millisecond, func() {})
	ev.Cancel()
	return ev.Cancelled()
}

// timerUse is the sanctioned long-lived deadline.
func timerUse(c *sim.Clock, h *goodHolder) {
	h.timer = sim.NewTimer(c, func() {})
	h.timer.ResetAfter(time.Millisecond)
}

// allowed demonstrates an audited suppression: the return-type
// finding fires at the signature, so the annotation sits there.
//
//mpqvet:allow eventhandle exemplar suppression for the analyzer tests
func allowed(c *sim.Clock) *sim.Event {
	return c.After(time.Millisecond, func() {})
}
