// Package mpquic is a from-scratch reproduction of "Multipath QUIC:
// Design and Evaluation" (De Coninck & Bonaventure, CoNEXT 2017).
//
// It bundles, behind one import path:
//
//   - a Multipath QUIC engine (per-path packet-number spaces, Path IDs
//     in the public header, ADD_ADDRESS/PATHS frames, lowest-RTT
//     scheduling with duplication on fresh paths, OLIA coupled
//     congestion control) — and plain QUIC as its single-path
//     configuration;
//   - TCP/TLS and Multipath TCP baseline models;
//   - a deterministic discrete-event network emulator standing in for
//     the paper's Mininet testbed;
//   - the paper's complete experimental-design harness (WSP scenario
//     selection over the Table 1 ranges, time-ratio CDFs, experimental
//     aggregation benefit, the §4.3 handover scenario).
//
// The package is a thin facade: it re-exports the building blocks from
// the internal packages so applications (see examples/) can drive
// everything through a single import.
//
// Everything runs in virtual time on a deterministic event loop: runs
// with equal seeds are bit-for-bit reproducible, including their
// traces (see OBSERVABILITY.md), and attaching any observability
// instrument never changes a run.
//
// # Quick start
//
//	net := mpquic.NewTwoPathNetwork(mpquic.TwoPathConfig{
//		Path0: mpquic.PathSpec{CapacityMbps: 10, RTT: 30 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
//		Path1: mpquic.PathSpec{CapacityMbps: 5, RTT: 60 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
//	})
//	server := net.Listen(mpquic.DefaultConfig())
//	net.ServeGet(server)
//	client := net.Dial(mpquic.DefaultConfig(), 1)
//	res, err := net.Download(client, 20<<20) // runs the virtual clock
//	if err != nil {
//		log.Fatal(err)
//	}
//	fmt.Println(res.Elapsed(), res.GoodputBps())
package mpquic

import (
	"context"
	"errors"
	"io"
	"sync"
	"time"

	"mpquic/internal/apps"
	"mpquic/internal/core"
	"mpquic/internal/netem"
	"mpquic/internal/sim"
	"mpquic/internal/trace"
)

// Re-exported core types. See the internal packages for full
// documentation of each.
type (
	// Config tunes a (Multipath) QUIC endpoint.
	Config = core.Config
	// Conn is a (Multipath) QUIC connection endpoint.
	Conn = core.Conn
	// Stream is an application stream handle.
	Stream = core.Stream
	// Listener accepts connections.
	Listener = core.Listener
	// Path is one path of a multipath connection.
	Path = core.Path
	// PathSpec describes one emulated path (capacity, RTT, queueing,
	// random loss) — the Table 1 factors.
	PathSpec = netem.PathSpec
	// GetResult reports a finished download.
	GetResult = apps.GetResult
)

// DefaultConfig returns the paper's MPQUIC configuration (lowest-RTT
// scheduler with duplication, OLIA, 16 MB windows).
func DefaultConfig() Config { return core.DefaultConfig() }

// SinglePathConfig returns the plain-QUIC baseline configuration.
func SinglePathConfig() Config { return core.DefaultSinglePathConfig() }

// Scheduler kinds (ablations of §3's design choices, plus the BLEST
// extension).
const (
	SchedLowestRTT      = core.SchedLowestRTT
	SchedLowestRTTNoDup = core.SchedLowestRTTNoDup
	SchedRoundRobin     = core.SchedRoundRobin
	SchedBLEST          = core.SchedBLEST
)

// Congestion controller kinds.
const (
	CCCubic = core.CCCubic
	CCOlia  = core.CCOlia
	CCReno  = core.CCReno
	CCLia   = core.CCLia
)

// DefaultEventLimit is the runaway guard applied when
// TwoPathConfig.EventLimit is zero: the simulation aborts with an error
// after this many events, far beyond anything a finite transfer needs.
const DefaultEventLimit = 500_000_000

// DefaultDownloadDeadline is the virtual-time budget Network.Download
// grants a transfer before returning ErrTimeout.
const DefaultDownloadDeadline = 24 * time.Hour

// ErrTimeout is returned by Download and DownloadWith — on either
// backend — when the transfer does not complete before its deadline
// (e.g. every path died mid-run).
var ErrTimeout = errors.New("mpquic: transfer deadline exceeded")

// ErrClosed is returned by Serve — on either backend — when the
// fabric is closed: the clean way to stop a server. Both *Network and
// *LiveNetwork surface it, so callers match it with errors.Is
// regardless of the backend behind the Fabric.
var ErrClosed = errors.New("mpquic: fabric closed")

// AbortError is returned by Download and DownloadWith — on either
// backend — when the connection terminates before the transfer
// completes: the peer closed or aborted it, an idle timeout fired, or
// a protocol error tore it down. Err carries the connection's close
// reason; match with errors.As regardless of the backend.
type AbortError struct{ Err error }

func (e *AbortError) Error() string {
	if e.Err == nil {
		return "mpquic: connection aborted"
	}
	return "mpquic: connection aborted: " + e.Err.Error()
}

// Unwrap exposes the close reason to errors.Is / errors.As chains.
func (e *AbortError) Unwrap() error { return e.Err }

// Fabric is the backend-independent face of a network that can run
// MPQUIC endpoints: the emulated *Network (virtual time, deterministic)
// and the real-socket *LiveNetwork (wall time, kernel-scheduled) both
// satisfy it, so experiment harnesses and applications written against
// Fabric run unchanged on either.
//
// Semantics shared by both backends:
//
//   - Listen starts a server on the backend's local addresses;
//     ServeGet attaches the paper's GET responder to it.
//   - Serve blocks until Close and then returns ErrClosed (or an I/O
//     error, live only). The emulated backend needs no Serve to make
//     progress — Download drives the virtual clock — so there Serve
//     exists for lifecycle parity: run it in a goroutine and Close to
//     release it, exactly as with a live server.
//   - Dial opens a client connection; remotes optionally overrides the
//     remote path addresses (required for live, where the peer's
//     bound ports are not knowable in advance; optional for the
//     emulated backend, which defaults to its own server addresses).
//   - Download/DownloadWith run a blocking GET and return the result
//     or one of the unified errors: ErrTimeout past the deadline,
//     *AbortError if the connection died first, ErrClosed if the
//     fabric was closed mid-transfer, or the DownloadOpts.Ctx error if
//     the caller canceled.
//   - Close releases the backend (sockets for live, the Serve latch
//     for the emulated network). Safe to call more than once.
type Fabric interface {
	Listen(cfg Config) *Listener
	ServeGet(l *Listener)
	Serve() error
	Dial(cfg Config, connID uint64, remotes ...string) *Conn
	Download(client *Conn, size uint64) (GetResult, error)
	DownloadWith(client *Conn, size uint64, opts DownloadOpts) (GetResult, error)
	Close() error
}

// Both backends satisfy Fabric; the conformance suite in
// fabric_test.go exercises the shared semantics over each.
var (
	_ Fabric = (*Network)(nil)
	_ Fabric = (*LiveNetwork)(nil)
)

// TwoPathConfig describes the Fig. 2 topology: a dual-homed client and
// server joined by two disjoint paths.
type TwoPathConfig struct {
	Path0, Path1 PathSpec
	// Seed drives every random process (loss draws). Runs with equal
	// seeds are bit-for-bit reproducible.
	Seed uint64
	// EventLimit aborts the simulation with an error after this many
	// clock events, guarding against runaway event loops. Zero means
	// DefaultEventLimit.
	EventLimit uint64
}

// Network is an emulated two-path network plus its virtual clock.
type Network struct {
	clock *sim.Clock
	tp    *netem.TwoPathNet

	closeOnce sync.Once
	done      chan struct{}
}

// NewTwoPathNetwork builds the emulated Fig. 2 topology.
func NewTwoPathNetwork(cfg TwoPathConfig) *Network {
	clock := sim.NewClock()
	clock.Limit = cfg.EventLimit
	if clock.Limit == 0 {
		clock.Limit = DefaultEventLimit
	}
	tp := netem.NewTwoPath(clock, sim.NewRand(cfg.Seed), [2]netem.PathSpec{cfg.Path0, cfg.Path1})
	return &Network{clock: clock, tp: tp, done: make(chan struct{})}
}

// Now reports the current virtual time.
func (n *Network) Now() time.Duration { return n.clock.Now().Duration() }

// RunFor advances the virtual clock by d, executing all due events.
func (n *Network) RunFor(d time.Duration) error {
	return n.clock.RunUntil(n.clock.Now().Add(d))
}

// RunUntilIdle drains every scheduled event (the simulation ends when
// no timer or packet remains).
func (n *Network) RunUntilIdle() error { return n.clock.Run() }

// At schedules fn at an absolute virtual time (e.g. to kill a path
// mid-run for a handover experiment).
func (n *Network) At(t time.Duration, fn func()) { n.clock.At(sim.Time(t), fn) }

// KillPath makes path i drop every packet from now on.
func (n *Network) KillPath(i int) { n.tp.KillPath(i) }

// SetPathLoss sets path i's random loss rate.
func (n *Network) SetPathLoss(i int, p float64) { n.tp.SetPathLoss(i, p) }

// ClientAddr returns the client-side address of path i.
func (n *Network) ClientAddr(i int) string { return string(n.tp.ClientAddrs[i]) }

// ServerAddr returns the server-side address of path i.
func (n *Network) ServerAddr(i int) string { return string(n.tp.ServerAddrs[i]) }

// Listen starts a (MP)QUIC server on both server addresses (or only
// the first for single-path configs).
func (n *Network) Listen(cfg Config) *Listener {
	addrs := n.tp.ServerAddrs[:]
	if !cfg.Multipath {
		addrs = addrs[:1]
	}
	return core.Listen(n.tp.Net, cfg, addrs)
}

// Dial opens a client connection over the network. With no explicit
// remotes, multipath configs get both address pairs and single-path
// configs only the first. Explicit remotes (the Fabric form; at most
// one per client address, in path order) override the defaults —
// e.g. dial only ServerAddr(0) to model a server whose second address
// is learned later via ADD_ADDRESS.
func (n *Network) Dial(cfg Config, connID uint64, remotes ...string) *Conn {
	locals, remoteAddrs := n.tp.ClientAddrs[:], n.tp.ServerAddrs[:]
	if len(remotes) > 0 {
		remoteAddrs = make([]netem.Addr, len(remotes))
		for i, r := range remotes {
			remoteAddrs[i] = netem.Addr(r)
		}
	} else if !cfg.Multipath {
		remoteAddrs = remoteAddrs[:1]
	}
	if !cfg.Multipath && len(locals) > 1 {
		locals = locals[:1]
	}
	return core.Dial(n.tp.Net, cfg, core.NewConnID(connID), locals, remoteAddrs)
}

// DialPartial opens a multipath client that initially knows only the
// server's first address; further paths open when the server
// advertises addresses via ADD_ADDRESS (the dual-stack use case).
func (n *Network) DialPartial(cfg Config, connID uint64) *Conn {
	return core.Dial(n.tp.Net, cfg, core.NewConnID(connID), n.tp.ClientAddrs[:], n.tp.ServerAddrs[:1])
}

// ServeGet attaches the paper's GET file server to a listener.
func (n *Network) ServeGet(l *Listener) { apps.NewGetServer(l) }

// ServeEcho attaches the §4.3 request/response responder.
func (n *Network) ServeEcho(l *Listener) { apps.NewEchoServer(l) }

// Serve blocks until Close, then returns ErrClosed — the Fabric
// server lifecycle. The emulated network makes progress without it
// (Download drives the virtual clock from the caller's goroutine), so
// Serve only parks: run it in a goroutine, as with a live server, and
// Close to release it.
func (n *Network) Serve() error {
	<-n.done
	return ErrClosed
}

// Close releases the network: a concurrent or future Serve returns
// ErrClosed. The virtual clock and emulated links carry no OS
// resources, so there is nothing else to tear down. Safe to call more
// than once.
func (n *Network) Close() error {
	n.closeOnce.Do(func() { close(n.done) })
	return nil
}

// DownloadOpts tunes DownloadWith on either backend.
type DownloadOpts struct {
	// Deadline bounds the transfer, measured from the moment
	// DownloadWith is called — in virtual time on the emulated
	// backend (zero means DefaultDownloadDeadline), in wall time on
	// the live one (zero means DefaultLiveDeadline). Exceeding it
	// returns ErrTimeout.
	Deadline time.Duration
	// Ctx cancels the transfer: DownloadWith then returns Ctx.Err()
	// (context.Canceled or context.DeadlineExceeded). On the live
	// backend cancellation is honored mid-transfer, within one
	// wake-up of the loop. The emulated backend runs synchronously in
	// virtual time with no goroutine to preempt, so there Ctx is
	// checked only on entry (a no-op mid-run) — use Deadline or
	// Network.At to bound emulated transfers. Nil means no
	// cancellation.
	Ctx context.Context
}

// Download runs a blocking GET of size bytes on the client connection:
// it arms the transfer, drives the virtual clock until completion, and
// returns the result. It returns ErrTimeout if the transfer does not
// finish within DefaultDownloadDeadline of virtual time, or
// *AbortError if the connection died before completing.
func (n *Network) Download(client *Conn, size uint64) (GetResult, error) {
	return n.DownloadWith(client, size, DownloadOpts{})
}

// DownloadWith is Download with explicit options.
func (n *Network) DownloadWith(client *Conn, size uint64, opts DownloadOpts) (GetResult, error) {
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return GetResult{}, err
		}
	}
	deadline := opts.Deadline
	if deadline <= 0 {
		deadline = DefaultDownloadDeadline
	}
	var out *GetResult
	now := func() time.Duration { return n.clock.Now().Duration() }
	apps.NewGetClient(client, size, now, func(r apps.GetResult) {
		out = &r
		n.clock.Stop()
	})
	if err := n.clock.RunUntil(n.clock.Now().Add(deadline)); err != nil {
		return GetResult{}, err
	}
	if out != nil {
		return *out, nil
	}
	if client.Closed() {
		cerr := client.Err()
		if cerr == nil {
			cerr = errors.New("mpquic: connection closed")
		}
		return GetResult{}, &AbortError{Err: cerr}
	}
	return GetResult{}, ErrTimeout
}

// ReqRespClient drives the §4.3 request train; see apps.ReqRespClient.
type ReqRespClient = apps.ReqRespClient

// ReqRespSample is one request/response delay measurement.
type ReqRespSample = apps.ReqRespSample

// StartRequestTrain fires a 750-byte request every 400 ms for total,
// recording per-request response delays (Fig. 11's series).
func (n *Network) StartRequestTrain(client *Conn, total time.Duration) *ReqRespClient {
	return apps.NewReqRespClient(client, n.clock, total)
}

// --- Observability ---
//
// Tracing, time series and flight recording are documented in
// OBSERVABILITY.md. All instruments are pure observers of the
// simulation: attaching any of them never changes a run's schedule or
// results, and all timestamps are virtual time (never wall clocks), so
// same-seed runs produce byte-identical traces.

// Tracer consumes protocol and link events; see OBSERVABILITY.md for
// the event vocabulary.
type Tracer = trace.Tracer

// Event is one trace record.
type Event = trace.Event

// FlightRecorder is a bounded ring of the most recent events, dumped
// only on anomaly — the post-mortem tracer.
type FlightRecorder = trace.FlightRecorder

// NewTextTracer renders events as aligned text lines on w.
func NewTextTracer(w io.Writer) Tracer { return trace.NewText(w) }

// NewJSONTracer renders events as newline-delimited JSON on w.
func NewJSONTracer(w io.Writer) Tracer { return trace.NewJSON(w) }

// NewQlogTracer renders events as qlog-compatible JSON-SEQ on w,
// loadable in qlog tooling such as qvis. vantage names the traced
// endpoint ("client" or "server").
func NewQlogTracer(w io.Writer, vantage string) Tracer { return trace.NewQlog(w, vantage) }

// NewFlightRecorder builds a flight recorder retaining the last
// capacity events (a default capacity if capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder { return trace.NewFlightRecorder(capacity) }

// SetLinkTracer attaches t to every emulated link, so link lifecycle
// events (link_down, link_up, link_reconfigured) interleave with the
// protocol events of any connection tracing to the same tracer. Set
// Config.Tracer on the endpoints for the protocol side.
func (n *Network) SetLinkTracer(t Tracer) { n.tp.SetTracer(t) }
