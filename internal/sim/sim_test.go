package sim

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func TestClockRunsEventsInOrder(t *testing.T) {
	c := NewClock()
	var got []int
	c.After(30*time.Millisecond, func() { got = append(got, 3) })
	c.After(10*time.Millisecond, func() { got = append(got, 1) })
	c.After(20*time.Millisecond, func() { got = append(got, 2) })
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("wrong order: %v", got)
	}
	if c.Now() != Time(30*time.Millisecond) {
		t.Fatalf("clock at %v, want 30ms", c.Now())
	}
}

func TestClockFIFOAmongEqualDeadlines(t *testing.T) {
	c := NewClock()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(Time(time.Millisecond), func() { got = append(got, i) })
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("not FIFO at %d: %v", i, got)
		}
	}
}

func TestClockEventsScheduledDuringRun(t *testing.T) {
	c := NewClock()
	var fired []Time
	c.After(time.Millisecond, func() {
		c.After(time.Millisecond, func() { fired = append(fired, c.Now()) })
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != Time(2*time.Millisecond) {
		t.Fatalf("nested scheduling broken: %v", fired)
	}
}

func TestCancelPreventsExecution(t *testing.T) {
	c := NewClock()
	ran := false
	e := c.After(time.Millisecond, func() { ran = true })
	e.Cancel()
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cancelled event executed")
	}
	if c.Processed != 0 {
		t.Fatalf("Processed = %d, want 0", c.Processed)
	}
}

func TestRunUntilAdvancesToDeadline(t *testing.T) {
	c := NewClock()
	var at Time
	c.After(5*time.Millisecond, func() { at = c.Now() })
	c.After(50*time.Millisecond, func() { t.Fatal("event past deadline ran") })
	if err := c.RunUntil(Time(10 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if at != Time(5*time.Millisecond) {
		t.Fatalf("event ran at %v", at)
	}
	if c.Now() != Time(10*time.Millisecond) {
		t.Fatalf("clock at %v, want 10ms", c.Now())
	}
}

func TestClockStop(t *testing.T) {
	c := NewClock()
	n := 0
	for i := 1; i <= 5; i++ {
		c.After(time.Duration(i)*time.Millisecond, func() {
			n++
			if n == 2 {
				c.Stop()
			}
		})
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("ran %d events after Stop, want 2", n)
	}
}

func TestClockLimit(t *testing.T) {
	c := NewClock()
	c.Limit = 10
	var loop func()
	loop = func() { c.After(time.Millisecond, loop) }
	loop()
	if err := c.Run(); err == nil {
		t.Fatal("expected event-limit error")
	}
}

func TestSchedulingInPastClamps(t *testing.T) {
	c := NewClock()
	var second Time
	c.After(10*time.Millisecond, func() {
		c.At(Time(time.Millisecond), func() { second = c.Now() })
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if second != Time(10*time.Millisecond) {
		t.Fatalf("past event ran at %v, want clamp to 10ms", second)
	}
}

func TestTimerResetReplacesDeadline(t *testing.T) {
	c := NewClock()
	fires := 0
	tm := NewTimer(c, func() { fires++ })
	tm.ResetAfter(10 * time.Millisecond)
	tm.ResetAfter(20 * time.Millisecond)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if fires != 1 {
		t.Fatalf("timer fired %d times, want 1", fires)
	}
	if c.Now() != Time(20*time.Millisecond) {
		t.Fatalf("fired at %v, want 20ms", c.Now())
	}
}

func TestTimerStop(t *testing.T) {
	c := NewClock()
	tm := NewTimer(c, func() { t.Fatal("stopped timer fired") })
	tm.ResetAfter(time.Millisecond)
	if !tm.Stop() {
		t.Fatal("Stop reported no pending firing")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported pending firing")
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTimerDeadlineAndArmed(t *testing.T) {
	c := NewClock()
	tm := NewTimer(c, func() {})
	if tm.Armed() || tm.Deadline() != Never {
		t.Fatal("new timer should be unarmed")
	}
	tm.ResetAfter(7 * time.Millisecond)
	if !tm.Armed() || tm.Deadline() != Time(7*time.Millisecond) {
		t.Fatalf("armed=%v deadline=%v", tm.Armed(), tm.Deadline())
	}
	c.Run()
	if tm.Armed() {
		t.Fatal("timer still armed after firing")
	}
}

func TestNextDeadlineSkipsCancelled(t *testing.T) {
	c := NewClock()
	e := c.After(time.Millisecond, func() {})
	c.After(2*time.Millisecond, func() {})
	e.Cancel()
	if d := c.NextDeadline(); d != Time(2*time.Millisecond) {
		t.Fatalf("NextDeadline = %v, want 2ms", d)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	cpy := NewRand(7)
	d := NewRand(8)
	same := 0
	for i := 0; i < 100; i++ {
		if cpy.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandBernoulliExtremes(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestRandBernoulliRate(t *testing.T) {
	r := NewRand(9)
	hits := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.025) {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.022 || rate > 0.028 {
		t.Fatalf("Bernoulli(0.025) rate %v", rate)
	}
}

// Property: Float64 is always in [0,1) for arbitrary seeds and draws.
func TestRandFloat64Property(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := NewRand(seed)
		for i := 0; i < int(n); i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Intn(n) is always in [0,n).
func TestRandIntnProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandForkDecorrelated(t *testing.T) {
	parent := NewRand(5)
	a := parent.Fork()
	b := parent.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams collided %d/100 times", same)
	}
}

func TestTimeHelpers(t *testing.T) {
	tt := Time(1500 * time.Millisecond)
	if tt.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v", tt.Seconds())
	}
	if tt.Add(500*time.Millisecond) != Time(2*time.Second) {
		t.Fatal("Add broken")
	}
	if tt.Sub(Time(time.Second)) != 500*time.Millisecond {
		t.Fatal("Sub broken")
	}
}

func BenchmarkClockScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := NewClock()
		for j := 0; j < 100; j++ {
			c.After(time.Duration(j)*time.Microsecond, func() {})
		}
		c.Run()
	}
}

// TestDriverLoopStepping drives a clock the way the live driver does —
// NextDeadline to find the wake-up point, RunUntil to execute the due
// window — and checks the execution trace is identical to a plain Run
// over the same schedule, including events that reschedule themselves.
func TestDriverLoopStepping(t *testing.T) {
	build := func(c *Clock, log *[]string) {
		var tick func()
		n := 0
		tick = func() {
			*log = append(*log, fmt.Sprintf("tick@%v", c.Now()))
			if n++; n < 3 {
				c.After(3*time.Millisecond, tick)
			}
		}
		c.After(2*time.Millisecond, tick)
		c.After(5*time.Millisecond, func() { *log = append(*log, fmt.Sprintf("a@%v", c.Now())) })
		c.After(5*time.Millisecond, func() { *log = append(*log, fmt.Sprintf("b@%v", c.Now())) })
	}

	var want []string
	ref := NewClock()
	build(ref, &want)
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}

	var got []string
	c := NewClock()
	build(c, &got)
	steps := 0
	for {
		dl := c.NextDeadline()
		if dl == Never {
			break
		}
		// A driver would block on socket readability here, then advance
		// to the wall-elapsed time; stepping to exactly the deadline is
		// the timeout branch of that select.
		if err := c.RunUntil(dl); err != nil {
			t.Fatal(err)
		}
		steps++
	}
	if steps != 3 {
		t.Fatalf("driver loop took %d steps, want 3 (deadlines 2ms, 5ms, 8ms)", steps)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("stepped trace %v != Run trace %v", got, want)
	}
}

// TestRunUntilPartialWindows splits the same schedule at an arbitrary
// boundary that is not an event deadline: nothing may be lost or
// reordered across the split, and the clock must land exactly on each
// requested deadline.
func TestRunUntilPartialWindows(t *testing.T) {
	c := NewClock()
	var fired []Time
	for _, d := range []time.Duration{1, 4, 6, 9} {
		d := d
		c.After(d*time.Millisecond, func() { fired = append(fired, c.Now()) })
	}
	if err := c.RunUntil(Time(5 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || c.Now() != Time(5*time.Millisecond) {
		t.Fatalf("after first window: fired=%v now=%v", fired, c.Now())
	}
	if dl := c.NextDeadline(); dl != Time(6*time.Millisecond) {
		t.Fatalf("NextDeadline = %v, want 6ms", dl)
	}
	if err := c.RunUntil(Time(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 || c.Now() != Time(20*time.Millisecond) {
		t.Fatalf("after second window: fired=%v now=%v", fired, c.Now())
	}
	if dl := c.NextDeadline(); dl != Never {
		t.Fatalf("drained clock NextDeadline = %v, want Never", dl)
	}
}

// TestRunUntilTimerHandleContract exercises the documented Event
// handle rules across RunUntil boundaries: a Timer re-armed in each
// window keeps working (it drops its handle on fire), and cancelling
// before the deadline window runs prevents execution.
func TestRunUntilTimerHandleContract(t *testing.T) {
	c := NewClock()
	fires := 0
	tm := NewTimer(c, func() { fires++ })
	tm.Reset(Time(2 * time.Millisecond))
	if err := c.RunUntil(Time(3 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if fires != 1 || tm.Armed() {
		t.Fatalf("fires=%d armed=%v after first window", fires, tm.Armed())
	}
	// Re-arm beyond the next window, then cancel before it runs: the
	// handle is still valid because the event never fired.
	tm.Reset(Time(10 * time.Millisecond))
	if err := c.RunUntil(Time(5 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if !tm.Armed() {
		t.Fatal("timer armed beyond the window must survive it")
	}
	tm.Stop()
	if err := c.RunUntil(Time(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if fires != 1 {
		t.Fatalf("cancelled timer fired: fires=%d", fires)
	}
	// NextDeadline must have discarded the cancelled event.
	if c.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", c.Pending())
	}
}
