package mpquic_test

import (
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"mpquic"
)

// newLive binds a facade live network on n loopback sockets, skipping
// cleanly when the sandbox denies UDP.
func newLive(t *testing.T, n int) *mpquic.LiveNetwork {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	ln, err := mpquic.NewLive(addrs...)
	if err != nil {
		if errors.Is(err, os.ErrPermission) || strings.Contains(err.Error(), "not permitted") ||
			strings.Contains(err.Error(), "permission denied") {
			t.Skipf("UDP sockets unavailable in this sandbox: %v", err)
		}
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return ln
}

// TestLiveFacadeTwoPathDownload exercises the facade's live entry
// points end to end: a two-path server, a two-path client, and a GET
// that must use both paths.
func TestLiveFacadeTwoPathDownload(t *testing.T) {
	cfg := mpquic.DefaultConfig()
	cfg.EnableCrypto = true
	cfg.IdleTimeout = 5 * time.Second

	server := newLive(t, 2)
	lis := server.Listen(cfg)
	server.ServeGet(lis)
	go server.Serve()

	client := newLive(t, 2)
	conn := client.Dial(cfg, 7, server.LocalAddrs()...)
	const size = 1 << 20
	res, err := client.DownloadWith(conn, size, mpquic.DownloadOpts{Deadline: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != size {
		t.Fatalf("Size = %d, want %d", res.Size, size)
	}
	paths := conn.Paths()
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	for _, p := range paths {
		if p.RecvBytes == 0 {
			t.Errorf("path %d carried nothing", p.ID)
		}
	}
}

// TestLiveFacadeTimeout maps the live timeout onto the facade's
// ErrTimeout so callers handle sim and live deadlines uniformly.
func TestLiveFacadeTimeout(t *testing.T) {
	dead := newLive(t, 1)
	target := dead.LocalAddrs()[0]
	dead.Close()

	cfg := mpquic.SinglePathConfig()
	cfg.IdleTimeout = 10 * time.Second
	client := newLive(t, 1)
	conn := client.Dial(cfg, 8, target)
	_, err := client.DownloadWith(conn, 1<<20, mpquic.DownloadOpts{Deadline: 300 * time.Millisecond})
	if !errors.Is(err, mpquic.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

// TestLiveFacadeServeClosed proves Close stops Serve with the typed
// sentinel.
func TestLiveFacadeServeClosed(t *testing.T) {
	server := newLive(t, 1)
	done := make(chan error, 1)
	go func() { done <- server.Serve() }()
	time.Sleep(20 * time.Millisecond)
	server.Close()
	select {
	case err := <-done:
		if !errors.Is(err, mpquic.ErrClosed) {
			t.Fatalf("Serve = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
}
