package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// anyDomain is the implicit domain of code that may run on any
// goroutine: exported functions without an //mpq: annotation (callers
// are unknown) and function literals launched with `go`.
const anyDomain = "any goroutine"

// runLoopDomain is the one domain name with extra semantics: the
// blocking analyzer forbids blocking operations inside it (see
// blocking.go). confine itself treats all domain names uniformly.
const runLoopDomain = "run-loop"

// Confine proves the goroutine-confinement discipline the live driver
// documents in prose: only the Run goroutine touches protocol state.
// A struct field annotated `//mpq:confined <domain>` may be accessed
// only by code whose computed domain set is exactly {domain}; a
// function so annotated may additionally be called only from that
// domain. Domains are rooted by `//mpq:entry <domain>` functions (the
// calling goroutine becomes the domain — live.Run roots run-loop, the
// socket readLoop roots reader) and flow down the intra-package call
// graph. Exported functions without an annotation root the implicit
// any-goroutine domain, as do `go`-launched function literals.
// `//mpq:crossing` marks the sanctioned cross-domain touch points
// (channels, atomics, sync primitives).
var Confine = &Analyzer{
	Name: "confine",
	Doc: "forbid access to //mpq:confined members from code reachable outside " +
		"their goroutine domain; domains root at //mpq:entry functions",
	Run: runConfine,
}

// domainUnit is one analyzable code region with a single domain set: a
// declared function body (minus go-launched literals) or one
// go-launched literal (always any-domain).
type domainUnit struct {
	fn       *types.Func // nil for go-launched literals
	body     *ast.BlockStmt
	detached []*ast.FuncLit // go-launched literals excluded from this unit
	domains  map[string]bool
}

// domainGraph is the package's call-graph-with-domains, shared by the
// confine and blocking analyzers.
type domainGraph struct {
	ann   *annotations
	units []*domainUnit
	byFn  map[*types.Func]*domainUnit
}

// buildDomainGraph constructs the units, seeds their domains, and
// propagates domains down intra-package call edges to a fixpoint.
func buildDomainGraph(pass *Pass) *domainGraph {
	ann := collectAnnotations(pass)
	g := &domainGraph{ann: ann, byFn: make(map[*types.Func]*domainUnit)}

	// Pass 1: one unit per declared function, plus one per go-launched
	// literal (those run on their own fresh goroutine: any-domain).
	for _, f := range pass.Files {
		if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			unit := &domainUnit{fn: obj, body: fd.Body, domains: make(map[string]bool)}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if gs, ok := n.(*ast.GoStmt); ok {
					if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
						unit.detached = append(unit.detached, lit)
					}
				}
				return true
			})
			g.units = append(g.units, unit)
			g.byFn[obj] = unit
		}
	}
	for _, u := range append([]*domainUnit(nil), g.units...) {
		for _, lit := range u.detached {
			g.units = append(g.units, &domainUnit{
				body:    lit.Body,
				domains: map[string]bool{anyDomain: true},
			})
		}
	}

	// Pass 2: seed domains. Annotated functions are roots; exported
	// unannotated functions may be called from any goroutine.
	for _, u := range g.units {
		if u.fn == nil {
			continue
		}
		switch {
		case g.ann.funcDomain[u.fn] != "":
			u.domains[g.ann.funcDomain[u.fn]] = true
		case g.ann.funcEntry[u.fn] != "":
			u.domains[g.ann.funcEntry[u.fn]] = true
		case u.fn.Exported():
			u.domains[anyDomain] = true
		}
	}

	// Pass 3: propagate caller domains to unannotated callees until a
	// fixpoint. Annotated functions are roots: caller domains stop
	// there. A `go`-launched named function roots any-domain unless
	// annotated (the spawned goroutine has no caller discipline).
	edges := make(map[*types.Func][]*types.Func)
	for _, u := range g.units {
		callees := g.calleesOf(pass, u)
		if u.fn != nil {
			edges[u.fn] = callees.called
		} else {
			// Detached literal: its callees inherit any-domain.
			for _, callee := range callees.called {
				if uu := g.byFn[callee]; uu != nil && !g.isRoot(callee) {
					uu.domains[anyDomain] = true
				}
			}
		}
		for _, spawned := range callees.spawned {
			if uu := g.byFn[spawned]; uu != nil && !g.isRoot(spawned) {
				uu.domains[anyDomain] = true
			}
		}
	}
	changed := true
	for changed {
		changed = false
		for _, u := range g.units {
			if u.fn == nil {
				continue
			}
			for _, callee := range edges[u.fn] {
				if g.isRoot(callee) {
					continue
				}
				cu := g.byFn[callee]
				if cu == nil {
					continue
				}
				for d := range u.domains {
					if !cu.domains[d] {
						cu.domains[d] = true
						changed = true
					}
				}
			}
		}
	}
	return g
}

// isRoot reports whether fn's domain is fixed by an annotation (caller
// domains do not flow into it).
func (g *domainGraph) isRoot(fn *types.Func) bool {
	return g.ann.funcDomain[fn] != "" || g.ann.funcEntry[fn] != ""
}

// calleeSet separates normal call/reference edges from go-spawned
// callees (which root their own goroutine).
type calleeSet struct {
	called  []*types.Func
	spawned []*types.Func
}

// calleesOf collects the same-package functions a unit calls or
// references, excluding the bodies of its detached literals.
func (g *domainGraph) calleesOf(pass *Pass, u *domainUnit) calleeSet {
	var out calleeSet
	skip := make(map[ast.Node]bool, len(u.detached))
	for _, lit := range u.detached {
		skip[lit] = true
	}
	goCalls := make(map[ast.Expr]bool)
	ast.Inspect(u.body, func(n ast.Node) bool {
		if skip[n] {
			return false
		}
		if gs, ok := n.(*ast.GoStmt); ok {
			goCalls[gs.Call.Fun] = true
		}
		var id *ast.Ident
		switch e := n.(type) {
		case *ast.Ident:
			id = e
		case *ast.SelectorExpr:
			id = e.Sel
		default:
			return true
		}
		fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pass.PkgPath {
			return true
		}
		if g.byFn[fn] == nil {
			return true
		}
		spawned := false
		for e := range goCalls {
			if usesIdent(e, id) {
				spawned = true
				break
			}
		}
		if spawned {
			out.spawned = append(out.spawned, fn)
		} else {
			out.called = append(out.called, fn)
		}
		return true
	})
	return out
}

// usesIdent reports whether id appears under e.
func usesIdent(e ast.Node, id *ast.Ident) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if n == ast.Node(id) {
			found = true
		}
		return !found
	})
	return found
}

// domainsOutside returns the sorted domains in set other than want, or
// nil if the set is empty or exactly {want}.
func domainsOutside(set map[string]bool, want string) []string {
	keys := make([]string, 0, len(set))
	for d := range set {
		keys = append(keys, d)
	}
	sort.Strings(keys)
	out := keys[:0]
	for _, d := range keys {
		if d != want {
			out = append(out, d)
		}
	}
	return out
}

func runConfine(pass *Pass) (any, error) {
	g := buildDomainGraph(pass)
	if len(g.ann.fieldDomain) == 0 && len(g.ann.funcDomain) == 0 {
		return nil, nil // nothing confined in this package
	}
	for _, u := range g.units {
		g.checkUnit(pass, u)
	}
	return nil, nil
}

// checkUnit flags accesses to confined members from a unit whose
// domain set reaches outside the member's domain. Units with an empty
// domain set (unexported, never called) are skipped: nothing is known
// about the goroutine they run on, and they are dead code until a
// caller appears and gives them a domain.
func (g *domainGraph) checkUnit(pass *Pass, u *domainUnit) {
	if len(u.domains) == 0 {
		return
	}
	skip := make(map[ast.Node]bool, len(u.detached))
	for _, lit := range u.detached {
		skip[lit] = true
	}
	info := pass.TypesInfo
	ast.Inspect(u.body, func(n ast.Node) bool {
		if skip[n] {
			return false
		}
		// Composite-literal keys (struct construction) are exempt: the
		// value is not yet shared when it is being built.
		if kv, ok := n.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				if _, isField := info.Uses[id].(*types.Var); isField {
					ast.Inspect(kv.Value, func(m ast.Node) bool { return g.checkNode(pass, u, m, skip) })
					return false
				}
			}
		}
		return g.checkNode(pass, u, n, skip)
	})
}

// checkNode applies the confinement rules to one node; it returns
// whether the walk should descend.
func (g *domainGraph) checkNode(pass *Pass, u *domainUnit, n ast.Node, skip map[ast.Node]bool) bool {
	if n == nil || skip[n] {
		return n != nil && !skip[n]
	}
	id, ok := n.(*ast.Ident)
	if !ok {
		return true
	}
	info := pass.TypesInfo
	obj := info.Uses[id]
	if obj == nil {
		return true
	}
	if dom, confined := g.ann.fieldDomain[obj]; confined {
		if outside := domainsOutside(u.domains, dom); len(outside) > 0 {
			pass.Reportf(id.Pos(),
				"confined member %s (domain %s) is accessed from code reachable outside its domain (%s); "+
					"cross with a //mpq:crossing channel or move the access into the %s domain",
				id.Name, dom, strings.Join(outside, ", "), dom)
		}
		return true
	}
	if fn, isFn := obj.(*types.Func); isFn {
		if dom := g.ann.funcDomain[fn]; dom != "" {
			if outside := domainsOutside(u.domains, dom); len(outside) > 0 {
				pass.Reportf(id.Pos(),
					"confined function %s (domain %s) is called from code reachable outside its domain (%s)",
					fn.Name(), dom, strings.Join(outside, ", "))
			}
		}
	}
	return true
}
