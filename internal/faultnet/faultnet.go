// Package faultnet injects deterministic faults into real UDP
// sockets — the live-mode counterpart of the emulator's loss models
// and netem/dynamics scripts. The simulator can script a path death
// with one line; the live driver talks to the kernel, which never
// misbehaves on demand. This package puts a wrapper between the
// driver and each socket that misbehaves exactly on demand:
//
//   - probabilistic faults (Rates): drop, duplicate, corrupt
//     (single-bit flip), transient read errors (ENOBUFS-shaped) and
//     transient write errors (ENOBUFS/EHOSTUNREACH-shaped);
//   - scripted faults (Script, mirroring netem/dynamics.Script): kill
//     (permanent socket death — the underlying socket is closed),
//     restore (a socket wrapped after this point is healthy again,
//     which is what lets the live driver's rebind ladder recover),
//     and blackhole windows (all traffic silently vanishes, the
//     socket itself stays "up").
//
// # Determinism contract
//
// Fault decisions are drawn from sim.Rand streams forked per (seed,
// path, socket generation, direction): the k-th read decision and the
// k-th write decision on a given socket incarnation are pure
// functions of the seed, regardless of goroutine interleaving between
// the reader and writer. Scripted events fire by the injector's clock
// (WithClock — wall time is deliberately not read here; the caller
// owns the timebase, keeping this package clean under the walltime
// analyzer). Same seed + same script + same I/O sequence ⇒ same fault
// sequence, which is what makes chaos runs CI-safe.
//
// The wrapper implements the same structural interface as
// *net.UDPConn's address-port methods, so it satisfies live.UDPConn
// without importing the live package (and vice versa).
package faultnet

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"os"
	"sync"
	"syscall"
	"time"

	"mpquic/internal/sim"
)

// Conn is the socket surface faultnet wraps: the subset of
// *net.UDPConn the live driver uses (structurally identical to
// live.UDPConn).
type Conn interface {
	ReadFromUDPAddrPort(b []byte) (int, netip.AddrPort, error)
	WriteToUDPAddrPort(b []byte, addr netip.AddrPort) (int, error)
	Close() error
	SetReadBuffer(bytes int) error
	SetWriteBuffer(bytes int) error
}

// Clock reports elapsed time on the caller's timebase; scripted
// events fire when the clock passes their At offset. The zero
// injector has no clock and refuses non-empty scripts (see New).
type Clock func() time.Duration

// Rates are the probabilistic per-operation fault probabilities, each
// in [0,1]. Zero values inject nothing.
type Rates struct {
	Drop     float64 // received/sent datagram silently discarded
	Dup      float64 // received datagram delivered twice
	Corrupt  float64 // one random bit flipped in the datagram
	ReadErr  float64 // read returns a transient ENOBUFS-shaped error
	WriteErr float64 // write returns a transient ENOBUFS/EHOSTUNREACH-shaped error
}

// ErrSocketDead marks errors returned by a killed socket. It wraps
// net.ErrClosed so callers classifying by errors.Is treat a scripted
// kill exactly like a socket that died under them.
var ErrSocketDead = errors.New("faultnet: socket killed")

// Pre-built fault errors: the error path should not allocate per
// operation, and tests compare against stable values.
var (
	errDeadRead  = &net.OpError{Op: "read", Net: "udp", Err: fmt.Errorf("%w: %w", ErrSocketDead, net.ErrClosed)}
	errDeadWrite = &net.OpError{Op: "write", Net: "udp", Err: fmt.Errorf("%w: %w", ErrSocketDead, net.ErrClosed)}
	errReadBufs  = &net.OpError{Op: "read", Net: "udp", Err: os.NewSyscallError("recvfrom", syscall.ENOBUFS)}
	errWriteBufs = &net.OpError{Op: "write", Net: "udp", Err: os.NewSyscallError("sendto", syscall.ENOBUFS)}
	errWriteHost = &net.OpError{Op: "write", Net: "udp", Err: os.NewSyscallError("sendto", syscall.EHOSTUNREACH)}
)

// Option tunes an Injector at construction.
type Option func(*Injector)

// WithClock sets the timebase scripted events fire on (required when
// the script is non-empty).
func WithClock(c Clock) Option { return func(in *Injector) { in.clock = c } }

// WithRates sets the probabilistic fault rates.
func WithRates(r Rates) Option { return func(in *Injector) { in.rates = r } }

// WithScript sets the scripted fault timeline.
func WithScript(s Script) Option { return func(in *Injector) { in.script = s } }

// Injector builds fault-injecting socket wrappers. One injector spans
// all of a driver's sockets: Wrap(path, conn) derives the per-socket
// fault streams and hands back the wrapped conn. Wrap is safe from
// any goroutine (rebinds re-wrap from the reader goroutines).
type Injector struct {
	seed   uint64
	clock  Clock
	rates  Rates
	script Script

	mu   sync.Mutex
	gens map[int]int // sockets wrapped so far, per path
}

// New builds an injector. It panics when a non-empty script is given
// without a clock — silently never firing the script would make every
// chaos run vacuously green.
func New(seed uint64, opts ...Option) *Injector {
	in := &Injector{seed: seed, gens: make(map[int]int)}
	for _, o := range opts {
		o(in)
	}
	if len(in.script.Events) > 0 && in.clock == nil {
		panic("faultnet: a scripted injector needs WithClock")
	}
	return in
}

// Wrap returns c with this injector's faults applied. path selects
// the scripted events that apply; each call advances the path's
// socket generation, so a rebound socket gets fresh (but still
// seed-determined) fault streams. Scripted events already in the past
// are folded in immediately: wrapping during a kill window yields a
// dead-at-birth socket (its underlying conn is closed on the spot),
// which is how a rebind attempt during an outage fails until the
// script restores the path.
func (in *Injector) Wrap(path int, c Conn) Conn {
	in.mu.Lock()
	gen := in.gens[path]
	in.gens[path]++
	in.mu.Unlock()
	fc := &faultConn{
		inner:  c,
		clock:  in.clock,
		rates:  in.rates,
		rrand:  sim.NewRand(mixSeed(in.seed, path, gen, 0)),
		wrand:  sim.NewRand(mixSeed(in.seed, path, gen, 1)),
		events: in.script.eventsFor(path),
	}
	fc.mu.Lock()
	fc.advanceTo(fc.now())
	fc.mu.Unlock()
	return fc
}

// mixSeed derives the stream seed for one (path, generation,
// direction) tuple; sim.Rand's splitmix seeder decorrelates the
// nearby values this produces.
func mixSeed(seed uint64, path, gen, dir int) uint64 {
	return seed ^
		uint64(path+1)*0x9e3779b97f4a7c15 ^
		uint64(gen+1)*0xbf58476d1ce4e5b9 ^
		uint64(dir+1)*0x94d049bb133111eb
}

// faultConn is one wrapped socket. The mutex guards the script cursor
// and fault state; the driver contract (one reader goroutine, one
// writer goroutine) keeps each rand stream single-threaded, but the
// wrapper stays safe under any use.
type faultConn struct {
	inner Conn
	clock Clock
	rates Rates

	mu         sync.Mutex
	rrand      *sim.Rand // read-side decisions
	wrand      *sim.Rand // write-side decisions
	events     []Event   // pending scripted events, sorted by At
	dead       bool
	blackholes int // active blackhole windows
	pendDup    []byte
	pendFrom   netip.AddrPort
}

func (c *faultConn) now() time.Duration {
	if c.clock == nil {
		return 0
	}
	return c.clock()
}

// advanceTo folds every scripted event due by now into the fault
// state. Caller holds c.mu. A fold ending in the dead state closes
// the underlying socket so a reader blocked in it wakes up; a restore
// after an *observed* kill only flips the flag — the closed socket
// stays closed, and recovery happens when the driver rebinds and
// wraps a fresh one. A kill+restore pair folded in a single step (no
// operation observed the outage — e.g. a socket wrapped after both)
// nets out to alive without closing anything.
func (c *faultConn) advanceTo(now time.Duration) {
	killed := false
	for len(c.events) > 0 && c.events[0].At <= now {
		ev := c.events[0]
		c.events = c.events[1:]
		switch ev.Op {
		case OpKill:
			if !c.dead {
				c.dead = true
				killed = true
			}
		case OpRestore:
			c.dead = false
		case OpBlackholeOn:
			c.blackholes++
		case OpBlackholeOff:
			if c.blackholes > 0 {
				c.blackholes--
			}
		}
	}
	if killed && c.dead {
		c.inner.Close()
	}
}

// ReadFromUDPAddrPort implements Conn. Dropped and blackholed
// datagrams are consumed from the underlying socket and swallowed;
// the call then blocks for the next one, like a socket on a lossy
// link would.
func (c *faultConn) ReadFromUDPAddrPort(b []byte) (int, netip.AddrPort, error) {
	for {
		c.mu.Lock()
		c.advanceTo(c.now())
		if c.dead {
			c.mu.Unlock()
			return 0, netip.AddrPort{}, errDeadRead
		}
		if c.pendDup != nil {
			n := copy(b, c.pendDup)
			from := c.pendFrom
			c.pendDup = nil
			c.mu.Unlock()
			return n, from, nil
		}
		if c.rates.ReadErr > 0 && c.rrand.Bernoulli(c.rates.ReadErr) {
			c.mu.Unlock()
			return 0, netip.AddrPort{}, errReadBufs
		}
		c.mu.Unlock()

		n, from, err := c.inner.ReadFromUDPAddrPort(b)

		c.mu.Lock()
		c.advanceTo(c.now())
		if c.dead {
			c.mu.Unlock()
			return 0, netip.AddrPort{}, errDeadRead
		}
		if err != nil {
			c.mu.Unlock()
			return n, from, err
		}
		if c.blackholes > 0 || (c.rates.Drop > 0 && c.rrand.Bernoulli(c.rates.Drop)) {
			c.mu.Unlock()
			continue // swallowed; wait for the next datagram
		}
		if c.rates.Corrupt > 0 && n > 0 && c.rrand.Bernoulli(c.rates.Corrupt) {
			bit := c.rrand.Intn(n * 8)
			b[bit/8] ^= 1 << (bit % 8)
		}
		if c.rates.Dup > 0 && n > 0 && c.rrand.Bernoulli(c.rates.Dup) {
			c.pendDup = append(c.pendDup[:0], b[:n]...)
			c.pendFrom = from
		}
		c.mu.Unlock()
		return n, from, nil
	}
}

// WriteToUDPAddrPort implements Conn. Dropped and blackholed writes
// report success (the bytes vanish in flight, as seen by a sender on
// a lossy link); corruption flips one bit for the syscall and
// restores the caller's buffer afterwards.
func (c *faultConn) WriteToUDPAddrPort(b []byte, addr netip.AddrPort) (int, error) {
	c.mu.Lock()
	c.advanceTo(c.now())
	if c.dead {
		c.mu.Unlock()
		return 0, errDeadWrite
	}
	if c.blackholes > 0 {
		c.mu.Unlock()
		return len(b), nil
	}
	if c.rates.WriteErr > 0 && c.wrand.Bernoulli(c.rates.WriteErr) {
		err := errWriteBufs
		if c.wrand.Uint64()&1 == 1 {
			err = errWriteHost
		}
		c.mu.Unlock()
		return 0, err
	}
	if c.rates.Drop > 0 && c.wrand.Bernoulli(c.rates.Drop) {
		c.mu.Unlock()
		return len(b), nil
	}
	corruptBit := -1
	if c.rates.Corrupt > 0 && len(b) > 0 && c.wrand.Bernoulli(c.rates.Corrupt) {
		corruptBit = c.wrand.Intn(len(b) * 8)
	}
	dup := c.rates.Dup > 0 && len(b) > 0 && c.wrand.Bernoulli(c.rates.Dup)
	c.mu.Unlock()

	if corruptBit >= 0 {
		b[corruptBit/8] ^= 1 << (corruptBit % 8)
		n, err := c.inner.WriteToUDPAddrPort(b, addr)
		b[corruptBit/8] ^= 1 << (corruptBit % 8)
		return n, err
	}
	if dup {
		if n, err := c.inner.WriteToUDPAddrPort(b, addr); err != nil {
			return n, err
		}
	}
	return c.inner.WriteToUDPAddrPort(b, addr)
}

// Close implements Conn (driver shutdown, not a scripted kill).
func (c *faultConn) Close() error { return c.inner.Close() }

// SetReadBuffer implements Conn.
func (c *faultConn) SetReadBuffer(bytes int) error { return c.inner.SetReadBuffer(bytes) }

// SetWriteBuffer implements Conn.
func (c *faultConn) SetWriteBuffer(bytes int) error { return c.inner.SetWriteBuffer(bytes) }
