package core

import (
	"mpquic/internal/stream"
	"mpquic/internal/wire"
)

// Stream is the application-facing handle for one bidirectional QUIC
// stream. All methods must be called from simulation callbacks (the
// engine is single-threaded on the virtual clock).
type Stream struct {
	conn *Conn
	id   wire.StreamID

	send *stream.SendStream
	recv *stream.RecvStream
	fc   *stream.FlowController

	// onData fires whenever new contiguous bytes become readable or
	// the FIN arrives.
	onData func()
	// onAcked fires when every written byte (and FIN) is acked.
	onAcked func()
}

// ID returns the stream ID.
func (s *Stream) ID() wire.StreamID { return s.id }

// Write queues real payload bytes and triggers transmission.
func (s *Stream) Write(p []byte) {
	s.send.Write(p)
	s.conn.trySend()
}

// WriteSynthetic queues n logical bytes (benchmark mode).
func (s *Stream) WriteSynthetic(n uint64) {
	s.send.WriteSynthetic(n)
	s.conn.trySend()
}

// Close finishes the write side (sends FIN).
func (s *Stream) Close() {
	s.send.Close()
	s.conn.trySend()
}

// Readable reports contiguous unread bytes.
func (s *Stream) Readable() uint64 { return s.recv.Readable() }

// Read consumes up to n readable bytes, freeing flow-control credit.
// data is nil for synthetic payloads.
func (s *Stream) Read(n uint64) (uint64, []byte) {
	consumed, data := s.recv.Read(n)
	if consumed > 0 {
		s.fc.OnConsume(consumed)
		s.conn.connFC.OnConsume(consumed)
		s.conn.maybeQueueWindowUpdates(s)
	}
	return consumed, data
}

// BytesReceived reports total distinct stream bytes that arrived.
func (s *Stream) BytesReceived() uint64 { return s.recv.BytesReceived() }

// FinReceived reports whether the peer finished writing.
func (s *Stream) FinReceived() bool { return s.recv.FinReceived() }

// Finished reports whether the peer's FIN arrived and all bytes were
// consumed by Read.
func (s *Stream) Finished() bool { return s.recv.Finished() }

// Complete reports whether every byte up to the peer's FIN has arrived.
func (s *Stream) Complete() bool { return s.recv.Complete() }

// AllAcked reports whether everything written (including FIN) is acked.
func (s *Stream) AllAcked() bool { return s.send.AllAcked() }

// OnData registers the data-arrival callback.
func (s *Stream) OnData(fn func()) { s.onData = fn }

// OnAcked registers the all-acked callback.
func (s *Stream) OnAcked(fn func()) { s.onAcked = fn }

// --- connection-side stream management ---

// OpenStream opens a new locally initiated stream.
func (c *Conn) OpenStream() *Stream {
	id := c.nextStreamID
	c.nextStreamID += 2
	return c.getOrCreateStream(id)
}

// StreamByID returns an existing stream, or nil.
func (c *Conn) StreamByID(id wire.StreamID) *Stream {
	return c.streams[id]
}

func (c *Conn) getOrCreateStream(id wire.StreamID) *Stream {
	if s, ok := c.streams[id]; ok {
		return s
	}
	s := &Stream{
		conn: c,
		id:   id,
		send: stream.NewSendStream(id),
		recv: stream.NewRecvStream(id),
		fc:   stream.NewFlowController(c.cfg.StreamWindow),
	}
	c.streams[id] = s
	c.streamOrder = append(c.streamOrder, id)
	return s
}

// maybeQueueWindowUpdates emits WINDOW_UPDATE frames when consumption
// freed enough credit. In multipath mode with WindowUpdateAllPaths the
// frames are copied onto every active path (§3: the scheduler "ensures
// proper delivery of the WINDOW_UPDATE frames by sending them on all
// paths when they are needed").
func (c *Conn) maybeQueueWindowUpdates(s *Stream) {
	var frames []wire.Frame
	if s.fc.ShouldSendUpdate() {
		frames = append(frames, &wire.WindowUpdateFrame{StreamID: s.id, Offset: s.fc.NextUpdate()})
	}
	if c.connFC.ShouldSendUpdate() {
		frames = append(frames, &wire.WindowUpdateFrame{StreamID: 0, Offset: c.connFC.NextUpdate()})
	}
	if len(frames) == 0 {
		return
	}
	if c.cfg.Multipath && c.cfg.WindowUpdateAllPaths {
		for _, pid := range c.pathOrder {
			p := c.paths[pid]
			if p.open {
				for _, f := range frames {
					p.queueCtrl(f)
				}
			}
		}
	} else {
		c.ctrl = append(c.ctrl, frames...)
	}
	c.trySend()
}
