// Package netem is a deterministic network emulator.
//
// It plays the role Mininet plays in the paper: packets travel over
// links with a configurable capacity, propagation delay, bounded
// tail-drop queue, and Bernoulli random loss — the four factors of the
// paper's Table 1. Everything runs on a sim.Clock, so transfers are
// exact in virtual time.
//
// The emulator is payload-agnostic: it moves Datagrams whose Size the
// sending stack computed from its wire format. This lets the QUIC, TCP,
// MPTCP and MPQUIC stacks share one network substrate.
package netem

import (
	"fmt"
	"time"

	"mpquic/internal/sim"
)

// Addr identifies an interface endpoint, e.g. "10.0.1.1:443" or
// "[2001:db8::1]:443". Addresses are opaque strings to the emulator.
type Addr string

// Payload is any packet body a protocol stack hands to the network.
type Payload interface {
	// WireSize is the number of bytes the payload occupies inside the
	// transport datagram (excluding IP/UDP framing, which the sender
	// accounts for in Datagram.Size).
	WireSize() int
}

// Datagram is one network packet in flight.
type Datagram struct {
	From, To Addr
	// Size is the total on-wire size in bytes, including network- and
	// transport-layer framing. Links serialize Size bytes.
	Size    int
	Payload Payload
}

// Handler receives datagrams addressed to a registered address.
type Handler interface {
	HandleDatagram(dg Datagram)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(dg Datagram)

// HandleDatagram calls f(dg).
func (f HandlerFunc) HandleDatagram(dg Datagram) { f(dg) }

// LinkConfig describes one unidirectional link.
type LinkConfig struct {
	// RateMbps is the link capacity in megabits per second.
	RateMbps float64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// QueueDelay bounds the tail-drop queue: the queue holds at most
	// RateMbps×QueueDelay worth of bytes (floored at two MTUs so a
	// zero-buffer link can still carry back-to-back packets).
	QueueDelay time.Duration
	// LossRate is the probability in [0,1] that a packet is dropped
	// after leaving the queue (random wire loss, independent of
	// congestion).
	LossRate float64
}

// MTU is the maximum datagram size the emulator forwards, in bytes,
// including framing. Larger datagrams are rejected with a panic: stacks
// are responsible for segmentation.
const MTU = 1500

// LinkStats counts per-link activity.
type LinkStats struct {
	SentPackets    uint64 // delivered to the far end
	SentBytes      uint64
	QueueDrops     uint64 // tail-drop (congestion) losses
	RandomDrops    uint64 // Bernoulli (wire) losses
	EnqueueduBytes uint64
}

// Link is one unidirectional emulated link.
type Link struct {
	clock *sim.Clock
	rand  *sim.Rand
	cfg   LinkConfig
	name  string

	rateBps    float64 // bytes per second
	queueCap   int     // bytes
	queueBytes int
	busyUntil  sim.Time
	deliver    func(dg Datagram)
	down       bool

	Stats LinkStats
}

// NewLink builds a link delivering to the given sink.
func NewLink(clock *sim.Clock, rand *sim.Rand, name string, cfg LinkConfig, deliver func(dg Datagram)) *Link {
	if cfg.RateMbps <= 0 {
		panic(fmt.Sprintf("netem: link %s has non-positive rate", name))
	}
	l := &Link{
		clock:   clock,
		rand:    rand,
		cfg:     cfg,
		name:    name,
		rateBps: cfg.RateMbps * 1e6 / 8,
		deliver: deliver,
	}
	l.queueCap = int(l.rateBps * cfg.QueueDelay.Seconds())
	if l.queueCap < 2*MTU {
		l.queueCap = 2 * MTU
	}
	return l
}

// Config returns the link's configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// QueueCapacityBytes reports the tail-drop bound.
func (l *Link) QueueCapacityBytes() int { return l.queueCap }

// SetLossRate changes the random loss probability at runtime (used by
// the handover scenario where a path becomes fully lossy mid-run).
func (l *Link) SetLossRate(p float64) { l.cfg.LossRate = p }

// SetDown drops every subsequent packet when down is true.
func (l *Link) SetDown(down bool) { l.down = down }

// Send enqueues dg. Drops (queue overflow, random loss, link down)
// are silent, exactly as on a real wire.
func (l *Link) Send(dg Datagram) {
	if dg.Size <= 0 || dg.Size > MTU {
		panic(fmt.Sprintf("netem: datagram size %d out of (0,%d] on %s", dg.Size, MTU, l.name))
	}
	if l.down {
		l.Stats.RandomDrops++
		return
	}
	if l.queueBytes+dg.Size > l.queueCap {
		l.Stats.QueueDrops++
		return
	}
	l.queueBytes += dg.Size
	l.Stats.EnqueueduBytes += uint64(dg.Size)

	now := l.clock.Now()
	start := l.busyUntil
	if start < now {
		start = now
	}
	txTime := time.Duration(float64(dg.Size) / l.rateBps * float64(time.Second))
	finish := start.Add(txTime)
	l.busyUntil = finish

	l.clock.At(finish, func() {
		l.queueBytes -= dg.Size
		// Random loss is applied as the packet leaves the serializer:
		// it occupied queue space but never arrives.
		if l.cfg.LossRate > 0 && l.rand.Bernoulli(l.cfg.LossRate) {
			l.Stats.RandomDrops++
			return
		}
		l.Stats.SentPackets++
		l.Stats.SentBytes += uint64(dg.Size)
		l.clock.At(finish.Add(l.cfg.Delay), func() { l.deliver(dg) })
	})
}

// QueueBytes reports the current queue occupancy.
func (l *Link) QueueBytes() int { return l.queueBytes }

// Network connects registered addresses through routed links.
type Network struct {
	clock    *sim.Clock
	rand     *sim.Rand
	handlers map[Addr]Handler
	routes   map[routeKey]*Link
	// Dropped counts datagrams sent to an address with no route.
	Dropped uint64
}

type routeKey struct{ from, to Addr }

// New creates an empty network on the given clock. rand seeds the
// per-link loss processes.
func New(clock *sim.Clock, rand *sim.Rand) *Network {
	return &Network{
		clock:    clock,
		rand:     rand,
		handlers: make(map[Addr]Handler),
		routes:   make(map[routeKey]*Link),
	}
}

// Clock returns the simulation clock the network runs on.
func (n *Network) Clock() *sim.Clock { return n.clock }

// Register attaches a handler to an address. Re-registering replaces
// the previous handler (used when an endpoint rebinds).
func (n *Network) Register(addr Addr, h Handler) {
	n.handlers[addr] = h
}

// Unregister detaches the handler for addr.
func (n *Network) Unregister(addr Addr) { delete(n.handlers, addr) }

// AddRoute installs a unidirectional link carrying traffic from->to.
func (n *Network) AddRoute(from, to Addr, link *Link) {
	n.routes[routeKey{from, to}] = link
}

// Connect builds a bidirectional link pair between a and b with the
// same config in both directions and returns (a->b, b->a).
func (n *Network) Connect(a, b Addr, cfg LinkConfig) (*Link, *Link) {
	fwd := NewLink(n.clock, n.rand.Fork(), fmt.Sprintf("%s->%s", a, b), cfg, n.deliverTo(b))
	rev := NewLink(n.clock, n.rand.Fork(), fmt.Sprintf("%s->%s", b, a), cfg, n.deliverTo(a))
	n.AddRoute(a, b, fwd)
	n.AddRoute(b, a, rev)
	return fwd, rev
}

// ConnectAsym is Connect with distinct per-direction configs.
func (n *Network) ConnectAsym(a, b Addr, ab, ba LinkConfig) (*Link, *Link) {
	fwd := NewLink(n.clock, n.rand.Fork(), fmt.Sprintf("%s->%s", a, b), ab, n.deliverTo(b))
	rev := NewLink(n.clock, n.rand.Fork(), fmt.Sprintf("%s->%s", b, a), ba, n.deliverTo(a))
	n.AddRoute(a, b, fwd)
	n.AddRoute(b, a, rev)
	return fwd, rev
}

func (n *Network) deliverTo(addr Addr) func(dg Datagram) {
	return func(dg Datagram) {
		if h, ok := n.handlers[addr]; ok {
			h.HandleDatagram(dg)
		}
	}
}

// Send routes one datagram. Datagrams with no installed route are
// counted in Dropped and discarded.
func (n *Network) Send(dg Datagram) {
	link, ok := n.routes[routeKey{dg.From, dg.To}]
	if !ok {
		n.Dropped++
		return
	}
	link.Send(dg)
}

// Route returns the link from->to, or nil.
func (n *Network) Route(from, to Addr) *Link {
	return n.routes[routeKey{from, to}]
}
