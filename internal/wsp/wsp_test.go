package wsp

import (
	"math"
	"testing"

	"mpquic/internal/sim"
)

func TestSelectCount(t *testing.T) {
	for _, want := range []int{10, 50, 253} {
		pts := Select(want, 6, 1)
		if len(pts) != want {
			t.Fatalf("want %d points, got %d", want, len(pts))
		}
	}
}

func TestSelectDimensions(t *testing.T) {
	pts := Select(20, 8, 2)
	for _, p := range pts {
		if len(p) != 8 {
			t.Fatalf("dimension %d", len(p))
		}
		for _, v := range p {
			if v < 0 || v >= 1 {
				t.Fatalf("coordinate %v out of unit cube", v)
			}
		}
	}
}

func TestSelectDeterministic(t *testing.T) {
	a := Select(50, 4, 7)
	b := Select(50, 4, 7)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("same seed diverged")
			}
		}
	}
	c := Select(50, 4, 8)
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

func TestWSPSpreadsBetterThanRandom(t *testing.T) {
	const n, d = 100, 4
	wspPts := Select(n, d, 3)
	randPts := Candidates(n, d, sim.NewRand(3))
	dw := MinPairwiseDistance(wspPts)
	dr := MinPairwiseDistance(randPts)
	if dw <= dr {
		t.Fatalf("WSP min distance %v not better than random %v", dw, dr)
	}
	// WSP guarantees a healthy floor; random designs in 4-D with 100
	// points typically collapse below 0.1.
	if dw < 0.15 {
		t.Fatalf("WSP min distance %v too small", dw)
	}
}

func TestSelectCoversSpace(t *testing.T) {
	// Every octant of the 3-cube should receive at least one point
	// from a 100-point design.
	pts := Select(100, 3, 5)
	seen := map[int]bool{}
	for _, p := range pts {
		idx := 0
		for j, v := range p {
			if v >= 0.5 {
				idx |= 1 << j
			}
		}
		seen[idx] = true
	}
	if len(seen) != 8 {
		t.Fatalf("only %d/8 octants covered", len(seen))
	}
}

func TestMinPairwiseDistanceEdgeCases(t *testing.T) {
	if MinPairwiseDistance(nil) != 0 {
		t.Fatal("empty design")
	}
	if MinPairwiseDistance([]Point{{0.5, 0.5}}) != 0 {
		t.Fatal("single point")
	}
	d := MinPairwiseDistance([]Point{{0, 0}, {3, 4}})
	if math.Abs(d-5) > 1e-12 {
		t.Fatalf("distance %v", d)
	}
}

func TestSelectZeroAndNegative(t *testing.T) {
	if Select(0, 3, 1) != nil {
		t.Fatal("zero points")
	}
	if Select(-5, 3, 1) != nil {
		t.Fatal("negative points")
	}
}
