// Command mpq-vet runs the repository's determinism and pool-safety
// analyzers (internal/analysis) over a package pattern and exits
// non-zero on any unsuppressed finding. It is the multichecker of the
// suite, wired into `make check`, scripts/check.sh and CI.
//
// Usage:
//
//	mpq-vet [-analyzers a,b,...] [package pattern ...]
//
//	mpq-vet ./...                      # whole module (the default)
//	mpq-vet -analyzers maporder ./...  # one analyzer
//	mpq-vet -list                      # describe the suite
//
// A finding is suppressed by annotating the offending line (or the
// line above) with an audited reason:
//
//	//mpqvet:allow <analyzer> <reason>
//
// Malformed annotations (unknown analyzer, missing reason) fail the
// run even when nothing is flagged, so suppressions cannot rot.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpquic/internal/analysis"
)

func main() {
	var (
		list  = flag.Bool("list", false, "describe the analyzers and exit")
		names = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *names != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*names, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "mpq-vet: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpq-vet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpq-vet:", err)
		os.Exit(2)
	}

	exit := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpq-vet:", err)
			exit = 1
		}
		for _, d := range diags {
			fmt.Println(d.Format(pkg.Fset))
			exit = 1
		}
	}
	os.Exit(exit)
}
