package analysis

import (
	"go/ast"
	"go/types"
)

// Blocking enforces the driver-loop blocking discipline: code in the
// run-loop goroutine domain (see confine.go) must never block outside
// its one designated wait point, or every queued packet behind the
// stall pays the latency — exactly the per-packet stalls PR 8's
// batched loop removed. Inside functions whose domain set includes
// run-loop, the analyzer flags
//
//   - channel sends/receives outside a select (`<-ch`, `ch <- v`),
//     `range ch`, and selects without a default clause, unless the
//     site carries `//mpq:waitpoint` (on or above the line);
//   - mutex acquisition (sync.Mutex/RWMutex Lock/RLock) and
//     sync.WaitGroup.Wait;
//   - time.Sleep and blocking socket reads (net.UDPConn Read*) — the
//     readers own those, not the loop.
//
// go-launched literals inside run-loop functions run on their own
// goroutine and are exempt, as is everything in other domains (the
// reader goroutines block in ReadFromUDPAddrPort by design).
var Blocking = &Analyzer{
	Name: "blocking",
	Doc: "forbid blocking channel ops, mutex acquisition and blocking syscalls " +
		"in run-loop-domain code outside the //mpq:waitpoint",
	Run: runBlocking,
}

// udpReadMethods are the blocking ingress reads of net.UDPConn.
var udpReadMethods = []string{
	"Read", "ReadFrom", "ReadFromUDP", "ReadFromUDPAddrPort",
	"ReadMsgUDP", "ReadMsgUDPAddrPort",
}

// udpIfaceReadMethods are the UDP-specific read names also policed on
// interface-typed receivers (live.UDPConn, faultnet.Conn): interface
// dispatch hides the concrete *net.UDPConn from methodOn, but the call
// blocks just the same. The generic names (Read, ReadFrom) stay
// concrete-only so every io.Reader in run-loop code is not indicted.
var udpIfaceReadMethods = []string{
	"ReadFromUDP", "ReadFromUDPAddrPort", "ReadMsgUDP", "ReadMsgUDPAddrPort",
}

func runBlocking(pass *Pass) (any, error) {
	g := buildDomainGraph(pass)
	if len(g.ann.funcEntry) == 0 && len(g.ann.funcDomain) == 0 {
		return nil, nil // no declared domains, nothing to police
	}
	for _, u := range g.units {
		if !u.domains[runLoopDomain] {
			continue
		}
		checkBlocking(pass, g, u)
	}
	return nil, nil
}

// checkBlocking walks one run-loop unit. Select statements are handled
// as a whole (their comm clauses are not re-flagged individually), and
// detached go-literals are skipped.
func checkBlocking(pass *Pass, g *domainGraph, u *domainUnit) {
	skip := make(map[ast.Node]bool, len(u.detached))
	for _, lit := range u.detached {
		skip[lit] = true
	}
	info := pass.TypesInfo
	// inSelectComm holds the channel operations that are a select's
	// comm clauses; they are judged via the select, not on their own.
	inSelectComm := make(map[ast.Node]bool)
	ast.Inspect(u.body, func(n ast.Node) bool {
		if n == nil || skip[n] {
			return n == nil
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			hasDefault := false
			for _, clause := range n.Body.List {
				cc := clause.(*ast.CommClause)
				if cc.Comm == nil {
					hasDefault = true
					continue
				}
				markCommOps(cc.Comm, inSelectComm)
			}
			if !hasDefault && !g.ann.onWaitpoint(pass.Fset, n.Pos()) {
				pass.Reportf(n.Pos(),
					"blocking select (no default) in run-loop code; add a default, or mark the loop's "+
						"designated wait point with //mpq:waitpoint")
			}
		case *ast.SendStmt:
			if !inSelectComm[n] && !g.ann.onWaitpoint(pass.Fset, n.Pos()) {
				pass.Reportf(n.Pos(),
					"blocking channel send in run-loop code outside a select; use a select with default "+
						"or the //mpq:waitpoint")
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && !inSelectComm[n] && !g.ann.onWaitpoint(pass.Fset, n.Pos()) {
				pass.Reportf(n.Pos(),
					"blocking channel receive in run-loop code outside a select; use a select with default "+
						"or the //mpq:waitpoint")
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan && !g.ann.onWaitpoint(pass.Fset, n.Pos()) {
					pass.Reportf(n.Pos(), "range over a channel blocks run-loop code until the channel closes")
				}
			}
		case *ast.CallExpr:
			checkBlockingCall(pass, g, n)
		}
		return true
	})
}

// markCommOps records the channel operations that form a select comm
// clause (a send statement, or a receive possibly wrapped in an
// assignment or expression statement).
func markCommOps(comm ast.Stmt, set map[ast.Node]bool) {
	set[comm] = true
	ast.Inspect(comm, func(n ast.Node) bool {
		if ue, ok := n.(*ast.UnaryExpr); ok && ue.Op.String() == "<-" {
			set[ue] = true
		}
		return true
	})
}

// checkBlockingCall flags the call-shaped blockers.
func checkBlockingCall(pass *Pass, g *domainGraph, call *ast.CallExpr) {
	info := pass.TypesInfo
	if g.ann.onWaitpoint(pass.Fset, call.Pos()) {
		return
	}
	if pkgFunc(info, call, "time", "Sleep") {
		pass.Reportf(call.Pos(), "time.Sleep stalls the run loop; schedule a sim timer instead")
		return
	}
	if methodOn(info, call, "sync", "Mutex", "Lock") ||
		methodOn(info, call, "sync", "RWMutex", "Lock", "RLock") {
		pass.Reportf(call.Pos(),
			"mutex acquisition in run-loop code; the loop owns its state — cross domains with channels, not locks")
		return
	}
	if methodOn(info, call, "sync", "WaitGroup", "Wait") {
		pass.Reportf(call.Pos(), "sync.WaitGroup.Wait blocks the run loop until other goroutines finish")
		return
	}
	if methodOn(info, call, "net", "UDPConn", udpReadMethods...) ||
		ifaceMethodNamed(info, call, udpIfaceReadMethods...) {
		pass.Reportf(call.Pos(),
			"blocking socket read in run-loop code; reads belong to the reader goroutines")
		return
	}
}
