package live

import (
	"bytes"
	"fmt"
	"net/netip"
	"os"
	"strconv"
)

// Kernel socket statistics. Linux exposes a per-socket receive-queue
// overflow counter — the number of datagrams dropped because SO_RCVBUF
// was full — as the trailing "drops" column of /proc/net/udp (IPv4)
// and /proc/net/udp6 (IPv6). The driver surfaces it through
// Stats.RcvQueueDrops so a transfer can tell "the kernel queue
// overflowed" apart from "the network lost packets". On platforms
// without procfs the counter reads as zero.

// procUDPDrops returns the kernel drop counter for the socket bound to
// ap, or zero when it cannot be determined.
func procUDPDrops(ap netip.AddrPort) uint64 {
	path := "/proc/net/udp"
	if ap.Addr().Is6() && !ap.Addr().Is4In6() {
		path = "/proc/net/udp6"
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	want := procLocalHex(ap)
	var total uint64
	for _, line := range bytes.Split(data, []byte("\n")) {
		fields := bytes.Fields(line)
		// sl local rem st queues tr retrnsmt uid timeout inode ref ptr drops
		if len(fields) < 13 || string(fields[1]) != want {
			continue
		}
		if n, err := strconv.ParseUint(string(fields[len(fields)-1]), 10, 64); err == nil {
			total += n
		}
	}
	return total
}

// procLocalHex renders an address the way /proc/net/udp[6] prints the
// local_address column: the IP as little-endian 32-bit groups in hex,
// a colon, then the port in big-endian hex.
func procLocalHex(ap netip.AddrPort) string {
	a := ap.Addr().Unmap()
	if a.Is4() {
		b := a.As4()
		return fmt.Sprintf("%02X%02X%02X%02X:%04X", b[3], b[2], b[1], b[0], ap.Port())
	}
	b := a.As16()
	out := make([]byte, 0, 38)
	for g := 0; g < 4; g++ {
		w := b[g*4 : g*4+4]
		out = fmt.Appendf(out, "%02X%02X%02X%02X", w[3], w[2], w[1], w[0])
	}
	return fmt.Sprintf("%s:%04X", out, ap.Port())
}
