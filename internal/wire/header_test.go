package wire

import (
	"testing"
	"testing/quick"
)

func TestHeaderRoundTripSinglePath(t *testing.T) {
	h := Header{ConnID: 0xdeadbeefcafe, PacketNumber: 7}
	b := h.Append(nil, InvalidPacketNumber)
	got, n, err := ParseHeader(b, InvalidPacketNumber)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d of %d", n, len(b))
	}
	if got.ConnID != h.ConnID || got.PacketNumber != 7 || got.Multipath || got.Handshake {
		t.Fatalf("got %+v", got)
	}
	if len(b) != h.EncodedSize(InvalidPacketNumber) {
		t.Fatalf("EncodedSize %d != actual %d", h.EncodedSize(InvalidPacketNumber), len(b))
	}
}

func TestHeaderRoundTripMultipath(t *testing.T) {
	h := Header{ConnID: 1, Multipath: true, PathID: 3, PacketNumber: 1000}
	b := h.Append(nil, InvalidPacketNumber)
	got, _, err := ParseHeader(b, InvalidPacketNumber)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Multipath || got.PathID != 3 || got.PacketNumber != 1000 {
		t.Fatalf("got %+v", got)
	}
	// Multipath header is exactly one byte larger.
	h2 := h
	h2.Multipath = false
	if h.EncodedSize(InvalidPacketNumber) != h2.EncodedSize(InvalidPacketNumber)+1 {
		t.Fatal("Path ID must cost exactly one byte")
	}
}

func TestHeaderHandshakeFlag(t *testing.T) {
	h := Header{ConnID: 9, Handshake: true, PacketNumber: 1}
	b := h.Append(nil, InvalidPacketNumber)
	got, _, err := ParseHeader(b, InvalidPacketNumber)
	if err != nil || !got.Handshake {
		t.Fatalf("handshake flag lost: %+v err=%v", got, err)
	}
}

func TestPNLenForGrowsWithDelta(t *testing.T) {
	if PNLenFor(10, 9) != 1 {
		t.Fatal("adjacent PN should fit one byte")
	}
	if PNLenFor(200, InvalidPacketNumber) != 2 {
		t.Fatal("unacked PN 200 needs two bytes")
	}
	if PNLenFor(1<<20, 0) != 4 {
		t.Fatal("large delta needs four bytes")
	}
}

func TestDecodePacketNumberWindow(t *testing.T) {
	// Classic QUIC example: largest received 0xa82f30ea, truncated
	// 2-byte 0x9b32 decodes to 0xa82f9b32.
	got := DecodePacketNumber(0x9b32, 2, 0xa82f30ea)
	if got != 0xa82f9b32 {
		t.Fatalf("got %#x, want 0xa82f9b32", uint64(got))
	}
}

func TestHeaderPNTruncationRoundTripProperty(t *testing.T) {
	f := func(largestRaw uint32, deltaRaw uint16) bool {
		largest := PacketNumber(largestRaw)
		pn := largest + PacketNumber(deltaRaw%512) + 1
		h := Header{ConnID: 5, PacketNumber: pn}
		// Sender encodes against the last acked PN; receiver decodes
		// against the largest it received (here: pn-1 at worst).
		b := h.Append(nil, largest)
		got, _, err := ParseHeader(b, pn-1)
		return err == nil && got.PacketNumber == pn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestParseHeaderErrors(t *testing.T) {
	if _, _, err := ParseHeader(nil, InvalidPacketNumber); err == nil {
		t.Fatal("empty header accepted")
	}
	if _, _, err := ParseHeader([]byte{0xf0, 0, 0, 0, 0, 0, 0, 0, 0, 1}, InvalidPacketNumber); err == nil {
		t.Fatal("reserved flags accepted")
	}
	if _, _, err := ParseHeader([]byte{0x03, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1}, InvalidPacketNumber); err == nil {
		t.Fatal("PN length code 3 accepted")
	}
	h := Header{ConnID: 1, Multipath: true, PathID: 1, PacketNumber: 3}
	b := h.Append(nil, InvalidPacketNumber)
	if _, _, err := ParseHeader(b[:len(b)-2], InvalidPacketNumber); err == nil {
		t.Fatal("truncated multipath header accepted")
	}
}
