package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir over patterns and
// returns the decoded package records. -export compiles every listed
// package (through the build cache) so each record carries the path of
// its type export data, which the gc importer can read directly — the
// whole pipeline needs only the standard toolchain.
func goList(dir string, patterns ...string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json decode: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter satisfies types.Importer by reading the gc export
// data files `go list -export` produced.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// newInfo allocates the types.Info maps the analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// parseFiles parses the named files (absolute paths) in file-name
// order with comments retained.
func parseFiles(fset *token.FileSet, names []string) ([]*ast.File, error) {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	files := make([]*ast.File, 0, len(sorted))
	for _, name := range sorted {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// typecheck runs go/types over the parsed files using export data for
// every import.
func typecheck(fset *token.FileSet, pkgPath string, files []*ast.File, exports map[string]string) (*types.Package, *types.Info, error) {
	info := newInfo()
	conf := types.Config{Importer: exportImporter(fset, exports)}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("typecheck %s: %v", pkgPath, err)
	}
	return tpkg, info, nil
}

// Load type-checks the non-test files of every module package matching
// patterns (run relative to root, the module directory) and returns
// them in import-path order.
func Load(root string, patterns ...string) ([]*Package, error) {
	listed, err := goList(root, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var roots []listedPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			roots = append(roots, p)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })
	pkgs := make([]*Package, 0, len(roots))
	for _, p := range roots {
		if len(p.GoFiles) == 0 {
			continue
		}
		fset := token.NewFileSet()
		names := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			names[i] = filepath.Join(p.Dir, f)
		}
		files, err := parseFiles(fset, names)
		if err != nil {
			return nil, err
		}
		tpkg, info, err := typecheck(fset, p.ImportPath, files, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, &Package{
			PkgPath: p.ImportPath, Dir: p.Dir,
			Fset: fset, Files: files, Types: tpkg, Info: info,
		})
	}
	return pkgs, nil
}

// LoadFromDir type-checks the single package in dir under the given
// import path, resolving its imports (standard library or module
// packages) through the module at root. This is how the analysistest
// harness loads testdata packages, which live outside the module.
func LoadFromDir(root, dir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	fset := token.NewFileSet()
	files, err := parseFiles(fset, names)
	if err != nil {
		return nil, err
	}
	// Resolve the testdata package's imports through `go list` in the
	// module root: stdlib paths and mpquic/... paths both work there.
	importSet := make(map[string]bool)
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, err
			}
			if path != "unsafe" {
				importSet[path] = true
			}
		}
	}
	imports := make([]string, 0, len(importSet))
	for path := range importSet {
		imports = append(imports, path)
	}
	sort.Strings(imports)
	exports := make(map[string]string)
	if len(imports) > 0 {
		listed, err := goList(root, imports...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	tpkg, info, err := typecheck(fset, pkgPath, files, exports)
	if err != nil {
		return nil, err
	}
	return &Package{PkgPath: pkgPath, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
