package expdesign

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"mpquic/internal/netem"
)

func TestDynamicClassScenarioGeneration(t *testing.T) {
	const n = 16
	for _, c := range DynamicClasses {
		scs := GenerateScenarios(c, n)
		if len(scs) != n {
			t.Fatalf("%s: %d scenarios, want %d", c.Name, len(scs), n)
		}
		again := GenerateScenarios(c, n)
		if !reflect.DeepEqual(scs, again) {
			t.Fatalf("%s: generation is not deterministic", c.Name)
		}
		for _, sc := range scs {
			d := sc.Dynamics
			if d == nil {
				t.Fatalf("%s#%d: dynamic class produced a static scenario", c.Name, sc.ID)
			}
			if d.Kind != c.Dynamics {
				t.Fatalf("%s#%d: kind %q, want %q", c.Name, sc.ID, d.Kind, c.Dynamics)
			}
			switch d.Kind {
			case DynBursty:
				if d.MeanBurstPkts < minBurstPkts || d.MeanBurstPkts > maxBurstPkts {
					t.Fatalf("%s#%d: burst %v outside [%v,%v]", c.Name, sc.ID, d.MeanBurstPkts, minBurstPkts, maxBurstPkts)
				}
				// A bursty scenario must have loss to convert.
				if sc.Paths[0].LossRate <= 0 && sc.Paths[1].LossRate <= 0 {
					t.Fatalf("%s#%d: bursty scenario with no lossy path", c.Name, sc.ID)
				}
			case DynOscillate:
				if d.Period < minOscPeriod || d.Period > maxOscPeriod {
					t.Fatalf("%s#%d: period %v outside range", c.Name, sc.ID, d.Period)
				}
				if d.Depth < minOscDepth || d.Depth > maxOscDepth {
					t.Fatalf("%s#%d: depth %v outside range", c.Name, sc.ID, d.Depth)
				}
			case DynFlaky:
				if d.Period < minFlapPeriod || d.Period > maxFlapPeriod {
					t.Fatalf("%s#%d: period %v outside range", c.Name, sc.ID, d.Period)
				}
				if d.Outage < minFlapOutage || d.Outage > maxFlapOutage {
					t.Fatalf("%s#%d: outage %v outside range", c.Name, sc.ID, d.Outage)
				}
				if d.Outage >= d.Period {
					t.Fatalf("%s#%d: outage %v >= period %v", c.Name, sc.ID, d.Outage, d.Period)
				}
			}
			if !strings.Contains(sc.String(), "+") {
				t.Fatalf("%s#%d: String() does not mention the dynamics: %s", c.Name, sc.ID, sc)
			}
		}
	}
	// Static classes must stay static (and their artifacts unchanged).
	for _, c := range Classes {
		for _, sc := range GenerateScenarios(c, 4) {
			if sc.Dynamics != nil {
				t.Fatalf("%s#%d: static class grew dynamics", c.Name, sc.ID)
			}
		}
	}
}

func TestDynamicScenariosSurviveArtifactRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.jsonl")
	cfg := testGridConfig(path)
	cfg.Class = BurstyLossGrid
	cfg.Scenarios = 2
	ref := mustRunGrid(t, cfg)
	for _, sr := range ref.Results {
		if sr.Scenario.Dynamics == nil {
			t.Fatalf("scenario %d lost its dynamics before persisting", sr.Scenario.ID)
		}
	}
	loaded, err := LoadFigureData(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded, ref) {
		t.Fatal("reloaded dynamic grid differs from the in-memory run")
	}
}

func TestDynamicGridSameSeedByteIdenticalArtifacts(t *testing.T) {
	dir := t.TempDir()
	var contents [][]byte
	for i := 0; i < 2; i++ {
		path := filepath.Join(dir, ArtifactFileName(BurstyLossGrid, 128<<10, 0, 1))
		cfg := testGridConfig(path)
		cfg.Class = BurstyLossGrid
		cfg.Scenarios = 2
		cfg.Workers = 2 // concurrency must not leak into the artifact order
		mustRunGrid(t, cfg)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		contents = append(contents, b)
		os.Remove(path)
	}
	if !bytes.Equal(contents[0], contents[1]) {
		t.Fatal("two same-seed dynamic grid runs produced different artifact bytes")
	}
}

func TestDynamicGridCheckpointResume(t *testing.T) {
	base := testGridConfig("")
	base.Class = BurstyLossGrid
	reference := mustRunGrid(t, base)

	path := filepath.Join(t.TempDir(), "grid.jsonl")
	partial := testGridConfig(path)
	partial.Class = BurstyLossGrid
	partial.Shard, partial.NumShards = 0, 2
	mustRunGrid(t, partial)
	wrote := countLines(t, path)
	if wrote == 0 || wrote >= len(reference.Results) {
		t.Fatalf("partial run persisted %d/%d scenarios, want a strict subset", wrote, len(reference.Results))
	}

	resumed := testGridConfig(path)
	resumed.Class = BurstyLossGrid
	got := mustRunGrid(t, resumed)
	if !reflect.DeepEqual(got, reference) {
		t.Fatal("resumed dynamic grid differs from uninterrupted run")
	}
	if appended := countLines(t, path) - wrote; appended != len(reference.Results)-wrote {
		t.Fatalf("resume appended %d records, want the %d missing", appended, len(reference.Results)-wrote)
	}
}

// TestBurstinessChangesTransferTimes is the subsystem's end-to-end
// acceptance check: a Gilbert–Elliott loss process with the same
// average loss rate as a Bernoulli one must yield measurably different
// transfer-time behaviour. With ~190 packets per transfer and 2% loss,
// Bernoulli spreads ~4 drops evenly over every run, while a 12-packet
// mean burst concentrates them: most runs see none, a few see a long
// burst — same mean loss, very different distribution.
func TestBurstinessChangesTransferTimes(t *testing.T) {
	spec := netem.PathSpec{CapacityMbps: 5, RTT: 30 * time.Millisecond, QueueDelay: 100 * time.Millisecond, LossRate: 0.02}
	static := Scenario{ID: 0, Class: "ge-vs-bernoulli", Paths: [2]netem.PathSpec{spec, spec}}
	bursty := static
	bursty.Dynamics = &Dynamics{Kind: DynBursty, MeanBurstPkts: 12}

	const size, seeds = 256 << 10, 12
	var diff int
	var bern, ge []time.Duration
	for seed := uint64(1); seed <= seeds; seed++ {
		b := Run(static, ProtoQUIC, size, 0, seed)
		g := Run(bursty, ProtoQUIC, size, 0, seed)
		if !b.Completed || !g.Completed {
			t.Fatalf("seed %d: incomplete run (bernoulli=%v ge=%v)", seed, b.Completed, g.Completed)
		}
		bern = append(bern, b.Elapsed)
		ge = append(ge, g.Elapsed)
		if b.Elapsed != g.Elapsed {
			diff++
		}
	}
	if diff < seeds/2 {
		t.Fatalf("only %d/%d seeds differ between Bernoulli and GE at equal average loss", diff, seeds)
	}
	// The distributions must differ in spread, not just per-seed noise:
	// bursty loss leaves most transfers untouched and hammers a few.
	spread := func(xs []time.Duration) time.Duration {
		min, max := xs[0], xs[0]
		for _, x := range xs {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		return max - min
	}
	if sb, sg := spread(bern), spread(ge); sb == sg {
		t.Fatalf("identical elapsed-time spread %v for both loss processes", sb)
	}
}

// TestDynamicRunsDeterministic pins the per-run property the grid
// artifacts rely on: same scenario + seed -> identical result for every
// dynamics kind, different seed -> a different packet-level outcome.
func TestDynamicRunsDeterministic(t *testing.T) {
	for _, c := range DynamicClasses {
		sc := GenerateScenarios(c, 2)[1]
		for start := 0; start < 2; start++ {
			a := Run(sc, ProtoMPQUIC, 128<<10, start, 42)
			b := Run(sc, ProtoMPQUIC, 128<<10, start, 42)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s start=%d: same-seed runs differ", c.Name, start)
			}
		}
	}
}

func TestFlakyDeadlinePadding(t *testing.T) {
	spec := netem.PathSpec{CapacityMbps: 5, RTT: 30 * time.Millisecond, QueueDelay: 100 * time.Millisecond}
	static := Scenario{Paths: [2]netem.PathSpec{spec, spec}}
	flaky := static
	flaky.Dynamics = &Dynamics{Kind: DynFlaky, Period: 2 * time.Second, Outage: time.Second}
	ds := deadlineFor(static, ProtoQUIC, 20<<20, 0)
	df := deadlineFor(flaky, ProtoQUIC, 20<<20, 0)
	if df <= ds {
		t.Fatalf("flaky deadline %v not padded beyond static %v", df, ds)
	}
}
