package wire

import "sync"

// packetBufCap is the capacity of pooled encode buffers: one full
// Ethernet MTU, comfortably above MaxPacketSize.
const packetBufCap = 1500

// packetBufPool recycles encode buffers as fixed-size array pointers so
// both Get and Put are allocation-free (a *[N]byte fits in an interface
// without boxing).
var packetBufPool = sync.Pool{
	New: func() any { return new([packetBufCap]byte) },
}

// GetPacketBuf returns an empty buffer with capacity for a full packet,
// recycled from the pool. Encode into it with Packet.EncodeTo and hand
// it back with PutPacketBuf once the bytes are no longer referenced.
func GetPacketBuf() []byte {
	return packetBufPool.Get().(*[packetBufCap]byte)[:0]
}

// PutPacketBuf returns a GetPacketBuf buffer to the pool. The caller
// must not touch b (or anything aliasing it, e.g. frames from
// DecodeBorrowed) afterwards. Buffers that did not come from
// GetPacketBuf are ignored, so callers may hand back any packet buffer
// unconditionally.
func PutPacketBuf(b []byte) {
	if cap(b) != packetBufCap {
		return
	}
	packetBufPool.Put((*[packetBufCap]byte)(b[:packetBufCap]))
}
