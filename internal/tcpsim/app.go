package tcpsim

import "time"

// GetRequestSize models the size of the "GET <n>" request in bytes.
const GetRequestSize = 100

// GetResult mirrors apps.GetResult for the TCP baseline.
type GetResult struct {
	Size          uint64
	Start         time.Duration
	Finish        time.Duration
	EstablishedAt time.Duration
}

// Elapsed is the client-perceived download time.
func (r GetResult) Elapsed() time.Duration { return r.Finish - r.Start }

// GoodputBps is application goodput in bits per second.
func (r GetResult) GoodputBps() float64 {
	el := r.Elapsed().Seconds()
	if el <= 0 {
		return 0
	}
	return float64(r.Size) * 8 / el
}

// ServeGet attaches a GET responder to a listener: when a connection's
// incoming stream finishes (request received), the server writes size
// response bytes and closes its side. The response size is provided by
// the harness (the emulated request carries no literal text).
func ServeGet(l *Listener, size uint64) {
	l.OnConnection(func(c *Conn) {
		served := false
		c.OnData(func() {
			if n := c.Readable(); n > 0 {
				c.Read(n)
			}
			if c.Finished() && !served {
				served = true
				c.WriteSynthetic(size)
				c.CloseWrite()
			}
		})
	})
}

// GetOverTCP arms a client-side download: the request goes out as soon
// as the secure handshake completes; onDone fires when the last
// response byte is consumed.
func GetOverTCP(c *Conn, size uint64, now func() time.Duration, onDone func(GetResult)) {
	start := now()
	done := false
	c.OnEstablished(func() {
		c.WriteSynthetic(GetRequestSize)
		c.CloseWrite()
	})
	c.OnData(func() {
		if n := c.Readable(); n > 0 {
			c.Read(n)
		}
		if c.Finished() && !done {
			done = true
			if onDone != nil {
				onDone(GetResult{Size: size, Start: start, Finish: now(), EstablishedAt: c.Stats.EstablishedAt})
			}
		}
	})
}
