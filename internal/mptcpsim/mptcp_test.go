package mptcpsim

import (
	"testing"
	"time"

	"mpquic/internal/netem"
	"mpquic/internal/sim"
)

type mpHarness struct {
	clock  *sim.Clock
	tp     *netem.TwoPathNet
	lis    *Listener
	client *Conn
}

func newMPHarness(t *testing.T, cfg Config, specs [2]netem.PathSpec) *mpHarness {
	t.Helper()
	clock := sim.NewClock()
	clock.Limit = 30_000_000
	tp := netem.NewTwoPath(clock, sim.NewRand(11), specs)
	h := &mpHarness{clock: clock, tp: tp}
	h.lis = ListenMPTCP(tp.Net, cfg, tp.ServerAddrs[:])
	h.client = DialMPTCP(tp.Net, cfg, 0x5555, tp.ClientAddrs[:], tp.ServerAddrs[:])
	return h
}

func (h *mpHarness) run(t *testing.T, until time.Duration) {
	t.Helper()
	if err := h.clock.RunUntil(sim.Time(until)); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func symSpecs(mbps float64, rtt time.Duration) [2]netem.PathSpec {
	return [2]netem.PathSpec{
		{CapacityMbps: mbps, RTT: rtt, QueueDelay: 100 * time.Millisecond},
		{CapacityMbps: mbps, RTT: rtt, QueueDelay: 100 * time.Millisecond},
	}
}

func TestMPTCPEstablishesAndJoins(t *testing.T) {
	h := newMPHarness(t, DefaultConfig(), symSpecs(10, 40*time.Millisecond))
	var estAt time.Duration
	h.client.OnEstablished(func() { estAt = h.clock.Now().Duration() })
	h.run(t, 2*time.Second)
	if !h.client.Established() {
		t.Fatal("not established")
	}
	// 3 RTTs (TCP 3WHS + TLS 1.2).
	if estAt < 120*time.Millisecond || estAt > 140*time.Millisecond {
		t.Fatalf("established at %v, want ~120ms", estAt)
	}
	// The join completes one RTT after establishment.
	if len(h.client.Subflows()) != 2 {
		t.Fatalf("%d subflows", len(h.client.Subflows()))
	}
	sf1 := h.client.SubflowByID(1)
	if !sf1.Established() {
		t.Fatal("join did not complete")
	}
	if join := sf1.EstablishedAt - estAt; join < 40*time.Millisecond || join > 60*time.Millisecond {
		t.Fatalf("join took %v, want ~1 RTT", join)
	}
}

func TestMPTCPTransferCompletes(t *testing.T) {
	h := newMPHarness(t, DefaultConfig(), symSpecs(10, 30*time.Millisecond))
	ServeGet(h.lis, 2<<20)
	var res *GetResult
	GetOverMPTCP(h.client, 2<<20, func() time.Duration { return h.clock.Now().Duration() },
		func(r GetResult) { res = &r })
	h.run(t, 120*time.Second)
	if res == nil {
		t.Fatal("download did not finish")
	}
	if res.Elapsed() > 10*time.Second {
		t.Fatalf("took %v", res.Elapsed())
	}
}

func TestMPTCPAggregatesBandwidth(t *testing.T) {
	size := uint64(4 << 20)
	// Multipath run.
	h := newMPHarness(t, DefaultConfig(), symSpecs(10, 30*time.Millisecond))
	ServeGet(h.lis, size)
	var mpRes *GetResult
	GetOverMPTCP(h.client, size, func() time.Duration { return h.clock.Now().Duration() },
		func(r GetResult) { mpRes = &r })
	h.run(t, 120*time.Second)
	if mpRes == nil {
		t.Fatal("mptcp did not finish")
	}
	// Both subflows moved real data.
	srv := h.lis.Conns()[0]
	for _, sf := range srv.Subflows() {
		if sf.DataBytesSent < uint64(1<<20) {
			t.Fatalf("subflow %d sent only %d data bytes", sf.ID, sf.DataBytesSent)
		}
	}
	// Faster than the 10 Mbps single-path floor for 4 MiB (~3.4 s).
	if mpRes.Elapsed() > 3200*time.Millisecond {
		t.Fatalf("no aggregation: %v", mpRes.Elapsed())
	}
}

func TestMPTCPSurvivesRandomLoss(t *testing.T) {
	specs := symSpecs(10, 30*time.Millisecond)
	specs[0].LossRate = 0.02
	specs[1].LossRate = 0.02
	h := newMPHarness(t, DefaultConfig(), specs)
	ServeGet(h.lis, 1<<20)
	var res *GetResult
	GetOverMPTCP(h.client, 1<<20, func() time.Duration { return h.clock.Now().Duration() },
		func(r GetResult) { res = &r })
	h.run(t, 300*time.Second)
	if res == nil {
		t.Fatal("did not survive loss")
	}
}

func TestMPTCPHandoverViaPotentiallyFailed(t *testing.T) {
	specs := [2]netem.PathSpec{
		{CapacityMbps: 10, RTT: 15 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
		{CapacityMbps: 10, RTT: 25 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
	}
	h := newMPHarness(t, DefaultConfig(), specs)
	ServeGet(h.lis, 8<<20)
	var res *GetResult
	GetOverMPTCP(h.client, 8<<20, func() time.Duration { return h.clock.Now().Duration() },
		func(r GetResult) { res = &r })
	// Kill path 0 mid-transfer.
	h.clock.At(sim.Time(2*time.Second), func() { h.tp.KillPath(0) })
	h.run(t, 300*time.Second)
	if res == nil {
		t.Fatal("transfer did not survive path failure")
	}
	srv := h.lis.Conns()[0]
	sf0 := srv.SubflowByID(0)
	if !sf0.PotentiallyFailed() {
		t.Fatal("failed subflow not marked PF")
	}
	if srv.Stats.Reinjections == 0 {
		t.Fatal("no reinjection after path failure")
	}
}

func TestMPTCPReceiveWindowSharedAcrossSubflows(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecvWindow = 128 << 10
	// High-BDP paths: window binds well below path capacity.
	specs := [2]netem.PathSpec{
		{CapacityMbps: 50, RTT: 200 * time.Millisecond, QueueDelay: 200 * time.Millisecond},
		{CapacityMbps: 50, RTT: 200 * time.Millisecond, QueueDelay: 200 * time.Millisecond},
	}
	h := newMPHarness(t, cfg, specs)
	ServeGet(h.lis, 2<<20)
	var res *GetResult
	GetOverMPTCP(h.client, 2<<20, func() time.Duration { return h.clock.Now().Duration() },
		func(r GetResult) { res = &r })
	h.run(t, 300*time.Second)
	if res == nil {
		t.Fatal("did not finish")
	}
	// Window-limited: ≤ rwnd/RTT = 128KB/200ms ≈ 5.2 Mbps across both.
	if gp := res.GoodputBps() / 1e6; gp > 7 {
		t.Fatalf("goodput %.1f Mbps exceeds shared window bound", gp)
	}
}

func TestMPTCPORPTriggersOnWindowStall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecvWindow = 256 << 10
	// Heterogeneous paths: slow path holds data the window needs.
	specs := [2]netem.PathSpec{
		{CapacityMbps: 20, RTT: 10 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
		{CapacityMbps: 0.5, RTT: 300 * time.Millisecond, QueueDelay: 500 * time.Millisecond},
	}
	h := newMPHarness(t, cfg, specs)
	ServeGet(h.lis, 4<<20)
	var res *GetResult
	GetOverMPTCP(h.client, 4<<20, func() time.Duration { return h.clock.Now().Duration() },
		func(r GetResult) { res = &r })
	h.run(t, 600*time.Second)
	if res == nil {
		t.Fatal("did not finish")
	}
	srv := h.lis.Conns()[0]
	if srv.Stats.Reinjections == 0 {
		t.Skip("no window stall occurred in this configuration")
	}
	if srv.Stats.Penalizations == 0 {
		t.Fatal("reinjection without penalization")
	}
}

func TestMPTCPORPAblationDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ORP = false
	cfg.RecvWindow = 256 << 10
	specs := [2]netem.PathSpec{
		{CapacityMbps: 20, RTT: 10 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
		{CapacityMbps: 0.5, RTT: 300 * time.Millisecond, QueueDelay: 500 * time.Millisecond},
	}
	h := newMPHarness(t, cfg, specs)
	ServeGet(h.lis, 2<<20)
	var res *GetResult
	GetOverMPTCP(h.client, 2<<20, func() time.Duration { return h.clock.Now().Duration() },
		func(r GetResult) { res = &r })
	h.run(t, 900*time.Second)
	if res == nil {
		t.Fatal("did not finish without ORP")
	}
	if h.lis.Conns()[0].Stats.Penalizations != 0 {
		t.Fatal("penalization despite ORP disabled")
	}
}

func TestMPTCPSingleSubflowDegeneratesToTCP(t *testing.T) {
	clock := sim.NewClock()
	tp := netem.NewTwoPath(clock, sim.NewRand(3), symSpecs(10, 30*time.Millisecond))
	lis := ListenMPTCP(tp.Net, DefaultConfig(), tp.ServerAddrs[:1])
	client := DialMPTCP(tp.Net, DefaultConfig(), 0x77, tp.ClientAddrs[:1], tp.ServerAddrs[:1])
	ServeGet(lis, 1<<20)
	var res *GetResult
	GetOverMPTCP(client, 1<<20, func() time.Duration { return clock.Now().Duration() },
		func(r GetResult) { res = &r })
	clock.RunUntil(sim.Time(60 * time.Second))
	if res == nil {
		t.Fatal("single-subflow transfer failed")
	}
	if len(client.Subflows()) != 1 {
		t.Fatalf("%d subflows", len(client.Subflows()))
	}
}
