// Package stream implements QUIC stream machinery: byte-interval
// bookkeeping, send streams with retransmission queues, receive streams
// with reassembly, and stream-/connection-level flow control.
//
// Streams support a synthetic-payload mode used by the benchmark
// harness: applications can write N logical bytes without materializing
// them, so a 20 MB transfer costs O(intervals) memory instead of 20 MB.
// Byte accounting is identical in both modes.
package stream

import (
	"fmt"
	"sort"
)

// Interval is a half-open byte range [Start, End).
type Interval struct {
	Start, End uint64
}

// Len returns the interval length.
func (iv Interval) Len() uint64 { return iv.End - iv.Start }

// IntervalSet is a sorted, coalesced set of half-open intervals.
// The zero value is an empty set.
type IntervalSet struct {
	ivs []Interval
}

// Empty reports whether the set contains no bytes.
func (s *IntervalSet) Empty() bool { return len(s.ivs) == 0 }

// Size returns the total number of bytes covered.
func (s *IntervalSet) Size() uint64 {
	var n uint64
	for _, iv := range s.ivs {
		n += iv.Len()
	}
	return n
}

// Intervals returns the underlying sorted intervals (do not mutate).
func (s *IntervalSet) Intervals() []Interval { return s.ivs }

// Add inserts [start, end), coalescing with neighbors.
func (s *IntervalSet) Add(start, end uint64) {
	if start >= end {
		return
	}
	// Find insertion point: first interval with End >= start.
	i := 0
	for i < len(s.ivs) && s.ivs[i].End < start {
		i++
	}
	j := i
	newIv := Interval{start, end}
	for j < len(s.ivs) && s.ivs[j].Start <= end {
		if s.ivs[j].Start < newIv.Start {
			newIv.Start = s.ivs[j].Start
		}
		if s.ivs[j].End > newIv.End {
			newIv.End = s.ivs[j].End
		}
		j++
	}
	s.ivs = append(s.ivs[:i], append([]Interval{newIv}, s.ivs[j:]...)...)
}

// Remove deletes [start, end) from the set, splitting as needed.
func (s *IntervalSet) Remove(start, end uint64) {
	if start >= end {
		return
	}
	var out []Interval
	for _, iv := range s.ivs {
		if iv.End <= start || iv.Start >= end {
			out = append(out, iv)
			continue
		}
		if iv.Start < start {
			out = append(out, Interval{iv.Start, start})
		}
		if iv.End > end {
			out = append(out, Interval{end, iv.End})
		}
	}
	s.ivs = out
}

// Contains reports whether every byte of [start, end) is in the set.
// O(log n): the intervals are sorted and disjoint, so only the first
// interval ending past start can cover the range.
func (s *IntervalSet) Contains(start, end uint64) bool {
	if start >= end {
		return true
	}
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End > start })
	if i == len(s.ivs) {
		return false
	}
	iv := s.ivs[i]
	return iv.Start <= start && end <= iv.End
}

// FirstMissingFrom returns the first byte >= from not covered by the
// set (i.e. the reassembly frontier when from is the read offset).
func (s *IntervalSet) FirstMissingFrom(from uint64) uint64 {
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End > from })
	if i == len(s.ivs) || s.ivs[i].Start > from {
		return from
	}
	return s.ivs[i].End
}

// Pop removes and returns up to maxLen bytes from the lowest interval.
// It returns a zero interval when the set is empty.
func (s *IntervalSet) Pop(maxLen uint64) Interval {
	if len(s.ivs) == 0 || maxLen == 0 {
		return Interval{}
	}
	iv := s.ivs[0]
	if iv.Len() <= maxLen {
		s.ivs = s.ivs[1:]
		return iv
	}
	taken := Interval{iv.Start, iv.Start + maxLen}
	s.ivs[0].Start = taken.End
	return taken
}

func (s *IntervalSet) String() string { return fmt.Sprint(s.ivs) }
