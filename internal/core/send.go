package core

import (
	"mpquic/internal/netem"
	"mpquic/internal/recovery"
	"mpquic/internal/trace"
	"mpquic/internal/wire"
)

// trySend drains everything currently sendable: handshake messages,
// scheduled data packets (with duplication), and pending pure ACKs. It
// is the single transmission entry point and is re-entrancy safe —
// nested calls (from stream callbacks) just flag another pass.
func (c *Conn) trySend() {
	if c.closed {
		return
	}
	if c.sending {
		c.sendPending = true
		return
	}
	c.sending = true
	defer func() { c.sending = false }()
	for {
		c.sendPending = false
		c.sendPass()
		if !c.sendPending || c.closed {
			break
		}
	}
	c.resetTimer()
}

func (c *Conn) sendPass() {
	c.sendHandshake()
	var acked pathSet
	c.sendPathCtrl(&acked)
	c.sendData(&acked)
	c.sendTailReinjection()
	c.sendPureAcks(&acked)
}

// pathSet is an allocation-free set of path IDs, used as sendPass
// scratch to record which paths already had an ACK bundled.
type pathSet [4]uint64

func (s *pathSet) add(id wire.PathID)      { s[id>>6] |= 1 << (id & 63) }
func (s *pathSet) has(id wire.PathID) bool { return s[id>>6]&(1<<(id&63)) != 0 }

// sendTailReinjection implements the TailReinjection extension: after
// the scheduler pass, any path that still has congestion-window space
// has nothing of its own to carry — so it duplicates stream data still
// outstanding on *other* paths. A lossy or slow path then no longer
// dictates the completion tail, and window-stalled transfers borrow
// idle capacity (the MPQUIC analog of MPTCP's opportunistic
// retransmission). Each packet is reinjected at most once.
func (c *Conn) sendTailReinjection() {
	if !c.cfg.TailReinjection || !c.handshakeComplete || !c.dataIdle() {
		return
	}
	for _, pid := range c.pathOrder {
		p := c.paths[pid]
		if !p.open || p.potentiallyFailed || p.remotePF {
			continue
		}
		for p.cwndAvailable(wire.MaxPacketSize) {
			sp := c.oldestReinjectable(p)
			if sp == nil {
				break
			}
			sp.Reinjected = true
			frames := reinjectableFrames(sp.Frames)
			if len(frames) == 0 {
				continue
			}
			c.Stats.TailReinjections++
			c.sendPacket(p, frames, false, true)
		}
	}
}

// dataIdle reports that every stream's data (and retransmissions) has
// been handed to the network — the transfer is in its completion tail,
// where duplicates cannot delay first-time transmissions.
func (c *Conn) dataIdle() bool {
	for _, sid := range c.streamOrder {
		if c.streams[sid].send.HasData() {
			return false
		}
	}
	return true
}

// oldestReinjectable finds the oldest outstanding, not-yet-reinjected
// data packet on a path *slower* than target. Duplicating onto a
// slower path would queue redundant copies behind the very stragglers
// they are meant to rescue, so only faster paths qualify as targets.
func (c *Conn) oldestReinjectable(target *Path) *recovery.SentPacket {
	var oldest *recovery.SentPacket
	for _, pid := range c.pathOrder {
		q := c.paths[pid]
		if q == target || !q.open {
			continue
		}
		if q.est.HasSample() && target.est.HasSample() &&
			q.est.SmoothedRTT() <= target.est.SmoothedRTT() {
			continue // only rescue data stuck on slower paths
		}
		for _, sp := range q.space.Outstanding() {
			if sp.Reinjected || !sp.Retransmittable {
				continue
			}
			if !hasStreamFrame(sp.Frames) {
				continue
			}
			if oldest == nil || sp.SentTime < oldest.SentTime {
				oldest = sp
				break // Outstanding is oldest-first per path
			}
		}
	}
	return oldest
}

func hasStreamFrame(frames []wire.Frame) bool {
	for _, f := range frames {
		if _, ok := f.(*wire.StreamFrame); ok {
			return true
		}
	}
	return false
}

// reinjectableFrames keeps only the stream frames of a packet (acks
// and control frames belong to their original context).
func reinjectableFrames(frames []wire.Frame) []wire.Frame {
	var out []wire.Frame
	for _, f := range frames {
		if sf, ok := f.(*wire.StreamFrame); ok {
			out = append(out, sf)
		}
	}
	return out
}

// sendPathCtrl flushes path-pinned control queues on their own paths.
// These packets bypass the congestion window: they are small, rare and
// critical (a WINDOW_UPDATE stuck behind a full window would deadlock
// the transfer; a PATHS frame stuck on a failed path would defeat
// §4.3's fast handover).
func (c *Conn) sendPathCtrl(ackedOn *pathSet) {
	if !c.handshakeComplete {
		return
	}
	now := c.now()
	for _, pid := range c.pathOrder {
		p := c.paths[pid]
		if !p.open {
			continue
		}
		for len(p.ctrl) > 0 {
			budget := wire.MaxPacketSize - c.headerSize(p, false) - wire.AEADOverhead
			var frames []wire.Frame
			if p.ackMgr.ShouldSendAck(now) {
				if ack := p.ackMgr.BuildAck(now); ack != nil && ack.EncodedSize() <= budget {
					frames = append(frames, ack)
					budget -= ack.EncodedSize()
					ackedOn.add(p.ID)
				}
			}
			for len(p.ctrl) > 0 && p.ctrl[0].EncodedSize() <= budget {
				f := p.ctrl[0]
				p.ctrl = p.ctrl[1:]
				frames = append(frames, f)
				budget -= f.EncodedSize()
			}
			c.sendPacket(p, frames, false, true)
		}
	}
}

// sendHandshake emits pending CHLO/SHLO messages on path 0, padded to
// a full packet as Google QUIC pads its client hello.
func (c *Conn) sendHandshake() {
	p0, ok := c.paths[0]
	if !ok {
		return
	}
	if c.chloPending && c.role == RoleClient {
		c.chloPending = false
		msg := wire.HandshakeCHLO
		if c.cfg.ZeroRTT {
			msg = wire.HandshakeCHLO0RTT
		}
		c.sendHandshakePacket(p0, &wire.HandshakeFrame{Message: msg, Payload: c.hsClient.CHLO()})
	}
	if c.shloPending && c.role == RoleServer {
		c.shloPending = false
		frames := []wire.Frame{&wire.HandshakeFrame{Message: wire.HandshakeSHLO, Payload: c.shloPayload}}
		// Bundle the ack of the CHLO so the client gets an immediate
		// RTT sample.
		if p0.ackMgr.ShouldSendAck(c.now()) {
			if ack := p0.ackMgr.BuildAck(c.now()); ack != nil {
				frames = append([]wire.Frame{ack}, frames...)
			}
		}
		c.sendPacket(p0, frames, true, true)
	}
}

func (c *Conn) sendHandshakePacket(p *Path, hs *wire.HandshakeFrame) {
	frames := []wire.Frame{hs}
	pad := wire.MaxPacketSize - c.headerSize(p, true) - hs.EncodedSize()
	if pad > 0 {
		frames = append(frames, &wire.PaddingFrame{Length: pad})
	}
	c.sendPacket(p, frames, true, true)
}

// sendData runs the scheduler loop, building packets until nothing is
// pending or no path has window space, recording paths that had an
// ACK bundled.
func (c *Conn) sendData(ackedOn *pathSet) {
	if !c.handshakeComplete {
		return
	}
	for i := 0; i < 1<<16; i++ { // defensive bound; loop exits naturally
		if !c.hasSendableData() {
			return
		}
		primary, duplicates := c.schedule()
		if primary == nil {
			return
		}
		frames, hasData := c.packFrames(primary, ackedOn)
		if len(frames) == 0 {
			return
		}
		c.sendPacket(primary, frames, false, true)
		if hasData {
			for _, dup := range duplicates {
				c.Stats.DuplicatedPackets++
				c.sendPacket(dup, dupFrames(frames), false, true)
			}
		}
	}
}

// dupFrames strips non-duplicable frames (ACKs belong to the original
// path's context) from a duplicated packet.
func dupFrames(frames []wire.Frame) []wire.Frame {
	out := make([]wire.Frame, 0, len(frames))
	for _, f := range frames {
		if _, isAck := f.(*wire.AckFrame); isAck {
			continue
		}
		out = append(out, f)
	}
	return out
}

// hasSendableData reports whether a data/control packet could be
// built right now.
func (c *Conn) hasSendableData() bool {
	if len(c.ctrl) > 0 {
		return true
	}
	for _, pid := range c.pathOrder {
		if len(c.paths[pid].ctrl) > 0 {
			return true
		}
	}
	connAllow := c.connFC.SendAllowance()
	for _, sid := range c.streamOrder {
		s := c.streams[sid]
		if s.send.HasRetransmission() {
			return true
		}
		if !s.send.HasData() {
			continue
		}
		// New data needs both flow-control levels open; a pending
		// bare FIN needs none.
		if s.send.UnsentBytes() > 0 {
			if connAllow > 0 && s.fc.SendAllowance() > 0 {
				return true
			}
			continue
		}
		return true // bare FIN pending
	}
	return false
}

// packFrames assembles the frame list for one packet on path p: the
// path's pending ACK, path-pinned control frames, floating control
// frames, then stream data under flow control.
func (c *Conn) packFrames(p *Path, ackedOn *pathSet) (frames []wire.Frame, hasData bool) {
	budget := wire.MaxPacketSize - c.headerSize(p, false) - wire.AEADOverhead
	now := c.now()
	frames = make([]wire.Frame, 0, 4)
	if p.ackMgr.ShouldSendAck(now) {
		if ack := p.ackMgr.BuildAck(now); ack != nil && ack.EncodedSize() <= budget {
			frames = append(frames, ack)
			budget -= ack.EncodedSize()
			ackedOn.add(p.ID)
		}
	}
	// Path-pinned control frames (WINDOW_UPDATE broadcast copies,
	// PATHS frames).
	for len(p.ctrl) > 0 && p.ctrl[0].EncodedSize() <= budget {
		f := p.ctrl[0]
		p.ctrl = p.ctrl[1:]
		frames = append(frames, f)
		budget -= f.EncodedSize()
	}
	// Floating control frames: any path will do (§3 — the scheduler
	// also decides which control frame goes on which path).
	for len(c.ctrl) > 0 && c.ctrl[0].EncodedSize() <= budget {
		f := c.ctrl[0]
		c.ctrl = c.ctrl[1:]
		frames = append(frames, f)
		budget -= f.EncodedSize()
	}
	// Stream data.
	for _, sid := range c.streamOrder {
		s := c.streams[sid]
		for budget > 24 && s.send.HasData() {
			allow := c.connFC.SendAllowance()
			if sa := s.fc.SendAllowance(); sa < allow {
				allow = sa
			}
			f, used := s.send.NextFrame(budget, allow)
			if f == nil {
				break
			}
			if used > 0 {
				s.fc.AddBytesSent(used)
				c.connFC.AddBytesSent(used)
			}
			frames = append(frames, f)
			budget -= f.EncodedSize()
			hasData = true
		}
	}
	return frames, hasData
}

// sendPureAcks emits ack-only packets for paths that still owe an ACK
// after the data pass. Ack-only packets bypass the congestion window
// and are not retransmittable.
func (c *Conn) sendPureAcks(ackedOn *pathSet) {
	now := c.now()
	for _, pid := range c.pathOrder {
		p := c.paths[pid]
		if !p.open || ackedOn.has(p.ID) || !p.ackMgr.ShouldSendAck(now) {
			continue
		}
		if ack := p.ackMgr.BuildAck(now); ack != nil {
			c.sendPacket(p, []wire.Frame{ack}, false, true)
		}
	}
}

// headerSize computes the public header cost on path p.
func (c *Conn) headerSize(p *Path, handshake bool) int {
	h := wire.Header{
		ConnID:       c.connID,
		Multipath:    c.cfg.Multipath,
		Handshake:    handshake,
		PathID:       p.ID,
		PacketNumber: p.space.LargestSent(),
	}
	return h.EncodedSize(p.space.LargestAcked())
}

// sendPacket builds, tracks and transmits one packet on path p.
// track=false is used for fire-and-forget CONNECTION_CLOSE.
func (c *Conn) sendPacket(p *Path, frames []wire.Frame, handshake, track bool) {
	if len(frames) == 0 {
		return
	}
	pn := p.space.NextPacketNumber()
	pkt := &wire.Packet{
		Header: wire.Header{
			ConnID:       c.connID,
			Multipath:    c.cfg.Multipath,
			Handshake:    handshake,
			PathID:       p.ID,
			PacketNumber: pn,
		},
		Frames:       frames,
		LargestAcked: p.space.LargestAcked(),
	}
	size := pkt.EncodedSize() + wire.UDPIPv4Overhead
	retransmittable := pkt.IsRetransmittable()
	now := c.now()
	if track && retransmittable {
		p.space.OnPacketSent(&recovery.SentPacket{
			PN:              pn,
			Frames:          frames,
			Size:            size,
			SentTime:        now,
			Retransmittable: true,
		})
		p.cc.OnPacketSent(size)
		p.lastRetransmittableSent = now
	}
	p.SentPackets++
	p.SentBytes += uint64(size)
	c.Stats.PacketsSent++
	c.Stats.BytesSent += uint64(size)
	c.trace(trace.Event{Type: trace.PacketSent, Path: uint8(p.ID), PN: uint64(pn), Size: size, Cwnd: p.cc.Cwnd()})

	dg := netem.Datagram{From: p.Local, To: p.Remote, Size: size}
	if c.cfg.WireSerialization {
		var sealer wire.Sealer
		if !handshake {
			sealer = c.sealSend
		}
		dg.Raw = pkt.EncodeTo(wire.GetPacketBuf(), sealer)
	} else {
		dg.Payload = pkt
	}
	c.net.Send(dg)
}

// sendPacketOn is Close's helper: untracked single packet.
func (c *Conn) sendPacketOn(p *Path, frames []wire.Frame, handshake bool) {
	c.sendPacket(p, frames, handshake, false)
}
