package analysis

import (
	"go/ast"
)

// walltimeAllowedPkgs are the packages where reading the wall clock is
// legitimate: the perf harness measures real elapsed time by design,
// and the live driver's whole job is mapping wall time onto sim time
// (it pins the epoch with time.Now and arms wake-ups with
// time.NewTimer). cmd tools must reach wall time through those two
// packages' helpers (perf.Stopwatch, live.Driver) so every wall-clock
// read in the tree is funnelled through audited packages rather than
// blanket-excluding cmd/.
var walltimeAllowedPkgs = map[string]bool{
	perfPkgPath: true,
	livePkgPath: true,
}

// walltimeBanned are the time-package functions that read or depend on
// the wall clock. Pure conversions and constructors (time.Duration,
// time.Unix, time.Date) are fine: they do not observe real time.
var walltimeBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// Walltime forbids wall-clock reads outside the allowlist. The
// simulation must advance only through the sim.Clock virtual time;
// one time.Now in a protocol path makes every grid artifact depend on
// host speed and destroys the byte-identical reproduction the paper
// evaluation (§4) relies on.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc: "forbid time.Now/Since/Sleep/After and friends outside the perf harness; " +
		"sim code must use the virtual sim.Clock",
	Run: runWalltime,
}

func runWalltime(pass *Pass) (any, error) {
	if walltimeAllowedPkgs[pass.PkgPath] {
		return nil, nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue // the test timing harness may read real time
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if fn := sel.Sel.Name; walltimeBanned[fn] && pkgFunc(pass.TypesInfo, call, "time", fn) {
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock; use the virtual sim.Clock (or perf.Stopwatch in tooling)", fn)
			}
			return true
		})
	}
	return nil, nil
}
