// Command mpq-bench regenerates every table and figure of the paper's
// evaluation (§4): the Table 1 experimental design, the time-ratio
// CDFs of Figs. 3, 5, 8 and 9, the experimental-aggregation-benefit
// boxes of Figs. 4, 6, 7 and 10, and the Fig. 11 handover series.
//
// The default settings subsample the grids for quick runs; pass -full
// for the paper's 253 scenarios × 3 repetitions per class (hours of
// CPU time on a small machine).
//
// With -artifacts the grids become interruptible batch jobs: every
// completed scenario is appended to a per-grid JSONL file, and a
// re-run skips scenarios already on disk. -shard i/N runs only the
// i-th of N deterministic grid slices (each writing its own shard
// file), so one grid can be split across processes or machines;
// -from-artifacts renders the reports from the persisted (possibly
// merged) shard files without running anything.
//
// Beyond the paper, -exp dynamics (or dyn-bursty / dyn-osc /
// dyn-flaky individually) runs the scripted time-varying-link grids of
// internal/netem/dynamics: Gilbert–Elliott bursty loss, oscillating
// bandwidth (WiFi fading), and periodically flaky paths. They use the
// same checkpoint/shard machinery as the paper grids.
//
// Observability (see OBSERVABILITY.md): -sample records per-path
// cwnd/RTT time series into the artifacts and prints one paper-style
// evolution figure per grid; -flight-recorder arms a bounded
// post-mortem ring on every run and dumps it into the given directory
// when a run times out, aborts, or suffers an RTO storm — healthy runs
// write nothing.
//
// Usage:
//
//	mpq-bench                            # every paper experiment, subsampled
//	mpq-bench -exp fig3                  # one experiment
//	mpq-bench -full -exp fig4            # paper-scale grid for one figure
//	mpq-bench -cdf -exp fig5             # also dump raw CDF series for plotting
//	mpq-bench -exp dynamics              # the three dynamic grids
//	mpq-bench -exp dyn-bursty -artifacts out    # one dynamic grid, checkpointed
//	mpq-bench -full -artifacts out       # checkpointed: ^C and re-run to resume
//	mpq-bench -full -artifacts out -shard 1/4   # second quarter of each grid
//	mpq-bench -artifacts out -from-artifacts    # reports from persisted shards
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mpquic/internal/expdesign"
	"mpquic/internal/perf"
)

// parseShard parses "i/N" into (i, N); "" means the whole grid.
func parseShard(s string) (int, int, error) {
	if s == "" {
		return 0, 1, nil
	}
	var i, n int
	if _, err := fmt.Sscanf(s, "%d/%d", &i, &n); err != nil {
		return 0, 0, fmt.Errorf("bad -shard %q: want i/N, e.g. 0/4", s)
	}
	if n < 1 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("bad -shard %q: need 0 <= i < N", s)
	}
	return i, n, nil
}

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: all, table1, fig3..fig11, dynamics, dyn-bursty, dyn-osc, dyn-flaky")
		scenarios = flag.Int("scenarios", 40, "scenarios per class (paper: 253)")
		reps      = flag.Int("reps", 1, "repetitions per point, median taken (paper: 3)")
		workers   = flag.Int("workers", 0, "parallel simulations (default GOMAXPROCS)")
		full      = flag.Bool("full", false, "paper-scale: 253 scenarios, 3 repetitions")
		dumpCDF   = flag.Bool("cdf", false, "dump raw CDF series for the ratio figures")
		progress  = flag.Bool("progress", true, "print progress with ETA to stderr")
		artifacts = flag.String("artifacts", "", "directory for grid JSONL artifacts (enables checkpoint/resume)")
		shard     = flag.String("shard", "", "run only shard i of N of each grid, as i/N (e.g. 0/4)")
		fromArt   = flag.Bool("from-artifacts", false, "render reports from persisted artifacts instead of running (requires -artifacts)")
		flightDir = flag.String("flight-recorder", "", "directory for anomaly post-mortems: arms a bounded flight recorder per run, dumped on timeout/abort/RTO storm")
		sampleIvl = flag.Duration("sample", 0, "per-path time-series sampling interval (0 = off); samples land in artifacts and one evolution figure per grid is printed")
	)
	flag.Parse()
	if *full {
		*scenarios = expdesign.PaperScenarioCount
		*reps = expdesign.Repetitions
	}
	shardIdx, numShards, err := parseShard(*shard)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *fromArt && *artifacts == "" {
		fmt.Fprintln(os.Stderr, "-from-artifacts requires -artifacts")
		os.Exit(2)
	}
	if *artifacts != "" && !*fromArt {
		if err := os.MkdirAll(*artifacts, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *flightDir != "" {
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	run := func(name string) bool { return *exp == "all" || *exp == name }

	// loadGrid merges every persisted shard of a (class, size) grid.
	loadGrid := func(class expdesign.Class, size uint64) expdesign.FigureData {
		base := expdesign.ArtifactFileName(class, size, 0, 1)
		pattern := strings.TrimSuffix(base, ".jsonl") + "*.jsonl"
		paths, err := filepath.Glob(filepath.Join(*artifacts, pattern))
		if err == nil && len(paths) == 0 {
			err = fmt.Errorf("no artifacts match %s in %s", pattern, *artifacts)
		}
		var fd expdesign.FigureData
		if err == nil {
			fd, err = expdesign.LoadFigureData(paths...)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *progress {
			fmt.Fprintf(os.Stderr, "  (%s: %d scenarios from %d artifact file(s))\n",
				class.Name, len(fd.Results), len(paths))
		}
		return fd
	}

	grid := func(class expdesign.Class, size uint64) expdesign.FigureData {
		if *fromArt {
			return loadGrid(class, size)
		}
		watch := perf.NewStopwatch()
		resumed := 0
		first := true
		prog := func(done, total int) {
			if !*progress {
				return
			}
			// The first callback of a resumed grid reports the restored
			// count in one jump; exclude it from the rate estimate.
			if first {
				first = false
				if done > 1 {
					resumed = done
				}
			}
			line := fmt.Sprintf("\r  %d/%d scenarios", done, total)
			if computed := done - resumed; computed > 0 && done < total {
				line += fmt.Sprintf("  ETA %v   ", watch.ETA(computed, total-done).Round(time.Second))
			}
			fmt.Fprint(os.Stderr, line)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
		cfg := expdesign.GridConfig{
			Class:          class,
			Scenarios:      *scenarios,
			Size:           size,
			Reps:           *reps,
			Workers:        *workers,
			Shard:          shardIdx,
			NumShards:      numShards,
			Progress:       prog,
			SampleInterval: *sampleIvl,
			FlightDir:      *flightDir,
		}
		if *artifacts != "" {
			cfg.ArtifactPath = filepath.Join(*artifacts,
				expdesign.ArtifactFileName(class, size, shardIdx, numShards))
		}
		fd, err := expdesign.RunGrid(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *progress {
			fmt.Fprintf(os.Stderr, "  (%s grid took %v)\n", class.Name, watch.Elapsed().Round(time.Second))
		}
		if *sampleIvl > 0 {
			// One paper-style evolution figure per grid: the first
			// scenario's MPQUIC run, sampled at the requested cadence.
			for _, sr := range fd.Results {
				m := sr.Runs[expdesign.ProtoMPQUIC][0].Metrics
				if len(m.Series) > 0 {
					fmt.Println(expdesign.ReportRunSeries(m,
						fmt.Sprintf("%s scenario %d MPQUIC", class.Name, sr.Scenario.ID)))
					break
				}
			}
		}
		return fd
	}
	dump := func(fd expdesign.FigureData) {
		if !*dumpCDF {
			return
		}
		single, multi := fd.TimeRatios()
		fmt.Println("# CDF series: Time TCP/QUIC")
		fmt.Print(expdesign.CDFSeries(single))
		fmt.Println("# CDF series: Time MPTCP/MPQUIC")
		fmt.Print(expdesign.CDFSeries(multi))
	}

	if run("table1") {
		fmt.Println(expdesign.ReportTable1(*scenarios))
	}

	// Figures 3-8: 20 MB downloads across the four classes. One grid
	// per class serves both its CDF figure and its benefit figure.
	type figPair struct {
		class    expdesign.Class
		cdfName  string
		cdfTitle string
		aggName  string
		aggTitle string
	}
	pairs := []figPair{
		{expdesign.LowBDPNoLoss, "fig3", "Figure 3", "fig4", "Figure 4"},
		{expdesign.LowBDPLosses, "fig5", "Figure 5", "fig6", "Figure 6"},
		{expdesign.HighBDPNoLoss, "", "", "fig7", "Figure 7"},
		{expdesign.HighBDPLosses, "fig8", "Figure 8", "", ""},
	}
	for _, p := range pairs {
		wantCDF := p.cdfName != "" && run(p.cdfName)
		wantAgg := p.aggName != "" && run(p.aggName)
		if !wantCDF && !wantAgg {
			continue
		}
		fd := grid(p.class, expdesign.LargeTransfer)
		if wantCDF {
			fmt.Println(expdesign.ReportTimeRatioCDF(fd, p.cdfTitle))
			dump(fd)
		}
		if wantAgg {
			fmt.Println(expdesign.ReportAggBenefit(fd, p.aggTitle))
		}
	}

	// Figures 9-10: 256 KB short transfers, low-BDP-no-loss.
	if run("fig9") || run("fig10") {
		fd := grid(expdesign.LowBDPNoLoss, expdesign.ShortTransfer)
		if run("fig9") {
			fmt.Println(expdesign.ReportTimeRatioCDF(fd, "Figure 9"))
			dump(fd)
		}
		if run("fig10") {
			fmt.Println(expdesign.ReportAggBenefit(fd, "Figure 10"))
		}
	}

	// Figure 11: network handover.
	if run("fig11") {
		res := expdesign.RunHandover(expdesign.DefaultHandoverConfig())
		fmt.Println(expdesign.ReportHandover(res, "Figure 11"))
	}

	// Dynamic grids (beyond the paper): scripted time-varying links.
	// Not part of -exp all; select them with -exp dynamics or by name.
	dynGrids := []struct {
		name  string
		class expdesign.Class
		title string
	}{
		{"dyn-bursty", expdesign.BurstyLossGrid, "Bursty loss (Gilbert–Elliott), 20 MB, low-BDP"},
		{"dyn-osc", expdesign.OscillatingGrid, "Oscillating bandwidth (WiFi fading), 20 MB, low-BDP"},
		{"dyn-flaky", expdesign.FlakyPathGrid, "Flaky path (periodic outages), 20 MB, low-BDP"},
	}
	known := map[string]bool{"all": true, "table1": true, "dynamics": true}
	for i := 3; i <= 11; i++ {
		known[fmt.Sprintf("fig%d", i)] = true
	}
	for _, g := range dynGrids {
		known[g.name] = true
		if *exp != "dynamics" && *exp != g.name {
			continue
		}
		fd := grid(g.class, expdesign.LargeTransfer)
		fmt.Println(expdesign.ReportTimeRatioCDF(fd, g.title))
		dump(fd)
		fmt.Println(expdesign.ReportAggBenefit(fd, g.title))
	}

	if !known[*exp] {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
