package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockRunsEventsInOrder(t *testing.T) {
	c := NewClock()
	var got []int
	c.After(30*time.Millisecond, func() { got = append(got, 3) })
	c.After(10*time.Millisecond, func() { got = append(got, 1) })
	c.After(20*time.Millisecond, func() { got = append(got, 2) })
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("wrong order: %v", got)
	}
	if c.Now() != Time(30*time.Millisecond) {
		t.Fatalf("clock at %v, want 30ms", c.Now())
	}
}

func TestClockFIFOAmongEqualDeadlines(t *testing.T) {
	c := NewClock()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(Time(time.Millisecond), func() { got = append(got, i) })
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("not FIFO at %d: %v", i, got)
		}
	}
}

func TestClockEventsScheduledDuringRun(t *testing.T) {
	c := NewClock()
	var fired []Time
	c.After(time.Millisecond, func() {
		c.After(time.Millisecond, func() { fired = append(fired, c.Now()) })
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != Time(2*time.Millisecond) {
		t.Fatalf("nested scheduling broken: %v", fired)
	}
}

func TestCancelPreventsExecution(t *testing.T) {
	c := NewClock()
	ran := false
	e := c.After(time.Millisecond, func() { ran = true })
	e.Cancel()
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cancelled event executed")
	}
	if c.Processed != 0 {
		t.Fatalf("Processed = %d, want 0", c.Processed)
	}
}

func TestRunUntilAdvancesToDeadline(t *testing.T) {
	c := NewClock()
	var at Time
	c.After(5*time.Millisecond, func() { at = c.Now() })
	c.After(50*time.Millisecond, func() { t.Fatal("event past deadline ran") })
	if err := c.RunUntil(Time(10 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if at != Time(5*time.Millisecond) {
		t.Fatalf("event ran at %v", at)
	}
	if c.Now() != Time(10*time.Millisecond) {
		t.Fatalf("clock at %v, want 10ms", c.Now())
	}
}

func TestClockStop(t *testing.T) {
	c := NewClock()
	n := 0
	for i := 1; i <= 5; i++ {
		c.After(time.Duration(i)*time.Millisecond, func() {
			n++
			if n == 2 {
				c.Stop()
			}
		})
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("ran %d events after Stop, want 2", n)
	}
}

func TestClockLimit(t *testing.T) {
	c := NewClock()
	c.Limit = 10
	var loop func()
	loop = func() { c.After(time.Millisecond, loop) }
	loop()
	if err := c.Run(); err == nil {
		t.Fatal("expected event-limit error")
	}
}

func TestSchedulingInPastClamps(t *testing.T) {
	c := NewClock()
	var second Time
	c.After(10*time.Millisecond, func() {
		c.At(Time(time.Millisecond), func() { second = c.Now() })
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if second != Time(10*time.Millisecond) {
		t.Fatalf("past event ran at %v, want clamp to 10ms", second)
	}
}

func TestTimerResetReplacesDeadline(t *testing.T) {
	c := NewClock()
	fires := 0
	tm := NewTimer(c, func() { fires++ })
	tm.ResetAfter(10 * time.Millisecond)
	tm.ResetAfter(20 * time.Millisecond)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if fires != 1 {
		t.Fatalf("timer fired %d times, want 1", fires)
	}
	if c.Now() != Time(20*time.Millisecond) {
		t.Fatalf("fired at %v, want 20ms", c.Now())
	}
}

func TestTimerStop(t *testing.T) {
	c := NewClock()
	tm := NewTimer(c, func() { t.Fatal("stopped timer fired") })
	tm.ResetAfter(time.Millisecond)
	if !tm.Stop() {
		t.Fatal("Stop reported no pending firing")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported pending firing")
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTimerDeadlineAndArmed(t *testing.T) {
	c := NewClock()
	tm := NewTimer(c, func() {})
	if tm.Armed() || tm.Deadline() != Never {
		t.Fatal("new timer should be unarmed")
	}
	tm.ResetAfter(7 * time.Millisecond)
	if !tm.Armed() || tm.Deadline() != Time(7*time.Millisecond) {
		t.Fatalf("armed=%v deadline=%v", tm.Armed(), tm.Deadline())
	}
	c.Run()
	if tm.Armed() {
		t.Fatal("timer still armed after firing")
	}
}

func TestNextDeadlineSkipsCancelled(t *testing.T) {
	c := NewClock()
	e := c.After(time.Millisecond, func() {})
	c.After(2*time.Millisecond, func() {})
	e.Cancel()
	if d := c.NextDeadline(); d != Time(2*time.Millisecond) {
		t.Fatalf("NextDeadline = %v, want 2ms", d)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	cpy := NewRand(7)
	d := NewRand(8)
	same := 0
	for i := 0; i < 100; i++ {
		if cpy.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandBernoulliExtremes(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestRandBernoulliRate(t *testing.T) {
	r := NewRand(9)
	hits := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.025) {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.022 || rate > 0.028 {
		t.Fatalf("Bernoulli(0.025) rate %v", rate)
	}
}

// Property: Float64 is always in [0,1) for arbitrary seeds and draws.
func TestRandFloat64Property(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := NewRand(seed)
		for i := 0; i < int(n); i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Intn(n) is always in [0,n).
func TestRandIntnProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandForkDecorrelated(t *testing.T) {
	parent := NewRand(5)
	a := parent.Fork()
	b := parent.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams collided %d/100 times", same)
	}
}

func TestTimeHelpers(t *testing.T) {
	tt := Time(1500 * time.Millisecond)
	if tt.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v", tt.Seconds())
	}
	if tt.Add(500*time.Millisecond) != Time(2*time.Second) {
		t.Fatal("Add broken")
	}
	if tt.Sub(Time(time.Second)) != 500*time.Millisecond {
		t.Fatal("Sub broken")
	}
}

func BenchmarkClockScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := NewClock()
		for j := 0; j < 100; j++ {
			c.After(time.Duration(j)*time.Microsecond, func() {})
		}
		c.Run()
	}
}
