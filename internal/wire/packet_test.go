package wire

import (
	"testing"
	"time"
)

func testPacket() *Packet {
	return &Packet{
		Header: Header{ConnID: 77, Multipath: true, PathID: 1, PacketNumber: 42},
		Frames: []Frame{
			&AckFrame{PathID: 0, Ranges: []AckRange{{Smallest: 1, Largest: 9}}, AckDelay: time.Millisecond},
			&StreamFrame{StreamID: 3, Offset: 1200, Data: []byte("payload bytes")},
			&WindowUpdateFrame{StreamID: 0, Offset: 1 << 24},
		},
		LargestAcked: 40,
	}
}

func TestPacketEncodeDecodeNilSealer(t *testing.T) {
	p := testPacket()
	b := p.Encode(nil)
	if len(b) != p.EncodedSize() {
		t.Fatalf("EncodedSize %d != encoded %d", p.EncodedSize(), len(b))
	}
	got, err := Decode(b, 41, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.PacketNumber != 42 || got.Header.PathID != 1 || !got.Header.Multipath {
		t.Fatalf("header %+v", got.Header)
	}
	if len(got.Frames) != 3 {
		t.Fatalf("frames %d", len(got.Frames))
	}
	sf := got.Frames[1].(*StreamFrame)
	if string(sf.Data) != "payload bytes" || sf.Offset != 1200 {
		t.Fatalf("stream frame %+v", sf)
	}
}

func TestPacketHandshakeNoAEADOverhead(t *testing.T) {
	p := &Packet{
		Header: Header{ConnID: 1, Handshake: true, PacketNumber: 1},
		Frames: []Frame{&HandshakeFrame{Message: HandshakeCHLO, Payload: make([]byte, 100)}},
	}
	clear := p.EncodedSize()
	p2 := &Packet{
		Header: Header{ConnID: 1, PacketNumber: 1},
		Frames: p.Frames,
	}
	if p2.EncodedSize() != clear+AEADOverhead {
		t.Fatalf("protected packet should cost exactly AEADOverhead more: %d vs %d",
			p2.EncodedSize(), clear)
	}
	b := p.Encode(nil)
	if len(b) != clear {
		t.Fatal("handshake encode size mismatch")
	}
	if _, err := Decode(b, InvalidPacketNumber, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPacketIsRetransmittable(t *testing.T) {
	ackOnly := &Packet{Frames: []Frame{&AckFrame{Ranges: []AckRange{{0, 0}}}}}
	if ackOnly.IsRetransmittable() {
		t.Fatal("ack-only packet marked retransmittable")
	}
	withPing := &Packet{Frames: []Frame{&AckFrame{Ranges: []AckRange{{0, 0}}}, &PingFrame{}}}
	if !withPing.IsRetransmittable() {
		t.Fatal("ping not retransmittable")
	}
}

func TestPacketFitsMTUAccounting(t *testing.T) {
	// A full-size packet plus IP/UDP framing must fit the emulator MTU.
	sf := &StreamFrame{StreamID: 3, Offset: 1 << 30}
	budget := MaxPacketSize - (&Header{ConnID: 1, Multipath: true, PathID: 1, PacketNumber: 1 << 20, PNLen: 4}).EncodedSize(0) - AEADOverhead
	sf.DataLen = sf.MaxStreamDataLen(budget)
	p := &Packet{
		Header: Header{ConnID: 1, Multipath: true, PathID: 1, PacketNumber: 1 << 20, PNLen: 4},
		Frames: []Frame{sf},
	}
	if p.EncodedSize() > MaxPacketSize {
		t.Fatalf("packet %d exceeds MaxPacketSize", p.EncodedSize())
	}
	if p.EncodedSize()+UDPIPv4Overhead > 1500 {
		t.Fatalf("datagram %d exceeds 1500-byte MTU", p.EncodedSize()+UDPIPv4Overhead)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	p := testPacket()
	b := p.Encode(nil)
	// Corrupt a frame type byte inside the payload.
	b[len(b)-AEADOverhead-1] ^= 0xff
	if _, err := Decode(b, 41, nil); err == nil {
		t.Log("corruption happened to parse; acceptable but unusual")
	}
	if _, err := Decode(b[:5], 41, nil); err == nil {
		t.Fatal("truncated packet accepted")
	}
}
