package crypto

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// The handshake below models QUIC crypto's 1-RTT exchange (§2 of the
// paper: "Each QUIC connection starts with a secure handshake" costing
// one round trip, versus 3 RTTs for TCP+TLS 1.2):
//
//	client                          server
//	  CHLO(client share) ────────▶
//	                     ◀──────── SHLO(server share)
//	  [protected data]   ────────▶
//
// The "key exchange" is a toy commutative construction (iterated
// hashing of shares into a shared secret) — the security of the key
// exchange is out of scope for the reproduction, but the derived keys
// feed real AES-GCM sealing so packet protection and the multipath
// nonce discipline are exercised for real.

// HandshakeMessageSize is the modeled size in bytes of CHLO and SHLO
// payloads (key shares, certificates are assumed cached as in Google
// QUIC's 1-RTT mode).
const HandshakeMessageSize = 400

// ClientHandshake drives the client side.
type ClientHandshake struct {
	share  [32]byte
	secret []byte
	done   bool
}

// NewClientHandshake creates a client handshake with a share derived
// from the seed.
func NewClientHandshake(seed uint64) *ClientHandshake {
	c := &ClientHandshake{}
	c.share = deriveShare("client", seed)
	return c
}

// CHLO returns the client hello payload.
func (c *ClientHandshake) CHLO() []byte {
	out := make([]byte, HandshakeMessageSize)
	copy(out, c.share[:])
	return out
}

// OnSHLO consumes the server hello and completes the handshake.
func (c *ClientHandshake) OnSHLO(payload []byte) error {
	if len(payload) < 32 {
		return fmt.Errorf("crypto: SHLO too short: %d", len(payload))
	}
	var serverShare [32]byte
	copy(serverShare[:], payload[:32])
	c.secret = combineShares(c.share, serverShare)
	c.done = true
	return nil
}

// Done reports handshake completion.
func (c *ClientHandshake) Done() bool { return c.done }

// Secret returns the shared secret (panics before completion).
func (c *ClientHandshake) Secret() []byte {
	if !c.done {
		panic("crypto: client handshake not complete")
	}
	return c.secret
}

// ServerHandshake drives the server side.
type ServerHandshake struct {
	share  [32]byte
	secret []byte
	done   bool
}

// NewServerHandshake creates a server handshake.
func NewServerHandshake(seed uint64) *ServerHandshake {
	s := &ServerHandshake{}
	s.share = deriveShare("server", seed)
	return s
}

// OnCHLO consumes the client hello and returns the SHLO payload.
func (s *ServerHandshake) OnCHLO(payload []byte) ([]byte, error) {
	if len(payload) < 32 {
		return nil, fmt.Errorf("crypto: CHLO too short: %d", len(payload))
	}
	var clientShare [32]byte
	copy(clientShare[:], payload[:32])
	s.secret = combineShares(clientShare, s.share)
	s.done = true
	out := make([]byte, HandshakeMessageSize)
	copy(out, s.share[:])
	return out, nil
}

// Done reports handshake completion.
func (s *ServerHandshake) Done() bool { return s.done }

// Secret returns the shared secret (panics before completion).
func (s *ServerHandshake) Secret() []byte {
	if !s.done {
		panic("crypto: server handshake not complete")
	}
	return s.secret
}

func deriveShare(role string, seed uint64) [32]byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], seed)
	return sha256.Sum256(append([]byte(role+":share:"), b[:]...))
}

// combineShares folds both shares into the shared secret. Order is
// normalized (client first) so both sides derive the same value.
func combineShares(client, server [32]byte) []byte {
	h := sha256.New()
	h.Write([]byte("mpquic-shared-secret"))
	h.Write(client[:])
	h.Write(server[:])
	return h.Sum(nil)
}

// ResumptionSecret models 0-RTT resumption à la Google QUIC: a client
// holding a cached server config can derive the connection secret
// without waiting for the SHLO. Both sides derive it from the shared
// cached state (modeled by the seed).
func ResumptionSecret(seed uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], seed)
	h := sha256.Sum256(append([]byte("mpquic-resumption:"), b[:]...))
	return h[:]
}

// SessionKeys derives both directions' packet protection keys from the
// completed handshake secret.
func SessionKeys(secret []byte) (clientToServer, serverToClient Keys) {
	return DeriveKeys(secret, "c2s"), DeriveKeys(secret, "s2c")
}
