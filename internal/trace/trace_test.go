package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sample() Event {
	return Event{
		Time: 1500 * time.Millisecond,
		Type: PacketSent,
		Path: 1,
		PN:   42,
		Size: 1378,
		Cwnd: 13500,
		SRTT: 30 * time.Millisecond,
	}
}

func TestTextTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := NewText(&buf)
	tr.Trace(sample())
	out := buf.String()
	for _, want := range []string{"1.500000", "packet_sent", "path=1", "pn=42", "size=1378", "cwnd=13500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
}

func TestJSONTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSON(&buf)
	tr.Trace(sample())
	tr.Trace(Event{Type: ConnClosed, Detail: "done"})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Type != PacketSent || ev.PN != 42 {
		t.Fatalf("round trip %+v", ev)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Trace(sample())
	c.Trace(sample())
	c.Trace(Event{Type: PacketLost, Path: 3})
	if c.Counts[PacketSent] != 2 || c.Counts[PacketLost] != 1 {
		t.Fatalf("counts %+v", c.Counts)
	}
	if c.ByPath[1][PacketSent] != 2 || c.ByPath[3][PacketLost] != 1 {
		t.Fatalf("by path %+v", c.ByPath)
	}
}

func TestMultiAndFilter(t *testing.T) {
	a, b := NewCounter(), NewCounter()
	m := Multi{a, NewFilter(b, PacketLost)}
	m.Trace(sample())
	m.Trace(Event{Type: PacketLost})
	if a.Counts[PacketSent] != 1 || a.Counts[PacketLost] != 1 {
		t.Fatal("multi fan-out broken")
	}
	if b.Counts[PacketSent] != 0 || b.Counts[PacketLost] != 1 {
		t.Fatalf("filter broken: %+v", b.Counts)
	}
}

func TestNop(t *testing.T) {
	Nop{}.Trace(sample()) // must not panic
}
