package wire

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestAckFrameSingleRangeRoundTrip(t *testing.T) {
	f := &AckFrame{
		PathID:   1,
		Ranges:   []AckRange{{Smallest: 0, Largest: 100}},
		AckDelay: 25 * time.Millisecond,
	}
	got := roundTrip(t, f).(*AckFrame)
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("got %+v want %+v", got, f)
	}
	if got.Retransmittable() {
		t.Fatal("ACK must not be retransmittable")
	}
}

func TestAckFrameMultiRangeRoundTrip(t *testing.T) {
	f := &AckFrame{
		PathID: 0,
		Ranges: []AckRange{
			{Smallest: 90, Largest: 100},
			{Smallest: 50, Largest: 70},
			{Smallest: 10, Largest: 10},
		},
	}
	got := roundTrip(t, f).(*AckFrame)
	if !reflect.DeepEqual(got.Ranges, f.Ranges) {
		t.Fatalf("got %+v", got.Ranges)
	}
	if got.LargestAcked() != 100 || got.LowestAcked() != 10 {
		t.Fatal("largest/lowest broken")
	}
}

func TestAckFrameAcks(t *testing.T) {
	f := &AckFrame{Ranges: []AckRange{
		{Smallest: 90, Largest: 100},
		{Smallest: 50, Largest: 70},
	}}
	for _, pn := range []PacketNumber{90, 95, 100, 50, 70} {
		if !f.Acks(pn) {
			t.Fatalf("should ack %d", pn)
		}
	}
	for _, pn := range []PacketNumber{0, 49, 71, 89, 101} {
		if f.Acks(pn) {
			t.Fatalf("should not ack %d", pn)
		}
	}
}

func TestAckFrame256Ranges(t *testing.T) {
	f := &AckFrame{}
	for i := MaxAckRanges - 1; i >= 0; i-- {
		pn := PacketNumber(i * 3)
		f.Ranges = append([]AckRange{}, f.Ranges...)
		_ = pn
	}
	f.Ranges = f.Ranges[:0]
	for i := MaxAckRanges; i >= 1; i-- {
		pn := PacketNumber(i * 3)
		f.Ranges = append(f.Ranges, AckRange{Smallest: pn, Largest: pn})
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, f).(*AckFrame)
	if len(got.Ranges) != MaxAckRanges {
		t.Fatalf("ranges %d", len(got.Ranges))
	}
	f.Ranges = append(f.Ranges, AckRange{Smallest: 0, Largest: 0})
	if err := f.Validate(); err == nil {
		t.Fatal("257 ranges validated")
	}
}

func TestAckValidateRejectsBadRanges(t *testing.T) {
	bad := []*AckFrame{
		{Ranges: nil},
		{Ranges: []AckRange{{Smallest: 5, Largest: 3}}},
		{Ranges: []AckRange{{Smallest: 5, Largest: 10}, {Smallest: 1, Largest: 4}}}, // touching
		{Ranges: []AckRange{{Smallest: 5, Largest: 10}, {Smallest: 1, Largest: 7}}}, // overlap
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Fatalf("case %d validated", i)
		}
	}
}

func TestBuildAckRanges(t *testing.T) {
	pns := []PacketNumber{1, 2, 3, 7, 8, 12, 3, 2} // dups included
	got := BuildAckRanges(pns)
	want := []AckRange{
		{Smallest: 12, Largest: 12},
		{Smallest: 7, Largest: 8},
		{Smallest: 1, Largest: 3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v want %+v", got, want)
	}
	if BuildAckRanges(nil) != nil {
		t.Fatal("empty input should give nil")
	}
}

func TestBuildAckRangesTruncatesToMax(t *testing.T) {
	var pns []PacketNumber
	for i := 0; i < 2*MaxAckRanges; i++ {
		pns = append(pns, PacketNumber(i*2)) // all isolated
	}
	got := BuildAckRanges(pns)
	if len(got) != MaxAckRanges {
		t.Fatalf("got %d ranges, want %d", len(got), MaxAckRanges)
	}
	// Truncation keeps the highest packet numbers.
	if got[0].Largest != PacketNumber((2*MaxAckRanges-1)*2) {
		t.Fatalf("lost the largest range: %+v", got[0])
	}
}

func TestAckFrameRoundTripProperty(t *testing.T) {
	f := func(seedPNs []uint16, delayUS uint16) bool {
		if len(seedPNs) == 0 {
			return true
		}
		pns := make([]PacketNumber, len(seedPNs))
		for i, v := range seedPNs {
			pns[i] = PacketNumber(v)
		}
		fr := &AckFrame{
			PathID:   2,
			Ranges:   BuildAckRanges(pns),
			AckDelay: time.Duration(delayUS) * time.Microsecond,
		}
		if fr.Validate() != nil {
			return false
		}
		b := fr.Append(nil)
		if len(b) != fr.EncodedSize() {
			return false
		}
		got, n, err := ParseFrame(b)
		if err != nil || n != len(b) {
			return false
		}
		return reflect.DeepEqual(got, fr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParseAckErrors(t *testing.T) {
	f := &AckFrame{Ranges: []AckRange{{Smallest: 5, Largest: 10}}}
	b := f.Append(nil)
	if _, _, err := ParseFrame(b[:2]); err == nil {
		t.Fatal("truncated ACK accepted")
	}
	// First-range underflow: largest=5, first length=10.
	bad := []byte{byte(TypeAck), 0}
	bad = AppendVarint(bad, 5)  // largest
	bad = AppendVarint(bad, 0)  // delay
	bad = AppendVarint(bad, 0)  // extra ranges
	bad = AppendVarint(bad, 10) // first range len (underflows)
	if _, _, err := ParseFrame(bad); err == nil {
		t.Fatal("underflowing ACK accepted")
	}
}
