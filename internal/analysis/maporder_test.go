package analysis_test

import (
	"testing"

	"mpquic/internal/analysis"
	"mpquic/internal/analysis/analysistest"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MapOrder, "maporder")
}
