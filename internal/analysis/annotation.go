package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Annotation validates the //mpq: directives themselves, mirroring the
// malformed-//mpqvet:allow rule: a directive that is misspelled, has
// the wrong number of arguments, sits on the wrong kind of declaration,
// or marks a non-channel as a ring would otherwise be silently ignored
// by the consuming analyzers — the most dangerous failure mode for an
// annotation-driven checker.
var Annotation = &Analyzer{
	Name: "annotation",
	Doc: "validate //mpq: directives: known name, right arity, legal anchor " +
		"(a misspelled invariant must not silently stop being checked)",
	Run: runAnnotation,
}

// anchorKind classifies what a directive comment is attached to.
type anchorKind int

const (
	anchorFree   anchorKind = iota // a statement-level or floating comment
	anchorFunc                     // a FuncDecl doc comment
	anchorMember                   // a struct field or package var
	anchorOther                    // doc of a const/type/import decl
)

// mpqDirectiveSpec describes one legal directive shape.
type mpqDirectiveSpec struct {
	argc    int
	onFunc  bool
	onField bool
	onFree  bool
	usage   string
}

var mpqDirectiveSpecs = map[string]mpqDirectiveSpec{
	"confined":  {argc: 1, onFunc: true, onField: true, usage: "//mpq:confined <domain> on a func, struct field or package var"},
	"entry":     {argc: 1, onFunc: true, usage: "//mpq:entry <domain> on a func"},
	"crossing":  {argc: 0, onFunc: true, onField: true, usage: "//mpq:crossing on a func, struct field or package var"},
	"ring":      {argc: 0, onField: true, usage: "//mpq:ring on a channel-typed struct field or package var"},
	"noescape":  {argc: 0, onFunc: true, usage: "//mpq:noescape on a func"},
	"waitpoint": {argc: 0, onFree: true, usage: "//mpq:waitpoint on (or above) a statement inside a function body"},
}

func runAnnotation(pass *Pass) (any, error) {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		anchors, members := classifyAnchors(pass, f)
		for _, cg := range f.Comments {
			kind, seen := anchors[cg]
			if !seen {
				kind = anchorFree
			}
			for _, d := range groupDirectives(cg) {
				checkDirective(pass, d, kind, members[cg])
			}
		}
	}
	return nil, nil
}

// classifyAnchors maps each doc/line comment group of f to the kind of
// declaration it documents, and member anchors to their objects (for
// the ring type check).
func classifyAnchors(pass *Pass, f *ast.File) (map[*ast.CommentGroup]anchorKind, map[*ast.CommentGroup][]types.Object) {
	anchors := make(map[*ast.CommentGroup]anchorKind)
	members := make(map[*ast.CommentGroup][]types.Object)
	memberAnchor := func(cg *ast.CommentGroup, names []*ast.Ident) {
		if cg == nil {
			return
		}
		anchors[cg] = anchorMember
		for _, name := range names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				members[cg] = append(members[cg], obj)
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Doc != nil {
				anchors[n.Doc] = anchorFunc
			}
		case *ast.StructType:
			for _, field := range n.Fields.List {
				memberAnchor(field.Doc, field.Names)
				memberAnchor(field.Comment, field.Names)
			}
		case *ast.GenDecl:
			if n.Tok == token.VAR {
				for _, spec := range n.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						memberAnchor(vs.Doc, vs.Names)
						memberAnchor(vs.Comment, vs.Names)
						if n.Doc != nil {
							memberAnchor(n.Doc, vs.Names)
						}
					}
				}
			} else if n.Doc != nil {
				anchors[n.Doc] = anchorOther
			}
		}
		return true
	})
	return anchors, members
}

// checkDirective validates one parsed directive against its anchor.
func checkDirective(pass *Pass, d mpqDirective, kind anchorKind, objs []types.Object) {
	spec, known := mpqDirectiveSpecs[d.name]
	if !known {
		if d.name == "" {
			pass.Reportf(d.pos, "empty //mpq: directive; known directives: %s", knownDirectiveNames())
			return
		}
		pass.Reportf(d.pos, "unknown //mpq: directive %q; known directives: %s", d.name, knownDirectiveNames())
		return
	}
	if len(d.args) != spec.argc {
		pass.Reportf(d.pos, "//mpq:%s takes %d argument(s), got %d; usage: %s",
			d.name, spec.argc, len(d.args), spec.usage)
		return
	}
	legal := (kind == anchorFunc && spec.onFunc) ||
		(kind == anchorMember && spec.onField) ||
		(kind == anchorFree && spec.onFree)
	if !legal {
		pass.Reportf(d.pos, "//mpq:%s is misplaced here (it would be silently ignored); usage: %s",
			d.name, spec.usage)
		return
	}
	if d.name == "ring" {
		for _, obj := range objs {
			if _, isChan := obj.Type().Underlying().(*types.Chan); !isChan {
				pass.Reportf(d.pos, "//mpq:ring on %s, which is not a channel; a ring is a free-list channel", obj.Name())
			}
		}
	}
}

// knownDirectiveNames lists the directive names for error messages,
// sorted for determinism.
func knownDirectiveNames() string {
	names := make([]string, 0, len(mpqDirectiveSpecs))
	for name := range mpqDirectiveSpecs {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
