// Package blocking exercises the driver-loop blocking discipline:
// run-loop-domain code must not block outside the //mpq:waitpoint.
package blocking

import (
	"net"
	"sync"
	"time"
)

// udpConn mirrors the live driver's UDPConn interface: the same
// blocking read hidden behind interface dispatch.
type udpConn interface {
	ReadFromUDPAddrPort(b []byte) (int, int, error)
}

type loop struct {
	mu    sync.Mutex
	wg    sync.WaitGroup
	ch    chan int
	done  chan struct{}
	sock  *net.UDPConn
	isock udpConn
}

// Run's select is the designated wait point: exempt despite having no
// default clause.
//
//mpq:entry run-loop
func (l *loop) Run() {
	for {
		//mpq:waitpoint
		select {
		case v := <-l.ch:
			l.handle(v)
		case <-l.done:
			return
		}
	}
}

// handle inherits {run-loop} from Run; every blocking construct in it
// is an error.
func (l *loop) handle(v int) {
	l.ch <- v                    // want `blocking channel send in run-loop code`
	<-l.done                     // want `blocking channel receive in run-loop code`
	time.Sleep(time.Millisecond) // want `time\.Sleep stalls the run loop`
	l.mu.Lock()                  // want `mutex acquisition in run-loop code`
	l.wg.Wait()                  // want `sync\.WaitGroup\.Wait blocks the run loop`
	select {                     // want `blocking select \(no default\) in run-loop code`
	case <-l.done:
	}
	for range l.ch { // want `range over a channel blocks run-loop code`
	}
	l.poll()
	l.readSock(make([]byte, 16))
	l.readIface(make([]byte, 16))
	l.drainOnExit()
}

// poll is the sanctioned non-blocking pattern: select with default.
func (l *loop) poll() {
	select {
	case v := <-l.ch:
		_ = v
	case l.ch <- 0:
	default:
	}
}

// readSock performs the one syscall readers own, from the wrong
// domain.
func (l *loop) readSock(b []byte) {
	l.sock.Read(b) // want `blocking socket read in run-loop code`
}

// readIface performs the same forbidden read through an interface —
// how the fault-tolerant driver actually holds its sockets.
func (l *loop) readIface(b []byte) {
	l.isock.ReadFromUDPAddrPort(b) // want `blocking socket read in run-loop code`
}

// drainOnExit demonstrates the audited escape hatch.
func (l *loop) drainOnExit() {
	l.wg.Wait() //mpqvet:allow blocking shutdown path runs after the loop has exited
}

// Idle blocks freely: it is not in the run-loop domain.
func (l *loop) Idle() {
	<-l.done
	l.mu.Lock()
}
