package faultnet

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// errQueueEmpty is the fake's "no more datagrams" sentinel; the tests
// use it to stop read loops without blocking.
var errQueueEmpty = errors.New("fake queue empty")

// fakeConn is an in-memory Conn: reads pop a queue, writes are
// recorded.
type fakeConn struct {
	mu     sync.Mutex
	rq     [][]byte
	from   netip.AddrPort
	writes [][]byte
	closed bool
}

func newFakeConn(payloads ...[]byte) *fakeConn {
	return &fakeConn{rq: payloads, from: netip.MustParseAddrPort("127.0.0.1:9999")}
}

func (f *fakeConn) ReadFromUDPAddrPort(b []byte) (int, netip.AddrPort, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, netip.AddrPort{}, net.ErrClosed
	}
	if len(f.rq) == 0 {
		return 0, netip.AddrPort{}, errQueueEmpty
	}
	p := f.rq[0]
	f.rq = f.rq[1:]
	return copy(b, p), f.from, nil
}

func (f *fakeConn) WriteToUDPAddrPort(b []byte, addr netip.AddrPort) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, net.ErrClosed
	}
	f.writes = append(f.writes, append([]byte(nil), b...))
	return len(b), nil
}

func (f *fakeConn) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}

func (f *fakeConn) SetReadBuffer(int) error  { return nil }
func (f *fakeConn) SetWriteBuffer(int) error { return nil }

func (f *fakeConn) isClosed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

func (f *fakeConn) writeCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.writes)
}

// faultSignature drains a wrapped conn and encodes every outcome, so
// two runs can be compared byte for byte.
func faultSignature(t *testing.T, c Conn) string {
	t.Helper()
	var sig bytes.Buffer
	b := make([]byte, 64)
	for {
		n, _, err := c.ReadFromUDPAddrPort(b)
		if errors.Is(err, errQueueEmpty) {
			return sig.String()
		}
		if err != nil {
			fmt.Fprintf(&sig, "E(%v);", err)
			continue
		}
		fmt.Fprintf(&sig, "%x;", b[:n])
	}
}

func manyPayloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte{byte(i), byte(i >> 8), 0xaa, 0x55}
	}
	return out
}

func TestSameSeedSameFaults(t *testing.T) {
	rates := Rates{Drop: 0.2, Dup: 0.2, Corrupt: 0.2, ReadErr: 0.1}
	run := func(seed uint64) string {
		in := New(seed, WithRates(rates))
		return faultSignature(t, in.Wrap(0, newFakeConn(manyPayloads(200)...)))
	}
	if a, b := run(42), run(42); a != b {
		t.Fatalf("same seed produced different fault sequences:\n%s\nvs\n%s", a, b)
	}
	if a, b := run(42), run(43); a == b {
		t.Fatalf("different seeds produced identical fault sequences")
	}
}

func TestWrapGenerationsDiverge(t *testing.T) {
	rates := Rates{Drop: 0.3, Corrupt: 0.3}
	in := New(7, WithRates(rates))
	a := faultSignature(t, in.Wrap(0, newFakeConn(manyPayloads(100)...)))
	b := faultSignature(t, in.Wrap(0, newFakeConn(manyPayloads(100)...)))
	if a == b {
		t.Fatalf("successive generations on one path share a fault stream")
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	orig := []byte{0x00, 0xff, 0x12, 0x34, 0x56, 0x78}
	in := New(1, WithRates(Rates{Corrupt: 1}))
	c := in.Wrap(0, newFakeConn(append([]byte(nil), orig...)))
	b := make([]byte, 64)
	n, _, err := c.ReadFromUDPAddrPort(b)
	if err != nil || n != len(orig) {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	diffBits := 0
	for i := range orig {
		x := orig[i] ^ b[i]
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("corrupt flipped %d bits, want exactly 1 (got %x want %x)", diffBits, b[:n], orig)
	}
}

func TestDupDeliversTwice(t *testing.T) {
	payload := []byte{1, 2, 3, 4}
	in := New(1, WithRates(Rates{Dup: 1}))
	fake := newFakeConn(append([]byte(nil), payload...))
	c := in.Wrap(0, fake)
	b := make([]byte, 64)
	for i := 0; i < 2; i++ {
		n, _, err := c.ReadFromUDPAddrPort(b)
		if err != nil || !bytes.Equal(b[:n], payload) {
			t.Fatalf("delivery %d: n=%d err=%v data=%x", i, n, err, b[:n])
		}
	}
	// Both deliveries came from the single queued datagram.
	if _, _, err := c.ReadFromUDPAddrPort(b); !errors.Is(err, errQueueEmpty) {
		t.Fatalf("expected drained queue, got %v", err)
	}
}

func TestReadErrIsTransientShaped(t *testing.T) {
	in := New(1, WithRates(Rates{ReadErr: 1}))
	c := in.Wrap(0, newFakeConn(manyPayloads(1)...))
	_, _, err := c.ReadFromUDPAddrPort(make([]byte, 64))
	if !errors.Is(err, syscall.ENOBUFS) {
		t.Fatalf("read error %v does not wrap ENOBUFS", err)
	}
	if errors.Is(err, net.ErrClosed) {
		t.Fatalf("transient read error %v must not look like a dead socket", err)
	}
}

func TestWriteErrShapes(t *testing.T) {
	in := New(3, WithRates(Rates{WriteErr: 1}))
	fake := newFakeConn()
	c := in.Wrap(0, fake)
	to := netip.MustParseAddrPort("127.0.0.1:1234")
	sawBufs, sawHost := false, false
	for i := 0; i < 64 && !(sawBufs && sawHost); i++ {
		_, err := c.WriteToUDPAddrPort([]byte{1}, to)
		switch {
		case errors.Is(err, syscall.ENOBUFS):
			sawBufs = true
		case errors.Is(err, syscall.EHOSTUNREACH):
			sawHost = true
		default:
			t.Fatalf("unexpected write error %v", err)
		}
	}
	if !sawBufs || !sawHost {
		t.Fatalf("write errors not alternating shapes: ENOBUFS=%v EHOSTUNREACH=%v", sawBufs, sawHost)
	}
	if fake.writeCount() != 0 {
		t.Fatalf("failing writes reached the inner socket")
	}
}

func TestWriteCorruptRestoresCallerBuffer(t *testing.T) {
	orig := []byte{0x10, 0x20, 0x30, 0x40}
	in := New(1, WithRates(Rates{Corrupt: 1}))
	fake := newFakeConn()
	c := in.Wrap(0, fake)
	buf := append([]byte(nil), orig...)
	if _, err := c.WriteToUDPAddrPort(buf, netip.MustParseAddrPort("127.0.0.1:1")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !bytes.Equal(buf, orig) {
		t.Fatalf("caller buffer mutated: %x want %x", buf, orig)
	}
	if fake.writeCount() != 1 || bytes.Equal(fake.writes[0], orig) {
		t.Fatalf("wire payload not corrupted: %x", fake.writes)
	}
}

func TestScriptedKillClosesAndSticks(t *testing.T) {
	var now atomic.Int64
	clock := func() time.Duration { return time.Duration(now.Load()) }
	in := New(1, WithClock(clock), WithScript(KillAt(0, 100*time.Millisecond).And(RestoreAt(0, 200*time.Millisecond))))
	fake := newFakeConn(manyPayloads(4)...)
	c := in.Wrap(0, fake)

	// Healthy before the kill fires.
	if _, _, err := c.ReadFromUDPAddrPort(make([]byte, 64)); err != nil {
		t.Fatalf("pre-kill read: %v", err)
	}

	now.Store(int64(150 * time.Millisecond))
	_, _, err := c.ReadFromUDPAddrPort(make([]byte, 64))
	if !errors.Is(err, ErrSocketDead) || !errors.Is(err, net.ErrClosed) {
		t.Fatalf("killed read error %v must wrap ErrSocketDead and net.ErrClosed", err)
	}
	if !fake.isClosed() {
		t.Fatalf("kill did not close the underlying socket")
	}
	if _, err := c.WriteToUDPAddrPort([]byte{1}, netip.MustParseAddrPort("127.0.0.1:1")); !errors.Is(err, ErrSocketDead) {
		t.Fatalf("killed write error %v must wrap ErrSocketDead", err)
	}

	// A restore cannot resurrect the killed incarnation (its socket is
	// gone) — but a freshly wrapped socket after the restore is healthy.
	now.Store(int64(250 * time.Millisecond))
	fresh := newFakeConn(manyPayloads(1)...)
	c2 := in.Wrap(0, fresh)
	if _, _, err := c2.ReadFromUDPAddrPort(make([]byte, 64)); err != nil {
		t.Fatalf("post-restore wrap read: %v", err)
	}
}

func TestWrapDuringKillWindowIsDeadAtBirth(t *testing.T) {
	var now atomic.Int64
	now.Store(int64(150 * time.Millisecond))
	clock := func() time.Duration { return time.Duration(now.Load()) }
	in := New(1, WithClock(clock), WithScript(KillAt(0, 100*time.Millisecond)))
	fake := newFakeConn(manyPayloads(1)...)
	c := in.Wrap(0, fake)
	if !fake.isClosed() {
		t.Fatalf("dead-at-birth wrap must close the underlying socket immediately")
	}
	if _, _, err := c.ReadFromUDPAddrPort(make([]byte, 64)); !errors.Is(err, ErrSocketDead) {
		t.Fatalf("dead-at-birth read error: %v", err)
	}
}

func TestScriptOnlyHitsItsPath(t *testing.T) {
	var now atomic.Int64
	now.Store(int64(time.Second))
	clock := func() time.Duration { return time.Duration(now.Load()) }
	in := New(1, WithClock(clock), WithScript(KillAt(1, 100*time.Millisecond)))
	c0 := in.Wrap(0, newFakeConn(manyPayloads(1)...))
	if _, _, err := c0.ReadFromUDPAddrPort(make([]byte, 64)); err != nil {
		t.Fatalf("path 0 affected by path 1's kill: %v", err)
	}
}

func TestBlackholeSwallowsTraffic(t *testing.T) {
	var now atomic.Int64
	now.Store(int64(time.Second))
	clock := func() time.Duration { return time.Duration(now.Load()) }
	in := New(1, WithClock(clock), WithScript(Blackhole(0, 500*time.Millisecond, 0)))
	fake := newFakeConn(manyPayloads(3)...)
	c := in.Wrap(0, fake)

	// Writes report success but nothing reaches the wire.
	n, err := c.WriteToUDPAddrPort([]byte{1, 2, 3}, netip.MustParseAddrPort("127.0.0.1:1"))
	if err != nil || n != 3 {
		t.Fatalf("blackholed write: n=%d err=%v", n, err)
	}
	if fake.writeCount() != 0 {
		t.Fatalf("blackholed write reached the inner socket")
	}

	// Reads consume and swallow every queued datagram.
	if _, _, err := c.ReadFromUDPAddrPort(make([]byte, 64)); !errors.Is(err, errQueueEmpty) {
		t.Fatalf("blackholed read returned %v, want drained queue", err)
	}
}

func TestBlackholeWindowCloses(t *testing.T) {
	var now atomic.Int64
	clock := func() time.Duration { return time.Duration(now.Load()) }
	in := New(1, WithClock(clock), WithScript(Blackhole(0, 100*time.Millisecond, 200*time.Millisecond)))
	fake := newFakeConn(manyPayloads(2)...)
	c := in.Wrap(0, fake)

	now.Store(int64(150 * time.Millisecond)) // inside the window
	if _, _, err := c.ReadFromUDPAddrPort(make([]byte, 64)); !errors.Is(err, errQueueEmpty) {
		t.Fatalf("in-window read returned %v", err)
	}
	now.Store(int64(400 * time.Millisecond)) // window closed
	fake.mu.Lock()
	fake.rq = manyPayloads(1)
	fake.mu.Unlock()
	if _, _, err := c.ReadFromUDPAddrPort(make([]byte, 64)); err != nil {
		t.Fatalf("post-window read: %v", err)
	}
}

func TestNewPanicsOnScriptWithoutClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("New accepted a script without a clock")
		}
	}()
	New(1, WithScript(KillAt(0, time.Second)))
}

func TestParse(t *testing.T) {
	seed, rates, script, err := Parse("seed=7;drop=0.01;dup=0.02;corrupt=0.03;readerr=0.04;writeerr=0.05;kill@300ms:0;restore@1.2s:0;blackhole@250ms+500ms:1")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if seed != 7 {
		t.Fatalf("seed=%d want 7", seed)
	}
	want := Rates{Drop: 0.01, Dup: 0.02, Corrupt: 0.03, ReadErr: 0.04, WriteErr: 0.05}
	if rates != want {
		t.Fatalf("rates=%+v want %+v", rates, want)
	}
	wantEvents := []Event{
		{At: 300 * time.Millisecond, Path: 0, Op: OpKill},
		{At: 1200 * time.Millisecond, Path: 0, Op: OpRestore},
		{At: 250 * time.Millisecond, Path: 1, Op: OpBlackholeOn},
		{At: 750 * time.Millisecond, Path: 1, Op: OpBlackholeOff},
	}
	if len(script.Events) != len(wantEvents) {
		t.Fatalf("events=%+v want %+v", script.Events, wantEvents)
	}
	for i, ev := range script.Events {
		if ev != wantEvents[i] {
			t.Fatalf("event %d = %+v want %+v", i, ev, wantEvents[i])
		}
	}

	// Bare-integer seed shorthand.
	if seed, _, _, err := Parse("42"); err != nil || seed != 42 {
		t.Fatalf("bare seed: seed=%d err=%v", seed, err)
	}

	for _, bad := range []string{
		"bogus",
		"drop=1.5",
		"drop=x",
		"frob=0.1",
		"kill@300ms",
		"kill@-1s:0",
		"kill@300ms:-1",
		"explode@300ms:0",
		"blackhole@100ms+0s:1",
		"seed=abc",
	} {
		if _, _, _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted bad input", bad)
		}
	}
}

func TestEventsForSortsAndFilters(t *testing.T) {
	s := Script{}.
		Then(300*time.Millisecond, 0, OpRestore).
		Then(100*time.Millisecond, 0, OpKill).
		Then(200*time.Millisecond, 1, OpKill)
	got := s.eventsFor(0)
	if len(got) != 2 || got[0].Op != OpKill || got[1].Op != OpRestore {
		t.Fatalf("eventsFor(0) = %+v", got)
	}
}
