package stream

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"

	"mpquic/internal/wire"
)

func TestIntervalSetAddCoalesces(t *testing.T) {
	var s IntervalSet
	s.Add(10, 20)
	s.Add(30, 40)
	s.Add(20, 30) // bridges
	ivs := s.Intervals()
	if len(ivs) != 1 || ivs[0] != (Interval{10, 40}) {
		t.Fatalf("got %v", ivs)
	}
	if s.Size() != 30 {
		t.Fatalf("size %d", s.Size())
	}
}

func TestIntervalSetAddOverlap(t *testing.T) {
	var s IntervalSet
	s.Add(0, 100)
	s.Add(50, 150)
	s.Add(25, 75)
	if got := s.Intervals(); len(got) != 1 || got[0] != (Interval{0, 150}) {
		t.Fatalf("got %v", got)
	}
}

func TestIntervalSetRemoveSplits(t *testing.T) {
	var s IntervalSet
	s.Add(0, 100)
	s.Remove(40, 60)
	got := s.Intervals()
	if len(got) != 2 || got[0] != (Interval{0, 40}) || got[1] != (Interval{60, 100}) {
		t.Fatalf("got %v", got)
	}
	s.Remove(0, 100)
	if !s.Empty() {
		t.Fatalf("not empty: %v", s.Intervals())
	}
}

func TestIntervalSetContains(t *testing.T) {
	var s IntervalSet
	s.Add(10, 20)
	s.Add(30, 40)
	if !s.Contains(10, 20) || !s.Contains(12, 18) || !s.Contains(5, 5) {
		t.Fatal("contains broken")
	}
	if s.Contains(10, 25) || s.Contains(25, 28) || s.Contains(15, 35) {
		t.Fatal("contains false positive")
	}
}

func TestIntervalSetFirstMissingFrom(t *testing.T) {
	var s IntervalSet
	s.Add(0, 10)
	s.Add(20, 30)
	if got := s.FirstMissingFrom(0); got != 10 {
		t.Fatalf("got %d", got)
	}
	if got := s.FirstMissingFrom(15); got != 15 {
		t.Fatalf("got %d", got)
	}
	if got := s.FirstMissingFrom(25); got != 30 {
		t.Fatalf("got %d", got)
	}
}

func TestIntervalSetPop(t *testing.T) {
	var s IntervalSet
	s.Add(5, 15)
	iv := s.Pop(4)
	if iv != (Interval{5, 9}) {
		t.Fatalf("got %v", iv)
	}
	iv = s.Pop(100)
	if iv != (Interval{9, 15}) {
		t.Fatalf("got %v", iv)
	}
	if !s.Empty() {
		t.Fatal("not drained")
	}
	if s.Pop(10).Len() != 0 {
		t.Fatal("pop from empty returned bytes")
	}
}

// Property: an IntervalSet built from random Adds equals the reference
// boolean-array implementation.
func TestIntervalSetMatchesReferenceProperty(t *testing.T) {
	f := func(ops [][2]uint8) bool {
		var s IntervalSet
		ref := make([]bool, 300)
		for _, op := range ops {
			a, b := uint64(op[0]), uint64(op[0])+uint64(op[1]%40)
			s.Add(a, b)
			for i := a; i < b && i < 300; i++ {
				ref[i] = true
			}
		}
		// Compare sizes and membership.
		var want uint64
		for _, v := range ref {
			if v {
				want++
			}
		}
		if s.Size() != want {
			return false
		}
		for i := 0; i < 299; i++ {
			if ref[i] != s.Contains(uint64(i), uint64(i+1)) {
				return false
			}
		}
		// Invariant: sorted, non-overlapping, non-touching.
		ivs := s.Intervals()
		if !sort.SliceIsSorted(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start }) {
			return false
		}
		for i := 1; i < len(ivs); i++ {
			if ivs[i].Start <= ivs[i-1].End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowControllerSendSide(t *testing.T) {
	fc := NewFlowController(1000)
	if fc.SendAllowance() != 1000 {
		t.Fatalf("allowance %d", fc.SendAllowance())
	}
	fc.AddBytesSent(600)
	if fc.SendAllowance() != 400 || fc.Blocked() {
		t.Fatal("partial consumption wrong")
	}
	fc.AddBytesSent(400)
	if !fc.Blocked() {
		t.Fatal("should be blocked")
	}
	if fc.UpdateSendLimit(900) {
		t.Fatal("stale update accepted")
	}
	if !fc.UpdateSendLimit(2000) || fc.SendAllowance() != 1000 {
		t.Fatal("update failed")
	}
}

func TestFlowControllerRecvSide(t *testing.T) {
	fc := NewFlowController(1000)
	if !fc.OnReceive(1000) {
		t.Fatal("in-limit receive rejected")
	}
	if fc.OnReceive(1001) {
		t.Fatal("violation not detected")
	}
	if fc.ShouldSendUpdate() {
		t.Fatal("no consumption yet")
	}
	fc.OnConsume(600)
	if !fc.ShouldSendUpdate() {
		t.Fatal("should update after consuming >= half window")
	}
	limit := fc.NextUpdate()
	if limit != 1600 {
		t.Fatalf("limit %d", limit)
	}
	if fc.ShouldSendUpdate() {
		t.Fatal("update already granted")
	}
}

func TestSendStreamRealDataRoundTrip(t *testing.T) {
	s := NewSendStream(3)
	s.Write([]byte("hello, "))
	s.Write([]byte("world"))
	s.Close()
	var frames []*wire.StreamFrame
	for {
		f, _ := s.NextFrame(20, 1<<20)
		if f == nil {
			break
		}
		frames = append(frames, f)
	}
	var buf bytes.Buffer
	fin := false
	for _, f := range frames {
		buf.Write(f.Data)
		fin = fin || f.Fin
	}
	if buf.String() != "hello, world" || !fin {
		t.Fatalf("got %q fin=%v", buf.String(), fin)
	}
}

func TestSendStreamFlowAllowanceLimitsNewData(t *testing.T) {
	s := NewSendStream(3)
	s.WriteSynthetic(1000)
	f, used := s.NextFrame(2000, 100)
	if f == nil || f.Len() != 100 || used != 100 {
		t.Fatalf("frame %+v used %d", f, used)
	}
	if f2, used2 := s.NextFrame(2000, 0); f2 != nil || used2 != 0 {
		t.Fatal("produced new data with zero allowance")
	}
}

func TestSendStreamRetransmissionPriorityAndNoDoubleCharge(t *testing.T) {
	s := NewSendStream(3)
	s.WriteSynthetic(3000)
	f1, _ := s.NextFrame(1400, 1<<20) // ~1350ish bytes
	s.OnFrameLost(f1.Offset, f1.Len(), f1.Fin)
	f2, used := s.NextFrame(1400, 1<<20)
	if used != 0 {
		t.Fatal("retransmission consumed flow credit")
	}
	if f2.Offset != f1.Offset || f2.Len() != f1.Len() {
		t.Fatalf("rtx frame %+v != original %+v", f2, f1)
	}
}

func TestSendStreamLostThenAckedNotRetransmitted(t *testing.T) {
	s := NewSendStream(3)
	s.WriteSynthetic(1000)
	f, _ := s.NextFrame(2000, 1<<20)
	// Duplicate copies: one lost, one acked (e.g. duplicated on a
	// second path). The ack wins.
	s.OnFrameAcked(f.Offset, f.Len(), f.Fin)
	s.OnFrameLost(f.Offset, f.Len(), f.Fin)
	if s.HasRetransmission() {
		t.Fatal("acked data queued for retransmission")
	}
}

func TestSendStreamFinLifecycle(t *testing.T) {
	s := NewSendStream(3)
	s.WriteSynthetic(100)
	s.Close()
	f, _ := s.NextFrame(2000, 1<<20)
	if !f.Fin {
		t.Fatal("last frame should carry FIN")
	}
	if s.AllAcked() {
		t.Fatal("AllAcked before any ack")
	}
	s.OnFrameLost(f.Offset, f.Len(), f.Fin)
	f2, _ := s.NextFrame(2000, 1<<20)
	if f2 == nil || !f2.Fin {
		t.Fatalf("lost FIN not retransmitted: %+v", f2)
	}
	s.OnFrameAcked(f2.Offset, f2.Len(), f2.Fin)
	if !s.AllAcked() {
		t.Fatal("AllAcked false after full ack")
	}
}

func TestSendStreamEmptyFin(t *testing.T) {
	s := NewSendStream(3)
	s.Close()
	f, _ := s.NextFrame(2000, 0) // zero allowance must not block bare FIN
	if f == nil || !f.Fin || f.Len() != 0 {
		t.Fatalf("bare FIN: %+v", f)
	}
	s.OnFrameAcked(f.Offset, 0, true)
	if !s.AllAcked() {
		t.Fatal("empty stream not complete")
	}
}

func TestRecvStreamReordering(t *testing.T) {
	r := NewRecvStream(3)
	newB, err := r.OnFrame(&wire.StreamFrame{StreamID: 3, Offset: 5, Data: []byte("world")})
	if err != nil || newB != 5 {
		t.Fatalf("newB %d err %v", newB, err)
	}
	if r.Readable() != 0 {
		t.Fatal("gap should block reading")
	}
	newB, _ = r.OnFrame(&wire.StreamFrame{StreamID: 3, Offset: 0, Data: []byte("hello")})
	if newB != 5 {
		t.Fatalf("newB %d", newB)
	}
	if r.Readable() != 10 {
		t.Fatalf("readable %d", r.Readable())
	}
	n, data := r.Read(10)
	if n != 10 || string(data) != "helloworld" {
		t.Fatalf("read %d %q", n, data)
	}
}

func TestRecvStreamDuplicateCountsOnce(t *testing.T) {
	r := NewRecvStream(3)
	f := &wire.StreamFrame{StreamID: 3, Offset: 0, DataLen: 100}
	n1, _ := r.OnFrame(f)
	n2, _ := r.OnFrame(f)
	if n1 != 100 || n2 != 0 {
		t.Fatalf("dup accounting: %d, %d", n1, n2)
	}
	if r.BytesReceived() != 100 {
		t.Fatalf("received %d", r.BytesReceived())
	}
}

func TestRecvStreamFinHandling(t *testing.T) {
	r := NewRecvStream(3)
	r.OnFrame(&wire.StreamFrame{StreamID: 3, Offset: 0, DataLen: 50})
	r.OnFrame(&wire.StreamFrame{StreamID: 3, Offset: 50, DataLen: 50, Fin: true})
	if !r.FinReceived() || !r.Complete() {
		t.Fatal("fin/complete broken")
	}
	if off, ok := r.FinOffset(); !ok || off != 100 {
		t.Fatalf("fin offset %d", off)
	}
	r.Read(100)
	if !r.Finished() {
		t.Fatal("not finished after full read")
	}
}

func TestRecvStreamFinConflicts(t *testing.T) {
	r := NewRecvStream(3)
	r.OnFrame(&wire.StreamFrame{StreamID: 3, Offset: 10, Fin: true})
	if _, err := r.OnFrame(&wire.StreamFrame{StreamID: 3, Offset: 20, Fin: true}); err == nil {
		t.Fatal("conflicting FIN accepted")
	}
	if _, err := r.OnFrame(&wire.StreamFrame{StreamID: 3, Offset: 15, DataLen: 10}); err == nil {
		t.Fatal("data past FIN accepted")
	}
}

func TestRecvStreamCompleteOutOfOrderFin(t *testing.T) {
	r := NewRecvStream(3)
	r.OnFrame(&wire.StreamFrame{StreamID: 3, Offset: 50, DataLen: 50, Fin: true})
	if r.Complete() {
		t.Fatal("complete with a hole")
	}
	r.OnFrame(&wire.StreamFrame{StreamID: 3, Offset: 0, DataLen: 50})
	if !r.Complete() {
		t.Fatal("should be complete")
	}
}

// Property: any segmentation of a synthetic stream, delivered in any
// order with duplications, reassembles completely with exact byte
// accounting.
func TestStreamReassemblyProperty(t *testing.T) {
	f := func(chunks []uint16, perm []uint8, dup uint8) bool {
		s := NewSendStream(7)
		total := uint64(0)
		for _, c := range chunks {
			n := uint64(c%2000) + 1
			total += n
		}
		if total == 0 {
			return true
		}
		s.WriteSynthetic(total)
		s.Close()
		var frames []*wire.StreamFrame
		for {
			fr, _ := s.NextFrame(1400, 1<<30)
			if fr == nil {
				break
			}
			frames = append(frames, fr)
		}
		// Shuffle deterministically with perm and duplicate one frame.
		for i := range frames {
			j := i
			if len(perm) > 0 {
				j = int(perm[i%len(perm)]) % len(frames)
			}
			frames[i], frames[j] = frames[j], frames[i]
		}
		if len(frames) > 0 {
			frames = append(frames, frames[int(dup)%len(frames)])
		}
		r := NewRecvStream(7)
		var newBytes uint64
		for _, fr := range frames {
			n, err := r.OnFrame(fr)
			if err != nil {
				return false
			}
			newBytes += n
		}
		return newBytes == total && r.Complete() && r.Readable() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessorsAndGuards(t *testing.T) {
	s := NewSendStream(9)
	if s.ID() != 9 {
		t.Fatal("send ID")
	}
	r := NewRecvStream(9)
	if r.ID() != 9 {
		t.Fatal("recv ID")
	}
	r.OnFrame(&wire.StreamFrame{StreamID: 9, DataLen: 10})
	r.Read(4)
	if r.ReadOffset() != 4 {
		t.Fatalf("read offset %d", r.ReadOffset())
	}
	fc := NewFlowController(100)
	fc.AddBytesSent(30)
	if fc.SendLimit() != 100 || fc.BytesSent() != 30 || fc.RecvLimit() != 100 {
		t.Fatal("flow accessors")
	}
	var set IntervalSet
	set.Add(1, 3)
	if set.String() == "" {
		t.Fatal("interval String")
	}
}

func TestWriteGuards(t *testing.T) {
	s := NewSendStream(1)
	s.Write([]byte("x"))
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("mixing real+synthetic accepted")
			}
		}()
		s.WriteSynthetic(5)
	}()
	s.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Write after Close accepted")
			}
		}()
		s.Write([]byte("y"))
	}()

	syn := NewSendStream(2)
	syn.WriteSynthetic(5)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("mixing synthetic+real accepted")
			}
		}()
		syn.Write([]byte("z"))
	}()
	syn.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("WriteSynthetic after Close accepted")
			}
		}()
		syn.WriteSynthetic(1)
	}()
}

func TestRecvCompleteEmptyStream(t *testing.T) {
	r := NewRecvStream(4)
	if r.Complete() {
		t.Fatal("complete before FIN")
	}
	r.OnFrame(&wire.StreamFrame{StreamID: 4, Fin: true})
	if !r.Complete() || !r.FinReceived() {
		t.Fatal("empty stream with FIN should be complete")
	}
}
