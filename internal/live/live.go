// Package live runs the MPQUIC stack over real UDP sockets.
//
// The protocol core (internal/core) is driver-agnostic: it schedules
// on a sim.Clock and moves datagrams through the core.DatagramSender
// boundary. The deterministic simulator implements that boundary with
// emulated links; this package implements it with one UDP socket per
// local path address and a wall clock, so the exact same protocol
// logic — scheduler, OLIA, recovery, tracing, qlog — exchanges real
// packets, unmodified (the paper ran its evaluation this way: a real
// implementation over real networks).
//
// # Sim time as a monotone image of wall time
//
// The driver owns a sim.Clock whose epoch is the moment Run starts.
// Its loop is:
//
//  1. read Clock.NextDeadline() — the earliest armed protocol timer —
//     and arm a wall timer at that deadline's wall image, quantized up
//     to the coalescing granularity (WithCoalesce, default 1 ms) so
//     nearby timers share one wake-up;
//  2. block on socket readability until that wall deadline (a select
//     over the reader channel and the timer);
//  3. on wake-up, drain every datagram the readers have queued into
//     one batch, advance the sim clock once to wall-elapsed time with
//     Clock.RunUntil (firing every due protocol timer), and inject the
//     whole batch via netem.Handler.HandleDatagram;
//  4. flush all egress datagrams queued during the step to their
//     sockets in one pass.
//
// Virtual time therefore advances only through RunUntil and always to
// the current wall-elapsed duration: sim time is a monotone map of
// wall time, and everything stamped with sim time (traces, qlog,
// series samples, RunMetrics) works untouched in live mode — the
// timestamps simply read as wall-derived durations since Run. Note
// that wake-up coalescing quantizes *timer-driven* work (and hence the
// wall-derived timestamps of events it causes) to the granularity;
// packet arrivals wake the loop immediately and are never delayed.
//
// # The ingress buffer ring
//
// Each datagram travels in a driver-owned buffer drawn from a fixed
// ring (a buffered free-list channel). The buffers are deliberately
// sized differently from wire.GetPacketBuf's pool, so the endpoint's
// unconditional wire.PutPacketBuf after consuming the frames is a
// documented no-op (see wire.PutPacketBuf) and ownership stays with
// the driver: the loop returns each buffer to the ring as soon as
// HandleDatagram returns (handlers consume frames synchronously — the
// contract core.RawDatagram documents). Steady-state ingress therefore
// performs zero allocations per packet, pinned by
// internal/perf's live-loop allocation tests.
//
// # What determinism guarantees do NOT hold
//
// Live runs are not reproducible: packet arrival order and timing come
// from the kernel and the network, loss is real (including loopback
// socket-buffer overflow, surfaced via Stats.RcvQueueDrops), and timer
// firings quantize to wall-clock scheduling latency plus the
// coalescing granularity. The determinism contract of the simulator
// (same seed → byte-identical artifacts) applies only to sim runs;
// live mode inherits the protocol logic, not the reproducibility.
//
// # Concurrency
//
// One goroutine per socket blocks in ReadFromUDPAddrPort and hands
// (buffer, source) pairs to the driver loop over a channel; everything
// else — clock, connections, handlers, egress — is touched only by the
// goroutine inside Run. This preserves the single-threaded discipline
// the protocol core was built under, which is why the stack needs no
// locks to be race-clean.
//
// This package is the audited wall-clock exception to the walltime
// analyzer (see internal/analysis): it is the one place besides
// internal/perf where reading real time is the point.
package live

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"mpquic/internal/core"
	"mpquic/internal/netem"
	"mpquic/internal/sim"
	"mpquic/internal/trace"
	"mpquic/internal/wire"
)

// ErrClosed is returned by Run when the driver is closed before the
// until condition is met.
var ErrClosed = errors.New("live: driver closed")

// DefaultCoalesce is the default wake-up coalescing granularity: timer
// deadlines are rounded up to this grid so the loop does work in
// bursts instead of thrashing between NextDeadline and select. 1 ms is
// roughly the stack's natural pacing timescale (well under the 25 ms
// delayed-ACK timer and any RTO) while collapsing the sub-millisecond
// timer churn a fast transfer generates.
const DefaultCoalesce = time.Millisecond

// DefaultSocketBuffer is the SO_RCVBUF/SO_SNDBUF size requested for
// every path socket. The driver drains sockets in batches between
// protocol events, so the kernel queue is the only thing standing
// between a burst and loss; the OS clamps to its own limits.
const DefaultSocketBuffer = 1 << 22

// ingressBufCap is the capacity of ring buffers carrying received
// datagrams. It intentionally differs from the wire pool's 1500-byte
// buffers: wire.PutPacketBuf ignores foreign capacities, so the
// endpoint's put after consuming the frames is a no-op and the driver
// keeps ownership for ring recycling.
const ingressBufCap = 2048

// recvQueueLen bounds datagrams in flight between the reader
// goroutines and the driver loop; the ring holds slightly more
// buffers so a full queue still recycles allocation-free.
const recvQueueLen = 1024

// ingressBatchCap bounds how many queued datagrams one clock step
// injects; the remainder is picked up by the next loop iteration.
const ingressBatchCap = 256

// Option tunes a Driver at construction.
type Option func(*Driver)

// WithCoalesce sets the wake-up coalescing granularity: the wall image
// of the next protocol-timer deadline is rounded up to a multiple of g
// before arming the loop's timer. Zero or negative disables
// coalescing (every timer deadline gets an exact wake-up).
func WithCoalesce(g time.Duration) Option {
	return func(d *Driver) { d.coalesce = g }
}

// WithSocketBuffer requests b bytes of SO_RCVBUF and SO_SNDBUF per
// path socket instead of DefaultSocketBuffer. Best-effort — the OS
// clamps to its limits. Tests use tiny values to force overflow.
func WithSocketBuffer(b int) Option {
	return func(d *Driver) { d.sockBuf = b }
}

// packetIn is one message crossing from a reader goroutine into the
// driver loop: a received datagram (kind == evData) or a socket health
// transition (see fault.go). For datagrams, buf is ring-backed;
// ownership transfers with the message and returns to the ring once
// the handler consumed it. For events, buf is nil and err carries the
// cause where one exists.
type packetIn struct {
	s    *pathSocket
	from netip.AddrPort
	buf  []byte
	kind sockEventKind
	err  error
}

// Stats counts driver-level activity (socket I/O, not protocol state;
// per-path protocol counters live on the connection's paths).
type Stats struct {
	PacketsIn   uint64 // datagrams injected into the stack
	PacketsOut  uint64 // datagrams written to sockets
	BytesIn     uint64
	BytesOut    uint64
	NoHandler   uint64 // ingress dropped: no handler for the socket
	NoRoute     uint64 // egress dropped: unknown local addr, bad remote, or no route to host
	WriteErrors uint64 // egress dropped: socket write failed (treated as loss)

	// EgressDiscards counts egress datagrams discarded unsent because a
	// fatal error earlier in the same flush aborted the batch (the
	// remainder is dropped deliberately, and visibly, instead of being
	// written after the driver has decided to die).
	EgressDiscards uint64

	// Socket health ladder counters (see fault.go).
	TransientReadErrs uint64 // reader errors retried in place
	SocketsDegraded   uint64 // rebind ladders entered (persistent failures)
	Rebinds           uint64 // successful socket rebinds
	RebindFailures    uint64 // failed rebind attempts
	PathsFailedLive   uint64 // sockets abandoned after exhausting their ladder

	// CorruptDrops sums the undecodable-ingress datagrams the protocol
	// handlers silently dropped (unparsable header, undecodable
	// payload): corrupted packets are loss, never a crash. Refreshed by
	// UpdateSocketStats (and so when Run returns).
	CorruptDrops uint64

	// IngressBatches counts clock steps that injected at least one
	// datagram; PacketsIn / IngressBatches is the mean batch size the
	// batched loop achieved.
	IngressBatches uint64
	// MaxBatch is the largest single-step ingress batch observed.
	MaxBatch uint64
	// RcvQueueDrops is the kernel's receive-queue overflow count for
	// the driver's sockets (datagrams the kernel dropped because
	// SO_RCVBUF was full), read from /proc/net/udp[6]. Updated when
	// Run returns and by UpdateSocketStats; zero where the platform
	// does not expose the counter.
	RcvQueueDrops uint64
}

// Driver runs a sim.Clock against wall time and moves datagrams
// between the protocol core and real UDP sockets. It implements
// core.DatagramSender; pass it to core.Dial / core.Listen where the
// simulator tests pass a *netem.Network.
//
// Endpoints must run with Config.WireSerialization enabled (real
// sockets move bytes, not structs); enable Config.EnableCrypto too
// for real AEAD protection on the wire.
//
// Setup (NewDriver, Dial/Listen, Register) happens before Run; the
// goroutine calling Run then owns all protocol state until Run
// returns. Close and Wake may be called from any goroutine. That
// discipline is machine-checked: fields below carry //mpq:confined
// and //mpq:crossing annotations that mpq-vet's confine, ringsafety
// and blocking analyzers enforce (see DESIGN.md, "Live concurrency
// invariants").
type Driver struct {
	//mpq:confined run-loop
	clock  *sim.Clock
	binder *PathBinder
	//mpq:confined run-loop
	handlers map[netem.Addr]netem.Handler
	//mpq:confined run-loop
	egress []netem.Datagram

	coalesce time.Duration
	sockBuf  int

	// Fault-tolerance knobs, immutable after NewDriver; the reader
	// goroutines' rebind ladders read them, hence crossing.
	//mpq:crossing
	wrap SocketWrapper
	//mpq:crossing
	rebindMax int
	//mpq:crossing
	rebindBase time.Duration

	//mpq:confined run-loop
	tracer trace.Tracer
	// fatal latches the error that must end Run (all sockets failed).
	//mpq:confined run-loop
	fatal error
	// sockFailed marks sockets whose rebind ladder is exhausted.
	//mpq:confined run-loop
	sockFailed []bool
	// writeFails counts consecutive persistent write errors per socket.
	//mpq:confined run-loop
	writeFails []int

	//mpq:crossing
	recvCh chan packetIn
	// freeCh is the ingress buffer ring.
	//mpq:crossing
	//mpq:ring
	freeCh chan []byte
	//mpq:crossing
	wakeCh chan struct{}
	//mpq:crossing
	closeCh chan struct{}
	//mpq:crossing
	closeMu sync.Once
	//mpq:crossing
	readers sync.WaitGroup

	//mpq:confined run-loop
	inBatch []packetIn
	//mpq:confined run-loop
	addrNames map[netip.AddrPort]netem.Addr

	//mpq:confined run-loop
	start time.Time
	//mpq:confined run-loop
	started bool

	//mpq:confined run-loop
	Stats Stats
}

var _ core.DatagramSender = (*Driver)(nil)

// NewDriver binds one UDP socket per local address (port 0 picks a
// free port; see Driver.LocalAddrs for the bound result) and starts
// its reader goroutines. The caller owns the driver until Close.
//
//mpq:confined run-loop
func NewDriver(localAddrs []string, opts ...Option) (*Driver, error) {
	d := &Driver{
		clock:      sim.NewClock(),
		handlers:   make(map[netem.Addr]netem.Handler),
		coalesce:   DefaultCoalesce,
		sockBuf:    DefaultSocketBuffer,
		rebindMax:  DefaultRebindMax,
		rebindBase: DefaultRebindBackoff,
		recvCh:     make(chan packetIn, recvQueueLen),
		freeCh:     make(chan []byte, recvQueueLen+64),
		wakeCh:     make(chan struct{}, 1),
		closeCh:    make(chan struct{}),
		inBatch:    make([]packetIn, 0, ingressBatchCap),
		addrNames:  make(map[netip.AddrPort]netem.Addr),
	}
	for _, o := range opts {
		o(d)
	}
	binder, err := newPathBinder(localAddrs, d.sockBuf, d.wrap)
	if err != nil {
		return nil, err
	}
	d.binder = binder
	d.sockFailed = make([]bool, len(binder.socks))
	d.writeFails = make([]int, len(binder.socks))
	for _, s := range binder.socks {
		d.readers.Add(1)
		go d.readLoop(s)
	}
	return d, nil
}

// Clock returns the driver's clock (implements core.DatagramSender).
// Before Run it sits at the epoch; during Run it tracks wall-elapsed
// time since Run started.
//
//mpq:confined run-loop
func (d *Driver) Clock() *sim.Clock { return d.clock }

// Binder returns the driver's path binder.
func (d *Driver) Binder() *PathBinder { return d.binder }

// LocalAddrs returns the actually-bound local path addresses in bind
// order (index i is path i's local endpoint). Pass them to core.Dial
// or core.Listen.
func (d *Driver) LocalAddrs() []netem.Addr { return d.binder.Locals() }

// Register implements core.DatagramSender: ingress datagrams arriving
// on the socket bound to addr are dispatched to h.
//
//mpq:confined run-loop
func (d *Driver) Register(addr netem.Addr, h netem.Handler) {
	d.handlers[addr] = h
}

// Send implements core.DatagramSender: the datagram is queued and
// flushed to its socket when the current event batch finishes (egress
// order is preserved). The payload must be wire-serialized.
//
//mpq:confined run-loop
//mpq:noescape
func (d *Driver) Send(dg netem.Datagram) {
	d.egress = append(d.egress, dg)
}

// PendingIngress reports datagrams received by the readers but not yet
// injected (safe from any goroutine; tests use it to observe bursts
// queue up before a step).
func (d *Driver) PendingIngress() int { return len(d.recvCh) }

// Wake nudges a blocked Run iteration from any goroutine: the loop
// advances the clock, flushes egress and re-checks its until
// condition. Download's context cancellation uses it.
func (d *Driver) Wake() {
	select {
	case d.wakeCh <- struct{}{}:
	default:
	}
}

// getIngressBuf takes a buffer from the ring, falling back to the
// allocator only while the ring is still filling.
func (d *Driver) getIngressBuf() []byte {
	select {
	case b := <-d.freeCh:
		return b
	default:
		return make([]byte, ingressBufCap)
	}
}

// putIngressBuf returns a consumed buffer to the ring (dropping it to
// the garbage collector if the ring is full).
//
//mpq:noescape
func (d *Driver) putIngressBuf(b []byte) {
	if cap(b) != ingressBufCap {
		return
	}
	select {
	case d.freeCh <- b[:ingressBufCap]:
	default:
	}
}

// addrName interns the netem.Addr string identity of a source address,
// so steady-state ingress does not allocate per packet. Driver
// goroutine only. (The cold miss path allocates inside ap.String();
// the steady-state hit path is what //mpq:noescape pins.)
//
//mpq:noescape
func (d *Driver) addrName(ap netip.AddrPort) netem.Addr {
	if a, ok := d.addrNames[ap]; ok {
		return a
	}
	a := netem.Addr(ap.String())
	d.addrNames[ap] = a
	return a
}

// readLoop owns one socket slot: it blocks in reads, retries
// transient errors in place, and walks the rebind ladder (fault.go)
// on persistent failures. It exits on driver close or when the slot's
// ladder is exhausted — a dead socket never takes the driver down
// while siblings are alive.
//
//mpq:entry reader
func (d *Driver) readLoop(s *pathSocket) {
	defer d.readers.Done()
	conn := s.loadConn()
	transient := 0 // consecutive transient read errors on this conn
	attempts := 0  // rebind attempts since the last successful read
	for {
		status, err := d.readOne(s, conn)
		if status == readOK {
			transient, attempts = 0, 0
			continue
		}
		if status == readClosed {
			return
		}
		if status == readTransient {
			d.postEvent(packetIn{s: s, kind: evTransient, err: err})
			transient++
			if transient < transientReadLimit {
				continue
			}
			// A storm of transient errors with no successful read in
			// between is not transient: escalate to the ladder.
		}
		transient = 0
		next, ok := d.rebindLadder(s, conn, err, &attempts)
		if !ok {
			return
		}
		conn = next
	}
}

// readStatus classifies one readOne outcome for the reader loop.
type readStatus uint8

const (
	readOK         readStatus = iota
	readClosed                // driver shutting down: exit quietly
	readTransient             // retry on the same conn
	readPersistent            // conn is gone: rebind ladder
)

// readOne performs one blocking read and hands the datagram to the
// driver loop. Buffer ownership transfers with the channel send; every
// other exit recycles the buffer back to the ring.
func (d *Driver) readOne(s *pathSocket, conn UDPConn) (readStatus, error) {
	buf := d.getIngressBuf()
	b := buf[:cap(buf)]
	n, from, err := conn.ReadFromUDPAddrPort(b)
	if err == nil {
		// Unmap 4-in-6 so the string identity matches the literal
		// "ip:port" the peer's binder published.
		from = netip.AddrPortFrom(from.Addr().Unmap(), from.Port())
		select {
		case d.recvCh <- packetIn{s: s, from: from, buf: b[:n]}:
			return readOK, nil
		case <-d.closeCh:
			// Shutdown mid-handoff: fall through to the recycle.
		}
	}
	d.putIngressBuf(b)
	switch {
	case err == nil || d.closing():
		return readClosed, err
	case isPersistentErr(err):
		return readPersistent, fmt.Errorf("live: read %s: %w", s.local, err)
	default:
		return readTransient, err
	}
}

// Run drives the loop until the until condition reports true (checked
// after every batch of work), a terminal error occurs, or the driver
// is closed (ErrClosed). A nil until runs until Close — server mode.
//
// The first Run call pins the wall epoch: sim time 0 is that moment.
// Run may be called again after returning (e.g. one Run per transfer
// on a client driver); later calls keep the original epoch so sim
// time stays monotone across them.
//
//mpq:entry run-loop
func (d *Driver) Run(until func() bool) error {
	if !d.started {
		d.started = true
		d.start = time.Now()
	}
	defer d.UpdateSocketStats()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		select {
		case <-timer.C:
		default:
		}
	}
	defer timer.Stop()
	var armed time.Time // wall deadline the timer is armed at; zero when unarmed
	for {
		if err := d.flush(); err != nil {
			return err
		}
		if until != nil && until() {
			return nil
		}
		if d.fatal != nil {
			// Every path socket has failed (see handleSockEvent); the
			// until condition above still wins if the same batch that
			// killed the last socket also completed the work.
			return d.fatal
		}
		// Arm the wake-up at the wall image of the next sim deadline,
		// quantized up to the coalescing grid. An already-armed timer
		// at the same target is left alone — packet-driven iterations
		// pay zero timer syscalls.
		var timerC <-chan time.Time
		if dl := d.clock.NextDeadline(); dl != sim.Never {
			target := d.start.Add(d.quantize(dl.Duration()))
			if !target.Equal(armed) {
				if !armed.IsZero() && !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(time.Until(target))
				armed = target
			}
			timerC = timer.C
		} else if !armed.IsZero() {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			armed = time.Time{}
		}
		// The loop's one designated blocking site: nothing to do until a
		// packet, a timer deadline, a wake or a close arrives.
		//mpq:waitpoint
		select {
		case p := <-d.recvCh:
			if err := d.ingest(p); err != nil {
				return err
			}
		case <-timerC:
			armed = time.Time{}
			if err := d.advance(); err != nil {
				return err
			}
		case <-d.wakeCh:
			if err := d.advance(); err != nil {
				return err
			}
		case <-d.closeCh:
			d.flush()
			return ErrClosed
		}
	}
}

// quantize rounds a sim deadline up to the coalescing grid (anchored
// at the epoch), so deadlines within one granule share a wake-up.
//
//mpq:noescape
func (d *Driver) quantize(dl time.Duration) time.Duration {
	if d.coalesce <= 0 {
		return dl
	}
	q := d.coalesce
	return (dl + q - 1) / q * q
}

// ingest drains every datagram already queued by the readers into one
// batch, advances the clock once, and injects the whole batch — the
// batched-ingress half of the fast lane: one wake-up, one clock step,
// one egress flush for the entire burst.
//
//mpq:noescape
func (d *Driver) ingest(first packetIn) error {
	batch := append(d.inBatch[:0], first)
drain:
	for len(batch) < cap(batch) {
		select {
		case q := <-d.recvCh:
			batch = append(batch, q)
		default:
			break drain
		}
	}
	d.inBatch = batch[:0] // retain the scratch backing array
	if err := d.advance(); err != nil {
		recycleFrom(d, batch, 0)
		return err
	}
	d.Stats.IngressBatches++
	if n := uint64(len(batch)); n > d.Stats.MaxBatch {
		d.Stats.MaxBatch = n
	}
	for i := range batch {
		p := &batch[i]
		if p.kind != evData {
			// A socket health transition riding the ingress crossing;
			// fold it into stats/traces/PF state (fault.go).
			d.handleSockEvent(p.s, p.kind, p.err)
			*p = packetIn{}
			continue
		}
		h := d.handlers[p.s.local]
		if h == nil {
			d.Stats.NoHandler++
			d.putIngressBuf(p.buf)
			*p = packetIn{}
			continue
		}
		d.Stats.PacketsIn++
		d.Stats.BytesIn += uint64(len(p.buf))
		// The handler consumes the frames synchronously (see
		// core.RawDatagram); its wire.PutPacketBuf is a no-op on ring
		// buffers, so the buffer returns to the ring right here.
		h.HandleDatagram(core.RawDatagram(d.addrName(p.from), p.s.local, p.buf))
		d.putIngressBuf(p.buf)
		*p = packetIn{}
	}
	if d.fatal != nil {
		// The batch marked the last live socket failed: nothing can
		// move packets any more, so Run must surface it.
		return d.fatal
	}
	return nil
}

// recycleFrom returns the unprocessed tail of a batch to the ring
// (error exits only).
//
//mpq:noescape
func recycleFrom(d *Driver, batch []packetIn, from int) {
	for i := from; i < len(batch); i++ {
		if batch[i].buf != nil {
			d.putIngressBuf(batch[i].buf)
		}
		batch[i] = packetIn{}
	}
}

// advance moves sim time forward to the current wall-elapsed
// duration, firing every protocol timer due on the way. Sim time
// never moves backwards: a wake-up earlier than the current sim time
// (sub-timer-resolution packet bursts) is a no-op.
//
//mpq:noescape
func (d *Driver) advance() error {
	el := sim.Time(time.Since(d.start))
	if el > d.clock.Now() {
		return d.clock.RunUntil(el)
	}
	return nil
}

// structModeErr builds the misconfiguration error for a payload that
// arrived as a struct instead of wire bytes. Kept out of flush (and
// out of the inliner: the compiler attributes an inlined callee's
// escapes to the call-site line) so flush stays //mpq:noescape.
//
//go:noinline
func structModeErr(dg netem.Datagram) error {
	return fmt.Errorf("live: struct-mode payload %s->%s; endpoints must enable Config.WireSerialization", dg.From, dg.To)
}

// flush writes every egress datagram queued during the step to the
// socket owning its From address, in one pass over the persistent
// scratch slice (consecutive datagrams from one path reuse the socket
// and resolved-remote lookups). Write failures are packet loss
// (counted, not fatal), as a real wire would drop them.
//
//mpq:noescape
func (d *Driver) flush() error {
	if len(d.egress) == 0 {
		return nil
	}
	var (
		lastFrom netem.Addr
		lastSock *pathSocket
		lastTo   netem.Addr
		lastAP   netip.AddrPort
		lastOK   bool
	)
	var lastConn UDPConn
	var firstErr error
	for i := range d.egress {
		dg := d.egress[i]
		d.egress[i] = netem.Datagram{} // drop the payload reference
		if firstErr != nil {
			// Fatal misconfiguration already detected: the rest of the
			// batch is discarded unsent, counted so the loss is visible.
			d.Stats.EgressDiscards++
			if b, ok := core.RawBytes(dg); ok {
				wire.PutPacketBuf(b)
			}
			continue
		}
		b, ok := core.RawBytes(dg)
		if !ok {
			firstErr = structModeErr(dg)
			continue
		}
		if dg.From != lastFrom || lastSock == nil {
			lastFrom = dg.From
			lastSock = d.binder.socketFor(dg.From)
			lastConn = nil
			if lastSock != nil {
				lastConn = lastSock.loadConn()
			}
		}
		if dg.To != lastTo || !lastOK {
			lastTo = dg.To
			lastAP, lastOK = d.binder.remoteAddrPort(dg.To)
		}
		if lastSock == nil || !lastOK {
			d.Stats.NoRoute++
		} else if _, err := lastConn.WriteToUDPAddrPort(b, lastAP); err != nil {
			d.noteWriteErr(lastSock, err)
		} else {
			d.Stats.PacketsOut++
			d.Stats.BytesOut += uint64(len(b))
			d.writeFails[lastSock.idx] = 0
		}
		wire.PutPacketBuf(b)
	}
	d.egress = d.egress[:0]
	return firstErr
}

// Flush writes any queued egress immediately (e.g. a CONNECTION_CLOSE
// sent after Run returned).
//
//mpq:confined run-loop
func (d *Driver) Flush() error { return d.flush() }

// UpdateSocketStats refreshes Stats.RcvQueueDrops from the kernel and
// Stats.CorruptDrops from the registered protocol handlers
// (best-effort; see Stats). Run calls it on exit; call it directly
// when reading stats without having driven the loop. Not safe
// concurrently with a running Run (it writes Stats).
//
//mpq:confined run-loop
func (d *Driver) UpdateSocketStats() {
	d.Stats.RcvQueueDrops = d.binder.kernelDrops()
	// Sum undecodable-ingress drops across the distinct handlers.
	// Iterate sockets (bind order) rather than the handlers map so the
	// walk is deterministic; several locals usually share one handler,
	// deduped by identity below.
	var seen []netem.Handler
	var total uint64
	for _, s := range d.binder.socks {
		h := d.handlers[s.local]
		if h == nil {
			continue
		}
		dup := false
		for _, prev := range seen {
			if prev == h {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen = append(seen, h)
		if cd, ok := h.(interface{ CorruptDrops() uint64 }); ok {
			total += cd.CorruptDrops()
		}
	}
	d.Stats.CorruptDrops = total
}

// Close shuts the driver down: sockets close (unblocking readers) and
// a concurrent Run returns ErrClosed. Safe to call from any goroutine
// and more than once.
func (d *Driver) Close() error {
	d.closeMu.Do(func() {
		close(d.closeCh)
		d.binder.closeSockets()
	})
	d.readers.Wait()
	return nil
}
