package core

import (
	"testing"
	"time"

	"mpquic/internal/netem"
	"mpquic/internal/recovery"
	"mpquic/internal/sim"
	"mpquic/internal/wire"
)

// newTestConn builds a connected multipath conn with two paths and
// hand-tuned RTT estimators for white-box scheduler tests.
func newTestConn(t *testing.T, cfg Config) *Conn {
	t.Helper()
	clock := sim.NewClock()
	nw := netem.New(clock, sim.NewRand(1))
	c := newConn(nw, RoleClient, 1, cfg, []netem.Addr{"a0", "a1"}, []netem.Addr{"b0", "b1"})
	c.addPath(0, "a0", "b0")
	c.addPath(1, "a1", "b1")
	c.handshakeComplete = true
	return c
}

func feedRTT(p *Path, rtt time.Duration) {
	p.est.Update(rtt, 0)
}

func TestScheduleLowestRTTPrefersFasterPath(t *testing.T) {
	c := newTestConn(t, DefaultConfig())
	p0, p1 := c.paths[0], c.paths[1]
	feedRTT(p0, 50*time.Millisecond)
	feedRTT(p1, 20*time.Millisecond)
	primary, dups := c.schedule()
	if primary != p1 {
		t.Fatalf("picked path %d, want the 20ms path", primary.ID)
	}
	if len(dups) != 0 {
		t.Fatal("no duplication targets expected: both paths measured")
	}
}

func TestScheduleDuplicatesOntoUnmeasuredPath(t *testing.T) {
	c := newTestConn(t, DefaultConfig())
	p0, p1 := c.paths[0], c.paths[1]
	feedRTT(p0, 30*time.Millisecond)
	// p1 has no RTT sample.
	primary, dups := c.schedule()
	if primary != p0 {
		t.Fatalf("primary %d, want measured path 0", primary.ID)
	}
	if len(dups) != 1 || dups[0] != p1 {
		t.Fatalf("duplication targets %v, want path 1", dups)
	}
}

func TestScheduleNoDupAblation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheduler = SchedLowestRTTNoDup
	c := newTestConn(t, cfg)
	feedRTT(c.paths[0], 30*time.Millisecond)
	_, dups := c.schedule()
	if len(dups) != 0 {
		t.Fatal("nodup scheduler produced duplicates")
	}
}

func TestScheduleSkipsPotentiallyFailed(t *testing.T) {
	c := newTestConn(t, DefaultConfig())
	p0, p1 := c.paths[0], c.paths[1]
	feedRTT(p0, 10*time.Millisecond)
	feedRTT(p1, 90*time.Millisecond)
	p0.potentiallyFailed = true
	primary, _ := c.schedule()
	if primary != p1 {
		t.Fatal("scheduler used a potentially-failed path")
	}
	// All paths PF: fall back to using them anyway.
	p1.potentiallyFailed = true
	primary, _ = c.schedule()
	if primary == nil {
		t.Fatal("all-PF fallback missing")
	}
}

func TestScheduleSkipsRemotePF(t *testing.T) {
	c := newTestConn(t, DefaultConfig())
	p0, p1 := c.paths[0], c.paths[1]
	feedRTT(p0, 10*time.Millisecond)
	feedRTT(p1, 90*time.Millisecond)
	p0.remotePF = true
	primary, _ := c.schedule()
	if primary != p1 {
		t.Fatal("scheduler used a remote-PF path")
	}
}

func TestScheduleRespectsCwnd(t *testing.T) {
	c := newTestConn(t, DefaultConfig())
	p0, p1 := c.paths[0], c.paths[1]
	feedRTT(p0, 10*time.Millisecond)
	feedRTT(p1, 90*time.Millisecond)
	// Fill path 0's window: scheduler must fall back to path 1.
	c.fillCwnd(p0)
	primary, _ := c.schedule()
	if primary != p1 {
		t.Fatal("scheduler ignored a full congestion window")
	}
	c.fillCwnd(p1)
	primary, _ = c.schedule()
	if primary != nil {
		t.Fatal("scheduler returned a path with no window space")
	}
}

// fillCwnd tracks fake in-flight packets until the window is full.
func (c *Conn) fillCwnd(p *Path) {
	for p.cwndAvailable(wire.MaxPacketSize) {
		p.space.OnPacketSent(&recovery.SentPacket{
			PN:              p.space.NextPacketNumber(),
			Size:            wire.MaxPacketSize + wire.UDPIPv4Overhead,
			SentTime:        c.now(),
			Retransmittable: true,
		})
	}
}

func TestScheduleRoundRobinRotates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheduler = SchedRoundRobin
	c := newTestConn(t, cfg)
	feedRTT(c.paths[0], 10*time.Millisecond)
	feedRTT(c.paths[1], 90*time.Millisecond)
	a, _ := c.schedule()
	b, _ := c.schedule()
	if a == b {
		t.Fatal("round-robin did not rotate")
	}
}

func TestScheduleBLESTWaitsInsteadOfBlocking(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheduler = SchedBLEST
	cfg.ConnWindow = 64 << 10 // tiny send window
	c := newTestConn(t, cfg)
	p0, p1 := c.paths[0], c.paths[1]
	feedRTT(p0, 10*time.Millisecond)
	feedRTT(p1, 500*time.Millisecond)
	// Fast path full; slow path free; the fast path could push the
	// whole 64 KB window within one slow-path RTT → BLEST waits.
	c.fillCwnd(p0)
	primary, _ := c.schedule()
	if primary != nil {
		t.Fatalf("BLEST used the blocking slow path (%v)", primary.ID)
	}
	// With an ample window it uses the slow path.
	c.connFC.UpdateSendLimit(1 << 30)
	primary, _ = c.schedule()
	if primary != p1 {
		t.Fatal("BLEST refused a safe slow path")
	}
}
