package analysis

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The escape gate turns the live lane's 0-allocs/packet claim into a
// static check: `go build -gcflags=-m` makes the compiler print its
// escape-analysis verdicts, and any "escapes to heap"/"moved to heap"
// diagnostic inside a function annotated //mpq:noescape fails the
// gate. Unlike testing.AllocsPerRun this covers every path through the
// function, not just the sampled one, and it runs from the build cache
// (the compiler replays the diagnostics without recompiling), so it is
// cheap enough for every CI run.
//
// One sharp edge, learned empirically: the compiler attributes an
// inlined callee's escapes to the CALL-SITE line in the caller. A
// //mpq:noescape function therefore must not inline allocating
// callees; outline cold allocating paths (error formatting, refills)
// into //go:noinline helpers.

// NoescapeFunc is one //mpq:noescape-annotated function: its name and
// the body's source-line range the gate polices.
type NoescapeFunc struct {
	Name      string // package-qualified, e.g. "live.(*Driver).ingest"
	File      string // absolute path
	StartLine int
	EndLine   int
}

// EscapeViolation is one compiler escape diagnostic inside a
// //mpq:noescape function.
type EscapeViolation struct {
	Func    NoescapeFunc
	File    string // absolute path of the diagnostic
	Line    int
	Col     int
	Message string // the compiler's text, e.g. "make([]byte, 2048) escapes to heap"
}

func (v EscapeViolation) String() string {
	return fmt.Sprintf("%s:%d:%d: %s in //mpq:noescape func %s",
		v.File, v.Line, v.Col, v.Message, v.Func.Name)
}

// EscapeReport is the outcome of one gate run.
type EscapeReport struct {
	// Funcs are the //mpq:noescape functions found, sorted by position.
	Funcs []NoescapeFunc
	// Violations are the escape diagnostics inside those functions.
	Violations []EscapeViolation
	// Skipped is non-empty when the toolchain produced no parseable
	// -gcflags=-m output; the caller should skip loudly, not fail.
	Skipped string
}

// escapeDiagRe matches one compiler diagnostic line: path:line:col: msg.
var escapeDiagRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// CheckEscapes runs the gate over the module at root for the given
// package patterns (default ./...). It returns an error only for
// infrastructure failures (the build itself failing, unreadable
// sources); violations are data, not errors.
func CheckEscapes(root string, patterns ...string) (*EscapeReport, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	funcs, err := collectNoescapeFuncs(root, patterns)
	if err != nil {
		return nil, err
	}
	report := &EscapeReport{Funcs: funcs}

	args := append([]string{"build", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m %v: %v\n%s", patterns, err, stderr.String())
	}

	parsed := 0
	scanner := bufio.NewScanner(&stderr)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	for scanner.Scan() {
		m := escapeDiagRe.FindStringSubmatch(scanner.Text())
		if m == nil {
			continue // "# pkg" headers and wrapped lines
		}
		parsed++
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(root, file)
		}
		file = filepath.Clean(file)
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		for _, fn := range funcs {
			if fn.File == file && fn.StartLine <= line && line <= fn.EndLine {
				report.Violations = append(report.Violations, EscapeViolation{
					Func: fn, File: file, Line: line, Col: col, Message: msg,
				})
			}
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("reading -gcflags=-m output: %v", err)
	}
	// A healthy -m run prints hundreds of "does not escape"/"inlining"
	// lines. Zero parseable diagnostics means this toolchain's output is
	// not something the gate understands — skip loudly rather than
	// vacuously pass.
	if parsed == 0 {
		report.Skipped = "go build -gcflags=-m produced no parseable diagnostics; toolchain output format not recognized"
	}
	sort.Slice(report.Violations, func(i, j int) bool {
		a, b := report.Violations[i], report.Violations[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return report, nil
}

// collectNoescapeFuncs parses (syntax-only) every non-test file of the
// packages matching patterns and records the //mpq:noescape functions'
// body line ranges.
func collectNoescapeFuncs(root string, patterns []string) ([]NoescapeFunc, error) {
	listed, err := goList(root, patterns...)
	if err != nil {
		return nil, err
	}
	var funcs []NoescapeFunc
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		for _, name := range p.GoFiles {
			path := filepath.Join(p.Dir, name)
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			pkgName := f.Name.Name
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd.Doc == nil {
					continue
				}
				noescape := false
				for _, d := range groupDirectives(fd.Doc) {
					if d.name == "noescape" {
						noescape = true
					}
				}
				if !noescape {
					continue
				}
				funcs = append(funcs, NoescapeFunc{
					Name:      pkgName + "." + funcDisplayName(fd),
					File:      filepath.Clean(path),
					StartLine: fset.Position(fd.Body.Lbrace).Line,
					EndLine:   fset.Position(fd.Body.Rbrace).Line,
				})
			}
		}
	}
	sort.Slice(funcs, func(i, j int) bool {
		if funcs[i].File != funcs[j].File {
			return funcs[i].File < funcs[j].File
		}
		return funcs[i].StartLine < funcs[j].StartLine
	})
	return funcs, nil
}

// funcDisplayName renders a FuncDecl name with its receiver, matching
// the compiler's "(*Driver).ingest" style.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	var b strings.Builder
	switch t := recv.(type) {
	case *ast.StarExpr:
		b.WriteString("(*")
		if id, ok := t.X.(*ast.Ident); ok {
			b.WriteString(id.Name)
		}
		b.WriteString(")")
	case *ast.Ident:
		b.WriteString(t.Name)
	default:
		b.WriteString("(?)")
	}
	b.WriteString(".")
	b.WriteString(fd.Name.Name)
	return b.String()
}
