// Package analysis is a stdlib-only static-analysis framework plus the
// mpq-vet analyzer suite that proves the simulator's determinism
// invariants and the live fast lane's concurrency invariants.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis — an
// Analyzer is a named Run function over a type-checked package — but is
// self-contained: packages are loaded with `go list -export` plus the
// standard go/importer, so the suite builds offline with no
// third-party dependencies. Each analyzer enforces one invariant the
// scenario-grid artifacts or the live throughput numbers depend on
// (see DESIGN.md, "Determinism invariants" and "Live concurrency
// invariants"):
//
//	walltime     no wall-clock reads outside the perf harness
//	globalrand   no math/rand or crypto/rand; use the seeded sim PRNG
//	maporder     no map-iteration order leaking into schedules/results
//	poolsafety   no use of pooled packet buffers after PutPacketBuf,
//	             no DecodeBorrowed aliases escaping the handler
//	eventhandle  no *sim.Event handles held outside sim.Timer
//	confine      //mpq:confined members touched only from their
//	             goroutine domain, rooted at //mpq:entry functions
//	ringsafety   //mpq:ring buffers recycled exactly once per trip,
//	             never escaping the ingress iteration
//	blocking     run-loop-domain code never blocks outside the
//	             //mpq:waitpoint
//	annotation   every //mpq: directive is well-formed and anchored
//	             where its analyzer will actually see it
//
// The //mpq:noescape directive is consumed by a separate
// compiler-assisted gate (escape.go, cmd/mpq-escape) rather than an
// Analyzer, since it needs `go build -gcflags=-m` output.
//
// A finding is suppressed by an explicit, audited annotation on the
// offending line (or the line above):
//
//	//mpqvet:allow <analyzer> <reason>
//
// The reason is mandatory; a bare allow is itself an error, and so is
// a stale allow that no longer matches any diagnostic. The
// cmd/mpq-vet driver runs every analyzer over a package pattern and
// exits non-zero on any unsuppressed diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant check. It is the stdlib
// counterpart of golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //mpqvet:allow annotations. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the analyzer to one package and reports findings
	// through pass.Report. The return value is reserved for future
	// fact passing and is currently always (nil, nil).
	Run func(pass *Pass) (any, error)
}

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's non-test syntax trees, in file-name
	// order (deterministic across runs).
	Files []*ast.File
	// PkgPath is the package's import path ("mpquic/internal/sim").
	PkgPath   string
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding: an invariant violation at a position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// All returns the mpq-vet analyzer suite in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{
		Walltime, GlobalRand, MapOrder, PoolSafety, EventHandle,
		Confine, RingSafety, Blocking, Annotation,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAnalyzers applies each analyzer to pkg and returns the combined
// unsuppressed diagnostics sorted by file position, plus any errors
// raised for malformed //mpqvet:allow annotations.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			PkgPath:   pkg.PkgPath,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.PkgPath, a.Name, err)
		}
	}
	diags, err := filterSuppressed(pkg, diags, ran)
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, err
}
