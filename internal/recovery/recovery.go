// Package recovery implements QUIC loss detection for one packet-number
// space. Multipath QUIC gives each path its own space (§3), so an
// MPQUIC connection owns one recovery.Space per path while single-path
// QUIC owns exactly one.
//
// Because retransmissions always use fresh packet numbers, every ACK
// yields an unambiguous RTT sample (§2) — the property the paper
// repeatedly credits for MPQUIC's scheduling precision.
package recovery

import (
	"time"

	"mpquic/internal/rtt"
	"mpquic/internal/wire"
)

// Loss-detection constants (quic-go era values).
const (
	// PacketThreshold declares a packet lost when this many later
	// packets were acknowledged ("fast retransmit").
	PacketThreshold = 3
	// timeThresholdNum/Den scale smoothed RTT for time-based loss
	// ("early retransmit"): 9/8 · max(srtt, latest).
	timeThresholdNum = 9
	timeThresholdDen = 8
)

// SentPacket records one in-flight packet.
type SentPacket struct {
	PN     wire.PacketNumber
	Frames []wire.Frame
	// Size is the congestion-controlled size (full datagram bytes).
	Size int
	// SentTime is virtual time since simulation epoch.
	SentTime time.Duration
	// Retransmittable mirrors wire.Packet.IsRetransmittable.
	Retransmittable bool
	// Reinjected marks packets whose frames were proactively
	// duplicated onto another path (tail reinjection), so each packet
	// is reinjected at most once.
	Reinjected bool

	acked, lost bool
}

// Space tracks the sent half of one packet-number space.
type Space struct {
	est *rtt.Estimator

	packets []*SentPacket // PN-ordered; head-trimmed as packets settle
	index   map[wire.PacketNumber]*SentPacket

	nextPN        wire.PacketNumber
	largestAcked  wire.PacketNumber
	bytesInFlight int
	// retransmittableInFlight counts unsettled retransmittable packets.
	retransmittableInFlight int
	lossTime                time.Duration // earliest time-threshold deadline (0 = none)

	// Congestion-event filtering: one decrease per window.
	largestSentAtLastCutback wire.PacketNumber
	hasCutback               bool

	// Stats for traces and experiments.
	Stats Stats
}

// Stats counts per-space recovery activity.
type Stats struct {
	PacketsSent   uint64
	PacketsAcked  uint64
	PacketsLost   uint64
	BytesSent     uint64
	BytesAcked    uint64
	BytesLost     uint64
	RTOCount      uint64
	CongestionCut uint64
}

// NewSpace builds a space feeding RTT samples into est.
func NewSpace(est *rtt.Estimator) *Space {
	return &Space{
		est:          est,
		index:        make(map[wire.PacketNumber]*SentPacket),
		largestAcked: wire.InvalidPacketNumber,
	}
}

// NextPacketNumber allocates the next monotonically increasing PN.
func (s *Space) NextPacketNumber() wire.PacketNumber {
	pn := s.nextPN
	s.nextPN++
	return pn
}

// LargestAcked returns the largest PN the peer acknowledged, or
// wire.InvalidPacketNumber.
func (s *Space) LargestAcked() wire.PacketNumber { return s.largestAcked }

// LargestSent returns the highest allocated PN + 1 (i.e. next to send).
func (s *Space) LargestSent() wire.PacketNumber { return s.nextPN }

// BytesInFlight reports unacknowledged, non-lost bytes.
func (s *Space) BytesInFlight() int { return s.bytesInFlight }

// HasRetransmittableInFlight reports whether any unsettled packet
// needs reliability (drives RTO arming).
func (s *Space) HasRetransmittableInFlight() bool { return s.retransmittableInFlight > 0 }

// RTT returns the estimator bound to this space's path.
func (s *Space) RTT() *rtt.Estimator { return s.est }

// OnPacketSent records a transmission. The PN must come from
// NextPacketNumber (strictly increasing).
func (s *Space) OnPacketSent(sp *SentPacket) {
	if len(s.packets) > 0 && sp.PN <= s.packets[len(s.packets)-1].PN {
		panic("recovery: non-monotonic packet number")
	}
	s.packets = append(s.packets, sp)
	s.index[sp.PN] = sp
	s.bytesInFlight += sp.Size
	if sp.Retransmittable {
		s.retransmittableInFlight++
	}
	s.Stats.PacketsSent++
	s.Stats.BytesSent += uint64(sp.Size)
}

// AckResult reports the outcome of processing one ACK frame.
type AckResult struct {
	NewlyAcked []*SentPacket
	Lost       []*SentPacket
	// HasRTTSample is set when the largest acked packet was newly
	// acked (sample = now − sentTime − ackDelay, applied to the
	// estimator already).
	HasRTTSample bool
	SampleRTT    time.Duration
	// CongestionEvent is set when Lost contains a packet sent after
	// the last window cutback — the caller should invoke the
	// congestion controller exactly once.
	CongestionEvent bool
}

// OnAck processes an ACK frame for this space at virtual time now.
func (s *Space) OnAck(ack *wire.AckFrame, now time.Duration) AckResult {
	var res AckResult
	largest := ack.LargestAcked()
	if largest == wire.InvalidPacketNumber {
		return res
	}
	if s.largestAcked == wire.InvalidPacketNumber || largest > s.largestAcked {
		s.largestAcked = largest
	}
	// Collect newly acked packets.
	for _, sp := range s.packets {
		if sp.acked || sp.lost {
			continue
		}
		if sp.PN > largest {
			break
		}
		if ack.Acks(sp.PN) {
			sp.acked = true
			s.settle(sp)
			s.Stats.PacketsAcked++
			s.Stats.BytesAcked += uint64(sp.Size)
			res.NewlyAcked = append(res.NewlyAcked, sp)
			if sp.PN == largest {
				sample := now - sp.SentTime
				if sample > 0 {
					s.est.Update(sample, ack.AckDelay)
					res.HasRTTSample = true
					res.SampleRTT = sample
				}
			}
		}
	}
	if len(res.NewlyAcked) > 0 {
		s.est.ResetBackoff()
	}
	res.Lost = s.detectLost(now)
	s.trim()
	if len(res.Lost) > 0 {
		res.CongestionEvent = s.registerCongestion(res.Lost)
	}
	return res
}

// registerCongestion applies once-per-window filtering and returns
// whether the controller should decrease.
func (s *Space) registerCongestion(lost []*SentPacket) bool {
	var largestLost wire.PacketNumber
	for _, sp := range lost {
		if sp.PN > largestLost {
			largestLost = sp.PN
		}
	}
	if !s.hasCutback || largestLost >= s.largestSentAtLastCutback {
		s.largestSentAtLastCutback = s.nextPN
		s.hasCutback = true
		s.Stats.CongestionCut++
		return true
	}
	return false
}

// detectLost applies packet- and time-threshold loss detection.
func (s *Space) detectLost(now time.Duration) []*SentPacket {
	if s.largestAcked == wire.InvalidPacketNumber {
		return nil
	}
	var lost []*SentPacket
	s.lossTime = 0
	threshold := s.timeThreshold()
	for _, sp := range s.packets {
		if sp.acked || sp.lost {
			continue
		}
		if sp.PN >= s.largestAcked {
			break
		}
		pnLost := s.largestAcked >= sp.PN+PacketThreshold
		timeLost := threshold > 0 && sp.SentTime+threshold <= now
		if pnLost || timeLost {
			sp.lost = true
			s.settle(sp)
			s.Stats.PacketsLost++
			s.Stats.BytesLost += uint64(sp.Size)
			lost = append(lost, sp)
			continue
		}
		if threshold > 0 && s.lossTime == 0 {
			s.lossTime = sp.SentTime + threshold
		}
	}
	return lost
}

func (s *Space) timeThreshold() time.Duration {
	srtt := s.est.SmoothedRTT()
	if l := s.est.LatestRTT(); l > srtt {
		srtt = l
	}
	if srtt == 0 {
		return 0
	}
	return srtt * timeThresholdNum / timeThresholdDen
}

// LossTime returns the deadline at which OnLossTimer should run, or 0.
func (s *Space) LossTime() time.Duration { return s.lossTime }

// OnLossTimer re-runs time-threshold detection (the early-retransmit
// timer fired). The caller applies a congestion event if reported.
func (s *Space) OnLossTimer(now time.Duration) ([]*SentPacket, bool) {
	lost := s.detectLost(now)
	s.trim()
	if len(lost) == 0 {
		return nil, false
	}
	return lost, s.registerCongestion(lost)
}

// OnRTO declares every outstanding retransmittable packet lost — the
// go-back behavior after a retransmission timeout — and backs off the
// estimator. The caller must invoke the congestion controller's OnRTO.
func (s *Space) OnRTO(now time.Duration) []*SentPacket {
	var lost []*SentPacket
	for _, sp := range s.packets {
		if sp.acked || sp.lost {
			continue
		}
		sp.lost = true
		s.settle(sp)
		s.Stats.PacketsLost++
		s.Stats.BytesLost += uint64(sp.Size)
		lost = append(lost, sp)
	}
	s.trim()
	s.est.Backoff()
	s.Stats.RTOCount++
	return lost
}

// settle removes a packet from in-flight accounting.
func (s *Space) settle(sp *SentPacket) {
	s.bytesInFlight -= sp.Size
	if sp.Retransmittable {
		s.retransmittableInFlight--
	}
	delete(s.index, sp.PN)
}

// trim drops settled packets from the head of the history.
func (s *Space) trim() {
	i := 0
	for i < len(s.packets) && (s.packets[i].acked || s.packets[i].lost) {
		i++
	}
	if i > 0 {
		s.packets = s.packets[i:]
	}
	// Compact interior garbage occasionally.
	if len(s.packets) > 64 {
		settled := 0
		for _, sp := range s.packets {
			if sp.acked || sp.lost {
				settled++
			}
		}
		if settled > len(s.packets)/2 {
			kept := s.packets[:0]
			for _, sp := range s.packets {
				if !sp.acked && !sp.lost {
					kept = append(kept, sp)
				}
			}
			s.packets = kept
		}
	}
}

// OldestUnackedSentTime reports the send time of the oldest unsettled
// packet; ok is false when nothing is outstanding. RTO timers anchored
// here cannot be deferred by further transmissions on the same path.
func (s *Space) OldestUnackedSentTime() (time.Duration, bool) {
	for _, sp := range s.packets {
		if !sp.acked && !sp.lost {
			return sp.SentTime, true
		}
	}
	return 0, false
}

// Outstanding returns the unsettled packets (oldest first).
func (s *Space) Outstanding() []*SentPacket {
	var out []*SentPacket
	for _, sp := range s.packets {
		if !sp.acked && !sp.lost {
			out = append(out, sp)
		}
	}
	return out
}
