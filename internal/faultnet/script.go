package faultnet

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Op is one scripted fault transition.
type Op int

// Scripted fault operations.
const (
	// OpKill permanently kills the path's current socket: the
	// underlying conn is closed and every later operation fails with
	// ErrSocketDead — until a rebind wraps a fresh socket after an
	// OpRestore.
	OpKill Op = iota
	// OpRestore ends a kill window: sockets wrapped from now on are
	// healthy. It cannot resurrect the killed socket itself.
	OpRestore
	// OpBlackholeOn starts a blackhole window: reads swallow every
	// datagram, writes report success and send nothing.
	OpBlackholeOn
	// OpBlackholeOff ends the innermost blackhole window.
	OpBlackholeOff
)

// String names the operation (script round-trips and test output).
func (o Op) String() string {
	switch o {
	case OpKill:
		return "kill"
	case OpRestore:
		return "restore"
	case OpBlackholeOn:
		return "blackhole-on"
	case OpBlackholeOff:
		return "blackhole-off"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Event is one scripted fault at a clock offset, applied to one path.
type Event struct {
	At   time.Duration
	Path int
	Op   Op
}

// Script is a deterministic fault timeline, the faultnet counterpart
// of netem/dynamics.Script (which mutates emulated links where this
// mutates real sockets).
type Script struct {
	// Events, in any order; consumers sort by At (ties keep listed
	// order).
	Events []Event
}

// Then appends an event and returns the extended script (builder
// style; the receiver is not mutated).
func (s Script) Then(at time.Duration, path int, op Op) Script {
	out := Script{Events: append(append([]Event(nil), s.Events...), Event{At: at, Path: path, Op: op})}
	return out
}

// And merges another script's events (builder style).
func (s Script) And(other Script) Script {
	return Script{Events: append(append([]Event(nil), s.Events...), other.Events...)}
}

// KillAt scripts the §4.3 handover fault on the live path: the
// socket dies permanently at the given offset.
func KillAt(path int, at time.Duration) Script {
	return Script{Events: []Event{{At: at, Path: path, Op: OpKill}}}
}

// RestoreAt scripts the end of a kill window: rebinds after this
// offset succeed again.
func RestoreAt(path int, at time.Duration) Script {
	return Script{Events: []Event{{At: at, Path: path, Op: OpRestore}}}
}

// Blackhole scripts a traffic blackhole starting at the given offset;
// dur <= 0 leaves it open forever.
func Blackhole(path int, at, dur time.Duration) Script {
	s := Script{Events: []Event{{At: at, Path: path, Op: OpBlackholeOn}}}
	if dur > 0 {
		s.Events = append(s.Events, Event{At: at + dur, Path: path, Op: OpBlackholeOff})
	}
	return s
}

// eventsFor extracts one path's events, sorted by At (stable, so
// same-instant events keep their listed order).
func (s Script) eventsFor(path int) []Event {
	var out []Event
	for _, ev := range s.Events {
		if ev.Path == path {
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Parse decodes the -chaos flag grammar: semicolon-separated clauses,
// each either a rate/seed setting or a scripted event.
//
//	seed=42                  fault-stream seed (a bare integer works too)
//	drop=0.01                probabilistic rates, in [0,1]
//	dup=0.01
//	corrupt=0.005
//	readerr=0.02
//	writeerr=0.02
//	kill@300ms:0             kill path 0's socket at t=300ms
//	restore@1.2s:0           end path 0's kill window at t=1.2s
//	blackhole@250ms:1        blackhole path 1 from t=250ms, forever
//	blackhole@250ms+500ms:1  ... for 500ms
//
// Example: "seed=7;drop=0.01;kill@300ms:0;restore@1.2s:0".
func Parse(spec string) (seed uint64, rates Rates, script Script, err error) {
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if strings.Contains(clause, "@") {
			ev, perr := parseEvent(clause)
			if perr != nil {
				return 0, Rates{}, Script{}, perr
			}
			script.Events = append(script.Events, ev...)
			continue
		}
		key, val, found := strings.Cut(clause, "=")
		if !found {
			// A bare integer clause is a seed.
			n, perr := strconv.ParseUint(clause, 10, 64)
			if perr != nil {
				return 0, Rates{}, Script{}, fmt.Errorf("faultnet: bad clause %q (want key=value, an event, or a seed)", clause)
			}
			seed = n
			continue
		}
		if key == "seed" {
			n, perr := strconv.ParseUint(val, 10, 64)
			if perr != nil {
				return 0, Rates{}, Script{}, fmt.Errorf("faultnet: bad seed %q", val)
			}
			seed = n
			continue
		}
		rate, perr := strconv.ParseFloat(val, 64)
		if perr != nil || rate < 0 || rate > 1 {
			return 0, Rates{}, Script{}, fmt.Errorf("faultnet: bad rate %q (want a probability in [0,1])", clause)
		}
		switch key {
		case "drop":
			rates.Drop = rate
		case "dup":
			rates.Dup = rate
		case "corrupt":
			rates.Corrupt = rate
		case "readerr":
			rates.ReadErr = rate
		case "writeerr":
			rates.WriteErr = rate
		default:
			return 0, Rates{}, Script{}, fmt.Errorf("faultnet: unknown rate %q", key)
		}
	}
	return seed, rates, script, nil
}

// parseEvent decodes one "op@time[+dur]:path" clause into its events.
func parseEvent(clause string) ([]Event, error) {
	name, rest, _ := strings.Cut(clause, "@")
	times, pathStr, found := strings.Cut(rest, ":")
	if !found {
		return nil, fmt.Errorf("faultnet: event %q needs a :path suffix", clause)
	}
	path, err := strconv.Atoi(pathStr)
	if err != nil || path < 0 {
		return nil, fmt.Errorf("faultnet: bad path in %q", clause)
	}
	atStr, durStr, hasDur := strings.Cut(times, "+")
	at, err := time.ParseDuration(atStr)
	if err != nil || at < 0 {
		return nil, fmt.Errorf("faultnet: bad time in %q", clause)
	}
	var dur time.Duration
	if hasDur {
		if dur, err = time.ParseDuration(durStr); err != nil || dur <= 0 {
			return nil, fmt.Errorf("faultnet: bad duration in %q", clause)
		}
	}
	switch name {
	case "kill":
		return KillAt(path, at).Events, nil
	case "restore":
		return RestoreAt(path, at).Events, nil
	case "blackhole":
		return Blackhole(path, at, dur).Events, nil
	default:
		return nil, fmt.Errorf("faultnet: unknown event %q (want kill, restore or blackhole)", name)
	}
}
