// Package globalrand exercises the globalrand analyzer: any import of
// math/rand, math/rand/v2 or crypto/rand is flagged at the import,
// and //mpqvet:allow suppresses a finding.
package globalrand

import (
	crand "crypto/rand"   // want `crypto/rand is nondeterministic`
	"math/rand"           // want `math/rand's global state breaks same-seed reproduction`
	randv2 "math/rand/v2" //mpqvet:allow globalrand exemplar suppression for the analyzer tests

	"mpquic/internal/sim"
)

func draws() (int, int) {
	b := make([]byte, 8)
	_, _ = crand.Read(b)
	return rand.Int(), randv2.Int()
}

// good draws from the scenario-seeded simulator PRNG.
func good(seed uint64) float64 {
	return sim.NewRand(seed).Float64()
}
