package expdesign

import (
	"runtime"
	"sync"

	"mpquic/internal/stats"
)

// Repetitions is the paper's per-point repetition count (median of 3).
const Repetitions = 3

// Transfer sizes of the evaluation.
const (
	// LargeTransfer is the 20 MB download of §4.1.
	LargeTransfer = 20 << 20
	// ShortTransfer is the 256 KB download of §4.2.
	ShortTransfer = 256 << 10
)

// ScenarioResult holds the eight median runs of one scenario:
// {TCP, QUIC, MPTCP, MPQUIC} × {start on path 0, start on path 1}.
type ScenarioResult struct {
	Scenario Scenario
	// Indexed [protocol][startPath].
	Runs [4][2]RunResult
}

// GridConfig parameterizes a figure-grid execution.
type GridConfig struct {
	Class     Class
	Scenarios int    // per-class scenario count (253 in the paper)
	Size      uint64 // transfer size
	Reps      int    // repetitions per point (3 in the paper)
	Workers   int    // parallel simulations (defaults to GOMAXPROCS)
	// Progress, when non-nil, is called after each completed scenario.
	Progress func(done, total int)
}

// FigureData is the raw material of one figure: all scenario results
// of one (class, size) grid.
type FigureData struct {
	Class   string
	Size    uint64
	Results []ScenarioResult
}

// RunGrid executes the full grid for one class: every scenario × 4
// protocols × 2 initial paths × Reps repetitions, in parallel.
func RunGrid(cfg GridConfig) FigureData {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Reps <= 0 {
		cfg.Reps = Repetitions
	}
	scenarios := GenerateScenarios(cfg.Class, cfg.Scenarios)
	results := make([]ScenarioResult, len(scenarios))

	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	jobs := make(chan int)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				sc := scenarios[i]
				var sr ScenarioResult
				sr.Scenario = sc
				for proto := ProtoTCP; proto <= ProtoMPQUIC; proto++ {
					for start := 0; start < 2; start++ {
						seed := cfg.Class.Seed*1_000_003 + uint64(sc.ID)*8191 +
							uint64(proto)*131 + uint64(start)*17 + 1
						sr.Runs[proto][start] = RunMedian(sc, proto, cfg.Size, start, cfg.Reps, seed)
					}
				}
				results[i] = sr
				if cfg.Progress != nil {
					mu.Lock()
					done++
					d := done
					mu.Unlock()
					cfg.Progress(d, len(scenarios))
				}
			}
		}()
	}
	for i := range scenarios {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return FigureData{Class: cfg.Class.Name, Size: cfg.Size, Results: results}
}

// TimeRatios extracts the Fig. 3/5/8/9 CDF inputs: for each of the
// 2×N (scenario, initial path) sims, the ratio of the TCP-family time
// to the QUIC-family time. Ratio > 1 means QUIC-family is faster.
func (fd FigureData) TimeRatios() (singlePath, multiPath []float64) {
	for _, sr := range fd.Results {
		for start := 0; start < 2; start++ {
			tTCP := sr.Runs[ProtoTCP][start].Elapsed.Seconds()
			tQUIC := sr.Runs[ProtoQUIC][start].Elapsed.Seconds()
			tMPTCP := sr.Runs[ProtoMPTCP][start].Elapsed.Seconds()
			tMPQUIC := sr.Runs[ProtoMPQUIC][start].Elapsed.Seconds()
			if tQUIC > 0 {
				singlePath = append(singlePath, tTCP/tQUIC)
			}
			if tMPQUIC > 0 {
				multiPath = append(multiPath, tMPTCP/tMPQUIC)
			}
		}
	}
	return singlePath, multiPath
}

// Family selects a single-path/multipath protocol pair for the
// experimental aggregation benefit.
type Family int

// The two protocol families compared in Figs. 4/6/7/10.
const (
	FamilyTCP  Family = iota // MPTCP vs TCP
	FamilyQUIC               // MPQUIC vs QUIC
)

func (f Family) String() string {
	if f == FamilyTCP {
		return "MPTCP vs. TCP"
	}
	return "MPQUIC vs. QUIC"
}

// EBen computes the experimental aggregation benefit of §4.1:
//
//	        Gm − Gmax
//	EBen = ───────────────   if Gm ≥ Gmax,
//	        (ΣGi) − Gmax
//
//	        Gm − Gmax
//	EBen = ───────────       otherwise,
//	          Gmax
//
// where Gi are the single-path goodputs, Gmax their maximum, and Gm
// the multipath goodput. 0 ⇒ multipath equals the best single path;
// 1 ⇒ full aggregation; −1 ⇒ the multipath transfer failed.
func EBen(gm float64, gs []float64) float64 {
	gmax, sum := 0.0, 0.0
	for _, g := range gs {
		sum += g
		if g > gmax {
			gmax = g
		}
	}
	if gmax <= 0 {
		return 0
	}
	if gm >= gmax {
		den := sum - gmax
		if den <= 0 {
			return 0
		}
		return (gm - gmax) / den
	}
	return (gm - gmax) / gmax
}

// AggBenefits extracts the Fig. 4/6/7/10 boxes for one family, split
// by whether the multipath connection started on the best or the
// worst performing path (measured by single-path goodput, as in [1]).
func (fd FigureData) AggBenefits(f Family) (bestFirst, worstFirst []float64) {
	spProto, mpProto := ProtoTCP, ProtoMPTCP
	if f == FamilyQUIC {
		spProto, mpProto = ProtoQUIC, ProtoMPQUIC
	}
	for _, sr := range fd.Results {
		gs := []float64{
			sr.Runs[spProto][0].GoodputBps,
			sr.Runs[spProto][1].GoodputBps,
		}
		best := 0
		if gs[1] > gs[0] {
			best = 1
		}
		for start := 0; start < 2; start++ {
			gm := sr.Runs[mpProto][start].GoodputBps
			e := EBen(gm, gs)
			if start == best {
				bestFirst = append(bestFirst, e)
			} else {
				worstFirst = append(worstFirst, e)
			}
		}
	}
	return bestFirst, worstFirst
}

// BenefitSummary renders the headline statistics the paper quotes for
// a family: the fraction of scenarios (both initial paths pooled)
// where multipath beats the best single path (EBen > 0).
func (fd FigureData) BenefitSummary(f Family) (fractionPositive float64, box stats.Box) {
	best, worst := fd.AggBenefits(f)
	all := append(append([]float64{}, best...), worst...)
	return stats.FractionAbove(all, 0), stats.BoxOf(all)
}
