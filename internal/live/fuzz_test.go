package live

// FuzzLiveIngress pushes arbitrary bytes through the same path a real
// datagram takes from a reader goroutine into the protocol: ingest →
// handler HandleDatagram → wire decode. The properties under test are
// the live driver's corruption contract (fault.go): no input may panic
// the stack, every ring buffer is recycled, and any datagram whose
// header does not even parse is counted as a corrupt drop rather than
// vanishing. Runs socket-free — the driver under test is a literal with
// a synthetic path slot, so the fuzzer needs no UDP permissions.

import (
	"net/netip"
	"testing"
	"time"

	"mpquic/internal/core"
	"mpquic/internal/netem"
	"mpquic/internal/sim"
	"mpquic/internal/wire"
)

// fuzzIngressDriver builds a minimal socket-less driver whose ingest
// path is fully functional: ring, batch scratch, clock and a registered
// listener handler, but no binder and no reader goroutines.
func fuzzIngressDriver() (*Driver, *pathSocket, *core.Listener) {
	d := &Driver{
		clock:      sim.NewClock(),
		handlers:   make(map[netem.Addr]netem.Handler),
		recvCh:     make(chan packetIn, 4),
		freeCh:     make(chan []byte, 4),
		wakeCh:     make(chan struct{}, 1),
		closeCh:    make(chan struct{}),
		inBatch:    make([]packetIn, 0, 4),
		addrNames:  make(map[netip.AddrPort]netem.Addr),
		sockFailed: make([]bool, 1),
		writeFails: make([]int, 1),
		start:      time.Now(),
		started:    true,
	}
	s := &pathSocket{idx: 0, local: "127.0.0.1:9"}
	cfg := core.DefaultSinglePathConfig()
	cfg.MaxPaths = 1
	cfg.WireSerialization = true
	lis := core.Listen(d, cfg, []netem.Addr{s.local})
	return d, s, lis
}

// fuzzIngressSeeds is the seed corpus: packets a live peer would
// actually send (handshake CHLO, multipath stream data), plus
// truncated and bit-flipped variants of them — the exact shapes
// faultnet's corrupt injection produces.
func fuzzIngressSeeds() [][]byte {
	chlo := (&wire.Packet{
		Header: wire.Header{ConnID: 7, Handshake: true, PacketNumber: 1},
		Frames: []wire.Frame{&wire.HandshakeFrame{Message: wire.HandshakeCHLO, Payload: []byte("chlo")}},
	}).Encode(nil)
	data := (&wire.Packet{
		Header: wire.Header{ConnID: 7, Multipath: true, PathID: 0, PacketNumber: 2},
		Frames: []wire.Frame{&wire.StreamFrame{StreamID: 3, Data: []byte("GET 1024\n")}},
	}).Encode(nil)
	flipped := append([]byte(nil), chlo...)
	flipped[len(flipped)/2] ^= 0x40
	seeds := [][]byte{
		chlo,
		data,
		chlo[:len(chlo)/2],
		data[:1],
		flipped,
		{},
		{0xff},
	}
	return seeds
}

func FuzzLiveIngress(f *testing.F) {
	for _, s := range fuzzIngressSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		d, s, lis := fuzzIngressDriver()
		if len(in) > ingressBufCap {
			in = in[:ingressBufCap]
		}
		// Ring-shaped buffer, exactly as readOne hands them over.
		buf := append(make([]byte, 0, ingressBufCap), in...)
		from := netip.MustParseAddrPort("127.0.0.1:5000")

		before := lis.CorruptDrops()
		if err := d.ingest(packetIn{s: s, from: from, buf: buf}); err != nil {
			t.Fatalf("ingest returned a driver-fatal error for arbitrary input: %v", err)
		}
		if d.Stats.PacketsIn != 1 {
			t.Fatalf("PacketsIn = %d, want 1", d.Stats.PacketsIn)
		}
		// The corruption contract: a datagram whose header does not
		// parse must be dropped *and counted*, never lost silently.
		// (Inputs that parse further may still be counted by deeper
		// decode sites; this asserts the guaranteed lower bound.)
		if _, _, err := wire.ParseHeader(in, 0); err != nil {
			if lis.CorruptDrops() == before {
				t.Fatalf("unparsable header not counted as corrupt drop (input %x)", in)
			}
		}
		// Any response the handler queued is discarded here — there is
		// no socket — but the buffers must still return to the pool.
		for i := range d.egress {
			if b, ok := core.RawBytes(d.egress[i]); ok {
				wire.PutPacketBuf(b)
			}
		}
	})
}
