# Convenience targets; see scripts/check.sh for the pre-commit gate and
# scripts/bench.sh for the perf harness.

.PHONY: build test bench bench-smoke check

build:
	go build ./...

test:
	go test ./...

bench:
	sh scripts/bench.sh

bench-smoke:
	sh scripts/bench.sh -smoke

check:
	sh scripts/check.sh
