// Package crypto provides the security substrate of the reproduction:
// a 1-RTT QUIC-crypto-style handshake model and real AEAD packet
// protection (AES-128-GCM from the standard library).
//
// The paper's §3 notes that reusing a packet number on two paths would
// reuse the cryptographic nonce, and suggests involving the Path ID in
// the nonce computation. This package implements exactly that: the
// 96-bit nonce is IV ⊕ (PathID‖PacketNumber), so equal packet numbers
// on different paths never collide.
package crypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"mpquic/internal/wire"
)

// ErrDecrypt is returned when AEAD authentication fails.
var ErrDecrypt = errors.New("crypto: message authentication failed")

// KeySize is the AES-128 key size in bytes.
const KeySize = 16

// ivSize is the GCM nonce size.
const ivSize = 12

// Keys holds one direction's packet-protection material.
type Keys struct {
	Key [KeySize]byte
	IV  [ivSize]byte
}

// DeriveKeys expands a shared secret and label into directional keys,
// HKDF-like but using plain SHA-256 chaining (sufficient for an
// emulated handshake; the point is the nonce discipline, not the KDF).
func DeriveKeys(secret []byte, label string) Keys {
	var k Keys
	h := sha256.Sum256(append(append([]byte{}, secret...), []byte("key:"+label)...))
	copy(k.Key[:], h[:KeySize])
	h2 := sha256.Sum256(append(append([]byte{}, secret...), []byte("iv:"+label)...))
	copy(k.IV[:], h2[:ivSize])
	return k
}

// Sealer is an AEAD bound to one direction of a connection. It
// implements wire.Sealer.
type Sealer struct {
	aead cipher.AEAD
	iv   [ivSize]byte
	// MultipathNonce controls whether the Path ID participates in the
	// nonce. Disabling it (single-path mode, or the insecure strawman
	// the paper warns about) makes nonces collide across paths; the
	// test suite demonstrates the collision.
	MultipathNonce bool
}

// NewSealer builds a Sealer from directional keys.
func NewSealer(k Keys, multipathNonce bool) (*Sealer, error) {
	block, err := aes.NewCipher(k.Key[:])
	if err != nil {
		return nil, fmt.Errorf("crypto: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("crypto: %w", err)
	}
	s := &Sealer{aead: aead, iv: k.IV, MultipathNonce: multipathNonce}
	return s, nil
}

// nonce builds the per-packet nonce: IV ⊕ (PathID<<56 ‖ PacketNumber)
// over the low 8 bytes of the 12-byte IV.
func (s *Sealer) nonce(path wire.PathID, pn wire.PacketNumber) [ivSize]byte {
	n := s.iv
	var x [8]byte
	v := uint64(pn)
	if s.MultipathNonce {
		v |= uint64(path) << 56
	}
	binary.BigEndian.PutUint64(x[:], v)
	for i := 0; i < 8; i++ {
		n[ivSize-8+i] ^= x[i]
	}
	return n
}

// Seal implements wire.Sealer.
func (s *Sealer) Seal(path wire.PathID, pn wire.PacketNumber, header, plaintext []byte) []byte {
	n := s.nonce(path, pn)
	return s.aead.Seal(nil, n[:], plaintext, header)
}

// Open implements wire.Sealer.
func (s *Sealer) Open(path wire.PathID, pn wire.PacketNumber, header, ciphertext []byte) ([]byte, error) {
	n := s.nonce(path, pn)
	pt, err := s.aead.Open(nil, n[:], ciphertext, header)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}

// NonceFor exposes the nonce computation for tests proving the
// cross-path uniqueness property.
func (s *Sealer) NonceFor(path wire.PathID, pn wire.PacketNumber) []byte {
	n := s.nonce(path, pn)
	return n[:]
}
