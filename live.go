package mpquic

import (
	"errors"
	"time"

	"mpquic/internal/apps"
	"mpquic/internal/core"
	"mpquic/internal/live"
	"mpquic/internal/netem"
)

// Live mode: the same protocol stack over real UDP sockets and a wall
// clock (internal/live), behind the same Fabric facade as the
// emulated Network. See DESIGN.md, "Live mode".

// DefaultLiveDeadline is the wall-time budget LiveNetwork.Download
// grants a transfer before returning ErrTimeout. Live transfers cross
// real networks, so the default is minutes, not the simulator's
// effectively-unbounded virtual deadline.
const DefaultLiveDeadline = 2 * time.Minute

// LiveOption tunes a live network at construction (see NewLiveWith).
type LiveOption = live.Option

// WithCoalesce sets the live wake-up coalescing granularity: protocol
// timer wake-ups are quantized up to the next multiple of g, batching
// near-simultaneous timers into one wake-up. Zero disables
// coalescing; the default is live.DefaultCoalesce. Coalescing bounds
// timer precision (and therefore wall-derived qlog timestamps) by g —
// see OBSERVABILITY.md.
func WithCoalesce(g time.Duration) LiveOption { return live.WithCoalesce(g) }

// WithSocketBuffer requests b bytes of SO_RCVBUF and SO_SNDBUF per
// UDP socket (best-effort; the OS clamps to its limits). Zero keeps
// the OS default; unset means live.DefaultSocketBuffer. Kernel
// receive-queue overflow is surfaced via the driver's
// Stats.RcvQueueDrops.
func WithSocketBuffer(b int) LiveOption { return live.WithSocketBuffer(b) }

// UDPConn is the socket surface a live driver needs — the subset of
// *net.UDPConn it calls. Substitute implementations (fault injection,
// instrumentation) via WithSocketWrapper.
type UDPConn = live.UDPConn

// SocketWrapper intercepts every socket a live driver binds; see
// WithSocketWrapper.
type SocketWrapper = live.SocketWrapper

// WithSocketWrapper interposes w on every UDP socket the live driver
// binds — at construction and again on every rebind. The chaos
// harness wires internal/faultnet's deterministic fault injector in
// through this seam.
func WithSocketWrapper(w SocketWrapper) LiveOption { return live.WithSocketWrapper(w) }

// WithRebind sets the live driver's per-socket self-healing budget: up
// to max rebind attempts per persistent socket failure, the k-th after
// an exponential backoff of base<<min(k,6). While a socket is down its
// paths are potentially failed (§4.3) and traffic steers to the
// survivors; max <= 0 disables rebinding so a persistent error fails
// the path immediately.
func WithRebind(max int, base time.Duration) LiveOption { return live.WithRebind(max, base) }

// WithLiveTracer attaches a tracer to the live driver itself: socket
// health transitions (SocketDegraded/SocketRebound/SocketFailed) are
// emitted there, stamped with wall-derived sim time. Protocol events
// keep flowing through the endpoint config's tracer.
func WithLiveTracer(t Tracer) LiveOption { return live.WithTracer(t) }

// ErrAllPathsDown is returned by a live Serve/Download when every path
// socket has exhausted its rebind ladder: the driver has no way left
// to move packets.
var ErrAllPathsDown = live.ErrAllPathsDown

// LiveNetwork runs MPQUIC endpoints over real UDP sockets: one socket
// per local path address, sim time mapped monotonically onto wall
// time. Unlike Network, runs are not reproducible — the kernel and
// the real network schedule the packets.
type LiveNetwork struct {
	d *live.Driver
}

// NewLive binds one UDP socket per local address ("ip:port"; port 0
// picks a free port) and returns a live network. Close it when done.
func NewLive(localAddrs ...string) (*LiveNetwork, error) {
	return NewLiveWith(localAddrs)
}

// NewLiveWith is NewLive with tuning options (WithCoalesce,
// WithSocketBuffer).
func NewLiveWith(localAddrs []string, opts ...LiveOption) (*LiveNetwork, error) {
	d, err := live.NewDriver(localAddrs, opts...)
	if err != nil {
		return nil, err
	}
	return &LiveNetwork{d: d}, nil
}

// Driver exposes the underlying live driver for advanced use (stats,
// custom run loops).
func (n *LiveNetwork) Driver() *live.Driver { return n.d }

// LocalAddrs returns the actually-bound local addresses in path
// order — hand them to a remote peer's Dial.
func (n *LiveNetwork) LocalAddrs() []string {
	addrs := n.d.LocalAddrs()
	out := make([]string, len(addrs))
	for i, a := range addrs {
		out[i] = string(a)
	}
	return out
}

// liveConfig forces the settings real sockets require.
func liveConfig(cfg Config) Config {
	cfg.WireSerialization = true
	return cfg
}

// Listen starts a (MP)QUIC server on every bound local address.
func (n *LiveNetwork) Listen(cfg Config) *Listener {
	return core.Listen(n.d, liveConfig(cfg), n.d.LocalAddrs())
}

// ServeGet attaches the paper's GET file server to a listener.
func (n *LiveNetwork) ServeGet(l *Listener) { apps.NewGetServer(l) }

// Serve drives the server loop until Close (returns ErrClosed) or a
// socket error. Call after Listen+ServeGet.
func (n *LiveNetwork) Serve() error {
	err := n.d.Run(nil)
	if errors.Is(err, live.ErrClosed) {
		return ErrClosed
	}
	return err
}

// Dial opens a client connection toward remote path addresses, one
// per bound local socket (remotes[i] pairs with local socket i as
// path i).
func (n *LiveNetwork) Dial(cfg Config, connID uint64, remotes ...string) *Conn {
	ra := make([]netem.Addr, len(remotes))
	for i, r := range remotes {
		ra[i] = netem.Addr(r)
	}
	return core.Dial(n.d, liveConfig(cfg), core.NewConnID(connID), n.d.LocalAddrs(), ra)
}

// Download runs a blocking GET of size bytes over the live network,
// driving the wall-clock loop until completion. Timestamps in the
// result are wall-derived durations since the loop first started. It
// returns ErrTimeout after DefaultLiveDeadline, or an *AbortError if
// the connection dies first.
func (n *LiveNetwork) Download(client *Conn, size uint64) (GetResult, error) {
	return n.DownloadWith(client, size, DownloadOpts{})
}

// DownloadWith is Download with explicit options. Opts.Ctx
// cancellation is honored mid-transfer: the loop wakes and returns
// Ctx.Err(). Errors surface as the unified facade types — ErrTimeout,
// *AbortError, ErrClosed — the same as the emulated backend.
func (n *LiveNetwork) DownloadWith(client *Conn, size uint64, opts DownloadOpts) (GetResult, error) {
	deadline := opts.Deadline
	if deadline <= 0 {
		deadline = DefaultLiveDeadline
	}
	lopts := live.DownloadOpts{Deadline: deadline}
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return GetResult{}, err
		}
		lopts.Cancel = opts.Ctx.Done()
	}
	res, err := live.DownloadWith(n.d, client, size, lopts)
	switch {
	case err == nil:
	case errors.Is(err, live.ErrTimeout):
		err = ErrTimeout // the facade's timeout error, same as Network
	case errors.Is(err, live.ErrClosed):
		err = ErrClosed
	case errors.Is(err, live.ErrCanceled):
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			err = opts.Ctx.Err()
		}
	default:
		var la *live.AbortError
		if errors.As(err, &la) {
			err = &AbortError{Err: la.Err}
		}
	}
	return res, err
}

// Close shuts the sockets down; a concurrent Serve returns ErrClosed.
// Safe to call more than once.
func (n *LiveNetwork) Close() error { return n.d.Close() }
