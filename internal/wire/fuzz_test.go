package wire

import (
	"testing"
	"testing/quick"
)

// Decoding arbitrary bytes must never panic — a remote peer controls
// this input. Errors are fine; crashes are not.
func TestDecodeArbitraryBytesNeverPanics(t *testing.T) {
	f := func(b []byte, largest uint32) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %x: %v", b, r)
			}
		}()
		_, _ = Decode(b, PacketNumber(largest), nil)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestParseFrameArbitraryBytesNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ParseFrame panicked on %x: %v", b, r)
			}
		}()
		_, _, _ = ParseFrame(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Bit-flipping a valid packet must either fail decoding or produce a
// structurally valid parse — never a panic.
func TestDecodeBitFlippedPacket(t *testing.T) {
	p := testPacket()
	base := p.Encode(nil)
	for i := 0; i < len(base); i++ {
		for _, mask := range []byte{0x01, 0x80} {
			mutated := append([]byte{}, base...)
			mutated[i] ^= mask
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic flipping byte %d mask %#x: %v", i, mask, r)
					}
				}()
				_, _ = Decode(mutated, 41, nil)
			}()
		}
	}
}

// Truncating a valid packet at every possible length must never panic.
func TestDecodeEveryTruncation(t *testing.T) {
	p := testPacket()
	base := p.Encode(nil)
	for n := 0; n < len(base); n++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at truncation %d: %v", n, r)
				}
			}()
			_, _ = Decode(base[:n], 41, nil)
		}()
	}
}
