#!/bin/sh
# chaos_smoke.sh — live fault-tolerance smoke (the live analog of the
# paper's Fig. 11 handover experiment, driven by internal/faultnet).
#
# Leg 1 (failover): a two-path loopback 10 MB GET where the client's
# second socket blackholes mid-transfer. The transfer must complete via
# failover onto the surviving path, and the client's JSON metrics must
# show the dead path potentially failed. A blackhole is silence, not an
# error, so PF is detected at the data sender (the server's RTOs) and
# reaches the client as a PATHS-frame declaration — "remote_pf":true —
# the §4.3 failover mechanism observed end to end.
#
# Leg 2 (self-healing): a single-path 10 MB GET whose only socket is
# killed mid-transfer and becomes bindable again 200 ms later. The
# reader's rebind ladder must heal the socket ("rebinds" >= 1, no path
# failed) and the transfer must complete on it. The leg runs twice with
# the same seed+script: faultnet's determinism contract says the same
# spec produces the same fault sequence, so a second run must behave
# the same way.
#
# Exits 0 with a notice when the environment denies UDP sockets, so
# sandboxed checkouts are not failed for something they cannot do.
set -eu

cd "$(dirname "$0")/.."

A1=127.0.0.1:47641
A2=127.0.0.1:47642

tmp=$(mktemp -d)
spid=
cleanup() {
    [ -n "$spid" ] && kill "$spid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/mpq-live" ./cmd/mpq-live

# run_pair <addrs> <size> [client flags...] — one plain server process,
# one (fault-injected) client process, both on loopback.
run_pair() {
    addrs=$1
    size=$2
    shift 2
    : > "$tmp/server.log"
    "$tmp/mpq-live" -server -once -idle 10s -listen "$addrs" >"$tmp/server.log" 2>&1 &
    spid=$!
    i=0
    until grep -q '^listening' "$tmp/server.log"; do
        if ! kill -0 "$spid" 2>/dev/null; then
            if grep -qi 'permission denied\|not permitted' "$tmp/server.log"; then
                echo "chaos-smoke: UDP sockets unavailable in this environment, skipping"
                spid=
                exit 0
            fi
            echo "chaos-smoke: server failed to start:" >&2
            cat "$tmp/server.log" >&2
            exit 1
        fi
        i=$((i + 1))
        [ "$i" -gt 100 ] && { echo "chaos-smoke: server never reported listening" >&2; exit 1; }
        sleep 0.1
    done
    "$tmp/mpq-live" -connect "$addrs" -size "$size" -timeout 60s -json "$@"
    wait "$spid"
    spid=
}

# json_field <file> <key> — extract one numeric/bool scalar.
json_field() {
    sed -n "s/.*\"$2\":\([0-9a-z.eE+-]*\).*/\1/p" "$1"
}

echo "== chaos smoke leg 1: two paths, one blackholed mid-transfer (failover)"
run_pair "$A1,$A2" 10000000 \
    -chaos 'seed=42;blackhole@50ms:1' >"$tmp/leg1.json"
cat "$tmp/leg1.json"
if ! grep -q '"remote_pf":true' "$tmp/leg1.json"; then
    echo "chaos-smoke: blackholed path never went potentially-failed at the sender" >&2
    exit 1
fi
echo "failover ok: transfer completed with the blackholed path declared pf by the sender"

# Leg 2 as a function so it runs twice with the identical fault spec.
run_leg2() {
    run_pair "$A1" 10000000 \
        -chaos 'seed=7;kill@60ms:0;restore@260ms:0' \
        -rebind-max 20 -rebind-backoff 100ms >"$tmp/leg2.json"
    cat "$tmp/leg2.json"
    rebinds=$(json_field "$tmp/leg2.json" rebinds)
    failed=$(json_field "$tmp/leg2.json" paths_failed_live)
    if [ -z "$rebinds" ] || [ "$rebinds" -lt 1 ]; then
        echo "chaos-smoke: socket was not rebound through the outage (rebinds=$rebinds)" >&2
        exit 1
    fi
    if [ "$failed" != "0" ]; then
        echo "chaos-smoke: healed socket was marked failed (paths_failed_live=$failed)" >&2
        exit 1
    fi
    echo "self-healing ok: $rebinds rebind(s), no path failed"
}

echo "== chaos smoke leg 2: kill + restore, rebind recovery"
run_leg2

echo "== chaos smoke leg 2 (repeat): same seed, same script, same outcome"
run_leg2

echo "chaos-smoke ok"
