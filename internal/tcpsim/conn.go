package tcpsim

import (
	"sort"
	"time"

	"mpquic/internal/cc"
	"mpquic/internal/netem"
	"mpquic/internal/rtt"
	"mpquic/internal/sim"
	"mpquic/internal/stream"
	"mpquic/internal/trace"
)

// Config tunes a TCP connection.
type Config struct {
	// RecvWindow is the maximum receive window (§4.1: 16 MB).
	RecvWindow uint64
	// TLS enables the 2-RTT TLS 1.2 handshake after the 3-way
	// handshake (the paper's https baseline).
	TLS bool
	// IdleTimeout aborts a silent connection. Zero disables.
	IdleTimeout time.Duration
	// Tracer receives lifecycle and recovery events (handshake done,
	// RTO fired, segments lost, close) when non-nil. TCP is a single
	// flow, so events carry path 0. A tracer is a pure observer:
	// attaching one never changes a run's schedule or results, and a
	// nil tracer costs one branch per event.
	Tracer trace.Tracer
}

// DefaultConfig mirrors the paper's TCP setup.
func DefaultConfig() Config {
	return Config{RecvWindow: 16 << 20, TLS: true, IdleTimeout: 120 * time.Second}
}

// handshake states.
type hsState int

const (
	hsIdle hsState = iota
	hsSynSent
	hsSynReceived
	hsTLSClientHello // client sent flight 1, awaiting server flight 1
	hsTLSServerDone  // server sent flight 1, awaiting client flight 2
	hsTLSClientFin   // client sent flight 2, awaiting server flight 2
	hsEstablished    // secure, app data may flow
)

// dupThresh is the FACK-style reordering threshold (the dup-ack
// analog): a segment is lost once 3 later transmissions are acked.
const dupThresh = 3

// sendRecord tracks one transmitted segment for loss detection.
type sendRecord struct {
	txSeq    uint64 // transmission order
	seqStart uint64
	seqEnd   uint64
	fin      bool
	isRtx    bool
	sentTime time.Duration
	wireSize int
	settled  bool
}

// Stats counts per-connection activity.
type Stats struct {
	SegmentsSent uint64
	SegmentsRcvd uint64
	BytesSent    uint64
	// SegmentsLost counts segments declared lost (FACK threshold or
	// RTO) and returned to the retransmission queue.
	SegmentsLost   uint64
	Retransmits    uint64
	RTOCount       uint64
	FastRetransmit uint64
	EstablishedAt  time.Duration
}

// Conn is one endpoint of an emulated TCP connection carrying a single
// application byte stream in each direction.
type Conn struct {
	cfg      Config
	clock    *sim.Clock
	net      *netem.Network
	local    netem.Addr
	remote   netem.Addr
	isClient bool

	state    hsState
	hsTimer  *sim.Timer
	hsSentAt time.Duration // when the current handshake flight left
	est      *rtt.Estimator
	cc       cc.Controller
	ccIsOwn  bool

	// --- send side (byte stream, seq starts at 0 after handshake) ---
	sndNxt        uint64
	writeOffset   uint64 // bytes the app wrote
	finQueued     bool
	finSentSeq    uint64
	finAcked      bool
	records       []*sendRecord
	liveRtx       int // live retransmission records (out of seq order)
	nextTxSeq     uint64
	highestAckTx  uint64 // highest txSeq acked/sacked (FACK)
	hasAckTx      bool
	bytesInFlight int
	cumAcked      uint64 // peer's cumulative ack (sndUna)
	sacked        stream.IntervalSet
	rtxQueue      stream.IntervalSet
	peerLimit     uint64 // cumAck+window high-water mark
	lastRtxSent   time.Duration
	lastProgress  time.Duration // last ack progress (restarts the RTO)
	cutbackTx     uint64
	hasCutback    bool
	rtoTimer      *sim.Timer

	// --- receive side ---
	received     stream.IntervalSet
	consumed     uint64
	lastAdvWnd   uint64 // last advertised window (zero-window reopen)
	finRecvSeq   uint64
	finRecvd     bool
	unackedSegs  int
	ackQueued    bool
	ackDeadline  time.Duration
	lastRecvTime time.Duration

	closed   bool
	closeErr error

	onEstablished func()
	onData        func()
	onClosed      func(error)

	Stats Stats
}

func newTCPConn(nw *netem.Network, cfg Config, local, remote netem.Addr, isClient bool) *Conn {
	c := &Conn{
		cfg:      cfg,
		clock:    nw.Clock(),
		net:      nw,
		local:    local,
		remote:   remote,
		isClient: isClient,
		est:      rtt.New(rtt.DefaultTCP()),
	}
	cub := cc.NewCubic(MSS, c.now)
	cub.SetMaxCwnd(int(cfg.RecvWindow))
	c.cc = cub
	c.hsTimer = sim.NewTimer(c.clock, c.onHandshakeTimeout)
	c.rtoTimer = sim.NewTimer(c.clock, c.onRTO)
	c.lastRecvTime = c.now()
	return c
}

func (c *Conn) now() time.Duration { return c.clock.Now().Duration() }

// trace emits ev when tracing is enabled, stamping the current time.
func (c *Conn) trace(ev trace.Event) {
	if c.cfg.Tracer == nil {
		return
	}
	ev.Time = c.now()
	c.cfg.Tracer.Trace(ev)
}

// SampleInto appends one PathSample (path 0 — TCP is a single flow) to
// rec, stamped with the current simulated time. Sampling only reads
// state; attaching a sampler never changes a run's schedule or
// results.
func (c *Conn) SampleInto(rec *trace.SeriesRecorder) {
	rec.Add(trace.PathSample{
		T:          c.now(),
		Path:       0,
		Cwnd:       c.cc.Cwnd(),
		SRTT:       c.est.SmoothedRTT(),
		InFlight:   c.bytesInFlight,
		BytesSent:  c.Stats.BytesSent,
		BytesAcked: c.cumAcked,
		SlowStart:  c.cc.InSlowStart(),
	})
}

// DialTCP starts a client connection (SYN goes out immediately).
func DialTCP(nw *netem.Network, cfg Config, local, remote netem.Addr) *Conn {
	c := newTCPConn(nw, cfg, local, remote, true)
	nw.Register(local, c)
	c.state = hsSynSent
	c.sendSegment(&Segment{SYN: true, Window: cfg.RecvWindow})
	c.hsTimer.ResetAfter(c.est.RTO())
	return c
}

// Listener accepts TCP connections on one address, demultiplexed by
// peer address.
type Listener struct {
	nw     *netem.Network
	cfg    Config
	addr   netem.Addr
	conns  map[netem.Addr]*Conn
	onConn func(*Conn)
}

// ListenTCP registers a server.
func ListenTCP(nw *netem.Network, cfg Config, addr netem.Addr) *Listener {
	l := &Listener{nw: nw, cfg: cfg, addr: addr, conns: make(map[netem.Addr]*Conn)}
	nw.Register(addr, l)
	return l
}

// OnConnection registers the accept callback.
func (l *Listener) OnConnection(fn func(*Conn)) { l.onConn = fn }

// Conns returns accepted connections, sorted by peer address so the
// order is deterministic (map iteration order must not leak).
func (l *Listener) Conns() []*Conn {
	addrs := make([]netem.Addr, 0, len(l.conns))
	for a := range l.conns {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	out := make([]*Conn, 0, len(addrs))
	for _, a := range addrs {
		out = append(out, l.conns[a])
	}
	return out
}

// HandleDatagram implements netem.Handler for the listener.
func (l *Listener) HandleDatagram(dg netem.Datagram) {
	seg, ok := dg.Payload.(*Segment)
	if !ok {
		return
	}
	c, exists := l.conns[dg.From]
	if !exists {
		if !seg.SYN {
			return // stray segment for a dead connection
		}
		c = newTCPConn(l.nw, l.cfg, l.addr, dg.From, false)
		c.state = hsSynReceived
		l.conns[dg.From] = c
		if l.onConn != nil {
			l.onConn(c)
		}
	}
	c.HandleDatagram(dg)
}

// OnEstablished registers the secure-handshake-complete callback.
func (c *Conn) OnEstablished(fn func()) {
	c.onEstablished = fn
	if c.state == hsEstablished {
		fn()
	}
}

// OnData registers the data-arrival callback.
func (c *Conn) OnData(fn func()) { c.onData = fn }

// OnClosed registers the close callback.
func (c *Conn) OnClosed(fn func(error)) { c.onClosed = fn }

// Established reports whether application data may flow.
func (c *Conn) Established() bool { return c.state == hsEstablished }

// Closed reports connection termination.
func (c *Conn) Closed() bool { return c.closed }

// Err returns the close reason, if any.
func (c *Conn) Err() error { return c.closeErr }

// RTT exposes the estimator (coarse, Karn-limited).
func (c *Conn) RTT() *rtt.Estimator { return c.est }

// Cwnd reports the congestion window in bytes.
func (c *Conn) Cwnd() int { return c.cc.Cwnd() }

// --- application API ---

// WriteSynthetic queues n stream bytes for transmission.
func (c *Conn) WriteSynthetic(n uint64) {
	c.writeOffset += n
	c.trySend()
}

// CloseWrite queues the FIN after all written data.
func (c *Conn) CloseWrite() {
	c.finQueued = true
	c.trySend()
}

// Readable reports in-order bytes available past the consumption point.
func (c *Conn) Readable() uint64 {
	return c.received.FirstMissingFrom(c.consumed) - c.consumed
}

// Read consumes up to n in-order bytes, opening the receive window.
// Reopening a (near-)zero window immediately advertises it — without
// this, a sender stalled on the window would deadlock (TCP solves the
// same problem with window updates plus persist-timer probes).
func (c *Conn) Read(n uint64) uint64 {
	avail := c.Readable()
	if n > avail {
		n = avail
	}
	c.consumed += n
	if n > 0 && c.state == hsEstablished && c.lastAdvWnd < MSS && c.advertisedWindow() >= MSS {
		c.sendAck()
	}
	return n
}

// BytesReceived reports distinct received bytes.
func (c *Conn) BytesReceived() uint64 { return c.received.Size() }

// FinReceived reports whether the peer's FIN arrived (in order).
func (c *Conn) FinReceived() bool {
	return c.finRecvd && c.received.FirstMissingFrom(0) >= c.finRecvSeq
}

// Finished reports whether the app consumed the whole incoming stream.
func (c *Conn) Finished() bool { return c.FinReceived() && c.consumed == c.finRecvSeq }

// AllAcked reports whether everything written (and FIN) was acked.
func (c *Conn) AllAcked() bool {
	return c.finQueued && c.finAcked && c.cumAcked >= c.writeOffset
}
