#!/bin/sh
# bench.sh — the repository performance harness.
#
# Runs the internal/perf micro benchmarks (wire encode/decode, sim
# event loop, netem link transit) plus the smoke-grid macro benchmark,
# and writes the numbers to a BENCH_*.json trajectory file so every PR
# can compare its hot-path cost against the previous one. Full runs
# also measure live-mode loopback throughput: two-process mpq-live
# transfers over real UDP sockets, a {1,2 paths} x {10 MB, 100 MB}
# matrix. Each client's metrics land under "live_loopback.runs", next
# to the PR 7 pre-fast-lane baseline; runs are null when the
# environment denies UDP.
#
#   scripts/bench.sh            # full run, writes BENCH_PR8.json
#   scripts/bench.sh -smoke     # CI-sized sanity pass, no file output
#   scripts/bench.sh -o F.json  # full run, write to F.json
#
# The emitted JSON carries a "baseline" block: the same benchmarks
# measured at the commit before the PR 3 hot-path pass (8e0e2f0, struct
# allocation + container/heap + per-packet closures), so the deltas are
# readable without digging through git history.
set -eu

cd "$(dirname "$0")/.."

out=BENCH_PR8.json
mode=full
while [ $# -gt 0 ]; do
    case "$1" in
    -smoke) mode=smoke ;;
    -o) out=$2; shift ;;
    *) echo "usage: scripts/bench.sh [-smoke] [-o file.json]" >&2; exit 2 ;;
    esac
    shift
done

micro='^(BenchmarkPacketEncode|BenchmarkPacketDecode|BenchmarkClockScheduleRun|BenchmarkClockSameTimeFIFO|BenchmarkLinkTransit)$'
if [ "$mode" = smoke ]; then
    microtime=100x
    gridtime=1x
else
    microtime=2s
    gridtime=3x
fi

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== micro benchmarks (-benchtime=$microtime)"
go test ./internal/perf -run '^$' -bench "$micro" -benchmem -benchtime "$microtime" | tee -a "$tmp"

echo "== smoke grid (-benchtime=$gridtime)"
go test ./internal/perf -run '^$' -bench '^BenchmarkSmokeGrid$' -benchmem -benchtime "$gridtime" | tee -a "$tmp"

if [ "$mode" = full ]; then
    echo "== wire-mode transfer"
    go test ./internal/perf -run '^$' -bench '^BenchmarkWireModeTransfer$' -benchmem -benchtime 3x | tee -a "$tmp"
fi

if [ "$mode" = smoke ]; then
    echo "smoke bench ok"
    exit 0
fi

# Live loopback throughput: real two-process transfers over loopback
# UDP (see scripts/live_smoke.sh for the gating smoke). A {1,2 paths}
# x {10 MB, 100 MB} matrix; each client's -json metrics are embedded
# verbatim, and environments that deny UDP sockets record null runs
# instead of failing the bench.
livedir=$(mktemp -d)
live_built=
go build -o "$livedir/mpq-live" ./cmd/mpq-live && live_built=1

# run_live <listen-addrs> <size-bytes> -> prints client JSON or "null"
run_live() {
    addrs=$1 size=$2 spid=
    [ -n "$live_built" ] || { echo null; return; }
    : >"$livedir/server.log"
    "$livedir/mpq-live" -server -once -idle 10s \
        -listen "$addrs" >"$livedir/server.log" 2>&1 &
    spid=$!
    i=0
    while ! grep -q '^listening' "$livedir/server.log" && kill -0 "$spid" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && break
        sleep 0.1
    done
    if grep -q '^listening' "$livedir/server.log" &&
        "$livedir/mpq-live" -connect "$addrs" -size "$size" \
            -timeout 120s -json >"$livedir/client.json" 2>"$livedir/client.log"; then
        cat "$livedir/client.json"
        wait "$spid" 2>/dev/null || true
    else
        kill "$spid" 2>/dev/null || true
        wait "$spid" 2>/dev/null || true
        echo null
    fi
}

one_path=127.0.0.1:47651
two_path=127.0.0.1:47651,127.0.0.1:47652

echo "== live loopback matrix (mpq-live, {1,2 paths} x {10,100 MB})"
live_1p_10m=$(run_live "$one_path" 10000000)
echo "   1 path  10 MB:  $(printf '%s' "$live_1p_10m" | head -c 120)"
live_2p_10m=$(run_live "$two_path" 10000000)
echo "   2 paths 10 MB:  $(printf '%s' "$live_2p_10m" | head -c 120)"
live_1p_100m=$(run_live "$one_path" 100000000)
echo "   1 path  100 MB: $(printf '%s' "$live_1p_100m" | head -c 120)"
live_2p_100m=$(run_live "$two_path" 100000000)
echo "   2 paths 100 MB: $(printf '%s' "$live_2p_100m" | head -c 120)"
rm -rf "$livedir"

# Convert `go test -bench` lines into JSON records. Metric pairs are
# parsed generically: "124.6 ns/op" -> "ns_per_op": 124.6.
results=$(awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    printf "%s    {\"name\": \"%s\", \"iterations\": %s", sep, name, $2
    for (i = 3; i < NF; i += 2) {
        key = $(i + 1)
        gsub(/\//, "_per_", key)
        gsub(/[^A-Za-z0-9_]/, "", key)
        printf ", \"%s\": %s", key, $i
    }
    printf "}"
    sep = ",\n"
}' "$tmp")

{
    printf '{\n'
    printf '  "go": "%s",\n' "$(go version | awk '{print $3}')"
    printf '  "benchtime": {"micro": "%s", "grid": "%s"},\n' "$microtime" "$gridtime"
    cat <<'EOF'
  "baseline": {
    "commit": "8e0e2f0",
    "note": "pre-PR3 hot path: per-event heap allocation via container/heap, per-packet encode/decode buffer copies, two closures per link transit",
    "results": [
      {"name": "PacketEncode", "ns_per_op": 290.8, "B_per_op": 1408, "allocs_per_op": 1},
      {"name": "PacketDecode", "ns_per_op": 706.9, "B_per_op": 1824, "allocs_per_op": 11},
      {"name": "ClockScheduleRun", "ns_per_op": 100480, "B_per_op": 24576, "allocs_per_op": 512},
      {"name": "ClockSameTimeFIFO", "ns_per_op": 89893, "B_per_op": 24576, "allocs_per_op": 512},
      {"name": "LinkTransit", "ns_per_op": 133168, "B_per_op": 65536, "allocs_per_op": 1024},
      {"name": "SmokeGrid", "ns_per_op": 865835080, "scenarios_per_sec": 6.93, "B_per_op": 399059520, "allocs_per_op": 5633206},
      {"name": "WireModeTransfer", "ns_per_op": 616510091, "B_per_op": 2528787360, "allocs_per_op": 187156}
    ]
  },
EOF
    cat <<'EOF'
  "live_loopback": {
    "baseline_pr7": {
      "note": "pre-fast-lane live driver (PR 7): per-packet wake-ups, per-packet allocation, O(n^2) reassembly growth; 10 MB over two loopback paths",
      "size_bytes": 10000000,
      "paths": 2,
      "transfer_s": 4.470463801,
      "goodput_mbps": 17.895234937839056
    },
EOF
    printf '    "runs": {\n'
    printf '      "paths1_10mb": %s,\n' "$live_1p_10m"
    printf '      "paths2_10mb": %s,\n' "$live_2p_10m"
    printf '      "paths1_100mb": %s,\n' "$live_1p_100m"
    printf '      "paths2_100mb": %s\n' "$live_2p_100m"
    printf '    }\n'
    printf '  },\n'
    printf '  "results": [\n'
    printf '%s\n' "$results"
    printf '  ]\n'
    printf '}\n'
} > "$out"

echo "wrote $out"
