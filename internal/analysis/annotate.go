package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The live fast lane's invariants are declared in the source with
// //mpq: directives, the same way //mpqvet:allow already audits
// suppressions. Six directives exist:
//
//	//mpq:confined <domain>   on a struct field (or package var): only
//	                          code in that goroutine domain may touch
//	                          it. On a func/method: its body executes
//	                          in that domain AND only code already in
//	                          that domain may call it.
//	//mpq:entry <domain>      on a func/method: a domain root — the
//	                          calling goroutine *becomes* that domain
//	                          for the duration of the call (live.Run is
//	                          the run-loop entry; readLoop the reader
//	                          entry). Callable from anywhere.
//	//mpq:crossing            on a field/var/func: a sanctioned
//	                          cross-domain touch point (a channel, an
//	                          atomic, a lock-free signal).
//	//mpq:ring                on a channel field/var: a buffer ring
//	                          whose element lifecycle ringsafety checks.
//	//mpq:noescape            on a func/method: the mpq-escape gate
//	                          fails the build if the compiler reports
//	                          anything in its body escaping to the heap.
//	//mpq:waitpoint           on (or above) a statement: the designated
//	                          blocking site of a run-loop function;
//	                          exempts it from the blocking analyzer.
//
// The annotation analyzer (annotation.go) validates every directive —
// unknown names, wrong arity and misplaced anchors are themselves
// errors, mirroring the malformed-//mpqvet:allow rule.
const mpqPrefix = "mpq:"

// mpqDirective is one parsed //mpq: comment line.
type mpqDirective struct {
	name string // "confined", "entry", ...
	args []string
	pos  token.Pos
}

// parseMpqComment parses one comment line into a directive. ok is
// false when the comment is not an //mpq: directive at all. A nested
// "//" starts an inline rationale and ends the directive:
//
//	//mpq:confined run-loop // the loop owns all protocol state
func parseMpqComment(c *ast.Comment) (d mpqDirective, ok bool) {
	text := strings.TrimPrefix(c.Text, "//")
	if !strings.HasPrefix(text, mpqPrefix) {
		return d, false
	}
	text = strings.TrimPrefix(text, mpqPrefix)
	if i := strings.Index(text, "//"); i >= 0 {
		text = text[:i]
	}
	fields := strings.Fields(text)
	d.pos = c.Slash
	if len(fields) > 0 {
		d.name = fields[0]
		d.args = fields[1:]
	}
	return d, true
}

// groupDirectives yields the directives of a comment group.
func groupDirectives(cg *ast.CommentGroup) []mpqDirective {
	if cg == nil {
		return nil
	}
	var out []mpqDirective
	for _, c := range cg.List {
		if d, ok := parseMpqComment(c); ok {
			out = append(out, d)
		}
	}
	return out
}

// lineKey addresses one source line, the granularity //mpq:waitpoint
// (like //mpqvet:allow) covers.
type lineKey struct {
	file string
	line int
}

// annotations is the package-wide index of //mpq: directives the
// confine, ringsafety and blocking analyzers consume.
type annotations struct {
	// fieldDomain maps a confined struct field (or package var) to its
	// goroutine domain name.
	fieldDomain map[types.Object]string
	// crossing holds fields/vars/funcs sanctioned for any-domain use.
	crossing map[types.Object]bool
	// ring holds channel fields/vars that are buffer rings.
	ring map[types.Object]bool
	// funcDomain maps a //mpq:confined function to its domain: body
	// runs there, and callers must already be there.
	funcDomain map[*types.Func]string
	// funcEntry maps a //mpq:entry function to the domain it roots.
	funcEntry map[*types.Func]string
	// noescape holds //mpq:noescape functions (consumed by the escape
	// gate; indexed here so the annotation analyzer can validate it).
	noescape map[*types.Func]bool
	// waitpoints holds the lines covered by //mpq:waitpoint (the
	// directive's own line and the one below, like //mpqvet:allow).
	waitpoints map[lineKey]bool
}

// collectAnnotations indexes every //mpq: directive of the package.
// Malformed directives are ignored here — the annotation analyzer owns
// reporting them — so the consuming analyzers stay quiet on inputs the
// validator already rejects.
func collectAnnotations(pass *Pass) *annotations {
	ann := &annotations{
		fieldDomain: make(map[types.Object]string),
		crossing:    make(map[types.Object]bool),
		ring:        make(map[types.Object]bool),
		funcDomain:  make(map[*types.Func]string),
		funcEntry:   make(map[*types.Func]string),
		noescape:    make(map[*types.Func]bool),
		waitpoints:  make(map[lineKey]bool),
	}
	for _, f := range pass.Files {
		// Waitpoints attach to lines, not declarations.
		for _, cg := range f.Comments {
			for _, d := range groupDirectives(cg) {
				if d.name == "waitpoint" {
					pos := pass.Fset.Position(d.pos)
					ann.waitpoints[lineKey{pos.Filename, pos.Line}] = true
					ann.waitpoints[lineKey{pos.Filename, pos.Line + 1}] = true
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				obj, _ := pass.TypesInfo.Defs[n.Name].(*types.Func)
				if obj == nil {
					return true
				}
				for _, d := range groupDirectives(n.Doc) {
					switch d.name {
					case "confined":
						if len(d.args) == 1 {
							ann.funcDomain[obj] = d.args[0]
						}
					case "entry":
						if len(d.args) == 1 {
							ann.funcEntry[obj] = d.args[0]
						}
					case "crossing":
						ann.crossing[obj] = true
					case "noescape":
						ann.noescape[obj] = true
					}
				}
			case *ast.StructType:
				for _, field := range n.Fields.List {
					ds := append(groupDirectives(field.Doc), groupDirectives(field.Comment)...)
					if len(ds) == 0 {
						continue
					}
					for _, name := range field.Names {
						obj := pass.TypesInfo.Defs[name]
						if obj == nil {
							continue
						}
						applyMemberDirectives(ann, obj, ds)
					}
				}
			case *ast.GenDecl:
				if n.Tok != token.VAR {
					return true
				}
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					ds := append(groupDirectives(n.Doc), groupDirectives(vs.Doc)...)
					ds = append(ds, groupDirectives(vs.Comment)...)
					if len(ds) == 0 {
						continue
					}
					for _, name := range vs.Names {
						obj := pass.TypesInfo.Defs[name]
						if obj == nil {
							continue
						}
						applyMemberDirectives(ann, obj, ds)
					}
				}
			}
			return true
		})
	}
	return ann
}

// applyMemberDirectives records the field/var-shaped directives.
func applyMemberDirectives(ann *annotations, obj types.Object, ds []mpqDirective) {
	for _, d := range ds {
		switch d.name {
		case "confined":
			if len(d.args) == 1 {
				ann.fieldDomain[obj] = d.args[0]
			}
		case "crossing":
			ann.crossing[obj] = true
		case "ring":
			ann.ring[obj] = true
		}
	}
}

// onWaitpoint reports whether pos's line carries (or follows) a
// //mpq:waitpoint directive.
func (ann *annotations) onWaitpoint(fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	return ann.waitpoints[lineKey{p.Filename, p.Line}]
}
