package expdesign

import (
	"math"
	"time"

	"mpquic/internal/apps"
	"mpquic/internal/core"
	"mpquic/internal/mptcpsim"
	"mpquic/internal/netem"
	"mpquic/internal/sim"
	"mpquic/internal/tcpsim"
)

// Protocol identifies one of the four compared stacks.
type Protocol int

// The four protocols of the evaluation.
const (
	ProtoTCP Protocol = iota
	ProtoQUIC
	ProtoMPTCP
	ProtoMPQUIC
)

func (p Protocol) String() string {
	switch p {
	case ProtoTCP:
		return "TCP"
	case ProtoQUIC:
		return "QUIC"
	case ProtoMPTCP:
		return "MPTCP"
	default:
		return "MPQUIC"
	}
}

// Multipath reports whether the protocol uses both paths.
func (p Protocol) Multipath() bool { return p == ProtoMPTCP || p == ProtoMPQUIC }

// RunResult is the outcome of one simulation run.
type RunResult struct {
	Completed  bool
	Elapsed    time.Duration
	GoodputBps float64 // achieved goodput (received bytes over elapsed)
	BytesRecvd uint64
}

// effectiveRateBps estimates the rate a loss-limited reliable transfer
// can sustain on a path: the link capacity capped by the Mathis bound
// MSS/(RTT·√p) under random loss.
func effectiveRateBps(p netem.PathSpec) float64 {
	rate := p.CapacityMbps * 1e6
	if p.LossRate > 0 {
		rtt := p.RTT.Seconds() + p.QueueDelay.Seconds()/2
		if rtt < 0.01 {
			rtt = 0.01
		}
		mathis := 1378 * 8 / rtt / math.Sqrt(p.LossRate)
		if mathis < rate {
			rate = mathis
		}
	}
	return rate
}

// deadlineFor bounds a run: a generous multiple of the ideal transfer
// time at the effective rate the protocol can actually use (the start
// path for single-path protocols, the better path for multipath),
// floored for handshake-dominated short transfers.
func deadlineFor(sc Scenario, proto Protocol, size uint64, startPath int) time.Duration {
	rate := effectiveRateBps(sc.Paths[startPath])
	if proto.Multipath() {
		if other := effectiveRateBps(sc.Paths[1-startPath]); other > rate {
			rate = other
		}
	}
	ideal := time.Duration(float64(size) * 8 / rate * float64(time.Second))
	d := 30*ideal + 2*time.Minute
	if d > 6*time.Hour {
		d = 6 * time.Hour
	}
	return d
}

// orderedSpecs reorders the scenario's paths so the connection's
// initial path is index 0 (§4.1 varies the path used to start the
// connection).
func orderedSpecs(sc Scenario, startPath int) [2]netem.PathSpec {
	if startPath == 0 {
		return sc.Paths
	}
	return [2]netem.PathSpec{sc.Paths[1], sc.Paths[0]}
}

// Run executes one simulation: the given protocol downloading size
// bytes over the scenario, with the connection initiated on startPath,
// seeded with seed. Single-path protocols use startPath only.
func Run(sc Scenario, proto Protocol, size uint64, startPath int, seed uint64) RunResult {
	clock := sim.NewClock()
	clock.Limit = 400_000_000
	specs := orderedSpecs(sc, startPath)
	tp := netem.NewTwoPath(clock, sim.NewRand(seed), specs)
	deadline := deadlineFor(sc, proto, size, startPath)

	var (
		done     *time.Duration
		received func() uint64
	)
	now := func() time.Duration { return clock.Now().Duration() }

	switch proto {
	case ProtoQUIC, ProtoMPQUIC:
		cfg := core.DefaultSinglePathConfig()
		nPaths := 1
		if proto == ProtoMPQUIC {
			cfg = core.DefaultConfig()
			nPaths = 2
		}
		cfg.HandshakeSeed = seed
		lis := core.Listen(tp.Net, cfg, tp.ServerAddrs[:nPaths])
		apps.NewGetServer(lis)
		client := core.Dial(tp.Net, cfg, core.NewConnID(seed), tp.ClientAddrs[:nPaths], tp.ServerAddrs[:nPaths])
		apps.NewGetClient(client, size, now, func(r apps.GetResult) {
			el := r.Elapsed()
			done = &el
			clock.Stop()
		})
		received = func() uint64 {
			if s := client.StreamByID(core.FirstClientStream); s != nil {
				return s.BytesReceived()
			}
			return 0
		}
	case ProtoTCP:
		cfg := tcpsim.DefaultConfig()
		lis := tcpsim.ListenTCP(tp.Net, cfg, tp.ServerAddrs[0])
		tcpsim.ServeGet(lis, size)
		client := tcpsim.DialTCP(tp.Net, cfg, tp.ClientAddrs[0], tp.ServerAddrs[0])
		tcpsim.GetOverTCP(client, size, now, func(r tcpsim.GetResult) {
			el := r.Elapsed()
			done = &el
			clock.Stop()
		})
		received = client.BytesReceived
	case ProtoMPTCP:
		cfg := mptcpsim.DefaultConfig()
		lis := mptcpsim.ListenMPTCP(tp.Net, cfg, tp.ServerAddrs[:])
		mptcpsim.ServeGet(lis, size)
		client := mptcpsim.DialMPTCP(tp.Net, cfg, uint32(seed)|1, tp.ClientAddrs[:], tp.ServerAddrs[:])
		mptcpsim.GetOverMPTCP(client, size, now, func(r mptcpsim.GetResult) {
			el := r.Elapsed()
			done = &el
			clock.Stop()
		})
		received = client.BytesReceived
	}

	err := clock.RunUntil(sim.Time(deadline))
	res := RunResult{}
	if done != nil && err == nil {
		res.Completed = true
		res.Elapsed = *done
		res.BytesRecvd = size
		res.GoodputBps = float64(size) * 8 / res.Elapsed.Seconds()
		return res
	}
	// Incomplete (or aborted) run: charge the deadline, credit what
	// arrived. A goodput of ~0 maps to the paper's EBen = −1 "failed
	// to transfer" notion.
	res.Elapsed = deadline
	res.BytesRecvd = received()
	res.GoodputBps = float64(res.BytesRecvd) * 8 / deadline.Seconds()
	return res
}

// RunMPQUICVariant runs one MPQUIC download with a custom engine
// configuration — the hook the ablation benchmarks use to toggle the
// §3 design choices (scheduler kind, duplication, congestion-control
// coupling, WINDOW_UPDATE broadcast).
func RunMPQUICVariant(sc Scenario, cfg core.Config, size uint64, startPath int, seed uint64) RunResult {
	clock := sim.NewClock()
	clock.Limit = 400_000_000
	specs := orderedSpecs(sc, startPath)
	tp := netem.NewTwoPath(clock, sim.NewRand(seed), specs)
	deadline := deadlineFor(sc, ProtoMPQUIC, size, startPath)
	cfg.HandshakeSeed = seed
	nPaths := 2
	if !cfg.Multipath {
		nPaths = 1
	}
	lis := core.Listen(tp.Net, cfg, tp.ServerAddrs[:nPaths])
	apps.NewGetServer(lis)
	client := core.Dial(tp.Net, cfg, core.NewConnID(seed), tp.ClientAddrs[:nPaths], tp.ServerAddrs[:nPaths])
	var done *time.Duration
	now := func() time.Duration { return clock.Now().Duration() }
	apps.NewGetClient(client, size, now, func(r apps.GetResult) {
		el := r.Elapsed()
		done = &el
		clock.Stop()
	})
	err := clock.RunUntil(sim.Time(deadline))
	res := RunResult{}
	if done != nil && err == nil {
		res.Completed = true
		res.Elapsed = *done
		res.BytesRecvd = size
		res.GoodputBps = float64(size) * 8 / res.Elapsed.Seconds()
		return res
	}
	res.Elapsed = deadline
	if s := client.StreamByID(core.FirstClientStream); s != nil {
		res.BytesRecvd = s.BytesReceived()
	}
	res.GoodputBps = float64(res.BytesRecvd) * 8 / deadline.Seconds()
	return res
}

// RunMedian runs reps seeded repetitions and returns the median-elapsed
// run (the paper analyzes the median of 3).
func RunMedian(sc Scenario, proto Protocol, size uint64, startPath int, reps int, baseSeed uint64) RunResult {
	if reps <= 0 {
		reps = 1
	}
	results := make([]RunResult, reps)
	for i := 0; i < reps; i++ {
		results[i] = Run(sc, proto, size, startPath, baseSeed+uint64(i)*7919)
	}
	// Median by elapsed time.
	best := results[0]
	if reps > 1 {
		sorted := append([]RunResult(nil), results...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j].Elapsed < sorted[j-1].Elapsed; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		best = sorted[len(sorted)/2]
	}
	return best
}
