package mpquic_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"mpquic"
)

// Conformance suite for the Fabric interface: every test below runs
// against both backends — the emulated *Network and the real-socket
// *LiveNetwork — asserting the shared semantics the interface
// documents (download round trip, Serve/Close lifecycle, the unified
// ErrTimeout / *AbortError / ErrClosed / context error surface).
//
// Live subtests bind loopback UDP sockets; where the environment
// forbids that, they skip cleanly.

// fabricEnv is one backend instantiation: a serving fabric, a dialing
// fabric (the same object for the emulated backend), the remote
// addresses to dial, and a way to make every path dead (so timeout
// and abort paths are reachable deterministically on both backends).
type fabricEnv struct {
	server  mpquic.Fabric
	client  mpquic.Fabric
	remotes []string

	// deadPaths makes the dialed paths permanently silent: emulated
	// paths are killed; the live env instead returns remotes pointing
	// at sockets nobody serves.
	deadPaths   func()
	deadRemotes []string
}

// fabricBackends returns a constructor per backend. Constructors
// register cleanup on t and may skip (live without UDP).
func fabricBackends() map[string]func(t *testing.T) *fabricEnv {
	return map[string]func(t *testing.T) *fabricEnv{
		"sim": func(t *testing.T) *fabricEnv {
			net := mpquic.NewTwoPathNetwork(twoPathSpec(1))
			t.Cleanup(func() { net.Close() })
			remotes := []string{net.ServerAddr(0), net.ServerAddr(1)}
			return &fabricEnv{
				server:  net,
				client:  net,
				remotes: remotes,
				deadPaths: func() {
					net.KillPath(0)
					net.KillPath(1)
				},
				deadRemotes: remotes,
			}
		},
		"live": func(t *testing.T) *fabricEnv {
			addrs := []string{"127.0.0.1:0", "127.0.0.1:0"}
			srv, err := mpquic.NewLive(addrs...)
			if err != nil {
				t.Skipf("live UDP unavailable: %v", err)
			}
			t.Cleanup(func() { srv.Close() })
			cli, err := mpquic.NewLive(addrs...)
			if err != nil {
				t.Skipf("live UDP unavailable: %v", err)
			}
			t.Cleanup(func() { cli.Close() })
			// A bound-but-unserved network: its sockets accept
			// packets that no protocol endpoint ever answers.
			silent, err := mpquic.NewLive(addrs...)
			if err != nil {
				t.Skipf("live UDP unavailable: %v", err)
			}
			t.Cleanup(func() { silent.Close() })
			return &fabricEnv{
				server:      srv,
				client:      cli,
				remotes:     srv.LocalAddrs(),
				deadPaths:   func() {},
				deadRemotes: silent.LocalAddrs(),
			}
		},
	}
}

// runOnBackends runs fn as a subtest per backend.
func runOnBackends(t *testing.T, fn func(t *testing.T, env *fabricEnv)) {
	for name, mk := range fabricBackends() {
		t.Run(name, func(t *testing.T) {
			fn(t, mk(t))
		})
	}
}

// A GET round trip completes through the Fabric interface alone on
// both backends, and closing the fabric releases Serve with ErrClosed.
func TestFabricDownloadCompletes(t *testing.T) {
	runOnBackends(t, func(t *testing.T, env *fabricEnv) {
		cfg := mpquic.DefaultConfig()
		env.server.ServeGet(env.server.Listen(cfg))
		served := make(chan error, 1)
		go func() { served <- env.server.Serve() }()

		client := env.client.Dial(cfg, 42, env.remotes...)
		res, err := env.client.Download(client, 1<<20)
		if err != nil {
			t.Fatalf("Download: %v", err)
		}
		if res.Size != 1<<20 || res.Elapsed() <= 0 || res.GoodputBps() <= 0 {
			t.Fatalf("implausible result: %+v", res)
		}

		env.server.Close()
		select {
		case err := <-served:
			if !errors.Is(err, mpquic.ErrClosed) {
				t.Fatalf("Serve after Close = %v, want ErrClosed", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("Serve did not return after Close")
		}
	})
}

// Serve blocks until Close and then returns ErrClosed, on both
// backends, even when nothing was ever listened or dialed.
func TestFabricServeCloseLifecycle(t *testing.T) {
	runOnBackends(t, func(t *testing.T, env *fabricEnv) {
		served := make(chan error, 1)
		go func() { served <- env.server.Serve() }()
		select {
		case err := <-served:
			t.Fatalf("Serve returned before Close: %v", err)
		case <-time.After(20 * time.Millisecond):
		}
		env.server.Close()
		select {
		case err := <-served:
			if !errors.Is(err, mpquic.ErrClosed) {
				t.Fatalf("Serve = %v, want ErrClosed", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("Serve did not return after Close")
		}
		// Close is idempotent.
		if err := env.server.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	})
}

// A transfer whose paths never deliver anything times out with the
// unified ErrTimeout on both backends.
func TestFabricDownloadTimeout(t *testing.T) {
	runOnBackends(t, func(t *testing.T, env *fabricEnv) {
		env.deadPaths()
		client := env.client.Dial(mpquic.DefaultConfig(), 42, env.deadRemotes...)
		_, err := env.client.DownloadWith(client, 1<<20, mpquic.DownloadOpts{
			Deadline: 300 * time.Millisecond,
		})
		if !errors.Is(err, mpquic.ErrTimeout) {
			t.Fatalf("DownloadWith on dead paths = %v, want ErrTimeout", err)
		}
	})
}

// A connection that dies mid-transfer (idle timeout across dead
// paths) surfaces as the unified *AbortError on both backends,
// carrying the close reason.
func TestFabricDownloadAbort(t *testing.T) {
	runOnBackends(t, func(t *testing.T, env *fabricEnv) {
		env.deadPaths()
		cfg := mpquic.DefaultConfig()
		cfg.IdleTimeout = 200 * time.Millisecond
		client := env.client.Dial(cfg, 42, env.deadRemotes...)
		_, err := env.client.DownloadWith(client, 1<<20, mpquic.DownloadOpts{
			Deadline: 10 * time.Second,
		})
		var abort *mpquic.AbortError
		if !errors.As(err, &abort) {
			t.Fatalf("DownloadWith past idle timeout = %v, want *AbortError", err)
		}
		if abort.Err == nil || abort.Unwrap() == nil {
			t.Fatalf("AbortError carries no close reason: %v", abort)
		}
	})
}

// An already-canceled context short-circuits DownloadWith with the
// context's error on both backends (the emulated backend checks only
// on entry; the live one also honors cancellation mid-transfer — see
// TestFabricContextCancelMidTransfer).
func TestFabricContextPreCanceled(t *testing.T) {
	runOnBackends(t, func(t *testing.T, env *fabricEnv) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		client := env.client.Dial(mpquic.DefaultConfig(), 42, env.deadRemotes...)
		_, err := env.client.DownloadWith(client, 1<<20, mpquic.DownloadOpts{
			Deadline: 10 * time.Second,
			Ctx:      ctx,
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("DownloadWith with canceled ctx = %v, want context.Canceled", err)
		}
	})
}

// Mid-transfer cancellation is live-only (the emulated loop is
// synchronous in virtual time): canceling while blocked on silent
// paths unblocks the loop promptly with the context error.
func TestFabricContextCancelMidTransfer(t *testing.T) {
	env := fabricBackends()["live"](t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	client := env.client.Dial(mpquic.DefaultConfig(), 42, env.deadRemotes...)
	start := time.Now()
	_, err := env.client.DownloadWith(client, 1<<20, mpquic.DownloadOpts{
		Deadline: 30 * time.Second,
		Ctx:      ctx,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("DownloadWith after cancel = %v, want context.Canceled", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt wake-up", el)
	}
}
