package analysis_test

import (
	"path/filepath"
	"testing"

	"mpquic/internal/analysis"
	"mpquic/internal/analysis/analysistest"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Walltime, "walltime")
}

// TestWalltimeAllowlist loads the same wall-clock-reading code twice:
// under the perf package's import path (allowlisted, no findings) and
// under a plain path (two findings). This proves the allowlist is
// path-based, not accidental.
func TestWalltimeAllowlist(t *testing.T) {
	root := moduleRoot(t)
	dir := filepath.Join("testdata", "src", "perfpkg")

	asPerf, err := analysis.LoadFromDir(root, dir, "mpquic/internal/perf")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers(asPerf, []*analysis.Analyzer{analysis.Walltime})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("allowlisted perf package produced %d findings, want 0: %v", len(diags), diags)
	}

	asOther, err := analysis.LoadFromDir(root, dir, "perfpkg")
	if err != nil {
		t.Fatal(err)
	}
	diags, err = analysis.RunAnalyzers(asOther, []*analysis.Analyzer{analysis.Walltime})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Errorf("non-allowlisted copy produced %d findings, want 2: %v", len(diags), diags)
	}
}
