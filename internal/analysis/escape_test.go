package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpquic/internal/analysis"
)

// writeModule lays out a throwaway module the gate can build.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestEscapeGateFailsOnEscapingNoescapeFunc is the gate's own
// regression test: a //mpq:noescape function whose local demonstrably
// escapes must produce a violation — otherwise the gate is decorative.
func TestEscapeGateFailsOnEscapingNoescapeFunc(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module escapetest\n\ngo 1.24\n",
		"leak.go": `package escapetest

var sink *int

// leak's local must be heap-allocated: its address outlives the call.
//
//mpq:noescape
func leak() *int {
	x := 42
	return &x
}

// fine has nothing escaping.
//
//mpq:noescape
func fine(a, b int) int {
	return a + b
}

func keep() { sink = leak() }
`,
	})
	report, err := analysis.CheckEscapes(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if report.Skipped != "" {
		t.Skipf("toolchain output not parseable: %s", report.Skipped)
	}
	if len(report.Funcs) != 2 {
		t.Fatalf("found %d //mpq:noescape funcs, want 2: %+v", len(report.Funcs), report.Funcs)
	}
	if len(report.Violations) == 0 {
		t.Fatal("no violations reported for a function whose local moves to the heap")
	}
	for _, v := range report.Violations {
		if !strings.Contains(v.Func.Name, "leak") {
			t.Errorf("violation attributed to %s, want leak: %s", v.Func.Name, v)
		}
		if !strings.Contains(v.String(), "//mpq:noescape func") {
			t.Errorf("violation string does not name the annotation: %s", v)
		}
	}
}

// TestEscapeGateCleanModulePasses is the complementary case: an
// annotated function with no escapes yields an empty violation list.
func TestEscapeGateCleanModulePasses(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module escapetest\n\ngo 1.24\n",
		"ok.go": `package escapetest

// sum allocates nothing.
//
//mpq:noescape
func sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

var result = sum([]int{1, 2, 3})
`,
	})
	report, err := analysis.CheckEscapes(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if report.Skipped != "" {
		t.Skipf("toolchain output not parseable: %s", report.Skipped)
	}
	if len(report.Violations) != 0 {
		t.Errorf("clean module reported violations: %v", report.Violations)
	}
	if len(report.Funcs) != 1 {
		t.Errorf("found %d //mpq:noescape funcs, want 1", len(report.Funcs))
	}
}

// TestEscapeGateOnRepo pins the real annotations: the module's own
// //mpq:noescape set must be non-empty and clean, or the fast lane has
// started allocating.
func TestEscapeGateOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping whole-module escape analysis")
	}
	root := moduleRoot(t)
	report, err := analysis.CheckEscapes(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if report.Skipped != "" {
		t.Skipf("toolchain output not parseable: %s", report.Skipped)
	}
	if len(report.Funcs) == 0 {
		t.Fatal("no //mpq:noescape functions found in the module; the hot-path annotations are gone")
	}
	for _, v := range report.Violations {
		t.Errorf("hot-path escape: %s", v)
	}
}
