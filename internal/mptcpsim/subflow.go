// Package mptcpsim models Multipath TCP v0.91 — the paper's multipath
// baseline (§4). It reproduces the MPTCP mechanisms the evaluation
// leans on:
//
//   - each additional subflow needs a full 3-way handshake before
//     carrying data (vs MPQUIC's data-in-first-packet);
//   - data is mapped onto subflows with DSS-style sequence numbers and
//     must be retransmitted in sequence on the same subflow;
//   - the default Linux scheduler (lowest smoothed RTT with window
//     space) drives chunk placement, fed by coarse, Karn-degraded RTT
//     estimates — the ambiguity the paper blames for slow-path bursts;
//   - Opportunistic Retransmission and Penalization (ORP) reinjects
//     stalled data onto the fast path and halves the slow path's
//     window when the connection-level receive window blocks;
//   - a subflow that suffers an RTO with no activity since the last
//     transmission is marked potentially failed and avoided, with its
//     outstanding data reinjected on the remaining subflows;
//   - OLIA coupled congestion control across subflows.
package mptcpsim

import (
	"time"

	"mpquic/internal/cc"
	"mpquic/internal/netem"
	"mpquic/internal/rtt"
	"mpquic/internal/sim"
	"mpquic/internal/stream"
	"mpquic/internal/tcpsim"
)

// MSS mirrors the TCP model's segment payload size.
const MSS = tcpsim.MSS

// headerBase mirrors tcpsim's per-segment header cost (+DSS accounted
// in Segment.WireSize).
const headerBase = 52 + 20

// dupThresh is the FACK-style loss threshold.
const dupThresh = 3

// sfState tracks subflow establishment.
type sfState int

const (
	sfIdle sfState = iota
	sfSynSent
	sfSynReceived
	sfTLSClientHello
	sfTLSServerDone
	sfTLSClientFin
	sfEstablished
)

// sfRecord is one transmitted segment on a subflow, carrying the DSS
// mapping so lost data can be reinjected at the connection level.
type sfRecord struct {
	txSeq     uint64
	sfStart   uint64 // subflow sequence range
	sfEnd     uint64
	dataStart uint64 // connection-level range
	dataEnd   uint64
	dataFin   bool
	isRtx     bool
	reinject  bool // this transmission was an ORP/PF reinjection
	sentTime  time.Duration
	wireSize  int
	settled   bool
}

// rtxChunk queues an in-subflow retransmission with its mapping.
type rtxChunk struct {
	sfStart, sfEnd     uint64
	dataStart, dataEnd uint64
	dataFin            bool
}

// Subflow is one TCP subflow of an MPTCP connection.
type Subflow struct {
	conn   *Conn
	ID     uint8
	Local  netem.Addr
	Remote netem.Addr

	state    sfState
	hsTimer  *sim.Timer
	hsSentAt time.Duration

	est *rtt.Estimator
	cc  *cc.OliaPath

	// Sender state (subflow sequence space).
	sndNxt        uint64
	records       []*sfRecord
	liveRtx       int // live retransmission records (out of seq order)
	nextTxSeq     uint64
	highestAckTx  uint64
	hasAckTx      bool
	bytesInFlight int
	cumAcked      uint64
	sacked        stream.IntervalSet
	rtxQueue      []rtxChunk
	cutbackTx     uint64
	hasCutback    bool
	lastSent      time.Duration
	lastProgress  time.Duration // last ack progress (restarts the RTO)
	lastPenalty   time.Duration

	// Receiver state (subflow sequence space, for subflow acks).
	received    stream.IntervalSet
	unackedSegs int
	ackQueued   bool
	ackDeadline time.Duration

	// potentiallyFailed is Linux MPTCP's PF state: RTO with no
	// activity since the last transmission (§4.3).
	potentiallyFailed bool

	// Stats
	SentSegments  uint64
	SentBytes     uint64
	DataBytesSent uint64
	// SegmentsLost counts segments declared lost on this subflow (FACK
	// threshold or RTO) and requeued for in-subflow retransmission.
	SegmentsLost  uint64
	Retransmits   uint64
	Reinjections  uint64
	RTOCount      uint64
	EstablishedAt time.Duration
}

// Established reports whether the subflow finished its handshake.
func (sf *Subflow) Established() bool { return sf.state == sfEstablished }

// PotentiallyFailed reports the PF state.
func (sf *Subflow) PotentiallyFailed() bool { return sf.potentiallyFailed }

// RTT exposes the (coarse) estimator.
func (sf *Subflow) RTT() *rtt.Estimator { return sf.est }

// Cwnd reports the subflow's congestion window in bytes.
func (sf *Subflow) Cwnd() int { return sf.cc.Cwnd() }

// BytesReceived reports distinct subflow-sequence bytes received on
// this subflow — the per-path share of the incoming byte stream.
func (sf *Subflow) BytesReceived() uint64 { return sf.received.Size() }

// cwndAvailable reports whether a full segment fits the window.
func (sf *Subflow) cwndAvailable() bool {
	return sf.bytesInFlight+MSS+headerBase <= sf.cc.Cwnd()
}

// hasAppetite reports whether the subflow could transmit something.
func (sf *Subflow) hasAppetite() bool {
	return sf.state == sfEstablished && sf.cwndAvailable()
}

// idle reports no in-flight data (ORP precondition).
func (sf *Subflow) idle() bool { return sf.bytesInFlight == 0 }

// rtoBase anchors the retransmission timer at the later of the last
// transmission and the last acknowledgment progress.
func (sf *Subflow) rtoBase() time.Duration {
	if sf.lastProgress > sf.lastSent {
		return sf.lastProgress
	}
	return sf.lastSent
}

// requeueLocal puts a lost record back onto this subflow's rtx queue —
// MPTCP must retransmit in-sequence on the same subflow (§3: "MPTCP is
// forced to (re)transmit data in sequence over each path").
func (sf *Subflow) requeueLocal(r *sfRecord) {
	// Skip parts already data-acked at the connection level: the
	// receiver has them (possibly via a reinjection elsewhere), but
	// subflow-level sequence integrity still demands a resend if the
	// gap blocks the subflow ack stream — Linux fills such holes too,
	// so we resend the full range.
	sf.rtxQueue = append(sf.rtxQueue, rtxChunk{
		sfStart: r.sfStart, sfEnd: r.sfEnd,
		dataStart: r.dataStart, dataEnd: r.dataEnd,
		dataFin: r.dataFin,
	})
	sf.Retransmits++
}
