package analysis

import (
	"go/ast"
	"go/types"
)

// PoolSafety enforces the two lifetime rules of the wire package's
// buffer pool (PR 3's allocation diet made both load-bearing):
//
//  1. After wire.PutPacketBuf(b), the function must not touch b again:
//     the buffer is back in the pool and may already be someone else's
//     packet. The check is flow-insensitive — any syntactic use of b
//     after a non-deferred Put in the same function is flagged
//     (`defer wire.PutPacketBuf(b)` runs last and is exempt).
//
//  2. A packet from wire.DecodeBorrowed aliases the input buffer, so
//     it must be consumed synchronously inside the handler: storing it
//     in a field/map/global, capturing it in a deferred or scheduled
//     closure, or returning it lets the alias outlive the datagram
//     delivery and read recycled bytes.
var PoolSafety = &Analyzer{
	Name: "poolsafety",
	Doc: "forbid use of pooled packet buffers after PutPacketBuf and any " +
		"escape of DecodeBorrowed results from the enclosing handler",
	Run: runPoolSafety,
}

func runPoolSafety(pass *Pass) (any, error) {
	if pass.PkgPath == wirePkgPath {
		return nil, nil // the pool's own implementation handles raw buffers
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		funcBodies(f, func(fn ast.Node, body *ast.BlockStmt) {
			checkUseAfterPut(pass, body)
			checkBorrowEscapes(pass, body)
		})
	}
	return nil, nil
}

// checkUseAfterPut flags identifier uses of b after wire.PutPacketBuf(b).
func checkUseAfterPut(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	// Collect (object, position after which it is dead).
	type putCall struct {
		obj types.Object
		end ast.Node
	}
	var puts []putCall
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.DeferStmt); ok {
			return false // deferred Put runs on exit; later uses are fine
		}
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false // nested function: checked on its own
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !pkgFunc(info, call, wirePkgPath, "PutPacketBuf") || len(call.Args) != 1 {
			return true
		}
		if obj := identObj(info, call.Args[0]); obj != nil {
			puts = append(puts, putCall{obj, call})
		}
		return true
	})
	if len(puts) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		for _, p := range puts {
			if obj == p.obj && id.Pos() > p.end.End() {
				pass.Reportf(id.Pos(),
					"%s is used after wire.PutPacketBuf(%s) returned it to the pool", id.Name, id.Name)
				return true
			}
		}
		return true
	})
}

// checkBorrowEscapes flags escapes of wire.DecodeBorrowed results.
func checkBorrowEscapes(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	// Find `pkt, err := wire.DecodeBorrowed(...)` bindings.
	borrowed := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !pkgFunc(info, call, wirePkgPath, "DecodeBorrowed") {
			return true
		}
		if len(as.Lhs) > 0 {
			if obj := identObj(info, as.Lhs[0]); obj != nil {
				borrowed[obj] = true
			}
		}
		return true
	})
	if len(borrowed) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n.Body != body {
				return false
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if mayCarryAlias(info, res) {
					if obj := capturedBorrow(info, res, borrowed); obj != nil {
						pass.Reportf(res.Pos(),
							"returning %s lets a DecodeBorrowed alias outlive the handler", obj.Name())
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if !isEscapingLValue(info, lhs) {
					continue
				}
				// Match the RHS feeding this LHS (n:n or n:1 forms).
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if rhs == nil || !mayCarryAlias(info, rhs) {
					continue
				}
				if obj := capturedBorrow(info, rhs, borrowed); obj != nil {
					pass.Reportf(rhs.Pos(),
						"storing %s in a field/map/global lets a DecodeBorrowed alias outlive the handler", obj.Name())
				}
			}
		case *ast.DeferStmt:
			reportClosureCapture(pass, n.Call, borrowed, "a deferred closure")
		case *ast.GoStmt:
			reportClosureCapture(pass, n.Call, borrowed, "a goroutine")
		case *ast.CallExpr:
			if methodOn(info, n, simPkgPath, "Clock", "At", "After") ||
				methodOn(info, n, simPkgPath, "Timer", "Reset", "ResetAfter") {
				reportClosureCapture(pass, n, borrowed, "a scheduled closure")
			}
		}
		return true
	})
}

// mayCarryAlias reports whether a value of expr's type can hold a
// reference into the borrowed buffer. Basic scalars (int from len(),
// bool from a nil check, a copied string) cannot, so deriving them
// from a borrowed packet and letting them escape is safe.
func mayCarryAlias(info *types.Info, expr ast.Expr) bool {
	t := info.TypeOf(expr)
	if t == nil {
		return true
	}
	_, basic := t.Underlying().(*types.Basic)
	return !basic
}

// capturedBorrow returns a borrowed object referenced by expr, or nil.
func capturedBorrow(info *types.Info, expr ast.Node, borrowed map[types.Object]bool) types.Object {
	var found types.Object
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && borrowed[obj] {
				found = obj
			}
		}
		return found == nil
	})
	return found
}

// isEscapingLValue reports whether assigning to lhs stores the value
// beyond function-local lifetime: a struct field or index expression,
// or a package-level variable.
func isEscapingLValue(info *types.Info, lhs ast.Expr) bool {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true // *p = pkt writes through a pointer of unknown origin
	case *ast.Ident:
		obj := identObj(info, l)
		if v, ok := obj.(*types.Var); ok {
			return v.Parent() == v.Pkg().Scope() // package-level var
		}
	}
	return false
}

// reportClosureCapture flags function-literal arguments of call that
// capture a borrowed packet.
func reportClosureCapture(pass *Pass, call *ast.CallExpr, borrowed map[types.Object]bool, what string) {
	// `defer func(){...}()` carries the literal as call.Fun;
	// `clock.After(d, func(){...})` carries it in call.Args.
	exprs := append([]ast.Expr{call.Fun}, call.Args...)
	for _, arg := range exprs {
		lit, ok := ast.Unparen(arg).(*ast.FuncLit)
		if !ok {
			continue
		}
		if obj := capturedBorrow(pass.TypesInfo, lit.Body, borrowed); obj != nil {
			pass.Reportf(lit.Pos(),
				"%s captures %s, letting a DecodeBorrowed alias outlive the handler", what, obj.Name())
		}
	}
}
