// Package walltime exercises the walltime analyzer: wall-clock reads
// are flagged, pure time conversions are not, and //mpqvet:allow
// suppresses a finding.
package walltime

import "time"

func bad() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func sleepy() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

func since(t time.Time) time.Duration {
	return time.Since(t) // want `time\.Since reads the wall clock`
}

func after() <-chan time.Time {
	return time.After(time.Second) // want `time\.After reads the wall clock`
}

func ticker() *time.Ticker {
	return time.NewTicker(time.Second) // want `time\.NewTicker reads the wall clock`
}

// okDuration builds durations and dates without observing real time.
func okDuration() time.Duration {
	d := 5 * time.Millisecond
	_ = time.Date(2017, time.December, 12, 0, 0, 0, 0, time.UTC)
	return d
}

// allowed demonstrates an audited suppression: no finding is reported.
func allowed() time.Time {
	//mpqvet:allow walltime exemplar suppression for the analyzer tests
	return time.Now()
}

// allowedInline demonstrates the trailing-comment form.
func allowedInline() time.Time {
	return time.Now() //mpqvet:allow walltime exemplar trailing suppression
}
