package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// AsciiCDF renders one or more empirical CDFs as a text plot, the
// terminal rendition of the paper's Figs. 3/5/8/9. The x axis is
// log-scaled between xMin and xMax (the paper plots time ratios on a
// log axis from 10⁻¹ to 10¹); each series gets its own glyph.
func AsciiCDF(series map[string][]float64, xMin, xMax float64, width, height int) string {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 12
	}
	if xMin <= 0 {
		xMin = 0.1
	}
	if xMax <= xMin {
		xMax = xMin * 100
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#'}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	logMin, logMax := math.Log10(xMin), math.Log10(xMax)
	col := func(x float64) int {
		if x < xMin {
			x = xMin
		}
		if x > xMax {
			x = xMax
		}
		c := int((math.Log10(x) - logMin) / (logMax - logMin) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := func(p float64) int {
		r := height - 1 - int(p*float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	names := sortedKeys(series)
	for si, name := range names {
		g := glyphs[si%len(glyphs)]
		for _, pt := range CDF(series[name]) {
			grid[row(pt.P)][col(pt.X)] = g
		}
	}
	var b strings.Builder
	for i, line := range grid {
		p := 1 - float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%4.2f |%s|\n", p, string(line))
	}
	fmt.Fprintf(&b, "     +%s+\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "      %-*.2g%*.2g\n", width/2, xMin, width-width/2, xMax)
	for si, name := range names {
		fmt.Fprintf(&b, "      %c %s\n", glyphs[si%len(glyphs)], name)
	}
	return b.String()
}

// AsciiBox renders labeled five-number boxes on a shared linear axis —
// the terminal rendition of the paper's Figs. 4/6/7/10.
//
//	label |----[==|==]-------|
func AsciiBox(boxes map[string]Box, lo, hi float64, width int) string {
	if width < 20 {
		width = 50
	}
	if hi <= lo {
		hi = lo + 1
	}
	col := func(x float64) int {
		if x < lo {
			x = lo
		}
		if x > hi {
			x = hi
		}
		c := int((x - lo) / (hi - lo) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	names := sortedKeysBox(boxes)
	labelW := 0
	for _, n := range names {
		if len(n) > labelW {
			labelW = len(n)
		}
	}
	var b strings.Builder
	for _, name := range names {
		box := boxes[name]
		line := []byte(strings.Repeat(" ", width))
		for c := col(box.Min); c <= col(box.Max); c++ {
			line[c] = '-'
		}
		for c := col(box.Q1); c <= col(box.Q3); c++ {
			line[c] = '='
		}
		line[col(box.Min)] = '|'
		line[col(box.Max)] = '|'
		line[col(box.Median)] = 'M'
		fmt.Fprintf(&b, "%-*s |%s|\n", labelW, name, string(line))
	}
	fmt.Fprintf(&b, "%-*s +%s+\n", labelW, "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%-*s  %-*.2g%*.2g\n", labelW, "", width/2, lo, width-width/2, hi)
	return b.String()
}

// Point is one (x, y) sample of a time series.
type Point struct {
	X float64
	Y float64
}

// AsciiTimeSeries renders one or more (x, y) series on shared linear
// axes — the terminal rendition of the paper's cwnd/RTT evolution
// figures. Axes auto-scale to the data (y is floored at 0 so byte
// quantities read naturally); each series gets its own glyph. Series
// are drawn in sorted-name order, so output is deterministic.
func AsciiTimeSeries(series map[string][]Point, width, height int) string {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 12
	}
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMax := math.Inf(-1)
	names := sortedKeysPts(series)
	for _, name := range names {
		for _, pt := range series[name] {
			xMin = math.Min(xMin, pt.X)
			xMax = math.Max(xMax, pt.X)
			yMax = math.Max(yMax, pt.Y)
		}
	}
	if math.IsInf(xMin, 1) { // no data at all
		xMin, xMax, yMax = 0, 1, 1
	}
	if xMax <= xMin {
		xMax = xMin + 1
	}
	if yMax <= 0 {
		yMax = 1
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#'}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int((x - xMin) / (xMax - xMin) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := func(y float64) int {
		if y < 0 {
			y = 0
		}
		r := height - 1 - int(y/yMax*float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, name := range names {
		g := glyphs[si%len(glyphs)]
		for _, pt := range series[name] {
			grid[row(pt.Y)][col(pt.X)] = g
		}
	}
	var b strings.Builder
	for i, line := range grid {
		y := yMax * (1 - float64(i)/float64(height-1))
		fmt.Fprintf(&b, "%10.3g |%s|\n", y, string(line))
	}
	fmt.Fprintf(&b, "%10s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*.3g%*.3g\n", "", width/2, xMin, width-width/2, xMax)
	for si, name := range names {
		fmt.Fprintf(&b, "%10s  %c %s\n", "", glyphs[si%len(glyphs)], name)
	}
	return b.String()
}

func sortedKeysPts(m map[string][]Point) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeys(m map[string][]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysBox(m map[string]Box) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
