package mpquic_test

import (
	"fmt"
	"time"

	"mpquic"
)

// Example downloads one file over Multipath QUIC on an emulated
// two-path network. Everything runs in virtual time on a seeded
// simulation, so the output is deterministic.
func Example() {
	net := mpquic.NewTwoPathNetwork(mpquic.TwoPathConfig{
		Path0: mpquic.PathSpec{CapacityMbps: 10, RTT: 30 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
		Path1: mpquic.PathSpec{CapacityMbps: 10, RTT: 40 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
		Seed:  1,
	})
	server := net.Listen(mpquic.DefaultConfig())
	net.ServeGet(server)
	client := net.Dial(mpquic.DefaultConfig(), 42)

	res, _ := net.Download(client, 4<<20)
	fmt.Printf("downloaded %d MB over %d paths in %v\n",
		res.Size>>20, len(client.Paths()), res.Elapsed().Round(10*time.Millisecond))
	// Output:
	// downloaded 4 MB over 2 paths in 1.87s
}
