// Package live runs the MPQUIC stack over real UDP sockets.
//
// The protocol core (internal/core) is driver-agnostic: it schedules
// on a sim.Clock and moves datagrams through the core.DatagramSender
// boundary. The deterministic simulator implements that boundary with
// emulated links; this package implements it with one UDP socket per
// local path address and a wall clock, so the exact same protocol
// logic — scheduler, OLIA, recovery, tracing, qlog — exchanges real
// packets, unmodified (the paper ran its evaluation this way: a real
// implementation over real networks).
//
// # Sim time as a monotone image of wall time
//
// The driver owns a sim.Clock whose epoch is the moment Run starts.
// Its loop is:
//
//  1. read Clock.NextDeadline() — the earliest armed protocol timer;
//  2. block on socket readability until the wall image of that
//     deadline (a select over reader-goroutine channels and a timer);
//  3. on wake-up, advance the sim clock to wall-elapsed time with
//     Clock.RunUntil, firing every due protocol timer;
//  4. inject received datagrams via netem.Handler.HandleDatagram;
//  5. flush queued egress datagrams to the right socket per path.
//
// Virtual time therefore advances only through RunUntil and always to
// the current wall-elapsed duration: sim time is a monotone map of
// wall time, and everything stamped with sim time (traces, qlog,
// series samples, RunMetrics) works untouched in live mode — the
// timestamps simply read as wall-derived durations since Run.
//
// # What determinism guarantees do NOT hold
//
// Live runs are not reproducible: packet arrival order and timing come
// from the kernel and the network, loss is real (including loopback
// socket-buffer overflow), and timer firings quantize to wall-clock
// scheduling latency. The determinism contract of the simulator
// (same seed → byte-identical artifacts) applies only to sim runs;
// live mode inherits the protocol logic, not the reproducibility.
//
// # Concurrency
//
// One goroutine per socket blocks in ReadFromUDP and hands (buffer,
// source) pairs to the driver loop over a channel; everything else —
// clock, connections, handlers, egress — is touched only by the
// goroutine inside Run. This preserves the single-threaded discipline
// the protocol core was built under, which is why the stack needs no
// locks to be race-clean.
//
// This package is the audited wall-clock exception to the walltime
// analyzer (see internal/analysis): it is the one place besides
// internal/perf where reading real time is the point.
package live

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"mpquic/internal/core"
	"mpquic/internal/netem"
	"mpquic/internal/sim"
	"mpquic/internal/wire"
)

// ErrClosed is returned by Run when the driver is closed before the
// until condition is met.
var ErrClosed = errors.New("live: driver closed")

// packetIn is one received datagram crossing from a reader goroutine
// into the driver loop. buf is pool-backed (wire.GetPacketBuf);
// ownership transfers with the message.
type packetIn struct {
	local netem.Addr
	from  *net.UDPAddr
	buf   []byte
	err   error // terminal reader error; buf is nil
}

// Stats counts driver-level activity (socket I/O, not protocol state;
// per-path protocol counters live on the connection's paths).
type Stats struct {
	PacketsIn   uint64 // datagrams injected into the stack
	PacketsOut  uint64 // datagrams written to sockets
	BytesIn     uint64
	BytesOut    uint64
	NoHandler   uint64 // ingress dropped: no handler for the socket
	NoRoute     uint64 // egress dropped: unknown local addr or bad remote
	WriteErrors uint64 // egress dropped: socket write failed (treated as loss)
}

// Driver runs a sim.Clock against wall time and moves datagrams
// between the protocol core and real UDP sockets. It implements
// core.DatagramSender; pass it to core.Dial / core.Listen where the
// simulator tests pass a *netem.Network.
//
// Endpoints must run with Config.WireSerialization enabled (real
// sockets move bytes, not structs); enable Config.EnableCrypto too
// for real AEAD protection on the wire.
//
// Setup (NewDriver, Dial/Listen, Register) happens before Run; the
// goroutine calling Run then owns all protocol state until Run
// returns. Close may be called from any goroutine.
type Driver struct {
	clock    *sim.Clock
	binder   *PathBinder
	handlers map[netem.Addr]netem.Handler
	egress   []netem.Datagram

	recvCh  chan packetIn
	closeCh chan struct{}
	closeMu sync.Once
	readers sync.WaitGroup

	start   time.Time
	started bool

	Stats Stats
}

var _ core.DatagramSender = (*Driver)(nil)

// NewDriver binds one UDP socket per local address (port 0 picks a
// free port; see Driver.LocalAddrs for the bound result) and starts
// its reader goroutines. The caller owns the driver until Close.
func NewDriver(localAddrs []string) (*Driver, error) {
	binder, err := newPathBinder(localAddrs)
	if err != nil {
		return nil, err
	}
	d := &Driver{
		clock:    sim.NewClock(),
		binder:   binder,
		handlers: make(map[netem.Addr]netem.Handler),
		recvCh:   make(chan packetIn, 1024),
		closeCh:  make(chan struct{}),
	}
	for _, s := range binder.socks {
		d.readers.Add(1)
		go d.readLoop(s)
	}
	return d, nil
}

// Clock returns the driver's clock (implements core.DatagramSender).
// Before Run it sits at the epoch; during Run it tracks wall-elapsed
// time since Run started.
func (d *Driver) Clock() *sim.Clock { return d.clock }

// Binder returns the driver's path binder.
func (d *Driver) Binder() *PathBinder { return d.binder }

// LocalAddrs returns the actually-bound local path addresses in bind
// order (index i is path i's local endpoint). Pass them to core.Dial
// or core.Listen.
func (d *Driver) LocalAddrs() []netem.Addr { return d.binder.Locals() }

// Register implements core.DatagramSender: ingress datagrams arriving
// on the socket bound to addr are dispatched to h.
func (d *Driver) Register(addr netem.Addr, h netem.Handler) {
	d.handlers[addr] = h
}

// Send implements core.DatagramSender: the datagram is queued and
// flushed to its socket when the current event batch finishes (egress
// order is preserved). The payload must be wire-serialized.
func (d *Driver) Send(dg netem.Datagram) {
	d.egress = append(d.egress, dg)
}

// readLoop blocks on one socket, handing received datagrams to the
// driver loop. It exits when the socket closes.
func (d *Driver) readLoop(s *pathSocket) {
	defer d.readers.Done()
	for d.readOne(s) {
	}
}

// readOne performs one blocking read and hands the datagram to the
// driver loop, reporting whether the loop should continue. Buffer
// ownership transfers with the channel send; every other exit recycles
// the buffer (the single trailing PutPacketBuf).
func (d *Driver) readOne(s *pathSocket) bool {
	buf := wire.GetPacketBuf()
	b := buf[:cap(buf)]
	n, from, err := s.conn.ReadFromUDP(b)
	if err == nil {
		select {
		case d.recvCh <- packetIn{local: s.local, from: from, buf: b[:n]}:
			return true
		case <-d.closeCh:
		}
	} else if !errors.Is(err, net.ErrClosed) {
		// Unconnected UDP sockets rarely error; anything else is
		// terminal for this socket — surface it to Run.
		select {
		case d.recvCh <- packetIn{err: fmt.Errorf("live: read %s: %w", s.local, err)}:
		case <-d.closeCh:
		}
	}
	wire.PutPacketBuf(b)
	return false
}

// Run drives the loop until the until condition reports true (checked
// after every batch of work), a terminal error occurs, or the driver
// is closed (ErrClosed). A nil until runs until Close — server mode.
//
// The first Run call pins the wall epoch: sim time 0 is that moment.
// Run may be called again after returning (e.g. one Run per transfer
// on a client driver); later calls keep the original epoch so sim
// time stays monotone across them.
func (d *Driver) Run(until func() bool) error {
	if !d.started {
		d.started = true
		d.start = time.Now()
	}
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		if err := d.flush(); err != nil {
			return err
		}
		if until != nil && until() {
			return nil
		}
		// Arm the wake-up at the wall image of the next sim deadline.
		var timerC <-chan time.Time
		if dl := d.clock.NextDeadline(); dl != sim.Never {
			wait := time.Until(d.start.Add(dl.Duration()))
			if wait < 0 {
				wait = 0
			}
			timer.Reset(wait)
			timerC = timer.C
		}
		select {
		case p := <-d.recvCh:
			if timerC != nil && !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			if err := d.handlePacket(p); err != nil {
				return err
			}
			// Drain whatever else already arrived before re-arming:
			// one advance + flush then covers the whole batch.
		drain:
			for {
				select {
				case q := <-d.recvCh:
					if err := d.handlePacket(q); err != nil {
						return err
					}
				default:
					break drain
				}
			}
		case <-timerC:
			if err := d.advance(); err != nil {
				return err
			}
		case <-d.closeCh:
			d.flush()
			return ErrClosed
		}
	}
}

// handlePacket advances the clock to wall-elapsed time, then injects
// one received datagram into the registered handler.
func (d *Driver) handlePacket(p packetIn) error {
	if p.err != nil {
		return p.err
	}
	if err := d.advance(); err != nil {
		wire.PutPacketBuf(p.buf)
		return err
	}
	h := d.handlers[p.local]
	if h == nil {
		d.Stats.NoHandler++
		wire.PutPacketBuf(p.buf)
		return nil
	}
	d.Stats.PacketsIn++
	d.Stats.BytesIn += uint64(len(p.buf))
	// The handler consumes the frames synchronously and returns the
	// buffer to the pool (see core.RawDatagram).
	h.HandleDatagram(core.RawDatagram(netem.Addr(p.from.String()), p.local, p.buf))
	return nil
}

// advance moves sim time forward to the current wall-elapsed
// duration, firing every protocol timer due on the way. Sim time
// never moves backwards: a wake-up earlier than the current sim time
// (sub-timer-resolution packet bursts) is a no-op.
func (d *Driver) advance() error {
	el := sim.Time(time.Since(d.start))
	if el > d.clock.Now() {
		return d.clock.RunUntil(el)
	}
	return nil
}

// flush writes every queued egress datagram to the socket owning its
// From address. Write failures are packet loss (counted, not fatal),
// as a real wire would drop them.
func (d *Driver) flush() error {
	for i := range d.egress {
		dg := d.egress[i]
		d.egress[i] = netem.Datagram{} // drop the payload reference
		if err := d.writeDatagram(dg); err != nil {
			d.egress = d.egress[:0]
			return err
		}
	}
	d.egress = d.egress[:0]
	return nil
}

// writeDatagram sends one egress datagram and recycles its buffer.
func (d *Driver) writeDatagram(dg netem.Datagram) error {
	b, ok := core.RawBytes(dg.Payload)
	if !ok {
		return fmt.Errorf("live: struct-mode payload %s->%s; endpoints must enable Config.WireSerialization", dg.From, dg.To)
	}
	defer wire.PutPacketBuf(b)
	s := d.binder.socketFor(dg.From)
	if s == nil {
		d.Stats.NoRoute++
		return nil
	}
	ra, err := d.binder.RemoteUDP(dg.To)
	if err != nil {
		d.Stats.NoRoute++
		return nil
	}
	if _, err := s.conn.WriteToUDP(b, ra); err != nil {
		d.Stats.WriteErrors++
	} else {
		d.Stats.PacketsOut++
		d.Stats.BytesOut += uint64(len(b))
	}
	return nil
}

// Flush writes any queued egress immediately (e.g. a CONNECTION_CLOSE
// sent after Run returned).
func (d *Driver) Flush() error { return d.flush() }

// Close shuts the driver down: sockets close (unblocking readers) and
// a concurrent Run returns ErrClosed. Safe to call from any goroutine
// and more than once.
func (d *Driver) Close() error {
	d.closeMu.Do(func() {
		close(d.closeCh)
		d.binder.closeSockets()
	})
	d.readers.Wait()
	return nil
}
