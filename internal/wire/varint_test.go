package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestVarintKnownEncodings(t *testing.T) {
	cases := []struct {
		v    uint64
		want []byte
	}{
		{0, []byte{0x00}},
		{63, []byte{0x3f}},
		{64, []byte{0x40, 0x40}},
		{16383, []byte{0x7f, 0xff}},
		{16384, []byte{0x80, 0x00, 0x40, 0x00}},
		{1073741823, []byte{0xbf, 0xff, 0xff, 0xff}},
		{1073741824, []byte{0xc0, 0x00, 0x00, 0x00, 0x40, 0x00, 0x00, 0x00}},
	}
	for _, c := range cases {
		got := AppendVarint(nil, c.v)
		if !bytes.Equal(got, c.want) {
			t.Errorf("AppendVarint(%d) = %x, want %x", c.v, got, c.want)
		}
		if VarintLen(c.v) != len(c.want) {
			t.Errorf("VarintLen(%d) = %d, want %d", c.v, VarintLen(c.v), len(c.want))
		}
		v, n, err := ConsumeVarint(got)
		if err != nil || v != c.v || n != len(c.want) {
			t.Errorf("ConsumeVarint(%x) = (%d,%d,%v)", got, v, n, err)
		}
	}
}

func TestVarintRoundTripProperty(t *testing.T) {
	f := func(raw uint64) bool {
		v := raw & MaxVarint
		b := AppendVarint(nil, v)
		if len(b) != VarintLen(v) {
			return false
		}
		got, n, err := ConsumeVarint(b)
		return err == nil && got == v && n == len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestVarintTruncated(t *testing.T) {
	if _, _, err := ConsumeVarint(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	b := AppendVarint(nil, 100000)
	if _, _, err := ConsumeVarint(b[:2]); err == nil {
		t.Fatal("truncated varint accepted")
	}
}

func TestVarintPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range varint")
		}
	}()
	AppendVarint(nil, MaxVarint+1)
}

func TestVarintConsumeMidBuffer(t *testing.T) {
	b := AppendVarint(nil, 300)
	b = AppendVarint(b, 5)
	v1, n1, err := ConsumeVarint(b)
	if err != nil || v1 != 300 {
		t.Fatalf("first: %d %v", v1, err)
	}
	v2, n2, err := ConsumeVarint(b[n1:])
	if err != nil || v2 != 5 || n1+n2 != len(b) {
		t.Fatalf("second: %d %v", v2, err)
	}
}
