package expdesign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// ArtifactVersion is the JSONL record schema version. Records with a
// different version are ignored on load, so a schema change simply
// invalidates old checkpoints instead of mis-parsing them.
const ArtifactVersion = 1

// ArtifactRecord is one completed scenario as persisted to a grid
// artifact file — one JSON object per line. The (ClassSeed, Scenario.ID,
// Size, Reps) tuple keys the record: a restarted or re-sharded grid
// recomputes a scenario only when no record with its key exists.
type ArtifactRecord struct {
	V         int             `json:"v"`
	Class     string          `json:"class"`
	ClassSeed uint64          `json:"class_seed"`
	Size      uint64          `json:"size"`
	Reps      int             `json:"reps"`
	Scenario  Scenario        `json:"scenario"`
	Runs      [4][2]RunResult `json:"runs"`
}

// artifactKey identifies one scenario's grid point. Class identity
// rides on the seed (class names and seeds are paired 1:1), so merged
// shards from differently-named-but-identically-seeded configs cannot
// alias.
type artifactKey struct {
	ClassSeed uint64
	ID        int
	Size      uint64
	Reps      int
}

func (r ArtifactRecord) key() artifactKey {
	return artifactKey{ClassSeed: r.ClassSeed, ID: r.Scenario.ID, Size: r.Size, Reps: r.Reps}
}

// ArtifactFileName is the canonical artifact name of a (class, size)
// grid: grid-<class>-<size>.jsonl, with the shard suffix
// .shard<i>of<n> before the extension when the grid is sharded.
func ArtifactFileName(class Class, size uint64, shard, numShards int) string {
	sizeTag := fmt.Sprintf("%dB", size)
	switch {
	case size >= 1<<20 && size%(1<<20) == 0:
		sizeTag = fmt.Sprintf("%dMB", size>>20)
	case size >= 1<<10 && size%(1<<10) == 0:
		sizeTag = fmt.Sprintf("%dKB", size>>10)
	}
	if numShards > 1 {
		return fmt.Sprintf("grid-%s-%s.shard%dof%d.jsonl", class.Name, sizeTag, shard, numShards)
	}
	return fmt.Sprintf("grid-%s-%s.jsonl", class.Name, sizeTag)
}

// Checkpoint is an append-only JSONL store of completed scenarios.
// Opening loads every valid existing record (tolerating a truncated
// trailing line from an interrupted writer); Append persists one
// scenario as soon as it finishes, so an interrupted grid loses at
// most the scenarios still in flight.
type Checkpoint struct {
	path string

	mu   sync.Mutex
	f    *os.File
	done map[artifactKey]ArtifactRecord
}

// OpenCheckpoint opens (creating if needed) the artifact file at path
// and indexes its existing records for resume lookups.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	done, err := readArtifactFile(path, true)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	// A write torn by the previous interruption can leave the file
	// without a trailing newline; terminate it so the next record
	// starts on a fresh line instead of extending the corpse.
	if st, err := f.Stat(); err == nil && st.Size() > 0 {
		tail := make([]byte, 1)
		if _, err := f.ReadAt(tail, st.Size()-1); err == nil && tail[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	return &Checkpoint{path: path, f: f, done: done}, nil
}

// Len reports the number of resumable records loaded at open.
func (cp *Checkpoint) Len() int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return len(cp.done)
}

// Lookup returns the persisted result for a scenario of the given grid
// configuration, if one exists.
func (cp *Checkpoint) Lookup(cfg GridConfig, sc Scenario) (ScenarioResult, bool) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	rec, ok := cp.done[artifactKey{ClassSeed: cfg.Class.Seed, ID: sc.ID, Size: cfg.Size, Reps: cfg.Reps}]
	if !ok {
		return ScenarioResult{}, false
	}
	return ScenarioResult{Scenario: rec.Scenario, Runs: rec.Runs}, true
}

// Append persists one completed scenario. Safe for concurrent use by
// the grid workers; each record is written with a single buffered
// write-plus-newline so lines never interleave.
func (cp *Checkpoint) Append(cfg GridConfig, sr ScenarioResult) error {
	rec := ArtifactRecord{
		V:         ArtifactVersion,
		Class:     cfg.Class.Name,
		ClassSeed: cfg.Class.Seed,
		Size:      cfg.Size,
		Reps:      cfg.Reps,
		Scenario:  sr.Scenario,
		Runs:      sr.Runs,
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.f == nil {
		return fmt.Errorf("expdesign: checkpoint %s is closed", cp.path)
	}
	if _, err := cp.f.Write(line); err != nil {
		return err
	}
	cp.done[rec.key()] = rec
	return nil
}

// Close flushes and closes the underlying file.
func (cp *Checkpoint) Close() error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.f == nil {
		return nil
	}
	err := cp.f.Close()
	cp.f = nil
	return err
}

// readArtifactFile parses a JSONL artifact into a key-indexed map.
// With lenient set, a missing file yields an empty map and a malformed
// line (the tail of an interrupted write) is skipped rather than
// failing the load; later duplicates of a key win, matching
// append-order semantics.
func readArtifactFile(path string, lenient bool) (map[artifactKey]ArtifactRecord, error) {
	out := make(map[artifactKey]ArtifactRecord)
	f, err := os.Open(path)
	if err != nil {
		if lenient && os.IsNotExist(err) {
			return out, nil
		}
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec ArtifactRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			if lenient {
				continue
			}
			return nil, fmt.Errorf("expdesign: %s: %w", path, err)
		}
		if rec.V != ArtifactVersion {
			continue
		}
		out[rec.key()] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// LoadFigureData reads one or more grid artifact files (e.g. the
// shards of a split grid) and merges them into a FigureData, deduped
// by scenario key and sorted by scenario ID. All records must agree on
// (class, size); mixing grids is an error.
func LoadFigureData(paths ...string) (FigureData, error) {
	merged := make(map[artifactKey]ArtifactRecord)
	for _, path := range paths {
		recs, err := readArtifactFile(path, true)
		if err != nil {
			return FigureData{}, err
		}
		for k, rec := range recs {
			merged[k] = rec
		}
	}
	var fd FigureData
	// Iterate the merged map through its sorted keys: the key is a
	// total order, so the result is deterministic even if two records
	// share a scenario ID (the mixed-grid error path below).
	keys := make([]artifactKey, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		if a.ClassSeed != b.ClassSeed {
			return a.ClassSeed < b.ClassSeed
		}
		if a.Size != b.Size {
			return a.Size < b.Size
		}
		return a.Reps < b.Reps
	})
	for _, k := range keys {
		rec := merged[k]
		if fd.Class == "" {
			fd.Class, fd.Size = rec.Class, rec.Size
		}
		if rec.Class != fd.Class || rec.Size != fd.Size {
			return FigureData{}, fmt.Errorf("expdesign: mixed grids: (%s, %d) vs (%s, %d)",
				rec.Class, rec.Size, fd.Class, fd.Size)
		}
		fd.Results = append(fd.Results, ScenarioResult{Scenario: rec.Scenario, Runs: rec.Runs})
	}
	return fd, nil
}
