// Package rtt implements round-trip-time estimation.
//
// Two operating modes reflect the protocols compared in the paper:
//
//   - Precise (QUIC): every ACK yields an unambiguous sample because
//     retransmissions get new packet numbers, and the peer's reported
//     ack delay is subtracted (§2). This is the "precise path latency
//     estimation" the paper credits for MPQUIC's scheduler accuracy.
//   - Coarse (TCP): Karn's algorithm discards samples for
//     retransmitted segments, and samples are quantized to a clock
//     granularity, reproducing the RTT ambiguity the paper blames for
//     the Linux MPTCP scheduler's slow-path bursts (§4.1).
package rtt

import "time"

// Config tunes an Estimator.
type Config struct {
	// Granularity quantizes samples (TCP mode); zero keeps microsecond
	// precision (QUIC mode).
	Granularity time.Duration
	// InitialRTO is the retransmission timeout before any sample.
	InitialRTO time.Duration
	// MinRTO floors the computed RTO.
	MinRTO time.Duration
	// MaxRTO caps the computed RTO (including backoff).
	MaxRTO time.Duration
}

// DefaultQUIC mirrors quic-go's loss recovery constants.
func DefaultQUIC() Config {
	return Config{
		InitialRTO: 500 * time.Millisecond,
		MinRTO:     200 * time.Millisecond,
		MaxRTO:     60 * time.Second,
	}
}

// DefaultTCP mirrors Linux TCP (HZ=1000 → 1 ms granularity, 200 ms min
// RTO, 1 s initial RTO after the handshake).
func DefaultTCP() Config {
	return Config{
		Granularity: time.Millisecond,
		InitialRTO:  time.Second,
		MinRTO:      200 * time.Millisecond,
		MaxRTO:      120 * time.Second,
	}
}

// Estimator tracks smoothed RTT per RFC 6298.
type Estimator struct {
	cfg      Config
	srtt     time.Duration
	rttvar   time.Duration
	minRTT   time.Duration
	latest   time.Duration
	samples  int
	backoffs int
}

// New returns an estimator with no samples.
func New(cfg Config) *Estimator {
	return &Estimator{cfg: cfg}
}

// Update records a sample. ackDelay is the peer-reported delay, only
// honored in precise mode (zero granularity); coarse mode ignores it,
// as TCP has no equivalent signal.
func (e *Estimator) Update(sample, ackDelay time.Duration) {
	if sample <= 0 {
		return
	}
	if e.cfg.Granularity > 0 {
		ackDelay = 0
		sample = sample.Round(e.cfg.Granularity)
		if sample < e.cfg.Granularity {
			sample = e.cfg.Granularity
		}
	}
	if e.minRTT == 0 || sample < e.minRTT {
		e.minRTT = sample
	}
	// Subtract ack delay only when it keeps the sample above min RTT
	// (QUIC's rule, preventing underestimation).
	adjusted := sample
	if ackDelay > 0 && sample-ackDelay >= e.minRTT {
		adjusted = sample - ackDelay
	}
	e.latest = adjusted
	if e.samples == 0 {
		e.srtt = adjusted
		e.rttvar = adjusted / 2
	} else {
		d := e.srtt - adjusted
		if d < 0 {
			d = -d
		}
		e.rttvar = (3*e.rttvar + d) / 4
		e.srtt = (7*e.srtt + adjusted) / 8
	}
	e.samples++
	e.backoffs = 0
}

// HasSample reports whether at least one sample was recorded.
func (e *Estimator) HasSample() bool { return e.samples > 0 }

// SmoothedRTT returns the smoothed RTT (zero before any sample).
func (e *Estimator) SmoothedRTT() time.Duration { return e.srtt }

// LatestRTT returns the last adjusted sample.
func (e *Estimator) LatestRTT() time.Duration { return e.latest }

// MinRTT returns the smallest observed sample.
func (e *Estimator) MinRTT() time.Duration { return e.minRTT }

// Var returns the RTT variance estimate.
func (e *Estimator) Var() time.Duration { return e.rttvar }

// Backoff doubles subsequent RTOs (exponential backoff after timeout).
func (e *Estimator) Backoff() { e.backoffs++ }

// ResetBackoff clears timeout backoff (on forward progress).
func (e *Estimator) ResetBackoff() { e.backoffs = 0 }

// RTO computes the retransmission timeout, including backoff.
func (e *Estimator) RTO() time.Duration {
	var rto time.Duration
	if e.samples == 0 {
		rto = e.cfg.InitialRTO
	} else {
		rttvar4 := 4 * e.rttvar
		if e.cfg.Granularity > 0 && rttvar4 < e.cfg.Granularity {
			rttvar4 = e.cfg.Granularity
		}
		rto = e.srtt + rttvar4
	}
	if rto < e.cfg.MinRTO {
		rto = e.cfg.MinRTO
	}
	for i := 0; i < e.backoffs; i++ {
		rto *= 2
		if rto >= e.cfg.MaxRTO {
			return e.cfg.MaxRTO
		}
	}
	if rto > e.cfg.MaxRTO {
		rto = e.cfg.MaxRTO
	}
	return rto
}
