// Handover: the §4.3 scenario — request/response traffic on a
// connection whose initial (lower-latency) path dies after 3 seconds.
// Multipath QUIC marks the path potentially-failed on the first RTO,
// retransmits over the surviving path, and flags the failure to the
// server in a PATHS frame so responses keep flowing (Fig. 11).
//
//	go run ./examples/handover
package main

import (
	"fmt"
	"time"

	"mpquic"
)

func main() {
	net := mpquic.NewTwoPathNetwork(mpquic.TwoPathConfig{
		Path0: mpquic.PathSpec{CapacityMbps: 10, RTT: 15 * time.Millisecond, QueueDelay: 100 * time.Millisecond}, // bad WiFi
		Path1: mpquic.PathSpec{CapacityMbps: 10, RTT: 25 * time.Millisecond, QueueDelay: 100 * time.Millisecond}, // good cellular
		Seed:  3,
	})
	server := net.Listen(mpquic.DefaultConfig())
	net.ServeEcho(server)

	client := net.Dial(mpquic.DefaultConfig(), 11)
	train := net.StartRequestTrain(client, 12*time.Second)

	// The WiFi network fails at t = 3 s.
	net.At(3*time.Second, func() { net.KillPath(0) })

	if err := net.RunFor(15 * time.Second); err != nil {
		fmt.Println("simulation error:", err)
		return
	}

	fmt.Println("sent_time_s  delay_ms")
	for _, s := range train.Samples() {
		marker := ""
		if s.SentAt > 3*time.Second && s.Delay > 100*time.Millisecond {
			marker = "   <-- handover recovery"
		}
		fmt.Printf("%10.2f  %8.1f%s\n", s.SentAt.Seconds(), s.Delay.Seconds()*1000, marker)
	}
	if p0 := client.PathByID(0); p0 != nil {
		fmt.Printf("\ninitial path potentially-failed: %v\n", p0.PotentiallyFailed())
	}
}
