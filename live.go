package mpquic

import (
	"time"

	"mpquic/internal/apps"
	"mpquic/internal/core"
	"mpquic/internal/live"
	"mpquic/internal/netem"
)

// Live mode: the same protocol stack over real UDP sockets and a wall
// clock (internal/live), behind the same facade shapes as the
// emulated Network. See DESIGN.md, "Live mode".

// DefaultLiveDeadline is the wall-time budget LiveNetwork.Download
// grants a transfer before returning ErrTimeout. Live transfers cross
// real networks, so the default is minutes, not the simulator's
// effectively-unbounded virtual deadline.
const DefaultLiveDeadline = 2 * time.Minute

// ErrLiveClosed is returned by LiveNetwork.Serve when the network is
// closed — the clean way to stop a live server.
var ErrLiveClosed = live.ErrClosed

// LiveAbortError is returned by LiveNetwork.Download when the
// connection dies before the transfer completes; it wraps the close
// reason.
type LiveAbortError = live.AbortError

// LiveNetwork runs MPQUIC endpoints over real UDP sockets: one socket
// per local path address, sim time mapped monotonically onto wall
// time. Unlike Network, runs are not reproducible — the kernel and
// the real network schedule the packets.
type LiveNetwork struct {
	d *live.Driver
}

// NewLive binds one UDP socket per local address ("ip:port"; port 0
// picks a free port) and returns a live network. Close it when done.
func NewLive(localAddrs ...string) (*LiveNetwork, error) {
	d, err := live.NewDriver(localAddrs)
	if err != nil {
		return nil, err
	}
	return &LiveNetwork{d: d}, nil
}

// Driver exposes the underlying live driver for advanced use (stats,
// custom run loops).
func (n *LiveNetwork) Driver() *live.Driver { return n.d }

// LocalAddrs returns the actually-bound local addresses in path
// order — hand them to a remote peer's Dial.
func (n *LiveNetwork) LocalAddrs() []string {
	addrs := n.d.LocalAddrs()
	out := make([]string, len(addrs))
	for i, a := range addrs {
		out[i] = string(a)
	}
	return out
}

// liveConfig forces the settings real sockets require.
func liveConfig(cfg Config) Config {
	cfg.WireSerialization = true
	return cfg
}

// Listen starts a (MP)QUIC server on every bound local address.
func (n *LiveNetwork) Listen(cfg Config) *Listener {
	return core.Listen(n.d, liveConfig(cfg), n.d.LocalAddrs())
}

// ServeGet attaches the paper's GET file server to a listener.
func (n *LiveNetwork) ServeGet(l *Listener) { apps.NewGetServer(l) }

// Serve drives the server loop until Close (returns ErrLiveClosed) or
// a socket error. Call after Listen+ServeGet.
func (n *LiveNetwork) Serve() error { return n.d.Run(nil) }

// Dial opens a client connection toward remote path addresses, one
// per bound local socket (remotes[i] pairs with local socket i as
// path i).
func (n *LiveNetwork) Dial(cfg Config, connID uint64, remotes ...string) *Conn {
	ra := make([]netem.Addr, len(remotes))
	for i, r := range remotes {
		ra[i] = netem.Addr(r)
	}
	return core.Dial(n.d, liveConfig(cfg), core.NewConnID(connID), n.d.LocalAddrs(), ra)
}

// Download runs a blocking GET of size bytes over the live network,
// driving the wall-clock loop until completion. Timestamps in the
// result are wall-derived durations since the loop first started. It
// returns ErrTimeout after DefaultLiveDeadline, or a *LiveAbortError
// if the connection dies first.
func (n *LiveNetwork) Download(client *Conn, size uint64) (GetResult, error) {
	return n.DownloadWith(client, size, DownloadOpts{})
}

// DownloadWith is Download with an explicit wall deadline.
func (n *LiveNetwork) DownloadWith(client *Conn, size uint64, opts DownloadOpts) (GetResult, error) {
	deadline := opts.Deadline
	if deadline <= 0 {
		deadline = DefaultLiveDeadline
	}
	res, err := live.Download(n.d, client, size, deadline)
	if err == live.ErrTimeout {
		err = ErrTimeout // the facade's timeout error, same as Network
	}
	return res, err
}

// Close shuts the sockets down; a concurrent Serve returns
// ErrLiveClosed. Safe to call more than once.
func (n *LiveNetwork) Close() error { return n.d.Close() }
