package core_test

import (
	"testing"
	"time"

	"mpquic/internal/apps"
	"mpquic/internal/core"
	"mpquic/internal/netem"
	"mpquic/internal/sim"
)

// harness bundles one client/server pair over the Fig. 2 topology.
type harness struct {
	clock    *sim.Clock
	tp       *netem.TwoPathNet
	listener *core.Listener
	client   *core.Conn
}

func symSpecs(mbps float64, rtt time.Duration) [2]netem.PathSpec {
	return [2]netem.PathSpec{
		{CapacityMbps: mbps, RTT: rtt, QueueDelay: 100 * time.Millisecond},
		{CapacityMbps: mbps, RTT: rtt, QueueDelay: 100 * time.Millisecond},
	}
}

func newHarness(t *testing.T, clientCfg, serverCfg core.Config, specs [2]netem.PathSpec) *harness {
	t.Helper()
	clock := sim.NewClock()
	clock.Limit = 50_000_000
	tp := netem.NewTwoPath(clock, sim.NewRand(42), specs)
	h := &harness{clock: clock, tp: tp}
	h.listener = core.Listen(tp.Net, serverCfg, tp.ServerAddrs[:])
	locals := tp.ClientAddrs[:]
	remotes := tp.ServerAddrs[:]
	if !clientCfg.Multipath {
		locals, remotes = locals[:1], remotes[:1]
	}
	h.client = core.Dial(tp.Net, clientCfg, 0xabcd, locals, remotes)
	return h
}

func (h *harness) run(t *testing.T, until time.Duration) {
	t.Helper()
	if err := h.clock.RunUntil(sim.Time(until)); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func (h *harness) serverConn(t *testing.T) *core.Conn {
	t.Helper()
	conns := h.listener.Conns()
	if len(conns) != 1 {
		t.Fatalf("server has %d conns", len(conns))
	}
	return conns[0]
}

func TestHandshakeCompletesInOneRTT(t *testing.T) {
	cfg := core.DefaultSinglePathConfig()
	h := newHarness(t, cfg, cfg, symSpecs(10, 40*time.Millisecond))
	var done time.Duration
	h.client.OnHandshakeComplete(func() { done = h.clock.Now().Duration() })
	h.run(t, time.Second)
	if !h.client.HandshakeComplete() {
		t.Fatal("handshake did not complete")
	}
	// 1 RTT (40 ms) plus serialization of the padded CHLO/SHLO
	// (~1.1 ms each at 10 Mbps).
	if done < 40*time.Millisecond || done > 50*time.Millisecond {
		t.Fatalf("handshake took %v, want ~1 RTT (40ms)", done)
	}
	if !h.serverConn(t).HandshakeComplete() {
		t.Fatal("server handshake incomplete")
	}
}

func TestSinglePathRealDataEcho(t *testing.T) {
	cfg := core.DefaultSinglePathConfig()
	h := newHarness(t, cfg, cfg, symSpecs(10, 20*time.Millisecond))
	apps.NewGetServer(h.listener)

	// A real-bytes request must arrive intact (tests real payload
	// transport end to end).
	var got []byte
	srvGot := make(chan struct{}, 1)
	_ = srvGot
	h.client.OnHandshakeComplete(func() {
		s := h.client.OpenStream()
		s.OnData(func() {
			if n := s.Readable(); n > 0 {
				_, data := s.Read(n)
				got = append(got, data...)
			}
		})
		s.Write([]byte("GET 5000"))
		s.Close()
	})
	h.run(t, 5*time.Second)
	// GetServer answers with 5000 synthetic bytes; synthetic reads
	// return nil data but count.
	cs := h.client.StreamByID(3)
	if cs == nil || !cs.Finished() {
		t.Fatal("response not finished")
	}
	if cs.BytesReceived() != 5000 {
		t.Fatalf("received %d bytes", cs.BytesReceived())
	}
}

func TestSinglePathDownloadGoodput(t *testing.T) {
	cfg := core.DefaultSinglePathConfig()
	h := newHarness(t, cfg, cfg, symSpecs(20, 30*time.Millisecond))
	apps.NewGetServer(h.listener)
	var res *apps.GetResult
	apps.NewGetClient(h.client, 2<<20, func() time.Duration { return h.clock.Now().Duration() },
		func(r apps.GetResult) { res = &r })
	h.run(t, 60*time.Second)
	if res == nil {
		t.Fatal("download did not finish")
	}
	// 2 MiB at 20 Mbps is ~0.84 s minimum; handshake + slow start
	// overhead allows up to ~3 s.
	if got := res.Elapsed(); got < 800*time.Millisecond || got > 3*time.Second {
		t.Fatalf("download took %v", got)
	}
	gp := res.GoodputBps() / 1e6
	if gp < 5 || gp > 20 {
		t.Fatalf("goodput %.1f Mbps out of range", gp)
	}
}

func TestMultipathAggregatesBandwidth(t *testing.T) {
	size := uint64(4 << 20)
	elapsed := func(cfgC, cfgS core.Config) time.Duration {
		h := newHarness(t, cfgC, cfgS, symSpecs(10, 30*time.Millisecond))
		apps.NewGetServer(h.listener)
		var res *apps.GetResult
		apps.NewGetClient(h.client, size, func() time.Duration { return h.clock.Now().Duration() },
			func(r apps.GetResult) { res = &r })
		h.run(t, 120*time.Second)
		if res == nil {
			t.Fatal("download did not finish")
		}
		return res.Elapsed()
	}
	sp := core.DefaultSinglePathConfig()
	mp := core.DefaultConfig()
	tSingle := elapsed(sp, sp)
	tMulti := elapsed(mp, mp)
	if tMulti >= tSingle {
		t.Fatalf("multipath (%v) not faster than single path (%v)", tMulti, tSingle)
	}
	// Two identical 10 Mbps paths should approach 2x: require ≥1.5x.
	if float64(tSingle)/float64(tMulti) < 1.5 {
		t.Fatalf("aggregation ratio %.2f < 1.5 (single %v, multi %v)",
			float64(tSingle)/float64(tMulti), tSingle, tMulti)
	}
}

func TestMultipathUsesBothPaths(t *testing.T) {
	mp := core.DefaultConfig()
	h := newHarness(t, mp, mp, symSpecs(10, 30*time.Millisecond))
	apps.NewGetServer(h.listener)
	var res *apps.GetResult
	apps.NewGetClient(h.client, 4<<20, func() time.Duration { return h.clock.Now().Duration() },
		func(r apps.GetResult) { res = &r })
	h.run(t, 120*time.Second)
	if res == nil {
		t.Fatal("download did not finish")
	}
	srv := h.serverConn(t)
	paths := srv.Paths()
	if len(paths) != 2 {
		t.Fatalf("server sees %d paths", len(paths))
	}
	for _, p := range paths {
		if p.SentBytes < uint64(1<<20) {
			t.Fatalf("path %d sent only %d bytes — no aggregation", p.ID, p.SentBytes)
		}
	}
	// Client-created second path must have an odd ID.
	if paths[1].ID%2 != 1 {
		t.Fatalf("client-created path has even ID %d", paths[1].ID)
	}
}

func TestSchedulerDuplicatesOnFreshPath(t *testing.T) {
	mp := core.DefaultConfig()
	h := newHarness(t, mp, mp, symSpecs(10, 30*time.Millisecond))
	apps.NewGetServer(h.listener)
	apps.NewGetClient(h.client, 1<<20, func() time.Duration { return h.clock.Now().Duration() }, nil)
	h.run(t, 60*time.Second)
	srv := h.serverConn(t)
	if srv.Stats.DuplicatedPackets == 0 {
		t.Fatal("server never duplicated onto the fresh path")
	}
	// Ablation: with duplication disabled, no duplicates.
	mp2 := core.DefaultConfig()
	mp2.DuplicateOnNewPath = false
	mp2.Scheduler = core.SchedLowestRTTNoDup
	h2 := newHarness(t, mp2, mp2, symSpecs(10, 30*time.Millisecond))
	apps.NewGetServer(h2.listener)
	apps.NewGetClient(h2.client, 1<<20, func() time.Duration { return h2.clock.Now().Duration() }, nil)
	h2.run(t, 60*time.Second)
	if h2.serverConn(t).Stats.DuplicatedPackets != 0 {
		t.Fatal("nodup scheduler duplicated")
	}
}

func TestTransferSurvivesRandomLoss(t *testing.T) {
	specs := symSpecs(10, 30*time.Millisecond)
	specs[0].LossRate = 0.02
	specs[1].LossRate = 0.02
	for name, cfg := range map[string]core.Config{
		"singlepath": core.DefaultSinglePathConfig(),
		"multipath":  core.DefaultConfig(),
	} {
		h := newHarness(t, cfg, cfg, specs)
		apps.NewGetServer(h.listener)
		var res *apps.GetResult
		apps.NewGetClient(h.client, 2<<20, func() time.Duration { return h.clock.Now().Duration() },
			func(r apps.GetResult) { res = &r })
		h.run(t, 300*time.Second)
		if res == nil {
			t.Fatalf("%s: download did not finish under 2%% loss", name)
		}
	}
}

func TestWireSerializationWithCryptoMatchesStructMode(t *testing.T) {
	run := func(wireMode, cryptoMode bool) time.Duration {
		cfg := core.DefaultConfig()
		cfg.WireSerialization = wireMode
		cfg.EnableCrypto = cryptoMode
		h := newHarness(t, cfg, cfg, symSpecs(10, 30*time.Millisecond))
		apps.NewGetServer(h.listener)
		var res *apps.GetResult
		apps.NewGetClient(h.client, 1<<20, func() time.Duration { return h.clock.Now().Duration() },
			func(r apps.GetResult) { res = &r })
		h.run(t, 60*time.Second)
		if res == nil {
			t.Fatal("download did not finish")
		}
		return res.Elapsed()
	}
	structMode := run(false, false)
	wireClear := run(true, false)
	wireSealed := run(true, true)
	if structMode != wireClear || structMode != wireSealed {
		t.Fatalf("modes disagree: struct=%v wire=%v wire+aead=%v", structMode, wireClear, wireSealed)
	}
}

func TestHandoverPotentiallyFailedAndPathsFrame(t *testing.T) {
	mp := core.DefaultConfig()
	specs := [2]netem.PathSpec{
		{CapacityMbps: 10, RTT: 15 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
		{CapacityMbps: 10, RTT: 25 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
	}
	h := newHarness(t, mp, mp, specs)
	apps.NewEchoServer(h.listener)
	client := apps.NewReqRespClient(h.client, h.clock, 10*time.Second)

	// Kill path 0 at t=3s (§4.3).
	h.clock.At(sim.Time(3*time.Second), func() { h.tp.KillPath(0) })
	h.run(t, 12*time.Second)

	samples := client.Samples()
	if len(samples) < 15 {
		t.Fatalf("only %d samples — traffic did not survive handover", len(samples))
	}
	// The client must have marked path 0 potentially failed.
	p0 := h.client.PathByID(0)
	if p0 == nil || !p0.PotentiallyFailed() {
		t.Fatal("path 0 not marked potentially failed")
	}
	// Exchanges after the failure recover and continue on path 1.
	var after []apps.ReqRespSample
	for _, s := range samples {
		if s.SentAt > 4*time.Second {
			after = append(after, s)
		}
	}
	if len(after) < 10 {
		t.Fatalf("only %d post-failure samples", len(after))
	}
	for _, s := range after[2:] {
		if s.Delay > 200*time.Millisecond {
			t.Fatalf("post-handover delay %v too high at t=%v", s.Delay, s.SentAt)
		}
	}
}

func TestIdleTimeoutCloses(t *testing.T) {
	cfg := core.DefaultSinglePathConfig()
	cfg.IdleTimeout = 2 * time.Second
	h := newHarness(t, cfg, cfg, symSpecs(10, 20*time.Millisecond))
	var closedErr error
	closed := false
	h.client.OnClosed(func(err error) { closed = true; closedErr = err })
	h.run(t, 10*time.Second)
	if !closed || closedErr == nil {
		t.Fatalf("idle timeout did not close: closed=%v err=%v", closed, closedErr)
	}
}

func TestExplicitCloseNotifiesPeer(t *testing.T) {
	cfg := core.DefaultSinglePathConfig()
	h := newHarness(t, cfg, cfg, symSpecs(10, 20*time.Millisecond))
	h.run(t, time.Second) // complete handshake
	srv := h.serverConn(t)
	srvClosed := false
	srv.OnClosed(func(error) { srvClosed = true })
	h.client.Close()
	h.run(t, 2*time.Second)
	if !h.client.Closed() {
		t.Fatal("client not closed")
	}
	if !srvClosed {
		t.Fatal("server not notified of close")
	}
}

func TestAddAddressOpensSecondPath(t *testing.T) {
	// Client starts knowing only the first server address; the server
	// advertises the second via ADD_ADDRESS (§3 dual-stack use case).
	clock := sim.NewClock()
	tp := netem.NewTwoPath(clock, sim.NewRand(7), symSpecs(10, 30*time.Millisecond))
	srvCfg := core.DefaultConfig()
	srvCfg.AdvertiseAddresses = true
	l := core.Listen(tp.Net, srvCfg, tp.ServerAddrs[:])
	apps.NewGetServer(l)
	cliCfg := core.DefaultConfig()
	client := core.Dial(tp.Net, cliCfg, 0x11, tp.ClientAddrs[:], tp.ServerAddrs[:1])
	var res *apps.GetResult
	apps.NewGetClient(client, 2<<20, func() time.Duration { return clock.Now().Duration() },
		func(r apps.GetResult) { res = &r })
	if err := clock.RunUntil(sim.Time(60 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("download did not finish")
	}
	if len(client.Paths()) != 2 {
		t.Fatalf("client has %d paths, want 2 (via ADD_ADDRESS)", len(client.Paths()))
	}
	p1 := client.Paths()[1]
	if p1.RecvBytes == 0 {
		t.Fatal("advertised path carried no data")
	}
}

func TestSinglePathHasNoPathIDOverhead(t *testing.T) {
	// The multipath header costs exactly one extra byte; single-path
	// mode must not pay it. Compare handshake packet accounting.
	spCfg := core.DefaultSinglePathConfig()
	h := newHarness(t, spCfg, spCfg, symSpecs(10, 20*time.Millisecond))
	h.run(t, time.Second)
	if got := len(h.client.Paths()); got != 1 {
		t.Fatalf("single path conn has %d paths", got)
	}
}

func TestRoundRobinSchedulerCompletes(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Scheduler = core.SchedRoundRobin
	h := newHarness(t, cfg, cfg, symSpecs(10, 30*time.Millisecond))
	apps.NewGetServer(h.listener)
	var res *apps.GetResult
	apps.NewGetClient(h.client, 2<<20, func() time.Duration { return h.clock.Now().Duration() },
		func(r apps.GetResult) { res = &r })
	h.run(t, 60*time.Second)
	if res == nil {
		t.Fatal("round-robin download did not finish")
	}
}
