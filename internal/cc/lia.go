package cc

import "time"

// Lia coordinates the LIA coupled congestion controller (RFC 6356,
// Wischik et al. NSDI'11) — OLIA's predecessor and the other coupled
// scheme the paper cites ([48]; §3 leaves "the comparison of other
// multipath congestion control schemes" to further study, which this
// implementation enables).
//
// Per ACK on path i, the window grows by
//
//	min( α·acked/cwnd_total , acked/cwnd_i )
//
// with the aggressiveness factor
//
//	α = cwnd_total · max_i(cwnd_i/rtt_i²) / (Σ_i cwnd_i/rtt_i)²
//
// which equalizes the aggregate against a single TCP flow on the best
// path.
type Lia struct {
	mss   int
	paths []*LiaPath
}

// NewLia creates a coordinator.
func NewLia(mss int) *Lia { return &Lia{mss: mss} }

// LiaPath is the per-path controller; it implements Controller.
type LiaPath struct {
	l        *Lia
	cwnd     int
	ssthresh int
	maxCwnd  int
	srtt     time.Duration
	acked    float64 // fractional window growth accumulator (bytes)
	closed   bool
}

// AddPath registers a new path.
func (l *Lia) AddPath() *LiaPath {
	p := &LiaPath{
		l:        l,
		cwnd:     InitialWindowPackets * l.mss,
		ssthresh: 1 << 30,
		maxCwnd:  1 << 30,
		srtt:     100 * time.Millisecond,
	}
	l.paths = append(l.paths, p)
	return p
}

// Paths returns live members.
func (l *Lia) Paths() []*LiaPath {
	var out []*LiaPath
	for _, p := range l.paths {
		if !p.closed {
			out = append(out, p)
		}
	}
	return out
}

// alpha computes RFC 6356's aggressiveness factor.
func (l *Lia) alpha() float64 {
	live := l.Paths()
	if len(live) == 0 {
		return 1
	}
	var total, best, denom float64
	for _, p := range live {
		w := float64(p.cwnd) / float64(l.mss)
		rtt := p.srtt.Seconds()
		if rtt <= 0 {
			rtt = 1e-3
		}
		total += w
		if v := w / (rtt * rtt); v > best {
			best = v
		}
		denom += w / rtt
	}
	if denom <= 0 {
		return 1
	}
	return total * best / (denom * denom)
}

// SetMaxCwnd clamps the window.
func (p *LiaPath) SetMaxCwnd(b int) { p.maxCwnd = b }

// Close removes the path from coupling.
func (p *LiaPath) Close() { p.closed = true }

func (p *LiaPath) Name() string           { return "lia" }
func (p *LiaPath) Cwnd() int              { return p.cwnd }
func (p *LiaPath) InSlowStart() bool      { return p.cwnd < p.ssthresh }
func (p *LiaPath) OnPacketSent(bytes int) {}

func (p *LiaPath) OnPacketAcked(bytes int, rtt time.Duration) {
	if rtt > 0 {
		p.srtt = rtt
	}
	if p.InSlowStart() {
		p.cwnd += bytes
		if p.cwnd > p.maxCwnd {
			p.cwnd = p.maxCwnd
		}
		return
	}
	mss := float64(p.l.mss)
	var total float64
	for _, q := range p.l.Paths() {
		total += float64(q.cwnd)
	}
	if total <= 0 || p.cwnd <= 0 {
		return
	}
	coupled := p.l.alpha() * float64(bytes) * mss / total
	uncoupled := float64(bytes) * mss / float64(p.cwnd)
	inc := coupled
	if uncoupled < inc {
		inc = uncoupled
	}
	p.acked += inc
	if p.acked >= 1 {
		p.cwnd += int(p.acked)
		p.acked -= float64(int(p.acked))
	}
	if p.cwnd < MinWindowPackets*p.l.mss {
		p.cwnd = MinWindowPackets * p.l.mss
	}
	if p.cwnd > p.maxCwnd {
		p.cwnd = p.maxCwnd
	}
}

func (p *LiaPath) OnCongestionEvent() {
	p.cwnd /= 2
	if p.cwnd < MinWindowPackets*p.l.mss {
		p.cwnd = MinWindowPackets * p.l.mss
	}
	p.ssthresh = p.cwnd
	p.acked = 0
}

func (p *LiaPath) OnRTO() {
	p.ssthresh = p.cwnd / 2
	if p.ssthresh < MinWindowPackets*p.l.mss {
		p.ssthresh = MinWindowPackets * p.l.mss
	}
	p.cwnd = MinWindowPackets * p.l.mss
	p.acked = 0
}
