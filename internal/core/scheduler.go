package core

import "mpquic/internal/wire"

// schedule picks the path for the next data packet plus the set of
// paths the packet should be duplicated onto (§3, Packet Scheduling).
//
// The base heuristic mirrors the Linux MPTCP default scheduler: prefer
// the lowest-smoothed-RTT path whose congestion window is not full.
// The two MPQUIC differences from §3 are layered on top:
//
//   - frames (including retransmissions and control frames) are not
//     pinned to a path — the caller feeds whatever is pending into the
//     packet built for the chosen path;
//   - paths with no RTT estimate yet don't make the sender wait a
//     probe RTT: traffic scheduled on a measured path is duplicated
//     onto them, so a brand-new path carries data in its very first
//     packet without risking head-of-line blocking.
func (c *Conn) schedule() (primary *Path, duplicates []*Path) {
	candidates := c.schedulable()
	if len(candidates) == 0 {
		return nil, nil
	}
	switch c.cfg.Scheduler {
	case SchedRoundRobin:
		return c.scheduleRoundRobin(candidates), nil
	case SchedLowestRTTNoDup:
		return c.scheduleLowestRTT(candidates), nil
	case SchedBLEST:
		return c.scheduleBLEST(candidates), nil
	default:
		primary = c.scheduleLowestRTT(candidates)
		if primary == nil || !c.cfg.DuplicateOnNewPath {
			return primary, nil
		}
		// Duplicate onto unmeasured paths with window space.
		for _, p := range candidates {
			if p != primary && !p.est.HasSample() && p.cwndAvailable(wire.MaxPacketSize) {
				duplicates = append(duplicates, p)
			}
		}
		return primary, duplicates
	}
}

// schedulable returns the paths the scheduler may use: open, and not
// (locally or remotely) marked potentially failed — unless every path
// is marked, in which case all open paths are candidates (there is
// nothing better to try, §4.3).
func (c *Conn) schedulable() []*Path {
	var healthy, all []*Path
	for _, pid := range c.pathOrder {
		p := c.paths[pid]
		if !p.open {
			continue
		}
		all = append(all, p)
		if !p.potentiallyFailed && !p.remotePF {
			healthy = append(healthy, p)
		}
	}
	if len(healthy) > 0 {
		return healthy
	}
	return all
}

// scheduleLowestRTT picks the measured path with the lowest smoothed
// RTT that has window space; if only unmeasured paths have space, the
// freshest of those is used directly.
func (c *Conn) scheduleLowestRTT(candidates []*Path) *Path {
	var best *Path
	for _, p := range candidates {
		if !p.est.HasSample() || !p.cwndAvailable(wire.MaxPacketSize) {
			continue
		}
		if best == nil || p.est.SmoothedRTT() < best.est.SmoothedRTT() {
			best = p
		}
	}
	if best != nil {
		return best
	}
	for _, p := range candidates {
		if !p.est.HasSample() && p.cwndAvailable(wire.MaxPacketSize) {
			return p
		}
	}
	return nil
}

// scheduleBLEST applies blocking estimation before falling back to a
// slower path: data parked on the slow path for one slow-path RTT must
// not exhaust the connection-level send window that the fast path
// could otherwise consume — if it would, the scheduler waits for the
// fast path instead of risking head-of-line blocking.
func (c *Conn) scheduleBLEST(candidates []*Path) *Path {
	var fast *Path
	for _, p := range candidates {
		if !p.est.HasSample() {
			continue
		}
		if fast == nil || p.est.SmoothedRTT() < fast.est.SmoothedRTT() {
			fast = p
		}
	}
	if fast == nil {
		// No measured path yet: behave like lowest-RTT.
		return c.scheduleLowestRTT(candidates)
	}
	if fast.cwndAvailable(wire.MaxPacketSize) {
		return fast
	}
	// The fast path is window-limited; consider slower paths.
	var slow *Path
	for _, p := range candidates {
		if p == fast || !p.cwndAvailable(wire.MaxPacketSize) || !p.est.HasSample() {
			continue
		}
		if slow == nil || p.est.SmoothedRTT() < slow.est.SmoothedRTT() {
			slow = p
		}
	}
	if slow == nil {
		// Unmeasured paths may still carry data directly.
		for _, p := range candidates {
			if !p.est.HasSample() && p.cwndAvailable(wire.MaxPacketSize) {
				return p
			}
		}
		return nil
	}
	// Blocking estimate: bytes the fast path could send while the
	// slow-path packet is in flight.
	fastRTT := fast.est.SmoothedRTT()
	slowRTT := slow.est.SmoothedRTT()
	if fastRTT <= 0 {
		return slow
	}
	fastShare := float64(fast.cc.Cwnd()) * float64(slowRTT) / float64(fastRTT)
	if float64(c.connFC.SendAllowance()) < fastShare+float64(wire.MaxPacketSize) {
		return nil // sending on the slow path would block the fast one
	}
	return slow
}

// scheduleRoundRobin rotates among paths with window space.
func (c *Conn) scheduleRoundRobin(candidates []*Path) *Path {
	n := len(candidates)
	for i := 0; i < n; i++ {
		p := candidates[(c.rrNext+i)%n]
		if p.cwndAvailable(wire.MaxPacketSize) {
			c.rrNext = (c.rrNext + i + 1) % n
			return p
		}
	}
	return nil
}
