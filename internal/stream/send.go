package stream

import (
	"fmt"

	"mpquic/internal/wire"
)

// SendStream produces STREAM frames for one stream, tracking the
// retransmission queue as byte intervals so a lost frame's data can be
// resent in any repacketization, over any path (§3: frames are
// independent of the packets that carry them).
type SendStream struct {
	id wire.StreamID

	// Real-mode payload. nil in synthetic mode.
	data      []byte
	synthetic bool

	writeOffset uint64 // total bytes written by the application
	nextSend    uint64 // frontier of never-sent data
	fin         bool   // application finished writing

	rtx      IntervalSet // lost ranges awaiting retransmission
	acked    IntervalSet // ranges acknowledged
	finSent  bool
	finAcked bool
	finLost  bool
}

// NewSendStream creates an empty send stream.
func NewSendStream(id wire.StreamID) *SendStream {
	return &SendStream{id: id}
}

// ID returns the stream ID.
func (s *SendStream) ID() wire.StreamID { return s.id }

// Write appends real payload bytes.
func (s *SendStream) Write(p []byte) {
	if s.fin {
		panic("stream: Write after Close")
	}
	if s.synthetic {
		panic("stream: mixing synthetic and real writes")
	}
	s.data = append(s.data, p...)
	s.writeOffset += uint64(len(p))
}

// WriteSynthetic appends n logical bytes without materializing them.
func (s *SendStream) WriteSynthetic(n uint64) {
	if s.fin {
		panic("stream: WriteSynthetic after Close")
	}
	if s.data != nil {
		panic("stream: mixing synthetic and real writes")
	}
	s.synthetic = true
	s.writeOffset += n
}

// Close marks the write side finished (FIN will be sent).
func (s *SendStream) Close() { s.fin = true }

// HasData reports whether the stream has anything to transmit right
// now: retransmissions, unsent data, or an unsent/lost FIN.
func (s *SendStream) HasData() bool {
	if !s.rtx.Empty() {
		return true
	}
	if s.nextSend < s.writeOffset {
		return true
	}
	return s.fin && (!s.finSent || s.finLost)
}

// HasRetransmission reports whether lost data is queued.
func (s *SendStream) HasRetransmission() bool { return !s.rtx.Empty() || s.finLost }

// BytesOutstanding reports unacked stream bytes (sent but not acked).
func (s *SendStream) BytesOutstanding() uint64 {
	return s.nextSend - s.acked.Size() - s.rtx.Size()
}

// NextFrame builds the next STREAM frame. maxFrameSize bounds the
// encoded frame size; newDataAllowance bounds how many *new* (never
// sent) bytes may be included per flow control. Retransmitted bytes
// consume no allowance — their credit was spent on first transmission.
// It returns nil when nothing can be produced, plus the number of new
// flow-controlled bytes consumed.
func (s *SendStream) NextFrame(maxFrameSize int, newDataAllowance uint64) (*wire.StreamFrame, uint64) {
	// Retransmissions first: they unblock the receiver's reassembly.
	if !s.rtx.Empty() {
		probe := &wire.StreamFrame{StreamID: s.id, Offset: s.rtx.Intervals()[0].Start}
		maxLen := probe.MaxStreamDataLen(maxFrameSize)
		if maxLen <= 0 {
			return nil, 0
		}
		iv := s.rtx.Pop(uint64(maxLen))
		f := s.frameFor(iv)
		return f, 0
	}
	if s.nextSend < s.writeOffset && newDataAllowance > 0 {
		probe := &wire.StreamFrame{StreamID: s.id, Offset: s.nextSend}
		maxLen := uint64(probe.MaxStreamDataLen(maxFrameSize))
		if maxLen == 0 {
			return nil, 0
		}
		n := s.writeOffset - s.nextSend
		if n > maxLen {
			n = maxLen
		}
		if n > newDataAllowance {
			n = newDataAllowance
		}
		iv := Interval{s.nextSend, s.nextSend + n}
		s.nextSend = iv.End
		f := s.frameFor(iv)
		return f, n
	}
	// A bare FIN (all data sent, FIN pending or lost).
	if s.fin && s.nextSend == s.writeOffset && (!s.finSent || s.finLost) {
		s.finSent = true
		s.finLost = false
		return &wire.StreamFrame{StreamID: s.id, Offset: s.writeOffset, Fin: true}, 0
	}
	return nil, 0
}

func (s *SendStream) frameFor(iv Interval) *wire.StreamFrame {
	f := &wire.StreamFrame{StreamID: s.id, Offset: iv.Start}
	if s.synthetic {
		f.DataLen = int(iv.Len())
	} else {
		f.Data = s.data[iv.Start:iv.End]
	}
	if s.fin && iv.End == s.writeOffset {
		f.Fin = true
		s.finSent = true
		s.finLost = false
	}
	return f
}

// OnFrameAcked records delivery of a previously sent frame.
func (s *SendStream) OnFrameAcked(offset uint64, n int, fin bool) {
	s.acked.Add(offset, offset+uint64(n))
	// Data that was queued for retransmission but acked via another
	// copy (duplication, cross-path reinjection) needn't be resent.
	s.rtx.Remove(offset, offset+uint64(n))
	if fin {
		s.finAcked = true
		s.finLost = false
	}
}

// OnFrameLost queues a lost frame's data for retransmission, skipping
// ranges that were acknowledged through another copy.
func (s *SendStream) OnFrameLost(offset uint64, n int, fin bool) {
	start, end := offset, offset+uint64(n)
	// Re-add only the still-unacked sub-ranges.
	missing := IntervalSet{}
	missing.Add(start, end)
	for _, a := range s.acked.Intervals() {
		missing.Remove(a.Start, a.End)
	}
	for _, iv := range missing.Intervals() {
		s.rtx.Add(iv.Start, iv.End)
	}
	if fin && !s.finAcked {
		s.finLost = true
	}
}

// AllAcked reports whether every written byte and the FIN are acked.
func (s *SendStream) AllAcked() bool {
	if !s.fin || !s.finAcked {
		return false
	}
	if s.writeOffset == 0 {
		return true
	}
	return s.acked.Contains(0, s.writeOffset)
}

// WriteOffset returns the total bytes written.
func (s *SendStream) WriteOffset() uint64 { return s.writeOffset }

// UnsentBytes reports written bytes never transmitted yet.
func (s *SendStream) UnsentBytes() uint64 { return s.writeOffset - s.nextSend }

func (s *SendStream) String() string {
	return fmt.Sprintf("sendStream(%d, written=%d, next=%d, rtx=%v)", s.id, s.writeOffset, s.nextSend, s.rtx)
}
