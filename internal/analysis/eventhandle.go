package analysis

import (
	"go/ast"
	"go/types"
)

// EventHandle enforces the sim.Event pooling contract: once an event
// fires (or is discarded after cancellation) the Clock recycles its
// storage, so an *Event handle is only valid until the event runs.
// sim.Timer is the one sanctioned holder — it drops its handle in the
// fire callback. Outside package sim, code must therefore not park an
// *sim.Event anywhere that outlives the current call: no struct
// fields, no globals, no map/slice elements, no returns, no channel
// sends. Locals are fine (`ev := clock.At(...); ev.Cancel()` within
// one activation cannot observe a recycled event).
var EventHandle = &Analyzer{
	Name: "eventhandle",
	Doc: "forbid holding *sim.Event handles beyond the current call; " +
		"only sim.Timer may own re-armable handles",
	Run: runEventHandle,
}

func runEventHandle(pass *Pass) (any, error) {
	if pass.PkgPath == simPkgPath {
		return nil, nil // the pool implementation and Timer live here
	}
	info := pass.TypesInfo
	isEvent := func(t types.Type) bool { return namedFromPkg(t, simPkgPath, "Event") }
	for _, f := range pass.Files {
		if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					if isEvent(info.TypeOf(field.Type)) {
						pass.Reportf(field.Pos(),
							"struct field of type *sim.Event holds a poolable handle; use sim.Timer")
					}
				}
			case *ast.FuncDecl:
				if n.Type.Results != nil {
					for _, res := range n.Type.Results.List {
						if isEvent(info.TypeOf(res.Type)) {
							pass.Reportf(res.Pos(),
								"returning *sim.Event hands out a handle that dies when the event fires; use sim.Timer")
						}
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if !isEscapingLValue(info, lhs) {
						continue
					}
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					} else if len(n.Rhs) == 1 {
						rhs = n.Rhs[0]
					}
					if rhs != nil && isEvent(info.TypeOf(rhs)) {
						pass.Reportf(rhs.Pos(),
							"storing *sim.Event in a field/map/global outlives the event; use sim.Timer")
					}
				}
			case *ast.SendStmt:
				if isEvent(info.TypeOf(n.Value)) {
					pass.Reportf(n.Value.Pos(),
						"sending *sim.Event on a channel lets the handle outlive the event; use sim.Timer")
				}
			}
			return true
		})
	}
	return nil, nil
}
