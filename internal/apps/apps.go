// Package apps provides the benchmark applications from the paper's
// evaluation: an https-like GET file transfer (§4.1, §4.2) and the
// request/response traffic of the handover scenario (§4.3). Both run
// over the core (MP)QUIC engine; sibling implementations for the
// (MP)TCP baselines live in the tcpsim/mptcpsim packages.
package apps

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"mpquic/internal/core"
)

// GetServer serves synthetic files: a client writes "GET <bytes>" on a
// stream, the server responds with that many bytes on the same stream.
type GetServer struct {
	listener *core.Listener
}

// NewGetServer attaches a GET responder to every connection the
// listener accepts.
func NewGetServer(l *core.Listener) *GetServer {
	g := &GetServer{listener: l}
	l.OnConnection(func(c *core.Conn) {
		c.OnStreamOpen(func(s *core.Stream) { g.serveStream(s) })
	})
	return g
}

func (g *GetServer) serveStream(s *core.Stream) {
	var req strings.Builder
	served := false
	s.OnData(func() {
		if n := s.Readable(); n > 0 {
			_, data := s.Read(n)
			req.Write(data)
		}
		if served || !s.FinReceived() || !s.Finished() {
			return
		}
		served = true
		size, err := ParseGet(req.String())
		if err != nil {
			return
		}
		s.WriteSynthetic(size)
		s.Close()
	})
}

// ParseGet extracts the requested size from "GET <bytes>".
func ParseGet(req string) (uint64, error) {
	fields := strings.Fields(req)
	if len(fields) != 2 || fields[0] != "GET" {
		return 0, fmt.Errorf("apps: bad request %q", req)
	}
	return strconv.ParseUint(fields[1], 10, 62)
}

// FormatGet renders a request line.
func FormatGet(size uint64) string { return fmt.Sprintf("GET %d", size) }

// GetResult reports one finished download.
type GetResult struct {
	// Size is the requested file size in bytes.
	Size uint64
	// Start is the virtual time Dial was called (the paper measures
	// "from the transmission of the first connection packet").
	Start time.Duration
	// Finish is the virtual time the last byte was consumed.
	Finish time.Duration
	// HandshakeDone is when the client completed the handshake.
	HandshakeDone time.Duration
}

// Elapsed returns the client-perceived download time.
func (r GetResult) Elapsed() time.Duration { return r.Finish - r.Start }

// GoodputBps returns application goodput in bits per second.
func (r GetResult) GoodputBps() float64 {
	el := r.Elapsed().Seconds()
	if el <= 0 {
		return 0
	}
	return float64(r.Size) * 8 / el
}

// GetClient downloads one file over a fresh stream as soon as the
// handshake completes.
type GetClient struct {
	conn   *core.Conn
	size   uint64
	start  time.Duration
	now    func() time.Duration
	result *GetResult
	onDone func(GetResult)
}

// NewGetClient arms a download of size bytes on conn. now must be the
// simulation time source; onDone fires at completion (may be nil).
func NewGetClient(conn *core.Conn, size uint64, now func() time.Duration, onDone func(GetResult)) *GetClient {
	g := &GetClient{conn: conn, size: size, start: now(), now: now, onDone: onDone}
	conn.OnHandshakeComplete(func() { g.sendRequest() })
	return g
}

func (g *GetClient) sendRequest() {
	s := g.conn.OpenStream()
	hsDone := g.now()
	s.OnData(func() {
		if n := s.Readable(); n > 0 {
			s.Read(n) // consume to keep flow-control credit moving
		}
		if s.Finished() && g.result == nil {
			r := GetResult{Size: g.size, Start: g.start, Finish: g.now(), HandshakeDone: hsDone}
			g.result = &r
			if g.onDone != nil {
				g.onDone(r)
			}
		}
	})
	s.Write([]byte(FormatGet(g.size)))
	s.Close()
}

// Result returns the finished download, or nil while in flight.
func (g *GetClient) Result() *GetResult { return g.result }

// Done reports completion.
func (g *GetClient) Done() bool { return g.result != nil }
