package mpquic

import (
	"testing"
	"time"
)

func twoPath(seed uint64) *Network {
	return NewTwoPathNetwork(TwoPathConfig{
		Path0: PathSpec{CapacityMbps: 10, RTT: 30 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
		Path1: PathSpec{CapacityMbps: 10, RTT: 40 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
		Seed:  seed,
	})
}

// download runs a GET and fails the test on any error.
func download(t *testing.T, net *Network, client *Conn, size uint64) GetResult {
	t.Helper()
	res, err := net.Download(client, size)
	if err != nil {
		t.Fatalf("download failed: %v", err)
	}
	return res
}

func TestFacadeDownload(t *testing.T) {
	net := twoPath(1)
	server := net.Listen(DefaultConfig())
	net.ServeGet(server)
	client := net.Dial(DefaultConfig(), 1)
	res := download(t, net, client, 4<<20)
	if res.GoodputBps() < 10e6 {
		t.Fatalf("no aggregation through the facade: %.2f Mbps", res.GoodputBps()/1e6)
	}
	if len(client.Paths()) != 2 {
		t.Fatalf("%d paths", len(client.Paths()))
	}
}

func TestFacadeSinglePath(t *testing.T) {
	net := twoPath(2)
	server := net.Listen(SinglePathConfig())
	net.ServeGet(server)
	client := net.Dial(SinglePathConfig(), 2)
	res := download(t, net, client, 1<<20)
	if len(client.Paths()) != 1 {
		t.Fatalf("%d paths on single-path config", len(client.Paths()))
	}
	if res.GoodputBps() > 10e6 {
		t.Fatalf("single path exceeding link capacity: %.2f Mbps", res.GoodputBps()/1e6)
	}
}

func TestFacadeDeterminism(t *testing.T) {
	run := func() time.Duration {
		net := twoPath(7)
		server := net.Listen(DefaultConfig())
		net.ServeGet(server)
		client := net.Dial(DefaultConfig(), 7)
		return download(t, net, client, 2<<20).Elapsed()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different results: %v vs %v", a, b)
	}
}

func TestFacadeHandoverTrain(t *testing.T) {
	net := twoPath(3)
	server := net.Listen(DefaultConfig())
	net.ServeEcho(server)
	client := net.Dial(DefaultConfig(), 3)
	train := net.StartRequestTrain(client, 5*time.Second)
	net.At(2*time.Second, func() { net.KillPath(0) })
	if err := net.RunFor(8 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(train.Samples()) < 10 {
		t.Fatalf("only %d samples", len(train.Samples()))
	}
}

func TestFacadeDialPartialWithAdvertise(t *testing.T) {
	net := twoPath(4)
	cfg := DefaultConfig()
	cfg.AdvertiseAddresses = true
	server := net.Listen(cfg)
	net.ServeGet(server)
	client := net.DialPartial(DefaultConfig(), 4)
	download(t, net, client, 2<<20)
	if len(client.Paths()) != 2 {
		t.Fatalf("ADD_ADDRESS did not open the second path (%d paths)", len(client.Paths()))
	}
}

func TestFacadeAddressAccessors(t *testing.T) {
	net := twoPath(5)
	if net.ClientAddr(0) == "" || net.ServerAddr(1) == "" {
		t.Fatal("empty addresses")
	}
	if net.ClientAddr(0) == net.ClientAddr(1) {
		t.Fatal("interfaces not distinct")
	}
	if net.Now() != 0 {
		t.Fatal("fresh network clock not at epoch")
	}
}

func TestFacadeSchedulerAndCCVariants(t *testing.T) {
	for _, v := range []struct {
		name string
		mut  func(*Config)
	}{
		{"blest", func(c *Config) { c.Scheduler = SchedBLEST }},
		{"round-robin", func(c *Config) { c.Scheduler = SchedRoundRobin }},
		{"lia", func(c *Config) { c.CC = CCLia }},
		{"reno", func(c *Config) { c.CC = CCReno }},
		{"zero-rtt", func(c *Config) { c.ZeroRTT = true }},
		{"tail-reinjection", func(c *Config) { c.TailReinjection = true }},
	} {
		cfg := DefaultConfig()
		v.mut(&cfg)
		net := twoPath(100)
		server := net.Listen(cfg)
		net.ServeGet(server)
		client := net.Dial(cfg, 100)
		download(t, net, client, 1<<20)
	}
}
