package mptcpsim

import (
	"sort"
	"time"

	"mpquic/internal/netem"
	"mpquic/internal/sim"
	"mpquic/internal/stream"
	"mpquic/internal/tcpsim"
	"mpquic/internal/trace"
)

// --- handshake ---

func (c *Conn) sendHandshakeSeg(sf *Subflow, seg *tcpsim.Segment) {
	seg.MP = true
	seg.Token = c.token
	seg.SubflowID = sf.ID
	if seg.SYN && sf.ID != 0 {
		seg.Join = true
	}
	seg.Window = c.advertisedWindow()
	sf.hsSentAt = c.now()
	c.transmit(sf, seg)
}

func (c *Conn) onSubflowHsTimeout(sf *Subflow) {
	if c.closed || sf.state == sfEstablished {
		return
	}
	sf.est.Backoff()
	switch sf.state {
	case sfSynSent:
		c.sendHandshakeSeg(sf, &tcpsim.Segment{SYN: true})
	case sfSynReceived:
		c.sendHandshakeSeg(sf, &tcpsim.Segment{SYN: true, ACK: true})
	case sfTLSClientHello:
		c.sendHandshakeSeg(sf, &tcpsim.Segment{ACK: true, Ctl: tcpsim.CtlTLSClient1})
	case sfTLSServerDone:
		c.sendHandshakeSeg(sf, &tcpsim.Segment{ACK: true, Ctl: tcpsim.CtlTLSServer1})
	case sfTLSClientFin:
		c.sendHandshakeSeg(sf, &tcpsim.Segment{ACK: true, Ctl: tcpsim.CtlTLSClient2})
	}
	sf.hsTimer.ResetAfter(sf.est.RTO())
}

// handleSubflowHandshake advances the subflow handshake; reports
// whether the segment was purely a handshake message.
func (c *Conn) handleSubflowHandshake(sf *Subflow, seg *tcpsim.Segment) bool {
	switch {
	case seg.SYN && seg.ACK:
		if sf.state != sfSynSent {
			return true
		}
		sf.est.Update(c.now()-sf.hsSentAt, 0)
		if sf.ID == 0 && c.cfg.TLS {
			sf.state = sfTLSClientHello
			c.sendHandshakeSeg(sf, &tcpsim.Segment{ACK: true, Ctl: tcpsim.CtlTLSClient1})
			sf.hsTimer.ResetAfter(sf.est.RTO())
		} else {
			// Joined subflows (and non-TLS initial): plain 3WHS.
			c.sendHandshakeSeg(sf, &tcpsim.Segment{ACK: true})
			c.subflowEstablished(sf)
		}
		return true
	case seg.SYN:
		if sf.state == sfIdle {
			sf.state = sfSynReceived
		}
		c.sendHandshakeSeg(sf, &tcpsim.Segment{SYN: true, ACK: true})
		sf.hsTimer.ResetAfter(sf.est.RTO())
		return true
	}
	switch seg.Ctl {
	case tcpsim.CtlTLSClient1:
		if sf.state == sfSynReceived || sf.state == sfTLSServerDone {
			sf.state = sfTLSServerDone
			c.sendHandshakeSeg(sf, &tcpsim.Segment{ACK: true, Ctl: tcpsim.CtlTLSServer1})
			sf.hsTimer.ResetAfter(sf.est.RTO())
		}
		return true
	case tcpsim.CtlTLSServer1:
		if sf.state == sfTLSClientHello {
			sf.state = sfTLSClientFin
			sf.est.Update(c.now()-sf.hsSentAt, 0)
			c.sendHandshakeSeg(sf, &tcpsim.Segment{ACK: true, Ctl: tcpsim.CtlTLSClient2})
			sf.hsTimer.ResetAfter(sf.est.RTO())
		}
		return true
	case tcpsim.CtlTLSClient2:
		if sf.state == sfTLSServerDone {
			c.sendHandshakeSeg(sf, &tcpsim.Segment{ACK: true, Ctl: tcpsim.CtlTLSServer2})
			c.subflowEstablished(sf)
		} else if sf.state == sfEstablished {
			c.sendHandshakeSeg(sf, &tcpsim.Segment{ACK: true, Ctl: tcpsim.CtlTLSServer2})
		}
		return true
	case tcpsim.CtlTLSServer2:
		if sf.state == sfTLSClientFin {
			sf.est.Update(c.now()-sf.hsSentAt, 0)
			c.subflowEstablished(sf)
		}
		return true
	}
	if sf.state == sfSynReceived {
		// Bare ACK (or data) completes the server-side 3WHS.
		c.subflowEstablished(sf)
		return seg.Len == 0 && !seg.ACK
	}
	return false
}

func (c *Conn) subflowEstablished(sf *Subflow) {
	if sf.state == sfEstablished {
		return
	}
	sf.state = sfEstablished
	sf.hsTimer.Stop()
	sf.est.ResetBackoff()
	sf.EstablishedAt = c.now()
	c.trace(trace.Event{Type: trace.PathOpened, Path: sf.ID})
	if sf.ID == 0 && !c.established {
		c.established = true
		c.Stats.EstablishedAt = c.now()
		c.trace(trace.Event{Type: trace.HandshakeDone})
		if c.isClient {
			c.startJoins()
		}
		if c.onEstablished != nil {
			c.onEstablished()
		}
	}
	c.trySend()
}

// startJoins opens one additional subflow per extra address pair —
// each needing its own 3-way handshake before any data (the MPTCP
// handicap §3 contrasts with MPQUIC's data-in-first-packet).
func (c *Conn) startJoins() {
	n := len(c.locals)
	if len(c.remotes) < n {
		n = len(c.remotes)
	}
	for i := 1; i < n; i++ {
		sf := c.addSubflow(uint8(i), c.locals[i], c.remotes[i])
		sf.state = sfSynSent
		c.sendHandshakeSeg(sf, &tcpsim.Segment{SYN: true})
		sf.hsTimer.ResetAfter(sf.est.RTO())
	}
}

// --- receiving ---

func (c *Conn) handleSegment(dg netem.Datagram, seg *tcpsim.Segment) {
	if c.closed {
		return
	}
	sf := c.SubflowByID(seg.SubflowID)
	if sf == nil {
		if !seg.SYN {
			return
		}
		// Server side learns a joined subflow from its SYN.
		sf = c.addSubflow(seg.SubflowID, dg.To, dg.From)
	}
	c.lastRecvTime = c.now()

	// Data-level window and ack are on every segment.
	if lim := seg.DataAck + seg.Window; lim > c.peerDataLimit {
		c.peerDataLimit = lim
	}
	if seg.DataAck > c.dataAcked {
		c.dataAcked = seg.DataAck
		c.pruneReinjectQueue()
	}

	if sf.state != sfEstablished || seg.SYN || seg.Ctl != tcpsim.CtlNone {
		if c.handleSubflowHandshake(sf, seg) {
			return
		}
	}
	if seg.ACK {
		c.processSubflowAck(sf, seg)
	}
	if seg.Len > 0 || seg.DataFin {
		c.processPayload(sf, seg)
	}
	c.trySend()
	c.armTimer()
}

func (c *Conn) processSubflowAck(sf *Subflow, seg *tcpsim.Segment) {
	if seg.AckNum > sf.cumAcked {
		sf.cumAcked = seg.AckNum
	}
	for _, b := range seg.SACK {
		sf.sacked.Add(b.Start, b.End)
	}
	sf.sacked.Remove(0, sf.cumAcked)
	maxCover := sf.cumAcked
	if ivs := sf.sacked.Intervals(); len(ivs) > 0 {
		if end := ivs[len(ivs)-1].End; end > maxCover {
			maxCover = end
		}
	}
	var ackedBytes int
	progress := false
	rtxLeft := sf.liveRtx
	for _, r := range sf.records {
		if r.settled {
			continue
		}
		if r.isRtx {
			rtxLeft--
		}
		if r.sfStart >= maxCover {
			if rtxLeft <= 0 && !r.isRtx {
				break // fresh records are in sequence order
			}
			continue // beyond everything acknowledged
		}
		covered := r.sfEnd <= sf.cumAcked ||
			(r.sfStart < r.sfEnd && sf.sacked.Contains(r.sfStart, r.sfEnd))
		if !covered {
			continue
		}
		r.settled = true
		progress = true
		if r.isRtx {
			sf.liveRtx--
		}
		sf.bytesInFlight -= r.wireSize
		ackedBytes += int(r.sfEnd - r.sfStart)
		if r.dataFin {
			c.finAcked = true
		}
		if !sf.hasAckTx || r.txSeq > sf.highestAckTx {
			sf.highestAckTx = r.txSeq
			sf.hasAckTx = true
			if !r.isRtx {
				// Karn: only fresh transmissions yield samples.
				sf.est.Update(c.now()-r.sentTime, 0)
			}
		}
	}
	if progress {
		sf.est.ResetBackoff()
		sf.lastProgress = c.now()
		sf.cc.OnPacketAcked(ackedBytes, sf.est.SmoothedRTT())
		if sf.potentiallyFailed {
			sf.potentiallyFailed = false // data acked: path works (§4.3)
			c.trace(trace.Event{Type: trace.PathRecovered, Path: sf.ID})
		}
	}
	// FACK loss detection.
	var lost []*sfRecord
	if sf.hasAckTx {
		for _, r := range sf.records {
			if r.txSeq+dupThresh > sf.highestAckTx {
				break // records are in transmission order
			}
			if r.settled {
				continue
			}
			r.settled = true
			if r.isRtx {
				sf.liveRtx--
			}
			sf.bytesInFlight -= r.wireSize
			lost = append(lost, r)
		}
	}
	if len(lost) > 0 {
		sf.SegmentsLost += uint64(len(lost))
		var largestTx uint64
		for _, r := range lost {
			if r.txSeq > largestTx {
				largestTx = r.txSeq
			}
			c.trace(trace.Event{Type: trace.PacketLost, Path: sf.ID, PN: r.txSeq, Size: r.wireSize})
			sf.requeueLocal(r)
		}
		if !sf.hasCutback || largestTx >= sf.cutbackTx {
			sf.cutbackTx = sf.nextTxSeq
			sf.hasCutback = true
			sf.cc.OnCongestionEvent()
		}
	}
	c.trimRecords(sf)
}

func (c *Conn) trimRecords(sf *Subflow) {
	i := 0
	for i < len(sf.records) && sf.records[i].settled {
		i++
	}
	if i > 0 {
		sf.records = sf.records[i:]
	}
	if len(sf.records) > 64 {
		n := 0
		for _, r := range sf.records {
			if r.settled {
				n++
			}
		}
		if n > len(sf.records)/2 {
			kept := sf.records[:0]
			for _, r := range sf.records {
				if !r.settled {
					kept = append(kept, r)
				}
			}
			sf.records = kept
		}
	}
}

func (c *Conn) processPayload(sf *Subflow, seg *tcpsim.Segment) {
	newBytes := uint64(0)
	if seg.Len > 0 {
		if !seg.DataFinOnly {
			before := c.dataReceived.Size()
			c.dataReceived.Add(seg.DataSeq, seg.DataSeq+uint64(seg.Len))
			newBytes = c.dataReceived.Size() - before
		}
		sf.received.Add(seg.Seq, seg.End())
	}
	if seg.DataFin {
		c.dataFinRecvd = true
		if seg.DataFinOnly {
			c.dataFinSeq = seg.DataSeq
		} else {
			c.dataFinSeq = seg.DataSeq + uint64(seg.Len)
		}
	}
	sf.unackedSegs++
	outOfOrder := false
	if ivs := sf.received.Intervals(); len(ivs) > 0 {
		outOfOrder = sf.received.FirstMissingFrom(0) < ivs[len(ivs)-1].End
	}
	if sf.unackedSegs >= 2 || outOfOrder || seg.DataFin {
		sf.ackQueued = true
	} else if sf.ackDeadline == 0 {
		sf.ackDeadline = c.now() + 25*time.Millisecond
	}
	if c.onData != nil && (newBytes > 0 || seg.DataFin) {
		c.onData()
	}
	if sf.ackQueued {
		c.sendAck(sf)
	}
}

// --- acks ---

func (c *Conn) dataCumAck() uint64 { return c.dataReceived.FirstMissingFrom(0) }

func (c *Conn) advertisedWindow() uint64 {
	used := c.dataCumAck() - c.consumed
	if used >= c.cfg.RecvWindow {
		return 0
	}
	return c.cfg.RecvWindow - used
}

func (c *Conn) ackFields(sf *Subflow, seg *tcpsim.Segment) {
	seg.ACK = true
	seg.MP = true
	seg.Token = c.token
	seg.SubflowID = sf.ID
	seg.AckNum = sf.received.FirstMissingFrom(0)
	seg.DataAck = c.dataCumAck()
	seg.Window = c.advertisedWindow()
	c.lastAdvWnd = seg.Window
	seg.SACK = sfBuildSACK(sf.received.Intervals(), seg.AckNum)
	sf.ackQueued = false
	sf.ackDeadline = 0
	sf.unackedSegs = 0
}

// sfBuildSACK mirrors tcpsim's 3-block SACK limit.
func sfBuildSACK(ivs []stream.Interval, cum uint64) []tcpsim.SACKBlock {
	var blocks []tcpsim.SACKBlock
	for i := len(ivs) - 1; i >= 0 && len(blocks) < tcpsim.MaxSACKBlocks; i-- {
		if ivs[i].End <= cum {
			continue
		}
		start := ivs[i].Start
		if start < cum {
			start = cum
		}
		blocks = append(blocks, tcpsim.SACKBlock{Start: start, End: ivs[i].End})
	}
	return blocks
}

func (c *Conn) sendAck(sf *Subflow) {
	seg := &tcpsim.Segment{}
	c.ackFields(sf, seg)
	c.transmit(sf, seg)
}

// --- sending ---

// eligible returns established subflows usable by the scheduler:
// non-PF ones, or all established subflows when every one is PF.
func (c *Conn) eligible() []*Subflow {
	var healthy, all []*Subflow
	for _, sf := range c.subflows {
		if sf.state != sfEstablished {
			continue
		}
		all = append(all, sf)
		if !sf.potentiallyFailed {
			healthy = append(healthy, sf)
		}
	}
	if len(healthy) > 0 {
		return healthy
	}
	return all
}

// bestSubflow picks the lowest-smoothed-RTT eligible subflow with
// window space (the Linux default scheduler, §3).
func (c *Conn) bestSubflow() *Subflow {
	var best *Subflow
	for _, sf := range c.eligible() {
		if !sf.cwndAvailable() {
			continue
		}
		if best == nil || sf.est.SmoothedRTT() < best.est.SmoothedRTT() {
			best = sf
		}
	}
	return best
}

func (c *Conn) trySend() {
	if c.closed || !c.established {
		return
	}
	for {
		sent := false
		// 1. In-subflow retransmissions first, on their own subflow
		//    (sequence integrity).
		els := c.eligible()
		sort.Slice(els, func(i, j int) bool {
			return els[i].est.SmoothedRTT() < els[j].est.SmoothedRTT()
		})
		for _, sf := range els {
			for len(sf.rtxQueue) > 0 && sf.cwndAvailable() {
				ch := sf.rtxQueue[0]
				sf.rtxQueue = sf.rtxQueue[1:]
				c.sendMapped(sf, ch.sfStart, ch.sfEnd, ch.dataStart, ch.dataEnd, ch.dataFin, true, false)
				sent = true
			}
		}
		// 2. Connection-level reinjections (PF handover, ORP) on the
		//    best available subflow with fresh subflow sequence space.
		for len(c.reinjectQueue) > 0 {
			sf := c.bestSubflow()
			if sf == nil {
				break
			}
			ch := c.reinjectQueue[0]
			c.reinjectQueue = c.reinjectQueue[1:]
			if ch.end <= c.dataAcked && !ch.dataFin {
				continue // already delivered via another subflow
			}
			n := ch.end - ch.start
			if n == 0 && ch.dataFin {
				n = 1 // bare DATA_FIN carrier
			}
			c.sendMapped(sf, sf.sndNxt, sf.sndNxt+n, ch.start, ch.end, ch.dataFin, false, true)
			sf.sndNxt += n
			sent = true
		}
		// 3. New data on the best subflow.
		for {
			if c.dataNxt >= c.writeOffset || c.dataNxt >= c.peerDataLimit {
				break
			}
			sf := c.bestSubflow()
			if sf == nil {
				break
			}
			n := c.writeOffset - c.dataNxt
			if n > MSS {
				n = MSS
			}
			if room := c.peerDataLimit - c.dataNxt; n > room {
				n = room
			}
			fin := c.finQueued && c.dataNxt+n == c.writeOffset
			c.sendMapped(sf, sf.sndNxt, sf.sndNxt+n, c.dataNxt, c.dataNxt+n, fin, false, false)
			sf.sndNxt += n
			c.dataNxt += n
			if fin {
				c.finAssigned = true
			}
			sent = true
		}
		// 4. Bare DATA_FIN.
		if c.finQueued && !c.finAssigned && c.dataNxt == c.writeOffset {
			if sf := c.bestSubflow(); sf != nil {
				c.sendMapped(sf, sf.sndNxt, sf.sndNxt+1, c.writeOffset, c.writeOffset, true, false, false)
				sf.sndNxt++
				c.finAssigned = true
				sent = true
			}
		}
		if !sent {
			break
		}
	}
	c.maybeORP()
	// Flush owed acknowledgments.
	for _, sf := range c.subflows {
		if sf.state == sfEstablished && sf.ackQueued {
			c.sendAck(sf)
		}
	}
	c.armTimer()
}

// maybeORP applies Opportunistic Retransmission and Penalization
// (§4.1): when the shared receive window stalls the transfer and a
// faster subflow sits idle, the oldest un-data-acked chunk (owned by
// another subflow) is reinjected on the idle subflow and the owner is
// penalized with a halved window.
func (c *Conn) maybeORP() {
	if !c.cfg.ORP || c.closed {
		return
	}
	blocked := c.dataNxt < c.writeOffset && c.dataNxt >= c.peerDataLimit
	if !blocked {
		return
	}
	if c.lastORPAt == c.dataAcked && c.orpArmed {
		return // one reinjection per stall point
	}
	idle := c.bestSubflow()
	if idle == nil || !idle.idle() {
		return
	}
	// Find the owner of the oldest un-data-acked chunk.
	var owner *Subflow
	var chunk dataChunk
	for _, sf := range c.subflows {
		for _, r := range sf.records {
			if r.settled || r.dataEnd <= c.dataAcked || r.dataStart > c.dataAcked {
				continue
			}
			owner = sf
			chunk = dataChunk{start: r.dataStart, end: r.dataEnd, dataFin: r.dataFin}
			break
		}
		if owner != nil {
			break
		}
	}
	if owner == nil || owner == idle {
		return
	}
	n := chunk.end - chunk.start
	c.sendMapped(idle, idle.sndNxt, idle.sndNxt+n, chunk.start, chunk.end, chunk.dataFin, false, true)
	idle.sndNxt += n
	c.lastORPAt = c.dataAcked
	c.orpArmed = true
	c.Stats.Reinjections++
	// Penalize the slow owner at most once per its RTT.
	now := c.now()
	if now-owner.lastPenalty >= owner.est.SmoothedRTT() {
		owner.cc.OnCongestionEvent()
		owner.lastPenalty = now
		c.Stats.Penalizations++
	}
}

// sendMapped emits one data-bearing segment on sf with the given
// subflow-sequence and data-sequence mapping.
func (c *Conn) sendMapped(sf *Subflow, sfStart, sfEnd, dataStart, dataEnd uint64, dataFin, isRtx, isReinject bool) {
	seg := &tcpsim.Segment{
		Seq:     sfStart,
		Len:     int(sfEnd - sfStart),
		DataSeq: dataStart,
		DataFin: dataFin,
		EchoRTX: isRtx,
	}
	if dataStart == dataEnd && dataFin {
		// Bare DATA_FIN carrier: one subflow byte, no app payload.
		seg.DataFinOnly = true
		seg.DataSeq = dataEnd
	}
	c.ackFields(sf, seg)
	if isRtx {
		sf.liveRtx++
		sf.Retransmits++
	}
	rec := &sfRecord{
		txSeq:     sf.nextTxSeq,
		sfStart:   sfStart,
		sfEnd:     sfEnd,
		dataStart: dataStart,
		dataEnd:   dataEnd,
		dataFin:   dataFin,
		isRtx:     isRtx,
		reinject:  isReinject,
		sentTime:  c.now(),
		wireSize:  seg.WireSize(),
	}
	sf.nextTxSeq++
	sf.records = append(sf.records, rec)
	sf.bytesInFlight += rec.wireSize
	sf.lastSent = c.now()
	sf.DataBytesSent += dataEnd - dataStart
	if isReinject {
		sf.Reinjections++
	}
	c.transmit(sf, seg)
}

func (c *Conn) transmit(sf *Subflow, seg *tcpsim.Segment) {
	seg.MP = true
	seg.Token = c.token
	seg.SubflowID = sf.ID
	sf.SentSegments++
	sf.SentBytes += uint64(seg.WireSize())
	c.nw.Send(netem.Datagram{From: sf.Local, To: sf.Remote, Size: seg.WireSize(), Payload: seg})
}

func (c *Conn) pruneReinjectQueue() {
	kept := c.reinjectQueue[:0]
	for _, ch := range c.reinjectQueue {
		if ch.end > c.dataAcked || ch.dataFin {
			kept = append(kept, ch)
		}
	}
	c.reinjectQueue = kept
	c.orpArmed = false
}

// --- timers ---

func (c *Conn) onTimer() {
	if c.closed {
		return
	}
	now := c.now()
	if c.cfg.IdleTimeout > 0 && now-c.lastRecvTime >= c.cfg.IdleTimeout {
		c.closeWith(errIdle)
		return
	}
	for _, sf := range c.subflows {
		if sf.state != sfEstablished {
			continue
		}
		if sf.ackDeadline != 0 && now >= sf.ackDeadline {
			c.sendAck(sf)
		}
		if sf.bytesInFlight > 0 && now-sf.rtoBase() >= sf.est.RTO() {
			c.onSubflowRTO(sf)
		}
	}
	c.trySend()
	c.armTimer()
}

// onSubflowRTO marks the subflow potentially failed, requeues its
// outstanding data locally (in-sequence) AND reinjects it at the
// connection level so other subflows can carry it — the Linux MPTCP
// handover behavior the paper compares against (§4.3).
func (c *Conn) onSubflowRTO(sf *Subflow) {
	sf.RTOCount++
	c.Stats.RTOs++
	for _, r := range sf.records {
		if r.settled {
			continue
		}
		r.settled = true
		sf.SegmentsLost++
		c.trace(trace.Event{Type: trace.PacketLost, Path: sf.ID, PN: r.txSeq, Size: r.wireSize})
		if r.isRtx {
			sf.liveRtx--
		}
		sf.bytesInFlight -= r.wireSize
		sf.requeueLocal(r)
		if r.dataEnd > c.dataAcked || r.dataFin {
			c.reinjectQueue = append(c.reinjectQueue, dataChunk{start: r.dataStart, end: r.dataEnd, dataFin: r.dataFin})
			c.Stats.Reinjections++
		}
	}
	c.trimRecords(sf)
	sf.est.Backoff()
	sf.cc.OnRTO()
	sf.hasCutback = false
	c.trace(trace.Event{Type: trace.RTOFired, Path: sf.ID, Cwnd: sf.cc.Cwnd()})
	if len(c.eligible()) > 1 {
		sf.potentiallyFailed = true
		c.trace(trace.Event{Type: trace.PathFailed, Path: sf.ID})
	}
}

func (c *Conn) armTimer() {
	if c.closed {
		return
	}
	deadline := time.Duration(1<<62 - 1)
	for _, sf := range c.subflows {
		if sf.state != sfEstablished {
			continue
		}
		if sf.bytesInFlight > 0 {
			if d := sf.rtoBase() + sf.est.RTO(); d < deadline {
				deadline = d
			}
		}
		if sf.ackDeadline != 0 && sf.ackDeadline < deadline {
			deadline = sf.ackDeadline
		}
	}
	if c.cfg.IdleTimeout > 0 {
		if d := c.lastRecvTime + c.cfg.IdleTimeout; d < deadline {
			deadline = d
		}
	}
	if deadline == time.Duration(1<<62-1) {
		c.timer.Stop()
		return
	}
	if deadline < c.now() {
		deadline = c.now()
	}
	c.timer.Reset(sim.Time(deadline))
}
