// Package stats provides the small statistical toolkit the evaluation
// needs: medians (the paper reports the median of 3 repetitions),
// percentiles, CDF sampling for the time-ratio figures, and five-number
// box summaries for the aggregation-benefit figures.
package stats

import (
	"math"
	"sort"
)

// Median returns the median of xs (NaN for empty input).
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between closest ranks. NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// FractionAbove reports the fraction of xs strictly greater than
// threshold.
func FractionAbove(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, x := range xs {
		if x > threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // cumulative probability
}

// CDF returns the empirical CDF of xs as sorted points.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	for i, x := range s {
		out[i] = CDFPoint{X: x, P: float64(i+1) / float64(len(s))}
	}
	return out
}

// CDFAt evaluates the empirical CDF at x (fraction of values <= x).
func CDFAt(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, v := range xs {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Box is a five-number summary plus the mean, matching the boxplots of
// the paper's Figs. 4, 6, 7 and 10.
type Box struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// BoxOf summarizes xs.
func BoxOf(xs []float64) Box {
	return Box{
		Min:    Percentile(xs, 0),
		Q1:     Percentile(xs, 25),
		Median: Percentile(xs, 50),
		Q3:     Percentile(xs, 75),
		Max:    Percentile(xs, 100),
		Mean:   Mean(xs),
		N:      len(xs),
	}
}
