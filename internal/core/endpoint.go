package core

import (
	"sort"

	"mpquic/internal/netem"
	"mpquic/internal/wire"
)

// NewConnID derives a connection ID from a seed (splitmix64 step, so
// nearby seeds give unrelated IDs).
func NewConnID(seed uint64) wire.ConnectionID {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return wire.ConnectionID(z ^ (z >> 31))
}

// Dial creates a client connection. locals are the client's interface
// addresses; remotes the known server addresses. The initial path
// (Path 0) runs locals[0] → remotes[0]; upon handshake completion the
// path manager opens one path per additional index where both a local
// interface and a remote address are known (learned via config or
// ADD_ADDRESS frames).
//
// nw is any DatagramSender: the emulated *netem.Network, or a live
// UDP driver. The secure handshake starts immediately on the initial
// path; run the clock (or the live driver's loop) to make progress.
func Dial(nw DatagramSender, cfg Config, connID wire.ConnectionID, locals, remotes []netem.Addr) *Conn {
	if len(locals) == 0 || len(remotes) == 0 {
		panic("core: Dial needs at least one local and one remote address")
	}
	if !cfg.Multipath && cfg.MaxPaths > 1 {
		cfg.MaxPaths = 1
	}
	if cfg.MaxPaths == 0 {
		cfg.MaxPaths = 2
	}
	c := newConn(nw, RoleClient, connID, cfg, locals, remotes)
	c.addPath(0, locals[0], remotes[0])
	for _, a := range locals {
		nw.Register(a, c)
	}
	c.startClientHandshake()
	return c
}

// Listener accepts (MP)QUIC connections on a set of server addresses,
// demultiplexing datagrams to connections by Connection ID.
type Listener struct {
	nw     DatagramSender
	cfg    Config
	addrs  []netem.Addr
	conns  map[wire.ConnectionID]*Conn
	onConn []func(*Conn)

	// corruptDrops counts datagrams dropped before any connection saw
	// them (unparsable header / unknown payload kind); see
	// Conn.CorruptDrops for the per-connection counterpart.
	corruptDrops uint64
}

// Listen registers a server on the given addresses. nw is any
// DatagramSender (emulated network or live UDP driver).
func Listen(nw DatagramSender, cfg Config, addrs []netem.Addr) *Listener {
	if !cfg.Multipath && cfg.MaxPaths > 1 {
		cfg.MaxPaths = 1
	}
	if cfg.MaxPaths == 0 {
		cfg.MaxPaths = 2
	}
	l := &Listener{
		nw:    nw,
		cfg:   cfg,
		addrs: addrs,
		conns: make(map[wire.ConnectionID]*Conn),
	}
	for _, a := range addrs {
		nw.Register(a, l)
	}
	return l
}

// OnConnection registers a new-connection callback, invoked when the
// first packet of an unknown Connection ID arrives. Callbacks
// compose: each registered callback runs, in registration order, so
// an application server (apps.NewGetServer) and an observer (e.g.
// mpq-live's connection-close tracking) can both hook the listener.
func (l *Listener) OnConnection(fn func(*Conn)) { l.onConn = append(l.onConn, fn) }

// Conns returns the accepted connections, sorted by Connection ID so
// the order is deterministic (map iteration order must not leak).
func (l *Listener) Conns() []*Conn {
	ids := make([]wire.ConnectionID, 0, len(l.conns))
	for id := range l.conns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*Conn, 0, len(ids))
	for _, id := range ids {
		out = append(out, l.conns[id])
	}
	return out
}

// HandleDatagram implements netem.Handler: dispatch by Connection ID.
func (l *Listener) HandleDatagram(dg netem.Datagram) {
	var cid wire.ConnectionID
	if dg.Raw != nil {
		hdr, _, err := wire.ParseHeader(dg.Raw, wire.InvalidPacketNumber)
		if err != nil {
			l.corruptDrops++
			return
		}
		cid = hdr.ConnID
	} else if pl, ok := dg.Payload.(*wire.Packet); ok {
		cid = pl.Header.ConnID
	} else {
		l.corruptDrops++
		return
	}
	c, ok := l.conns[cid]
	if !ok {
		c = newConn(l.nw, RoleServer, cid, l.cfg, l.addrs, []netem.Addr{dg.From})
		l.conns[cid] = c
		for _, fn := range l.onConn {
			fn(c)
		}
	}
	c.HandleDatagram(dg)
}

// CorruptDrops sums the undecodable-ingress drops across the listener
// itself and every accepted connection.
func (l *Listener) CorruptDrops() uint64 {
	total := l.corruptDrops
	for _, c := range l.Conns() {
		total += c.CorruptDrops()
	}
	return total
}

// FailPathsOn relays a local socket failure to every accepted
// connection (see Conn.FailPathsOn); returns the number of paths
// newly marked potentially failed.
func (l *Listener) FailPathsOn(local netem.Addr) int {
	n := 0
	for _, c := range l.Conns() {
		n += c.FailPathsOn(local)
	}
	return n
}
