// Package perfpkg is loaded by the walltime tests under the import
// path mpquic/internal/perf to prove the analyzer's package allowlist:
// the wall-clock reads below must produce no findings there, and must
// produce findings when the same code is loaded under its own path.
package perfpkg

import "time"

// Elapsed reads the wall clock, which only the perf package may do.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

// Stamp reads the wall clock.
func Stamp() time.Time {
	return time.Now()
}
