package stats

import (
	"strings"
	"testing"
)

func TestAsciiCDFRendersSeries(t *testing.T) {
	out := AsciiCDF(map[string][]float64{
		"alpha": {0.5, 1, 2, 4},
		"beta":  {1, 1, 1, 1},
	}, 0.1, 10, 40, 8)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("missing glyphs:\n%s", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Fatalf("missing legend:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 10 {
		t.Fatalf("too few lines: %d", len(lines))
	}
	// Y-axis labels run from 1.00 down to 0.00.
	if !strings.HasPrefix(lines[0], "1.00") {
		t.Fatalf("first row %q", lines[0])
	}
}

func TestAsciiCDFDegenerateInputs(t *testing.T) {
	// Must not panic on odd parameters or empty series.
	_ = AsciiCDF(map[string][]float64{"x": {}}, -1, -2, 5, 2)
	_ = AsciiCDF(nil, 0.1, 10, 60, 12)
}

func TestAsciiBoxRendersOrdered(t *testing.T) {
	out := AsciiBox(map[string]Box{
		"mptcp":  BoxOf([]float64{-0.5, 0, 0.2, 0.4, 0.9}),
		"mpquic": BoxOf([]float64{0, 0.5, 0.8, 0.9, 1.0}),
	}, -1, 1.5, 40)
	if !strings.Contains(out, "M") || !strings.Contains(out, "=") {
		t.Fatalf("missing box glyphs:\n%s", out)
	}
	// Alphabetical label order.
	if strings.Index(out, "mpquic") > strings.Index(out, "mptcp") {
		t.Fatalf("labels out of order:\n%s", out)
	}
}

func TestAsciiTimeSeriesRendersSeries(t *testing.T) {
	out := AsciiTimeSeries(map[string][]Point{
		"path 0": {{X: 0, Y: 10}, {X: 1, Y: 20}, {X: 2, Y: 40}},
		"path 1": {{X: 0, Y: 5}, {X: 1, Y: 5}, {X: 2, Y: 5}},
	}, 40, 8)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("missing glyphs:\n%s", out)
	}
	if !strings.Contains(out, "path 0") || !strings.Contains(out, "path 1") {
		t.Fatalf("missing legend:\n%s", out)
	}
	// Output must be deterministic (sorted series order).
	if out != AsciiTimeSeries(map[string][]Point{
		"path 1": {{X: 0, Y: 5}, {X: 1, Y: 5}, {X: 2, Y: 5}},
		"path 0": {{X: 0, Y: 10}, {X: 1, Y: 20}, {X: 2, Y: 40}},
	}, 40, 8) {
		t.Fatal("rendering depends on map insertion order")
	}
}

func TestAsciiTimeSeriesDegenerateInputs(t *testing.T) {
	// Must not panic on empty input, single points, or odd dimensions.
	_ = AsciiTimeSeries(nil, 5, 2)
	_ = AsciiTimeSeries(map[string][]Point{"x": {}}, -1, -1)
	_ = AsciiTimeSeries(map[string][]Point{"x": {{X: 3, Y: 0}}}, 30, 6)
}

func TestAsciiBoxMedianInsideBox(t *testing.T) {
	out := AsciiBox(map[string]Box{"b": BoxOf([]float64{1, 2, 3, 4, 5})}, 0, 6, 30)
	line := strings.Split(out, "\n")[0]
	iM := strings.Index(line, "M")
	iEqFirst := strings.Index(line, "=")
	iEqLast := strings.LastIndex(line, "=")
	if iM < iEqFirst || iM > iEqLast {
		t.Fatalf("median outside the box:\n%s", out)
	}
}
