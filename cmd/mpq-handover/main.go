// Command mpq-handover regenerates Fig. 11: request/response traffic
// over Multipath QUIC with the initial path failing mid-connection.
//
//	mpq-handover                 # the paper's parameters
//	mpq-handover -no-paths-frame # ablation: without the PATHS signal
package main

import (
	"flag"
	"fmt"
	"time"

	"mpquic/internal/expdesign"
)

func main() {
	var (
		rtt0     = flag.Duration("rtt0", 15*time.Millisecond, "initial path RTT")
		rtt1     = flag.Duration("rtt1", 25*time.Millisecond, "second path RTT")
		capMbps  = flag.Float64("cap", 10, "path capacity [Mbps]")
		failAt   = flag.Duration("fail-at", 3*time.Second, "initial path failure time")
		duration = flag.Duration("duration", 15*time.Second, "request train duration")
		noPaths  = flag.Bool("no-paths-frame", false, "ablation: disable the PATHS frame on failure")
		seed     = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	hc := expdesign.HandoverConfig{
		InitialRTT:          *rtt0,
		SecondRTT:           *rtt1,
		CapacityMbps:        *capMbps,
		FailAt:              *failAt,
		Duration:            *duration,
		PathsFrameOnFailure: !*noPaths,
		Seed:                *seed,
	}
	res := expdesign.RunHandover(hc)
	fmt.Print(expdesign.ReportHandover(res, "Network handover over Multipath QUIC"))
}
