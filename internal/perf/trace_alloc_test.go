package perf

import (
	"testing"
	"time"

	"mpquic/internal/apps"
	"mpquic/internal/core"
	"mpquic/internal/netem"
	"mpquic/internal/sim"
	"mpquic/internal/trace"
)

// Allocation budgets for the observability layer: tracing must be free
// when disabled and O(1)-cheap, zero-alloc per event when armed — a
// flight recorder on every grid run may not slow the grid down.

func TestFlightRecorderTraceAllocFree(t *testing.T) {
	r := trace.NewFlightRecorder(128)
	ev := trace.Event{Time: time.Second, Type: trace.PacketSent, Path: 1, PN: 42, Size: 1350}
	allocs := testing.AllocsPerRun(1000, func() { r.Trace(ev) })
	if allocs > 0 {
		t.Errorf("FlightRecorder.Trace allocates %.1f/op, want 0 (ring is preallocated)", allocs)
	}
}

// runTraceTransfer drives one same-seed two-path MPQUIC download with
// the given tracer attached to both endpoints.
func runTraceTransfer(tr trace.Tracer) {
	clock := sim.NewClock()
	clock.Limit = 50_000_000
	tp := netem.NewTwoPath(clock, sim.NewRand(7), [2]netem.PathSpec{
		{CapacityMbps: 8, RTT: 20 * time.Millisecond, QueueDelay: 20 * time.Millisecond},
		{CapacityMbps: 4, RTT: 40 * time.Millisecond, QueueDelay: 20 * time.Millisecond},
	})
	cfg := core.DefaultConfig()
	cfg.HandshakeSeed = 7
	cfg.Tracer = tr
	lis := core.Listen(tp.Net, cfg, tp.ServerAddrs[:])
	apps.NewGetServer(lis)
	client := core.Dial(tp.Net, cfg, core.NewConnID(7), tp.ClientAddrs[:], tp.ServerAddrs[:])
	now := func() time.Duration { return clock.Now().Duration() }
	apps.NewGetClient(client, 256<<10, now, func(apps.GetResult) { clock.Stop() })
	if err := clock.RunUntil(sim.Time(time.Minute)); err != nil {
		panic(err)
	}
}

// An armed flight recorder must add no per-packet allocations over the
// nil-tracer baseline: the ~500 packets of this transfer would blow
// the slack immediately if Trace (or the Event construction feeding
// it) allocated per event. The small slack absorbs the constant-count
// per-connection events whose Detail strings are built on attach.
func TestArmedFlightRecorderAllocParity(t *testing.T) {
	if testing.Short() {
		t.Skip("full-transfer allocation measurement")
	}
	base := testing.AllocsPerRun(3, func() { runTraceTransfer(nil) })
	fr := trace.NewFlightRecorder(trace.DefaultFlightEvents)
	armed := testing.AllocsPerRun(3, func() {
		fr.Reset()
		runTraceTransfer(fr)
	})
	const slack = 50
	if armed > base+slack {
		t.Errorf("armed flight recorder allocates %.0f/run vs %.0f/run nil-tracer: tracing leaks per-packet garbage", armed, base)
	}
}
