package tcpsim

import (
	"testing"
	"time"

	"mpquic/internal/netem"
	"mpquic/internal/sim"
)

func TestTCPListenerIgnoresStrays(t *testing.T) {
	clock := sim.NewClock()
	nw := netem.New(clock, sim.NewRand(1))
	nw.Connect("c:1", "s:443", link10M(20*time.Millisecond))
	lis := ListenTCP(nw, DefaultConfig(), "s:443")
	// A non-SYN segment for an unknown peer must not create state.
	nw.Send(netem.Datagram{From: "c:1", To: "s:443", Size: 100,
		Payload: &Segment{ACK: true, AckNum: 5}})
	clock.Run()
	if len(lis.Conns()) != 0 {
		t.Fatal("stray segment created a connection")
	}
}

func TestTCPHalfCloseDirectionsIndependent(t *testing.T) {
	h := newTCPHarness(t, DefaultConfig(), link10M(20*time.Millisecond))
	// Client closes its write side; the server can still send.
	serverSent := false
	h.lis.OnConnection(func(c *Conn) {
		c.OnData(func() {
			if n := c.Readable(); n > 0 {
				c.Read(n)
			}
			if c.Finished() && !serverSent {
				serverSent = true
				c.WriteSynthetic(50 << 10)
				c.CloseWrite()
			}
		})
	})
	h.client.OnData(func() {
		if n := h.client.Readable(); n > 0 {
			h.client.Read(n)
		}
	})
	h.client.OnEstablished(func() {
		h.client.WriteSynthetic(100)
		h.client.CloseWrite()
	})
	h.run(t, 10*time.Second)
	if !h.client.Finished() {
		t.Fatal("server response did not arrive after client half-close")
	}
	if !h.client.AllAcked() {
		t.Fatal("client data not fully acked")
	}
}

func TestTCPDupAcksDoNotInflateWindowAccounting(t *testing.T) {
	h := newTCPHarness(t, DefaultConfig(), link10M(20*time.Millisecond))
	ServeGet(h.lis, 512<<10)
	var res *GetResult
	GetOverTCP(h.client, 512<<10, func() time.Duration { return h.clock.Now().Duration() },
		func(r GetResult) { res = &r })
	h.run(t, 30*time.Second)
	if res == nil {
		t.Fatal("transfer failed")
	}
	srv := h.lis.Conns()[0]
	// After a complete transfer everything settles: zero in flight.
	if srv.bytesInFlight != 0 {
		t.Fatalf("in-flight accounting leaked: %d", srv.bytesInFlight)
	}
	if srv.liveRtx != 0 {
		t.Fatalf("rtx accounting leaked: %d", srv.liveRtx)
	}
}

func TestTCPZeroWindowStallsAndRecovers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecvWindow = 32 << 10
	clock := sim.NewClock()
	nw := netem.New(clock, sim.NewRand(3))
	nw.Connect("c:1", "s:443", link10M(20*time.Millisecond))
	lis := ListenTCP(nw, cfg, "s:443")
	var srv *Conn
	served := false
	lis.OnConnection(func(c *Conn) {
		srv = c
		c.OnData(func() {
			if n := c.Readable(); n > 0 {
				c.Read(n)
			}
			if c.Finished() && !served {
				served = true
				c.WriteSynthetic(256 << 10) // the client won't read at first
				c.CloseWrite()
			}
		})
	})
	client := DialTCP(nw, cfg, "c:1", "s:443")
	client.OnEstablished(func() {
		client.WriteSynthetic(100)
		client.CloseWrite()
	})
	// The client never reads: receive window fills at 32 KB.
	clock.RunUntil(sim.Time(10 * time.Second))
	if got := client.BytesReceived(); got > 32<<10 {
		t.Fatalf("receiver window exceeded: %d", got)
	}
	// Start reading: transfer completes.
	client.OnData(func() {
		if n := client.Readable(); n > 0 {
			client.Read(n)
		}
	})
	client.Read(client.Readable())
	// Reading must trigger a window update via the next ack the
	// client sends; force one exchange by running the clock.
	clock.RunUntil(sim.Time(120 * time.Second))
	if client.BytesReceived() != 256<<10 {
		t.Fatalf("transfer stuck after window opened: %d", client.BytesReceived())
	}
	_ = srv
}
