// Package ringsafety exercises the buffer-ring lifecycle analyzer:
// buffers drawn from an //mpq:ring channel are recycled exactly once
// and never outlive the iteration that holds them.
package ringsafety

//mpq:ring
var ring = make(chan []byte, 8)

type driver struct {
	//mpq:ring
	freeCh chan []byte
	sink   [][]byte
	held   []byte
	out    chan []byte
}

// get is a derived get-helper: it returns a buffer received from the
// ring.
func get(d *driver) []byte {
	select {
	case b := <-d.freeCh:
		return b
	default:
		return make([]byte, 2048)
	}
}

// put is a derived put-helper: it sends its parameter to the ring.
func put(d *driver, b []byte) {
	select {
	case d.freeCh <- b:
	default:
	}
}

func useAfterRecycle(d *driver) byte {
	b := get(d)
	put(d, b)
	return b[0] // want `b is used after it was recycled to the buffer ring`
}

func doublePut(d *driver) {
	b := get(d)
	put(d, b)
	put(d, b) // want `b is used after it was recycled to the buffer ring`
}

func directSendThenUse(d *driver) int {
	b := <-d.freeCh
	d.freeCh <- b
	return len(b) // want `b is used after it was recycled to the buffer ring`
}

func resliceAlias(d *driver) byte {
	b := get(d)
	view := b[:16]
	put(d, b)
	return view[0] // want `view is used after it was recycled to the buffer ring`
}

func storeField(d *driver) {
	b := get(d)
	d.held = b // want `storing b in a field/map/global lets a ring buffer escape`
}

func storeSlice(d *driver) {
	b := get(d)
	d.sink[0] = b // want `storing b in a field/map/global lets a ring buffer escape`
}

func deferCapture(d *driver) {
	b := get(d)
	defer func() { d.out <- b }() // want `a deferred closure captures ring buffer b`
}

func goCapture(d *driver) {
	b := get(d)
	go func() { _ = b[0] }() // want `a goroutine captures ring buffer b`
}

// transfer is the sanctioned hand-off: ownership moves with the
// message, like the reader→driver recvCh send.
func transfer(d *driver) {
	b := get(d)
	d.out <- b[:10]
}

// reuse is the sanctioned deferred recycle: the put runs last, after
// every use.
func reuse(d *driver) int {
	b := get(d)
	defer put(d, b)
	return len(b)
}

// globalGet returns straight off the package-level ring.
func globalGet() []byte { return <-ring }

func globalUseAfter() byte {
	b := globalGet()
	ring <- b
	return b[0] // want `b is used after it was recycled to the buffer ring`
}

// suppressed demonstrates the audited escape hatch.
func suppressed(d *driver) byte {
	b := get(d)
	put(d, b)
	return b[0] //mpqvet:allow ringsafety asserting the suppression path works
}
