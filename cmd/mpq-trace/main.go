// Command mpq-trace runs one (MP)QUIC download with full protocol
// tracing — the reproduction's qlog. Events (packets, acks, losses,
// congestion windows, path lifecycle) stream to stdout as text,
// newline-delimited JSON, or qlog-compatible JSON-SEQ (-qlog; loadable
// in qlog tooling such as qvis, with per-path cwnd/RTT series carried
// as recovery:metrics_updated events). Link lifecycle events
// (link_down, link_up, link_reconfigured) from the emulator are
// interleaved, so dynamic scenarios — a killed or flapping path —
// explain themselves in the trace.
//
//	mpq-trace -size 1 -json > transfer.jsonl
//	mpq-trace -size 1 -qlog > transfer.qlog
//	mpq-trace -events rto_fired,path_potentially_failed -kill-at 2s
//	mpq-trace -events link_down,link_up,rto_fired -flap-period 2s -flap-outage 300ms
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mpquic/internal/apps"
	"mpquic/internal/core"
	"mpquic/internal/netem"
	"mpquic/internal/netem/dynamics"
	"mpquic/internal/sim"
	"mpquic/internal/trace"
)

func main() {
	var (
		sizeMB  = flag.Float64("size", 1, "transfer size in MB")
		jsonOut = flag.Bool("json", false, "emit newline-delimited JSON instead of text")
		qlogOut = flag.Bool("qlog", false, "emit qlog-compatible JSON-SEQ instead of text")
		events  = flag.String("events", "", "comma-separated event filter (empty = all)")
		side    = flag.String("side", "server", "which endpoint to trace: client or server")
		killAt  = flag.Duration("kill-at", 0, "kill path 0 at this time (0 = never)")
		flapP   = flag.Duration("flap-period", 0, "flap path 0 with this period (0 = no flapping)")
		flapO   = flag.Duration("flap-outage", 300*time.Millisecond, "flap outage length (with -flap-period)")
		cap0    = flag.Float64("cap0", 10, "path 0 capacity [Mbps]")
		cap1    = flag.Float64("cap1", 10, "path 1 capacity [Mbps]")
		rtt0    = flag.Duration("rtt0", 30*time.Millisecond, "path 0 RTT")
		rtt1    = flag.Duration("rtt1", 50*time.Millisecond, "path 1 RTT")
		loss0   = flag.Float64("loss0", 0, "path 0 loss rate")
		loss1   = flag.Float64("loss1", 0, "path 1 loss rate")
		seed    = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	var tracer trace.Tracer
	switch {
	case *qlogOut:
		tracer = trace.NewQlog(os.Stdout, *side)
	case *jsonOut:
		tracer = trace.NewJSON(os.Stdout)
	default:
		tracer = trace.NewText(os.Stdout)
	}
	if *events != "" {
		var types []trace.EventType
		for _, e := range strings.Split(*events, ",") {
			types = append(types, trace.EventType(strings.TrimSpace(e)))
		}
		tracer = trace.NewFilter(tracer, types...)
	}

	clock := sim.NewClock()
	clock.Limit = 200_000_000
	tp := netem.NewTwoPath(clock, sim.NewRand(*seed), [2]netem.PathSpec{
		{CapacityMbps: *cap0, RTT: *rtt0, QueueDelay: 100 * time.Millisecond, LossRate: *loss0},
		{CapacityMbps: *cap1, RTT: *rtt1, QueueDelay: 100 * time.Millisecond, LossRate: *loss1},
	})
	clientCfg, serverCfg := core.DefaultConfig(), core.DefaultConfig()
	switch *side {
	case "client":
		clientCfg.Tracer = tracer
	case "server":
		serverCfg.Tracer = tracer
	default:
		fmt.Fprintf(os.Stderr, "unknown -side %q\n", *side)
		os.Exit(2)
	}

	lis := core.Listen(tp.Net, serverCfg, tp.ServerAddrs[:])
	apps.NewGetServer(lis)
	client := core.Dial(tp.Net, clientCfg, core.NewConnID(*seed), tp.ClientAddrs[:], tp.ServerAddrs[:])
	var res *apps.GetResult
	apps.NewGetClient(client, uint64(*sizeMB*(1<<20)), func() time.Duration { return clock.Now().Duration() },
		func(r apps.GetResult) { res = &r; clock.Stop() })
	// Link lifecycle events ride the same tracer as the protocol's, so
	// a dynamic scenario's cause and effect line up in one stream.
	tp.SetTracer(tracer)
	if *killAt > 0 {
		dynamics.KillAt(0, *killAt).Apply(clock, tp)
	}
	if *flapP > 0 {
		dynamics.Flap(0, *flapP/2, *flapO, *flapP).Apply(clock, tp)
	}
	if err := clock.RunUntil(sim.Time(10 * time.Minute)); err != nil {
		fmt.Fprintln(os.Stderr, "sim:", err)
		os.Exit(1)
	}
	if res == nil {
		fmt.Fprintln(os.Stderr, "transfer did not complete")
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "completed in %v (%.2f Mbps)\n",
		res.Elapsed().Round(time.Millisecond), res.GoodputBps()/1e6)
}
