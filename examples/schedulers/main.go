// Schedulers: compare the paper's lowest-RTT scheduler (with and
// without its duplication phase) against round-robin and the
// BLEST-inspired extension on a heterogeneous two-path network.
//
//	go run ./examples/schedulers
package main

import (
	"fmt"
	"time"

	"mpquic"
)

func run(sched mpquic.Config) time.Duration {
	net := mpquic.NewTwoPathNetwork(mpquic.TwoPathConfig{
		Path0: mpquic.PathSpec{CapacityMbps: 15, RTT: 20 * time.Millisecond, QueueDelay: 60 * time.Millisecond},
		Path1: mpquic.PathSpec{CapacityMbps: 4, RTT: 120 * time.Millisecond, QueueDelay: 150 * time.Millisecond},
		Seed:  9,
	})
	server := net.Listen(sched)
	net.ServeGet(server)
	client := net.Dial(sched, 123)
	res, err := net.Download(client, 8<<20)
	if err != nil {
		return 0
	}
	return res.Elapsed()
}

func main() {
	base := mpquic.DefaultConfig()

	noDup := base
	noDup.Scheduler = mpquic.SchedLowestRTTNoDup
	noDup.DuplicateOnNewPath = false

	rr := base
	rr.Scheduler = mpquic.SchedRoundRobin

	blest := base
	blest.Scheduler = mpquic.SchedBLEST

	fmt.Println("GET 8 MB over 15 Mbps/20 ms + 4 Mbps/120 ms:")
	for _, v := range []struct {
		name string
		cfg  mpquic.Config
	}{
		{"lowest-RTT + duplication (paper default)", base},
		{"lowest-RTT, no duplication", noDup},
		{"round-robin", rr},
		{"BLEST-inspired (extension)", blest},
	} {
		el := run(v.cfg)
		if el == 0 {
			fmt.Printf("  %-42s did not complete\n", v.name)
			continue
		}
		fmt.Printf("  %-42s %8v  (%.2f Mbps)\n", v.name,
			el.Round(time.Millisecond), float64(8<<20)*8/el.Seconds()/1e6)
	}
}
