package core

import (
	"fmt"
	"time"

	"mpquic/internal/cc"
	"mpquic/internal/crypto"
	"mpquic/internal/netem"
	"mpquic/internal/rtt"
	"mpquic/internal/sim"
	"mpquic/internal/stream"
	"mpquic/internal/trace"
	"mpquic/internal/wire"
)

// ConnStats aggregates connection-level counters for the experiments.
type ConnStats struct {
	HandshakeCompleted time.Duration // virtual time of completion
	PacketsSent        uint64
	PacketsReceived    uint64
	BytesSent          uint64
	BytesReceived      uint64
	DuplicatedPackets  uint64
	PathsOpened        int
	RTOs               uint64
	PacketsLost        uint64
	// Retransmissions counts stream frames whose data was requeued
	// after a loss declaration; each will be resent (possibly on a
	// different path — retransmissions are not path-pinned, §3).
	Retransmissions  uint64
	TailReinjections uint64
}

// Conn is one (Multipath) QUIC connection endpoint.
type Conn struct {
	cfg    Config
	role   Role
	clock  *sim.Clock
	net    DatagramSender
	connID wire.ConnectionID

	paths           map[wire.PathID]*Path
	pathOrder       []wire.PathID
	nextLocalPathID wire.PathID
	rrNext          int // round-robin scheduler cursor

	localAddrs  []netem.Addr
	remoteAddrs []netem.Addr

	// Handshake state.
	hsClient          *crypto.ClientHandshake
	hsServer          *crypto.ServerHandshake
	handshakeComplete bool
	chloPending       bool // client must (re)send CHLO
	shloPending       bool // server must (re)send SHLO
	shloPayload       []byte
	sealSend          wire.Sealer
	sealRecv          wire.Sealer

	olia *cc.Olia // non-nil when cfg.CC == CCOlia
	lia  *cc.Lia  // non-nil when cfg.CC == CCLia

	connFC        *stream.FlowController
	connRecvTotal uint64
	streams       map[wire.StreamID]*Stream
	streamOrder   []wire.StreamID
	nextStreamID  wire.StreamID

	ctrl []wire.Frame // control frames the scheduler may route anywhere

	timer        *sim.Timer
	lastRecvTime time.Duration
	startTime    time.Duration

	sending     bool // trySend re-entrancy guard
	sendPending bool

	closed   bool
	closeErr error

	// corruptDrops counts ingress datagrams dropped because they did
	// not decode: unparsable header, failed AEAD/frame decode, or a
	// payload that is neither raw bytes nor a *wire.Packet. A real
	// stack drops these silently; the counter makes "silently" visible
	// (live mode surfaces it as Stats.CorruptDrops).
	corruptDrops uint64

	// Callbacks (all optional).
	onHandshakeDone func()
	onStreamOpen    func(*Stream)
	onClosed        func(error)
	onPathsFrame    func(*wire.PathsFrame)

	Stats ConnStats
}

// newConn builds the common connection state.
func newConn(net DatagramSender, role Role, connID wire.ConnectionID, cfg Config, localAddrs, remoteAddrs []netem.Addr) *Conn {
	c := &Conn{
		cfg:         cfg,
		role:        role,
		clock:       net.Clock(),
		net:         net,
		connID:      connID,
		paths:       make(map[wire.PathID]*Path),
		localAddrs:  localAddrs,
		remoteAddrs: remoteAddrs,
		connFC:      stream.NewFlowController(cfg.ConnWindow),
		streams:     make(map[wire.StreamID]*Stream),
	}
	c.startTime = c.now()
	c.lastRecvTime = c.now()
	if role == RoleClient {
		c.nextStreamID = FirstClientStream
		c.nextLocalPathID = 1 // client-created paths are odd (§3)
	} else {
		c.nextStreamID = FirstServerStream
		c.nextLocalPathID = 2 // server-created paths are even
	}
	if cfg.CC == CCOlia {
		c.olia = cc.NewOlia(mss())
	}
	if cfg.CC == CCLia {
		c.lia = cc.NewLia(mss())
	}
	c.timer = sim.NewTimer(c.clock, c.onTimer)
	return c
}

// mss is the congestion-control segment size: a full packet.
func mss() int { return wire.MaxPacketSize }

func (c *Conn) now() time.Duration { return c.clock.Now().Duration() }

// trace emits ev when tracing is enabled, stamping the current time.
func (c *Conn) trace(ev trace.Event) {
	if c.cfg.Tracer == nil {
		return
	}
	ev.Time = c.now()
	c.cfg.Tracer.Trace(ev)
}

// ConnID returns the connection ID.
func (c *Conn) ConnID() wire.ConnectionID { return c.connID }

// Role returns the endpoint role.
func (c *Conn) Role() Role { return c.role }

// HandshakeComplete reports whether keys are established.
func (c *Conn) HandshakeComplete() bool { return c.handshakeComplete }

// Closed reports whether the connection terminated.
func (c *Conn) Closed() bool { return c.closed }

// Paths returns the open paths in creation order.
func (c *Conn) Paths() []*Path {
	out := make([]*Path, 0, len(c.pathOrder))
	for _, id := range c.pathOrder {
		out = append(out, c.paths[id])
	}
	return out
}

// PathByID returns a path or nil.
func (c *Conn) PathByID(id wire.PathID) *Path { return c.paths[id] }

// SampleInto appends one PathSample per path (creation order) to rec,
// stamped with the current simulated time. Sampling only reads state —
// attaching a sampler never changes a run's schedule or results — and
// at a fixed cadence the series is byte-reproducible across same-seed
// runs.
func (c *Conn) SampleInto(rec *trace.SeriesRecorder) {
	now := c.now()
	for _, id := range c.pathOrder {
		p := c.paths[id]
		rec.Add(trace.PathSample{
			T:          now,
			Path:       uint8(p.ID),
			Cwnd:       p.cc.Cwnd(),
			SRTT:       p.est.SmoothedRTT(),
			InFlight:   p.space.BytesInFlight(),
			BytesSent:  p.SentBytes,
			BytesAcked: p.AckedBytes,
			SlowStart:  p.cc.InSlowStart(),
		})
	}
}

// OnHandshakeComplete registers the handshake-completion callback.
func (c *Conn) OnHandshakeComplete(fn func()) {
	c.onHandshakeDone = fn
	if c.handshakeComplete {
		fn()
	}
}

// OnStreamOpen registers the peer-opened-stream callback.
func (c *Conn) OnStreamOpen(fn func(*Stream)) { c.onStreamOpen = fn }

// OnClosed registers the close callback.
func (c *Conn) OnClosed(fn func(error)) { c.onClosed = fn }

// OnPathsFrame registers a callback for received PATHS frames (used by
// tests and the handover example to observe PF signalling).
func (c *Conn) OnPathsFrame(fn func(*wire.PathsFrame)) { c.onPathsFrame = fn }

// newController builds a per-path congestion controller.
func (c *Conn) newController() (cc.Controller, *cc.OliaPath) {
	maxCwnd := int(c.cfg.ConnWindow)
	switch c.cfg.CC {
	case CCOlia:
		p := c.olia.AddPath()
		p.SetMaxCwnd(maxCwnd)
		return p, p
	case CCLia:
		p := c.lia.AddPath()
		p.SetMaxCwnd(maxCwnd)
		return p, nil
	case CCReno:
		r := cc.NewReno(mss())
		r.SetMaxCwnd(maxCwnd)
		return r, nil
	default:
		cub := cc.NewCubic(mss(), c.now)
		cub.SetMaxCwnd(maxCwnd)
		return cub, nil
	}
}

// addPath creates and registers a path.
func (c *Conn) addPath(id wire.PathID, local, remote netem.Addr) *Path {
	ctrl, oliaPath := c.newController()
	p := newPath(id, local, remote, rtt.New(rtt.DefaultQUIC()), ctrl, oliaPath)
	c.paths[id] = p
	c.pathOrder = append(c.pathOrder, id)
	c.Stats.PathsOpened++
	c.trace(trace.Event{Type: trace.PathOpened, Path: uint8(id), Detail: string(local) + "->" + string(remote)})
	return p
}

// --- handshake ---

// startClientHandshake queues the CHLO on path 0. With 0-RTT enabled
// the client derives keys from the cached server config right away and
// completes locally — application data rides the first flight.
func (c *Conn) startClientHandshake() {
	c.hsClient = crypto.NewClientHandshake(c.cfg.HandshakeSeed)
	c.chloPending = true
	if c.cfg.ZeroRTT {
		c.deriveKeys(crypto.ResumptionSecret(c.cfg.HandshakeSeed))
		c.completeHandshake()
		return
	}
	c.trySend()
}

func (c *Conn) handleHandshakeFrame(p *Path, f *wire.HandshakeFrame) {
	switch f.Message {
	case wire.HandshakeCHLO0RTT:
		if c.role != RoleServer || !c.cfg.ZeroRTT {
			return // no cached config: a real stack would force 1-RTT
		}
		if !c.handshakeComplete {
			c.deriveKeys(crypto.ResumptionSecret(c.cfg.HandshakeSeed))
			c.completeHandshake()
		}
	case wire.HandshakeCHLO:
		if c.role != RoleServer {
			return
		}
		if c.hsServer == nil {
			c.hsServer = crypto.NewServerHandshake(c.cfg.HandshakeSeed + 1)
		}
		shlo, err := c.hsServer.OnCHLO(f.Payload)
		if err != nil {
			c.closeWithError(fmt.Errorf("handshake: %w", err))
			return
		}
		c.shloPayload = shlo
		c.shloPending = true
		if !c.handshakeComplete {
			c.deriveKeys(c.hsServer.Secret())
			c.completeHandshake()
		}
	case wire.HandshakeSHLO:
		if c.role != RoleClient || c.handshakeComplete {
			return
		}
		if err := c.hsClient.OnSHLO(f.Payload); err != nil {
			c.closeWithError(fmt.Errorf("handshake: %w", err))
			return
		}
		c.deriveKeys(c.hsClient.Secret())
		c.completeHandshake()
	}
	p.ackMgr.ForceAck()
}

func (c *Conn) deriveKeys(secret []byte) {
	if !c.cfg.EnableCrypto {
		return
	}
	c2s, s2c := crypto.SessionKeys(secret)
	mk := func(k crypto.Keys) wire.Sealer {
		s, err := crypto.NewSealer(k, c.cfg.Multipath)
		if err != nil {
			panic(err)
		}
		return s
	}
	if c.role == RoleClient {
		c.sealSend, c.sealRecv = mk(c2s), mk(s2c)
	} else {
		c.sealSend, c.sealRecv = mk(s2c), mk(c2s)
	}
}

func (c *Conn) completeHandshake() {
	c.handshakeComplete = true
	c.Stats.HandshakeCompleted = c.now()
	c.trace(trace.Event{Type: trace.HandshakeDone})
	// Path manager: open one path per additional interface (§3, Path
	// Management — "upon handshake completion, it opens one path over
	// each interface on the client host").
	if c.role == RoleClient && c.cfg.Multipath {
		c.openAdditionalPaths()
	}
	if c.cfg.AdvertiseAddresses {
		for i := 1; i < len(c.localAddrs); i++ {
			c.ctrl = append(c.ctrl, &wire.AddAddressFrame{AddrIndex: uint8(i), Address: string(c.localAddrs[i])})
		}
	}
	if c.onHandshakeDone != nil {
		c.onHandshakeDone()
	}
	c.trySend()
}

// openAdditionalPaths pairs local interface i with known remote
// address i and opens a path when both exist.
func (c *Conn) openAdditionalPaths() {
	for i := 1; i < len(c.localAddrs) && len(c.pathOrder) < c.cfg.MaxPaths; i++ {
		if i >= len(c.remoteAddrs) {
			break
		}
		if c.havePathFor(c.localAddrs[i], c.remoteAddrs[i]) {
			continue
		}
		id := c.nextLocalPathID
		c.nextLocalPathID += 2
		p := c.addPath(id, c.localAddrs[i], c.remoteAddrs[i])
		// Activate the path immediately: a PING makes the peer learn
		// the path (and yields its first RTT sample) even when the
		// local side has no data to place in the first packet.
		p.queueCtrl(&wire.PingFrame{})
	}
}

func (c *Conn) havePathFor(local, remote netem.Addr) bool {
	for _, p := range c.paths {
		if p.Local == local && p.Remote == remote {
			return true
		}
	}
	return false
}

// --- receiving ---

// HandleDatagram implements netem.Handler.
func (c *Conn) HandleDatagram(dg netem.Datagram) {
	if c.closed {
		return
	}
	var pkt *wire.Packet
	if raw := dg.Raw; raw != nil {
		// Identify the path first to pick the right PN context.
		hdr, _, err := wire.ParseHeader(raw, wire.InvalidPacketNumber)
		if err != nil {
			c.corruptDrops++
			return // corrupted: a real stack drops silently
		}
		largest := wire.InvalidPacketNumber
		if p, ok := c.paths[hdr.PathID]; ok {
			if l, has := p.ackMgr.LargestReceived(); has {
				largest = l
			}
		}
		var sealer wire.Sealer
		if !hdr.Handshake {
			sealer = c.sealRecv
		}
		// Frames borrow raw; every payload-carrying frame is copied out
		// by its handler before HandleDatagram returns, so the buffer
		// can rejoin the encode pool afterwards (also on the corrupted-
		// packet early return below).
		defer wire.PutPacketBuf(raw)
		pkt, err = wire.DecodeBorrowed(raw, largest, sealer)
		if err != nil {
			c.corruptDrops++
			return
		}
	} else if pl, ok := dg.Payload.(*wire.Packet); ok {
		pkt = pl
	} else {
		c.corruptDrops++
		return
	}
	if pkt.Header.ConnID != c.connID {
		return
	}
	now := c.now()
	c.lastRecvTime = now

	pathID := pkt.Header.PathID
	if !pkt.Header.Multipath {
		pathID = 0
	}
	p, ok := c.paths[pathID]
	if !ok {
		// Peer-initiated path: adopt addresses from the datagram.
		if len(c.pathOrder) >= c.cfg.MaxPaths && c.cfg.MaxPaths > 0 {
			return
		}
		p = c.addPath(pathID, dg.To, dg.From)
	}
	if p.Remote != dg.From {
		// NAT rebinding: keep path state, update the remote (§3).
		p.Remote = dg.From
	}
	p.lastActivity = now
	p.RecvPackets++
	p.RecvBytes += uint64(dg.Size)
	c.Stats.PacketsReceived++
	c.Stats.BytesReceived += uint64(dg.Size)
	c.trace(trace.Event{Type: trace.PacketReceived, Path: uint8(p.ID), PN: uint64(pkt.Header.PacketNumber), Size: dg.Size})

	if !p.ackMgr.OnPacketReceived(pkt.Header.PacketNumber, pkt.IsRetransmittable(), now) {
		// Duplicate (e.g. scheduler duplication or spurious rtx):
		// still make sure an ack goes out so the sender settles.
		p.ackMgr.ForceAck()
		c.trySend()
		c.resetTimer()
		return
	}
	for _, f := range pkt.Frames {
		c.handleFrame(p, f)
		if c.closed {
			return
		}
	}
	c.trySend()
	c.resetTimer()
}

func (c *Conn) handleFrame(p *Path, f wire.Frame) {
	switch fr := f.(type) {
	case *wire.HandshakeFrame:
		c.handleHandshakeFrame(p, fr)
	case *wire.AckFrame:
		c.handleAck(p, fr)
	case *wire.StreamFrame:
		c.handleStreamFrame(fr)
	case *wire.WindowUpdateFrame:
		c.handleWindowUpdate(fr)
	case *wire.AddAddressFrame:
		c.handleAddAddress(fr)
	case *wire.PathsFrame:
		c.handlePathsFrame(fr)
	case *wire.ConnectionCloseFrame:
		c.handleRemoteClose(fr)
	case *wire.PingFrame, *wire.PaddingFrame, *wire.BlockedFrame:
		// Ping elicits an ack via the retransmittable flag; padding
		// and blocked need no action.
	}
}

// handleAck routes the ACK to the acknowledged path's space (the ACK
// may arrive on any path; the Path ID field inside it names the space,
// §3).
func (c *Conn) handleAck(recvPath *Path, ack *wire.AckFrame) {
	target := recvPath
	if c.cfg.Multipath {
		tp, ok := c.paths[ack.PathID]
		if !ok {
			return
		}
		target = tp
	}
	res := target.space.OnAck(ack, c.now())
	srtt := target.est.SmoothedRTT()
	for _, sp := range res.NewlyAcked {
		target.cc.OnPacketAcked(sp.Size, srtt)
		target.AckedPackets++
		target.AckedBytes += uint64(sp.Size)
		c.trace(trace.Event{Type: trace.PacketAcked, Path: uint8(target.ID), PN: uint64(sp.PN), Size: sp.Size, SRTT: srtt})
		c.onFramesAcked(sp.Frames)
	}
	if len(res.NewlyAcked) > 0 {
		c.trace(trace.Event{Type: trace.CwndUpdated, Path: uint8(target.ID), Cwnd: target.cc.Cwnd(), SRTT: srtt})
	}
	if len(res.NewlyAcked) > 0 {
		target.lastAckProgress = c.now()
		if target.potentiallyFailed {
			// Data acknowledged on the path: it works again (§4.3).
			// Tell the peer, or it would shun the path forever.
			target.potentiallyFailed = false
			c.trace(trace.Event{Type: trace.PathRecovered, Path: uint8(target.ID)})
			if c.cfg.Multipath && c.cfg.PathsFrameOnFailure {
				c.queuePathsFrame()
			}
		}
	}
	if res.CongestionEvent {
		target.cc.OnCongestionEvent()
	}
	for _, sp := range res.Lost {
		c.Stats.PacketsLost++
		c.trace(trace.Event{Type: trace.PacketLost, Path: uint8(target.ID), PN: uint64(sp.PN), Size: sp.Size})
		c.requeueFrames(sp.Frames)
	}
}

func (c *Conn) onFramesAcked(frames []wire.Frame) {
	for _, f := range frames {
		switch fr := f.(type) {
		case *wire.StreamFrame:
			if s, ok := c.streams[fr.StreamID]; ok {
				s.send.OnFrameAcked(fr.Offset, fr.Len(), fr.Fin)
				if s.onAcked != nil && s.AllAcked() {
					s.onAcked()
				}
			}
		case *wire.HandshakeFrame:
			switch fr.Message {
			case wire.HandshakeCHLO:
				c.chloPending = false
			case wire.HandshakeSHLO:
				c.shloPending = false
			}
		}
	}
}

// requeueFrames returns lost frames' content to the send queues. Data
// is NOT pinned to the original path: the scheduler will route the
// retransmission wherever it fits (§3, Packet Scheduling).
func (c *Conn) requeueFrames(frames []wire.Frame) {
	for _, f := range frames {
		switch fr := f.(type) {
		case *wire.StreamFrame:
			if s, ok := c.streams[fr.StreamID]; ok {
				s.send.OnFrameLost(fr.Offset, fr.Len(), fr.Fin)
				c.Stats.Retransmissions++
			}
		case *wire.HandshakeFrame:
			switch fr.Message {
			case wire.HandshakeCHLO:
				if !c.handshakeComplete {
					c.chloPending = true
				}
			case wire.HandshakeCHLO0RTT:
				c.chloPending = true // the server still needs it
			case wire.HandshakeSHLO:
				c.shloPending = true
			}
		case *wire.WindowUpdateFrame, *wire.AddAddressFrame, *wire.PathsFrame:
			// Stale window updates are ignored by the peer, so
			// re-sending the same frame is safe and simple.
			c.ctrl = append(c.ctrl, f)
		}
	}
}

func (c *Conn) handleStreamFrame(f *wire.StreamFrame) {
	s, existed := c.streams[f.StreamID]
	if !existed {
		s = c.getOrCreateStream(f.StreamID)
		if c.onStreamOpen != nil {
			c.onStreamOpen(s)
		}
	}
	finBefore := s.recv.FinReceived()
	newBytes, err := s.recv.OnFrame(f)
	if err != nil {
		c.closeWithError(err)
		return
	}
	if newBytes > 0 {
		c.connRecvTotal += newBytes
		if !s.fc.OnReceive(f.Offset+uint64(f.Len())) || !c.connFC.OnReceive(c.connRecvTotal) {
			c.closeWithError(fmt.Errorf("core: flow control violated on stream %d", f.StreamID))
			return
		}
	}
	// Signal the application only on progress: fresh bytes or a newly
	// arrived FIN (duplicated packets must not re-fire callbacks).
	if s.onData != nil && (newBytes > 0 || (!finBefore && s.recv.FinReceived())) {
		s.onData()
	}
}

func (c *Conn) handleWindowUpdate(f *wire.WindowUpdateFrame) {
	grew := false
	if f.StreamID == 0 {
		grew = c.connFC.UpdateSendLimit(f.Offset)
	} else if s, ok := c.streams[f.StreamID]; ok {
		grew = s.fc.UpdateSendLimit(f.Offset)
	}
	if grew {
		c.trySend()
	}
}

func (c *Conn) handleAddAddress(f *wire.AddAddressFrame) {
	addr := netem.Addr(f.Address)
	idx := int(f.AddrIndex)
	for len(c.remoteAddrs) <= idx {
		c.remoteAddrs = append(c.remoteAddrs, "")
	}
	c.remoteAddrs[idx] = addr
	if c.role == RoleClient && c.cfg.Multipath && c.handshakeComplete {
		c.openAdditionalPaths()
		c.trySend()
	}
}

func (c *Conn) handlePathsFrame(f *wire.PathsFrame) {
	for _, info := range f.Paths {
		if p, ok := c.paths[info.PathID]; ok {
			p.remotePF = info.PotentiallyFailed
		}
	}
	if c.onPathsFrame != nil {
		c.onPathsFrame(f)
	}
}

func (c *Conn) handleRemoteClose(f *wire.ConnectionCloseFrame) {
	if c.closed {
		return
	}
	c.closed = true
	c.closeErr = fmt.Errorf("core: closed by peer: %d %s", f.ErrorCode, f.Reason)
	c.trace(trace.Event{Type: trace.ConnClosed, Detail: "by peer"})
	c.timer.Stop()
	if c.onClosed != nil {
		c.onClosed(c.closeErr)
	}
}

// Close terminates the connection, notifying the peer on every path.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	frame := &wire.ConnectionCloseFrame{ErrorCode: 0, Reason: "done"}
	for _, pid := range c.pathOrder {
		p := c.paths[pid]
		if p.open {
			c.sendPacketOn(p, []wire.Frame{frame}, false)
		}
	}
	c.closed = true
	c.timer.Stop()
	if c.onClosed != nil {
		c.onClosed(nil)
	}
}

func (c *Conn) closeWithError(err error) {
	if c.closed {
		return
	}
	c.closed = true
	c.closeErr = err
	c.trace(trace.Event{Type: trace.ConnClosed, Detail: err.Error()})
	c.timer.Stop()
	if c.onClosed != nil {
		c.onClosed(err)
	}
}

// Err returns the close reason, if any.
func (c *Conn) Err() error { return c.closeErr }

// --- timers ---

func (c *Conn) onTimer() {
	if c.closed {
		return
	}
	now := c.now()
	if c.cfg.IdleTimeout > 0 && now-c.lastRecvTime >= c.cfg.IdleTimeout {
		c.closeWithError(fmt.Errorf("core: idle timeout after %v", c.cfg.IdleTimeout))
		return
	}
	for _, pid := range c.pathOrder {
		p := c.paths[pid]
		if !p.open {
			continue
		}
		// Early-retransmit (time threshold) losses.
		if lt := p.space.LossTime(); lt != 0 && lt <= now {
			lost, event := p.space.OnLossTimer(now)
			if event {
				p.cc.OnCongestionEvent()
			}
			for _, sp := range lost {
				c.Stats.PacketsLost++
				c.requeueFrames(sp.Frames)
			}
		}
		// Retransmission timeout.
		if p.space.HasRetransmittableInFlight() {
			deadline := p.rtoBase() + p.est.RTO()
			if deadline <= now {
				c.onPathRTO(p)
			}
		} else if p.potentiallyFailed {
			// Probe a potentially-failed idle path with a PING at
			// RTO-backoff intervals: a successful ack clears PF (as
			// Linux MPTCP retests failed subflows). Without probes a
			// benched sender-side path could never recover.
			if now-p.lastRetransmittableSent >= p.est.RTO() {
				p.queueCtrl(&wire.PingFrame{})
			}
		}
	}
	c.trySend()
	c.resetTimer()
}

// onPathRTO handles a retransmission timeout on one path: all
// outstanding data is requeued (and will be rescheduled, possibly onto
// other paths), the window collapses, and in multipath mode the path
// enters the potentially-failed state of §4.3.
func (c *Conn) onPathRTO(p *Path) {
	lost := p.space.OnRTO(c.now())
	p.cc.OnRTO()
	c.Stats.RTOs++
	c.trace(trace.Event{Type: trace.RTOFired, Path: uint8(p.ID), Cwnd: p.cc.Cwnd()})
	for _, sp := range lost {
		c.Stats.PacketsLost++
		c.requeueFrames(sp.Frames)
	}
	if c.cfg.Multipath && len(c.pathOrder) > 1 {
		p.potentiallyFailed = true
		c.trace(trace.Event{Type: trace.PathFailed, Path: uint8(p.ID)})
		if c.cfg.PathsFrameOnFailure {
			c.queuePathsFrame()
		}
	}
}

// CorruptDrops reports how many ingress datagrams this connection
// dropped because they did not decode (see the corruptDrops field).
func (c *Conn) CorruptDrops() uint64 { return c.corruptDrops }

// FailPathsOn marks every open path bound to the given local address
// potentially failed — the local-failure entry into §4.3's PF state.
// onPathRTO covers the remote-loss signal (retransmission timeouts);
// this covers the signal only the socket layer can see: the local
// interface died (persistent read/write errors on the socket that
// owns the address). The scheduler then steers traffic to surviving
// paths and the PING probe machinery retests the path, exactly as
// after an RTO-driven PF entry. Single-path connections are left
// alone, mirroring onPathRTO's gating: with nowhere to steer, PF
// would only suppress the retransmissions that effect recovery.
//
// Returns the number of paths newly marked. Safe to call repeatedly;
// already-PF paths are skipped.
func (c *Conn) FailPathsOn(local netem.Addr) int {
	if c.closed || !c.cfg.Multipath || len(c.pathOrder) < 2 {
		return 0
	}
	n := 0
	for _, pid := range c.pathOrder {
		p := c.paths[pid]
		if p.Local != local || !p.open || p.potentiallyFailed {
			continue
		}
		p.potentiallyFailed = true
		n++
		c.trace(trace.Event{Type: trace.PathFailed, Path: uint8(p.ID), Detail: "local socket failure"})
	}
	if n > 0 {
		if c.cfg.PathsFrameOnFailure {
			c.queuePathsFrame()
		}
		c.trySend()
		c.resetTimer()
	}
	return n
}

// queuePathsFrame broadcasts the local view of all paths (IDs, PF
// flags, smoothed RTTs) on every non-PF path.
func (c *Conn) queuePathsFrame() {
	f := &wire.PathsFrame{}
	for _, pid := range c.pathOrder {
		p := c.paths[pid]
		f.Paths = append(f.Paths, wire.PathInfo{
			PathID:            p.ID,
			PotentiallyFailed: p.potentiallyFailed,
			SRTT:              p.est.SmoothedRTT(),
		})
	}
	for _, pid := range c.pathOrder {
		p := c.paths[pid]
		if p.open && !p.potentiallyFailed {
			p.queueCtrl(f)
		}
	}
}

// resetTimer re-arms the connection timer to the earliest deadline.
func (c *Conn) resetTimer() {
	if c.closed {
		return
	}
	deadline := time.Duration(1<<62 - 1)
	now := c.now()
	for _, pid := range c.pathOrder {
		p := c.paths[pid]
		if !p.open {
			continue
		}
		if lt := p.space.LossTime(); lt != 0 && lt < deadline {
			deadline = lt
		}
		if p.space.HasRetransmittableInFlight() {
			if d := p.rtoBase() + p.est.RTO(); d < deadline {
				deadline = d
			}
		} else if p.potentiallyFailed {
			if d := p.lastRetransmittableSent + p.est.RTO(); d < deadline {
				deadline = d
			}
		}
		if ad := p.ackMgr.AckDeadline(); ad != 0 && ad < deadline {
			deadline = ad
		}
	}
	if c.cfg.IdleTimeout > 0 {
		if d := c.lastRecvTime + c.cfg.IdleTimeout; d < deadline {
			deadline = d
		}
	}
	if deadline == time.Duration(1<<62-1) {
		c.timer.Stop()
		return
	}
	if deadline < now {
		deadline = now
	}
	c.timer.Reset(sim.Time(deadline))
}
