package expdesign

import (
	"math"
	"time"

	"mpquic/internal/apps"
	"mpquic/internal/core"
	"mpquic/internal/mptcpsim"
	"mpquic/internal/netem"
	"mpquic/internal/netem/dynamics"
	"mpquic/internal/sim"
	"mpquic/internal/tcpsim"
	"mpquic/internal/trace"
)

// Protocol identifies one of the four compared stacks.
type Protocol int

// The four protocols of the evaluation.
const (
	ProtoTCP Protocol = iota
	ProtoQUIC
	ProtoMPTCP
	ProtoMPQUIC
)

func (p Protocol) String() string {
	switch p {
	case ProtoTCP:
		return "TCP"
	case ProtoQUIC:
		return "QUIC"
	case ProtoMPTCP:
		return "MPTCP"
	default:
		return "MPQUIC"
	}
}

// Multipath reports whether the protocol uses both paths.
func (p Protocol) Multipath() bool { return p == ProtoMPTCP || p == ProtoMPQUIC }

// RunResult is the outcome of one simulation run.
type RunResult struct {
	Completed  bool          `json:"completed"`
	Elapsed    time.Duration `json:"elapsed"`
	GoodputBps float64       `json:"goodput_bps"` // achieved goodput (received bytes over elapsed)
	BytesRecvd uint64        `json:"bytes_recvd"`
	// Metrics carries the protocol internals of the (median) run.
	Metrics RunMetrics `json:"metrics"`
}

// PathMetrics is the end-of-run snapshot of one path (QUIC family),
// subflow (MPTCP) or flow (TCP). The grids run GET downloads, so the
// server is the data sender: the send-side fields (bytes/packets sent,
// retransmits, final cwnd, smoothed RTT) come from the server
// endpoint, while BytesRecvd is what the client actually received over
// that path — the per-path byte split of the download.
type PathMetrics struct {
	BytesSent   uint64        `json:"bytes_sent"`
	BytesRecvd  uint64        `json:"bytes_recvd"`
	PacketsSent uint64        `json:"packets_sent"`
	Retransmits uint64        `json:"retransmits"`
	FinalCwnd   int           `json:"final_cwnd"`
	SRTT        time.Duration `json:"srtt"`
}

// RunMetrics aggregates the protocol internals of one run: the
// counters the paper uses to explain its figures (handshake latency,
// loss/retransmission activity, per-path scheduling split). Durations
// serialize as integer nanoseconds (Go time.Duration).
type RunMetrics struct {
	// Handshake is the virtual time at which the client considered the
	// secure handshake complete and could start sending requests.
	Handshake time.Duration `json:"handshake"`
	// Sender-side (server) aggregates.
	PacketsSent     uint64 `json:"packets_sent"`
	PacketsLost     uint64 `json:"packets_lost"`
	Retransmissions uint64 `json:"retransmissions"`
	RTOs            uint64 `json:"rtos"`
	// Paths holds one entry per path/subflow in creation order.
	Paths []PathMetrics `json:"paths"`
	// Series holds the run's per-path time series (cwnd, smoothed RTT,
	// bytes in flight, cumulative bytes), recorded only when sampling
	// was requested (RunOpts.SampleInterval > 0). The omitempty keeps
	// artifacts of sampling-free grids byte-identical to earlier
	// versions (the golden grid tests pin this).
	Series []trace.PathSample `json:"series,omitempty"`
}

// quicMetrics snapshots a (MP)QUIC client/server pair.
func quicMetrics(client, server *core.Conn) RunMetrics {
	m := RunMetrics{Handshake: client.Stats.HandshakeCompleted}
	if server == nil {
		return m
	}
	m.PacketsSent = server.Stats.PacketsSent
	m.PacketsLost = server.Stats.PacketsLost
	m.Retransmissions = server.Stats.Retransmissions
	m.RTOs = server.Stats.RTOs
	for _, sp := range server.Paths() {
		pm := PathMetrics{
			BytesSent:   sp.SentBytes,
			PacketsSent: sp.SentPackets,
			FinalCwnd:   sp.CC().Cwnd(),
			SRTT:        sp.RTT().SmoothedRTT(),
		}
		if cp := client.PathByID(sp.ID); cp != nil {
			pm.BytesRecvd = cp.RecvBytes
		}
		m.Paths = append(m.Paths, pm)
	}
	return m
}

// tcpMetrics snapshots a TCP client/server pair.
func tcpMetrics(client, server *tcpsim.Conn) RunMetrics {
	m := RunMetrics{Handshake: client.Stats.EstablishedAt}
	if server == nil {
		return m
	}
	m.PacketsSent = server.Stats.SegmentsSent
	m.PacketsLost = server.Stats.SegmentsLost
	m.Retransmissions = server.Stats.Retransmits
	m.RTOs = server.Stats.RTOCount
	m.Paths = []PathMetrics{{
		BytesSent:   server.Stats.BytesSent,
		BytesRecvd:  client.BytesReceived(),
		PacketsSent: server.Stats.SegmentsSent,
		Retransmits: server.Stats.Retransmits,
		FinalCwnd:   server.Cwnd(),
		SRTT:        server.RTT().SmoothedRTT(),
	}}
	return m
}

// mptcpMetrics snapshots an MPTCP client/server pair, one PathMetrics
// entry per server subflow.
func mptcpMetrics(client, server *mptcpsim.Conn) RunMetrics {
	m := RunMetrics{Handshake: client.Stats.EstablishedAt}
	if server == nil {
		return m
	}
	m.RTOs = server.Stats.RTOs
	for _, sf := range server.Subflows() {
		m.PacketsSent += sf.SentSegments
		m.PacketsLost += sf.SegmentsLost
		m.Retransmissions += sf.Retransmits
		pm := PathMetrics{
			BytesSent:   sf.SentBytes,
			PacketsSent: sf.SentSegments,
			Retransmits: sf.Retransmits,
			FinalCwnd:   sf.Cwnd(),
			SRTT:        sf.RTT().SmoothedRTT(),
		}
		if csf := client.SubflowByID(sf.ID); csf != nil {
			pm.BytesRecvd = csf.BytesReceived()
		}
		m.Paths = append(m.Paths, pm)
	}
	return m
}

// effectiveRateBps estimates the rate a loss-limited reliable transfer
// can sustain on a path: the link capacity capped by the Mathis bound
// MSS/(RTT·√p) under random loss.
func effectiveRateBps(p netem.PathSpec) float64 {
	rate := p.CapacityMbps * 1e6
	if p.LossRate > 0 {
		rtt := p.RTT.Seconds() + p.QueueDelay.Seconds()/2
		if rtt < 0.01 {
			rtt = 0.01
		}
		mathis := 1378 * 8 / rtt / math.Sqrt(p.LossRate)
		if mathis < rate {
			rate = mathis
		}
	}
	return rate
}

// deadlineFor bounds a run: a generous multiple of the ideal transfer
// time at the effective rate the protocol can actually use (the start
// path for single-path protocols, the better path for multipath),
// floored for handshake-dominated short transfers.
func deadlineFor(sc Scenario, proto Protocol, size uint64, startPath int) time.Duration {
	rate := effectiveRateBps(sc.Paths[startPath])
	if proto.Multipath() {
		if other := effectiveRateBps(sc.Paths[1-startPath]); other > rate {
			rate = other
		}
	}
	ideal := time.Duration(float64(size) * 8 / rate * float64(time.Second))
	// A flaky path only carries traffic for part of each cycle; pad the
	// ideal time by the duty cycle so outages don't misclassify slow
	// but working runs as failures.
	if dyn := sc.Dynamics; dyn != nil && dyn.Kind == DynFlaky && dyn.Period > dyn.Outage {
		ideal = time.Duration(float64(ideal) * float64(dyn.Period) / float64(dyn.Period-dyn.Outage))
	}
	d := 30*ideal + 2*time.Minute
	if d > 6*time.Hour {
		d = 6 * time.Hour
	}
	return d
}

// orderedSpecs reorders the scenario's paths so the connection's
// initial path is index 0 (§4.1 varies the path used to start the
// connection).
func orderedSpecs(sc Scenario, startPath int) [2]netem.PathSpec {
	if startPath == 0 {
		return sc.Paths
	}
	return [2]netem.PathSpec{sc.Paths[1], sc.Paths[0]}
}

// applyDynamics installs the scenario's scripted behaviour on the
// freshly built topology. rng is the run's master PRNG, already past
// the topology's forks: loss-model PRNGs are forked from it in a fixed
// order, so a dynamic run is exactly as reproducible as a static one.
// Scenario path indices are remapped through the same reordering as
// orderedSpecs (startPath becomes topology path 0).
func applyDynamics(clock *sim.Clock, rng *sim.Rand, tp *netem.TwoPathNet, sc Scenario, startPath int) {
	d := sc.Dynamics
	if d == nil {
		return
	}
	topoIdx := func(p int) int {
		if startPath == 1 {
			return 1 - p
		}
		return p
	}
	switch d.Kind {
	case DynBursty:
		// Every lossy link trades its Bernoulli process for a
		// Gilbert–Elliott chain of the same average loss rate. Forks
		// happen in scenario-path order so the draw sequences do not
		// depend on the start path.
		for p := 0; p < 2; p++ {
			spec := sc.Paths[p]
			if spec.LossRate <= 0 {
				continue
			}
			for _, l := range tp.PathLinks(topoIdx(p)) {
				l.SetLossModel(dynamics.NewGilbertElliott(
					rng.Fork(), dynamics.GEFromAverage(spec.LossRate, d.MeanBurstPkts)))
			}
		}
	case DynOscillate:
		dynamics.OscillateRate(topoIdx(d.Path), sc.Paths[d.Path].CapacityMbps, d.Depth, d.Period).
			Apply(clock, tp)
	case DynFlaky:
		// First outage half a period in, so the handshake gets a
		// fighting chance and every cycle thereafter is identical.
		dynamics.Flap(topoIdx(d.Path), d.Period/2, d.Outage, d.Period).Apply(clock, tp)
	}
}

// RunOpts configures the optional observability of a run. The zero
// value disables everything, making RunWithOpts identical to Run.
//
// Determinism contract: every instrument here is a pure observer of
// the simulation — arming any of them never changes a run's schedule,
// timings or metrics. The only artifact-visible effect is the
// RunMetrics.Series field, which is omitted when sampling is off.
type RunOpts struct {
	// SampleInterval, when positive, snapshots the sender-side (server)
	// connection's per-path transport state at this simulated-time
	// cadence into RunResult.Metrics.Series. At a fixed cadence the
	// series is byte-reproducible across same-seed runs.
	SampleInterval time.Duration
	// Tracer, when non-nil, receives the run's protocol events from
	// both endpoints plus the emulator's link lifecycle events.
	Tracer trace.Tracer
	// FlightEvents, when positive, arms a bounded flight recorder of
	// this capacity over the same event stream. The ring is only ever
	// dumped through FlightDump — healthy runs pay no trace I/O.
	FlightEvents int
	// RTOStorm, when positive, classifies a run with at least this many
	// sender RTOs as anomalous ("rto_storm") even if it completed.
	RTOStorm uint64
	// FlightDump receives the armed flight recorder when the run ends
	// anomalously. rep is the repetition index (0 under RunWithOpts;
	// the actual index under RunMedianOpts); anomaly is one of
	// "timeout" (deadline passed), "sim_error" (the simulator aborted)
	// or "rto_storm" (RTOStorm threshold reached).
	FlightDump func(rep int, anomaly string, rec *trace.FlightRecorder)

	// rep is the repetition index reported to FlightDump; set by
	// RunMedianOpts.
	rep int
}

// Run executes one simulation: the given protocol downloading size
// bytes over the scenario, with the connection initiated on startPath,
// seeded with seed. Single-path protocols use startPath only.
func Run(sc Scenario, proto Protocol, size uint64, startPath int, seed uint64) RunResult {
	return RunWithOpts(sc, proto, size, startPath, seed, RunOpts{})
}

// RunWithOpts is Run with observability instruments attached (see
// RunOpts). With a zero opts it is exactly Run.
func RunWithOpts(sc Scenario, proto Protocol, size uint64, startPath int, seed uint64, opts RunOpts) RunResult {
	clock := sim.NewClock()
	clock.Limit = 400_000_000
	specs := orderedSpecs(sc, startPath)
	rng := sim.NewRand(seed)
	tp := netem.NewTwoPath(clock, rng, specs)
	applyDynamics(clock, rng, tp, sc, startPath)
	deadline := deadlineFor(sc, proto, size, startPath)

	// Arm the observers. The flight recorder rides the same tracer hook
	// as a caller-supplied tracer; both see protocol and link events.
	var fr *trace.FlightRecorder
	tracer := opts.Tracer
	if opts.FlightEvents > 0 {
		fr = trace.NewFlightRecorder(opts.FlightEvents)
		if tracer != nil {
			tracer = trace.Multi{tracer, fr}
		} else {
			tracer = fr
		}
	}
	if tracer != nil {
		tp.SetTracer(tracer)
	}

	var (
		done     *time.Duration
		received func() uint64
		collect  func() RunMetrics
		sample   func(rec *trace.SeriesRecorder)
	)
	now := func() time.Duration { return clock.Now().Duration() }

	switch proto {
	case ProtoQUIC, ProtoMPQUIC:
		cfg := core.DefaultSinglePathConfig()
		nPaths := 1
		if proto == ProtoMPQUIC {
			cfg = core.DefaultConfig()
			nPaths = 2
		}
		cfg.HandshakeSeed = seed
		cfg.Tracer = tracer
		lis := core.Listen(tp.Net, cfg, tp.ServerAddrs[:nPaths])
		apps.NewGetServer(lis)
		client := core.Dial(tp.Net, cfg, core.NewConnID(seed), tp.ClientAddrs[:nPaths], tp.ServerAddrs[:nPaths])
		apps.NewGetClient(client, size, now, func(r apps.GetResult) {
			el := r.Elapsed()
			done = &el
			clock.Stop()
		})
		received = func() uint64 {
			if s := client.StreamByID(core.FirstClientStream); s != nil {
				return s.BytesReceived()
			}
			return 0
		}
		collect = func() RunMetrics {
			var server *core.Conn
			if conns := lis.Conns(); len(conns) > 0 {
				server = conns[0]
			}
			return quicMetrics(client, server)
		}
		sample = func(rec *trace.SeriesRecorder) {
			if conns := lis.Conns(); len(conns) > 0 {
				conns[0].SampleInto(rec)
			}
		}
	case ProtoTCP:
		cfg := tcpsim.DefaultConfig()
		cfg.Tracer = tracer
		lis := tcpsim.ListenTCP(tp.Net, cfg, tp.ServerAddrs[0])
		tcpsim.ServeGet(lis, size)
		client := tcpsim.DialTCP(tp.Net, cfg, tp.ClientAddrs[0], tp.ServerAddrs[0])
		tcpsim.GetOverTCP(client, size, now, func(r tcpsim.GetResult) {
			el := r.Elapsed()
			done = &el
			clock.Stop()
		})
		received = client.BytesReceived
		collect = func() RunMetrics {
			var server *tcpsim.Conn
			if conns := lis.Conns(); len(conns) > 0 {
				server = conns[0]
			}
			return tcpMetrics(client, server)
		}
		sample = func(rec *trace.SeriesRecorder) {
			if conns := lis.Conns(); len(conns) > 0 {
				conns[0].SampleInto(rec)
			}
		}
	case ProtoMPTCP:
		cfg := mptcpsim.DefaultConfig()
		cfg.Tracer = tracer
		lis := mptcpsim.ListenMPTCP(tp.Net, cfg, tp.ServerAddrs[:])
		mptcpsim.ServeGet(lis, size)
		client := mptcpsim.DialMPTCP(tp.Net, cfg, uint32(seed)|1, tp.ClientAddrs[:], tp.ServerAddrs[:])
		mptcpsim.GetOverMPTCP(client, size, now, func(r mptcpsim.GetResult) {
			el := r.Elapsed()
			done = &el
			clock.Stop()
		})
		received = client.BytesReceived
		collect = func() RunMetrics {
			var server *mptcpsim.Conn
			if conns := lis.Conns(); len(conns) > 0 {
				server = conns[0]
			}
			return mptcpMetrics(client, server)
		}
		sample = func(rec *trace.SeriesRecorder) {
			if conns := lis.Conns(); len(conns) > 0 {
				conns[0].SampleInto(rec)
			}
		}
	}

	// The sampler is a recurring sim-clock timer polling the accepted
	// server connection (the data sender in the GET grids). It only
	// reads state, so the protocol schedule is untouched.
	var series *trace.SeriesRecorder
	if opts.SampleInterval > 0 {
		series = trace.NewSeriesRecorder()
		var st *sim.Timer
		st = sim.NewTimer(clock, func() {
			sample(series)
			st.ResetAfter(opts.SampleInterval)
		})
		st.ResetAfter(opts.SampleInterval)
	}

	err := clock.RunUntil(sim.Time(deadline))
	res := RunResult{}
	res.Metrics = collect()
	if series != nil {
		res.Metrics.Series = series.Samples
	}
	if done != nil && err == nil {
		res.Completed = true
		res.Elapsed = *done
		res.BytesRecvd = size
		res.GoodputBps = float64(size) * 8 / res.Elapsed.Seconds()
	} else {
		// Incomplete (or aborted) run: charge the deadline, credit what
		// arrived. A goodput of ~0 maps to the paper's EBen = −1 "failed
		// to transfer" notion.
		res.Elapsed = deadline
		res.BytesRecvd = received()
		res.GoodputBps = float64(res.BytesRecvd) * 8 / deadline.Seconds()
	}
	// Post-mortem: classify the run and hand the ring to the dumper.
	// Healthy runs drop the recorder without any I/O.
	if fr != nil && opts.FlightDump != nil {
		anomaly := ""
		switch {
		case err != nil:
			anomaly = "sim_error"
		case done == nil:
			anomaly = "timeout"
		case opts.RTOStorm > 0 && res.Metrics.RTOs >= opts.RTOStorm:
			anomaly = "rto_storm"
		}
		if anomaly != "" {
			opts.FlightDump(opts.rep, anomaly, fr)
		}
	}
	return res
}

// RunMPQUICVariant runs one MPQUIC download with a custom engine
// configuration — the hook the ablation benchmarks use to toggle the
// §3 design choices (scheduler kind, duplication, congestion-control
// coupling, WINDOW_UPDATE broadcast).
func RunMPQUICVariant(sc Scenario, cfg core.Config, size uint64, startPath int, seed uint64) RunResult {
	clock := sim.NewClock()
	clock.Limit = 400_000_000
	specs := orderedSpecs(sc, startPath)
	rng := sim.NewRand(seed)
	tp := netem.NewTwoPath(clock, rng, specs)
	applyDynamics(clock, rng, tp, sc, startPath)
	deadline := deadlineFor(sc, ProtoMPQUIC, size, startPath)
	cfg.HandshakeSeed = seed
	nPaths := 2
	if !cfg.Multipath {
		nPaths = 1
	}
	lis := core.Listen(tp.Net, cfg, tp.ServerAddrs[:nPaths])
	apps.NewGetServer(lis)
	client := core.Dial(tp.Net, cfg, core.NewConnID(seed), tp.ClientAddrs[:nPaths], tp.ServerAddrs[:nPaths])
	var done *time.Duration
	now := func() time.Duration { return clock.Now().Duration() }
	apps.NewGetClient(client, size, now, func(r apps.GetResult) {
		el := r.Elapsed()
		done = &el
		clock.Stop()
	})
	err := clock.RunUntil(sim.Time(deadline))
	res := RunResult{}
	var server *core.Conn
	if conns := lis.Conns(); len(conns) > 0 {
		server = conns[0]
	}
	res.Metrics = quicMetrics(client, server)
	if done != nil && err == nil {
		res.Completed = true
		res.Elapsed = *done
		res.BytesRecvd = size
		res.GoodputBps = float64(size) * 8 / res.Elapsed.Seconds()
		return res
	}
	res.Elapsed = deadline
	if s := client.StreamByID(core.FirstClientStream); s != nil {
		res.BytesRecvd = s.BytesReceived()
	}
	res.GoodputBps = float64(res.BytesRecvd) * 8 / deadline.Seconds()
	return res
}

// RunMedian runs reps seeded repetitions and returns the median-elapsed
// run (the paper analyzes the median of 3). Repetition i runs with
// seed baseSeed + i·7919: a prime stride larger than any combination
// of the per-coordinate strides in runSeed can bridge (see the seed
// derivation note in experiment.go), so repetitions never reuse
// another grid point's PRNG stream, and the same (point, rep) always
// replays the same seed regardless of the configured rep count.
func RunMedian(sc Scenario, proto Protocol, size uint64, startPath int, reps int, baseSeed uint64) RunResult {
	return RunMedianOpts(sc, proto, size, startPath, reps, baseSeed, RunOpts{})
}

// RunMedianOpts is RunMedian with observability instruments attached
// to every repetition (see RunOpts). FlightDump callbacks receive the
// actual repetition index; the returned (median) run carries its own
// repetition's Series.
func RunMedianOpts(sc Scenario, proto Protocol, size uint64, startPath int, reps int, baseSeed uint64, opts RunOpts) RunResult {
	if reps <= 0 {
		reps = 1
	}
	results := make([]RunResult, reps)
	for i := 0; i < reps; i++ {
		o := opts
		o.rep = i
		results[i] = RunWithOpts(sc, proto, size, startPath, baseSeed+uint64(i)*7919, o)
	}
	// Median by elapsed time.
	best := results[0]
	if reps > 1 {
		sorted := append([]RunResult(nil), results...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j].Elapsed < sorted[j-1].Elapsed; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		best = sorted[len(sorted)/2]
	}
	return best
}
