// Quickstart: download one file over Multipath QUIC on an emulated
// two-path network and print the transfer report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"mpquic"
)

func main() {
	// A WiFi-like path and an LTE-like path (the paper's §1
	// smartphone motivation).
	net := mpquic.NewTwoPathNetwork(mpquic.TwoPathConfig{
		Path0: mpquic.PathSpec{CapacityMbps: 20, RTT: 30 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
		Path1: mpquic.PathSpec{CapacityMbps: 10, RTT: 60 * time.Millisecond, QueueDelay: 80 * time.Millisecond},
		Seed:  1,
	})

	server := net.Listen(mpquic.DefaultConfig())
	net.ServeGet(server)

	client := net.Dial(mpquic.DefaultConfig(), 42)
	res, err := net.Download(client, 20<<20) // GET 20 MB
	if err != nil {
		fmt.Println("transfer did not complete:", err)
		return
	}

	fmt.Printf("downloaded %d MB in %v (%.2f Mbps)\n",
		res.Size>>20, res.Elapsed().Round(time.Millisecond), res.GoodputBps()/1e6)
	fmt.Printf("handshake completed after %v (1 RTT)\n",
		res.HandshakeDone.Round(time.Millisecond))
	for _, p := range client.Paths() {
		fmt.Printf("path %d: received %d packets (%.1f MB), srtt %v\n",
			p.ID, p.RecvPackets, float64(p.RecvBytes)/(1<<20),
			p.RTT().SmoothedRTT().Round(time.Millisecond))
	}
}
