#!/bin/sh
# bench.sh — the repository performance harness.
#
# Runs the internal/perf micro benchmarks (wire encode/decode, sim
# event loop, netem link transit) plus the smoke-grid macro benchmark,
# and writes the numbers to a BENCH_*.json trajectory file so every PR
# can compare its hot-path cost against the previous one. Full runs
# also measure live-mode loopback throughput (a two-process 10 MB
# two-path mpq-live transfer over real UDP sockets); the client's
# metrics land in the "live_loopback" block, or null when the
# environment denies UDP.
#
#   scripts/bench.sh            # full run, writes BENCH_PR7.json
#   scripts/bench.sh -smoke     # CI-sized sanity pass, no file output
#   scripts/bench.sh -o F.json  # full run, write to F.json
#
# The emitted JSON carries a "baseline" block: the same benchmarks
# measured at the commit before the PR 3 hot-path pass (8e0e2f0, struct
# allocation + container/heap + per-packet closures), so the deltas are
# readable without digging through git history.
set -eu

cd "$(dirname "$0")/.."

out=BENCH_PR7.json
mode=full
while [ $# -gt 0 ]; do
    case "$1" in
    -smoke) mode=smoke ;;
    -o) out=$2; shift ;;
    *) echo "usage: scripts/bench.sh [-smoke] [-o file.json]" >&2; exit 2 ;;
    esac
    shift
done

micro='^(BenchmarkPacketEncode|BenchmarkPacketDecode|BenchmarkClockScheduleRun|BenchmarkClockSameTimeFIFO|BenchmarkLinkTransit)$'
if [ "$mode" = smoke ]; then
    microtime=100x
    gridtime=1x
else
    microtime=2s
    gridtime=3x
fi

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== micro benchmarks (-benchtime=$microtime)"
go test ./internal/perf -run '^$' -bench "$micro" -benchmem -benchtime "$microtime" | tee -a "$tmp"

echo "== smoke grid (-benchtime=$gridtime)"
go test ./internal/perf -run '^$' -bench '^BenchmarkSmokeGrid$' -benchmem -benchtime "$gridtime" | tee -a "$tmp"

if [ "$mode" = full ]; then
    echo "== wire-mode transfer"
    go test ./internal/perf -run '^$' -bench '^BenchmarkWireModeTransfer$' -benchmem -benchtime 3x | tee -a "$tmp"
fi

if [ "$mode" = smoke ]; then
    echo "smoke bench ok"
    exit 0
fi

# Live loopback throughput: a real two-process 10 MB transfer over two
# loopback UDP paths (see scripts/live_smoke.sh for the gating smoke).
# The client's -json metrics are embedded verbatim; environments that
# deny UDP sockets record null instead of failing the bench run.
echo "== live loopback transfer (mpq-live, 10 MB, two paths)"
live_json=null
livedir=$(mktemp -d)
spid=
if go build -o "$livedir/mpq-live" ./cmd/mpq-live; then
    "$livedir/mpq-live" -server -once -idle 5s \
        -listen 127.0.0.1:47651,127.0.0.1:47652 >"$livedir/server.log" 2>&1 &
    spid=$!
    i=0
    while ! grep -q '^listening' "$livedir/server.log" && kill -0 "$spid" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && break
        sleep 0.1
    done
    if grep -q '^listening' "$livedir/server.log"; then
        if "$livedir/mpq-live" -connect 127.0.0.1:47651,127.0.0.1:47652 \
            -size 10000000 -timeout 60s -json >"$livedir/client.json"; then
            live_json=$(cat "$livedir/client.json")
            echo "   $live_json"
        fi
        wait "$spid" 2>/dev/null || true
        spid=
    else
        echo "   skipped: $(tail -1 "$livedir/server.log" 2>/dev/null || echo 'server did not start')"
    fi
fi
[ -n "$spid" ] && kill "$spid" 2>/dev/null || true
rm -rf "$livedir"

# Convert `go test -bench` lines into JSON records. Metric pairs are
# parsed generically: "124.6 ns/op" -> "ns_per_op": 124.6.
results=$(awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    printf "%s    {\"name\": \"%s\", \"iterations\": %s", sep, name, $2
    for (i = 3; i < NF; i += 2) {
        key = $(i + 1)
        gsub(/\//, "_per_", key)
        gsub(/[^A-Za-z0-9_]/, "", key)
        printf ", \"%s\": %s", key, $i
    }
    printf "}"
    sep = ",\n"
}' "$tmp")

{
    printf '{\n'
    printf '  "go": "%s",\n' "$(go version | awk '{print $3}')"
    printf '  "benchtime": {"micro": "%s", "grid": "%s"},\n' "$microtime" "$gridtime"
    cat <<'EOF'
  "baseline": {
    "commit": "8e0e2f0",
    "note": "pre-PR3 hot path: per-event heap allocation via container/heap, per-packet encode/decode buffer copies, two closures per link transit",
    "results": [
      {"name": "PacketEncode", "ns_per_op": 290.8, "B_per_op": 1408, "allocs_per_op": 1},
      {"name": "PacketDecode", "ns_per_op": 706.9, "B_per_op": 1824, "allocs_per_op": 11},
      {"name": "ClockScheduleRun", "ns_per_op": 100480, "B_per_op": 24576, "allocs_per_op": 512},
      {"name": "ClockSameTimeFIFO", "ns_per_op": 89893, "B_per_op": 24576, "allocs_per_op": 512},
      {"name": "LinkTransit", "ns_per_op": 133168, "B_per_op": 65536, "allocs_per_op": 1024},
      {"name": "SmokeGrid", "ns_per_op": 865835080, "scenarios_per_sec": 6.93, "B_per_op": 399059520, "allocs_per_op": 5633206},
      {"name": "WireModeTransfer", "ns_per_op": 616510091, "B_per_op": 2528787360, "allocs_per_op": 187156}
    ]
  },
EOF
    printf '  "live_loopback": %s,\n' "$live_json"
    printf '  "results": [\n'
    printf '%s\n' "$results"
    printf '  ]\n'
    printf '}\n'
} > "$out"

echo "wrote $out"
