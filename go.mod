module mpquic

go 1.22
