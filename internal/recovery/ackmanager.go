package recovery

import (
	"time"

	"mpquic/internal/stream"
	"mpquic/internal/wire"
)

// Ack policy constants (quic-go era).
const (
	// AckEveryN retransmittable packets triggers an immediate ACK.
	AckEveryN = 2
	// MaxAckDelay bounds how long an ACK for a retransmittable packet
	// may be withheld.
	MaxAckDelay = 25 * time.Millisecond
)

// AckManager tracks the receive half of one packet-number space and
// builds ACK frames with up to wire.MaxAckRanges ranges — the rich loss
// signal that lets (MP)QUIC recover so much better than TCP's 2-3 SACK
// blocks (§4.1, low-BDP-losses).
type AckManager struct {
	pathID wire.PathID

	received        stream.IntervalSet // PNs as [pn, pn+1) intervals
	largestReceived wire.PacketNumber
	largestRecvTime time.Duration
	hasReceived     bool

	// Pending-ack state.
	unackedRetransmittable int
	ackQueued              bool
	ackDeadline            time.Duration // 0 = none
}

// NewAckManager builds an ack manager for the given path's space.
func NewAckManager(pathID wire.PathID) *AckManager {
	return &AckManager{pathID: pathID}
}

// LargestReceived returns the largest PN seen (for header PN decoding);
// ok is false before any packet arrives.
func (a *AckManager) LargestReceived() (wire.PacketNumber, bool) {
	return a.largestReceived, a.hasReceived
}

// IsDuplicate reports whether pn was already received.
func (a *AckManager) IsDuplicate(pn wire.PacketNumber) bool {
	return a.received.Contains(uint64(pn), uint64(pn)+1)
}

// OnPacketReceived records an incoming packet and updates ack policy
// state. It reports whether the packet is new (not a duplicate).
func (a *AckManager) OnPacketReceived(pn wire.PacketNumber, retransmittable bool, now time.Duration) bool {
	if a.IsDuplicate(pn) {
		return false
	}
	a.received.Add(uint64(pn), uint64(pn)+1)
	if !a.hasReceived || pn > a.largestReceived {
		a.largestReceived = pn
		a.largestRecvTime = now
		a.hasReceived = true
	}
	if retransmittable {
		a.unackedRetransmittable++
		if a.unackedRetransmittable >= AckEveryN {
			a.ackQueued = true
		} else if a.ackDeadline == 0 {
			a.ackDeadline = now + MaxAckDelay
		}
		// Out-of-order arrival signals loss upstream: ack immediately
		// so the sender's fast retransmit can kick in.
		if pn != a.largestReceived || len(a.received.Intervals()) > 1 {
			a.ackQueued = true
		}
	}
	return true
}

// ForceAck queues an immediate acknowledgment (used for handshake
// packets, which real QUIC stacks ack without delay).
func (a *AckManager) ForceAck() {
	if a.hasReceived {
		a.ackQueued = true
	}
}

// ShouldSendAck reports whether an ACK should go out now.
func (a *AckManager) ShouldSendAck(now time.Duration) bool {
	if a.ackQueued {
		return true
	}
	return a.ackDeadline != 0 && now >= a.ackDeadline
}

// AckDeadline returns the pending delayed-ack deadline (0 = none).
func (a *AckManager) AckDeadline() time.Duration {
	if a.ackQueued {
		return 0
	}
	return a.ackDeadline
}

// HasACKablePackets reports whether anything was ever received.
func (a *AckManager) HasACKablePackets() bool { return a.hasReceived }

// BuildAck constructs the ACK frame and resets ack policy state. It
// returns nil when nothing has been received yet.
func (a *AckManager) BuildAck(now time.Duration) *wire.AckFrame {
	if !a.hasReceived {
		return nil
	}
	ivs := a.received.Intervals()
	// Convert ascending [start,end) intervals to descending closed
	// AckRanges, keeping only the newest MaxAckRanges.
	n := len(ivs)
	keep := n
	if keep > wire.MaxAckRanges {
		keep = wire.MaxAckRanges
	}
	ranges := make([]wire.AckRange, 0, keep)
	for i := n - 1; i >= n-keep; i-- {
		ranges = append(ranges, wire.AckRange{
			Smallest: wire.PacketNumber(ivs[i].Start),
			Largest:  wire.PacketNumber(ivs[i].End - 1),
		})
	}
	delay := now - a.largestRecvTime
	if delay < 0 {
		delay = 0
	}
	a.ackQueued = false
	a.ackDeadline = 0
	a.unackedRetransmittable = 0
	return &wire.AckFrame{PathID: a.pathID, Ranges: ranges, AckDelay: delay}
}
