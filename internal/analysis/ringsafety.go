package analysis

import (
	"go/ast"
	"go/types"
)

// RingSafety generalizes poolsafety to driver-owned buffer rings: a
// channel annotated `//mpq:ring` is a free-list whose element buffers
// cycle get → fill → hand off/consume → recycle, exactly once per
// trip. Within each function the analyzer tracks buffers drawn from a
// ring (a direct `<-ring` receive, a call to a get-style helper that
// returns one, or a reslice of a tracked buffer) and flags:
//
//   - any use after the buffer was recycled — a send back to the ring
//     or a call to a put-style helper ("use-after-recycle"); a second
//     recycle is itself a use, so double-puts are caught too
//     (`defer` recycles run last and are exempt);
//   - escapes that outlive the iteration: stores into struct fields,
//     maps, slices or globals, and capture by deferred, go-launched or
//     sim-scheduled closures.
//
// Returning a tracked buffer is sanctioned (the caller becomes the
// owner — that is what a get-helper does), as is sending it over a
// channel (ownership transfers with the message, the reader→driver
// hand-off pattern). Get/put helpers are derived, not annotated: a
// function that sends a parameter to a ring is a put helper for that
// parameter; one that returns a value received from a ring is a get
// helper. Like poolsafety, the check is flow-insensitive: any
// syntactic use positioned after a non-deferred recycle is flagged.
var RingSafety = &Analyzer{
	Name: "ringsafety",
	Doc: "forbid use-after-recycle, double recycle and iteration-escaping " +
		"aliases of //mpq:ring buffer-ring elements",
	Run: runRingSafety,
}

// ringHelpers records the derived get/put helper functions of one
// package.
type ringHelpers struct {
	// putParam maps a put-style helper to the index of the parameter it
	// recycles.
	putParam map[*types.Func]int
	// getters holds helpers that return a ring buffer.
	getters map[*types.Func]bool
}

func runRingSafety(pass *Pass) (any, error) {
	ann := collectAnnotations(pass)
	if len(ann.ring) == 0 {
		return nil, nil
	}
	helpers := deriveRingHelpers(pass, ann)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		funcBodies(f, func(fn ast.Node, body *ast.BlockStmt) {
			checkRingBody(pass, ann, helpers, fn, body)
		})
	}
	return nil, nil
}

// isRingChan reports whether e denotes an //mpq:ring channel (a field
// selector or identifier resolving to an annotated object).
func isRingChan(info *types.Info, ann *annotations, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return ann.ring[info.Uses[e.Sel]]
	case *ast.Ident:
		return ann.ring[info.Uses[e]]
	}
	return false
}

// deriveRingHelpers scans every declared function for the get/put
// idioms around annotated rings.
func deriveRingHelpers(pass *Pass, ann *annotations) *ringHelpers {
	h := &ringHelpers{putParam: make(map[*types.Func]int), getters: make(map[*types.Func]bool)}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			params := make(map[types.Object]int)
			if fd.Type.Params != nil {
				i := 0
				for _, field := range fd.Type.Params.List {
					for _, name := range field.Names {
						params[info.Defs[name]] = i
						i++
					}
				}
			}
			// Objects received from a ring inside this function.
			received := make(map[types.Object]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SendStmt:
					if isRingChan(info, ann, n.Chan) {
						if vo := baseIdentObj(info, n.Value); vo != nil {
							if idx, isParam := params[vo]; isParam {
								h.putParam[obj] = idx
							}
						}
					}
				case *ast.AssignStmt:
					for i, rhs := range n.Rhs {
						if ue, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && ue.Op.String() == "<-" &&
							isRingChan(info, ann, ue.X) && i < len(n.Lhs) {
							if o := identObj(info, n.Lhs[i]); o != nil {
								received[o] = true
							}
						}
					}
				case *ast.ReturnStmt:
					for _, res := range n.Results {
						if ue, ok := ast.Unparen(res).(*ast.UnaryExpr); ok && ue.Op.String() == "<-" &&
							isRingChan(info, ann, ue.X) {
							h.getters[obj] = true
						}
						if o := baseIdentObj(info, res); o != nil && received[o] {
							h.getters[obj] = true
						}
					}
				}
				return true
			})
		}
	}
	return h
}

// baseIdentObj resolves e to the object of its base identifier,
// looking through parens and slice expressions (b, b[:n] → b).
func baseIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			return identObj(info, x)
		default:
			return nil
		}
	}
}

// checkRingBody tracks ring buffers through one function body and
// applies the lifecycle rules.
func checkRingBody(pass *Pass, ann *annotations, helpers *ringHelpers, fn ast.Node, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// calleeFunc resolves a call to a same-package declared function.
	calleeFunc := func(call *ast.CallExpr) *types.Func {
		var id *ast.Ident
		switch e := call.Fun.(type) {
		case *ast.Ident:
			id = e
		case *ast.SelectorExpr:
			id = e.Sel
		default:
			return nil
		}
		f, _ := info.Uses[id].(*types.Func)
		return f
	}

	// Pass A: collect tracked ring buffers (iterate to a fixpoint so
	// reslice chains propagate). tracked maps each variable holding a
	// ring buffer to the canonical object the buffer entered through —
	// `view := b[:16]` puts view and b in one alias group, so recycling
	// either kills both.
	tracked := make(map[types.Object]types.Object)
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
				return false
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) {
					break
				}
				lo := identObj(info, as.Lhs[i])
				if lo == nil || tracked[lo] != nil {
					continue
				}
				root := types.Object(nil)
				if ue, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && ue.Op.String() == "<-" && isRingChan(info, ann, ue.X) {
					root = lo
				}
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					if f := calleeFunc(call); f != nil && helpers.getters[f] {
						root = lo
					}
				}
				if o := baseIdentObj(info, rhs); o != nil && tracked[o] != nil {
					root = tracked[o] // alias via b2 := b or b2 := b[:n]
				}
				if root != nil {
					tracked[lo] = root
					changed = true
				}
			}
			return true
		})
	}
	// canon resolves a variable to its alias group's root (itself when
	// untracked, so recycles of plain parameters still register).
	canon := func(o types.Object) types.Object {
		if c := tracked[o]; c != nil {
			return c
		}
		return o
	}

	// Pass B: collect recycle points (non-deferred ring sends and put
	// calls) of any identifier.
	type recycle struct {
		obj types.Object
		end ast.Node
	}
	var recycles []recycle
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			return false // a deferred recycle runs last; later uses are fine
		case *ast.FuncLit:
			if n.Body != body {
				return false
			}
		case *ast.SendStmt:
			if isRingChan(info, ann, n.Chan) {
				if o := baseIdentObj(info, n.Value); o != nil {
					recycles = append(recycles, recycle{canon(o), n})
				}
			}
		case *ast.CallExpr:
			if f := calleeFunc(n); f != nil {
				if idx, ok := helpers.putParam[f]; ok && idx < len(n.Args) {
					if o := baseIdentObj(info, n.Args[idx]); o != nil {
						recycles = append(recycles, recycle{canon(o), n})
					}
				}
			}
		}
		return true
	})

	// Rule 1: no use after recycle (a second recycle is a use too), for
	// the recycled variable and every alias in its group.
	if len(recycles) > 0 {
		ast.Inspect(body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj == nil {
				return true
			}
			for _, r := range recycles {
				if canon(obj) == r.obj && id.Pos() > r.end.End() {
					pass.Reportf(id.Pos(),
						"%s is used after it was recycled to the buffer ring; the ring may already have "+
							"handed it to another packet", id.Name)
					return true
				}
			}
			return true
		})
	}

	// Rule 2: tracked buffers must not outlive the iteration.
	if len(tracked) == 0 {
		return
	}
	trackedSet := make(map[types.Object]bool, len(tracked))
	for o := range tracked {
		trackedSet[o] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n.Body != body {
				return false
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if !isEscapingLValue(info, lhs) {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				if obj := capturedBorrow(info, rhs, trackedSet); obj != nil {
					pass.Reportf(rhs.Pos(),
						"storing %s in a field/map/global lets a ring buffer escape the ingress iteration", obj.Name())
				}
			}
		case *ast.DeferStmt:
			reportRingCapture(pass, n.Call, trackedSet, "a deferred closure")
		case *ast.GoStmt:
			reportRingCapture(pass, n.Call, trackedSet, "a goroutine")
		case *ast.CallExpr:
			if methodOn(info, n, simPkgPath, "Clock", "At", "After") ||
				methodOn(info, n, simPkgPath, "Timer", "Reset", "ResetAfter") {
				reportRingCapture(pass, n, trackedSet, "a scheduled closure")
			}
		}
		return true
	})
}

// reportRingCapture flags function-literal arguments capturing a
// tracked ring buffer.
func reportRingCapture(pass *Pass, call *ast.CallExpr, tracked map[types.Object]bool, what string) {
	exprs := append([]ast.Expr{call.Fun}, call.Args...)
	for _, arg := range exprs {
		lit, ok := ast.Unparen(arg).(*ast.FuncLit)
		if !ok {
			continue
		}
		if obj := capturedBorrow(pass.TypesInfo, lit.Body, tracked); obj != nil {
			pass.Reportf(lit.Pos(),
				"%s captures ring buffer %s beyond the ingress iteration", what, obj.Name())
		}
	}
}
