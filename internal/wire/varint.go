// Package wire implements the (Multipath) QUIC wire format used by this
// reproduction: variable-length integers, the public packet header with
// the multipath Path ID of §3 of the paper, and every frame the design
// needs — STREAM, ACK (with up to 256 ranges and a Path ID), stream- and
// connection-level WINDOW_UPDATE, and the new multipath frames
// ADD_ADDRESS and PATHS.
//
// Every type knows its exact encoded size, so the emulator can account
// on-wire bytes without serializing in the hot path; integration tests
// serialize and re-parse every packet to prove the accounting honest.
package wire

import (
	"errors"
	"fmt"
)

// Varint bounds, matching QUIC's 2-bit length prefix scheme.
const (
	maxVarint1 = 63
	maxVarint2 = 16383
	maxVarint4 = 1073741823
	maxVarint8 = 4611686018427387903
)

// MaxVarint is the largest value a QUIC varint can carry.
const MaxVarint = uint64(maxVarint8)

var errVarintRange = errors.New("wire: value exceeds varint range")

// maxDurationUS is the largest microsecond count representable as a
// time.Duration. Varints can carry up to 2^62-1, so decoders of
// microsecond fields must reject anything above this bound or the
// duration silently overflows (and can no longer be re-encoded).
const maxDurationUS = uint64(1<<63-1) / 1000

var errDurationRange = errors.New("wire: microsecond value overflows time.Duration")

// ErrTruncated reports a buffer that ended inside a field.
var ErrTruncated = errors.New("wire: truncated input")

// VarintLen returns the number of bytes AppendVarint will use for v.
func VarintLen(v uint64) int {
	switch {
	case v <= maxVarint1:
		return 1
	case v <= maxVarint2:
		return 2
	case v <= maxVarint4:
		return 4
	case v <= maxVarint8:
		return 8
	default:
		panic(errVarintRange)
	}
}

// AppendVarint appends the QUIC varint encoding of v to b.
func AppendVarint(b []byte, v uint64) []byte {
	switch {
	case v <= maxVarint1:
		return append(b, byte(v))
	case v <= maxVarint2:
		return append(b, byte(v>>8)|0x40, byte(v))
	case v <= maxVarint4:
		return append(b, byte(v>>24)|0x80, byte(v>>16), byte(v>>8), byte(v))
	case v <= maxVarint8:
		return append(b, byte(v>>56)|0xc0, byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	default:
		panic(errVarintRange)
	}
}

// ConsumeVarint parses a varint from the front of b, returning the
// value and the number of bytes consumed.
func ConsumeVarint(b []byte) (uint64, int, error) {
	if len(b) == 0 {
		return 0, 0, ErrTruncated
	}
	length := 1 << (b[0] >> 6)
	if len(b) < length {
		return 0, 0, ErrTruncated
	}
	v := uint64(b[0] & 0x3f)
	for i := 1; i < length; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v, length, nil
}

func appendUint16(b []byte, v uint16) []byte {
	return append(b, byte(v>>8), byte(v))
}

func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendUint64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func consumeUint16(b []byte) (uint16, int, error) {
	if len(b) < 2 {
		return 0, 0, ErrTruncated
	}
	return uint16(b[0])<<8 | uint16(b[1]), 2, nil
}

func consumeUint32(b []byte) (uint32, int, error) {
	if len(b) < 4 {
		return 0, 0, ErrTruncated
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), 4, nil
}

func consumeUint64(b []byte) (uint64, int, error) {
	if len(b) < 8 {
		return 0, 0, ErrTruncated
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v, 8, nil
}

func consumeBytes(b []byte, n int) ([]byte, int, error) {
	if n < 0 || len(b) < n {
		return nil, 0, ErrTruncated
	}
	return b[:n], n, nil
}

func frameErr(kind string, err error) error {
	return fmt.Errorf("wire: decoding %s frame: %w", kind, err)
}
