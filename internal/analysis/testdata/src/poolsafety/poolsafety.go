// Package poolsafety exercises the poolsafety analyzer: pooled
// buffers must not be touched after PutPacketBuf, and DecodeBorrowed
// results must not escape the enclosing handler.
package poolsafety

import (
	"time"

	"mpquic/internal/sim"
	"mpquic/internal/wire"
)

func useAfterPut() byte {
	buf := wire.GetPacketBuf()
	buf = append(buf, 1)
	wire.PutPacketBuf(buf)
	return buf[0] // want `buf is used after wire\.PutPacketBuf`
}

func putThenReencode(p *wire.Packet) {
	buf := wire.GetPacketBuf()
	wire.PutPacketBuf(buf)
	_ = p.EncodeTo(buf, nil) // want `buf is used after wire\.PutPacketBuf`
}

// deferredPut is the sanctioned pattern: the Put runs on function
// exit, after every use.
func deferredPut(p *wire.Packet) int {
	buf := wire.GetPacketBuf()
	defer wire.PutPacketBuf(buf)
	buf = p.EncodeTo(buf, nil)
	return len(buf)
}

var lastPkt *wire.Packet

type holder struct{ pkt *wire.Packet }

func borrowReturn(b []byte) *wire.Packet {
	pkt, err := wire.DecodeBorrowed(b, wire.InvalidPacketNumber, nil)
	if err != nil {
		return nil
	}
	return pkt // want `returning pkt lets a DecodeBorrowed alias outlive the handler`
}

func borrowStoreField(h *holder, b []byte) {
	pkt, _ := wire.DecodeBorrowed(b, wire.InvalidPacketNumber, nil)
	h.pkt = pkt // want `storing pkt in a field/map/global`
}

func borrowStoreGlobal(b []byte) {
	pkt, _ := wire.DecodeBorrowed(b, wire.InvalidPacketNumber, nil)
	lastPkt = pkt // want `storing pkt in a field/map/global`
}

func borrowStoreMap(m map[int]*wire.Packet, b []byte) {
	pkt, _ := wire.DecodeBorrowed(b, wire.InvalidPacketNumber, nil)
	m[0] = pkt // want `storing pkt in a field/map/global`
}

func borrowScheduled(c *sim.Clock, b []byte) {
	pkt, _ := wire.DecodeBorrowed(b, wire.InvalidPacketNumber, nil)
	c.After(time.Millisecond, func() { // want `a scheduled closure captures pkt`
		_ = pkt.Frames
	})
}

func borrowDeferred(b []byte) {
	pkt, _ := wire.DecodeBorrowed(b, wire.InvalidPacketNumber, nil)
	defer func() { // want `a deferred closure captures pkt`
		_ = pkt.Frames
	}()
}

// borrowSynchronous is the sanctioned pattern: the packet is fully
// consumed before the handler returns, and only scalars escape.
func borrowSynchronous(b []byte) int {
	pkt, err := wire.DecodeBorrowed(b, wire.InvalidPacketNumber, nil)
	if err != nil {
		return 0
	}
	return len(pkt.Frames)
}

// allowed demonstrates an audited suppression.
func allowed(b []byte) *wire.Packet {
	pkt, _ := wire.DecodeBorrowed(b, wire.InvalidPacketNumber, nil)
	//mpqvet:allow poolsafety exemplar suppression for the analyzer tests
	return pkt
}
