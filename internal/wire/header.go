package wire

import "fmt"

// ConnectionID identifies a QUIC connection (8 bytes on the wire).
type ConnectionID uint64

// PathID identifies one path of a multipath connection. Path 0 is the
// initial path. Client-created paths are odd, server-created paths are
// even (§3, Path Management).
type PathID uint8

// PacketNumber is a per-path monotonically increasing packet number.
type PacketNumber uint64

// InvalidPacketNumber marks "no packet".
const InvalidPacketNumber = PacketNumber(1<<62 - 1)

// Header flag bits (public header, cleartext).
const (
	flagPNLenMask  = 0x03 // 0:1 byte, 1:2 bytes, 2:4 bytes
	flagMultipath  = 0x04 // Path ID byte follows the connection ID
	flagHandshake  = 0x08 // packet carries handshake (cleartext) frames
	flagReservedOK = 0x0f
)

// Header is the MPQUIC public header. Everything in it travels in
// cleartext; the Path ID is deliberately exposed so multipath-aware
// middleboxes do not mistake per-path packet-number sequences for
// reordering attacks (§3, Path Identification).
type Header struct {
	ConnID       ConnectionID
	Multipath    bool
	Handshake    bool
	PathID       PathID
	PacketNumber PacketNumber
	// PNLen is the encoded packet-number length (1, 2 or 4). Zero means
	// "choose automatically from LargestAcked when encoding".
	PNLen int
}

// PNLenFor picks the smallest safe truncated encoding for pn given the
// largest packet number the peer has acknowledged on the same path.
func PNLenFor(pn, largestAcked PacketNumber) int {
	var delta uint64
	if largestAcked == InvalidPacketNumber {
		delta = uint64(pn) + 1
	} else {
		delta = uint64(pn - largestAcked)
	}
	// The receiver can disambiguate within a window of 2^(8*len-1).
	switch {
	case delta < 1<<7:
		return 1
	case delta < 1<<15:
		return 2
	default:
		return 4
	}
}

// DecodePacketNumber expands a truncated packet number using the
// largest packet number received so far on the path.
func DecodePacketNumber(truncated uint64, pnLen int, largest PacketNumber) PacketNumber {
	bits := uint(8 * pnLen)
	win := uint64(1) << bits
	hwin := win / 2
	mask := win - 1
	var expected uint64
	if largest != InvalidPacketNumber {
		expected = uint64(largest) + 1
	}
	candidate := (expected &^ mask) | truncated
	if candidate+hwin <= expected && candidate+win < (1<<62) {
		return PacketNumber(candidate + win)
	}
	if candidate > expected+hwin && candidate >= win {
		return PacketNumber(candidate - win)
	}
	return PacketNumber(candidate)
}

// EncodedSize returns the exact on-wire size of the header, resolving
// PNLen via largestAcked when it is zero.
func (h *Header) EncodedSize(largestAcked PacketNumber) int {
	n := 1 + 8 // flags + connection ID
	if h.Multipath {
		n++
	}
	pnLen := h.PNLen
	if pnLen == 0 {
		pnLen = PNLenFor(h.PacketNumber, largestAcked)
	}
	return n + pnLen
}

// Append encodes the header. largestAcked resolves automatic PN-length
// selection.
func (h *Header) Append(b []byte, largestAcked PacketNumber) []byte {
	pnLen := h.PNLen
	if pnLen == 0 {
		pnLen = PNLenFor(h.PacketNumber, largestAcked)
	}
	var flags byte
	switch pnLen {
	case 1:
		flags = 0
	case 2:
		flags = 1
	case 4:
		flags = 2
	default:
		panic(fmt.Sprintf("wire: bad packet number length %d", pnLen))
	}
	if h.Multipath {
		flags |= flagMultipath
	}
	if h.Handshake {
		flags |= flagHandshake
	}
	b = append(b, flags)
	b = appendUint64(b, uint64(h.ConnID))
	if h.Multipath {
		b = append(b, byte(h.PathID))
	}
	switch pnLen {
	case 1:
		b = append(b, byte(h.PacketNumber))
	case 2:
		b = appendUint16(b, uint16(h.PacketNumber))
	case 4:
		b = appendUint32(b, uint32(h.PacketNumber))
	}
	return b
}

// ParseHeader decodes a header. largestReceived is the largest packet
// number seen so far on the (connection, path) the packet claims,
// needed to expand the truncated packet number; pass
// InvalidPacketNumber for a fresh path.
func ParseHeader(b []byte, largestReceived PacketNumber) (Header, int, error) {
	if len(b) < 1 {
		return Header{}, 0, ErrTruncated
	}
	flags := b[0]
	if flags&^flagReservedOK != 0 {
		return Header{}, 0, fmt.Errorf("wire: reserved header flag bits set: %#x", flags)
	}
	var h Header
	h.Multipath = flags&flagMultipath != 0
	h.Handshake = flags&flagHandshake != 0
	off := 1
	cid, n, err := consumeUint64(b[off:])
	if err != nil {
		return Header{}, 0, err
	}
	off += n
	h.ConnID = ConnectionID(cid)
	if h.Multipath {
		if len(b) <= off {
			return Header{}, 0, ErrTruncated
		}
		h.PathID = PathID(b[off])
		off++
	}
	pnLen := 1 << (flags & flagPNLenMask)
	if pnLen == 8 {
		return Header{}, 0, fmt.Errorf("wire: invalid packet number length code 3")
	}
	var trunc uint64
	switch pnLen {
	case 1:
		if len(b) <= off {
			return Header{}, 0, ErrTruncated
		}
		trunc = uint64(b[off])
	case 2:
		v, _, err := consumeUint16(b[off:])
		if err != nil {
			return Header{}, 0, err
		}
		trunc = uint64(v)
	case 4:
		v, _, err := consumeUint32(b[off:])
		if err != nil {
			return Header{}, 0, err
		}
		trunc = uint64(v)
	}
	off += pnLen
	h.PNLen = pnLen
	h.PacketNumber = DecodePacketNumber(trunc, pnLen, largestReceived)
	return h, off, nil
}
