package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// sampleEvents is one representative event per EventType, in a
// plausible order.
func sampleEvents() []Event {
	return []Event{
		{Time: 0, Type: PathOpened, Path: 0, Detail: "c0->s0"},
		{Time: 1 * time.Millisecond, Type: PacketSent, Path: 0, PN: 1, Size: 1350},
		{Time: 16 * time.Millisecond, Type: PacketReceived, Path: 0, PN: 1, Size: 1350},
		{Time: 17 * time.Millisecond, Type: HandshakeDone},
		{Time: 18 * time.Millisecond, Type: PathOpened, Path: 1, Detail: "c1->s1"},
		{Time: 31 * time.Millisecond, Type: PacketAcked, Path: 0, PN: 1, Size: 1350, SRTT: 30 * time.Millisecond},
		{Time: 31 * time.Millisecond, Type: CwndUpdated, Path: 0, Cwnd: 15000, SRTT: 30 * time.Millisecond},
		{Time: 40 * time.Millisecond, Type: PacketLost, Path: 1, PN: 2, Size: 1350},
		{Time: 250 * time.Millisecond, Type: RTOFired, Path: 1, Cwnd: 2756},
		{Time: 251 * time.Millisecond, Type: PathFailed, Path: 1},
		{Time: 300 * time.Millisecond, Type: LinkDown, Path: 1},
		{Time: 400 * time.Millisecond, Type: LinkUp, Path: 1},
		{Time: 410 * time.Millisecond, Type: LinkReconfigured, Path: 0, Detail: "rate=5Mbps"},
		{Time: 500 * time.Millisecond, Type: PathRecovered, Path: 1},
		{Time: 600 * time.Millisecond, Type: ConnClosed, Detail: "done"},
	}
}

func TestQlogValidJSONLAndDeterministic(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		q := NewQlog(&buf, "server")
		for _, ev := range sampleEvents() {
			q.Trace(ev)
		}
		if err := q.Err(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("qlog output differs between identical event streams")
	}
	lines := strings.Split(strings.TrimRight(string(a), "\n"), "\n")
	if want := len(sampleEvents()) + 1; len(lines) != want {
		t.Fatalf("qlog lines = %d, want %d (header + events)", len(lines), want)
	}
	var header struct {
		QlogVersion string `json:"qlog_version"`
		QlogFormat  string `json:"qlog_format"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
		t.Fatalf("header line: %v", err)
	}
	if header.QlogVersion == "" || header.QlogFormat != "JSON-SEQ" {
		t.Fatalf("header = %+v, want qlog_version set and JSON-SEQ format", header)
	}
	for i, line := range lines[1:] {
		var rec struct {
			Time *float64        `json:"time"`
			Name string          `json:"name"`
			Data json.RawMessage `json:"data"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		if rec.Time == nil || rec.Name == "" {
			t.Fatalf("line %d: missing time or name: %s", i+1, line)
		}
		if !strings.Contains(rec.Name, ":") {
			t.Errorf("line %d: event name %q has no category prefix", i+1, rec.Name)
		}
	}
}

// Every event type must map to a namespaced qlog name — a new
// EventType that falls through to the fallback is fine, but must still
// produce a category-prefixed name.
func TestQlogEventNameCoversAllTypes(t *testing.T) {
	seenMetrics := false
	for _, et := range AllEventTypes() {
		name := QlogEventName(et)
		if !strings.Contains(name, ":") {
			t.Errorf("QlogEventName(%s) = %q, want category:event", et, name)
		}
		if name == "recovery:metrics_updated" {
			seenMetrics = true
		}
	}
	if !seenMetrics {
		t.Error("no event type maps to recovery:metrics_updated — cwnd/RTT series would be missing from qlog")
	}
}

// The cwnd/RTT series acceptance shape: CwndUpdated events must carry
// path_id, congestion_window and smoothed_rtt through the qlog
// encoding.
func TestQlogMetricsUpdatedFields(t *testing.T) {
	var buf bytes.Buffer
	q := NewQlog(&buf, "server")
	q.Trace(Event{Time: time.Second, Type: CwndUpdated, Path: 1, Cwnd: 30000, SRTT: 45 * time.Millisecond})
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	var rec struct {
		Data struct {
			PathID           *uint8   `json:"path_id"`
			CongestionWindow int      `json:"congestion_window"`
			SmoothedRTT      *float64 `json:"smoothed_rtt"`
		} `json:"data"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Data.PathID == nil || *rec.Data.PathID != 1 {
		t.Errorf("path_id = %v, want 1", rec.Data.PathID)
	}
	if rec.Data.CongestionWindow != 30000 {
		t.Errorf("congestion_window = %d, want 30000", rec.Data.CongestionWindow)
	}
	if rec.Data.SmoothedRTT == nil || *rec.Data.SmoothedRTT != 45 {
		t.Errorf("smoothed_rtt = %v, want 45 ms", rec.Data.SmoothedRTT)
	}
}
