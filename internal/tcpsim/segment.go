// Package tcpsim models HTTPS over TCP — the paper's single-path
// baseline (§4): a 3-way handshake followed by a 2-RTT TLS 1.2
// exchange (3 RTTs before application data vs QUIC's 1), cumulative
// acknowledgments with at most 3 SACK blocks (vs QUIC's 256 ACK
// ranges), Karn-degraded coarse RTT samples, and CUBIC congestion
// control. These are exactly the protocol properties the paper uses to
// explain where (MP)QUIC wins.
//
// The model is segment-based over the same netem substrate as the QUIC
// stacks, with byte-accurate header accounting (IPv4 + TCP + options).
package tcpsim

import (
	"mpquic/internal/stream"
)

// Wire-size constants.
const (
	// MSS is the maximum TCP payload per segment, chosen so the full
	// datagram matches the QUIC stacks' 1378-byte wire footprint
	// (1350-byte QUIC packet + 28-byte UDP/IP): IPv4 20 + TCP 20 +
	// timestamps 12 => 1326 + 52 = 1378.
	MSS = 1326
	// headerBase is IPv4 (20) + TCP (20) + timestamp option (12).
	headerBase = 52
	// sackBlockSize is the per-block cost of the SACK option.
	sackBlockSize = 8
	// sackOptionOverhead is the fixed SACK option header (2 bytes,
	// padded to 4 with NOPs).
	sackOptionOverhead = 4
	// MaxSACKBlocks is the option-space limit the paper contrasts
	// with QUIC's 256 ACK ranges (§4.1: "2-3 blocks ... depending on
	// the space consumed by the other TCP options").
	MaxSACKBlocks = 3
)

// CtlType marks handshake control segments.
type CtlType uint8

// Handshake control message types. TCP's SYN/SYN-ACK/ACK is modeled
// with the SYN flags; TLS 1.2's two round trips use ctl segments.
const (
	CtlNone       CtlType = iota
	CtlTLSClient1         // ClientHello
	CtlTLSServer1         // ServerHello, Certificate, Done
	CtlTLSClient2         // ClientKeyExchange, CCS, Finished
	CtlTLSServer2         // CCS, Finished
)

// ctlSize models the wire size of each TLS flight's payload.
func ctlSize(t CtlType) int {
	switch t {
	case CtlTLSClient1:
		return 300
	case CtlTLSServer1:
		return 1200 // certificate chain, abbreviated
	case CtlTLSClient2:
		return 350
	case CtlTLSServer2:
		return 60
	default:
		return 0
	}
}

// SACKBlock is one selective-acknowledgment range [Start, End).
type SACKBlock struct {
	Start, End uint64
}

// Segment is one TCP segment in flight. It implements netem.Payload.
type Segment struct {
	SYN, ACK, FIN bool
	Ctl           CtlType

	Seq     uint64 // first payload byte's sequence number
	Len     int    // payload length (synthetic)
	AckNum  uint64 // cumulative acknowledgment
	Window  uint64 // receive window (bytes beyond AckNum)
	SACK    []SACKBlock
	EchoRTX bool // segment is a retransmission (receiver doesn't care; kept for traces)

	// Multipath TCP DSS-style fields (used by mptcpsim; zero for
	// plain TCP). DataSeq maps this segment's payload into the
	// connection-level byte stream; DataAck is the connection-level
	// cumulative ack; DataFin signals the end of the data stream.
	MP      bool
	DataSeq uint64
	DataAck uint64
	DataFin bool
	// DataFinOnly marks a bare DATA_FIN carrier: one subflow byte,
	// no application payload, fin sequence = DataSeq.
	DataFinOnly bool
	// Token demultiplexes subflows of one MPTCP connection (MP_JOIN's
	// token); SubflowID names the subflow; Join marks an MP_JOIN SYN.
	Token     uint32
	SubflowID uint8
	Join      bool
}

// WireSize implements netem.Payload: headers + options + payload.
func (s *Segment) WireSize() int {
	n := headerBase + s.Len
	if len(s.SACK) > 0 {
		n += sackOptionOverhead + sackBlockSize*len(s.SACK)
	}
	if s.MP {
		n += 20 // DSS option: data seq + data ack + checksum
	}
	if s.Join {
		n += 16 // MP_JOIN option
	}
	if s.Ctl != CtlNone {
		n += ctlSize(s.Ctl)
	}
	return n
}

// End returns the sequence number after the payload.
func (s *Segment) End() uint64 { return s.Seq + uint64(s.Len) }

// buildSACK converts the receiver's out-of-order intervals (ascending)
// into at most MaxSACKBlocks blocks, most recent (highest) first, as
// Linux does.
func buildSACK(ivs []stream.Interval, cumAck uint64) []SACKBlock {
	var blocks []SACKBlock
	for i := len(ivs) - 1; i >= 0 && len(blocks) < MaxSACKBlocks; i-- {
		if ivs[i].End <= cumAck {
			continue
		}
		start := ivs[i].Start
		if start < cumAck {
			start = cumAck
		}
		if blocks == nil {
			blocks = make([]SACKBlock, 0, MaxSACKBlocks)
		}
		blocks = append(blocks, SACKBlock{Start: start, End: ivs[i].End})
	}
	return blocks
}
