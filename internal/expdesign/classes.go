// Package expdesign implements the paper's experimental-design
// methodology (§4.1): WSP-selected scenarios over the Table 1
// parameter ranges, grouped into four classes (low/high BDP ×
// with/without random losses), executed for all four protocol stacks
// with both choices of initial path and three seeded repetitions, and
// summarized as the time-ratio CDFs and experimental aggregation
// benefit boxes of Figs. 3–10.
//
// Determinism contract: every run's seed is a pure function of its
// grid coordinates (see the derivation note in experiment.go), every
// simulation runs on a virtual clock (no wall time — enforced by
// `mpq-vet walltime`), and the observability instruments of RunOpts /
// GridConfig (time-series sampling, tracing, flight recording; see
// OBSERVABILITY.md) are pure observers. Re-running any grid point —
// instrumented or not — reproduces its artifact byte-for-byte, which
// is what makes checkpoints resumable, shards mergeable, and the
// golden-grid tests possible.
package expdesign

import (
	"fmt"
	"math"
	"time"

	"mpquic/internal/netem"
	"mpquic/internal/wsp"
)

// Ranges are the Table 1 experimental-design factor ranges.
type Ranges struct {
	CapacityMinMbps, CapacityMaxMbps float64
	RTTMax                           time.Duration
	QueueDelayMax                    time.Duration
	LossMax                          float64 // fraction, e.g. 0.025
}

// Table 1 of the paper.
var (
	// LowBDPRanges: capacity 0.1–100 Mbps, RTT 0–50 ms, queueing
	// 0–100 ms, loss 0–2.5 %.
	LowBDPRanges = Ranges{0.1, 100, 50 * time.Millisecond, 100 * time.Millisecond, 0.025}
	// HighBDPRanges: RTT 0–400 ms, queueing 0–2000 ms.
	HighBDPRanges = Ranges{0.1, 100, 400 * time.Millisecond, 2000 * time.Millisecond, 0.025}
)

// Class is one scenario class: the four static classes of §4.1, or a
// dynamic class whose scenarios additionally script time-varying link
// behaviour through netem/dynamics.
type Class struct {
	Name   string
	Ranges Ranges
	Losses bool
	// Seed decorrelates the WSP designs of different classes.
	Seed uint64
	// Dynamics selects the class's time-varying behaviour (one of the
	// Dyn* kinds); empty means static links, the paper's setting.
	Dynamics string
}

// The four classes of the evaluation.
var (
	LowBDPNoLoss  = Class{Name: "low-BDP-no-loss", Ranges: LowBDPRanges, Losses: false, Seed: 101}
	LowBDPLosses  = Class{Name: "low-BDP-losses", Ranges: LowBDPRanges, Losses: true, Seed: 102}
	HighBDPNoLoss = Class{Name: "high-BDP-no-loss", Ranges: HighBDPRanges, Losses: false, Seed: 103}
	HighBDPLosses = Class{Name: "high-BDP-losses", Ranges: HighBDPRanges, Losses: true, Seed: 104}
)

// Classes lists all four in paper order.
var Classes = []Class{LowBDPNoLoss, LowBDPLosses, HighBDPNoLoss, HighBDPLosses}

// Dynamics kinds. Each names a family of time-varying behaviour whose
// per-scenario parameters are extra WSP-designed factors.
const (
	// DynBursty replaces every lossy link's Bernoulli process with a
	// Gilbert–Elliott chain of the same average loss rate, with the
	// mean burst length as a designed factor.
	DynBursty = "bursty"
	// DynOscillate makes path 0's capacity follow a sinusoid around
	// its designed value (WiFi-fading); period and depth are designed
	// factors.
	DynOscillate = "oscillate"
	// DynFlaky takes path 0 down periodically; outage length and
	// period are designed factors.
	DynFlaky = "flaky"
)

// The dynamic scenario classes (beyond the paper): the same low-BDP
// factor ranges, plus scripted link behaviour.
var (
	BurstyLossGrid  = Class{Name: "bursty-loss", Ranges: LowBDPRanges, Losses: true, Seed: 105, Dynamics: DynBursty}
	OscillatingGrid = Class{Name: "oscillating-bw", Ranges: LowBDPRanges, Losses: false, Seed: 106, Dynamics: DynOscillate}
	FlakyPathGrid   = Class{Name: "flaky-path", Ranges: LowBDPRanges, Losses: false, Seed: 107, Dynamics: DynFlaky}
)

// DynamicClasses lists the dynamic grids.
var DynamicClasses = []Class{BurstyLossGrid, OscillatingGrid, FlakyPathGrid}

// PaperScenarioCount is the per-class scenario count of §4.1.
const PaperScenarioCount = 253

// Ranges of the dynamic-class extra factors.
const (
	// Gilbert–Elliott mean burst length, packets.
	minBurstPkts, maxBurstPkts = 2.0, 16.0
	// Capacity-oscillation period and relative depth.
	minOscPeriod, maxOscPeriod = 500 * time.Millisecond, 4 * time.Second
	minOscDepth, maxOscDepth   = 0.2, 0.8
	// Flaky-path outage cycle and outage length.
	minFlapPeriod, maxFlapPeriod = 2 * time.Second, 8 * time.Second
	minFlapOutage, maxFlapOutage = 100 * time.Millisecond, 1 * time.Second
)

// Dynamics declares a scenario's scripted behaviour. The zero value
// (absent in JSON) means a static scenario. Parameters irrelevant to
// the Kind are zero.
type Dynamics struct {
	Kind string `json:"kind"`
	// Path is the scenario path index the script targets (bursty
	// applies to every lossy path instead).
	Path int `json:"path,omitempty"`
	// MeanBurstPkts is the Gilbert–Elliott mean burst length.
	MeanBurstPkts float64 `json:"mean_burst_pkts,omitempty"`
	// Period is the oscillation or flap cycle.
	Period time.Duration `json:"period,omitempty"`
	// Depth is the relative capacity-oscillation amplitude in (0,1).
	Depth float64 `json:"depth,omitempty"`
	// Outage is how long the flaky path stays down each cycle.
	Outage time.Duration `json:"outage,omitempty"`
}

// Scenario is one emulated two-path environment, optionally with
// scripted dynamics.
type Scenario struct {
	ID    int
	Class string
	Paths [2]netem.PathSpec
	// Dynamics, when non-nil, scripts time-varying behaviour on top of
	// the paths' base configuration.
	Dynamics *Dynamics `json:",omitempty"`
}

// String renders a compact description.
func (s Scenario) String() string {
	p := s.Paths
	str := fmt.Sprintf("%s#%d [%.2fMbps/%v/%v/%.2f%% | %.2fMbps/%v/%v/%.2f%%]",
		s.Class, s.ID,
		p[0].CapacityMbps, p[0].RTT, p[0].QueueDelay, p[0].LossRate*100,
		p[1].CapacityMbps, p[1].RTT, p[1].QueueDelay, p[1].LossRate*100)
	if d := s.Dynamics; d != nil {
		switch d.Kind {
		case DynBursty:
			str += fmt.Sprintf(" +GE(burst=%.1fpkt)", d.MeanBurstPkts)
		case DynOscillate:
			str += fmt.Sprintf(" +osc(path%d, %v, ±%.0f%%)", d.Path, d.Period, d.Depth*100)
		case DynFlaky:
			str += fmt.Sprintf(" +flap(path%d, %v down per %v)", d.Path, d.Outage, d.Period)
		}
	}
	return str
}

// dims is the design dimensionality: (capacity, RTT, queueing) per
// path, plus loss per path in lossy classes, plus the dynamic-class
// extra factors.
func dims(c Class) int {
	d := 6
	if c.Losses {
		d += 2
	}
	switch c.Dynamics {
	case DynBursty:
		d++ // mean burst length
	case DynOscillate, DynFlaky:
		d += 2 // period + depth, or period + outage
	}
	return d
}

// linMap maps x∈[0,1) onto [lo,hi] linearly.
func linMap(x, lo, hi float64) float64 { return lo + x*(hi-lo) }

// durMap maps x∈[0,1) onto a duration range linearly.
func durMap(x float64, lo, hi time.Duration) time.Duration {
	return lo + time.Duration(x*float64(hi-lo))
}

// GenerateScenarios builds n WSP-selected scenarios for a class.
// Capacity is mapped logarithmically across its three decades (0.1–100
// Mbps); the remaining factors map linearly, exactly as an
// experimental-design study spreads heterogeneous ranges. Dynamic
// classes consume extra design dimensions for their script parameters,
// so those, too, are space-filling rather than fixed.
func GenerateScenarios(c Class, n int) []Scenario {
	pts := wsp.Select(n, dims(c), c.Seed)
	out := make([]Scenario, len(pts))
	for i, p := range pts {
		var sc Scenario
		sc.ID = i
		sc.Class = c.Name
		for path := 0; path < 2; path++ {
			spec := netem.PathSpec{
				CapacityMbps: logMap(p[path], c.Ranges.CapacityMinMbps, c.Ranges.CapacityMaxMbps),
				RTT:          time.Duration(p[2+path] * float64(c.Ranges.RTTMax)),
				QueueDelay:   time.Duration(p[4+path] * float64(c.Ranges.QueueDelayMax)),
			}
			if c.Losses {
				spec.LossRate = p[6+path] * c.Ranges.LossMax
			}
			sc.Paths[path] = spec
		}
		extra := 6
		if c.Losses {
			extra = 8
		}
		switch c.Dynamics {
		case DynBursty:
			sc.Dynamics = &Dynamics{
				Kind:          DynBursty,
				MeanBurstPkts: linMap(p[extra], minBurstPkts, maxBurstPkts),
			}
		case DynOscillate:
			sc.Dynamics = &Dynamics{
				Kind:   DynOscillate,
				Path:   0,
				Period: durMap(p[extra], minOscPeriod, maxOscPeriod),
				Depth:  linMap(p[extra+1], minOscDepth, maxOscDepth),
			}
		case DynFlaky:
			sc.Dynamics = &Dynamics{
				Kind:   DynFlaky,
				Path:   0,
				Period: durMap(p[extra], minFlapPeriod, maxFlapPeriod),
				Outage: durMap(p[extra+1], minFlapOutage, maxFlapOutage),
			}
		}
		out[i] = sc
	}
	return out
}

// logMap maps x∈[0,1) onto [lo,hi] logarithmically.
func logMap(x, lo, hi float64) float64 {
	return lo * math.Pow(hi/lo, x)
}

// BestPath returns the index of the path with the higher capacity
// (tie-broken by lower RTT) — the a-priori "best" path used to label
// best/worst-path-first runs when single-path goodputs are equal.
func (s Scenario) BestPath() int {
	a, b := s.Paths[0], s.Paths[1]
	if a.CapacityMbps != b.CapacityMbps {
		if a.CapacityMbps > b.CapacityMbps {
			return 0
		}
		return 1
	}
	if a.RTT <= b.RTT {
		return 0
	}
	return 1
}
