// Command mpq-live runs the MPQUIC stack over real UDP sockets — the
// same protocol core the simulator drives, attached to a wall clock
// and the kernel's network stack (internal/live).
//
// Server (serves N-byte GETs on one socket per path address):
//
//	mpq-live -server -listen 127.0.0.1:4433,127.0.0.1:4434
//
// Client (downloads -size bytes over one path per -connect address):
//
//	mpq-live -connect 127.0.0.1:4433,127.0.0.1:4434 -size 10000000
//
// The client prints RunMetrics-equivalent output: handshake time,
// transfer time, goodput, and per-path bytes, cwnd and smoothed RTT.
// -json emits the same metrics as a single JSON object for scripts.
// -qlog writes a qlog JSON-SEQ trace of the endpoint (timestamps are
// wall-derived: sim time in live mode is elapsed wall time since the
// driver loop started).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mpquic/internal/apps"
	"mpquic/internal/core"
	"mpquic/internal/faultnet"
	"mpquic/internal/live"
	"mpquic/internal/netem"
	"mpquic/internal/perf"
	"mpquic/internal/trace"
)

func main() {
	var (
		server  = flag.Bool("server", false, "run as server (serve GETs until interrupted)")
		listen  = flag.String("listen", "127.0.0.1:4433", "server: comma-separated local addresses, one per path")
		connect = flag.String("connect", "", "client: comma-separated server addresses, one per path")
		local   = flag.String("local", "", "client: comma-separated local addresses (default 127.0.0.1:0 per path)")
		size    = flag.Uint64("size", 10<<20, "client: transfer size in bytes")
		timeout = flag.Duration("timeout", 60*time.Second, "client: wall deadline for the transfer")
		idle    = flag.Duration("idle", 30*time.Second, "connection idle timeout")
		crypto  = flag.Bool("crypto", true, "AEAD-protect packets")
		qlog    = flag.String("qlog", "", "write a qlog JSON-SEQ trace to this file")
		jsonOut = flag.Bool("json", false, "client: print metrics as one JSON object")
		once    = flag.Bool("once", false, "server: exit after the first connection closes")
		wantAgg = flag.Bool("expect-aggregation", false,
			"client: exit nonzero unless every path carried data and the aggregate beats the best single path")
		coalesce = flag.Duration("coalesce", live.DefaultCoalesce,
			"wake-up coalescing granularity (0 disables; quantizes timer wake-ups and their qlog timestamps)")
		sockBuf = flag.Int("sockbuf", live.DefaultSocketBuffer,
			"SO_RCVBUF/SO_SNDBUF request per UDP socket in bytes (0 keeps the OS default)")
		chaos = flag.String("chaos", "",
			"deterministic socket-fault spec, e.g. 'seed=42;drop=0.01;kill@200ms:1;blackhole@1s+500ms:0' (see internal/faultnet)")
		rebindMax = flag.Int("rebind-max", live.DefaultRebindMax,
			"rebind attempts per degraded socket before its path is abandoned (0 disables self-healing)")
		rebindBackoff = flag.Duration("rebind-backoff", live.DefaultRebindBackoff,
			"first rebind delay; attempt k waits backoff<<min(k,6)")
	)
	flag.Parse()

	driverOpts := []live.Option{
		live.WithCoalesce(*coalesce),
		live.WithSocketBuffer(*sockBuf),
		live.WithRebind(*rebindMax, *rebindBackoff),
	}
	if *chaos != "" {
		opt, err := chaosOption(*chaos)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpq-live: -chaos:", err)
			os.Exit(2)
		}
		driverOpts = append(driverOpts, opt)
	}
	var err error
	if *server {
		err = runServer(splitAddrs(*listen), *idle, *crypto, *qlog, *once, driverOpts)
	} else {
		if *connect == "" {
			fmt.Fprintln(os.Stderr, "mpq-live: need -server or -connect (see -h)")
			os.Exit(2)
		}
		err = runClient(clientOpts{
			remotes: splitAddrs(*connect),
			locals:  splitAddrs(*local),
			size:    *size,
			timeout: *timeout,
			idle:    *idle,
			crypto:  *crypto,
			qlog:    *qlog,
			json:    *jsonOut,
			wantAgg: *wantAgg,
			driver:  driverOpts,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpq-live:", err)
		os.Exit(1)
	}
}

// chaosOption compiles a -chaos spec into a driver option: a seeded
// fault injector wrapped around every socket the driver binds. Scripted
// events fire against a wall-anchored stopwatch started here — the
// CLI reaches wall time through internal/perf, the audited package,
// so the walltime analyzer holds for cmd/ (see internal/analysis).
func chaosOption(spec string) (live.Option, error) {
	seed, rates, script, err := faultnet.Parse(spec)
	if err != nil {
		return nil, err
	}
	opts := []faultnet.Option{faultnet.WithRates(rates)}
	if len(script.Events) > 0 {
		sw := perf.NewStopwatch()
		opts = append(opts, faultnet.WithClock(sw.Elapsed), faultnet.WithScript(script))
	}
	inj := faultnet.New(seed, opts...)
	return live.WithSocketWrapper(func(path int, c live.UDPConn) live.UDPConn {
		return inj.Wrap(path, c)
	}), nil
}

func splitAddrs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// liveConfig builds the core config both roles share: wire
// serialization is mandatory over real sockets, multipath tracks the
// number of bound addresses.
func liveConfig(nPaths int, idle time.Duration, crypto bool, tracer trace.Tracer) core.Config {
	cfg := core.DefaultConfig()
	if nPaths == 1 {
		cfg = core.DefaultSinglePathConfig()
	}
	cfg.MaxPaths = nPaths
	cfg.WireSerialization = true
	cfg.EnableCrypto = crypto
	cfg.IdleTimeout = idle
	cfg.Tracer = tracer
	return cfg
}

// openQlog opens the trace file and returns the tracer (nil when path
// is empty) plus a flush-and-close func.
func openQlog(path, vantage string) (trace.Tracer, func() error, error) {
	if path == "" {
		return nil, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	q := trace.NewQlog(f, vantage)
	return q, func() error {
		if err := q.Err(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}, nil
}

func runServer(addrs []string, idle time.Duration, crypto bool, qlogPath string, once bool, opts []live.Option) error {
	d, err := live.NewDriver(addrs, opts...)
	if err != nil {
		return err
	}
	defer d.Close()
	tracer, closeQlog, err := openQlog(qlogPath, "server")
	if err != nil {
		return err
	}

	lis := core.Listen(d, liveConfig(len(addrs), idle, crypto, tracer), d.LocalAddrs())
	apps.NewGetServer(lis)
	// Connection lifecycle logging, plus the -once exit condition.
	accepted, closed := 0, 0
	lis.OnConnection(func(c *core.Conn) {
		accepted++
		fmt.Fprintf(os.Stderr, "accepted connection %d\n", accepted)
		c.OnClosed(func(error) { closed++ })
	})

	// The bound addresses (port 0 resolves here) go to stdout so a
	// wrapper script can read them before pointing clients at us.
	fmt.Printf("listening %s\n", joinAddrs(d.LocalAddrs()))

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		d.Close()
	}()

	err = d.Run(func() bool { return once && closed > 0 })
	if errors.Is(err, live.ErrClosed) {
		err = nil // interrupted: a clean exit for a server
	}
	if err != nil {
		closeQlog()
		return err
	}
	d.Flush() // any final CONNECTION_CLOSE queued after the loop ended
	return closeQlog()
}

// clientMetrics is the RunMetrics-equivalent report for a live
// transfer. Durations are wall-derived sim times (seconds).
type clientMetrics struct {
	Size          uint64        `json:"size_bytes"`
	HandshakeSecs float64       `json:"handshake_s"`
	TransferSecs  float64       `json:"transfer_s"`
	GoodputMbps   float64       `json:"goodput_mbps"`
	AggregateMbps float64       `json:"aggregate_mbps"`
	BestPathMbps  float64       `json:"best_path_mbps"`
	Paths         []pathMetrics `json:"paths"`
	PacketsIn     uint64        `json:"packets_in"`
	PacketsOut    uint64        `json:"packets_out"`
	// Fast-lane observability: how well ingress batching worked and
	// whether the kernel receive queue overflowed (see live.Stats).
	IngressBatches uint64 `json:"ingress_batches"`
	MaxBatch       uint64 `json:"max_batch"`
	RcvQueueDrops  uint64 `json:"rcv_queue_drops"`
	// Fault-tolerance observability: the health ladder's counters
	// (see live.Stats and DESIGN.md, "Live fault tolerance").
	TransientReadErrs uint64 `json:"transient_read_errs"`
	Rebinds           uint64 `json:"rebinds"`
	RebindFailures    uint64 `json:"rebind_failures"`
	CorruptDrops      uint64 `json:"corrupt_drops"`
	PathsFailedLive   uint64 `json:"paths_failed_live"`
	EgressDiscards    uint64 `json:"egress_discards"`
}

type pathMetrics struct {
	ID        uint8   `json:"id"`
	Local     string  `json:"local"`
	Remote    string  `json:"remote"`
	RecvBytes uint64  `json:"recv_bytes"`
	SentBytes uint64  `json:"sent_bytes"`
	CwndBytes int     `json:"cwnd_bytes"`
	SRTTms    float64 `json:"srtt_ms"`
	Mbps      float64 `json:"mbps"`
	// PF reports the path's local §4.3 potentially-failed state at the
	// end of the transfer: true marks the paths the failover steered
	// around. RemotePF mirrors the peer's PF declaration (PATHS frame)
	// — on a download it is the data sender's failover decision, seen
	// from here.
	PF       bool `json:"pf"`
	RemotePF bool `json:"remote_pf"`
}

// clientOpts bundles the client-side flag values.
type clientOpts struct {
	remotes []string
	locals  []string
	size    uint64
	timeout time.Duration
	idle    time.Duration
	crypto  bool
	qlog    string
	json    bool
	wantAgg bool
	driver  []live.Option
}

func runClient(o clientOpts) error {
	locals := o.locals
	if len(locals) == 0 {
		locals = make([]string, len(o.remotes))
		for i := range locals {
			locals[i] = "127.0.0.1:0"
		}
	}
	if len(locals) != len(o.remotes) {
		return fmt.Errorf("need one -local address per -connect address (%d vs %d)", len(locals), len(o.remotes))
	}
	d, err := live.NewDriver(locals, o.driver...)
	if err != nil {
		return err
	}
	defer d.Close()
	tracer, closeQlog, err := openQlog(o.qlog, "client")
	if err != nil {
		return err
	}

	remoteAddrs := make([]netem.Addr, len(o.remotes))
	for i, r := range o.remotes {
		remoteAddrs[i] = netem.Addr(r)
	}
	cfg := liveConfig(len(o.remotes), o.idle, o.crypto, tracer)
	conn := core.Dial(d, cfg, core.NewConnID(uint64(os.Getpid())), d.LocalAddrs(), remoteAddrs)

	res, err := live.Download(d, conn, o.size, o.timeout)
	if err != nil {
		closeQlog()
		return err
	}

	d.UpdateSocketStats()
	m := clientMetrics{
		Size:           res.Size,
		HandshakeSecs:  res.HandshakeDone.Seconds(),
		TransferSecs:   res.Elapsed().Seconds(),
		PacketsIn:      d.Stats.PacketsIn,
		PacketsOut:     d.Stats.PacketsOut,
		IngressBatches: d.Stats.IngressBatches,
		MaxBatch:       d.Stats.MaxBatch,
		RcvQueueDrops:  d.Stats.RcvQueueDrops,

		TransientReadErrs: d.Stats.TransientReadErrs,
		Rebinds:           d.Stats.Rebinds,
		RebindFailures:    d.Stats.RebindFailures,
		CorruptDrops:      d.Stats.CorruptDrops,
		PathsFailedLive:   d.Stats.PathsFailedLive,
		EgressDiscards:    d.Stats.EgressDiscards,
	}
	if s := m.TransferSecs; s > 0 {
		m.GoodputMbps = float64(res.Size) * 8 / s / 1e6
	}
	for _, p := range conn.Paths() {
		pm := pathMetrics{
			ID:        uint8(p.ID),
			Local:     string(p.Local),
			Remote:    string(p.Remote),
			RecvBytes: p.RecvBytes,
			SentBytes: p.SentBytes,
			CwndBytes: p.CC().Cwnd(),
			SRTTms:    float64(p.RTT().SmoothedRTT()) / float64(time.Millisecond),
			PF:        p.PotentiallyFailed(),
			RemotePF:  p.RemotePF(),
		}
		if s := m.TransferSecs; s > 0 {
			pm.Mbps = float64(p.RecvBytes) * 8 / s / 1e6
		}
		// AggregateMbps sums raw per-path arrival rates (retransmits
		// included) so "aggregate vs best single path" compares like
		// with like; GoodputMbps is application bytes only.
		m.AggregateMbps += pm.Mbps
		if pm.Mbps > m.BestPathMbps {
			m.BestPathMbps = pm.Mbps
		}
		m.Paths = append(m.Paths, pm)
	}

	if o.json {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(m); err != nil {
			closeQlog()
			return err
		}
	} else {
		printMetrics(m)
	}
	conn.Close()
	d.Flush() // deliver the CONNECTION_CLOSE before the socket drops
	if err := closeQlog(); err != nil {
		return err
	}
	if o.wantAgg {
		return checkAggregation(m)
	}
	return nil
}

// checkAggregation enforces the multipath benefit the smoke harness
// asserts: every path carried data, and the summed per-path rate beats
// the best single path.
func checkAggregation(m clientMetrics) error {
	if len(m.Paths) < 2 {
		return fmt.Errorf("aggregation check: only %d path(s)", len(m.Paths))
	}
	for _, p := range m.Paths {
		if p.RecvBytes == 0 {
			return fmt.Errorf("aggregation check: path %d carried no data", p.ID)
		}
	}
	if m.AggregateMbps <= m.BestPathMbps {
		return fmt.Errorf("aggregation check: aggregate %.2f Mbps does not beat best path %.2f Mbps",
			m.AggregateMbps, m.BestPathMbps)
	}
	return nil
}

func printMetrics(m clientMetrics) {
	fmt.Printf("transfer     %d bytes in %.3f s (%.2f Mbps goodput)\n", m.Size, m.TransferSecs, m.GoodputMbps)
	fmt.Printf("handshake    %.1f ms\n", m.HandshakeSecs*1e3)
	fmt.Printf("packets      in %d, out %d\n", m.PacketsIn, m.PacketsOut)
	if m.IngressBatches > 0 {
		fmt.Printf("ingress      %d batches (mean %.1f pkts, max %d), kernel drops %d\n",
			m.IngressBatches, float64(m.PacketsIn)/float64(m.IngressBatches), m.MaxBatch, m.RcvQueueDrops)
	}
	if m.TransientReadErrs+m.Rebinds+m.RebindFailures+m.CorruptDrops+m.PathsFailedLive+m.EgressDiscards > 0 {
		fmt.Printf("faults       transient reads %d, rebinds %d (failed attempts %d), corrupt drops %d, paths failed %d, egress discards %d\n",
			m.TransientReadErrs, m.Rebinds, m.RebindFailures, m.CorruptDrops, m.PathsFailedLive, m.EgressDiscards)
	}
	for _, p := range m.Paths {
		pf := ""
		if p.PF {
			pf = " [pf]"
		}
		if p.RemotePF {
			pf += " [remote-pf]"
		}
		fmt.Printf("path %d       %s -> %s: recv %d B (%.2f Mbps), sent %d B, cwnd %d B, srtt %.1f ms%s\n",
			p.ID, p.Local, p.Remote, p.RecvBytes, p.Mbps, p.SentBytes, p.CwndBytes, p.SRTTms, pf)
	}
	fmt.Printf("best path    %.2f Mbps of %.2f Mbps aggregate\n", m.BestPathMbps, m.AggregateMbps)
}

func joinAddrs(addrs []netem.Addr) string {
	parts := make([]string, len(addrs))
	for i, a := range addrs {
		parts[i] = string(a)
	}
	return strings.Join(parts, ",")
}
