// Package quic exposes the single-path QUIC baseline of the
// evaluation (§4.1: Google-QUIC-era protocol with CUBIC congestion
// control and a 1-RTT secure handshake).
//
// Exactly like the paper's implementation — an extension of quic-go —
// this reproduction keeps one engine for both protocols: plain QUIC is
// the multipath engine (internal/core) with the multipath machinery
// disabled. No Path ID byte travels in the public header, a single
// packet-number space exists, and the congestion controller is CUBIC.
// This package pins that configuration and provides single-path
// constructors so baseline call sites cannot accidentally enable
// multipath features.
package quic

import (
	"mpquic/internal/core"
	"mpquic/internal/netem"
	"mpquic/internal/wire"
)

// Conn is a single-path QUIC connection.
type Conn = core.Conn

// Stream is an application stream handle.
type Stream = core.Stream

// Listener accepts QUIC connections.
type Listener = core.Listener

// DefaultConfig returns the single-path QUIC configuration used as the
// paper's baseline: multipath off, CUBIC, 16 MB windows.
func DefaultConfig() core.Config { return core.DefaultSinglePathConfig() }

// sanitize forces single-path invariants onto a caller-supplied
// configuration.
func sanitize(cfg core.Config) core.Config {
	cfg.Multipath = false
	cfg.MaxPaths = 1
	cfg.DuplicateOnNewPath = false
	cfg.WindowUpdateAllPaths = false
	cfg.PathsFrameOnFailure = false
	return cfg
}

// Dial opens a single-path client connection from local to remote.
func Dial(nw *netem.Network, cfg core.Config, connID wire.ConnectionID, local, remote netem.Addr) *Conn {
	return core.Dial(nw, sanitize(cfg), connID, []netem.Addr{local}, []netem.Addr{remote})
}

// Listen starts a single-path QUIC server on one address.
func Listen(nw *netem.Network, cfg core.Config, addr netem.Addr) *Listener {
	return core.Listen(nw, sanitize(cfg), []netem.Addr{addr})
}
