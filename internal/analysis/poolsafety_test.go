package analysis_test

import (
	"testing"

	"mpquic/internal/analysis"
	"mpquic/internal/analysis/analysistest"
)

func TestPoolSafety(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.PoolSafety, "poolsafety")
}
