package perf

import (
	"testing"
	"time"

	"mpquic/internal/core"
	"mpquic/internal/live"
	"mpquic/internal/netem"
	"mpquic/internal/wire"
)

// Allocation parity for the live fast lane: the batched UDP driver
// must move packets with the same zero-garbage discipline the sim hot
// path has. Egress draws 1500-byte buffers from the wire pool and
// returns them after the socket write; ingress rides the driver's
// buffer ring. Steady state on both sides is allocation-free — this
// test pins it end to end across two real loopback sockets.

// nullHandler consumes datagrams without touching them: the driver's
// per-packet overhead measured in isolation from protocol work.
type nullHandler struct{ n int }

func (h *nullHandler) HandleDatagram(netem.Datagram) { h.n++ }

func TestLiveDriverAllocPerPacketSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("binds real UDP sockets")
	}
	sender, err := live.NewDriver([]string{"127.0.0.1:0"})
	if err != nil {
		t.Skipf("UDP sockets unavailable: %v", err)
	}
	defer sender.Close()
	receiver, err := live.NewDriver([]string{"127.0.0.1:0"})
	if err != nil {
		t.Skipf("UDP sockets unavailable: %v", err)
	}
	defer receiver.Close()

	rxAddr := receiver.LocalAddrs()[0]
	txAddr := sender.LocalAddrs()[0]
	receiver.Register(rxAddr, &nullHandler{})

	// The receiver loop runs in server mode: ingest batches recycle
	// ring buffers as fast as the reader draws them, which is the
	// steady state whose allocation count we are pinning. Its work is
	// included in the measurement (AllocsPerRun counts all
	// goroutines).
	go receiver.Run(nil)
	defer receiver.Close()

	payloadLen := SamplePayloadLen()
	sendOne := func() {
		buf := wire.GetPacketBuf()[:payloadLen]
		sender.Send(core.RawDatagram(txAddr, rxAddr, buf))
		if err := sender.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// Warm-up: intern the remote lookup, fill the receiver's buffer
	// ring, and let the wire pool reach steady state.
	for i := 0; i < 512; i++ {
		sendOne()
	}
	time.Sleep(100 * time.Millisecond) // let the receiver drain and recycle

	const perRun = 16
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < perRun; i++ {
			sendOne()
		}
	})
	perPacket := allocs / perRun

	// The budget is zero; the slack absorbs sync.Pool refills after a
	// GC inside the measured window and the receiver goroutines'
	// scheduling noise, not a per-packet cost (a real per-packet
	// allocation reads as >= 1.0 here).
	if perPacket > 0.25 {
		t.Errorf("live driver allocates %.2f/packet in steady state, want 0 (slack 0.25)", perPacket)
	}
	sender.UpdateSocketStats()
	if sender.Stats.WriteErrors > 0 || sender.Stats.NoRoute > 0 {
		t.Errorf("egress errors during measurement: %+v", sender.Stats)
	}
}
