package expdesign

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// testGridConfig is a small, fast grid shared by the artifact tests.
func testGridConfig(artifactPath string) GridConfig {
	return GridConfig{
		Class:        LowBDPNoLoss,
		Scenarios:    4,
		Size:         128 << 10,
		Reps:         1,
		Workers:      2,
		ArtifactPath: artifactPath,
	}
}

func mustRunGrid(t *testing.T, cfg GridConfig) FigureData {
	t.Helper()
	fd, err := RunGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fd
}

func countLines(t *testing.T, path string) int {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Count(string(b), "\n")
}

func TestCheckpointResumeRoundTrip(t *testing.T) {
	reference := mustRunGrid(t, testGridConfig(""))

	// "Interrupted" run: only half the scenarios (shard 0 of 2) reach
	// the artifact file before the process dies.
	path := filepath.Join(t.TempDir(), "grid.jsonl")
	partial := testGridConfig(path)
	partial.Shard, partial.NumShards = 0, 2
	mustRunGrid(t, partial)
	wrote := countLines(t, path)
	if wrote == 0 || wrote >= len(reference.Results) {
		t.Fatalf("partial run persisted %d/%d scenarios, want a strict subset",
			wrote, len(reference.Results))
	}

	// Restart over the full grid: persisted scenarios must be skipped
	// (only the missing ones appended) and the merged result must be
	// identical to an uninterrupted run.
	var calls []int
	resumed := testGridConfig(path)
	resumed.Progress = func(done, total int) { calls = append(calls, done) }
	got := mustRunGrid(t, resumed)
	if !reflect.DeepEqual(got, reference) {
		t.Fatal("resumed grid differs from uninterrupted run")
	}
	if appended := countLines(t, path) - wrote; appended != len(reference.Results)-wrote {
		t.Fatalf("resume appended %d records, want exactly the %d missing",
			appended, len(reference.Results)-wrote)
	}
	if len(calls) == 0 || calls[0] != wrote {
		t.Fatalf("first progress call %v, want restored count %d", calls, wrote)
	}

	// A third run finds everything on disk and recomputes nothing.
	before := countLines(t, path)
	again := mustRunGrid(t, testGridConfig(path))
	if !reflect.DeepEqual(again, reference) {
		t.Fatal("fully-cached grid differs")
	}
	if countLines(t, path) != before {
		t.Fatal("fully-cached run appended records")
	}
}

func TestCheckpointToleratesCorruptTail(t *testing.T) {
	reference := mustRunGrid(t, testGridConfig(""))

	path := filepath.Join(t.TempDir(), "grid.jsonl")
	partial := testGridConfig(path)
	partial.Shard, partial.NumShards = 0, 2
	mustRunGrid(t, partial)

	// Simulate a write cut off mid-record by the interruption.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"class":"low-BDP-no-loss","scenario":{"ID":3`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got := mustRunGrid(t, testGridConfig(path))
	if !reflect.DeepEqual(got, reference) {
		t.Fatal("resume over corrupt tail differs from uninterrupted run")
	}
}

func TestCheckpointKeyIncludesSizeAndReps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.jsonl")
	cfg := testGridConfig(path)
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	sc := GenerateScenarios(cfg.Class, 1)[0]
	sr := ScenarioResult{Scenario: sc}
	sr.Runs[ProtoTCP][0] = RunResult{Completed: true, Elapsed: time.Second}
	if err := cp.Append(cfg, sr); err != nil {
		t.Fatal(err)
	}
	if _, ok := cp.Lookup(cfg, sc); !ok {
		t.Fatal("lookup missed the appended record")
	}
	other := cfg
	other.Size *= 2
	if _, ok := cp.Lookup(other, sc); ok {
		t.Fatal("lookup hit across a different transfer size")
	}
	other = cfg
	other.Reps = 3
	if _, ok := cp.Lookup(other, sc); ok {
		t.Fatal("lookup hit across a different rep count")
	}
	other = cfg
	other.Class = LowBDPLosses
	if _, ok := cp.Lookup(other, sc); ok {
		t.Fatal("lookup hit across a different class seed")
	}
}

func TestShardsPartitionAndMerge(t *testing.T) {
	reference := mustRunGrid(t, testGridConfig(""))

	dir := t.TempDir()
	const n = 3
	var paths []string
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		path := filepath.Join(dir, ArtifactFileName(LowBDPNoLoss, 128<<10, i, n))
		paths = append(paths, path)
		cfg := testGridConfig(path)
		cfg.Shard, cfg.NumShards = i, n
		fd := mustRunGrid(t, cfg)
		for _, sr := range fd.Results {
			if seen[sr.Scenario.ID] {
				t.Fatalf("scenario %d ran in two shards", sr.Scenario.ID)
			}
			seen[sr.Scenario.ID] = true
		}
	}
	if len(seen) != len(reference.Results) {
		t.Fatalf("shards covered %d/%d scenarios", len(seen), len(reference.Results))
	}

	merged, err := LoadFigureData(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, reference) {
		t.Fatal("merged shards differ from the unsharded run")
	}
}

func TestLoadFigureDataRejectsMixedGrids(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	cfgA := testGridConfig(a)
	cfgA.Scenarios = 1
	mustRunGrid(t, cfgA)
	cfgB := testGridConfig(b)
	cfgB.Scenarios = 1
	cfgB.Class = LowBDPLosses
	mustRunGrid(t, cfgB)
	if _, err := LoadFigureData(a, b); err == nil {
		t.Fatal("merging different classes should fail")
	}
}

func TestRunMetricsPopulated(t *testing.T) {
	fd := mustRunGrid(t, testGridConfig(""))
	for _, sr := range fd.Results {
		for proto := ProtoTCP; proto <= ProtoMPQUIC; proto++ {
			for start := 0; start < 2; start++ {
				r := sr.Runs[proto][start]
				m := r.Metrics
				tag := sr.Scenario.String() + " " + proto.String()
				if !r.Completed {
					t.Fatalf("%s: run incomplete", tag)
				}
				if m.Handshake <= 0 {
					t.Fatalf("%s: no handshake timestamp", tag)
				}
				if m.Handshake >= r.Elapsed+time.Second {
					t.Fatalf("%s: handshake %v after completion %v", tag, m.Handshake, r.Elapsed)
				}
				if m.PacketsSent == 0 {
					t.Fatalf("%s: no packets counted", tag)
				}
				wantPaths := 1
				if proto.Multipath() {
					wantPaths = 2
				}
				if len(m.Paths) != wantPaths {
					t.Fatalf("%s: %d path entries, want %d", tag, len(m.Paths), wantPaths)
				}
				var recvd, sent uint64
				for _, pm := range m.Paths {
					recvd += pm.BytesRecvd
					sent += pm.BytesSent
					if pm.FinalCwnd <= 0 {
						t.Fatalf("%s: final cwnd %d", tag, pm.FinalCwnd)
					}
				}
				if sent == 0 {
					t.Fatalf("%s: no per-path bytes sent", tag)
				}
				// The download must be accounted to the paths: the
				// client received at least the transfer size in total.
				if recvd < fd.Size {
					t.Fatalf("%s: per-path received %d < transfer size %d", tag, recvd, fd.Size)
				}
				// At least the initial path must have an RTT estimate.
				if m.Paths[0].SRTT <= 0 {
					t.Fatalf("%s: no smoothed RTT on the initial path", tag)
				}
			}
		}
	}
}

// TestRunSeedsCollisionFree enumerates every seed of the paper-scale
// evaluation (4 static + 3 dynamic classes × 253 scenarios × 4
// protocols × 2 initial paths × 3 repetitions) and asserts the
// derivation scheme documented at runSeed never assigns two runs the
// same PRNG stream.
func TestRunSeedsCollisionFree(t *testing.T) {
	all := append(append([]Class(nil), Classes...), DynamicClasses...)
	seen := make(map[uint64]string, len(all)*PaperScenarioCount*4*2*Repetitions)
	for _, class := range all {
		for id := 0; id < PaperScenarioCount; id++ {
			for proto := ProtoTCP; proto <= ProtoMPQUIC; proto++ {
				for start := 0; start < 2; start++ {
					base := runSeed(class, id, proto, start)
					for rep := 0; rep < Repetitions; rep++ {
						seed := base + uint64(rep)*7919
						key := class.Name + "/" + proto.String()
						if prev, dup := seen[seed]; dup {
							t.Fatalf("seed %d collides: %s id=%d start=%d rep=%d vs %s",
								seed, key, id, start, rep, prev)
						}
						seen[seed] = key
					}
				}
			}
		}
	}
}
