package core_test

import (
	"testing"
	"time"

	"mpquic/internal/apps"
	"mpquic/internal/core"
	"mpquic/internal/netem"
	"mpquic/internal/sim"
	"mpquic/internal/wire"
)

// TestPerPathPacketNumberSpaces: each path numbers its packets
// independently from zero (§3, Reliable Data Transmission / Fig. 1).
func TestPerPathPacketNumberSpaces(t *testing.T) {
	mp := core.DefaultConfig()
	h := newHarness(t, mp, mp, symSpecs(10, 30*time.Millisecond))
	apps.NewGetServer(h.listener)
	apps.NewGetClient(h.client, 2<<20, func() time.Duration { return h.clock.Now().Duration() }, nil)
	h.run(t, 30*time.Second)
	srv := h.serverConn(t)
	for _, p := range srv.Paths() {
		sent := p.Space().Stats.PacketsSent
		largest := p.Space().LargestSent()
		// If spaces were shared, per-path largest PN would exceed the
		// per-path sent count.
		if uint64(largest) > sent+16 {
			t.Fatalf("path %d: largest sent PN %d vs %d packets — spaces not separate",
				p.ID, largest, sent)
		}
		if sent == 0 {
			t.Fatalf("path %d unused", p.ID)
		}
	}
}

// TestCrossPathRetransmission: data lost on one path is retransmitted
// over the other (frames are not pinned to packets/paths, §3).
func TestCrossPathRetransmission(t *testing.T) {
	mp := core.DefaultConfig()
	specs := symSpecs(10, 20*time.Millisecond)
	h := newHarness(t, mp, mp, specs)
	apps.NewGetServer(h.listener)
	var res *apps.GetResult
	apps.NewGetClient(h.client, 4<<20, func() time.Duration { return h.clock.Now().Duration() },
		func(r apps.GetResult) { res = &r })
	// Kill path 0 mid-transfer: all data in flight there must be
	// recovered via path 1.
	h.clock.At(sim.Time(1*time.Second), func() { h.tp.KillPath(0) })
	h.run(t, 120*time.Second)
	if res == nil {
		t.Fatal("transfer did not survive the path loss")
	}
	srv := h.serverConn(t)
	if !srv.PathByID(0).PotentiallyFailed() && !srv.PathByID(0).RemotePF() {
		t.Fatal("dead path not flagged on the server")
	}
}

// TestRemotePFAvoidsPath: after receiving a PATHS frame flagging a
// path, the peer's scheduler avoids it (§4.3).
func TestRemotePFAvoidsPath(t *testing.T) {
	mp := core.DefaultConfig()
	specs := [2]netem.PathSpec{
		{CapacityMbps: 10, RTT: 10 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
		{CapacityMbps: 10, RTT: 40 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
	}
	h := newHarness(t, mp, mp, specs)
	apps.NewEchoServer(h.listener)
	rr := apps.NewReqRespClient(h.client, h.clock, 12*time.Second)
	h.clock.At(sim.Time(2*time.Second), func() { h.tp.KillPath(0) })
	h.run(t, 6*time.Second)
	srv := h.serverConn(t)
	p0 := srv.PathByID(0)
	if p0 == nil || !p0.RemotePF() {
		t.Fatal("server never learned about the failure via PATHS")
	}
	// The server's traffic after the failure flows on path 1: path 0
	// forward counter freezes while the train keeps running.
	sentOnDead := p0.SentPackets
	before := len(rr.Samples())
	h.run(t, 12*time.Second)
	if len(rr.Samples()) <= before {
		t.Fatal("request train stalled")
	}
	if p0.SentPackets > sentOnDead+4 {
		t.Fatalf("server kept sending on a remote-PF path (%d -> %d)", sentOnDead, p0.SentPackets)
	}
}

// TestNATRebindingKeepsPathState: a remote address change on a known
// Path ID updates the path without resetting RTT or packet numbers
// (§3, Path Identification).
func TestNATRebindingKeepsPathState(t *testing.T) {
	cfg := core.DefaultSinglePathConfig()
	h := newHarness(t, cfg, cfg, symSpecs(10, 20*time.Millisecond))
	apps.NewGetServer(h.listener)
	apps.NewGetClient(h.client, 1<<20, func() time.Duration { return h.clock.Now().Duration() }, nil)
	h.run(t, 500*time.Millisecond)
	srv := h.serverConn(t)
	srtt := srv.PathByID(0).RTT().SmoothedRTT()
	if srtt == 0 {
		t.Fatal("no RTT sample before rebinding")
	}
	// Simulate NAT rebinding: client re-registers under a new source
	// address and routes are added for it.
	newAddr := netem.Addr("10.0.1.99:5000")
	link := h.tp.Net.Route(h.tp.ClientAddrs[0], h.tp.ServerAddrs[0])
	rev := h.tp.Net.Route(h.tp.ServerAddrs[0], h.tp.ClientAddrs[0])
	h.tp.Net.AddRoute(newAddr, h.tp.ServerAddrs[0], link)
	h.tp.Net.AddRoute(h.tp.ServerAddrs[0], newAddr, rev)
	// Deliver one datagram with the new source: the server must adopt
	// it and keep the path's RTT state.
	h.tp.Net.Register(newAddr, h.client)
	srvPath := srv.PathByID(0)
	srvPath.Remote = newAddr // emulate in-flight rebinding adoption
	h.run(t, 5*time.Second)
	if got := srv.PathByID(0).RTT().SmoothedRTT(); got == 0 {
		t.Fatal("path state lost after rebinding")
	}
}

// TestAckForPathCarriedOnOtherPath: ACK frames carry a Path ID and may
// travel on any path (§3) — verified via the wire format plus the
// conn's ack dispatch.
func TestAckForPathCarriedOnOtherPath(t *testing.T) {
	// Craft an ACK for path 1 and verify it round-trips with its Path
	// ID intact (the conn-level dispatch is covered by the multipath
	// transfer tests; this pins the wire contract).
	ack := &wire.AckFrame{PathID: 1, Ranges: []wire.AckRange{{Smallest: 0, Largest: 9}}}
	b := ack.Append(nil)
	got, _, err := wire.ParseFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.(*wire.AckFrame).PathID != 1 {
		t.Fatal("ACK lost its Path ID")
	}
}

// TestStreamsPreventHOLBlockingAcrossStreams: two streams make
// independent progress (one stalled stream does not block the other).
func TestStreamsPreventHOLBlockingAcrossStreams(t *testing.T) {
	cfg := core.DefaultSinglePathConfig()
	h := newHarness(t, cfg, cfg, symSpecs(10, 20*time.Millisecond))
	done := map[wire.StreamID]bool{}
	h.listener.OnConnection(func(c *core.Conn) {
		c.OnStreamOpen(func(s *core.Stream) {
			s.OnData(func() {
				if n := s.Readable(); n > 0 {
					s.Read(n)
				}
				if s.Finished() {
					s.WriteSynthetic(100 << 10)
					s.Close()
				}
			})
		})
	})
	h.client.OnHandshakeComplete(func() {
		for i := 0; i < 3; i++ {
			s := h.client.OpenStream()
			id := s.ID()
			s.OnData(func() {
				if n := s.Readable(); n > 0 {
					s.Read(n)
				}
				if s.Finished() {
					done[id] = true
				}
			})
			s.WriteSynthetic(1000)
			s.Close()
		}
	})
	h.run(t, 10*time.Second)
	if len(done) != 3 {
		t.Fatalf("only %d/3 streams finished", len(done))
	}
}

// TestHandshakeSurvivesCHLOLoss: losing the client hello delays but
// does not break connection establishment.
func TestHandshakeSurvivesCHLOLoss(t *testing.T) {
	cfg := core.DefaultSinglePathConfig()
	h := newHarness(t, cfg, cfg, symSpecs(10, 20*time.Millisecond))
	// Down the forward link before the CHLO leaves the queue.
	h.tp.Fwd[0].SetDown(true)
	h.clock.At(sim.Time(900*time.Millisecond), func() { h.tp.Fwd[0].SetDown(false) })
	h.run(t, 10*time.Second)
	if !h.client.HandshakeComplete() {
		t.Fatal("handshake did not recover from CHLO loss")
	}
}

// TestConnFlowControlCapsUnreadData: an application that never reads
// receives at most the connection window.
func TestConnFlowControlCapsUnreadData(t *testing.T) {
	cfg := core.DefaultSinglePathConfig()
	cfg.ConnWindow = 256 << 10
	cfg.StreamWindow = 1 << 30 // only the connection level binds
	h := newHarness(t, cfg, cfg, symSpecs(50, 10*time.Millisecond))
	h.listener.OnConnection(func(c *core.Conn) {
		c.OnStreamOpen(func(s *core.Stream) {
			s.OnData(func() {
				if n := s.Readable(); n > 0 {
					s.Read(n)
				}
				if s.Finished() {
					s.WriteSynthetic(4 << 20)
					s.Close()
				}
			})
		})
	})
	var resp *core.Stream
	h.client.OnHandshakeComplete(func() {
		s := h.client.OpenStream()
		resp = s
		// Never read: the server must stall at the connection window.
		s.Write([]byte("go"))
		s.Close()
	})
	h.run(t, 20*time.Second)
	if resp == nil {
		t.Fatal("no stream")
	}
	if got := resp.BytesReceived(); got > 256<<10 {
		t.Fatalf("flow control exceeded: %d bytes buffered", got)
	}
	if got := resp.BytesReceived(); got < 128<<10 {
		t.Fatalf("window barely used: %d", got)
	}
}

// TestStreamFlowControlPerStream: the per-stream window binds a single
// stream even when the connection window is large.
func TestStreamFlowControlPerStream(t *testing.T) {
	cfg := core.DefaultSinglePathConfig()
	cfg.ConnWindow = 1 << 30
	cfg.StreamWindow = 128 << 10
	h := newHarness(t, cfg, cfg, symSpecs(50, 10*time.Millisecond))
	h.listener.OnConnection(func(c *core.Conn) {
		c.OnStreamOpen(func(s *core.Stream) {
			s.OnData(func() {
				if n := s.Readable(); n > 0 {
					s.Read(n)
				}
				if s.Finished() {
					s.WriteSynthetic(2 << 20)
					s.Close()
				}
			})
		})
	})
	var resp *core.Stream
	h.client.OnHandshakeComplete(func() {
		s := h.client.OpenStream()
		resp = s
		s.Write([]byte("go"))
		s.Close()
	})
	h.run(t, 20*time.Second)
	if got := resp.BytesReceived(); got > 128<<10 {
		t.Fatalf("stream window exceeded: %d", got)
	}
}
