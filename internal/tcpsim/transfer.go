package tcpsim

import (
	"fmt"
	"time"

	"mpquic/internal/netem"
	"mpquic/internal/sim"
	"mpquic/internal/stream"
	"mpquic/internal/trace"
)

// --- handshake ---

func (c *Conn) onHandshakeTimeout() {
	if c.closed || c.state == hsEstablished {
		return
	}
	c.est.Backoff()
	switch c.state {
	case hsSynSent:
		c.sendSegment(&Segment{SYN: true, Window: c.cfg.RecvWindow})
	case hsSynReceived:
		c.sendSegment(&Segment{SYN: true, ACK: true, Window: c.cfg.RecvWindow})
	case hsTLSClientHello:
		c.sendSegment(&Segment{ACK: true, Ctl: CtlTLSClient1, Window: c.cfg.RecvWindow})
	case hsTLSServerDone:
		c.sendSegment(&Segment{ACK: true, Ctl: CtlTLSServer1, Window: c.cfg.RecvWindow})
	case hsTLSClientFin:
		c.sendSegment(&Segment{ACK: true, Ctl: CtlTLSClient2, Window: c.cfg.RecvWindow})
	}
	c.hsTimer.ResetAfter(c.est.RTO())
}

// handleHandshake advances the connection-setup state machine. It
// reports whether the segment was purely a handshake message.
func (c *Conn) handleHandshake(seg *Segment, sentAt time.Duration) bool {
	switch {
	case seg.SYN && seg.ACK: // client got SYN-ACK
		if c.state != hsSynSent {
			return true
		}
		c.est.Update(c.now()-sentAt, 0)
		if c.cfg.TLS {
			c.state = hsTLSClientHello
			c.sendSegment(&Segment{ACK: true, Ctl: CtlTLSClient1, Window: c.cfg.RecvWindow})
			c.hsTimer.ResetAfter(c.est.RTO())
		} else {
			c.sendSegment(&Segment{ACK: true, Window: c.cfg.RecvWindow})
			c.becomeEstablished()
		}
		return true
	case seg.SYN: // server got SYN (or a retransmitted SYN)
		c.sendSegment(&Segment{SYN: true, ACK: true, Window: c.cfg.RecvWindow})
		c.hsTimer.ResetAfter(c.est.RTO())
		return true
	}
	switch seg.Ctl {
	case CtlTLSClient1: // server
		if c.state == hsSynReceived || c.state == hsTLSServerDone {
			c.state = hsTLSServerDone
			c.sendSegment(&Segment{ACK: true, Ctl: CtlTLSServer1, Window: c.cfg.RecvWindow})
			c.hsTimer.ResetAfter(c.est.RTO())
		}
		return true
	case CtlTLSServer1: // client
		if c.state == hsTLSClientHello {
			c.state = hsTLSClientFin
			c.est.Update(c.now()-sentAt, 0)
			c.sendSegment(&Segment{ACK: true, Ctl: CtlTLSClient2, Window: c.cfg.RecvWindow})
			c.hsTimer.ResetAfter(c.est.RTO())
		}
		return true
	case CtlTLSClient2: // server
		if c.state == hsTLSServerDone {
			c.sendSegment(&Segment{ACK: true, Ctl: CtlTLSServer2, Window: c.cfg.RecvWindow})
			c.becomeEstablished()
		} else if c.state == hsEstablished {
			// Client flight was retransmitted: our final flight got
			// lost; resend it.
			c.sendSegment(&Segment{ACK: true, Ctl: CtlTLSServer2, Window: c.cfg.RecvWindow})
		}
		return true
	case CtlTLSServer2: // client
		if c.state == hsTLSClientFin {
			c.est.Update(c.now()-sentAt, 0)
			c.becomeEstablished()
		}
		return true
	}
	// Server completing the non-TLS 3WHS on the client's bare ACK.
	if c.state == hsSynReceived && seg.ACK && !c.cfg.TLS {
		c.becomeEstablished()
		return seg.Len == 0 && !seg.FIN
	}
	if c.state == hsSynReceived && (seg.Len > 0 || seg.FIN) {
		// Data implies the handshake completed at the peer.
		c.becomeEstablished()
		return false
	}
	return false
}

func (c *Conn) becomeEstablished() {
	if c.state == hsEstablished {
		return
	}
	c.state = hsEstablished
	c.hsTimer.Stop()
	c.est.ResetBackoff()
	c.Stats.EstablishedAt = c.now()
	c.trace(trace.Event{Type: trace.HandshakeDone})
	if c.onEstablished != nil {
		c.onEstablished()
	}
	c.trySend()
}

// --- receiving ---

// HandleDatagram implements netem.Handler.
func (c *Conn) HandleDatagram(dg netem.Datagram) {
	if c.closed {
		return
	}
	seg, ok := dg.Payload.(*Segment)
	if !ok {
		return
	}
	c.lastRecvTime = c.now()
	c.Stats.SegmentsRcvd++

	// Track the peer's receive window from every segment, including
	// handshake flights (the SYN-ACK carries the first window).
	if lim := seg.AckNum + seg.Window; lim > c.peerLimit {
		c.peerLimit = lim
	}

	if c.state != hsEstablished || seg.SYN || seg.Ctl != CtlNone {
		// sentAt approximation for handshake RTT samples: stop-and-
		// wait flights measure from the last (re)send; we use the RTO
		// timer's arm time via est — simpler: measure from when we
		// sent our outstanding flight (tracked by hsSentAt).
		if c.handleHandshake(seg, c.hsSentAt) {
			return
		}
	}

	// ACK processing (every data/ack segment carries AckNum+Window).
	if seg.ACK {
		c.processAck(seg)
	}
	// Payload processing.
	if seg.Len > 0 || seg.FIN {
		c.processPayload(seg)
	}
	c.trySend()
	c.armTimers()
}

// processAck handles cumulative ack, SACK blocks, loss detection.
func (c *Conn) processAck(seg *Segment) {
	if lim := seg.AckNum + seg.Window; lim > c.peerLimit {
		c.peerLimit = lim
	}
	if seg.AckNum > c.cumAcked {
		c.cumAcked = seg.AckNum
	}
	for _, b := range seg.SACK {
		c.sacked.Add(b.Start, b.End)
	}
	// The scoreboard below the cumulative ack is dead weight; pruning
	// it keeps Contains cheap on long transfers.
	c.sacked.Remove(0, c.cumAcked)
	maxCover := c.cumAcked
	if ivs := c.sacked.Intervals(); len(ivs) > 0 {
		if end := ivs[len(ivs)-1].End; end > maxCover {
			maxCover = end
		}
	}
	// Settle records and collect RTT samples / cc credit. Fresh-data
	// records are in increasing seqStart order, so once past maxCover
	// only out-of-order retransmission records can still match.
	var newlyAckedBytes int
	progress := false
	rtxLeft := c.liveRtx
	for _, r := range c.records {
		if r.settled {
			continue
		}
		if r.isRtx {
			rtxLeft--
		}
		if r.seqStart >= maxCover {
			if rtxLeft <= 0 && !r.isRtx {
				break // nothing later can be covered
			}
			continue // beyond everything acknowledged: cannot be covered
		}
		var covered bool
		if r.fin {
			// The FIN consumes one sequence number past the data.
			covered = c.cumAcked >= r.seqEnd+1
			if covered {
				c.finAcked = true
			}
		} else {
			covered = r.seqEnd <= c.cumAcked ||
				(r.seqStart < r.seqEnd && c.sacked.Contains(r.seqStart, r.seqEnd))
		}
		if !covered {
			continue
		}
		r.settled = true
		progress = true
		if r.isRtx {
			c.liveRtx--
		}
		c.bytesInFlight -= r.wireSize
		newlyAckedBytes += int(r.seqEnd - r.seqStart)
		if r.txSeq > c.highestAckTx || !c.hasAckTx {
			c.highestAckTx = r.txSeq
			c.hasAckTx = true
			// Karn's algorithm: never sample retransmissions.
			if !r.isRtx {
				c.est.Update(c.now()-r.sentTime, 0)
			}
		}
	}
	if progress {
		c.est.ResetBackoff()
		c.lastProgress = c.now() // ack progress restarts the RTO timer
		c.cc.OnPacketAcked(newlyAckedBytes, c.est.SmoothedRTT())
	}
	// FACK loss detection: lost when dupThresh later transmissions
	// are acked.
	var lostRecords []*sendRecord
	if c.hasAckTx {
		for _, r := range c.records {
			if r.txSeq+dupThresh > c.highestAckTx {
				break // records are in transmission order
			}
			if r.settled {
				continue
			}
			r.settled = true
			if r.isRtx {
				c.liveRtx--
			}
			c.bytesInFlight -= r.wireSize
			lostRecords = append(lostRecords, r)
		}
	}
	if len(lostRecords) > 0 {
		c.Stats.FastRetransmit++
		c.Stats.SegmentsLost += uint64(len(lostRecords))
		var largestTx uint64
		for _, r := range lostRecords {
			largestTx = max(largestTx, r.txSeq)
			c.trace(trace.Event{Type: trace.PacketLost, PN: r.txSeq, Size: r.wireSize})
			c.requeueRecord(r)
		}
		if !c.hasCutback || largestTx >= c.cutbackTx {
			c.cutbackTx = c.nextTxSeq
			c.hasCutback = true
			c.cc.OnCongestionEvent()
		}
	}
	c.trimRecords()
}

// requeueRecord returns a lost record's unacked bytes to the rtx queue.
func (c *Conn) requeueRecord(r *sendRecord) {
	var missing stream.IntervalSet
	missing.Add(r.seqStart, r.seqEnd)
	missing.Remove(0, c.cumAcked)
	for _, iv := range c.sacked.Intervals() {
		missing.Remove(iv.Start, iv.End)
	}
	for _, iv := range missing.Intervals() {
		c.rtxQueue.Add(iv.Start, iv.End)
	}
	if r.fin && !c.finAcked {
		// FIN will be re-attached to the final segment.
		c.finSentSeq = c.writeOffset
	}
}

func (c *Conn) trimRecords() {
	i := 0
	for i < len(c.records) && c.records[i].settled {
		i++
	}
	if i > 0 {
		c.records = c.records[i:]
	}
	if len(c.records) > 64 {
		n := 0
		for _, r := range c.records {
			if r.settled {
				n++
			}
		}
		if n > len(c.records)/2 {
			kept := c.records[:0]
			for _, r := range c.records {
				if !r.settled {
					kept = append(kept, r)
				}
			}
			c.records = kept
		}
	}
}

// processPayload ingests data and schedules acknowledgments.
func (c *Conn) processPayload(seg *Segment) {
	before := c.received.Size()
	if seg.Len > 0 {
		c.received.Add(seg.Seq, seg.End())
	}
	if seg.FIN {
		c.finRecvd = true
		c.finRecvSeq = seg.End()
	}
	newBytes := c.received.Size() - before
	c.unackedSegs++
	outOfOrder := false
	if ivs := c.received.Intervals(); len(ivs) > 0 {
		outOfOrder = c.received.FirstMissingFrom(0) < ivs[len(ivs)-1].End
	}
	if c.unackedSegs >= 2 || outOfOrder || seg.FIN {
		c.ackQueued = true
	} else if c.ackDeadline == 0 {
		c.ackDeadline = c.now() + 25*time.Millisecond
	}
	if c.onData != nil && (newBytes > 0 || seg.FIN) {
		c.onData()
	}
	if c.ackQueued {
		c.sendAck()
	}
}

// --- sending ---

// cumAckNum is the receiver's cumulative acknowledgment number.
func (c *Conn) cumAckNum() uint64 { return c.received.FirstMissingFrom(0) }

// advertisedWindow is the classic TCP window: buffer not yet tied up.
func (c *Conn) advertisedWindow() uint64 {
	used := c.cumAckNum() - c.consumed
	if used >= c.cfg.RecvWindow {
		return 0
	}
	return c.cfg.RecvWindow - used
}

func (c *Conn) ackFields(seg *Segment) {
	seg.ACK = true
	seg.AckNum = c.cumAckNum()
	if c.finRecvd && seg.AckNum >= c.finRecvSeq {
		seg.AckNum = c.finRecvSeq + 1 // ack the FIN
	}
	seg.Window = c.advertisedWindow()
	c.lastAdvWnd = seg.Window
	seg.SACK = buildSACK(c.received.Intervals(), c.cumAckNum())
	c.ackQueued = false
	c.ackDeadline = 0
	c.unackedSegs = 0
}

func (c *Conn) sendAck() {
	seg := &Segment{}
	c.ackFields(seg)
	c.sendSegment(seg)
}

// trySend transmits retransmissions first (in sequence, as TCP must),
// then new data, bounded by the congestion window and the peer's
// receive window.
func (c *Conn) trySend() {
	if c.closed || c.state != hsEstablished {
		return
	}
	for {
		if c.bytesInFlight+MSS+headerBase > c.cc.Cwnd() {
			break
		}
		var seg *Segment
		var rec *sendRecord
		if !c.rtxQueue.Empty() {
			iv := c.rtxQueue.Pop(MSS)
			seg = &Segment{Seq: iv.Start, Len: int(iv.Len()), EchoRTX: true}
			rec = c.makeRecord(iv.Start, iv.End, true)
			c.Stats.Retransmits++
			if c.finQueued && iv.End == c.writeOffset {
				seg.FIN = true
				rec.fin = true
			}
		} else if c.sndNxt < c.writeOffset && c.sndNxt < c.peerLimit {
			n := c.writeOffset - c.sndNxt
			if n > MSS {
				n = MSS
			}
			if room := c.peerLimit - c.sndNxt; n > room {
				n = room
			}
			seg = &Segment{Seq: c.sndNxt, Len: int(n)}
			rec = c.makeRecord(c.sndNxt, c.sndNxt+n, false)
			c.sndNxt += n
			if c.finQueued && c.sndNxt == c.writeOffset {
				seg.FIN = true
				rec.fin = true
				c.finSentSeq = c.writeOffset
			}
		} else if c.finQueued && c.sndNxt == c.writeOffset && !c.finAcked && !c.finInFlight() {
			seg = &Segment{Seq: c.sndNxt, FIN: true}
			rec = c.makeRecord(c.sndNxt, c.sndNxt, false)
			rec.fin = true
			c.finSentSeq = c.writeOffset
		} else {
			break
		}
		c.ackFields(seg) // piggyback ack+window on every data segment
		c.records = append(c.records, rec)
		c.bytesInFlight += rec.wireSize
		c.lastRtxSent = c.now()
		c.sendSegment(seg)
	}
	c.armTimers()
}

func (c *Conn) finInFlight() bool {
	for _, r := range c.records {
		if !r.settled && r.fin {
			return true
		}
	}
	return false
}

func (c *Conn) makeRecord(start, end uint64, isRtx bool) *sendRecord {
	if isRtx {
		c.liveRtx++
	}
	r := &sendRecord{
		txSeq:    c.nextTxSeq,
		seqStart: start,
		seqEnd:   end,
		isRtx:    isRtx,
		sentTime: c.now(),
		wireSize: int(end-start) + headerBase,
	}
	c.nextTxSeq++
	return r
}

// rtoBase is the anchor of the retransmission timer: the later of the
// last transmission and the last acknowledgment progress (Linux
// restarts the RTO on every ACK that advances SND.UNA).
func (c *Conn) rtoBase() time.Duration {
	if c.lastProgress > c.lastRtxSent {
		return c.lastProgress
	}
	return c.lastRtxSent
}

// hsSentAtSet stamps the current handshake flight's departure for RTT
// samples (stop-and-wait, so one timestamp suffices).
func (c *Conn) hsSentAtSet() { c.hsSentAt = c.now() }

func (c *Conn) sendSegment(seg *Segment) {
	if seg.SYN || seg.Ctl != CtlNone {
		c.hsSentAtSet()
	}
	c.Stats.SegmentsSent++
	c.Stats.BytesSent += uint64(seg.WireSize())
	c.net.Send(netem.Datagram{From: c.local, To: c.remote, Size: seg.WireSize(), Payload: seg})
}

// --- timers ---

func (c *Conn) onRTO() {
	if c.closed || c.state != hsEstablished {
		return
	}
	now := c.now()
	if c.cfg.IdleTimeout > 0 && now-c.lastRecvTime >= c.cfg.IdleTimeout {
		c.closeWith(errIdle)
		return
	}
	// Delayed-ack deadline?
	if c.ackDeadline != 0 && now >= c.ackDeadline {
		c.sendAck()
	}
	// Retransmission timeout: go-back — everything outstanding is
	// requeued in sequence, window collapses.
	if c.bytesInFlight > 0 && now-c.rtoBase() >= c.est.RTO() {
		c.Stats.RTOCount++
		for _, r := range c.records {
			if r.settled {
				continue
			}
			r.settled = true
			c.Stats.SegmentsLost++
			c.trace(trace.Event{Type: trace.PacketLost, PN: r.txSeq, Size: r.wireSize})
			if r.isRtx {
				c.liveRtx--
			}
			c.bytesInFlight -= r.wireSize
			c.requeueRecord(r)
		}
		c.trimRecords()
		c.est.Backoff()
		c.cc.OnRTO()
		c.hasCutback = false
		c.trace(trace.Event{Type: trace.RTOFired, Cwnd: c.cc.Cwnd()})
		c.trySend()
	}
	c.armTimers()
}

func (c *Conn) armTimers() {
	if c.closed {
		return
	}
	deadline := time.Duration(1<<62 - 1)
	if c.bytesInFlight > 0 {
		if d := c.rtoBase() + c.est.RTO(); d < deadline {
			deadline = d
		}
	}
	if c.ackDeadline != 0 && c.ackDeadline < deadline {
		deadline = c.ackDeadline
	}
	if c.cfg.IdleTimeout > 0 {
		if d := c.lastRecvTime + c.cfg.IdleTimeout; d < deadline {
			deadline = d
		}
	}
	if deadline == time.Duration(1<<62-1) {
		c.rtoTimer.Stop()
		return
	}
	if deadline < c.now() {
		deadline = c.now()
	}
	c.rtoTimer.Reset(sim.Time(deadline))
}

var errIdle = fmt.Errorf("tcpsim: idle timeout")

func (c *Conn) closeWith(err error) {
	if c.closed {
		return
	}
	c.closed = true
	c.closeErr = err
	c.hsTimer.Stop()
	c.rtoTimer.Stop()
	detail := ""
	if err != nil {
		detail = err.Error()
	}
	c.trace(trace.Event{Type: trace.ConnClosed, Detail: detail})
	if c.onClosed != nil {
		c.onClosed(err)
	}
}
