// Package confine exercises the goroutine-confinement analyzer: a
// //mpq:confined member may only be touched by code whose computed
// domain set is exactly its domain, rooted at //mpq:entry functions.
package confine

type loop struct {
	//mpq:confined run-loop
	state int
	//mpq:crossing
	wake chan struct{}
}

// New builds the loop; composite-literal construction is exempt (the
// value is not shared yet).
func New() *loop {
	return &loop{state: 1, wake: make(chan struct{}, 1)}
}

// Run roots the run-loop domain: the calling goroutine becomes it.
//
//mpq:entry run-loop
func (l *loop) Run() {
	l.state++ // ok: exactly the run-loop domain
	l.helper()
	l.shared()
}

// helper is unexported and reached only from Run: it inherits
// {run-loop} and may touch confined state.
func (l *loop) helper() {
	l.state++
}

// read roots the reader domain.
//
//mpq:entry reader
func (l *loop) read() {
	l.shared()
}

// shared is reached from both Run and read, so its domain set is
// {run-loop, reader} — touching run-loop state from it is a bug.
func (l *loop) shared() {
	l.state++ // want `confined member state \(domain run-loop\) is accessed from code reachable outside its domain \(reader\)`
}

// Poke is exported and unannotated: any goroutine may call it.
func (l *loop) Poke() {
	l.state++ // want `confined member state \(domain run-loop\) is accessed from code reachable outside its domain \(any goroutine\)`
}

// RunBad spawns a goroutine from inside the run loop; the spawned
// literal runs on its own goroutine, not in the run-loop domain.
//
//mpq:entry run-loop
func (l *loop) RunBad() {
	go func() {
		l.state++ // want `confined member state`
	}()
}

// Wake crosses domains through the annotated channel: clean.
func (l *loop) Wake() {
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// Step is a confined function: body in run-loop, callers must already
// be there.
//
//mpq:confined run-loop
func (l *loop) Step() { l.state++ }

// Outside calls the confined function from the any-goroutine domain.
func (l *loop) Outside() {
	l.Step() // want `confined function Step \(domain run-loop\) is called from code reachable outside its domain \(any goroutine\)`
}

// Suppressed demonstrates the audited escape hatch.
func (l *loop) Suppressed() {
	l.state++ //mpqvet:allow confine test-only poke before the loop starts
}

//mpq:confined run-loop
var sharedCounter int

// bump inherits {run-loop} from Run2 below.
func bump() { sharedCounter++ }

//mpq:entry run-loop
func Run2() { bump() }

// BumpAnywhere touches the confined package var from any goroutine.
func BumpAnywhere() {
	sharedCounter++ // want `confined member sharedCounter \(domain run-loop\)`
}
