// Command mpq-sim runs one download scenario with explicit parameters
// and prints a transfer report — handy for exploring single points of
// the design space the paper sweeps.
//
//	mpq-sim -proto mpquic -size 20 \
//	  -cap0 10 -rtt0 30ms -queue0 50ms -loss0 0 \
//	  -cap1 5  -rtt1 60ms -queue1 80ms -loss1 0.01
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mpquic/internal/expdesign"
	"mpquic/internal/netem"
)

func main() {
	var (
		proto  = flag.String("proto", "mpquic", "protocol: tcp, quic, mptcp, mpquic")
		sizeMB = flag.Float64("size", 20, "transfer size in MB")
		start  = flag.Int("start", 0, "initial path (0 or 1)")
		seed   = flag.Uint64("seed", 1, "simulation seed")
		reps   = flag.Int("reps", 1, "repetitions (median reported)")

		cap0   = flag.Float64("cap0", 10, "path 0 capacity [Mbps]")
		rtt0   = flag.Duration("rtt0", 30*time.Millisecond, "path 0 RTT")
		queue0 = flag.Duration("queue0", 50*time.Millisecond, "path 0 max queueing delay")
		loss0  = flag.Float64("loss0", 0, "path 0 random loss rate [0..1]")
		cap1   = flag.Float64("cap1", 10, "path 1 capacity [Mbps]")
		rtt1   = flag.Duration("rtt1", 30*time.Millisecond, "path 1 RTT")
		queue1 = flag.Duration("queue1", 50*time.Millisecond, "path 1 max queueing delay")
		loss1  = flag.Float64("loss1", 0, "path 1 random loss rate [0..1]")
	)
	flag.Parse()

	var p expdesign.Protocol
	switch *proto {
	case "tcp":
		p = expdesign.ProtoTCP
	case "quic":
		p = expdesign.ProtoQUIC
	case "mptcp":
		p = expdesign.ProtoMPTCP
	case "mpquic":
		p = expdesign.ProtoMPQUIC
	default:
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *proto)
		os.Exit(2)
	}

	sc := expdesign.Scenario{Class: "cli"}
	sc.Paths[0] = netem.PathSpec{CapacityMbps: *cap0, RTT: *rtt0, QueueDelay: *queue0, LossRate: *loss0}
	sc.Paths[1] = netem.PathSpec{CapacityMbps: *cap1, RTT: *rtt1, QueueDelay: *queue1, LossRate: *loss1}
	size := uint64(*sizeMB * (1 << 20))

	res := expdesign.RunMedian(sc, p, size, *start, *reps, *seed)
	fmt.Printf("scenario: %s\n", sc)
	fmt.Printf("protocol: %v (start path %d)\n", p, *start)
	if res.Completed {
		fmt.Printf("completed in %v — goodput %.2f Mbps\n",
			res.Elapsed.Round(time.Millisecond), res.GoodputBps/1e6)
	} else {
		fmt.Printf("DID NOT COMPLETE within %v — received %d of %d bytes (%.2f Mbps)\n",
			res.Elapsed.Round(time.Second), res.BytesRecvd, size, res.GoodputBps/1e6)
		os.Exit(1)
	}
}
