package dynamics

import (
	"math"
	"testing"

	"mpquic/internal/sim"
)

func TestGEFromAverageMatchesTargets(t *testing.T) {
	for _, c := range []struct{ loss, burst float64 }{
		{0.01, 2}, {0.025, 8}, {0.05, 16}, {0.2, 4},
	} {
		cfg := GEFromAverage(c.loss, c.burst)
		if got := cfg.AverageLoss(); math.Abs(got-c.loss) > 1e-12 {
			t.Fatalf("GEFromAverage(%v,%v): average loss %v", c.loss, c.burst, got)
		}
		if got := 1 / cfg.PBadGood; math.Abs(got-c.burst) > 1e-9 {
			t.Fatalf("GEFromAverage(%v,%v): mean burst %v", c.loss, c.burst, got)
		}
		if cfg.LossGood != 0 || cfg.LossBad != 1 {
			t.Fatalf("canonical GE has LossGood=0, LossBad=1, got %+v", cfg)
		}
	}
}

func TestGEStationaryLossRateConverges(t *testing.T) {
	const target, burst = 0.05, 8.0
	g := NewGilbertElliott(sim.NewRand(11), GEFromAverage(target, burst))
	const n = 200_000
	drops := 0
	for i := 0; i < n; i++ {
		if g.Drop(1000) {
			drops++
		}
	}
	rate := float64(drops) / n
	if rate < 0.8*target || rate > 1.2*target {
		t.Fatalf("empirical loss %v, want ~%v (p·π_bad)", rate, target)
	}
	if g.Packets != n || g.Drops != uint64(drops) {
		t.Fatalf("counters %d/%d, want %d/%d", g.Packets, g.Drops, n, drops)
	}
}

// meanRun returns the mean length of runs of consecutive true values.
func meanRun(seq []bool) float64 {
	runs, total, cur := 0, 0, 0
	for _, v := range seq {
		if v {
			cur++
			continue
		}
		if cur > 0 {
			runs++
			total += cur
			cur = 0
		}
	}
	if cur > 0 {
		runs++
		total += cur
	}
	if runs == 0 {
		return 0
	}
	return float64(total) / float64(runs)
}

func TestGEBurstsLongerThanBernoulliAtEqualLoss(t *testing.T) {
	const avg, burst, n = 0.05, 8.0, 200_000
	ge := NewGilbertElliott(sim.NewRand(3), GEFromAverage(avg, burst))
	be := NewBernoulli(sim.NewRand(4), avg)
	geSeq := make([]bool, n)
	beSeq := make([]bool, n)
	for i := 0; i < n; i++ {
		geSeq[i] = ge.Drop(1000)
		beSeq[i] = be.Drop(1000)
	}
	geRun, beRun := meanRun(geSeq), meanRun(beSeq)
	// Bernoulli mean run at 5% is ~1/(1−p) ≈ 1.05; the GE chain's is
	// its mean Bad sojourn ≈ 8. Require a wide, stable margin.
	if geRun < 4*beRun {
		t.Fatalf("GE mean burst %v not ≫ Bernoulli %v at equal average loss", geRun, beRun)
	}
	if beRun > 1.5 {
		t.Fatalf("Bernoulli mean run %v implausibly bursty", beRun)
	}
}

func TestGEDeterministicDropSequence(t *testing.T) {
	cfg := GEFromAverage(0.03, 6)
	a := NewGilbertElliott(sim.NewRand(99), cfg)
	b := NewGilbertElliott(sim.NewRand(99), cfg)
	for i := 0; i < 20_000; i++ {
		if a.Drop(100) != b.Drop(100) {
			t.Fatalf("same seed diverged at packet %d", i)
		}
	}
	c := NewGilbertElliott(sim.NewRand(100), cfg)
	same := true
	for i := 0; i < 20_000; i++ {
		if a.Drop(100) != c.Drop(100) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical drop sequences")
	}
}

func TestGEFromAverageClampsAndPanics(t *testing.T) {
	// Burst below one packet clamps to one (degenerate, Bernoulli-ish).
	cfg := GEFromAverage(0.1, 0.25)
	if cfg.PBadGood != 1 {
		t.Fatalf("burst clamp: PBadGood %v, want 1", cfg.PBadGood)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("average loss of 1 accepted")
		}
	}()
	GEFromAverage(1, 8)
}
