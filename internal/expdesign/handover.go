package expdesign

import (
	"fmt"
	"time"

	"mpquic/internal/apps"
	"mpquic/internal/core"
	"mpquic/internal/netem"
	"mpquic/internal/netem/dynamics"
	"mpquic/internal/sim"
)

// Handover modes: how the initial path misbehaves from FailAt on.
const (
	// HandoverKill is the paper's §4.3 event — the WiFi path goes
	// permanently down.
	HandoverKill = "kill"
	// HandoverFlap takes the initial path down for Outage every
	// Period, starting at FailAt (a link on the edge of coverage).
	HandoverFlap = "flap"
	// HandoverOscillate keeps the initial path up but oscillates its
	// capacity with the given Period and Depth (WiFi fading).
	HandoverOscillate = "oscillate"
)

// HandoverConfig parameterizes the §4.3 network-handover scenario: a
// smartphone on a bad WiFi (initial, lower latency) and a good
// cellular network; the WiFi misbehaves mid-connection, by default by
// dying outright.
type HandoverConfig struct {
	InitialRTT   time.Duration // paper: 15 ms
	SecondRTT    time.Duration // paper: 25 ms
	CapacityMbps float64
	FailAt       time.Duration // paper: 3 s
	Duration     time.Duration
	// PathsFrameOnFailure toggles the §4.3 optimization (ablation).
	PathsFrameOnFailure bool
	Seed                uint64
	// Mode selects the failure dynamics: HandoverKill (default when
	// empty, the paper's scenario), HandoverFlap or HandoverOscillate.
	Mode string
	// Period and Outage parameterize HandoverFlap (Period also paces
	// HandoverOscillate); Depth is the oscillation amplitude in (0,1).
	Period time.Duration
	Outage time.Duration
	Depth  float64
}

// DefaultHandoverConfig mirrors Fig. 11.
func DefaultHandoverConfig() HandoverConfig {
	return HandoverConfig{
		InitialRTT:          15 * time.Millisecond,
		SecondRTT:           25 * time.Millisecond,
		CapacityMbps:        10,
		FailAt:              3 * time.Second,
		Duration:            15 * time.Second,
		PathsFrameOnFailure: true,
		Seed:                1,
	}
}

// HandoverResult is the Fig. 11 series plus diagnostic counters.
type HandoverResult struct {
	Samples []apps.ReqRespSample
	// ClientMarkedPF reports whether the client detected the failure.
	ClientMarkedPF bool
	// ServerSawPathsFrame reports whether the PATHS frame reached the
	// server (the mechanism that spares it an RTO, §4.3).
	ServerSawPathsFrame bool
}

// handoverScript builds the dynamics script of the configured mode.
func handoverScript(hc HandoverConfig) dynamics.Script {
	switch hc.Mode {
	case "", HandoverKill:
		return dynamics.KillAt(0, hc.FailAt)
	case HandoverFlap:
		return dynamics.Flap(0, hc.FailAt, hc.Outage, hc.Period)
	case HandoverOscillate:
		s := dynamics.OscillateRate(0, hc.CapacityMbps, hc.Depth, hc.Period)
		// Shift the cycle so the fading starts at FailAt.
		for i := range s.Events {
			s.Events[i].At += hc.FailAt
		}
		return s
	default:
		panic(fmt.Sprintf("expdesign: unknown handover mode %q", hc.Mode))
	}
}

// RunHandover executes the §4.3 request/response scenario over MPQUIC
// and returns the delay-vs-time series of Fig. 11. The initial path's
// misbehaviour is a netem/dynamics script selected by Mode; the
// default reproduces the paper's hard failure exactly.
func RunHandover(hc HandoverConfig) HandoverResult {
	clock := sim.NewClock()
	clock.Limit = 100_000_000
	tp := netem.NewTwoPath(clock, sim.NewRand(hc.Seed), [2]netem.PathSpec{
		{CapacityMbps: hc.CapacityMbps, RTT: hc.InitialRTT, QueueDelay: 100 * time.Millisecond},
		{CapacityMbps: hc.CapacityMbps, RTT: hc.SecondRTT, QueueDelay: 100 * time.Millisecond},
	})
	cfg := core.DefaultConfig()
	cfg.PathsFrameOnFailure = hc.PathsFrameOnFailure
	cfg.HandshakeSeed = hc.Seed

	lis := core.Listen(tp.Net, cfg, tp.ServerAddrs[:])
	var res HandoverResult
	apps.NewEchoServerWithPathsHook(lis, func() { res.ServerSawPathsFrame = true })

	client := core.Dial(tp.Net, cfg, core.NewConnID(hc.Seed), tp.ClientAddrs[:], tp.ServerAddrs[:])
	rr := apps.NewReqRespClient(client, clock, hc.Duration)
	handoverScript(hc).Apply(clock, tp)
	clock.RunUntil(sim.Time(hc.Duration + 5*time.Second))

	res.Samples = rr.Samples()
	if p0 := client.PathByID(0); p0 != nil {
		res.ClientMarkedPF = p0.PotentiallyFailed()
	}
	return res
}
