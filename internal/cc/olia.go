package cc

import "time"

// Olia coordinates the OLIA coupled congestion controller (Khalili et
// al., CoNEXT 2012) across the paths of one multipath connection. The
// paper integrates OLIA in MPQUIC because "it provides good
// performance with MPTCP" (§3, Congestion Control); the evaluation
// uses it for both MPTCP and MPQUIC.
//
// Per ACK on path r, the window grows by
//
//	w_r += ( (w_r/rtt_r²) / (Σ_p w_p/rtt_p)² + α_r/w_r ) · acked_bytes·mss
//
// (in byte units) where α_r re-balances between the paths currently
// "best" by loss-free throughput (ℓ_p²/rtt_p) and the paths with the
// largest windows. On loss, the affected path halves like NewReno.
type Olia struct {
	mss   int
	paths []*OliaPath
}

// NewOlia creates a coordinator for windows of the given MSS.
func NewOlia(mss int) *Olia {
	return &Olia{mss: mss}
}

// OliaPath is the per-path controller handle; it implements Controller.
type OliaPath struct {
	o *Olia

	cwnd     int
	ssthresh int
	maxCwnd  int
	srtt     time.Duration

	// l1 is bytes acked since the last loss; l2 bytes acked between
	// the previous two losses. ℓ_r = max(l1, l2) per the OLIA paper.
	l1, l2 float64
	closed bool
}

// AddPath registers a new path with the coordinator and returns its
// controller.
func (o *Olia) AddPath() *OliaPath {
	p := &OliaPath{
		o:        o,
		cwnd:     InitialWindowPackets * o.mss,
		ssthresh: 1 << 30,
		maxCwnd:  1 << 30,
		srtt:     100 * time.Millisecond, // placeholder until sampled
	}
	o.paths = append(o.paths, p)
	return p
}

// Paths returns the live (non-closed) path controllers.
func (o *Olia) Paths() []*OliaPath {
	var out []*OliaPath
	for _, p := range o.paths {
		if !p.closed {
			out = append(out, p)
		}
	}
	return out
}

// loss-free throughput proxy: ℓ_r² / rtt_r.
func (p *OliaPath) rate() float64 {
	l := p.l1
	if p.l2 > l {
		l = p.l2
	}
	if l == 0 {
		l = float64(p.o.mss) // fresh path: nonzero floor
	}
	return l * l / p.srtt.Seconds()
}

// alpha computes α_r for path p given the current path set.
func (o *Olia) alpha(p *OliaPath) float64 {
	live := o.Paths()
	if len(live) < 2 {
		return 0
	}
	// Find the set of best paths (max ℓ²/rtt) and max-window paths.
	bestRate, maxW := 0.0, 0
	for _, q := range live {
		if r := q.rate(); r > bestRate {
			bestRate = r
		}
		if q.cwnd > maxW {
			maxW = q.cwnd
		}
	}
	var collected, maxWPaths []*OliaPath
	for _, q := range live {
		isBest := q.rate() >= bestRate*(1-1e-9)
		hasMaxW := q.cwnd == maxW
		if isBest && !hasMaxW {
			collected = append(collected, q)
		}
		if hasMaxW {
			maxWPaths = append(maxWPaths, q)
		}
	}
	n := float64(len(live))
	if len(collected) > 0 {
		for _, q := range collected {
			if q == p {
				return 1 / (n * float64(len(collected)))
			}
		}
		for _, q := range maxWPaths {
			if q == p {
				return -1 / (n * float64(len(maxWPaths)))
			}
		}
	}
	return 0
}

// SetMaxCwnd clamps the path window.
func (p *OliaPath) SetMaxCwnd(b int) { p.maxCwnd = b }

// Close removes the path from coupling.
func (p *OliaPath) Close() { p.closed = true }

func (p *OliaPath) Name() string           { return "olia" }
func (p *OliaPath) Cwnd() int              { return p.cwnd }
func (p *OliaPath) InSlowStart() bool      { return p.cwnd < p.ssthresh }
func (p *OliaPath) OnPacketSent(bytes int) {}

func (p *OliaPath) OnPacketAcked(bytes int, rtt time.Duration) {
	if rtt > 0 {
		p.srtt = rtt
	}
	p.l1 += float64(bytes)
	if p.InSlowStart() {
		p.cwnd += bytes
		if p.cwnd > p.maxCwnd {
			p.cwnd = p.maxCwnd
		}
		return
	}
	mss := float64(p.o.mss)
	rttSec := p.srtt.Seconds()
	if rttSec <= 0 {
		rttSec = 1e-3
	}
	sum := 0.0
	for _, q := range p.o.Paths() {
		qr := q.srtt.Seconds()
		if qr <= 0 {
			qr = 1e-3
		}
		sum += float64(q.cwnd) / mss / qr
	}
	if sum <= 0 {
		return
	}
	w := float64(p.cwnd) / mss // window in packets
	inc := (w/(rttSec*rttSec))/(sum*sum) + p.o.alpha(p)/w
	// inc is in packets per packet acked; scale to the acked bytes.
	deltaBytes := inc * float64(bytes)
	if deltaBytes > float64(bytes) {
		deltaBytes = float64(bytes)
	}
	p.cwnd += int(deltaBytes)
	if p.cwnd < MinWindowPackets*p.o.mss {
		p.cwnd = MinWindowPackets * p.o.mss
	}
	if p.cwnd > p.maxCwnd {
		p.cwnd = p.maxCwnd
	}
}

func (p *OliaPath) OnCongestionEvent() {
	p.l2 = p.l1
	p.l1 = 0
	p.cwnd /= 2
	if p.cwnd < MinWindowPackets*p.o.mss {
		p.cwnd = MinWindowPackets * p.o.mss
	}
	p.ssthresh = p.cwnd
}

func (p *OliaPath) OnRTO() {
	p.l2 = p.l1
	p.l1 = 0
	p.ssthresh = p.cwnd / 2
	if p.ssthresh < MinWindowPackets*p.o.mss {
		p.ssthresh = MinWindowPackets * p.o.mss
	}
	p.cwnd = MinWindowPackets * p.o.mss
}
