// Command mpq-bench regenerates every table and figure of the paper's
// evaluation (§4): the Table 1 experimental design, the time-ratio
// CDFs of Figs. 3, 5, 8 and 9, the experimental-aggregation-benefit
// boxes of Figs. 4, 6, 7 and 10, and the Fig. 11 handover series.
//
// The default settings subsample the grids for quick runs; pass -full
// for the paper's 253 scenarios × 3 repetitions per class (hours of
// CPU time on a small machine).
//
// Usage:
//
//	mpq-bench                  # every experiment, subsampled
//	mpq-bench -exp fig3        # one experiment
//	mpq-bench -full -exp fig4  # paper-scale grid for one figure
//	mpq-bench -cdf -exp fig5   # also dump raw CDF series for plotting
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mpquic/internal/expdesign"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: all, table1, fig3..fig11")
		scenarios = flag.Int("scenarios", 40, "scenarios per class (paper: 253)")
		reps      = flag.Int("reps", 1, "repetitions per point, median taken (paper: 3)")
		workers   = flag.Int("workers", 0, "parallel simulations (default GOMAXPROCS)")
		full      = flag.Bool("full", false, "paper-scale: 253 scenarios, 3 repetitions")
		dumpCDF   = flag.Bool("cdf", false, "dump raw CDF series for the ratio figures")
		progress  = flag.Bool("progress", true, "print progress to stderr")
	)
	flag.Parse()
	if *full {
		*scenarios = expdesign.PaperScenarioCount
		*reps = expdesign.Repetitions
	}

	run := func(name string) bool { return *exp == "all" || *exp == name }
	prog := func(done, total int) {
		if *progress {
			fmt.Fprintf(os.Stderr, "\r  %d/%d scenarios", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	grid := func(class expdesign.Class, size uint64) expdesign.FigureData {
		start := time.Now()
		fd := expdesign.RunGrid(expdesign.GridConfig{
			Class:     class,
			Scenarios: *scenarios,
			Size:      size,
			Reps:      *reps,
			Workers:   *workers,
			Progress:  prog,
		})
		if *progress {
			fmt.Fprintf(os.Stderr, "  (%s grid took %v)\n", class.Name, time.Since(start).Round(time.Second))
		}
		return fd
	}
	dump := func(fd expdesign.FigureData) {
		if !*dumpCDF {
			return
		}
		single, multi := fd.TimeRatios()
		fmt.Println("# CDF series: Time TCP/QUIC")
		fmt.Print(expdesign.CDFSeries(single))
		fmt.Println("# CDF series: Time MPTCP/MPQUIC")
		fmt.Print(expdesign.CDFSeries(multi))
	}

	if run("table1") {
		fmt.Println(expdesign.ReportTable1(*scenarios))
	}

	// Figures 3-8: 20 MB downloads across the four classes. One grid
	// per class serves both its CDF figure and its benefit figure.
	type figPair struct {
		class    expdesign.Class
		cdfName  string
		cdfTitle string
		aggName  string
		aggTitle string
	}
	pairs := []figPair{
		{expdesign.LowBDPNoLoss, "fig3", "Figure 3", "fig4", "Figure 4"},
		{expdesign.LowBDPLosses, "fig5", "Figure 5", "fig6", "Figure 6"},
		{expdesign.HighBDPNoLoss, "", "", "fig7", "Figure 7"},
		{expdesign.HighBDPLosses, "fig8", "Figure 8", "", ""},
	}
	for _, p := range pairs {
		wantCDF := p.cdfName != "" && run(p.cdfName)
		wantAgg := p.aggName != "" && run(p.aggName)
		if !wantCDF && !wantAgg {
			continue
		}
		fd := grid(p.class, expdesign.LargeTransfer)
		if wantCDF {
			fmt.Println(expdesign.ReportTimeRatioCDF(fd, p.cdfTitle))
			dump(fd)
		}
		if wantAgg {
			fmt.Println(expdesign.ReportAggBenefit(fd, p.aggTitle))
		}
	}

	// Figures 9-10: 256 KB short transfers, low-BDP-no-loss.
	if run("fig9") || run("fig10") {
		fd := grid(expdesign.LowBDPNoLoss, expdesign.ShortTransfer)
		if run("fig9") {
			fmt.Println(expdesign.ReportTimeRatioCDF(fd, "Figure 9"))
			dump(fd)
		}
		if run("fig10") {
			fmt.Println(expdesign.ReportAggBenefit(fd, "Figure 10"))
		}
	}

	// Figure 11: network handover.
	if run("fig11") {
		res := expdesign.RunHandover(expdesign.DefaultHandoverConfig())
		fmt.Println(expdesign.ReportHandover(res, "Figure 11"))
	}

	if !strings.HasPrefix(*exp, "fig") && *exp != "all" && *exp != "table1" {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
