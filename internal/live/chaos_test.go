package live_test

// Adversarial socket-fault tests: the live analog of the simulator's
// Fig. 11 handover experiments, driven by internal/faultnet instead of
// emulated link scripts. Each test injects a deterministic fault
// pattern into the client's sockets and asserts the driver's health
// ladder (internal/live/fault.go) keeps the transfer — or fails it in
// exactly the typed way the ladder promises.

import (
	"errors"
	"net/netip"
	"os"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"mpquic/internal/core"
	"mpquic/internal/faultnet"
	"mpquic/internal/live"
	"mpquic/internal/trace"
)

// newChaosDriver is newDriver with driver options (fault wrappers,
// rebind budgets, tracers).
func newChaosDriver(t *testing.T, n int, opts ...live.Option) *live.Driver {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	d, err := live.NewDriver(addrs, opts...)
	if err != nil {
		if errors.Is(err, os.ErrPermission) || strings.Contains(err.Error(), "not permitted") ||
			strings.Contains(err.Error(), "permission denied") {
			t.Skipf("UDP sockets unavailable in this sandbox: %v", err)
		}
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// dialOn opens a client connection over an existing chaos driver.
func dialOn(t *testing.T, d *live.Driver, server *live.Driver, nPaths int, connID uint64) *core.Conn {
	t.Helper()
	return core.Dial(d, liveConfig(nPaths), core.NewConnID(connID), d.LocalAddrs(), server.LocalAddrs())
}

// wallClock returns a faultnet clock anchored at the call.
func wallClock() faultnet.Clock {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}

// injectorWrapper adapts a faultnet injector to live.WithSocketWrapper.
func injectorWrapper(inj *faultnet.Injector) live.Option {
	return live.WithSocketWrapper(func(path int, c live.UDPConn) live.UDPConn {
		return inj.Wrap(path, c)
	})
}

// eventCollector records driver trace events (driven from the test
// goroutine inside DownloadWith, so no locking needed).
type eventCollector struct{ types []trace.EventType }

func (ec *eventCollector) Trace(ev trace.Event) { ec.types = append(ec.types, ev.Type) }

func (ec *eventCollector) count(t trace.EventType) int {
	n := 0
	for _, et := range ec.types {
		if et == t {
			n++
		}
	}
	return n
}

// flakyConn returns exactly one injected transient read error, then
// delegates — the minimal reproduction of the seed bug where any
// reader error killed the whole driver.
type flakyConn struct {
	live.UDPConn
	errsLeft atomic.Int32
}

func (c *flakyConn) ReadFromUDPAddrPort(b []byte) (int, netip.AddrPort, error) {
	if c.errsLeft.Add(-1) >= 0 {
		return 0, netip.AddrPort{}, os.NewSyscallError("recvfrom", syscall.ENOBUFS)
	}
	return c.UDPConn.ReadFromUDPAddrPort(b)
}

// TestTransientReadErrorDoesNotKillDriver is the satellite regression
// test: one injected ENOBUFS on the client's socket used to be
// terminal for the driver; now it is retried in place and counted.
func TestTransientReadErrorDoesNotKillDriver(t *testing.T) {
	server := startGetServer(t, 1)
	client := newChaosDriver(t, 1, live.WithSocketWrapper(func(path int, c live.UDPConn) live.UDPConn {
		fc := &flakyConn{UDPConn: c}
		fc.errsLeft.Store(1)
		return fc
	}))
	conn := dialOn(t, client, server, 1, 40)

	res, err := live.Download(client, conn, 256<<10, 20*time.Second)
	if err != nil {
		t.Fatalf("one transient read error killed the transfer: %v", err)
	}
	if res.Size != 256<<10 {
		t.Fatalf("Size = %d", res.Size)
	}
	if client.Stats.TransientReadErrs == 0 {
		t.Fatalf("TransientReadErrs = 0, want the injected error counted")
	}
	if client.Stats.PathsFailedLive != 0 || client.Stats.Rebinds != 0 {
		t.Fatalf("transient error escalated: %+v", client.Stats)
	}
}

// TestCorruptFloodCountedNotFatal runs a transfer with 5%% of ingress
// datagrams bit-flipped: every corrupted packet must be dropped and
// counted (AEAD or header rejection), never panic or kill the driver.
func TestCorruptFloodCountedNotFatal(t *testing.T) {
	server := startGetServer(t, 1)
	inj := faultnet.New(42, faultnet.WithRates(faultnet.Rates{Corrupt: 0.05}))
	client := newChaosDriver(t, 1, injectorWrapper(inj))
	conn := dialOn(t, client, server, 1, 41)

	res, err := live.Download(client, conn, 1<<20, 30*time.Second)
	if err != nil {
		t.Fatalf("corrupt flood killed the transfer: %v", err)
	}
	if res.Size != 1<<20 {
		t.Fatalf("Size = %d", res.Size)
	}
	if client.Stats.CorruptDrops == 0 {
		t.Fatalf("CorruptDrops = 0 after a 5%% corrupt flood; Stats = %+v", client.Stats)
	}
}

// TestTransientErrorStorm pushes 20%% transient read and write error
// rates through a transfer: the ladder must absorb all of it without a
// single rebind or path failure.
func TestTransientErrorStorm(t *testing.T) {
	server := startGetServer(t, 1)
	inj := faultnet.New(7, faultnet.WithRates(faultnet.Rates{ReadErr: 0.2, WriteErr: 0.2}))
	client := newChaosDriver(t, 1, injectorWrapper(inj))
	conn := dialOn(t, client, server, 1, 42)

	res, err := live.Download(client, conn, 512<<10, 30*time.Second)
	if err != nil {
		t.Fatalf("transient storm killed the transfer: %v", err)
	}
	if res.Size != 512<<10 {
		t.Fatalf("Size = %d", res.Size)
	}
	if client.Stats.TransientReadErrs == 0 {
		t.Fatalf("TransientReadErrs = 0 under a 20%% read-error storm")
	}
	if client.Stats.WriteErrors == 0 && client.Stats.NoRoute == 0 {
		t.Fatalf("no write-side faults surfaced under a 20%% write-error storm: %+v", client.Stats)
	}
	if client.Stats.PathsFailedLive != 0 {
		t.Fatalf("transient storm failed a path: %+v", client.Stats)
	}
}

// TestSocketDeathFailsOverMidTransfer is the live Fig. 11 analog: a
// two-path transfer loses one socket permanently mid-flight. The
// transfer must complete over the survivor, with the dead path marked
// failed and the socket lifecycle traced.
func TestSocketDeathFailsOverMidTransfer(t *testing.T) {
	server := startGetServer(t, 2)
	inj := faultnet.New(11,
		faultnet.WithClock(wallClock()),
		faultnet.WithScript(faultnet.KillAt(1, 60*time.Millisecond)))
	var ec eventCollector
	client := newChaosDriver(t, 2,
		injectorWrapper(inj),
		live.WithRebind(2, 30*time.Millisecond),
		live.WithTracer(&ec))
	conn := dialOn(t, client, server, 2, 43)

	const size = 32 << 20
	res, err := live.Download(client, conn, size, 60*time.Second)
	if err != nil {
		t.Fatalf("transfer did not survive losing 1 of 2 sockets: %v", err)
	}
	if res.Size != size {
		t.Fatalf("Size = %d", res.Size)
	}
	if client.Stats.PathsFailedLive != 1 {
		t.Fatalf("PathsFailedLive = %d, want 1; Stats = %+v", client.Stats.PathsFailedLive, client.Stats)
	}
	if client.Stats.SocketsDegraded == 0 {
		t.Fatalf("SocketsDegraded = 0, want the kill surfaced")
	}
	if ec.count(trace.SocketDegraded) == 0 || ec.count(trace.SocketFailed) == 0 {
		t.Fatalf("socket lifecycle not traced: %v", ec.types)
	}
	// The §4.3 failover marker: the dead socket's path went PF.
	pf := 0
	for _, p := range conn.Paths() {
		if p.PotentiallyFailed() {
			pf++
		}
	}
	if pf != 1 {
		t.Fatalf("potentially-failed paths = %d, want exactly the dead one", pf)
	}
}

// TestAllSocketsDeadReturnsErrAllPathsDown kills both sockets of a
// two-path transfer: with the ladders exhausted the driver must die
// with the typed ErrAllPathsDown, not hang until the deadline.
func TestAllSocketsDeadReturnsErrAllPathsDown(t *testing.T) {
	server := startGetServer(t, 2)
	inj := faultnet.New(13,
		faultnet.WithClock(wallClock()),
		faultnet.WithScript(faultnet.KillAt(0, 40*time.Millisecond).And(faultnet.KillAt(1, 50*time.Millisecond))))
	client := newChaosDriver(t, 2,
		injectorWrapper(inj),
		live.WithRebind(1, 10*time.Millisecond))
	conn := dialOn(t, client, server, 2, 44)

	start := time.Now()
	_, err := live.Download(client, conn, 32<<20, 30*time.Second)
	if !errors.Is(err, live.ErrAllPathsDown) {
		t.Fatalf("err = %v, want ErrAllPathsDown", err)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("all-paths-down detection took %v", el)
	}
	if client.Stats.PathsFailedLive != 2 {
		t.Fatalf("PathsFailedLive = %d, want 2", client.Stats.PathsFailedLive)
	}
}

// TestHandshakeUnderBlackhole blackholes the only path from t=0: the
// handshake can never complete, the sockets never *fail* (a blackhole
// is silence, not an error), and the download must end with its own
// deadline as ErrTimeout.
func TestHandshakeUnderBlackhole(t *testing.T) {
	server := startGetServer(t, 1)
	inj := faultnet.New(17,
		faultnet.WithClock(wallClock()),
		faultnet.WithScript(faultnet.Blackhole(0, 0, 0)))
	client := newChaosDriver(t, 1, injectorWrapper(inj))
	conn := dialOn(t, client, server, 1, 45)

	_, err := live.Download(client, conn, 1<<20, 500*time.Millisecond)
	if !errors.Is(err, live.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if client.Stats.PathsFailedLive != 0 {
		t.Fatalf("a blackhole must not fail the socket: %+v", client.Stats)
	}
}

// TestKillAndRestoreRebinds scripts an outage window on the only
// socket: killed at 60ms, bindable again from 250ms. The reader's
// ladder must retry under backoff through the outage, rebind when the
// window closes, and the transfer must complete on the healed socket.
func TestKillAndRestoreRebinds(t *testing.T) {
	server := startGetServer(t, 1)
	inj := faultnet.New(19,
		faultnet.WithClock(wallClock()),
		faultnet.WithScript(faultnet.KillAt(0, 60*time.Millisecond).And(faultnet.RestoreAt(0, 250*time.Millisecond))))
	var ec eventCollector
	client := newChaosDriver(t, 1,
		injectorWrapper(inj),
		live.WithRebind(20, 50*time.Millisecond),
		live.WithTracer(&ec))
	conn := dialOn(t, client, server, 1, 46)

	const size = 32 << 20
	res, err := live.Download(client, conn, size, 60*time.Second)
	if err != nil {
		t.Fatalf("transfer did not survive the kill/restore outage: %v", err)
	}
	if res.Size != size {
		t.Fatalf("Size = %d", res.Size)
	}
	if client.Stats.Rebinds == 0 {
		t.Fatalf("Rebinds = 0, want self-healing through the outage; Stats = %+v", client.Stats)
	}
	if client.Stats.PathsFailedLive != 0 {
		t.Fatalf("the healed socket was marked failed: %+v", client.Stats)
	}
	if ec.count(trace.SocketDegraded) == 0 || ec.count(trace.SocketRebound) == 0 {
		t.Fatalf("rebind lifecycle not traced: %v", ec.types)
	}
}
