package dynamics

import (
	"testing"
	"time"

	"mpquic/internal/netem"
	"mpquic/internal/sim"
	"mpquic/internal/trace"
)

// testTarget is a one-path Target over a single real link, so change
// application (Reconfigure, SetDown) is exercised end to end.
type testTarget struct {
	link *netem.Link
}

func (t testTarget) PathLinks(int) []*netem.Link { return []*netem.Link{t.link} }

func newTestTarget(clock *sim.Clock) testTarget {
	cfg := netem.LinkConfig{RateMbps: 10, Delay: 10 * time.Millisecond, QueueDelay: 100 * time.Millisecond}
	return testTarget{link: netem.NewLink(clock, sim.NewRand(1), "t", cfg, func(netem.Datagram) {})}
}

// sample records fn() at virtual time at.
func sample(clock *sim.Clock, at time.Duration, fn func()) {
	clock.At(sim.Time(at), fn)
}

func TestScriptAppliesEventsInTimestampOrder(t *testing.T) {
	clock := sim.NewClock()
	tg := newTestTarget(clock)
	// Deliberately unsorted event list; Apply must sort a copy.
	s := Script{}.
		Then(2*time.Second, 0, Rate(2)).
		Then(1*time.Second, 0, Rate(5)).
		Then(3*time.Second, 0, Delay(40*time.Millisecond))
	s.Apply(clock, tg)

	var rates []float64
	for _, at := range []time.Duration{500 * time.Millisecond, 1500 * time.Millisecond, 2500 * time.Millisecond} {
		sample(clock, at, func() { rates = append(rates, tg.link.Config().RateMbps) })
	}
	var delayAfter time.Duration
	sample(clock, 3500*time.Millisecond, func() { delayAfter = tg.link.Config().Delay })
	if err := clock.RunUntil(sim.Time(4 * time.Second)); err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 5, 2}
	for i, r := range rates {
		if r != want[i] {
			t.Fatalf("rate sample %d = %v, want %v", i, r, want[i])
		}
	}
	if delayAfter != 40*time.Millisecond {
		t.Fatalf("delay after script = %v, want 40ms", delayAfter)
	}
	// A rate drop must shrink the queue bound too (re-derivation).
	if got := tg.link.QueueCapacityBytes(); got != 25_000 {
		t.Fatalf("queue capacity after 2 Mbps reconfigure = %dB, want 25000B", got)
	}
}

func TestScriptRepeatAndUntilHorizon(t *testing.T) {
	clock := sim.NewClock()
	tg := newTestTarget(clock)
	probe := Script{
		Events: []Event{{At: 100 * time.Millisecond, Path: 0, Change: Rate(10)}},
		Repeat: 100 * time.Millisecond,
		Until:  1 * time.Second,
	}
	// Each Rate(10) leaves the config unchanged but still emits a
	// link_reconfigured event — count those to count applications.
	ctr := trace.NewCounter()
	tg.link.SetTracer(ctr)
	probe.Apply(clock, tg)
	if err := clock.RunUntil(sim.Time(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	applied := ctr.Counts[trace.LinkReconfigured]
	// Events at 100ms..900ms pass the Until=1s horizon; 1s does not.
	if applied != 9 {
		t.Fatalf("repeating script applied %d times, want 9 (Until horizon)", applied)
	}
	if clock.Pending() != 0 {
		t.Fatalf("%d events still pending after horizon", clock.Pending())
	}
}

func TestFlapGeneratorDownUpCycle(t *testing.T) {
	clock := sim.NewClock()
	tg := newTestTarget(clock)
	ctr := trace.NewCounter()
	tg.link.SetTracer(ctr)
	Flap(0, 500*time.Millisecond, 200*time.Millisecond, 1*time.Second).Apply(clock, tg)

	type probe struct {
		at   time.Duration
		down bool
	}
	var got []probe
	for _, at := range []time.Duration{
		400 * time.Millisecond,  // before first outage
		600 * time.Millisecond,  // inside first outage
		800 * time.Millisecond,  // recovered
		1600 * time.Millisecond, // inside second outage (1.5s–1.7s)
		1900 * time.Millisecond, // recovered again
	} {
		at := at
		sample(clock, at, func() { got = append(got, probe{at, tg.link.Down()}) })
	}
	// Bound the unbounded repeat by stopping the clock.
	sample(clock, 2*time.Second, clock.Stop)
	if err := clock.RunUntil(sim.Time(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, false, true, false}
	for i, p := range got {
		if p.down != want[i] {
			t.Fatalf("at %v: down=%v, want %v", p.at, p.down, want[i])
		}
	}
	if ctr.Counts[trace.LinkDown] != 2 || ctr.Counts[trace.LinkUp] != 2 {
		t.Fatalf("trace counts down=%d up=%d, want 2/2",
			ctr.Counts[trace.LinkDown], ctr.Counts[trace.LinkUp])
	}
}

func TestFlapPanicsOnOutageNotShorterThanPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Flap accepted outage == period")
		}
	}()
	Flap(0, 0, time.Second, time.Second)
}

func TestOscillateRateStaysWithinDepthBand(t *testing.T) {
	clock := sim.NewClock()
	tg := newTestTarget(clock)
	const mean, depth = 10.0, 0.5
	s := OscillateRate(0, mean, depth, 800*time.Millisecond)
	s.Until = 4 * time.Second // bound the repeat for the test
	s.Apply(clock, tg)

	var min, max float64 = mean, mean
	for at := 50 * time.Millisecond; at < 4*time.Second; at += 100 * time.Millisecond {
		sample(clock, at, func() {
			r := tg.link.Config().RateMbps
			if r < min {
				min = r
			}
			if r > max {
				max = r
			}
		})
	}
	if err := clock.RunUntil(sim.Time(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	lo, hi := mean*(1-depth), mean*(1+depth)
	if min < lo-1e-9 || max > hi+1e-9 {
		t.Fatalf("oscillation left the band: saw [%v, %v], want within [%v, %v]", min, max, lo, hi)
	}
	// The sinusoid must actually swing: both band edges reached (the
	// 8-step sampling hits sin=±1 exactly at steps 2 and 6).
	if min > lo+1e-9 || max < hi-1e-9 {
		t.Fatalf("oscillation too shallow: saw [%v, %v], want edges [%v, %v]", min, max, lo, hi)
	}
}

func TestOscillateRatePanicsOnBadDepth(t *testing.T) {
	for _, depth := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("OscillateRate accepted depth %v", depth)
				}
			}()
			OscillateRate(0, 10, depth, time.Second)
		}()
	}
}

func TestKillAtAndDegradeAt(t *testing.T) {
	clock := sim.NewClock()
	tg := newTestTarget(clock)
	KillAt(0, 2*time.Second).Apply(clock, tg)
	DegradeAt(0, 1*time.Second, Loss(0.3)).Apply(clock, tg)

	var lossAt1500 float64
	var downAt1500 bool
	sample(clock, 1500*time.Millisecond, func() {
		lossAt1500 = tg.link.Config().LossRate
		downAt1500 = tg.link.Down()
	})
	if err := clock.RunUntil(sim.Time(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if lossAt1500 != 0.3 || downAt1500 {
		t.Fatalf("at 1.5s: loss=%v down=%v, want 0.3/false", lossAt1500, downAt1500)
	}
	if !tg.link.Down() {
		t.Fatal("link still up after KillAt time")
	}
}

func TestScriptOnTwoPathTopologyHitsBothDirections(t *testing.T) {
	clock := sim.NewClock()
	tp := netem.NewTwoPath(clock, sim.NewRand(1), [2]netem.PathSpec{
		{CapacityMbps: 10, RTT: 30 * time.Millisecond, QueueDelay: 100 * time.Millisecond},
		{CapacityMbps: 10, RTT: 30 * time.Millisecond, QueueDelay: 100 * time.Millisecond},
	})
	DegradeAt(1, time.Second, Rate(3)).Apply(clock, tp)
	if err := clock.RunUntil(sim.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if tp.Fwd[1].Config().RateMbps != 3 || tp.Rev[1].Config().RateMbps != 3 {
		t.Fatalf("path 1 rates fwd=%v rev=%v, want 3/3",
			tp.Fwd[1].Config().RateMbps, tp.Rev[1].Config().RateMbps)
	}
	if tp.Fwd[0].Config().RateMbps != 10 || tp.Rev[0].Config().RateMbps != 10 {
		t.Fatal("path 0 touched by a path-1 script")
	}
}

func TestEmptyScriptIsANoOp(t *testing.T) {
	clock := sim.NewClock()
	tg := newTestTarget(clock)
	Script{}.Apply(clock, tg)
	if clock.Pending() != 0 {
		t.Fatal("empty script scheduled events")
	}
}
