package analysis_test

import (
	"testing"

	"mpquic/internal/analysis"
	"mpquic/internal/analysis/analysistest"
)

func TestRingSafety(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.RingSafety, "ringsafety")
}
