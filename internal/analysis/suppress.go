package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression annotation:
//
//	//mpqvet:allow <analyzer> <reason>
//
// placed on the flagged line or on the line directly above it. The
// analyzer name must match an analyzer in the suite and the reason is
// mandatory — suppressions are audited decisions, not escape hatches.
const allowPrefix = "mpqvet:allow"

// allowKey identifies the scope of one annotation: a (file, line)
// suppresses the named analyzer on that line.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// collectAllows scans pkg's comments for //mpqvet:allow annotations.
// It returns the set of (file, line, analyzer) suppressions and an
// error listing any malformed annotation (unknown analyzer, missing
// reason) — a bad allow must fail the build, or typos would silently
// disable checks.
func collectAllows(pkg *Package) (map[allowKey]bool, error) {
	allows := make(map[allowKey]bool)
	var bad []string
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
				if len(fields) < 2 {
					bad = append(bad, fmt.Sprintf("%s: //%s needs \"<analyzer> <reason>\"", pos, allowPrefix))
					continue
				}
				name := fields[0]
				if ByName(name) == nil {
					bad = append(bad, fmt.Sprintf("%s: //%s names unknown analyzer %q", pos, allowPrefix, name))
					continue
				}
				// The annotation covers its own line (trailing comment)
				// and the line below (comment on its own line).
				allows[allowKey{pos.Filename, pos.Line, name}] = true
				allows[allowKey{pos.Filename, pos.Line + 1, name}] = true
			}
		}
	}
	if len(bad) > 0 {
		return nil, fmt.Errorf("%s", strings.Join(bad, "\n"))
	}
	return allows, nil
}

// filterSuppressed drops diagnostics covered by an //mpqvet:allow
// annotation. Malformed annotations surface as the returned error even
// when there are no diagnostics.
func filterSuppressed(pkg *Package, diags []Diagnostic) ([]Diagnostic, error) {
	allows, err := collectAllows(pkg)
	if err != nil {
		return diags, err
	}
	if len(allows) == 0 {
		return diags, nil
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if allows[allowKey{pos.Filename, pos.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept, nil
}

// Position formats a diagnostic for terminal output.
func (d Diagnostic) Format(fset *token.FileSet) string {
	return fmt.Sprintf("%s: %s: %s", fset.Position(d.Pos), d.Analyzer, d.Message)
}
