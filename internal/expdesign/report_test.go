package expdesign

import (
	"strings"
	"testing"
	"time"

	"mpquic/internal/apps"
)

// tinyFigureData builds a synthetic FigureData with known run values.
func tinyFigureData() FigureData {
	mk := func(elapsedS float64, goodputMbps float64) RunResult {
		return RunResult{
			Completed:  true,
			Elapsed:    time.Duration(elapsedS * float64(time.Second)),
			GoodputBps: goodputMbps * 1e6,
		}
	}
	var sr ScenarioResult
	sr.Scenario = Scenario{ID: 0, Class: "synthetic"}
	// TCP slower than QUIC; MPQUIC aggregates fully, MPTCP does not.
	sr.Runs[ProtoTCP] = [2]RunResult{mk(10, 8), mk(20, 4)}
	sr.Runs[ProtoQUIC] = [2]RunResult{mk(8, 10), mk(16, 5)}
	sr.Runs[ProtoMPTCP] = [2]RunResult{mk(9, 9), mk(9.5, 8.5)}
	sr.Runs[ProtoMPQUIC] = [2]RunResult{mk(5.4, 15), mk(5.5, 14.7)}
	return FigureData{Class: "synthetic", Size: 20 << 20, Results: []ScenarioResult{sr}}
}

func TestTimeRatiosComputation(t *testing.T) {
	fd := tinyFigureData()
	single, multi := fd.TimeRatios()
	if len(single) != 2 || len(multi) != 2 {
		t.Fatalf("lengths %d/%d", len(single), len(multi))
	}
	if single[0] != 10.0/8.0 || single[1] != 20.0/16.0 {
		t.Fatalf("single ratios %v", single)
	}
	if multi[0] < 9.0/5.4-1e-6 || multi[0] > 9.0/5.4+1e-6 {
		t.Fatalf("multi ratio %v", multi[0])
	}
}

func TestAggBenefitsSplit(t *testing.T) {
	fd := tinyFigureData()
	best, worst := fd.AggBenefits(FamilyQUIC)
	if len(best) != 1 || len(worst) != 1 {
		t.Fatalf("split %d/%d", len(best), len(worst))
	}
	// Best single path is path 0 (10 Mbps); Gm=15 → EBen = (15-10)/(15-10) = 1.
	if best[0] != 1 {
		t.Fatalf("best-first EBen %v, want 1", best[0])
	}
}

func TestReportTimeRatioCDFFormat(t *testing.T) {
	out := ReportTimeRatioCDF(tinyFigureData(), "Figure T")
	for _, want := range []string{"Figure T", "GET 20 MB", "Time TCP / QUIC", "Time MPTCP / MPQUIC", "median="} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestReportAggBenefitFormat(t *testing.T) {
	out := ReportAggBenefit(tinyFigureData(), "Figure B")
	for _, want := range []string{"Figure B", "MPTCP vs. TCP", "MPQUIC vs. QUIC", "best path first", "worst path first", "EBen>0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestReportTable1Format(t *testing.T) {
	out := ReportTable1(10)
	for _, want := range []string{"Capacity [Mbps]", "0.1", "100", "2000", "2.5", "low-BDP-losses#0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestReportHandoverFormat(t *testing.T) {
	res := HandoverResult{
		Samples: []apps.ReqRespSample{
			{SentAt: 20 * time.Millisecond, Delay: 16 * time.Millisecond},
			{SentAt: 3220 * time.Millisecond, Delay: 226 * time.Millisecond},
		},
		ClientMarkedPF:      true,
		ServerSawPathsFrame: true,
	}
	out := ReportHandover(res, "Fig T")
	for _, want := range []string{"Fig T", "potentially-failed: true", "PATHS frame reached server: true", "226.0", "3.22"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCDFSeriesFormat(t *testing.T) {
	out := CDFSeries([]float64{2, 1})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "1.0000 0.5000") {
		t.Fatalf("first line %q", lines[0])
	}
}

func TestFmtSize(t *testing.T) {
	if fmtSize(20<<20) != "20 MB" || fmtSize(256<<10) != "256 KB" {
		t.Fatal("fmtSize")
	}
}
