package cc

import (
	"testing"
	"time"
)

const mss = 1350

func TestRenoInitialWindow(t *testing.T) {
	r := NewReno(mss)
	if r.Cwnd() != 10*mss {
		t.Fatalf("cwnd %d", r.Cwnd())
	}
	if !r.InSlowStart() {
		t.Fatal("should start in slow start")
	}
}

func TestRenoSlowStartDoublesPerRTT(t *testing.T) {
	r := NewReno(mss)
	w := r.Cwnd()
	// Ack a full window: slow start doubles.
	for b := 0; b < w; b += mss {
		r.OnPacketAcked(mss, 50*time.Millisecond)
	}
	if r.Cwnd() != 2*w {
		t.Fatalf("cwnd %d after window acked, want %d", r.Cwnd(), 2*w)
	}
}

func TestRenoCongestionAvoidanceLinear(t *testing.T) {
	r := NewReno(mss)
	r.OnCongestionEvent() // forces ssthresh = cwnd → CA
	w := r.Cwnd()
	if r.InSlowStart() {
		t.Fatal("still in slow start after event")
	}
	for b := 0; b < w; b += mss {
		r.OnPacketAcked(mss, 0)
	}
	if r.Cwnd() != w+mss {
		t.Fatalf("CA growth %d -> %d, want +1 MSS", w, r.Cwnd())
	}
}

func TestRenoDecreaseAndFloor(t *testing.T) {
	r := NewReno(mss)
	r.OnCongestionEvent()
	if r.Cwnd() != 5*mss {
		t.Fatalf("cwnd %d after halve", r.Cwnd())
	}
	for i := 0; i < 10; i++ {
		r.OnCongestionEvent()
	}
	if r.Cwnd() != MinWindowPackets*mss {
		t.Fatalf("cwnd %d, want floor %d", r.Cwnd(), MinWindowPackets*mss)
	}
}

func TestRenoRTOCollapses(t *testing.T) {
	r := NewReno(mss)
	for i := 0; i < 100; i++ {
		r.OnPacketAcked(mss, 0)
	}
	r.OnRTO()
	if r.Cwnd() != MinWindowPackets*mss {
		t.Fatalf("cwnd %d after RTO", r.Cwnd())
	}
	if !r.InSlowStart() {
		t.Fatal("should slow-start after RTO")
	}
}

func TestRenoMaxCwndClamp(t *testing.T) {
	r := NewReno(mss)
	r.SetMaxCwnd(12 * mss)
	for i := 0; i < 100; i++ {
		r.OnPacketAcked(mss, 0)
	}
	if r.Cwnd() != 12*mss {
		t.Fatalf("cwnd %d exceeds clamp", r.Cwnd())
	}
}

func TestCubicSlowStartThenDecrease(t *testing.T) {
	now := time.Duration(0)
	c := NewCubic(mss, func() time.Duration { return now })
	w := c.Cwnd()
	for b := 0; b < w; b += mss {
		c.OnPacketAcked(mss, 50*time.Millisecond)
	}
	if c.Cwnd() != 2*w {
		t.Fatalf("slow start growth %d", c.Cwnd())
	}
	before := c.Cwnd()
	c.OnCongestionEvent()
	want := int(float64(before) * cubicBeta)
	if c.Cwnd() != want {
		t.Fatalf("beta decrease: %d, want %d", c.Cwnd(), want)
	}
}

func TestCubicConcaveGrowthTowardWMax(t *testing.T) {
	now := time.Duration(0)
	c := NewCubic(mss, func() time.Duration { return now })
	// Grow to ~100 packets, then lose.
	for c.Cwnd() < 100*mss {
		c.OnPacketAcked(mss, 20*time.Millisecond)
	}
	wmax := c.Cwnd()
	c.OnCongestionEvent()
	low := c.Cwnd()
	// Ack steadily for 10 virtual seconds.
	for i := 0; i < 10000; i++ {
		now += time.Millisecond
		c.OnPacketAcked(mss, 20*time.Millisecond)
	}
	if c.Cwnd() <= low {
		t.Fatal("cubic did not grow after decrease")
	}
	if c.Cwnd() < wmax*9/10 {
		t.Fatalf("cubic stuck at %d, wmax was %d", c.Cwnd(), wmax)
	}
}

func TestCubicRTO(t *testing.T) {
	now := time.Duration(0)
	c := NewCubic(mss, func() time.Duration { return now })
	for i := 0; i < 100; i++ {
		c.OnPacketAcked(mss, 0)
	}
	c.OnRTO()
	if c.Cwnd() != MinWindowPackets*mss {
		t.Fatalf("cwnd %d after RTO", c.Cwnd())
	}
}

func TestCubicNeverBelowFloorNorAboveClamp(t *testing.T) {
	now := time.Duration(0)
	c := NewCubic(mss, func() time.Duration { return now })
	c.SetMaxCwnd(50 * mss)
	for i := 0; i < 1000; i++ {
		now += time.Millisecond
		c.OnPacketAcked(mss, 10*time.Millisecond)
		if i%100 == 99 {
			c.OnCongestionEvent()
		}
	}
	if c.Cwnd() < MinWindowPackets*mss || c.Cwnd() > 50*mss {
		t.Fatalf("cwnd %d out of bounds", c.Cwnd())
	}
}

func TestOliaTwoPathsCoupledIncrease(t *testing.T) {
	o := NewOlia(mss)
	p1 := o.AddPath()
	p2 := o.AddPath()
	// Leave slow start.
	p1.OnCongestionEvent()
	p2.OnCongestionEvent()
	w1, w2 := p1.Cwnd(), p2.Cwnd()
	for i := 0; i < 1000; i++ {
		p1.OnPacketAcked(mss, 20*time.Millisecond)
		p2.OnPacketAcked(mss, 20*time.Millisecond)
	}
	if p1.Cwnd() <= w1 || p2.Cwnd() <= w2 {
		t.Fatal("OLIA paths did not grow")
	}
	// Coupled growth must be slower than two independent Renos: the
	// sum of increases over 1000 acks should be well below 1000 MSS.
	grown := (p1.Cwnd() - w1) + (p2.Cwnd() - w2)
	if grown > 500*mss {
		t.Fatalf("OLIA grew %d bytes, too aggressive for coupled CC", grown)
	}
}

func TestOliaLossHalvesOnlyAffectedPath(t *testing.T) {
	o := NewOlia(mss)
	p1 := o.AddPath()
	p2 := o.AddPath()
	p1.OnCongestionEvent()
	p2.OnCongestionEvent()
	for i := 0; i < 500; i++ {
		p1.OnPacketAcked(mss, 20*time.Millisecond)
		p2.OnPacketAcked(mss, 20*time.Millisecond)
	}
	w1, w2 := p1.Cwnd(), p2.Cwnd()
	p1.OnCongestionEvent()
	if p1.Cwnd() != max(w1/2, MinWindowPackets*mss) {
		t.Fatalf("p1 %d, want half of %d", p1.Cwnd(), w1)
	}
	if p2.Cwnd() != w2 {
		t.Fatal("loss on p1 must not change p2")
	}
}

func TestOliaSlowStartStillDoubles(t *testing.T) {
	o := NewOlia(mss)
	p := o.AddPath()
	w := p.Cwnd()
	for b := 0; b < w; b += mss {
		p.OnPacketAcked(mss, 30*time.Millisecond)
	}
	if p.Cwnd() != 2*w {
		t.Fatalf("slow start %d", p.Cwnd())
	}
}

func TestOliaClosedPathLeavesCoupling(t *testing.T) {
	o := NewOlia(mss)
	p1 := o.AddPath()
	p2 := o.AddPath()
	if len(o.Paths()) != 2 {
		t.Fatal("want 2 paths")
	}
	p2.Close()
	if len(o.Paths()) != 1 || o.Paths()[0] != p1 {
		t.Fatal("close did not remove path")
	}
}

func TestOliaAlphaFavorsBestUnderusedPath(t *testing.T) {
	o := NewOlia(mss)
	p1 := o.AddPath()
	p2 := o.AddPath()
	p1.OnCongestionEvent()
	p2.OnCongestionEvent()
	// p1: large window, poor measured rate (few bytes since loss).
	p1.cwnd = 100 * mss
	p1.l1 = float64(mss)
	p1.srtt = 20 * time.Millisecond
	// p2: small window but best rate.
	p2.cwnd = 10 * mss
	p2.l1 = float64(1000 * mss)
	p2.srtt = 20 * time.Millisecond
	if a := o.alpha(p2); a <= 0 {
		t.Fatalf("alpha for best underused path = %v, want > 0", a)
	}
	if a := o.alpha(p1); a >= 0 {
		t.Fatalf("alpha for max-window path = %v, want < 0", a)
	}
}

func TestOliaRTO(t *testing.T) {
	o := NewOlia(mss)
	p := o.AddPath()
	for i := 0; i < 100; i++ {
		p.OnPacketAcked(mss, 0)
	}
	p.OnRTO()
	if p.Cwnd() != MinWindowPackets*mss {
		t.Fatalf("cwnd %d after RTO", p.Cwnd())
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
