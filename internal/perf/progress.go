package perf

import "time"

// Stopwatch measures real elapsed time for tooling output (progress
// lines, ETAs, "grid took 12s" summaries). It exists so that every
// wall-clock read in the repository lives in this package — the one
// place the walltime analyzer (internal/analysis) allowlists. Protocol
// and simulation code must never need it: virtual time comes from
// sim.Clock.
type Stopwatch struct {
	start time.Time
}

// NewStopwatch returns a running stopwatch.
func NewStopwatch() *Stopwatch {
	return &Stopwatch{start: time.Now()}
}

// Elapsed reports the wall-clock time since the stopwatch started.
func (s *Stopwatch) Elapsed() time.Duration {
	return time.Since(s.start)
}

// ETA estimates the remaining wall-clock time for a batch of work:
// given that `done` items finished since the stopwatch started, it
// extrapolates the mean per-item rate over the `remaining` items.
// It returns 0 until at least one item is done.
func (s *Stopwatch) ETA(done, remaining int) time.Duration {
	if done <= 0 || remaining <= 0 {
		return 0
	}
	rate := s.Elapsed() / time.Duration(done)
	return rate * time.Duration(remaining)
}
