package perf

import (
	"testing"
	"time"

	"mpquic/internal/sim"
	"mpquic/internal/wire"
)

// Allocation budgets for the per-packet hot paths. These pin the wins
// of the allocation diet: a regression that re-introduces per-packet
// garbage fails here long before it shows up in grid wall-clock time.

func TestPacketEncodeAllocFree(t *testing.T) {
	pkt := SamplePacket(make([]byte, SamplePayloadLen()))
	allocs := testing.AllocsPerRun(100, func() {
		buf := pkt.EncodeTo(wire.GetPacketBuf(), nil)
		wire.PutPacketBuf(buf)
	})
	if allocs > 0 {
		t.Errorf("pooled encode allocates %.1f/op, want 0", allocs)
	}
}

func TestPacketDecodeAllocBudget(t *testing.T) {
	pkt := SamplePacket(make([]byte, SamplePayloadLen()))
	enc := pkt.Encode(nil)
	// Borrow-mode decode still allocates the Packet, the frame structs
	// and the pre-sized Frames/Ranges slices — but no payload copies.
	const budget = 6
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := wire.DecodeBorrowed(enc, 9_999, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > budget {
		t.Errorf("borrowed decode allocates %.1f/op, budget %d", allocs, budget)
	}
}

func TestClockScheduleRunAllocFree(t *testing.T) {
	c := sim.NewClock()
	fn := func() {}
	// Warm the event free list and the heap backing array.
	for j := 0; j < 64; j++ {
		c.After(time.Duration(j%8)*time.Microsecond, fn)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for j := 0; j < 64; j++ {
			c.After(time.Duration(j%8)*time.Microsecond, fn)
		}
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state Clock.At+Run allocates %.1f/op, want 0", allocs)
	}
}
