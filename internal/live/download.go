package live

import (
	"errors"
	"time"

	"mpquic/internal/apps"
	"mpquic/internal/core"
)

// ErrTimeout is returned by Download when the transfer does not
// complete before its wall deadline.
var ErrTimeout = errors.New("live: transfer deadline exceeded")

// AbortError is returned by Download when the connection terminates
// before the transfer completes — the peer closed or aborted it, an
// idle timeout fired, or a protocol error tore it down. Err carries
// the connection's close reason.
type AbortError struct{ Err error }

func (e *AbortError) Error() string {
	if e.Err == nil {
		return "live: connection aborted"
	}
	return "live: connection aborted: " + e.Err.Error()
}

// Unwrap exposes the close reason to errors.Is / errors.As chains.
func (e *AbortError) Unwrap() error { return e.Err }

// Download runs a blocking GET of size bytes on the client connection
// over the live driver: it arms the transfer, drives the loop until
// completion, and returns the result. Timestamps inside the result
// are sim times, i.e. wall-derived durations since the driver's
// epoch. deadline bounds the transfer in wall time (<= 0 means no
// deadline); exceeding it returns ErrTimeout, and a connection that
// dies first returns *AbortError.
func Download(d *Driver, client *core.Conn, size uint64, deadline time.Duration) (apps.GetResult, error) {
	var res *apps.GetResult
	now := func() time.Duration { return d.clock.Now().Duration() }
	apps.NewGetClient(client, size, now, func(r apps.GetResult) { res = &r })
	timedOut := false
	if deadline > 0 {
		// The deadline is a plain sim event: wall deadlines and
		// protocol timers share one timebase in live mode.
		d.clock.At(d.clock.Now().Add(deadline), func() { timedOut = true })
	}
	err := d.Run(func() bool { return res != nil || timedOut || client.Closed() })
	if err != nil {
		return apps.GetResult{}, err
	}
	if res != nil {
		return *res, nil
	}
	if client.Closed() {
		cerr := client.Err()
		if cerr == nil {
			cerr = errors.New("live: connection closed")
		}
		return apps.GetResult{}, &AbortError{Err: cerr}
	}
	return apps.GetResult{}, ErrTimeout
}
