package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` over a map whose loop body lets Go's
// randomized iteration order escape into simulation-visible state:
// scheduling events, sending through netem, appending to a slice that
// outlives the loop, or accumulating floating-point sums (float
// addition is not associative, so even an order-independent *set* of
// contributions yields order-dependent bits). The sanctioned pattern —
// collect the keys, sort them, iterate the sorted slice — is
// recognized and not flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "forbid map iteration whose order leaks into schedules, results, " +
		"frames or float accumulations; sort the keys first",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) (any, error) {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		funcBodies(f, func(fn ast.Node, body *ast.BlockStmt) {
			checkMapRanges(pass, fn, body)
		})
	}
	return nil, nil
}

// checkMapRanges inspects one function body. Nested function literals
// are skipped here (funcBodies visits them separately) so each range
// statement is judged against its own enclosing function.
func checkMapRanges(pass *Pass, fn ast.Node, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if reason := orderLeak(pass, fn, rng); reason != "" {
			pass.Reportf(rng.Pos(), "map iteration order leaks into %s; iterate sorted keys instead", reason)
		}
		return true
	})
}

// orderLeak classifies the hazardous effect of a map-range body, or
// returns "" when the body is order-insensitive (or the sanctioned
// collect-keys-then-sort idiom).
func orderLeak(pass *Pass, fn ast.Node, rng *ast.RangeStmt) string {
	info := pass.TypesInfo
	if isKeyCollectThenSort(pass, fn, rng) {
		return ""
	}
	var reason string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// Scheduling: anything that enqueues work on the virtual
			// clock or re-arms a timer fixes an event order.
			if methodOn(info, n, simPkgPath, "Clock", "At", "After") ||
				methodOn(info, n, simPkgPath, "Timer", "Reset", "ResetAfter") {
				reason = "event scheduling"
				return false
			}
			// Transmission: handing datagrams to netem (directly or
			// via a Link) serializes them onto the wire in loop order.
			if methodOn(info, n, netemPkgPath, "Network", "Send") ||
				methodOn(info, n, netemPkgPath, "Link", "Send") {
				reason = "frame/datagram transmission"
				return false
			}
			// append to a slice declared outside the loop: the result
			// ordering becomes the map's iteration order.
			if isBuiltinAppend(info, n) {
				// flag when the destination outlives the loop.
				if len(n.Args) > 0 {
					if obj := identObj(info, n.Args[0]); obj != nil && !declaredWithin(obj, rng) {
						reason = "a slice that outlives the loop"
						return false
					}
				}
			}
		case *ast.AssignStmt:
			if r := floatAccumulation(info, n, rng); r != "" {
				reason = r
				return false
			}
		}
		return true
	})
	return reason
}

// isBuiltinAppend reports whether call invokes the builtin append (a
// shadowing user-defined append resolves to a non-Builtin object).
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, builtin := info.Uses[id].(*types.Builtin)
	return builtin
}

// floatAccumulation reports float += / -= / *= / /= (or x = x + ...)
// onto a variable that outlives the loop.
func floatAccumulation(info *types.Info, as *ast.AssignStmt, rng *ast.RangeStmt) string {
	accumulating := false
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		accumulating = true
	case token.ASSIGN:
		// x = x + e / x = e + x style self-reference.
		if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if obj := identObj(info, as.Lhs[0]); obj != nil {
				if bin, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr); ok {
					if lo := identObj(info, bin.X); lo == obj {
						accumulating = true
					} else if ro := identObj(info, bin.Y); ro == obj {
						accumulating = true
					}
				}
			}
		}
	}
	if !accumulating {
		return ""
	}
	for _, lhs := range as.Lhs {
		t := info.TypeOf(lhs)
		if t == nil {
			continue
		}
		basic, ok := t.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsFloat == 0 {
			continue
		}
		if obj := identObj(info, lhs); obj != nil && declaredWithin(obj, rng) {
			continue // loop-local scratch, order can't escape
		}
		return "a floating-point accumulation (float addition is order-sensitive)"
	}
	return ""
}

// isKeyCollectThenSort recognizes the sanctioned determinization idiom:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Slice(keys, ...)            // or slices.Sort(keys), etc.
//
// The body must be exactly one append of the key variable, and the
// destination slice must later be passed to a sort in the same
// function.
func isKeyCollectThenSort(pass *Pass, fn ast.Node, rng *ast.RangeStmt) bool {
	info := pass.TypesInfo
	if len(rng.Body.List) != 1 {
		return false
	}
	as, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	if !isBuiltinAppend(info, call) {
		return false
	}
	if len(call.Args) != 2 {
		return false
	}
	keyObj := identObj(info, rng.Key)
	if keyObj == nil || identObj(info, call.Args[1]) != keyObj {
		return false
	}
	dest := identObj(info, as.Lhs[0])
	if dest == nil || identObj(info, call.Args[0]) != dest {
		return false
	}
	// Look for a later sort call over dest anywhere in the function.
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := info.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		switch obj.Pkg().Path() {
		case "sort", "slices":
			for _, arg := range call.Args {
				if usesObject(info, arg, dest) {
					sorted = true
					return false
				}
			}
		}
		return true
	})
	return sorted
}
