package live_test

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"mpquic/internal/apps"
	"mpquic/internal/core"
	"mpquic/internal/live"
	"mpquic/internal/netem"
)

// newDriver binds a live driver on n loopback sockets, skipping the
// test cleanly when the sandbox denies UDP sockets.
func newDriver(t *testing.T, n int) *live.Driver {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	d, err := live.NewDriver(addrs)
	if err != nil {
		if errors.Is(err, os.ErrPermission) || strings.Contains(err.Error(), "not permitted") ||
			strings.Contains(err.Error(), "permission denied") {
			t.Skipf("UDP sockets unavailable in this sandbox: %v", err)
		}
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// liveConfig returns a core config fit for real sockets: wire
// serialization (bytes on the wire), real AEAD, and a short idle
// timeout so broken tests fail fast instead of hanging.
func liveConfig(nPaths int) core.Config {
	cfg := core.DefaultConfig()
	if nPaths == 1 {
		cfg = core.DefaultSinglePathConfig()
	}
	cfg.MaxPaths = nPaths
	cfg.WireSerialization = true
	cfg.EnableCrypto = true
	cfg.IdleTimeout = 5 * time.Second
	return cfg
}

// startGetServer runs a live GET server on n loopback paths in a
// background goroutine until the test ends.
func startGetServer(t *testing.T, nPaths int) *live.Driver {
	t.Helper()
	d := newDriver(t, nPaths)
	lis := core.Listen(d, liveConfig(nPaths), d.LocalAddrs())
	apps.NewGetServer(lis)
	go d.Run(nil) // runs until Close (test cleanup)
	return d
}

// dial opens a live client toward the server driver's addresses.
func dial(t *testing.T, server *live.Driver, nPaths int, connID uint64) (*live.Driver, *core.Conn) {
	t.Helper()
	d := newDriver(t, nPaths)
	locals := d.LocalAddrs()
	remotes := server.LocalAddrs()
	conn := core.Dial(d, liveConfig(nPaths), core.NewConnID(connID), locals, remotes)
	return d, conn
}

func TestSinglePathTransfer(t *testing.T) {
	server := startGetServer(t, 1)
	client, conn := dial(t, server, 1, 1)

	const size = 256 << 10
	res, err := live.Download(client, conn, size, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != size {
		t.Fatalf("Size = %d, want %d", res.Size, size)
	}
	if res.Elapsed() <= 0 {
		t.Fatalf("non-positive elapsed %v", res.Elapsed())
	}
	if res.HandshakeDone <= 0 || res.HandshakeDone > res.Finish {
		t.Fatalf("handshake time %v outside (0, %v]", res.HandshakeDone, res.Finish)
	}
	if got := conn.Stats.BytesReceived; got < size {
		t.Fatalf("BytesReceived = %d, want >= %d", got, size)
	}
	if len(conn.Paths()) != 1 {
		t.Fatalf("paths = %d, want 1", len(conn.Paths()))
	}
}

func TestTwoPathTransfer(t *testing.T) {
	server := startGetServer(t, 2)
	client, conn := dial(t, server, 2, 2)

	const size = 2 << 20
	res, err := live.Download(client, conn, size, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != size {
		t.Fatalf("Size = %d, want %d", res.Size, size)
	}
	paths := conn.Paths()
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	var total uint64
	for _, p := range paths {
		if p.RecvBytes == 0 {
			t.Errorf("path %d received no bytes: the transfer did not use both paths", p.ID)
		}
		total += p.RecvBytes
	}
	if total < size {
		t.Fatalf("per-path bytes sum %d < size %d", total, size)
	}
	// Aggregate throughput necessarily exceeds the best single path's
	// contribution on the same run when both paths carried data.
	best := paths[0].RecvBytes
	if paths[1].RecvBytes > best {
		best = paths[1].RecvBytes
	}
	if best >= total {
		t.Fatalf("one path carried everything (%d of %d bytes)", best, total)
	}
}

// TestSequentialDownloadsSameConn reuses one connection for several
// GETs (each on a fresh stream), as a request train would.
func TestSequentialDownloadsSameConn(t *testing.T) {
	server := startGetServer(t, 1)
	client, conn := dial(t, server, 1, 3)

	for i := 0; i < 3; i++ {
		res, err := live.Download(client, conn, 64<<10, 10*time.Second)
		if err != nil {
			t.Fatalf("download %d: %v", i, err)
		}
		if res.Size != 64<<10 {
			t.Fatalf("download %d: size %d", i, res.Size)
		}
	}
}

// TestClientRestart closes a client driver mid-life and connects a
// fresh one to the same server: the listener must accept the new
// connection ID and serve it.
func TestClientRestart(t *testing.T) {
	server := startGetServer(t, 1)

	c1, conn1 := dial(t, server, 1, 10)
	if _, err := live.Download(c1, conn1, 64<<10, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	c2, conn2 := dial(t, server, 1, 11)
	res, err := live.Download(c2, conn2, 64<<10, 10*time.Second)
	if err != nil {
		t.Fatalf("restarted client: %v", err)
	}
	if res.Size != 64<<10 {
		t.Fatalf("restarted client size = %d", res.Size)
	}
}

// TestServerAbortTypedError runs against a server that closes the
// connection instead of serving: the client's Download must surface a
// typed *live.AbortError carrying the close reason.
func TestServerAbortTypedError(t *testing.T) {
	sd := newDriver(t, 1)
	lis := core.Listen(sd, liveConfig(1), sd.LocalAddrs())
	lis.OnConnection(func(c *core.Conn) {
		c.OnStreamOpen(func(*core.Stream) { c.Close() })
	})
	go sd.Run(nil)

	client, conn := dial(t, sd, 1, 20)
	_, err := live.Download(client, conn, 1<<20, 10*time.Second)
	var abort *live.AbortError
	if !errors.As(err, &abort) {
		t.Fatalf("err = %v (%T), want *live.AbortError", err, err)
	}
	if abort.Err == nil || !strings.Contains(abort.Err.Error(), "closed by peer") {
		t.Fatalf("abort reason = %v, want peer close", abort.Err)
	}
}

// TestDeadline dials a port nobody listens on: the handshake can
// never complete and the wall deadline must fire as a typed
// ErrTimeout.
func TestDeadline(t *testing.T) {
	// Bind-and-close to find a dead loopback port.
	dead := newDriver(t, 1)
	addr := dead.LocalAddrs()[0]
	dead.Close()

	client := newDriver(t, 1)
	conn := core.Dial(client, liveConfig(1), core.NewConnID(21), client.LocalAddrs(), []netem.Addr{addr})
	start := time.Now()
	_, err := live.Download(client, conn, 1<<20, 300*time.Millisecond)
	if !errors.Is(err, live.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if el := time.Since(start); el < 250*time.Millisecond || el > 5*time.Second {
		t.Fatalf("deadline honored after %v, want ~300ms", el)
	}
}

// TestRaceConcurrentClients is the -race stress test: two independent
// client drivers (each with two reader goroutines) hammer one shared
// two-path server concurrently, several transfers each.
func TestRaceConcurrentClients(t *testing.T) {
	server := startGetServer(t, 2)

	const clients = 2
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		// Bind and dial on the test goroutine (newDriver may skip or
		// fail the test); only the transfer loop runs concurrently.
		d := newDriver(t, 2)
		conn := core.Dial(d, liveConfig(2), core.NewConnID(100+uint64(i)), d.LocalAddrs(), server.LocalAddrs())
		wg.Add(1)
		go func(id int, d *live.Driver, conn *core.Conn) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := live.Download(d, conn, 128<<10, 20*time.Second); err != nil {
					errs <- fmt.Errorf("client %d round %d: %w", id, r, err)
					return
				}
			}
		}(i, d, conn)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCloseUnblocksRun proves Close from another goroutine tears down
// a Run blocked with no armed deadline (server mode) and returns
// ErrClosed.
func TestCloseUnblocksRun(t *testing.T) {
	d := newDriver(t, 1)
	done := make(chan error, 1)
	go func() { done <- d.Run(nil) }()
	time.Sleep(50 * time.Millisecond)
	d.Close()
	select {
	case err := <-done:
		if !errors.Is(err, live.ErrClosed) {
			t.Fatalf("Run returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after Close")
	}
}

// TestStructModePayloadRejected proves the driver refuses endpoints
// that forgot WireSerialization instead of silently moving nothing.
func TestStructModePayloadRejected(t *testing.T) {
	server := startGetServer(t, 1)
	d := newDriver(t, 1)
	cfg := liveConfig(1)
	cfg.WireSerialization = false // the misconfiguration under test
	conn := core.Dial(d, cfg, core.NewConnID(30), d.LocalAddrs(), server.LocalAddrs())
	_, err := live.Download(d, conn, 1<<10, 2*time.Second)
	if err == nil || !strings.Contains(err.Error(), "WireSerialization") {
		t.Fatalf("err = %v, want WireSerialization guidance", err)
	}
}
