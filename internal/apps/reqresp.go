package apps

import (
	"time"

	"mpquic/internal/core"
	"mpquic/internal/sim"
	"mpquic/internal/wire"
)

// Request/response parameters of the §4.3 handover scenario.
const (
	// ReqRespMessageSize is the request and response payload size.
	ReqRespMessageSize = 750
	// ReqRespInterval is the client's request period.
	ReqRespInterval = 400 * time.Millisecond
)

// EchoServer responds to every fixed-size request with a same-size
// response on the same stream, immediately (§4.3: "The server
// immediately replies to each request").
type EchoServer struct{}

// NewEchoServer attaches the responder to the listener.
func NewEchoServer(l *core.Listener) *EchoServer {
	return NewEchoServerWithPathsHook(l, nil)
}

// NewEchoServerWithPathsHook additionally invokes pathsHook whenever a
// PATHS frame arrives on an accepted connection — used by the §4.3
// experiment to verify that the client's potentially-failed signal
// reached the server.
func NewEchoServerWithPathsHook(l *core.Listener, pathsHook func()) *EchoServer {
	e := &EchoServer{}
	l.OnConnection(func(c *core.Conn) {
		if pathsHook != nil {
			c.OnPathsFrame(func(*wire.PathsFrame) { pathsHook() })
		}
		c.OnStreamOpen(func(s *core.Stream) {
			replied := false
			s.OnData(func() {
				if n := s.Readable(); n > 0 {
					s.Read(n)
				}
				if s.Finished() && !replied {
					replied = true
					s.WriteSynthetic(ReqRespMessageSize)
					s.Close()
				}
			})
		})
	})
	return e
}

// ReqRespSample is one completed request/response exchange.
type ReqRespSample struct {
	// SentAt is when the request was triggered.
	SentAt time.Duration
	// Delay is the time until the full response arrived — the y-axis
	// of the paper's Fig. 11.
	Delay time.Duration
}

// ReqRespClient fires one request every ReqRespInterval on a fresh
// stream and records the response delay of each.
type ReqRespClient struct {
	conn    *core.Conn
	clock   *sim.Clock
	samples []ReqRespSample
	stopped bool
}

// NewReqRespClient starts the request train once the handshake
// completes, running for total duration.
func NewReqRespClient(conn *core.Conn, clock *sim.Clock, total time.Duration) *ReqRespClient {
	r := &ReqRespClient{conn: conn, clock: clock}
	conn.OnHandshakeComplete(func() {
		end := clock.Now().Add(total)
		r.scheduleNext(end)
	})
	return r
}

func (r *ReqRespClient) scheduleNext(end sim.Time) {
	if r.stopped || r.conn.Closed() || r.clock.Now() > end {
		return
	}
	r.fire()
	r.clock.After(ReqRespInterval, func() { r.scheduleNext(end) })
}

func (r *ReqRespClient) fire() {
	s := r.conn.OpenStream()
	sentAt := r.clock.Now().Duration()
	s.OnData(func() {
		if n := s.Readable(); n > 0 {
			s.Read(n)
		}
		if s.Finished() {
			r.samples = append(r.samples, ReqRespSample{
				SentAt: sentAt,
				Delay:  r.clock.Now().Duration() - sentAt,
			})
		}
	})
	s.WriteSynthetic(ReqRespMessageSize)
	s.Close()
}

// Stop halts the request train.
func (r *ReqRespClient) Stop() { r.stopped = true }

// Samples returns the completed exchanges in send order.
func (r *ReqRespClient) Samples() []ReqRespSample { return r.samples }
