// Aggregation: compare single-path QUIC against Multipath QUIC on
// asymmetric paths and compute the experimental aggregation benefit
// (§4.1) — the smartphone "combine WiFi and cellular" use case.
//
//	go run ./examples/aggregation
package main

import (
	"fmt"
	"time"

	"mpquic"
)

func run(cfg mpquic.Config, pathSel int, size uint64) float64 {
	spec0 := mpquic.PathSpec{CapacityMbps: 15, RTT: 25 * time.Millisecond, QueueDelay: 60 * time.Millisecond}
	spec1 := mpquic.PathSpec{CapacityMbps: 6, RTT: 45 * time.Millisecond, QueueDelay: 60 * time.Millisecond}
	if pathSel == 1 {
		spec0, spec1 = spec1, spec0 // single-path runs use path 0
	}
	net := mpquic.NewTwoPathNetwork(mpquic.TwoPathConfig{Path0: spec0, Path1: spec1, Seed: 7})
	server := net.Listen(cfg)
	net.ServeGet(server)
	client := net.Dial(cfg, 99)
	res, err := net.Download(client, size)
	if err != nil {
		return 0
	}
	return res.GoodputBps()
}

func main() {
	const size = 20 << 20
	g0 := run(mpquic.SinglePathConfig(), 0, size)
	g1 := run(mpquic.SinglePathConfig(), 1, size)
	gm := run(mpquic.DefaultConfig(), 0, size)

	fmt.Printf("single-path QUIC, WiFi path:  %6.2f Mbps\n", g0/1e6)
	fmt.Printf("single-path QUIC, LTE path:   %6.2f Mbps\n", g1/1e6)
	fmt.Printf("Multipath QUIC, both paths:   %6.2f Mbps\n", gm/1e6)

	gmax := g0
	if g1 > gmax {
		gmax = g1
	}
	var eben float64
	if gm >= gmax {
		eben = (gm - gmax) / (g0 + g1 - gmax)
	} else {
		eben = (gm - gmax) / gmax
	}
	fmt.Printf("experimental aggregation benefit: %.2f (0 = best single path, 1 = perfect aggregation)\n", eben)
}
