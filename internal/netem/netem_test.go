package netem

import (
	"testing"
	"time"

	"mpquic/internal/sim"
)

type testPayload int

func (p testPayload) WireSize() int { return int(p) }

func dg(from, to Addr, size int) Datagram {
	return Datagram{From: from, To: to, Size: size, Payload: testPayload(size)}
}

func TestLinkDeliversWithSerializationAndPropagation(t *testing.T) {
	clock := sim.NewClock()
	var arrived sim.Time
	// 8 Mbps -> 1 byte per microsecond. 1000-byte packet -> 1 ms
	// serialization; 10 ms propagation.
	l := NewLink(clock, sim.NewRand(1), "t", LinkConfig{RateMbps: 8, Delay: 10 * time.Millisecond, QueueDelay: time.Second},
		func(d Datagram) { arrived = clock.Now() })
	l.Send(dg("a", "b", 1000))
	clock.Run()
	want := sim.Time(11 * time.Millisecond)
	if arrived != want {
		t.Fatalf("arrived at %v, want %v", arrived, want)
	}
}

func TestLinkBackToBackSerialization(t *testing.T) {
	clock := sim.NewClock()
	var times []sim.Time
	l := NewLink(clock, sim.NewRand(1), "t", LinkConfig{RateMbps: 8, Delay: 0, QueueDelay: time.Second},
		func(d Datagram) { times = append(times, clock.Now()) })
	l.Send(dg("a", "b", 1000))
	l.Send(dg("a", "b", 1000))
	l.Send(dg("a", "b", 1000))
	clock.Run()
	if len(times) != 3 {
		t.Fatalf("delivered %d, want 3", len(times))
	}
	for i, want := range []sim.Time{sim.Time(1 * time.Millisecond), sim.Time(2 * time.Millisecond), sim.Time(3 * time.Millisecond)} {
		if times[i] != want {
			t.Fatalf("packet %d at %v, want %v", i, times[i], want)
		}
	}
}

func TestLinkTailDrop(t *testing.T) {
	clock := sim.NewClock()
	delivered := 0
	// Queue bound: 8 Mbps * 5 ms = 5000 bytes.
	l := NewLink(clock, sim.NewRand(1), "t", LinkConfig{RateMbps: 8, Delay: 0, QueueDelay: 5 * time.Millisecond},
		func(d Datagram) { delivered++ })
	for i := 0; i < 10; i++ {
		l.Send(dg("a", "b", 1000))
	}
	clock.Run()
	if delivered != 5 {
		t.Fatalf("delivered %d, want 5 (queue bound)", delivered)
	}
	if l.Stats.QueueDrops != 5 {
		t.Fatalf("queue drops %d, want 5", l.Stats.QueueDrops)
	}
}

func TestLinkQueueFloorTwoMTU(t *testing.T) {
	clock := sim.NewClock()
	l := NewLink(clock, sim.NewRand(1), "t", LinkConfig{RateMbps: 1, Delay: 0, QueueDelay: 0}, func(d Datagram) {})
	if l.QueueCapacityBytes() != 2*MTU {
		t.Fatalf("queue cap %d, want %d", l.QueueCapacityBytes(), 2*MTU)
	}
}

func TestLinkRandomLossRate(t *testing.T) {
	clock := sim.NewClock()
	delivered := 0
	l := NewLink(clock, sim.NewRand(7), "t", LinkConfig{RateMbps: 1000, Delay: 0, QueueDelay: time.Second, LossRate: 0.25},
		func(d Datagram) { delivered++ })
	const n = 20000
	for i := 0; i < n; i++ {
		l.Send(dg("a", "b", 100))
	}
	clock.Run()
	rate := 1 - float64(delivered)/n
	if rate < 0.22 || rate > 0.28 {
		t.Fatalf("loss rate %v, want ~0.25", rate)
	}
	if l.Stats.RandomDrops != uint64(n-delivered) {
		t.Fatalf("stats mismatch: drops=%d delivered=%d", l.Stats.RandomDrops, delivered)
	}
}

func TestLinkDown(t *testing.T) {
	clock := sim.NewClock()
	delivered := 0
	l := NewLink(clock, sim.NewRand(1), "t", LinkConfig{RateMbps: 8, Delay: 0, QueueDelay: time.Second},
		func(d Datagram) { delivered++ })
	l.SetDown(true)
	l.Send(dg("a", "b", 100))
	l.SetDown(false)
	l.Send(dg("a", "b", 100))
	clock.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1", delivered)
	}
}

func TestLinkRejectsOversizedDatagram(t *testing.T) {
	clock := sim.NewClock()
	l := NewLink(clock, sim.NewRand(1), "t", LinkConfig{RateMbps: 8, QueueDelay: time.Second}, func(d Datagram) {})
	defer func() {
		if recover() == nil {
			t.Fatal("oversized datagram accepted")
		}
	}()
	l.Send(dg("a", "b", MTU+1))
}

func TestNetworkRoutesAndDrops(t *testing.T) {
	clock := sim.NewClock()
	n := New(clock, sim.NewRand(1))
	got := map[Addr]int{}
	n.Register("b", HandlerFunc(func(d Datagram) { got["b"]++ }))
	n.Register("a", HandlerFunc(func(d Datagram) { got["a"]++ }))
	n.Connect("a", "b", LinkConfig{RateMbps: 8, QueueDelay: time.Second})
	n.Send(dg("a", "b", 100))
	n.Send(dg("b", "a", 100))
	n.Send(dg("a", "c", 100)) // no route
	clock.Run()
	if got["b"] != 1 || got["a"] != 1 {
		t.Fatalf("deliveries: %v", got)
	}
	if n.Dropped != 1 {
		t.Fatalf("dropped %d, want 1", n.Dropped)
	}
}

func TestNetworkUnregister(t *testing.T) {
	clock := sim.NewClock()
	n := New(clock, sim.NewRand(1))
	got := 0
	n.Register("b", HandlerFunc(func(d Datagram) { got++ }))
	n.Connect("a", "b", LinkConfig{RateMbps: 8, QueueDelay: time.Second})
	n.Send(dg("a", "b", 100))
	clock.Run()
	n.Unregister("b")
	n.Send(dg("a", "b", 100))
	clock.Run()
	if got != 1 {
		t.Fatalf("got %d deliveries, want 1", got)
	}
}

func TestTwoPathTopologyDisjoint(t *testing.T) {
	clock := sim.NewClock()
	tp := NewTwoPath(clock, sim.NewRand(3), [2]PathSpec{
		{CapacityMbps: 10, RTT: 20 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
		{CapacityMbps: 5, RTT: 40 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
	})
	var arrivals []sim.Time
	tp.Net.Register(tp.ServerAddrs[0], HandlerFunc(func(d Datagram) { arrivals = append(arrivals, clock.Now()) }))
	tp.Net.Register(tp.ServerAddrs[1], HandlerFunc(func(d Datagram) { arrivals = append(arrivals, clock.Now()) }))
	tp.Net.Send(dg(tp.ClientAddrs[0], tp.ServerAddrs[0], 1250)) // 1 ms tx + 10 ms prop
	tp.Net.Send(dg(tp.ClientAddrs[1], tp.ServerAddrs[1], 1250)) // 2 ms tx + 20 ms prop
	// Cross-path traffic has no route.
	tp.Net.Send(dg(tp.ClientAddrs[0], tp.ServerAddrs[1], 100))
	clock.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals %d, want 2", len(arrivals))
	}
	if arrivals[0] != sim.Time(11*time.Millisecond) || arrivals[1] != sim.Time(22*time.Millisecond) {
		t.Fatalf("arrival times %v", arrivals)
	}
	if tp.Net.Dropped != 1 {
		t.Fatalf("cross-path traffic not dropped")
	}
}

func TestKillPath(t *testing.T) {
	clock := sim.NewClock()
	tp := NewTwoPath(clock, sim.NewRand(3), [2]PathSpec{
		{CapacityMbps: 10, RTT: 10 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
		{CapacityMbps: 10, RTT: 10 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
	})
	n := 0
	tp.Net.Register(tp.ServerAddrs[0], HandlerFunc(func(d Datagram) { n++ }))
	tp.KillPath(0)
	tp.Net.Send(dg(tp.ClientAddrs[0], tp.ServerAddrs[0], 100))
	clock.Run()
	if n != 0 {
		t.Fatal("killed path delivered")
	}
}

func TestBDPBytes(t *testing.T) {
	clock := sim.NewClock()
	tp := NewTwoPath(clock, sim.NewRand(3), [2]PathSpec{
		{CapacityMbps: 8, RTT: 100 * time.Millisecond, QueueDelay: 0},
		{CapacityMbps: 8, RTT: 100 * time.Millisecond, QueueDelay: 0},
	})
	if got := tp.BDPBytes(0); got != 100000 {
		t.Fatalf("BDP %d, want 100000", got)
	}
}

func TestThroughputMatchesCapacity(t *testing.T) {
	// Saturate a 10 Mbps link for one emulated second; delivered bytes
	// must match capacity within a packet.
	clock := sim.NewClock()
	var bytes int
	l := NewLink(clock, sim.NewRand(1), "t", LinkConfig{RateMbps: 10, Delay: 0, QueueDelay: 20 * time.Millisecond},
		func(d Datagram) { bytes += d.Size })
	// Feed the queue at 1 packet per ms (12 Mbps offered on 10 Mbps link).
	for i := 0; i < 1000; i++ {
		at := sim.Time(time.Duration(i) * time.Millisecond)
		clock.At(at, func() { l.Send(dg("a", "b", 1500)) })
	}
	clock.RunUntil(sim.Time(time.Second))
	want := 10e6 / 8 // bytes in one second
	if f := float64(bytes) / want; f < 0.97 || f > 1.01 {
		t.Fatalf("delivered %d bytes in 1s on 10 Mbps link (ratio %v)", bytes, f)
	}
}
