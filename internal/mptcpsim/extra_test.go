package mptcpsim

import (
	"testing"
	"time"

	"mpquic/internal/netem"
	"mpquic/internal/sim"
	"mpquic/internal/tcpsim"
)

func TestMPTCPCoarseRTTGranularity(t *testing.T) {
	h := newMPHarness(t, DefaultConfig(), symSpecs(10, 33*time.Millisecond))
	ServeGet(h.lis, 1<<20)
	GetOverMPTCP(h.client, 1<<20, func() time.Duration { return h.clock.Now().Duration() }, nil)
	h.run(t, 60*time.Second)
	for _, sf := range h.lis.Conns()[0].Subflows() {
		if sf.RTT().SmoothedRTT() == 0 {
			t.Fatalf("subflow %d has no RTT", sf.ID)
		}
		// Karn/coarse mode quantizes raw samples to milliseconds (the
		// smoothed value is a weighted average and need not be).
		if latest := sf.RTT().LatestRTT(); latest%time.Millisecond != 0 {
			t.Fatalf("subflow %d sample %v not millisecond-quantized", sf.ID, latest)
		}
	}
}

func TestMPTCPSegmentsCarryDSS(t *testing.T) {
	clock := sim.NewClock()
	tp := netem.NewTwoPath(clock, sim.NewRand(4), symSpecs(10, 20*time.Millisecond))
	// Tap the wire: every MP segment must carry the token, and data
	// segments a DSS mapping consistent with the payload.
	var dataSegs, badMappings int
	tap := netem.HandlerFunc(func(dg netem.Datagram) {
		if seg, ok := dg.Payload.(*tcpsim.Segment); ok {
			if !seg.MP || seg.Token != 0xbeef {
				t.Fatalf("segment without MP/token: %+v", seg)
			}
			if seg.Len > 0 && !seg.SYN && seg.Ctl == tcpsim.CtlNone {
				dataSegs++
				if seg.DataSeq > 1<<40 {
					badMappings++
				}
			}
		}
	})
	_ = tap
	lis := ListenMPTCP(tp.Net, DefaultConfig(), tp.ServerAddrs[:])
	client := DialMPTCP(tp.Net, DefaultConfig(), 0xbeef, tp.ClientAddrs[:], tp.ServerAddrs[:])
	ServeGet(lis, 256<<10)
	var res *GetResult
	GetOverMPTCP(client, 256<<10, func() time.Duration { return clock.Now().Duration() },
		func(r GetResult) { res = &r })
	clock.RunUntil(sim.Time(30 * time.Second))
	if res == nil {
		t.Fatal("transfer failed")
	}
	// The data stream must have been fully mapped (exact byte count).
	if client.BytesReceived() != 256<<10 {
		t.Fatalf("received %d bytes", client.BytesReceived())
	}
}

func TestMPTCPDataLevelReorderingAcrossSubflows(t *testing.T) {
	// Wildly different RTTs: data arrives out of order at the
	// connection level and must reassemble exactly.
	specs := [2]netem.PathSpec{
		{CapacityMbps: 10, RTT: 10 * time.Millisecond, QueueDelay: 100 * time.Millisecond},
		{CapacityMbps: 10, RTT: 200 * time.Millisecond, QueueDelay: 100 * time.Millisecond},
	}
	h := newMPHarness(t, DefaultConfig(), specs)
	ServeGet(h.lis, 2<<20)
	var res *GetResult
	GetOverMPTCP(h.client, 2<<20, func() time.Duration { return h.clock.Now().Duration() },
		func(r GetResult) { res = &r })
	h.run(t, 120*time.Second)
	if res == nil {
		t.Fatal("transfer failed")
	}
	if h.client.BytesReceived() != 2<<20 {
		t.Fatalf("byte count %d", h.client.BytesReceived())
	}
	// Both subflows must have carried data for reordering to matter.
	srv := h.lis.Conns()[0]
	for _, sf := range srv.Subflows() {
		if sf.DataBytesSent == 0 {
			t.Fatalf("subflow %d carried nothing", sf.ID)
		}
	}
}

func TestMPTCPSACKBlocksBounded(t *testing.T) {
	specs := symSpecs(10, 30*time.Millisecond)
	specs[0].LossRate = 0.05
	specs[1].LossRate = 0.05
	clock := sim.NewClock()
	tp := netem.NewTwoPath(clock, sim.NewRand(6), specs)
	// Wrap the listener address handlers to observe SACK blocks on
	// the wire via a tap at the client side.
	lis := ListenMPTCP(tp.Net, DefaultConfig(), tp.ServerAddrs[:])
	client := DialMPTCP(tp.Net, DefaultConfig(), 0xcafe, tp.ClientAddrs[:], tp.ServerAddrs[:])
	ServeGet(lis, 1<<20)
	var res *GetResult
	GetOverMPTCP(client, 1<<20, func() time.Duration { return clock.Now().Duration() },
		func(r GetResult) { res = &r })
	clock.RunUntil(sim.Time(300 * time.Second))
	if res == nil {
		t.Fatal("transfer failed under loss")
	}
	// Structural check: the builder can never exceed the limit.
	// (Wire-level observation is covered by tcpsim's unit test.)
	if tcpsim.MaxSACKBlocks != 3 {
		t.Fatal("SACK block limit drifted")
	}
}

func TestMPTCPIdleTimeout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IdleTimeout = 2 * time.Second
	clock := sim.NewClock()
	tp := netem.NewTwoPath(clock, sim.NewRand(5), symSpecs(10, 20*time.Millisecond))
	_ = ListenMPTCP(tp.Net, cfg, tp.ServerAddrs[:])
	client := DialMPTCP(tp.Net, cfg, 0x99, tp.ClientAddrs[:], tp.ServerAddrs[:])
	// Establish, then go silent: the connection must close.
	clock.RunUntil(sim.Time(30 * time.Second))
	if !client.Closed() {
		t.Fatal("idle MPTCP connection never closed")
	}
	if client.Err() == nil {
		t.Fatal("no close reason")
	}
}

func TestMPTCPTokenDemux(t *testing.T) {
	// Two clients with different tokens share the listener.
	clock := sim.NewClock()
	tp := netem.NewTwoPath(clock, sim.NewRand(8), symSpecs(10, 20*time.Millisecond))
	lis := ListenMPTCP(tp.Net, DefaultConfig(), tp.ServerAddrs[:])
	ServeGet(lis, 64<<10)
	// Second client needs its own source addresses.
	extraLocal := [2]netem.Addr{"10.0.1.2:1000", "10.0.2.2:1000"}
	for i := 0; i < 2; i++ {
		spec := tp.Specs[i]
		tp.Net.Connect(extraLocal[i], tp.ServerAddrs[i], netem.LinkConfig{
			RateMbps: spec.CapacityMbps, Delay: spec.RTT / 2, QueueDelay: spec.QueueDelay,
		})
	}
	c1 := DialMPTCP(tp.Net, DefaultConfig(), 0x01, tp.ClientAddrs[:], tp.ServerAddrs[:])
	c2 := DialMPTCP(tp.Net, DefaultConfig(), 0x02, extraLocal[:], tp.ServerAddrs[:])
	done := 0
	for _, c := range []*Conn{c1, c2} {
		GetOverMPTCP(c, 64<<10, func() time.Duration { return clock.Now().Duration() },
			func(GetResult) { done++ })
	}
	clock.RunUntil(sim.Time(30 * time.Second))
	if done != 2 {
		t.Fatalf("%d/2 clients finished", done)
	}
	if len(lis.Conns()) != 2 {
		t.Fatalf("listener demuxed %d connections", len(lis.Conns()))
	}
}
