package analysis_test

import (
	"path/filepath"
	"testing"

	"mpquic/internal/analysis"
	"mpquic/internal/analysis/analysistest"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Walltime, "walltime")
}

// TestFaultnetWalltimeClean proves internal/faultnet earns its way
// past the walltime analyzer instead of being allowlisted: the fault
// injector observes time only through its injected Clock, so (a) the
// real package produces zero findings without any exemption, and (b)
// the exemption really is absent — wall-clock-reading code placed
// under faultnet's import path still fires.
func TestFaultnetWalltimeClean(t *testing.T) {
	root := moduleRoot(t)

	real, err := analysis.LoadFromDir(root, filepath.Join(root, "internal", "faultnet"), "mpquic/internal/faultnet")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers(real, []*analysis.Analyzer{analysis.Walltime})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("internal/faultnet produced %d walltime findings, want 0 (it must stay clock-injected): %v", len(diags), diags)
	}

	fixture, err := analysis.LoadFromDir(root, filepath.Join("testdata", "src", "perfpkg"), "mpquic/internal/faultnet")
	if err != nil {
		t.Fatal(err)
	}
	diags, err = analysis.RunAnalyzers(fixture, []*analysis.Analyzer{analysis.Walltime})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Errorf("faultnet's import path is exempt from walltime (%d findings, want 2); it must not be allowlisted", len(diags))
	}
}

// TestWalltimeAllowlist loads the same wall-clock-reading code under
// each allowlisted import path (no findings) and under non-allowlisted
// paths (two findings each). This proves the allowlist is path-based,
// not accidental, and that adding internal/live to it did not widen
// the exemption anywhere else — a core-like path still fires.
func TestWalltimeAllowlist(t *testing.T) {
	root := moduleRoot(t)
	dir := filepath.Join("testdata", "src", "perfpkg")

	allowed := []string{"mpquic/internal/perf", "mpquic/internal/live"}
	for _, path := range allowed {
		as, err := analysis.LoadFromDir(root, dir, path)
		if err != nil {
			t.Fatal(err)
		}
		diags, err := analysis.RunAnalyzers(as, []*analysis.Analyzer{analysis.Walltime})
		if err != nil {
			t.Fatal(err)
		}
		if len(diags) != 0 {
			t.Errorf("allowlisted %s produced %d findings, want 0: %v", path, len(diags), diags)
		}
	}

	// The exemption must not leak: neither a plain path nor a sibling
	// internal package (the protocol core's path shape) is excused.
	denied := []string{"perfpkg", "mpquic/internal/core"}
	for _, path := range denied {
		as, err := analysis.LoadFromDir(root, dir, path)
		if err != nil {
			t.Fatal(err)
		}
		diags, err := analysis.RunAnalyzers(as, []*analysis.Analyzer{analysis.Walltime})
		if err != nil {
			t.Fatal(err)
		}
		if len(diags) != 2 {
			t.Errorf("non-allowlisted %s produced %d findings, want 2: %v", path, len(diags), diags)
		}
	}
}
