package wire

import "fmt"

// Overhead constants for byte accounting. The emulator charges each
// datagram the transport framing a real deployment would pay.
const (
	// UDPIPv4Overhead is the IPv4 (20) + UDP (8) framing in bytes.
	UDPIPv4Overhead = 28
	// AEADOverhead is the authentication tag appended to the protected
	// payload of every non-handshake packet (AES-128-GCM).
	AEADOverhead = 16
	// MaxPacketSize is the largest QUIC packet (header + payload +
	// tag) this implementation emits, chosen so the full datagram fits
	// the emulator MTU with IPv4/UDP framing.
	MaxPacketSize = 1350
)

// Packet is one QUIC packet: a public header plus frames. It implements
// netem.Payload so packets can traverse the emulator in struct mode;
// EncodedSize matches Encode's output exactly, byte for byte.
type Packet struct {
	Header Header
	Frames []Frame
	// LargestAcked feeds packet-number truncation on encode: the
	// largest packet number the peer acknowledged on this path when
	// the packet was built.
	LargestAcked PacketNumber
}

// WireSize implements the emulator payload interface: the full packet
// size including the AEAD tag on protected packets.
func (p *Packet) WireSize() int { return p.EncodedSize() }

// EncodedSize is the exact serialized size of the packet, including the
// AEAD expansion for protected (non-handshake) packets.
func (p *Packet) EncodedSize() int {
	n := p.Header.EncodedSize(p.LargestAcked)
	for _, f := range p.Frames {
		n += f.EncodedSize()
	}
	if !p.Header.Handshake {
		n += AEADOverhead
	}
	return n
}

// PayloadSize is the summed encoded size of the frames.
func (p *Packet) PayloadSize() int {
	n := 0
	for _, f := range p.Frames {
		n += f.EncodedSize()
	}
	return n
}

// IsRetransmittable reports whether any frame needs loss recovery.
func (p *Packet) IsRetransmittable() bool {
	for _, f := range p.Frames {
		if f.Retransmittable() {
			return true
		}
	}
	return false
}

// Sealer protects a packet payload (AEAD seal/open). The wire package
// defines the interface; internal/crypto provides the implementation.
type Sealer interface {
	// Seal encrypts plaintext bound to (path, pn, header) and returns
	// ciphertext (plaintext length + AEADOverhead).
	Seal(path PathID, pn PacketNumber, header, plaintext []byte) []byte
	// Open reverses Seal, failing on any forgery.
	Open(path PathID, pn PacketNumber, header, ciphertext []byte) ([]byte, error)
}

// Encode serializes the packet into a freshly allocated buffer. A nil
// sealer leaves the payload in cleartext but still appends AEADOverhead
// filler bytes on protected packets so sizes stay identical in both
// modes. Hot paths should prefer EncodeTo with a pooled buffer from
// GetPacketBuf.
func (p *Packet) Encode(sealer Sealer) []byte {
	return p.EncodeTo(make([]byte, 0, p.EncodedSize()), sealer)
}

// EncodeTo appends the serialized packet to buf and returns the
// extended buffer, allocating only if buf lacks capacity. Pair with
// GetPacketBuf/PutPacketBuf for an allocation-free encode path.
//
//mpq:noescape
func (p *Packet) EncodeTo(buf []byte, sealer Sealer) []byte {
	start := len(buf)
	buf = p.Header.Append(buf, p.LargestAcked)
	hdrEnd := len(buf)
	for _, f := range p.Frames {
		buf = f.Append(buf)
	}
	if p.Header.Handshake {
		return buf
	}
	if sealer == nil {
		for i := 0; i < AEADOverhead; i++ {
			buf = append(buf, 0x5A)
		}
		return buf
	}
	sealed := sealer.Seal(p.Header.PathID, p.Header.PacketNumber, buf[start:hdrEnd], buf[hdrEnd:])
	return append(buf[:hdrEnd], sealed...)
}

// Decode parses a serialized packet. largestReceived expands the
// truncated packet number (pass InvalidPacketNumber on fresh paths). A
// nil sealer expects the cleartext-with-filler format Encode(nil)
// produces. Parsed frames own their payload bytes: b may be reused
// freely after Decode returns.
func Decode(b []byte, largestReceived PacketNumber, sealer Sealer) (*Packet, error) {
	return decode(b, largestReceived, sealer, false)
}

// DecodeBorrowed parses like Decode, but STREAM and HANDSHAKE frame
// payloads alias b instead of being copied. The caller must fully
// consume the frames (or copy what it keeps) before reusing or pooling
// b. This is the receive hot path: the stream layer copies data into
// its reassembly buffer immediately, so the borrow never outlives the
// datagram delivery. (The *Packet itself is allocated inside decode,
// which is not annotated; the gate pins this wrapper's own frame —
// notably that b stays on the stack.)
//
//mpq:noescape
func DecodeBorrowed(b []byte, largestReceived PacketNumber, sealer Sealer) (*Packet, error) {
	return decode(b, largestReceived, sealer, true)
}

func decode(b []byte, largestReceived PacketNumber, sealer Sealer, borrow bool) (*Packet, error) {
	hdr, hdrLen, err := ParseHeader(b, largestReceived)
	if err != nil {
		return nil, err
	}
	p := &Packet{Header: hdr, Frames: make([]Frame, 0, 4)}
	payload := b[hdrLen:]
	if !hdr.Handshake {
		if sealer != nil {
			payload, err = sealer.Open(hdr.PathID, hdr.PacketNumber, b[:hdrLen], payload)
			if err != nil {
				return nil, err
			}
		} else {
			if len(payload) < AEADOverhead {
				return nil, ErrTruncated
			}
			payload = payload[:len(payload)-AEADOverhead]
		}
	}
	for len(payload) > 0 {
		f, n, err := parseFrame(payload, borrow)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, fmt.Errorf("wire: zero-length frame parse")
		}
		p.Frames = append(p.Frames, f)
		payload = payload[n:]
	}
	return p, nil
}
