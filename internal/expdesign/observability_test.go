package expdesign

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"mpquic/internal/trace"
)

func obsScenario() Scenario {
	sc := Scenario{ID: 7, Class: "obs"}
	sc.Paths[0] = pathSpec(8, 20*time.Millisecond, 20*time.Millisecond, 0)
	sc.Paths[1] = pathSpec(2, 60*time.Millisecond, 20*time.Millisecond, 0)
	return sc
}

// deadScenario cannot complete: both paths drop every packet.
func deadScenario() Scenario {
	sc := Scenario{ID: 9, Class: "dead"}
	sc.Paths[0] = pathSpec(8, 20*time.Millisecond, 0, 1)
	sc.Paths[1] = pathSpec(8, 20*time.Millisecond, 0, 1)
	return sc
}

// Sampling must be a pure observer (identical run outcome) and
// deterministic (same seed, byte-identical series).
func TestRunSamplingDeterministicAndPure(t *testing.T) {
	sc := obsScenario()
	base := Run(sc, ProtoMPQUIC, 256<<10, 0, 11)
	opts := RunOpts{SampleInterval: 50 * time.Millisecond}
	r1 := RunWithOpts(sc, ProtoMPQUIC, 256<<10, 0, 11, opts)
	r2 := RunWithOpts(sc, ProtoMPQUIC, 256<<10, 0, 11, opts)

	if r1.Elapsed != base.Elapsed || r1.GoodputBps != base.GoodputBps || r1.Completed != base.Completed {
		t.Fatalf("sampling perturbed the run: base=%+v sampled=%+v", base, r1)
	}
	stripped := r1.Metrics
	stripped.Series = nil
	if !reflect.DeepEqual(stripped, base.Metrics) {
		t.Fatalf("sampling perturbed metrics:\nbase    %+v\nsampled %+v", base.Metrics, stripped)
	}

	if len(r1.Metrics.Series) == 0 {
		t.Fatal("no samples recorded")
	}
	rec1 := &trace.SeriesRecorder{Samples: r1.Metrics.Series}
	rec2 := &trace.SeriesRecorder{Samples: r2.Metrics.Series}
	if got := rec1.Paths(); len(got) != 2 {
		t.Fatalf("MPQUIC series covers paths %v, want both", got)
	}
	var b1, b2 bytes.Buffer
	if err := rec1.EncodeJSONL(&b1); err != nil {
		t.Fatal(err)
	}
	if err := rec2.EncodeJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("same-seed series not byte-identical")
	}
	// Samples must carry real transport state, in nondecreasing time.
	var sawCwnd bool
	last := time.Duration(-1)
	for _, s := range r1.Metrics.Series {
		if s.T < last {
			t.Fatalf("samples out of order: %v after %v", s.T, last)
		}
		last = s.T
		if s.Cwnd > 0 {
			sawCwnd = true
		}
	}
	if !sawCwnd {
		t.Fatal("no sample carries a positive cwnd")
	}
}

// An armed flight recorder must not change the run and must stay
// silent on a healthy run.
func TestFlightRecorderPureAndSilentWhenHealthy(t *testing.T) {
	sc := obsScenario()
	base := Run(sc, ProtoTCP, 128<<10, 0, 5)
	dumps := 0
	opts := RunOpts{
		FlightEvents: 1024,
		RTOStorm:     1000, // unreachable for this clean scenario
		FlightDump:   func(int, string, *trace.FlightRecorder) { dumps++ },
	}
	res := RunWithOpts(sc, ProtoTCP, 128<<10, 0, 5, opts)
	if !reflect.DeepEqual(base, res) {
		t.Fatalf("flight recorder perturbed the run:\nbase  %+v\narmed %+v", base, res)
	}
	if dumps != 0 {
		t.Fatalf("healthy run dumped %d times", dumps)
	}
}

// A run that cannot complete must dump exactly once per repetition,
// classified as a timeout, with events in the ring.
func TestFlightDumpOnTimeout(t *testing.T) {
	sc := deadScenario()
	type dump struct {
		rep     int
		anomaly string
		seen    uint64
	}
	var dumps []dump
	opts := RunOpts{
		FlightEvents: 256,
		FlightDump: func(rep int, anomaly string, rec *trace.FlightRecorder) {
			dumps = append(dumps, dump{rep, anomaly, rec.Seen()})
		},
	}
	res := RunMedianOpts(sc, ProtoQUIC, 64<<10, 0, 2, 3, opts)
	if res.Completed {
		t.Fatal("dead scenario completed?")
	}
	if len(dumps) != 2 {
		t.Fatalf("%d dumps, want one per repetition (2)", len(dumps))
	}
	for i, d := range dumps {
		if d.rep != i {
			t.Errorf("dump %d has rep %d", i, d.rep)
		}
		if d.anomaly != "timeout" {
			t.Errorf("anomaly = %q, want timeout", d.anomaly)
		}
		if d.seen == 0 {
			t.Error("flight recorder saw no events on a sending connection")
		}
	}
}

// RTO-storm classification: with the threshold at 1 the dump decision
// must agree exactly with the run's RTO count, whichever way the
// seeded run goes.
func TestFlightDumpRTOStormConsistency(t *testing.T) {
	sc := Scenario{ID: 3, Class: "lossy"}
	sc.Paths[0] = pathSpec(4, 30*time.Millisecond, 10*time.Millisecond, 0.05)
	sc.Paths[1] = pathSpec(4, 30*time.Millisecond, 10*time.Millisecond, 0.05)
	var anomalies []string
	opts := RunOpts{
		FlightEvents: 256,
		RTOStorm:     1,
		FlightDump: func(_ int, anomaly string, _ *trace.FlightRecorder) {
			anomalies = append(anomalies, anomaly)
		},
	}
	res := RunWithOpts(sc, ProtoTCP, 256<<10, 0, 21, opts)
	stormed := res.Completed && res.Metrics.RTOs >= 1
	switch {
	case stormed && (len(anomalies) != 1 || anomalies[0] != "rto_storm"):
		t.Fatalf("run had %d RTOs but dumps = %v", res.Metrics.RTOs, anomalies)
	case !res.Completed && (len(anomalies) != 1 || anomalies[0] != "timeout"):
		t.Fatalf("incomplete run, dumps = %v", anomalies)
	case res.Completed && res.Metrics.RTOs == 0 && len(anomalies) != 0:
		t.Fatalf("clean run dumped: %v", anomalies)
	}
}

// Grid-level wiring: observability armed through GridConfig must not
// change results, and a healthy grid writes no dump files.
func TestGridObservabilityMatchesPlain(t *testing.T) {
	plain := GridConfig{Class: LowBDPNoLoss, Scenarios: 2, Size: 128 << 10, Reps: 1, Workers: 1}
	fdA, err := RunGrid(plain)
	if err != nil {
		t.Fatal(err)
	}

	armed := plain
	armed.FlightDir = t.TempDir()
	fdB, err := RunGrid(armed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fdA.Results, fdB.Results) {
		t.Fatal("armed flight recorder changed grid results")
	}
	entries, err := os.ReadDir(armed.FlightDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("healthy grid wrote %d dump files", len(entries))
	}

	sampled := plain
	sampled.SampleInterval = 100 * time.Millisecond
	fdC, err := RunGrid(sampled)
	if err != nil {
		t.Fatal(err)
	}
	sawSeries := false
	for i, sr := range fdC.Results {
		for p := range sr.Runs {
			for s := range sr.Runs[p] {
				got := sr.Runs[p][s]
				want := fdA.Results[i].Runs[p][s]
				if len(got.Metrics.Series) > 0 {
					sawSeries = true
				}
				got.Metrics.Series = nil
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("sampling changed grid results at scenario %d proto %d start %d", i, p, s)
				}
			}
		}
	}
	if !sawSeries {
		t.Fatal("sampled grid recorded no series at all")
	}
}

func TestWriteFlightDumpFile(t *testing.T) {
	dir := t.TempDir()
	rec := trace.NewFlightRecorder(8)
	rec.Trace(trace.Event{Type: trace.RTOFired, Path: 1})
	cfg := GridConfig{Class: LowBDPNoLoss, FlightDir: dir}
	sc := Scenario{ID: 12}
	writeFlightDump(cfg, sc, ProtoMPQUIC, 1, 2, "timeout", rec)
	want := filepath.Join(dir, "flight-low-BDP-no-loss-s12-MPQUIC-start1-rep2-timeout.jsonl")
	data, err := os.ReadFile(want)
	if err != nil {
		t.Fatalf("dump file missing: %v", err)
	}
	if len(bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n"))) != 2 {
		t.Fatalf("dump = %q, want header + 1 event", data)
	}
}
