package perf

import (
	"testing"
	"time"

	"mpquic/internal/core"
	"mpquic/internal/expdesign"
	"mpquic/internal/netem"
	"mpquic/internal/sim"
	"mpquic/internal/wire"
)

// --- wire micro benchmarks ---

// BenchmarkPacketEncode measures the send hot path: serialize into a
// pooled buffer (core's WireSerialization mode does exactly this).
func BenchmarkPacketEncode(b *testing.B) {
	pkt := SamplePacket(make([]byte, SamplePayloadLen()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := pkt.EncodeTo(wire.GetPacketBuf(), nil)
		wire.PutPacketBuf(buf)
	}
}

// BenchmarkPacketDecode measures the receive hot path: borrow-mode
// parse, frames aliasing the datagram buffer.
func BenchmarkPacketDecode(b *testing.B) {
	pkt := SamplePacket(make([]byte, SamplePayloadLen()))
	enc := pkt.Encode(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := wire.DecodeBorrowed(enc, 9_999, nil)
		if err != nil {
			b.Fatal(err)
		}
		_ = p
	}
}

// --- sim micro benchmarks ---

// BenchmarkClockScheduleRun measures the steady-state event-loop cost
// per event: one long-lived clock (as every simulation has) scheduling
// and dispatching bursts of staggered future deadlines, the shape the
// netem serializer produces.
func BenchmarkClockScheduleRun(b *testing.B) {
	fn := func() {}
	c := sim.NewClock()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 512; j++ {
			c.After(time.Duration(j%64)*time.Microsecond, fn)
		}
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClockSameTimeFIFO measures the same-deadline fast path:
// bursts of events all due "now", the shape trySend cascades produce.
func BenchmarkClockSameTimeFIFO(b *testing.B) {
	fn := func() {}
	c := sim.NewClock()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 512; j++ {
			c.After(0, fn)
		}
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- netem micro benchmark ---

type benchPayload int

func (p benchPayload) WireSize() int { return int(p) }

// BenchmarkLinkTransit pushes packets through one emulated link,
// measuring the full serialize+propagate event chain per packet.
func BenchmarkLinkTransit(b *testing.B) {
	clock := sim.NewClock()
	delivered := 0
	link := netem.NewLink(clock, sim.NewRand(1), "bench",
		netem.LinkConfig{RateMbps: 1000, Delay: time.Millisecond, QueueDelay: time.Second},
		func(dg netem.Datagram) { delivered++ })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delivered = 0
		for j := 0; j < 256; j++ {
			link.Send(netem.Datagram{From: "a", To: "b", Size: 1378, Payload: benchPayload(1350)})
			if err := clock.RunUntil(clock.Now().Add(12 * time.Microsecond)); err != nil {
				b.Fatal(err)
			}
		}
		if err := clock.Run(); err != nil {
			b.Fatal(err)
		}
		if delivered != 256 {
			b.Fatalf("delivered %d/256", delivered)
		}
	}
}

// --- macro benchmark: smoke grid ---

// SmokeGridConfig is the fixed workload scripts/bench.sh times: a
// small but representative slice of the paper grid (all four stacks,
// both start paths).
func smokeGridConfig() expdesign.GridConfig {
	return expdesign.GridConfig{
		Class:     expdesign.LowBDPNoLoss,
		Scenarios: 6,
		Size:      4 << 20,
		Reps:      1,
	}
}

// BenchmarkSmokeGrid runs the smoke grid once per iteration and
// reports scenarios/sec — the number every later PR compares against.
// Run with -benchtime=1x (scripts/bench.sh does).
func BenchmarkSmokeGrid(b *testing.B) {
	cfg := smokeGridConfig()
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		fd, err := expdesign.RunGrid(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(fd.Results) != cfg.Scenarios {
			b.Fatalf("ran %d scenarios, want %d", len(fd.Results), cfg.Scenarios)
		}
	}
	elapsed := time.Since(start).Seconds()
	b.ReportMetric(float64(b.N*cfg.Scenarios)/elapsed, "scenarios/sec")
}

// BenchmarkWireModeTransfer runs one full MPQUIC download with
// WireSerialization on, exercising the pooled encode/decode path end
// to end (the struct-mode grids skip it).
func BenchmarkWireModeTransfer(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := expdesign.Scenario{
			Class: "perf",
			Paths: [2]netem.PathSpec{
				{CapacityMbps: 20, RTT: 20 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
				{CapacityMbps: 10, RTT: 40 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
			},
		}
		cfg := coreDefaultWireConfig()
		res := expdesign.RunMPQUICVariant(sc, cfg, 4<<20, 0, 7)
		if !res.Completed {
			b.Fatal("wire-mode transfer did not complete")
		}
	}
}

func coreDefaultWireConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.WireSerialization = true
	return cfg
}
