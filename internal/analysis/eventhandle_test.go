package analysis_test

import (
	"testing"

	"mpquic/internal/analysis"
	"mpquic/internal/analysis/analysistest"
)

func TestEventHandle(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.EventHandle, "eventhandle")
}
