package trace

import (
	"encoding/json"
	"io"
)

// FlightRecorder is a bounded ring buffer of the most recent events —
// the post-mortem tracer. Arm it as a connection's (or the emulator's)
// Tracer and it retains the last capacity events at O(1) cost per
// event with zero allocations after construction; dump it only when a
// run turns anomalous (timeout, RTO storm, failed transfer), so
// healthy runs never pay trace I/O.
//
// Determinism contract: the recorder is a pure function of the event
// stream — same seed, same capacity, byte-identical dump. It holds no
// wall-clock state and performs no I/O until an explicit dump call.
//
// A FlightRecorder is not safe for concurrent use; like every Tracer
// in this package it belongs to one simulated world, which is
// single-goroutine by construction.
type FlightRecorder struct {
	buf  []Event
	next int
	full bool
	seen uint64
}

// DefaultFlightEvents is the ring capacity used when a caller passes a
// non-positive capacity: enough to hold several RTTs of a busy
// two-path transfer around the anomaly.
const DefaultFlightEvents = 4096

// NewFlightRecorder builds a recorder retaining the last capacity
// events (DefaultFlightEvents if capacity <= 0). All memory is
// allocated up front.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightEvents
	}
	return &FlightRecorder{buf: make([]Event, capacity)}
}

// Trace implements Tracer: append ev, evicting the oldest event once
// the ring is full.
func (r *FlightRecorder) Trace(ev Event) {
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.seen++
}

// Len reports the number of retained events.
func (r *FlightRecorder) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Seen reports the total number of events ever traced.
func (r *FlightRecorder) Seen() uint64 { return r.seen }

// Dropped reports how many events were evicted by the ring bound.
func (r *FlightRecorder) Dropped() uint64 { return r.seen - uint64(r.Len()) }

// Reset forgets all retained events (capacity is kept).
func (r *FlightRecorder) Reset() {
	r.next = 0
	r.full = false
	r.seen = 0
}

// Events returns the retained events oldest-first, as a fresh slice.
func (r *FlightRecorder) Events() []Event {
	out := make([]Event, 0, r.Len())
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}

// flightHeader is the first line of a dump: how much the ring saw and
// how much it had to drop, so a truncated post-mortem says so.
type flightHeader struct {
	FlightRecorder string `json:"flight_recorder"`
	Events         int    `json:"events"`
	Seen           uint64 `json:"seen"`
	Dropped        uint64 `json:"dropped"`
}

// DumpJSONL writes a header line followed by the retained events as
// newline-delimited JSON, oldest first — the same per-event encoding
// as the JSON tracer, so existing trace tooling reads dumps unchanged.
// reason labels why the dump happened (e.g. "timeout", "rto_storm").
// Output is byte-reproducible for equal event sequences.
func (r *FlightRecorder) DumpJSONL(w io.Writer, reason string) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(flightHeader{
		FlightRecorder: reason,
		Events:         r.Len(),
		Seen:           r.seen,
		Dropped:        r.Dropped(),
	}); err != nil {
		return err
	}
	if r.full {
		for _, ev := range r.buf[r.next:] {
			if err := enc.Encode(ev); err != nil {
				return err
			}
		}
	}
	for _, ev := range r.buf[:r.next] {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}
