// Package perf is the repository's performance harness: micro
// benchmarks for the per-packet hot paths (sim event loop, wire
// encode/decode, netem link transit) and a macro benchmark that grinds
// the smoke scenario grid and reports scenarios per second.
//
// scripts/bench.sh runs the harness and records the numbers in a
// BENCH_*.json trajectory file, so every PR can compare its hot-path
// cost against the previous one:
//
//	go test -bench=. -benchmem ./internal/perf   # micro benches
//	scripts/bench.sh                             # full harness + JSON
//	scripts/bench.sh -smoke                      # CI-sized subset
//
// The fixtures below are shared between the benchmarks and the
// allocation-budget tests in the wire and sim packages, so the
// budgeted operation is exactly the benchmarked one.
package perf

import (
	"time"

	"mpquic/internal/wire"
)

// SamplePacket builds a representative data packet: an ACK with a few
// ranges (loss recovery in progress), a WINDOW_UPDATE, and a full-MTU
// stream frame — the shape the send path emits while a transfer is in
// flight.
func SamplePacket(data []byte) *wire.Packet {
	return &wire.Packet{
		Header: wire.Header{
			ConnID:       0x1234_5678_9abc_def0,
			Multipath:    true,
			PathID:       1,
			PacketNumber: 10_000,
		},
		LargestAcked: 9_950,
		Frames: []wire.Frame{
			&wire.AckFrame{
				PathID: 1,
				Ranges: []wire.AckRange{
					{Smallest: 9_990, Largest: 10_012},
					{Smallest: 9_970, Largest: 9_985},
					{Smallest: 9_000, Largest: 9_967},
				},
				AckDelay: 3 * time.Millisecond,
			},
			&wire.WindowUpdateFrame{StreamID: 3, Offset: 1 << 24},
			&wire.StreamFrame{StreamID: 3, Offset: 1 << 20, Data: data},
		},
	}
}

// SamplePayloadLen sizes SamplePacket's stream data so the whole
// packet lands at wire.MaxPacketSize, like a cwnd-limited sender's.
func SamplePayloadLen() int {
	probe := SamplePacket(nil)
	overhead := probe.EncodedSize()
	sf := probe.Frames[len(probe.Frames)-1].(*wire.StreamFrame)
	return sf.MaxStreamDataLen(wire.MaxPacketSize - (overhead - sf.EncodedSize()))
}
