package live

import (
	"errors"
	"sync/atomic"
	"time"

	"mpquic/internal/apps"
	"mpquic/internal/core"
)

// ErrTimeout is returned by Download when the transfer does not
// complete before its wall deadline.
var ErrTimeout = errors.New("live: transfer deadline exceeded")

// ErrCanceled is returned by DownloadWith when the Cancel channel
// fires before the transfer completes. Callers holding the context
// that produced the channel wrap this into their own typed error.
var ErrCanceled = errors.New("live: download canceled")

// AbortError is returned by Download when the connection terminates
// before the transfer completes — the peer closed or aborted it, an
// idle timeout fired, or a protocol error tore it down. Err carries
// the connection's close reason.
type AbortError struct{ Err error }

func (e *AbortError) Error() string {
	if e.Err == nil {
		return "live: connection aborted"
	}
	return "live: connection aborted: " + e.Err.Error()
}

// Unwrap exposes the close reason to errors.Is / errors.As chains.
func (e *AbortError) Unwrap() error { return e.Err }

// DownloadOpts tunes DownloadWith.
type DownloadOpts struct {
	// Deadline bounds the transfer in wall time (<= 0 means no
	// deadline); exceeding it returns ErrTimeout.
	Deadline time.Duration
	// Cancel aborts the transfer when it becomes readable (typically a
	// context's Done channel); DownloadWith then returns ErrCanceled.
	Cancel <-chan struct{}
}

// Download runs a blocking GET of size bytes on the client connection
// over the live driver: it arms the transfer, drives the loop until
// completion, and returns the result. Timestamps inside the result
// are sim times, i.e. wall-derived durations since the driver's
// epoch. deadline bounds the transfer in wall time (<= 0 means no
// deadline); exceeding it returns ErrTimeout, and a connection that
// dies first returns *AbortError.
func Download(d *Driver, client *core.Conn, size uint64, deadline time.Duration) (apps.GetResult, error) {
	return DownloadWith(d, client, size, DownloadOpts{Deadline: deadline})
}

// DownloadWith is Download with explicit options (deadline plus
// cancellation). The calling goroutine becomes the run-loop: it arms
// the transfer on the driver's clock and then drives Run to
// completion itself.
//
//mpq:entry run-loop
func DownloadWith(d *Driver, client *core.Conn, size uint64, opts DownloadOpts) (apps.GetResult, error) {
	var res *apps.GetResult
	now := func() time.Duration { return d.clock.Now().Duration() }
	apps.NewGetClient(client, size, now, func(r apps.GetResult) { res = &r })
	timedOut := false
	if opts.Deadline > 0 {
		// The deadline is a plain sim event: wall deadlines and
		// protocol timers share one timebase in live mode.
		d.clock.At(d.clock.Now().Add(opts.Deadline), func() { timedOut = true })
	}
	var canceled atomic.Bool
	if opts.Cancel != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-opts.Cancel:
				canceled.Store(true)
				d.Wake() // unblock the loop so until() re-runs
			case <-stop:
			}
		}()
	}
	err := d.Run(func() bool {
		return res != nil || timedOut || client.Closed() || canceled.Load()
	})
	if err != nil {
		return apps.GetResult{}, err
	}
	if res != nil {
		return *res, nil
	}
	if canceled.Load() {
		return apps.GetResult{}, ErrCanceled
	}
	if client.Closed() {
		cerr := client.Err()
		if cerr == nil {
			cerr = errors.New("live: connection closed")
		}
		return apps.GetResult{}, &AbortError{Err: cerr}
	}
	return apps.GetResult{}, ErrTimeout
}
