// Dualstack: a client connects over "IPv4" knowing only one server
// address; the dual-stack server advertises its second ("IPv6")
// address in an encrypted ADD_ADDRESS frame, and the path manager
// opens a second path mid-connection (§3, Path Management).
//
//	go run ./examples/dualstack
package main

import (
	"fmt"
	"time"

	"mpquic"
)

func main() {
	net := mpquic.NewTwoPathNetwork(mpquic.TwoPathConfig{
		Path0: mpquic.PathSpec{CapacityMbps: 8, RTT: 40 * time.Millisecond, QueueDelay: 60 * time.Millisecond},  // IPv4
		Path1: mpquic.PathSpec{CapacityMbps: 12, RTT: 25 * time.Millisecond, QueueDelay: 60 * time.Millisecond}, // IPv6
		Seed:  5,
	})

	serverCfg := mpquic.DefaultConfig()
	serverCfg.AdvertiseAddresses = true // send ADD_ADDRESS after the handshake
	server := net.Listen(serverCfg)
	net.ServeGet(server)

	// The client initially knows only the server's first address.
	client := net.DialPartial(mpquic.DefaultConfig(), 77)
	res, err := net.Download(client, 10<<20)
	if err != nil {
		fmt.Println("transfer did not complete:", err)
		return
	}

	fmt.Printf("downloaded %d MB in %v (%.2f Mbps)\n",
		res.Size>>20, res.Elapsed().Round(time.Millisecond), res.GoodputBps()/1e6)
	fmt.Printf("paths after ADD_ADDRESS: %d\n", len(client.Paths()))
	for _, p := range client.Paths() {
		fmt.Printf("  path %d: %s -> %s, received %.1f MB\n",
			p.ID, p.Local, p.Remote, float64(p.RecvBytes)/(1<<20))
	}
}
