package core

import (
	"mpquic/internal/netem"
	"mpquic/internal/sim"
	"mpquic/internal/wire"
)

// DatagramSender is core's egress boundary: the three capabilities a
// connection needs from whatever carries its datagrams. The emulated
// *netem.Network satisfies it natively (the deterministic simulator
// path); internal/live implements it over real UDP sockets, so the
// protocol logic above this line is byte-identical in both worlds.
//
// The contract mirrors the simulator's single-threaded discipline:
// Send and Register are only called from the goroutine driving the
// returned Clock (event callbacks, or setup before the clock runs).
// Implementations therefore need no internal locking, and a Send may
// be deferred until the current event batch finishes (the live driver
// queues and flushes; links enqueue into their serializer) — ordering
// of datagrams from one endpoint is preserved either way.
type DatagramSender interface {
	// Send transmits one datagram toward dg.To. Delivery is best
	// effort: losses are silent, exactly as on a real wire.
	Send(dg netem.Datagram)
	// Register attaches h as the ingress handler for the local
	// address addr — the local-addr identity half of the boundary.
	// Re-registering an address replaces the previous handler.
	Register(addr netem.Addr, h netem.Handler)
	// Clock is the virtual clock the endpoint schedules on. In the
	// simulator it is the discrete-event loop; in live mode it is a
	// monotone image of the wall clock (see internal/live).
	Clock() *sim.Clock
}

// The emulated network is the canonical DatagramSender.
var _ DatagramSender = (*netem.Network)(nil)

// RawDatagram wraps an already-encoded packet as an ingress datagram,
// exactly as the wire-serialization mode produces them: b holds the
// serialized QUIC packet, and Size accounts for the UDP/IPv4 framing a
// real datagram pays. The live driver uses it to inject packets read
// from a UDP socket into HandleDatagram.
//
// Buffer ownership transfers to the receiving endpoint: when b came
// from wire.GetPacketBuf, the endpoint returns it to the pool after
// the frames are consumed (corrupted packets may instead be dropped to
// the garbage collector, which PutPacketBuf tolerates).
func RawDatagram(from, to netem.Addr, b []byte) netem.Datagram {
	return netem.Datagram{
		From: from,
		To:   to,
		Size: len(b) + wire.UDPIPv4Overhead,
		Raw:  b,
	}
}

// RawBytes returns the serialized packet bytes of a wire-serialization
// datagram, or (nil, false) for a struct-mode datagram. Egress
// drivers that move real bytes (internal/live) use it to unwrap what
// Config.WireSerialization encoded; the returned slice aliases the
// pooled encode buffer, so the caller owns returning it via
// wire.PutPacketBuf once written out.
func RawBytes(dg netem.Datagram) ([]byte, bool) {
	return dg.Raw, dg.Raw != nil
}
