package netem

import (
	"time"

	"mpquic/internal/sim"
	"mpquic/internal/trace"
)

// PathSpec describes one of the disjoint end-to-end paths of the
// paper's Fig. 2 topology, using the Table 1 factors.
type PathSpec struct {
	// CapacityMbps is the bottleneck capacity in both directions.
	CapacityMbps float64
	// RTT is the two-way propagation delay (split evenly across the
	// two directions).
	RTT time.Duration
	// QueueDelay is the maximum bufferbloat the bottleneck queue can
	// introduce.
	QueueDelay time.Duration
	// LossRate is the per-direction random loss probability in [0,1].
	LossRate float64
}

// TwoPathNet is the emulated Fig. 2 network: a dual-homed client and a
// dual-homed server joined by two disjoint paths.
type TwoPathNet struct {
	Net *Network
	// ClientAddrs[i] and ServerAddrs[i] are the endpoints of path i.
	ClientAddrs [2]Addr
	ServerAddrs [2]Addr
	// Fwd[i] carries client->server traffic on path i; Rev[i] the
	// reverse direction.
	Fwd [2]*Link
	Rev [2]*Link
	// Specs records the configuration each path was built with.
	Specs [2]PathSpec
}

// DefaultAddrs are the interface addresses used by NewTwoPath: path 0
// is an "IPv4/WiFi-like" pair, path 1 an "IPv6/LTE-like" pair. The
// addresses are opaque labels; they exist so examples read naturally.
var DefaultAddrs = struct {
	Client [2]Addr
	Server [2]Addr
}{
	Client: [2]Addr{"10.0.1.1:49152", "10.0.2.1:49152"},
	Server: [2]Addr{"10.0.1.100:443", "10.0.2.100:443"},
}

// NewTwoPath builds the Fig. 2 topology on a fresh clock.
func NewTwoPath(clock *sim.Clock, rand *sim.Rand, specs [2]PathSpec) *TwoPathNet {
	n := New(clock, rand)
	tp := &TwoPathNet{Net: n, Specs: specs}
	tp.ClientAddrs = DefaultAddrs.Client
	tp.ServerAddrs = DefaultAddrs.Server
	for i := 0; i < 2; i++ {
		cfg := LinkConfig{
			RateMbps:   specs[i].CapacityMbps,
			Delay:      specs[i].RTT / 2,
			QueueDelay: specs[i].QueueDelay,
			LossRate:   specs[i].LossRate,
		}
		tp.Fwd[i], tp.Rev[i] = n.Connect(tp.ClientAddrs[i], tp.ServerAddrs[i], cfg)
	}
	// Cross routes: traffic from client interface i to server interface j
	// (i != j) is not possible on disjoint paths; leaving those routes
	// absent models the disjointness.
	return tp
}

// KillPath makes path i drop every packet in both directions from now
// on (the §4.3 handover event).
func (tp *TwoPathNet) KillPath(i int) {
	tp.Fwd[i].SetDown(true)
	tp.Rev[i].SetDown(true)
}

// SetPathLoss sets the random loss rate of path i in both directions.
func (tp *TwoPathNet) SetPathLoss(i int, p float64) {
	tp.Fwd[i].SetLossRate(p)
	tp.Rev[i].SetLossRate(p)
}

// PathLinks returns both directions of path i (forward first) — the
// hook dynamics scripts use to mutate a whole path.
func (tp *TwoPathNet) PathLinks(i int) []*Link {
	return []*Link{tp.Fwd[i], tp.Rev[i]}
}

// SetTracer attaches t to every link of the topology, so link
// lifecycle events (down/up/reconfigured) appear in protocol traces.
func (tp *TwoPathNet) SetTracer(t trace.Tracer) {
	for i := 0; i < 2; i++ {
		tp.Fwd[i].SetTracer(t)
		tp.Rev[i].SetTracer(t)
	}
}

// BDPBytes estimates the bandwidth-delay product of path i in bytes,
// a helper for tests and workload sanity checks.
func (tp *TwoPathNet) BDPBytes(i int) int {
	s := tp.Specs[i]
	return int(s.CapacityMbps * 1e6 / 8 * s.RTT.Seconds())
}
