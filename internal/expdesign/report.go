package expdesign

import (
	"fmt"
	"strings"
	"time"

	"mpquic/internal/stats"
)

// ReportTimeRatioCDF renders the Fig. 3/5/8/9-style summary: the CDFs
// of Time(TCP)/Time(QUIC) and Time(MPTCP)/Time(MPQUIC). Ratio > 1
// means the QUIC-family protocol was faster.
func ReportTimeRatioCDF(fd FigureData, title string) string {
	single, multi := fd.TimeRatios()
	var b strings.Builder
	fmt.Fprintf(&b, "%s — GET %s, %d sims, %s\n", title, fmtSize(fd.Size), len(single), fd.Class)
	writeRatioRow := func(name string, xs []float64) {
		fmt.Fprintf(&b, "  %-22s n=%-4d  faster-in=%5.1f%%  p10=%5.2f  p25=%5.2f  median=%5.2f  p75=%5.2f  p90=%5.2f\n",
			name, len(xs),
			100*stats.FractionAbove(xs, 1),
			stats.Percentile(xs, 10), stats.Percentile(xs, 25), stats.Median(xs),
			stats.Percentile(xs, 75), stats.Percentile(xs, 90))
	}
	writeRatioRow("Time TCP / QUIC", single)
	writeRatioRow("Time MPTCP / MPQUIC", multi)
	b.WriteString(stats.AsciiCDF(map[string][]float64{
		"Time TCP / QUIC":     single,
		"Time MPTCP / MPQUIC": multi,
	}, 0.1, 10, 60, 12))
	return b.String()
}

// CDFSeries dumps the two empirical CDFs as x,p rows (one series per
// call), for plotting the figures exactly.
func CDFSeries(xs []float64) string {
	var b strings.Builder
	for _, pt := range stats.CDF(xs) {
		fmt.Fprintf(&b, "%.4f %.4f\n", pt.X, pt.P)
	}
	return b.String()
}

// ReportAggBenefit renders the Fig. 4/6/7/10-style summary: boxplot
// five-number summaries of the experimental aggregation benefit for
// both families, split by initial path.
func ReportAggBenefit(fd FigureData, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — GET %s, %d scenarios, %s\n", title, fmtSize(fd.Size), len(fd.Results), fd.Class)
	boxes := make(map[string]stats.Box)
	for _, fam := range []Family{FamilyTCP, FamilyQUIC} {
		best, worst := fd.AggBenefits(fam)
		frac, _ := fd.BenefitSummary(fam)
		fmt.Fprintf(&b, "  %-16s EBen>0 in %.0f%% of sims\n", fam.String()+":", 100*frac)
		for _, half := range []struct {
			name string
			xs   []float64
		}{{"best path first", best}, {"worst path first", worst}} {
			box := stats.BoxOf(half.xs)
			fmt.Fprintf(&b, "    %-17s min=%6.2f q1=%6.2f med=%6.2f q3=%6.2f max=%6.2f mean=%6.2f (n=%d)\n",
				half.name, box.Min, box.Q1, box.Median, box.Q3, box.Max, box.Mean, box.N)
			short := "MPTCP"
			if fam == FamilyQUIC {
				short = "MPQUIC"
			}
			boxes[short+" "+half.name] = box
		}
	}
	b.WriteString(stats.AsciiBox(boxes, -1.5, 1.5, 60))
	return b.String()
}

// ReportTable1 renders the experimental-design ranges and a design
// excerpt, regenerating the paper's Table 1 plus the WSP selection.
func ReportTable1(scenariosPerClass int) string {
	var b strings.Builder
	b.WriteString("Table 1: experimental design parameters (WSP selection)\n")
	b.WriteString("                        Low-BDP            High-BDP\n")
	b.WriteString("  Factor                Min.     Max.      Min.     Max.\n")
	fmt.Fprintf(&b, "  Capacity [Mbps]       %-8.1f %-9.0f %-8.1f %-8.0f\n",
		LowBDPRanges.CapacityMinMbps, LowBDPRanges.CapacityMaxMbps,
		HighBDPRanges.CapacityMinMbps, HighBDPRanges.CapacityMaxMbps)
	fmt.Fprintf(&b, "  Round-Trip-Time [ms]  %-8d %-9d %-8d %-8d\n",
		0, LowBDPRanges.RTTMax/time.Millisecond, 0, HighBDPRanges.RTTMax/time.Millisecond)
	fmt.Fprintf(&b, "  Queuing Delay [ms]    %-8d %-9d %-8d %-8d\n",
		0, LowBDPRanges.QueueDelayMax/time.Millisecond, 0, HighBDPRanges.QueueDelayMax/time.Millisecond)
	fmt.Fprintf(&b, "  Random Loss [%%]       %-8d %-9.1f %-8d %-8.1f\n",
		0, LowBDPRanges.LossMax*100, 0, HighBDPRanges.LossMax*100)
	fmt.Fprintf(&b, "\n  %d scenarios per class; first 5 of %s:\n", scenariosPerClass, LowBDPLosses.Name)
	for _, sc := range GenerateScenarios(LowBDPLosses, scenariosPerClass)[:5] {
		fmt.Fprintf(&b, "    %s\n", sc)
	}
	return b.String()
}

// ReportHandover renders the Fig. 11 series: one row per
// request/response exchange.
func ReportHandover(res HandoverResult, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — request/response delay over time (Fig. 11)\n", title)
	fmt.Fprintf(&b, "  client marked initial path potentially-failed: %v\n", res.ClientMarkedPF)
	fmt.Fprintf(&b, "  PATHS frame reached server: %v\n", res.ServerSawPathsFrame)
	b.WriteString("  sent_time_s  delay_ms\n")
	for _, s := range res.Samples {
		fmt.Fprintf(&b, "  %10.2f  %8.1f\n", s.SentAt.Seconds(), float64(s.Delay)/float64(time.Millisecond))
	}
	return b.String()
}

// ReportRunSeries renders a run's per-path time series — the
// paper-style congestion-window and smoothed-RTT evolution figures —
// from RunMetrics.Series (recorded when the grid ran with
// SampleInterval set). Empty series yield a one-line notice.
func ReportRunSeries(m RunMetrics, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — per-path evolution (%d samples)\n", title, len(m.Series))
	if len(m.Series) == 0 {
		b.WriteString("  no samples: run the grid with SampleInterval > 0\n")
		return b.String()
	}
	cwnd := make(map[string][]stats.Point)
	srtt := make(map[string][]stats.Point)
	for _, s := range m.Series {
		name := fmt.Sprintf("path %d", s.Path)
		t := s.T.Seconds()
		cwnd[name] = append(cwnd[name], stats.Point{X: t, Y: float64(s.Cwnd)})
		srtt[name] = append(srtt[name], stats.Point{X: t, Y: float64(s.SRTT) / float64(time.Millisecond)})
	}
	b.WriteString("  congestion window [bytes] over time [s]\n")
	b.WriteString(stats.AsciiTimeSeries(cwnd, 60, 12))
	b.WriteString("  smoothed RTT [ms] over time [s]\n")
	b.WriteString(stats.AsciiTimeSeries(srtt, 60, 12))
	return b.String()
}

func fmtSize(size uint64) string {
	switch {
	case size >= 1<<20:
		return fmt.Sprintf("%d MB", size>>20)
	default:
		return fmt.Sprintf("%d KB", size>>10)
	}
}
