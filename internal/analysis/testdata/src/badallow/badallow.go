// Package badallow holds malformed //mpqvet:allow annotations; the
// suppression collector must reject both.
package badallow

import "time"

func missingReason() time.Time {
	//mpqvet:allow walltime
	return time.Now()
}

func unknownAnalyzer() time.Time {
	//mpqvet:allow nosuchanalyzer because reasons
	return time.Now()
}
