package analysis_test

import (
	"path/filepath"
	"testing"

	"mpquic/internal/analysis"
)

// TestLiveInvariantsPinned proves the live-lane analyzers cannot
// silently regress into passing everything: each of confine,
// ringsafety and blocking must flag the deliberately broken driver
// loop in testdata/src/livebroken. A zero count from any of them means
// the analyzer stopped seeing the very bugs it was built for.
func TestLiveInvariantsPinned(t *testing.T) {
	root := moduleRoot(t)
	pkg, err := analysis.LoadFromDir(root, filepath.Join("testdata", "src", "livebroken"), "livebroken")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []*analysis.Analyzer{analysis.Confine, analysis.RingSafety, analysis.Blocking} {
		diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if len(diags) == 0 {
			t.Errorf("%s produced no diagnostics on the broken driver loop; the analyzer has gone blind", a.Name)
		}
		for _, d := range diags {
			t.Logf("%s: %s", a.Name, d.Format(pkg.Fset))
		}
	}
}
