// Package staleallow carries an //mpqvet:allow that no longer
// suppresses any diagnostic: the code it once excused has been fixed.
// RunAnalyzers must reject it as stale when the named analyzer runs —
// a do-nothing allow is a latent hole, not a no-op.
package staleallow

import "time"

func fine() time.Duration {
	//mpqvet:allow walltime this line stopped calling time.Now long ago
	return time.Second
}
