package stream

import (
	"fmt"

	"mpquic/internal/wire"
)

// RecvStream reassembles STREAM frames arriving out of order — possibly
// over different paths — using the (offset, length) information that
// makes multipath reordering trivial for QUIC (§3, Reliable Data
// Transmission).
type RecvStream struct {
	id       wire.StreamID
	received IntervalSet
	// buf holds real-mode bytes, indexed by absolute offset. nil until
	// real data arrives.
	buf        []byte
	readOffset uint64
	finOffset  uint64
	hasFin     bool
}

// NewRecvStream creates an empty receive stream.
func NewRecvStream(id wire.StreamID) *RecvStream {
	return &RecvStream{id: id}
}

// ID returns the stream ID.
func (r *RecvStream) ID() wire.StreamID { return r.id }

// OnFrame ingests one STREAM frame. It returns the number of
// previously unseen bytes (for connection flow-control accounting) and
// an error on inconsistent FIN offsets.
func (r *RecvStream) OnFrame(f *wire.StreamFrame) (newBytes uint64, err error) {
	end := f.Offset + uint64(f.Len())
	if f.Fin {
		if r.hasFin && r.finOffset != end {
			return 0, fmt.Errorf("stream %d: conflicting FIN offsets %d and %d", r.id, r.finOffset, end)
		}
		r.hasFin = true
		r.finOffset = end
	}
	if r.hasFin && end > r.finOffset {
		return 0, fmt.Errorf("stream %d: data beyond FIN offset", r.id)
	}
	if f.Len() == 0 {
		return 0, nil
	}
	before := r.received.Size()
	r.received.Add(f.Offset, end)
	newBytes = r.received.Size() - before
	if f.Data != nil {
		if uint64(len(r.buf)) < end {
			if uint64(cap(r.buf)) >= end {
				r.buf = r.buf[:end]
			} else {
				// Grow geometrically: extending by one frame at a time
				// would reallocate and copy the whole reassembly buffer
				// per packet — O(n²) over a transfer, and the dominant
				// cost of a fast live-mode download. When the stream
				// length is already known (FIN seen), size to it exactly.
				newCap := uint64(cap(r.buf)) * 2
				if newCap < end {
					newCap = end
				}
				if newCap < 16<<10 {
					newCap = 16 << 10
				}
				if r.hasFin && r.finOffset >= end && newCap > r.finOffset {
					newCap = r.finOffset
				}
				grown := make([]byte, end, newCap)
				copy(grown, r.buf)
				r.buf = grown
			}
		}
		copy(r.buf[f.Offset:end], f.Data)
	}
	return newBytes, nil
}

// Readable reports contiguous bytes available past the read offset.
func (r *RecvStream) Readable() uint64 {
	return r.received.FirstMissingFrom(r.readOffset) - r.readOffset
}

// Read consumes up to n contiguous bytes and returns how many were
// consumed plus the real-mode bytes (nil in synthetic mode).
func (r *RecvStream) Read(n uint64) (consumed uint64, data []byte) {
	avail := r.Readable()
	if n > avail {
		n = avail
	}
	if n == 0 {
		return 0, nil
	}
	if r.buf != nil && uint64(len(r.buf)) >= r.readOffset+n {
		data = r.buf[r.readOffset : r.readOffset+n]
	}
	r.readOffset += n
	return n, data
}

// ReadOffset returns the application's consumption frontier.
func (r *RecvStream) ReadOffset() uint64 { return r.readOffset }

// BytesReceived returns the total distinct bytes received so far.
func (r *RecvStream) BytesReceived() uint64 { return r.received.Size() }

// FinReceived reports whether a FIN has arrived (at any offset).
func (r *RecvStream) FinReceived() bool { return r.hasFin }

// FinOffset returns the stream length once FIN was seen.
func (r *RecvStream) FinOffset() (uint64, bool) { return r.finOffset, r.hasFin }

// Finished reports whether the application consumed the whole stream.
func (r *RecvStream) Finished() bool {
	return r.hasFin && r.readOffset == r.finOffset
}

// Complete reports whether all bytes up to FIN have *arrived*
// (regardless of application consumption).
func (r *RecvStream) Complete() bool {
	if !r.hasFin {
		return false
	}
	if r.finOffset == 0 {
		return true
	}
	return r.received.Contains(0, r.finOffset)
}
