// Command mpq-escape is the compiler-assisted escape gate for the live
// fast lane: it runs `go build -gcflags=-m` over a package pattern and
// fails if the compiler reports anything escaping to the heap inside a
// function annotated //mpq:noescape. This makes the hot path's
// 0-allocs/packet property a build gate instead of a sampled
// testing.AllocsPerRun measurement — every control-flow path is
// covered, and the diagnostics replay from the build cache, so the
// gate costs roughly one cache probe.
//
// Usage:
//
//	mpq-escape [-list] [package pattern ...]
//
//	mpq-escape ./...   # whole module (the default)
//	mpq-escape -list   # show the //mpq:noescape functions and exit
//
// Exit status: 0 clean (or nothing annotated), 1 on violations, 2 on
// infrastructure errors. When the toolchain's -gcflags=-m output is not
// parseable the gate SKIPS LOUDLY (a warning on stderr, exit 0) rather
// than pretending it verified anything.
package main

import (
	"flag"
	"fmt"
	"os"

	"mpquic/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "show the //mpq:noescape functions and exit")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpq-escape:", err)
		os.Exit(2)
	}
	report, err := analysis.CheckEscapes(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpq-escape:", err)
		os.Exit(2)
	}
	if *list {
		for _, fn := range report.Funcs {
			fmt.Printf("%s:%d-%d: %s\n", fn.File, fn.StartLine, fn.EndLine, fn.Name)
		}
		return
	}
	if report.Skipped != "" {
		fmt.Fprintf(os.Stderr, "mpq-escape: SKIPPED (not verified): %s\n", report.Skipped)
		return
	}
	if len(report.Violations) > 0 {
		for _, v := range report.Violations {
			fmt.Println(v)
		}
		fmt.Fprintf(os.Stderr, "mpq-escape: %d escape(s) in //mpq:noescape functions\n", len(report.Violations))
		os.Exit(1)
	}
	fmt.Printf("mpq-escape: %d //mpq:noescape function(s) clean\n", len(report.Funcs))
}
