package expdesign

import (
	"time"

	"mpquic/internal/apps"
	"mpquic/internal/core"
	"mpquic/internal/netem"
	"mpquic/internal/sim"
)

// HandoverConfig parameterizes the §4.3 network-handover scenario: a
// smartphone on a bad WiFi (initial, lower latency) and a good
// cellular network; the WiFi dies mid-connection.
type HandoverConfig struct {
	InitialRTT   time.Duration // paper: 15 ms
	SecondRTT    time.Duration // paper: 25 ms
	CapacityMbps float64
	FailAt       time.Duration // paper: 3 s
	Duration     time.Duration
	// PathsFrameOnFailure toggles the §4.3 optimization (ablation).
	PathsFrameOnFailure bool
	Seed                uint64
}

// DefaultHandoverConfig mirrors Fig. 11.
func DefaultHandoverConfig() HandoverConfig {
	return HandoverConfig{
		InitialRTT:          15 * time.Millisecond,
		SecondRTT:           25 * time.Millisecond,
		CapacityMbps:        10,
		FailAt:              3 * time.Second,
		Duration:            15 * time.Second,
		PathsFrameOnFailure: true,
		Seed:                1,
	}
}

// HandoverResult is the Fig. 11 series plus diagnostic counters.
type HandoverResult struct {
	Samples []apps.ReqRespSample
	// ClientMarkedPF reports whether the client detected the failure.
	ClientMarkedPF bool
	// ServerSawPathsFrame reports whether the PATHS frame reached the
	// server (the mechanism that spares it an RTO, §4.3).
	ServerSawPathsFrame bool
}

// RunHandover executes the §4.3 request/response scenario over MPQUIC
// and returns the delay-vs-time series of Fig. 11.
func RunHandover(hc HandoverConfig) HandoverResult {
	clock := sim.NewClock()
	clock.Limit = 100_000_000
	tp := netem.NewTwoPath(clock, sim.NewRand(hc.Seed), [2]netem.PathSpec{
		{CapacityMbps: hc.CapacityMbps, RTT: hc.InitialRTT, QueueDelay: 100 * time.Millisecond},
		{CapacityMbps: hc.CapacityMbps, RTT: hc.SecondRTT, QueueDelay: 100 * time.Millisecond},
	})
	cfg := core.DefaultConfig()
	cfg.PathsFrameOnFailure = hc.PathsFrameOnFailure
	cfg.HandshakeSeed = hc.Seed

	lis := core.Listen(tp.Net, cfg, tp.ServerAddrs[:])
	var res HandoverResult
	apps.NewEchoServerWithPathsHook(lis, func() { res.ServerSawPathsFrame = true })

	client := core.Dial(tp.Net, cfg, core.NewConnID(hc.Seed), tp.ClientAddrs[:], tp.ServerAddrs[:])
	rr := apps.NewReqRespClient(client, clock, hc.Duration)
	clock.At(sim.Time(hc.FailAt), func() { tp.KillPath(0) })
	clock.RunUntil(sim.Time(hc.Duration + 5*time.Second))

	res.Samples = rr.Samples()
	if p0 := client.PathByID(0); p0 != nil {
		res.ClientMarkedPF = p0.PotentiallyFailed()
	}
	return res
}
