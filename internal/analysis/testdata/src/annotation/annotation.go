// Package annotation exercises the //mpq: directive validator: a
// misspelled, mis-placed or mis-aritied directive would be silently
// ignored by the consuming analyzers, so each is an error here.
package annotation

type state struct {
	//mpq:ring // want `//mpq:ring on n, which is not a channel`
	n int
	//mpq:ring // the clean case: a channel field
	free chan []byte
	//mpq:confined run-loop // the clean member form, with a rationale
	counter int
}

//mpq:confinned run-loop // want `unknown //mpq: directive "confinned"`
var typo int

//mpq:confined // want `//mpq:confined takes 1 argument`
var missingArg int

//mpq:entry run-loop extra // want `//mpq:entry takes 1 argument`
func arityEntry() {}

//mpq:noescape // want `//mpq:noescape is misplaced here`
var misplacedNoescape int

//mpq:entry run-loop // want `//mpq:entry is misplaced here`
var misplacedEntry int

//mpq:waitpoint // want `//mpq:waitpoint is misplaced here`
func waitpointOnFunc(ch chan int) {
	// The legal form: on (or above) a statement in a body.
	//mpq:waitpoint
	<-ch
}

//mpq:noescape
func cleanNoescape() {}

//mpq:entry run-loop
func cleanEntry() {}

//mpqvet:allow annotation demonstrating suppression of the validator itself
//mpq:bogus
var suppressed int
