package mptcpsim

import "time"

// GetRequestSize mirrors the TCP model's request size.
const GetRequestSize = 100

// GetResult reports one finished MPTCP download.
type GetResult struct {
	Size          uint64
	Start         time.Duration
	Finish        time.Duration
	EstablishedAt time.Duration
}

// Elapsed is the client-perceived download time.
func (r GetResult) Elapsed() time.Duration { return r.Finish - r.Start }

// GoodputBps is application goodput in bits per second.
func (r GetResult) GoodputBps() float64 {
	el := r.Elapsed().Seconds()
	if el <= 0 {
		return 0
	}
	return float64(r.Size) * 8 / el
}

// ServeGet attaches a GET responder to every accepted connection.
func ServeGet(l *Listener, size uint64) {
	l.OnConnection(func(c *Conn) {
		served := false
		c.OnData(func() {
			if n := c.Readable(); n > 0 {
				c.Read(n)
			}
			if c.Finished() && !served {
				served = true
				c.WriteSynthetic(size)
				c.CloseWrite()
			}
		})
	})
}

// GetOverMPTCP arms a client-side download.
func GetOverMPTCP(c *Conn, size uint64, now func() time.Duration, onDone func(GetResult)) {
	start := now()
	done := false
	c.OnEstablished(func() {
		c.WriteSynthetic(GetRequestSize)
		c.CloseWrite()
	})
	c.OnData(func() {
		if n := c.Readable(); n > 0 {
			c.Read(n)
		}
		if c.Finished() && !done {
			done = true
			if onDone != nil {
				onDone(GetResult{Size: size, Start: start, Finish: now(), EstablishedAt: c.Stats.EstablishedAt})
			}
		}
	})
}
