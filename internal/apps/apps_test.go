package apps

import (
	"testing"
	"time"

	"mpquic/internal/core"
	"mpquic/internal/netem"
	"mpquic/internal/sim"
)

func newPair(t *testing.T) (*sim.Clock, *core.Listener, *core.Conn) {
	t.Helper()
	clock := sim.NewClock()
	clock.Limit = 20_000_000
	tp := netem.NewTwoPath(clock, sim.NewRand(2), [2]netem.PathSpec{
		{CapacityMbps: 10, RTT: 20 * time.Millisecond, QueueDelay: 100 * time.Millisecond},
		{CapacityMbps: 10, RTT: 30 * time.Millisecond, QueueDelay: 100 * time.Millisecond},
	})
	cfg := core.DefaultConfig()
	lis := core.Listen(tp.Net, cfg, tp.ServerAddrs[:])
	client := core.Dial(tp.Net, cfg, 1, tp.ClientAddrs[:], tp.ServerAddrs[:])
	return clock, lis, client
}

func TestParseAndFormatGet(t *testing.T) {
	n, err := ParseGet(FormatGet(123456))
	if err != nil || n != 123456 {
		t.Fatalf("round trip: %d %v", n, err)
	}
	for _, bad := range []string{"", "GET", "PUT 5", "GET x", "GET 1 2"} {
		if _, err := ParseGet(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestGetClientServerEndToEnd(t *testing.T) {
	clock, lis, client := newPair(t)
	NewGetServer(lis)
	var res *GetResult
	NewGetClient(client, 512<<10, func() time.Duration { return clock.Now().Duration() },
		func(r GetResult) { res = &r })
	clock.RunUntil(sim.Time(30 * time.Second))
	if res == nil {
		t.Fatal("no result")
	}
	if res.Size != 512<<10 {
		t.Fatalf("size %d", res.Size)
	}
	if res.Elapsed() <= 0 || res.GoodputBps() <= 0 {
		t.Fatalf("bogus result %+v", res)
	}
	if res.HandshakeDone <= 0 || res.HandshakeDone >= res.Finish {
		t.Fatalf("handshake time %v out of order", res.HandshakeDone)
	}
}

func TestGetResultMetrics(t *testing.T) {
	r := GetResult{Size: 1 << 20, Start: time.Second, Finish: 2 * time.Second}
	if r.Elapsed() != time.Second {
		t.Fatal("elapsed")
	}
	want := float64(1<<20) * 8
	if r.GoodputBps() != want {
		t.Fatalf("goodput %v want %v", r.GoodputBps(), want)
	}
	zero := GetResult{}
	if zero.GoodputBps() != 0 {
		t.Fatal("zero-duration goodput should be 0")
	}
}

func TestGetServerIgnoresMalformedRequest(t *testing.T) {
	clock, lis, client := newPair(t)
	NewGetServer(lis)
	responded := false
	client.OnHandshakeComplete(func() {
		s := client.OpenStream()
		s.OnData(func() { responded = true })
		s.Write([]byte("NONSENSE"))
		s.Close()
	})
	clock.RunUntil(sim.Time(5 * time.Second))
	if responded {
		t.Fatal("server answered a malformed request")
	}
}

func TestEchoServerReqResp(t *testing.T) {
	clock, lis, client := newPair(t)
	NewEchoServer(lis)
	rr := NewReqRespClient(client, clock, 3*time.Second)
	clock.RunUntil(sim.Time(5 * time.Second))
	samples := rr.Samples()
	// ~8 requests in 3 s at 400 ms cadence.
	if len(samples) < 6 {
		t.Fatalf("only %d samples", len(samples))
	}
	for i, s := range samples {
		if s.Delay <= 0 || s.Delay > 200*time.Millisecond {
			t.Fatalf("sample %d: delay %v", i, s.Delay)
		}
		if i > 0 && s.SentAt <= samples[i-1].SentAt {
			t.Fatal("samples out of order")
		}
	}
	// Cadence is ReqRespInterval.
	if gap := samples[1].SentAt - samples[0].SentAt; gap != ReqRespInterval {
		t.Fatalf("cadence %v", gap)
	}
}

func TestReqRespClientStop(t *testing.T) {
	clock, lis, client := newPair(t)
	NewEchoServer(lis)
	rr := NewReqRespClient(client, clock, 10*time.Second)
	clock.At(sim.Time(1200*time.Millisecond), func() { rr.Stop() })
	clock.RunUntil(sim.Time(5 * time.Second))
	if n := len(rr.Samples()); n > 4 {
		t.Fatalf("%d samples after early stop", n)
	}
}
