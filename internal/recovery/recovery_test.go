package recovery

import (
	"testing"
	"time"

	"mpquic/internal/rtt"
	"mpquic/internal/wire"
)

func newSpace() *Space {
	return NewSpace(rtt.New(rtt.DefaultQUIC()))
}

func sent(s *Space, size int, at time.Duration) *SentPacket {
	sp := &SentPacket{
		PN:              s.NextPacketNumber(),
		Size:            size,
		SentTime:        at,
		Retransmittable: true,
	}
	s.OnPacketSent(sp)
	return sp
}

func ackOf(pns ...wire.PacketNumber) *wire.AckFrame {
	return &wire.AckFrame{Ranges: wire.BuildAckRanges(pns)}
}

func TestAckSettlesPacketsAndSamplesRTT(t *testing.T) {
	s := newSpace()
	sent(s, 1000, 0)
	sent(s, 1000, time.Millisecond)
	if s.BytesInFlight() != 2000 {
		t.Fatalf("in flight %d", s.BytesInFlight())
	}
	res := s.OnAck(ackOf(0, 1), 51*time.Millisecond)
	if len(res.NewlyAcked) != 2 || len(res.Lost) != 0 {
		t.Fatalf("acked %d lost %d", len(res.NewlyAcked), len(res.Lost))
	}
	if !res.HasRTTSample || res.SampleRTT != 50*time.Millisecond {
		t.Fatalf("rtt sample %v", res.SampleRTT)
	}
	if s.BytesInFlight() != 0 || s.HasRetransmittableInFlight() {
		t.Fatal("in-flight not cleared")
	}
	if s.RTT().SmoothedRTT() != 50*time.Millisecond {
		t.Fatalf("srtt %v", s.RTT().SmoothedRTT())
	}
}

func TestDuplicateAckIsIdempotent(t *testing.T) {
	s := newSpace()
	sent(s, 1000, 0)
	s.OnAck(ackOf(0), 10*time.Millisecond)
	res := s.OnAck(ackOf(0), 20*time.Millisecond)
	if len(res.NewlyAcked) != 0 || res.HasRTTSample {
		t.Fatal("duplicate ack re-processed")
	}
}

func TestPacketThresholdLoss(t *testing.T) {
	s := newSpace()
	for i := 0; i < 5; i++ {
		sent(s, 1000, 0)
	}
	// Ack 3 and 4 at now=50ms: srtt sample 50ms → time threshold
	// 56.25ms not yet reached, so only the packet threshold applies:
	// packets 0 and 1 are ≥3 below largest; packet 2 survives.
	res := s.OnAck(ackOf(3, 4), 50*time.Millisecond)
	if len(res.Lost) != 2 {
		t.Fatalf("lost %d, want 2", len(res.Lost))
	}
	if res.Lost[0].PN != 0 || res.Lost[1].PN != 1 {
		t.Fatalf("lost %v,%v", res.Lost[0].PN, res.Lost[1].PN)
	}
	if !res.CongestionEvent {
		t.Fatal("no congestion event")
	}
}

func TestOneCongestionEventPerWindow(t *testing.T) {
	s := newSpace()
	for i := 0; i < 10; i++ {
		sent(s, 1000, time.Duration(i)*time.Millisecond)
	}
	res1 := s.OnAck(ackOf(4), 20*time.Millisecond) // 0,1 lost
	if !res1.CongestionEvent {
		t.Fatal("first loss no event")
	}
	// Further losses among packets sent before the cutback: no event.
	res2 := s.OnAck(ackOf(4, 6), 25*time.Millisecond) // 2,3 lost
	if len(res2.Lost) == 0 {
		t.Fatal("expected more losses")
	}
	if res2.CongestionEvent {
		t.Fatal("second event within same window")
	}
}

func TestTimeThresholdLossViaTimer(t *testing.T) {
	s := newSpace()
	sent(s, 1000, 0)                  // pn 0
	sent(s, 1000, 1*time.Millisecond) // pn 1
	// Ack only pn 1; pn 0 is 1 below largest → not past packet
	// threshold, but the time threshold arms.
	res := s.OnAck(ackOf(1), 41*time.Millisecond)
	if len(res.Lost) != 0 {
		t.Fatal("lost too early")
	}
	lt := s.LossTime()
	if lt == 0 {
		t.Fatal("loss timer not armed")
	}
	// srtt = 40ms → threshold 45ms; pn0 sent at 0 → deadline 45ms.
	if lt != 45*time.Millisecond {
		t.Fatalf("loss time %v, want 45ms", lt)
	}
	lost, event := s.OnLossTimer(lt)
	if len(lost) != 1 || lost[0].PN != 0 || !event {
		t.Fatalf("timer loss: %v event=%v", lost, event)
	}
}

func TestRTODeclaresAllOutstandingLost(t *testing.T) {
	s := newSpace()
	for i := 0; i < 4; i++ {
		sent(s, 1000, 0)
	}
	rtoBefore := s.RTT().RTO()
	lost := s.OnRTO(500 * time.Millisecond)
	if len(lost) != 4 {
		t.Fatalf("lost %d", len(lost))
	}
	if s.BytesInFlight() != 0 {
		t.Fatal("in-flight after RTO")
	}
	if s.RTT().RTO() != 2*rtoBefore {
		t.Fatalf("no backoff: %v", s.RTT().RTO())
	}
	if s.Stats.RTOCount != 1 {
		t.Fatal("stats")
	}
}

func TestAckAfterLossIsNoop(t *testing.T) {
	s := newSpace()
	for i := 0; i < 5; i++ {
		sent(s, 1000, 0)
	}
	res := s.OnAck(ackOf(4), 10*time.Millisecond) // 0,1 lost
	if len(res.Lost) != 2 {
		t.Fatalf("lost %d", len(res.Lost))
	}
	// Late ack for a lost packet: it's settled, no double accounting.
	res2 := s.OnAck(ackOf(0, 4), 15*time.Millisecond)
	if len(res2.NewlyAcked) != 0 {
		t.Fatal("lost packet newly acked")
	}
}

func TestOutstandingAndTrim(t *testing.T) {
	s := newSpace()
	for i := 0; i < 100; i++ {
		sent(s, 100, time.Duration(i)*time.Millisecond)
	}
	s.OnAck(&wire.AckFrame{Ranges: []wire.AckRange{{Smallest: 0, Largest: 89}}}, 200*time.Millisecond)
	out := s.Outstanding()
	if len(out) != 10 || out[0].PN != 90 {
		t.Fatalf("outstanding %d, first %v", len(out), out[0].PN)
	}
}

func TestMonotonicPNEnforced(t *testing.T) {
	s := newSpace()
	sp := &SentPacket{PN: 5, Size: 1}
	s.OnPacketSent(sp)
	defer func() {
		if recover() == nil {
			t.Fatal("non-monotonic PN accepted")
		}
	}()
	s.OnPacketSent(&SentPacket{PN: 5, Size: 1})
}

func TestAckManagerImmediateAckEverySecondPacket(t *testing.T) {
	a := NewAckManager(0)
	if a.ShouldSendAck(0) {
		t.Fatal("fresh manager wants ack")
	}
	a.OnPacketReceived(0, true, 0)
	if a.ShouldSendAck(0) {
		t.Fatal("ack after single packet")
	}
	if a.AckDeadline() != MaxAckDelay {
		t.Fatalf("deadline %v", a.AckDeadline())
	}
	a.OnPacketReceived(1, true, time.Millisecond)
	if !a.ShouldSendAck(time.Millisecond) {
		t.Fatal("no ack after 2 packets")
	}
}

func TestAckManagerDelayedAckDeadline(t *testing.T) {
	a := NewAckManager(0)
	a.OnPacketReceived(0, true, 10*time.Millisecond)
	if a.ShouldSendAck(20 * time.Millisecond) {
		t.Fatal("too early")
	}
	if !a.ShouldSendAck(10*time.Millisecond + MaxAckDelay) {
		t.Fatal("delayed ack never fires")
	}
}

func TestAckManagerOutOfOrderTriggersImmediateAck(t *testing.T) {
	a := NewAckManager(0)
	a.OnPacketReceived(5, true, 0)
	if !a.ShouldSendAck(0) {
		// First packet is pn 5 → largest==5, single range; but a gap
		// from 0 is unknowable. Receiving 3 after 5 must trigger.
		a.OnPacketReceived(3, true, time.Millisecond)
		if !a.ShouldSendAck(time.Millisecond) {
			t.Fatal("reordering did not trigger immediate ack")
		}
	}
}

func TestAckManagerBuildAckRangesAndDelay(t *testing.T) {
	a := NewAckManager(3)
	a.OnPacketReceived(0, true, 0)
	a.OnPacketReceived(1, true, time.Millisecond)
	a.OnPacketReceived(5, true, 2*time.Millisecond)
	ack := a.BuildAck(7 * time.Millisecond)
	if ack.PathID != 3 {
		t.Fatalf("path %d", ack.PathID)
	}
	if len(ack.Ranges) != 2 || ack.Ranges[0] != (wire.AckRange{Smallest: 5, Largest: 5}) ||
		ack.Ranges[1] != (wire.AckRange{Smallest: 0, Largest: 1}) {
		t.Fatalf("ranges %+v", ack.Ranges)
	}
	if ack.AckDelay != 5*time.Millisecond {
		t.Fatalf("delay %v", ack.AckDelay)
	}
	if err := ack.Validate(); err != nil {
		t.Fatal(err)
	}
	// Building resets policy state.
	if a.ShouldSendAck(100 * time.Millisecond) {
		t.Fatal("state not reset")
	}
}

func TestAckManagerDuplicateDetection(t *testing.T) {
	a := NewAckManager(0)
	if !a.OnPacketReceived(7, true, 0) {
		t.Fatal("first receive reported duplicate")
	}
	if a.OnPacketReceived(7, true, time.Millisecond) {
		t.Fatal("duplicate not detected")
	}
	if !a.IsDuplicate(7) || a.IsDuplicate(8) {
		t.Fatal("IsDuplicate broken")
	}
}

func TestAckManagerCapsRangesAt256(t *testing.T) {
	a := NewAckManager(0)
	for i := 0; i < 600; i += 2 {
		a.OnPacketReceived(wire.PacketNumber(i), true, 0)
	}
	ack := a.BuildAck(time.Millisecond)
	if len(ack.Ranges) != wire.MaxAckRanges {
		t.Fatalf("ranges %d", len(ack.Ranges))
	}
	if ack.LargestAcked() != 598 {
		t.Fatalf("largest %d", ack.LargestAcked())
	}
	if err := ack.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAckManagerLargestReceived(t *testing.T) {
	a := NewAckManager(0)
	if _, ok := a.LargestReceived(); ok {
		t.Fatal("fresh manager has largest")
	}
	a.OnPacketReceived(9, false, 0)
	a.OnPacketReceived(4, false, 0)
	if pn, ok := a.LargestReceived(); !ok || pn != 9 {
		t.Fatalf("largest %d ok=%v", pn, ok)
	}
}

func TestSpaceAccessors(t *testing.T) {
	s := newSpace()
	if s.LargestAcked() != wire.InvalidPacketNumber {
		t.Fatal("fresh space has largest acked")
	}
	if s.LargestSent() != 0 {
		t.Fatal("fresh space largest sent")
	}
	if _, ok := s.OldestUnackedSentTime(); ok {
		t.Fatal("fresh space has outstanding")
	}
	sent(s, 100, 5*time.Millisecond)
	sent(s, 100, 7*time.Millisecond)
	if s.LargestSent() != 2 {
		t.Fatalf("largest sent %d", s.LargestSent())
	}
	if ts, ok := s.OldestUnackedSentTime(); !ok || ts != 5*time.Millisecond {
		t.Fatalf("oldest %v ok=%v", ts, ok)
	}
	s.OnAck(ackOf(0), 20*time.Millisecond)
	if s.LargestAcked() != 0 {
		t.Fatalf("largest acked %v", s.LargestAcked())
	}
	if ts, _ := s.OldestUnackedSentTime(); ts != 7*time.Millisecond {
		t.Fatalf("oldest after ack %v", ts)
	}
}

func TestForceAckAndHasACKable(t *testing.T) {
	a := NewAckManager(0)
	a.ForceAck() // nothing received yet: must stay quiet
	if a.ShouldSendAck(0) {
		t.Fatal("ForceAck with nothing received queued an ack")
	}
	if a.HasACKablePackets() {
		t.Fatal("HasACKablePackets on empty manager")
	}
	a.OnPacketReceived(0, false, 0) // non-retransmittable: no ack owed
	if a.ShouldSendAck(time.Hour) {
		t.Fatal("non-retransmittable packet scheduled an ack")
	}
	a.ForceAck()
	if !a.ShouldSendAck(0) || !a.HasACKablePackets() {
		t.Fatal("ForceAck did not queue")
	}
}

func TestTrimCompactsInteriorGarbage(t *testing.T) {
	s := newSpace()
	for i := 0; i < 200; i++ {
		sent(s, 100, time.Duration(i)*time.Millisecond)
	}
	// Ack a large interior block: packets below it settle as lost via
	// the packet threshold, packets above stay outstanding; interior
	// compaction must bound the slice and keep accounting exact.
	s.OnAck(&wire.AckFrame{Ranges: []wire.AckRange{{Smallest: 50, Largest: 180}}}, 300*time.Millisecond)
	if got := len(s.Outstanding()); got != 19 {
		t.Fatalf("outstanding %d, want 19 (packets 181..199)", got)
	}
	if s.BytesInFlight() != 1900 {
		t.Fatalf("in flight %d", s.BytesInFlight())
	}
}
