package quic

import (
	"testing"
	"time"

	"mpquic/internal/apps"
	"mpquic/internal/core"
	"mpquic/internal/netem"
	"mpquic/internal/sim"
)

func TestSinglePathTransfer(t *testing.T) {
	clock := sim.NewClock()
	nw := netem.New(clock, sim.NewRand(1))
	nw.Connect("c:1", "s:443", netem.LinkConfig{RateMbps: 10, Delay: 15 * time.Millisecond, QueueDelay: 100 * time.Millisecond})
	lis := Listen(nw, DefaultConfig(), "s:443")
	apps.NewGetServer(lis)
	client := Dial(nw, DefaultConfig(), 5, "c:1", "s:443")
	var res *apps.GetResult
	apps.NewGetClient(client, 1<<20, func() time.Duration { return clock.Now().Duration() },
		func(r apps.GetResult) { res = &r })
	if err := clock.RunUntil(sim.Time(60 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("transfer did not finish")
	}
	if len(client.Paths()) != 1 {
		t.Fatalf("%d paths on a single-path connection", len(client.Paths()))
	}
	if client.Paths()[0].CC().Name() != "cubic" {
		t.Fatalf("baseline must run CUBIC, got %s", client.Paths()[0].CC().Name())
	}
}

func TestSanitizeForcesSinglePath(t *testing.T) {
	// Even a multipath config is coerced to the baseline shape.
	cfg := core.DefaultConfig() // multipath on
	clock := sim.NewClock()
	nw := netem.New(clock, sim.NewRand(2))
	nw.Connect("c:1", "s:443", netem.LinkConfig{RateMbps: 10, Delay: 10 * time.Millisecond, QueueDelay: 100 * time.Millisecond})
	lis := Listen(nw, cfg, "s:443")
	client := Dial(nw, cfg, 9, "c:1", "s:443")
	clock.RunUntil(sim.Time(2 * time.Second))
	if !client.HandshakeComplete() {
		t.Fatal("handshake failed")
	}
	if len(client.Paths()) != 1 || len(lis.Conns()[0].Paths()) != 1 {
		t.Fatal("sanitize failed to force one path")
	}
}
