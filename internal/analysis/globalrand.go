package analysis

import "strconv"

// globalrandBannedImports are randomness sources whose sequences are
// outside this repository's control: math/rand's global generator is
// process-global mutable state, math/rand/v2 reseeds per process, and
// crypto/rand is nondeterministic by definition. Simulation code must
// draw from the seeded, version-pinned sim.Rand (xorshift64*), whose
// stream is part of the experiment artifacts' identity.
var globalrandBannedImports = map[string]string{
	"math/rand":    "use the seeded sim.Rand; math/rand's global state breaks same-seed reproduction",
	"math/rand/v2": "use the seeded sim.Rand; math/rand/v2 auto-seeds per process",
	"crypto/rand":  "use the seeded sim.Rand; crypto/rand is nondeterministic by definition",
}

// GlobalRand forbids importing math/rand, math/rand/v2 and crypto/rand
// anywhere in the module. Every random draw in a simulation must come
// from a sim.Rand seeded by the scenario, or two runs of the same
// scenario diverge and the WSP grid stops being reproducible.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc: "forbid math/rand, math/rand/v2 and crypto/rand; all randomness " +
		"must flow from the scenario-seeded sim.Rand",
	Run: runGlobalRand,
}

func runGlobalRand(pass *Pass) (any, error) {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, banned := globalrandBannedImports[path]; banned {
				pass.Reportf(imp.Pos(), "import of %s: %s", path, why)
			}
		}
	}
	return nil, nil
}
