package trace

import (
	"encoding/json"
	"io"
	"time"
)

// Qlog renders events as qlog-compatible newline-delimited JSON: one
// JSON object per line, the first line a qlog trace header, every
// following line one event in the qlog draft shape
// {"time": <ms>, "name": "<category:event>", "data": {...}}.
//
// The mapping from this package's event vocabulary onto qlog event
// names (transport:packet_sent, recovery:metrics_updated,
// connectivity:path_status_updated, ...) is documented in
// OBSERVABILITY.md; multipath identifiers ride in data.path_id as in
// the qlog multipath extension draft.
//
// Determinism contract: output is a pure function of the event stream.
// Timestamps are the simulated clock carried in Event.Time (never wall
// time — the encoder passes `mpq-vet walltime`), encoding goes through
// fixed-field structs (no map iteration), and the header is emitted
// eagerly at construction, so same-seed runs produce byte-identical
// qlog files.
type Qlog struct {
	w   io.Writer
	enc *json.Encoder
	err error
}

// qlog headers and records. All structs below have a fixed field
// order, which is what makes the output byte-reproducible.

type qlogHeader struct {
	QlogVersion string        `json:"qlog_version"`
	QlogFormat  string        `json:"qlog_format"`
	Title       string        `json:"title,omitempty"`
	Trace       qlogTraceInfo `json:"trace"`
}

type qlogTraceInfo struct {
	VantagePoint qlogVantagePoint `json:"vantage_point"`
	CommonFields qlogCommonFields `json:"common_fields"`
}

type qlogVantagePoint struct {
	Type string `json:"type"`
}

type qlogCommonFields struct {
	ReferenceTime float64 `json:"reference_time"`
	TimeFormat    string  `json:"time_format"`
}

type qlogRecord struct {
	Time float64 `json:"time"`
	Name string  `json:"name"`
	Data any     `json:"data,omitempty"`
}

type qlogPacketHeader struct {
	PacketType   string `json:"packet_type"`
	PacketNumber uint64 `json:"packet_number"`
}

type qlogRawInfo struct {
	Length int `json:"length"`
}

// qlogPacketData shapes transport:packet_sent/packet_received and
// recovery:packet_lost.
type qlogPacketData struct {
	Header qlogPacketHeader `json:"header"`
	Raw    *qlogRawInfo     `json:"raw,omitempty"`
	PathID uint8            `json:"path_id"`
}

// qlogAckedData shapes recovery:packet_acked.
type qlogAckedData struct {
	PacketNumber uint64   `json:"packet_number"`
	PathID       uint8    `json:"path_id"`
	SmoothedRTT  *float64 `json:"smoothed_rtt,omitempty"`
}

// qlogMetricsData shapes recovery:metrics_updated.
type qlogMetricsData struct {
	PathID           uint8    `json:"path_id"`
	CongestionWindow int      `json:"congestion_window,omitempty"`
	SmoothedRTT      *float64 `json:"smoothed_rtt,omitempty"`
}

// qlogTimerData shapes recovery:loss_timer_updated (RTO expiry).
type qlogTimerData struct {
	EventType        string `json:"event_type"`
	TimerType        string `json:"timer_type"`
	PathID           uint8  `json:"path_id"`
	CongestionWindow int    `json:"congestion_window,omitempty"`
}

// qlogPathData shapes connectivity:path_assigned and
// connectivity:path_status_updated.
type qlogPathData struct {
	PathID     uint8  `json:"path_id"`
	PathStatus string `json:"path_status,omitempty"`
	Endpoints  string `json:"endpoints,omitempty"`
}

// qlogConnStateData shapes connectivity:connection_state_updated.
type qlogConnStateData struct {
	New     string `json:"new"`
	Trigger string `json:"trigger,omitempty"`
}

// qlogLinkData shapes the netem:link_* extension events (the emulator's
// link lifecycle has no standard qlog vocabulary; custom categories are
// explicitly allowed by the qlog draft).
type qlogLinkData struct {
	PathID uint8  `json:"path_id"`
	Detail string `json:"detail,omitempty"`
}

// NewQlog builds a qlog tracer writing to w. vantage names the traced
// endpoint ("client" or "server"; anything else is recorded verbatim).
// The trace header line is written immediately, before any event.
func NewQlog(w io.Writer, vantage string) *Qlog {
	q := &Qlog{w: w, enc: json.NewEncoder(w)}
	q.emit(qlogHeader{
		QlogVersion: "0.3",
		QlogFormat:  "JSON-SEQ",
		Title:       "mpquic simulation trace",
		Trace: qlogTraceInfo{
			VantagePoint: qlogVantagePoint{Type: vantage},
			CommonFields: qlogCommonFields{ReferenceTime: 0, TimeFormat: "relative"},
		},
	})
	return q
}

// Err returns the first write error, if any. Trace itself never fails;
// callers that need durability check Err after the run.
func (q *Qlog) Err() error { return q.err }

func (q *Qlog) emit(v any) {
	if q.err != nil {
		return
	}
	q.err = q.enc.Encode(v)
}

// ms renders a duration as the float milliseconds qlog expects.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// msPtr is ms for optional fields: nil when the duration is zero (no
// sample yet), so absent values are omitted instead of encoded as 0.
func msPtr(d time.Duration) *float64 {
	if d == 0 {
		return nil
	}
	v := ms(d)
	return &v
}

// QlogEventName maps one trace EventType onto its qlog event name.
// Unknown types map to "mpquic:<type>" so third-party events survive a
// round trip instead of being dropped.
func QlogEventName(t EventType) string {
	switch t {
	case PacketSent:
		return "transport:packet_sent"
	case PacketReceived:
		return "transport:packet_received"
	case PacketAcked:
		return "recovery:packet_acked"
	case PacketLost:
		return "recovery:packet_lost"
	case CwndUpdated:
		return "recovery:metrics_updated"
	case RTOFired:
		return "recovery:loss_timer_updated"
	case PathOpened:
		return "connectivity:path_assigned"
	case PathFailed, PathRecovered:
		return "connectivity:path_status_updated"
	case HandshakeDone, ConnClosed:
		return "connectivity:connection_state_updated"
	case SocketDegraded:
		return "live:socket_degraded"
	case SocketRebound:
		return "live:socket_rebound"
	case SocketFailed:
		return "live:socket_failed"
	case LinkDown:
		return "netem:link_down"
	case LinkUp:
		return "netem:link_up"
	case LinkReconfigured:
		return "netem:link_reconfigured"
	default:
		return "mpquic:" + string(t)
	}
}

// Trace implements Tracer.
func (q *Qlog) Trace(ev Event) {
	rec := qlogRecord{Time: ms(ev.Time), Name: QlogEventName(ev.Type)}
	switch ev.Type {
	case PacketSent, PacketReceived, PacketLost:
		data := qlogPacketData{
			Header: qlogPacketHeader{PacketType: "1RTT", PacketNumber: ev.PN},
			PathID: ev.Path,
		}
		if ev.Size > 0 {
			data.Raw = &qlogRawInfo{Length: ev.Size}
		}
		rec.Data = data
	case PacketAcked:
		rec.Data = qlogAckedData{PacketNumber: ev.PN, PathID: ev.Path, SmoothedRTT: msPtr(ev.SRTT)}
	case CwndUpdated:
		rec.Data = qlogMetricsData{PathID: ev.Path, CongestionWindow: ev.Cwnd, SmoothedRTT: msPtr(ev.SRTT)}
	case RTOFired:
		rec.Data = qlogTimerData{EventType: "expired", TimerType: "pto", PathID: ev.Path, CongestionWindow: ev.Cwnd}
	case PathOpened:
		rec.Data = qlogPathData{PathID: ev.Path, PathStatus: "available", Endpoints: ev.Detail}
	case PathFailed:
		rec.Data = qlogPathData{PathID: ev.Path, PathStatus: "potentially_failed"}
	case PathRecovered:
		rec.Data = qlogPathData{PathID: ev.Path, PathStatus: "available"}
	case HandshakeDone:
		rec.Data = qlogConnStateData{New: "handshake_complete"}
	case ConnClosed:
		rec.Data = qlogConnStateData{New: "closed", Trigger: ev.Detail}
	case SocketDegraded:
		rec.Data = qlogPathData{PathID: ev.Path, PathStatus: "degraded", Endpoints: ev.Detail}
	case SocketRebound:
		rec.Data = qlogPathData{PathID: ev.Path, PathStatus: "available", Endpoints: ev.Detail}
	case SocketFailed:
		rec.Data = qlogPathData{PathID: ev.Path, PathStatus: "failed", Endpoints: ev.Detail}
	case LinkDown, LinkUp, LinkReconfigured:
		rec.Data = qlogLinkData{PathID: ev.Path, Detail: ev.Detail}
	default:
		rec.Data = qlogLinkData{PathID: ev.Path, Detail: ev.Detail}
	}
	q.emit(rec)
}
