// Package livebroken is a deliberately broken miniature of the live
// driver loop. TestLiveInvariantsPinned asserts that confine,
// ringsafety and blocking EACH flag at least one of the bugs below —
// if an analyzer regresses into passing everything, that test fails.
// (No // want comments: the meta-test checks per-analyzer diagnostic
// counts, not positions.)
package livebroken

import "sync"

type driver struct {
	//mpq:confined run-loop
	stats int
	mu    sync.Mutex
	//mpq:crossing
	//mpq:ring
	freeCh chan []byte
	//mpq:crossing
	recvCh chan []byte
}

// Run reintroduces every regression the analyzers exist to prevent:
// it blocks outside a waitpoint, takes a lock on the hot path, and
// touches a recycled ring buffer.
//
//mpq:entry run-loop
func (d *driver) Run() {
	for {
		b := <-d.freeCh // blocking: bare receive, no waitpoint
		d.mu.Lock()     // blocking: mutex on the hot path
		d.stats++
		d.freeCh <- b
		_ = b[0] // ringsafety: use after recycle
		d.mu.Unlock()
	}
}

// Poke touches run-loop state from the any-goroutine domain.
func (d *driver) Poke() {
	d.stats++ // confine: confined member outside its domain
}
