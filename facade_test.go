package mpquic_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"mpquic"
)

func twoPathSpec(seed uint64) mpquic.TwoPathConfig {
	return mpquic.TwoPathConfig{
		Path0: mpquic.PathSpec{CapacityMbps: 10, RTT: 30 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
		Path1: mpquic.PathSpec{CapacityMbps: 10, RTT: 40 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
		Seed:  seed,
	}
}

// A transfer whose every path dies mid-run cannot finish: Download must
// report that as ErrTimeout, not hang or return a zero result.
func TestDownloadTimeoutOnKilledPaths(t *testing.T) {
	net := mpquic.NewTwoPathNetwork(twoPathSpec(1))
	server := net.Listen(mpquic.DefaultConfig())
	net.ServeGet(server)
	client := net.Dial(mpquic.DefaultConfig(), 42)

	// Both paths fail one second into the transfer.
	net.At(time.Second, func() {
		net.KillPath(0)
		net.KillPath(1)
	})

	_, err := net.DownloadWith(client, 64<<20, mpquic.DownloadOpts{Deadline: 30 * time.Second})
	if !errors.Is(err, mpquic.ErrTimeout) {
		t.Fatalf("Download on killed paths: err = %v, want ErrTimeout", err)
	}
}

// Tracing is a pure observer: arming a qlog tracer on the endpoints
// and the links must not change the transfer's outcome, and the trace
// must carry qlog-framed events.
func TestFacadeTracingIsPureObserver(t *testing.T) {
	download := func(tracer mpquic.Tracer) mpquic.GetResult {
		net := mpquic.NewTwoPathNetwork(twoPathSpec(1))
		if tracer != nil {
			net.SetLinkTracer(tracer)
		}
		cfg := mpquic.DefaultConfig()
		cfg.Tracer = tracer
		server := net.Listen(cfg)
		net.ServeGet(server)
		client := net.Dial(cfg, 42)
		res, err := net.Download(client, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	plain := download(nil)
	var buf bytes.Buffer
	traced := download(mpquic.NewQlogTracer(&buf, "server"))
	if plain != traced {
		t.Fatalf("tracing changed the run:\nplain  %+v\ntraced %+v", plain, traced)
	}
	if !strings.Contains(buf.String(), `"qlog_version"`) ||
		!strings.Contains(buf.String(), "transport:packet_sent") {
		t.Fatalf("qlog trace missing expected framing:\n%.400s", buf.String())
	}
}

// EventLimit must be honored and surfaced as an error from the clock.
func TestEventLimitSurfacesError(t *testing.T) {
	cfg := twoPathSpec(1)
	cfg.EventLimit = 1000 // far too few events for a 4 MB transfer
	net := mpquic.NewTwoPathNetwork(cfg)
	server := net.Listen(mpquic.DefaultConfig())
	net.ServeGet(server)
	client := net.Dial(mpquic.DefaultConfig(), 42)
	_, err := net.Download(client, 4<<20)
	if err == nil || errors.Is(err, mpquic.ErrTimeout) {
		t.Fatalf("Download with tiny EventLimit: err = %v, want event-limit error", err)
	}
}

// Download with the default deadline completes and reports a sane
// result.
func TestDownloadMethodCompletes(t *testing.T) {
	net := mpquic.NewTwoPathNetwork(twoPathSpec(1))
	server := net.Listen(mpquic.DefaultConfig())
	net.ServeGet(server)
	client := net.Dial(mpquic.DefaultConfig(), 42)
	res, err := net.Download(client, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != 1<<20 || res.Elapsed() <= 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
}
