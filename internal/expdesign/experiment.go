package expdesign

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"mpquic/internal/stats"
	"mpquic/internal/trace"
)

// Repetitions is the paper's per-point repetition count (median of 3).
const Repetitions = 3

// Transfer sizes of the evaluation.
const (
	// LargeTransfer is the 20 MB download of §4.1.
	LargeTransfer = 20 << 20
	// ShortTransfer is the 256 KB download of §4.2.
	ShortTransfer = 256 << 10
)

// ScenarioResult holds the eight median runs of one scenario:
// {TCP, QUIC, MPTCP, MPQUIC} × {start on path 0, start on path 1}.
type ScenarioResult struct {
	Scenario Scenario
	// Indexed [protocol][startPath].
	Runs [4][2]RunResult
}

// GridConfig parameterizes a figure-grid execution.
type GridConfig struct {
	Class     Class
	Scenarios int    // per-class scenario count (253 in the paper)
	Size      uint64 // transfer size
	Reps      int    // repetitions per point (3 in the paper)
	Workers   int    // parallel simulations (defaults to GOMAXPROCS)
	// ArtifactPath, when non-empty, makes the grid checkpointed:
	// every completed scenario is appended to this JSONL file as it
	// finishes, and scenarios already on disk — keyed by (class seed,
	// scenario ID, size, reps) — are loaded instead of recomputed, so
	// an interrupted grid resumes where it stopped.
	ArtifactPath string
	// Shard/NumShards split the grid deterministically across
	// processes or machines: with NumShards > 1 only scenarios with
	// ID % NumShards == Shard run here. Point each shard at its own
	// ArtifactPath and merge them with LoadFigureData.
	Shard     int
	NumShards int
	// Progress, when non-nil, is called after each completed scenario
	// (including scenarios restored from the checkpoint).
	Progress func(done, total int)
	// SampleInterval, when positive, records per-path time series
	// (cwnd, smoothed RTT, bytes in flight, cumulative bytes) for every
	// run at this simulated-time cadence; each artifact carries its
	// median run's series in RunMetrics.Series. Zero disables sampling
	// and keeps artifacts byte-identical to sampling-free versions.
	SampleInterval time.Duration
	// FlightDir, when non-empty, arms a bounded flight recorder on
	// every run and writes a post-mortem JSONL dump into this directory
	// whenever a run ends anomalously (timeout, simulator abort, or an
	// RTO storm). Healthy runs produce no files. Dump writing is
	// best-effort: an I/O failure never fails the grid.
	FlightDir string
	// FlightEvents bounds the flight-recorder ring
	// (trace.DefaultFlightEvents when <= 0).
	FlightEvents int
	// FlightRTOStorm is the sender RTO count classifying a completed
	// run as an RTO storm (DefaultRTOStorm when 0).
	FlightRTOStorm uint64
}

// DefaultRTOStorm is the sender RTO count at which a completed run is
// still considered anomalous: a transfer that needed this many
// timeouts was effectively stalled repeatedly and is worth a
// post-mortem.
const DefaultRTOStorm = 10

// FigureData is the raw material of one figure: all scenario results
// of one (class, size) grid.
type FigureData struct {
	Class   string
	Size    uint64
	Results []ScenarioResult
}

// Seed derivation. Every simulated run is seeded as
//
//	seed = ClassSeed·1_000_003 + ScenarioID·8191 + proto·131 + start·17 + 1 + rep·7919
//
// where the rep term is added by RunMedian. The five constants are
// pairwise-distinct primes acting as mixed-radix strides: each
// coordinate moves the seed by a stride no combination of the other
// coordinates (over the evaluation's ranges — 253 scenarios, 4
// protocols, 2 initial paths, ≤ 3 repetitions, class seeds 101–104)
// can reproduce, so no two runs of the paper grid ever share a PRNG
// stream (TestRunSeedsCollisionFree enumerates all of them). Because
// each run's seed depends only on its own coordinates, results are
// reproducible point-wise: re-running any single (scenario, proto,
// start, rep) in isolation gives bit-identical output, which is what
// makes checkpointed grids resumable and shards mergeable.
func runSeed(class Class, scenarioID int, proto Protocol, start int) uint64 {
	return class.Seed*1_000_003 + uint64(scenarioID)*8191 +
		uint64(proto)*131 + uint64(start)*17 + 1
}

// runScenario executes one scenario's eight median runs, threading the
// grid's observability settings into each.
func runScenario(cfg GridConfig, sc Scenario) ScenarioResult {
	sr := ScenarioResult{Scenario: sc}
	for proto := ProtoTCP; proto <= ProtoMPQUIC; proto++ {
		for start := 0; start < 2; start++ {
			seed := runSeed(cfg.Class, sc.ID, proto, start)
			opts := RunOpts{SampleInterval: cfg.SampleInterval}
			if cfg.FlightDir != "" {
				opts.FlightEvents = cfg.FlightEvents
				if opts.FlightEvents <= 0 {
					opts.FlightEvents = trace.DefaultFlightEvents
				}
				opts.RTOStorm = cfg.FlightRTOStorm
				if opts.RTOStorm == 0 {
					opts.RTOStorm = DefaultRTOStorm
				}
				proto, start := proto, start
				opts.FlightDump = func(rep int, anomaly string, rec *trace.FlightRecorder) {
					writeFlightDump(cfg, sc, proto, start, rep, anomaly, rec)
				}
			}
			sr.Runs[proto][start] = RunMedianOpts(sc, proto, cfg.Size, start, cfg.Reps, seed, opts)
		}
	}
	return sr
}

// writeFlightDump persists one anomalous run's flight-recorder ring as
// <FlightDir>/flight-<class>-s<scenario>-<proto>-start<start>-rep<rep>-<anomaly>.jsonl.
// The name is a pure function of the run coordinates, so re-running a
// grid overwrites (never duplicates) its dumps. Best-effort: dump I/O
// failures are swallowed — a broken disk should not fail a grid that
// already has its results.
func writeFlightDump(cfg GridConfig, sc Scenario, proto Protocol, start, rep int, anomaly string, rec *trace.FlightRecorder) {
	name := fmt.Sprintf("flight-%s-s%d-%s-start%d-rep%d-%s.jsonl",
		cfg.Class.Name, sc.ID, proto, start, rep, anomaly)
	f, err := os.Create(filepath.Join(cfg.FlightDir, name))
	if err != nil {
		return
	}
	defer f.Close()
	_ = rec.DumpJSONL(f, anomaly)
}

// shardScenarios selects this process's share of the grid.
func shardScenarios(cfg GridConfig) []Scenario {
	all := GenerateScenarios(cfg.Class, cfg.Scenarios)
	if cfg.NumShards <= 1 {
		return all
	}
	var mine []Scenario
	for _, sc := range all {
		if sc.ID%cfg.NumShards == cfg.Shard {
			mine = append(mine, sc)
		}
	}
	return mine
}

// RunGrid executes the grid for one class: every scenario × 4
// protocols × 2 initial paths × Reps repetitions, in parallel. With
// ArtifactPath set the grid is checkpointed (completed scenarios are
// persisted in scenario order as they finish — worker completion
// order never reaches the file — and skipped on restart); with NumShards > 1
// only this shard's scenarios run. The returned FigureData covers this
// shard only — merge shard artifacts with LoadFigureData.
func RunGrid(cfg GridConfig) (FigureData, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Reps <= 0 {
		cfg.Reps = Repetitions
	}
	if cfg.NumShards > 1 && (cfg.Shard < 0 || cfg.Shard >= cfg.NumShards) {
		return FigureData{}, fmt.Errorf("expdesign: shard %d out of range 0..%d", cfg.Shard, cfg.NumShards-1)
	}
	scenarios := shardScenarios(cfg)
	results := make([]ScenarioResult, len(scenarios))

	var cp *Checkpoint
	if cfg.ArtifactPath != "" {
		var err error
		if cp, err = OpenCheckpoint(cfg.ArtifactPath); err != nil {
			return FigureData{}, err
		}
		defer cp.Close()
	}

	// Resume: satisfy scenarios from the checkpoint, queue the rest.
	var pending []int
	for i, sc := range scenarios {
		if cp != nil {
			if sr, ok := cp.Lookup(cfg, sc); ok {
				results[i] = sr
				continue
			}
		}
		pending = append(pending, i)
	}
	done := len(scenarios) - len(pending)
	if cfg.Progress != nil && done > 0 {
		cfg.Progress(done, len(scenarios))
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var persistErr error
	// Workers complete scenarios in wall-clock order, which is not
	// deterministic; the checkpoint must append in scenario order so
	// same-seed runs produce byte-identical artifacts and a resumed
	// run always sees a clean prefix. Completed records wait in
	// `results` until every lower-index pending scenario has been
	// persisted (written indexes into pending, which is ascending).
	written := 0
	completed := make([]bool, len(scenarios))
	jobs := make(chan int)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				sr := runScenario(cfg, scenarios[i])
				results[i] = sr
				mu.Lock()
				completed[i] = true
				if cp != nil {
					for written < len(pending) && completed[pending[written]] {
						if err := cp.Append(cfg, results[pending[written]]); err != nil && persistErr == nil {
							persistErr = err
						}
						written++
					}
				}
				done++
				// Progress runs under the lock: callbacks see done
				// strictly increasing and need no locking of their own.
				if cfg.Progress != nil {
					cfg.Progress(done, len(scenarios))
				}
				mu.Unlock()
			}
		}()
	}
	for _, i := range pending {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if persistErr != nil {
		return FigureData{}, persistErr
	}
	return FigureData{Class: cfg.Class.Name, Size: cfg.Size, Results: results}, nil
}

// TimeRatios extracts the Fig. 3/5/8/9 CDF inputs: for each of the
// 2×N (scenario, initial path) sims, the ratio of the TCP-family time
// to the QUIC-family time. Ratio > 1 means QUIC-family is faster.
func (fd FigureData) TimeRatios() (singlePath, multiPath []float64) {
	for _, sr := range fd.Results {
		for start := 0; start < 2; start++ {
			tTCP := sr.Runs[ProtoTCP][start].Elapsed.Seconds()
			tQUIC := sr.Runs[ProtoQUIC][start].Elapsed.Seconds()
			tMPTCP := sr.Runs[ProtoMPTCP][start].Elapsed.Seconds()
			tMPQUIC := sr.Runs[ProtoMPQUIC][start].Elapsed.Seconds()
			if tQUIC > 0 {
				singlePath = append(singlePath, tTCP/tQUIC)
			}
			if tMPQUIC > 0 {
				multiPath = append(multiPath, tMPTCP/tMPQUIC)
			}
		}
	}
	return singlePath, multiPath
}

// Family selects a single-path/multipath protocol pair for the
// experimental aggregation benefit.
type Family int

// The two protocol families compared in Figs. 4/6/7/10.
const (
	FamilyTCP  Family = iota // MPTCP vs TCP
	FamilyQUIC               // MPQUIC vs QUIC
)

func (f Family) String() string {
	if f == FamilyTCP {
		return "MPTCP vs. TCP"
	}
	return "MPQUIC vs. QUIC"
}

// EBen computes the experimental aggregation benefit of §4.1:
//
//	        Gm − Gmax
//	EBen = ───────────────   if Gm ≥ Gmax,
//	        (ΣGi) − Gmax
//
//	        Gm − Gmax
//	EBen = ───────────       otherwise,
//	          Gmax
//
// where Gi are the single-path goodputs, Gmax their maximum, and Gm
// the multipath goodput. 0 ⇒ multipath equals the best single path;
// 1 ⇒ full aggregation; −1 ⇒ the multipath transfer failed.
func EBen(gm float64, gs []float64) float64 {
	gmax, sum := 0.0, 0.0
	for _, g := range gs {
		sum += g
		if g > gmax {
			gmax = g
		}
	}
	if gmax <= 0 {
		return 0
	}
	if gm >= gmax {
		den := sum - gmax
		if den <= 0 {
			return 0
		}
		return (gm - gmax) / den
	}
	return (gm - gmax) / gmax
}

// AggBenefits extracts the Fig. 4/6/7/10 boxes for one family, split
// by whether the multipath connection started on the best or the
// worst performing path (measured by single-path goodput, as in [1]).
func (fd FigureData) AggBenefits(f Family) (bestFirst, worstFirst []float64) {
	spProto, mpProto := ProtoTCP, ProtoMPTCP
	if f == FamilyQUIC {
		spProto, mpProto = ProtoQUIC, ProtoMPQUIC
	}
	for _, sr := range fd.Results {
		gs := []float64{
			sr.Runs[spProto][0].GoodputBps,
			sr.Runs[spProto][1].GoodputBps,
		}
		best := 0
		if gs[1] > gs[0] {
			best = 1
		}
		for start := 0; start < 2; start++ {
			gm := sr.Runs[mpProto][start].GoodputBps
			e := EBen(gm, gs)
			if start == best {
				bestFirst = append(bestFirst, e)
			} else {
				worstFirst = append(worstFirst, e)
			}
		}
	}
	return bestFirst, worstFirst
}

// BenefitSummary renders the headline statistics the paper quotes for
// a family: the fraction of scenarios (both initial paths pooled)
// where multipath beats the best single path (EBen > 0).
func (fd FigureData) BenefitSummary(f Family) (fractionPositive float64, box stats.Box) {
	best, worst := fd.AggBenefits(f)
	all := append(append([]float64{}, best...), worst...)
	return stats.FractionAbove(all, 0), stats.BoxOf(all)
}
