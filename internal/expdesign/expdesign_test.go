package expdesign

import (
	"math"
	"testing"
	"time"

	"mpquic/internal/netem"
)

func TestGenerateScenariosRespectsRanges(t *testing.T) {
	for _, c := range Classes {
		scs := GenerateScenarios(c, 40)
		if len(scs) != 40 {
			t.Fatalf("%s: %d scenarios", c.Name, len(scs))
		}
		for _, sc := range scs {
			for _, p := range sc.Paths {
				if p.CapacityMbps < c.Ranges.CapacityMinMbps || p.CapacityMbps > c.Ranges.CapacityMaxMbps {
					t.Fatalf("%s capacity %v out of range", c.Name, p.CapacityMbps)
				}
				if p.RTT < 0 || p.RTT > c.Ranges.RTTMax {
					t.Fatalf("%s rtt %v out of range", c.Name, p.RTT)
				}
				if p.QueueDelay < 0 || p.QueueDelay > c.Ranges.QueueDelayMax {
					t.Fatalf("%s queue %v", c.Name, p.QueueDelay)
				}
				if c.Losses {
					if p.LossRate < 0 || p.LossRate > c.Ranges.LossMax {
						t.Fatalf("%s loss %v", c.Name, p.LossRate)
					}
				} else if p.LossRate != 0 {
					t.Fatalf("%s has loss in no-loss class", c.Name)
				}
			}
		}
	}
}

func TestGenerateScenariosDeterministic(t *testing.T) {
	a := GenerateScenarios(LowBDPNoLoss, 10)
	b := GenerateScenarios(LowBDPNoLoss, 10)
	for i := range a {
		if a[i].Paths != b[i].Paths {
			t.Fatal("non-deterministic scenarios")
		}
	}
}

func TestLogMapCoversDecades(t *testing.T) {
	if got := logMap(0, 0.1, 100); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("low end %v", got)
	}
	if got := logMap(1, 0.1, 100); math.Abs(got-100) > 1e-6 {
		t.Fatalf("high end %v", got)
	}
	mid := logMap(0.5, 0.1, 100)
	if mid < 3 || mid > 3.3 { // sqrt(0.1*100) ≈ 3.16
		t.Fatalf("log midpoint %v", mid)
	}
}

func TestEBenFormula(t *testing.T) {
	gs := []float64{10, 5}
	// Equal to best single path → 0.
	if e := EBen(10, gs); e != 0 {
		t.Fatalf("EBen(best)=%v", e)
	}
	// Full aggregation → 1.
	if e := EBen(15, gs); math.Abs(e-1) > 1e-12 {
		t.Fatalf("EBen(sum)=%v", e)
	}
	// Failure → −1.
	if e := EBen(0, gs); math.Abs(e+1) > 1e-12 {
		t.Fatalf("EBen(0)=%v", e)
	}
	// Halfway below best → −0.5.
	if e := EBen(5, gs); math.Abs(e+0.5) > 1e-12 {
		t.Fatalf("EBen(5)=%v", e)
	}
	// Better than the sum can exceed 1.
	if e := EBen(20, gs); e <= 1 {
		t.Fatalf("EBen(20)=%v", e)
	}
}

func TestRunSingleScenarioAllProtocols(t *testing.T) {
	sc2 := GenerateScenarios(LowBDPNoLoss, 3)[1]
	for proto := ProtoTCP; proto <= ProtoMPQUIC; proto++ {
		res := Run(sc2, proto, 256<<10, 0, 42)
		if !res.Completed {
			t.Fatalf("%v did not complete scenario %v", proto, sc2)
		}
		if res.Elapsed <= 0 || res.GoodputBps <= 0 {
			t.Fatalf("%v bogus result %+v", proto, res)
		}
	}
}

func TestRunStartPathMatters(t *testing.T) {
	// Strongly asymmetric scenario: single-path runs on path 0 vs 1
	// must differ markedly.
	sc := Scenario{ID: 1, Class: "asym"}
	sc.Paths[0] = pathSpec(50, 10*time.Millisecond, 50*time.Millisecond, 0)
	sc.Paths[1] = pathSpec(1, 100*time.Millisecond, 50*time.Millisecond, 0)
	fast := Run(sc, ProtoQUIC, 512<<10, 0, 1)
	slow := Run(sc, ProtoQUIC, 512<<10, 1, 1)
	if !fast.Completed || !slow.Completed {
		t.Fatal("runs incomplete")
	}
	if fast.Elapsed*3 > slow.Elapsed {
		t.Fatalf("start path ignored: fast=%v slow=%v", fast.Elapsed, slow.Elapsed)
	}
}

func TestRunMedianPicksMiddle(t *testing.T) {
	sc := GenerateScenarios(LowBDPNoLoss, 3)[0]
	res := RunMedian(sc, ProtoQUIC, 128<<10, 0, 3, 9)
	if !res.Completed {
		t.Fatal("median run incomplete")
	}
}

func TestSmallGridProducesFigureData(t *testing.T) {
	fd, err := RunGrid(GridConfig{
		Class:     LowBDPNoLoss,
		Scenarios: 4,
		Size:      256 << 10,
		Reps:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.Results) != 4 {
		t.Fatalf("%d results", len(fd.Results))
	}
	single, multi := fd.TimeRatios()
	if len(single) != 8 || len(multi) != 8 {
		t.Fatalf("ratios %d/%d, want 8/8", len(single), len(multi))
	}
	for _, r := range append(single, multi...) {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			t.Fatalf("bogus ratio %v", r)
		}
	}
	best, worst := fd.AggBenefits(FamilyQUIC)
	if len(best) != 4 || len(worst) != 4 {
		t.Fatalf("agg benefit split %d/%d", len(best), len(worst))
	}
	for _, e := range append(best, worst...) {
		if e < -1.5 || e > 2.5 || math.IsNaN(e) {
			t.Fatalf("EBen %v out of plausible range", e)
		}
	}
	frac, box := fd.BenefitSummary(FamilyQUIC)
	if math.IsNaN(frac) || box.N != 8 {
		t.Fatalf("summary %v %+v", frac, box)
	}
}

func TestDeadlineScalesWithSize(t *testing.T) {
	sc := Scenario{}
	sc.Paths[0] = pathSpec(0.1, 0, 0, 0)
	sc.Paths[1] = pathSpec(0.1, 0, 0, 0)
	d := deadlineFor(sc, ProtoQUIC, LargeTransfer, 0)
	// Ideal is ~1678 s; deadline must exceed it comfortably.
	if d < 2*1678*time.Second {
		t.Fatalf("deadline %v too tight", d)
	}
	small := deadlineFor(sc, ProtoQUIC, 1024, 0)
	if small < 2*time.Minute {
		t.Fatalf("floor missing: %v", small)
	}
	// Single-path deadline must track the path actually used.
	asym := Scenario{}
	asym.Paths[0] = pathSpec(100, 0, 0, 0)
	asym.Paths[1] = pathSpec(0.1, 0, 0, 0)
	slow := deadlineFor(asym, ProtoTCP, LargeTransfer, 1)
	if slow < 2*1678*time.Second {
		t.Fatalf("single-path deadline %v ignores start path", slow)
	}
	multi := deadlineFor(asym, ProtoMPQUIC, LargeTransfer, 1)
	if multi >= slow {
		t.Fatalf("multipath deadline should use the better path: %v", multi)
	}
}

func TestHandoverExperiment(t *testing.T) {
	hc := DefaultHandoverConfig()
	hc.Duration = 8 * time.Second
	res := RunHandover(hc)
	if len(res.Samples) < 15 {
		t.Fatalf("only %d samples", len(res.Samples))
	}
	if !res.ClientMarkedPF {
		t.Fatal("client did not mark the dead path potentially failed")
	}
	if !res.ServerSawPathsFrame {
		t.Fatal("PATHS frame did not reach the server")
	}
	// Pre-failure delays sit near the initial RTT; post-recovery near
	// the second path's RTT. One spike (the RTO) in between.
	var pre, post []time.Duration
	for _, s := range res.Samples {
		switch {
		case s.SentAt < hc.FailAt-time.Second:
			pre = append(pre, s.Delay)
		case s.SentAt > hc.FailAt+2*time.Second:
			post = append(post, s.Delay)
		}
	}
	if len(pre) == 0 || len(post) == 0 {
		t.Fatal("missing pre/post samples")
	}
	for _, d := range pre {
		if d > 60*time.Millisecond {
			t.Fatalf("pre-failure delay %v too high", d)
		}
	}
	for _, d := range post {
		if d > 100*time.Millisecond {
			t.Fatalf("post-recovery delay %v too high", d)
		}
	}
}

func TestEBenEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		gm   float64
		gs   []float64
		want float64
	}{
		// gmax <= 0: no working single path, nothing to compare against.
		{"no single-path goodput", 5, []float64{0, 0}, 0},
		{"no single paths at all", 5, nil, 0},
		{"negative goodputs ignored", 5, []float64{-1, -2}, 0},
		// sum == gmax: one single path carries everything, so the
		// aggregation denominator (ΣGi − Gmax) vanishes.
		{"single usable path, gm above", 8, []float64{4, 0}, 0},
		{"single usable path, gm equal", 4, []float64{4}, 0},
		// Failed multipath transfer: goodput ~0 maps to the −1 region.
		{"failed multipath", 0, []float64{4, 2}, -1},
		// Interior points of both branches.
		{"below best path", 2, []float64{4, 2}, -0.5},
		{"equals best path", 4, []float64{4, 2}, 0},
		{"full aggregation", 6, []float64{4, 2}, 1},
		{"half aggregation", 5, []float64{4, 2}, 0.5},
	}
	for _, c := range cases {
		if got := EBen(c.gm, c.gs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: EBen(%v, %v) = %v, want %v", c.name, c.gm, c.gs, got, c.want)
		}
	}
}

// pathSpec is a test helper.
func pathSpec(mbps float64, rtt, queue time.Duration, loss float64) netem.PathSpec {
	return netem.PathSpec{CapacityMbps: mbps, RTT: rtt, QueueDelay: queue, LossRate: loss}
}
