package netem

import (
	"testing"
	"time"

	"mpquic/internal/sim"
	"mpquic/internal/trace"
)

// dropEveryOther is a deterministic LossModel for hook tests.
type dropEveryOther struct{ n int }

func (m *dropEveryOther) Drop(int) bool {
	m.n++
	return m.n%2 == 0
}

func TestLossModelReplacesBernoulliDraw(t *testing.T) {
	clock := sim.NewClock()
	delivered := 0
	// LossRate 1 would drop everything under the built-in draw; the
	// installed model must take precedence.
	l := NewLink(clock, sim.NewRand(1), "t", LinkConfig{RateMbps: 8, Delay: 0, QueueDelay: time.Second, LossRate: 1},
		func(Datagram) { delivered++ })
	l.SetLossModel(&dropEveryOther{})
	for i := 0; i < 10; i++ {
		l.Send(dg("a", "b", 1000))
	}
	clock.Run()
	if delivered != 5 {
		t.Fatalf("delivered %d, want 5 (model drops every other packet)", delivered)
	}
	if l.Stats.RandomDrops != 5 {
		t.Fatalf("RandomDrops %d, want 5", l.Stats.RandomDrops)
	}
	// Removing the model restores the built-in draw (LossRate 1 -> all drop).
	l.SetLossModel(nil)
	l.Send(dg("a", "b", 1000))
	clock.Run()
	if delivered != 5 {
		t.Fatalf("delivered %d after model removal with LossRate=1, want 5", delivered)
	}
}

func TestReconfigureRederivesRateAndQueue(t *testing.T) {
	clock := sim.NewClock()
	var times []sim.Time
	l := NewLink(clock, sim.NewRand(1), "t", LinkConfig{RateMbps: 8, Delay: 0, QueueDelay: time.Second},
		func(Datagram) { times = append(times, clock.Now()) })
	// 8 Mbps: 1000 B serialize in 1 ms. Halve the rate mid-run: the
	// next packet takes 2 ms.
	l.Send(dg("a", "b", 1000))
	clock.At(sim.Time(time.Millisecond), func() {
		cfg := l.Config()
		cfg.RateMbps = 4
		l.Reconfigure(cfg)
		l.Send(dg("a", "b", 1000))
	})
	clock.Run()
	want := []sim.Time{sim.Time(1 * time.Millisecond), sim.Time(3 * time.Millisecond)}
	if len(times) != 2 || times[0] != want[0] || times[1] != want[1] {
		t.Fatalf("delivery times %v, want %v", times, want)
	}
	if got := l.QueueCapacityBytes(); got != 500_000 {
		t.Fatalf("queue capacity %dB after 4 Mbps x 1s reconfigure, want 500000B", got)
	}
}

func TestReconfigurePanicsOnNonPositiveRate(t *testing.T) {
	clock := sim.NewClock()
	l := NewLink(clock, sim.NewRand(1), "t", LinkConfig{RateMbps: 8, QueueDelay: time.Second}, func(Datagram) {})
	defer func() {
		if recover() == nil {
			t.Fatal("Reconfigure accepted rate 0")
		}
	}()
	l.Reconfigure(LinkConfig{RateMbps: 0})
}

func TestSetDownEmitsTransitionEventsOnce(t *testing.T) {
	clock := sim.NewClock()
	l := NewLink(clock, sim.NewRand(1), "t", LinkConfig{RateMbps: 8, QueueDelay: time.Second}, func(Datagram) {})
	ctr := trace.NewCounter()
	l.SetTracer(ctr)
	l.SetDown(true)
	l.SetDown(true) // idempotent: no second event
	l.SetDown(false)
	l.SetDown(false)
	if ctr.Counts[trace.LinkDown] != 1 || ctr.Counts[trace.LinkUp] != 1 {
		t.Fatalf("events down=%d up=%d, want 1/1", ctr.Counts[trace.LinkDown], ctr.Counts[trace.LinkUp])
	}
}

func TestJitterDelaysAndCanReorder(t *testing.T) {
	clock := sim.NewClock()
	var order []int
	var times []sim.Time
	l := NewLink(clock, sim.NewRand(1), "t", LinkConfig{RateMbps: 8000, Delay: 10 * time.Millisecond, QueueDelay: time.Second},
		func(d Datagram) { order = append(order, d.Size); times = append(times, clock.Now()) })
	l.SetJitter(20*time.Millisecond, sim.NewRand(7))
	sizes := []int{1001, 1002, 1003, 1004, 1005, 1006, 1007, 1008}
	for _, s := range sizes {
		l.Send(dg("a", "b", s))
	}
	clock.Run()
	if len(order) != len(sizes) {
		t.Fatalf("delivered %d, want %d", len(order), len(sizes))
	}
	reordered := false
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			reordered = true
		}
	}
	// At 8 Gbps the packets serialize ~1 µs apart; 20 ms uniform jitter
	// reorders them with overwhelming probability for this seed.
	if !reordered {
		t.Fatal("jitter of 20ms over back-to-back packets produced no reordering")
	}
	for i, at := range times {
		if at.Duration() < 10*time.Millisecond || at.Duration() > 31*time.Millisecond {
			t.Fatalf("packet %d arrived at %v, outside base+jitter window", i, at)
		}
	}

	// Same seeds -> identical arrival schedule (determinism).
	clock2 := sim.NewClock()
	var times2 []sim.Time
	l2 := NewLink(clock2, sim.NewRand(1), "t", LinkConfig{RateMbps: 8000, Delay: 10 * time.Millisecond, QueueDelay: time.Second},
		func(d Datagram) { times2 = append(times2, clock2.Now()) })
	l2.SetJitter(20*time.Millisecond, sim.NewRand(7))
	for _, s := range sizes {
		l2.Send(dg("a", "b", s))
	}
	clock2.Run()
	for i := range times {
		if times[i] != times2[i] {
			t.Fatalf("arrival %d differs across same-seed runs: %v vs %v", i, times[i], times2[i])
		}
	}
}

func TestEnqueuedBytesCountsAcceptedPackets(t *testing.T) {
	clock := sim.NewClock()
	l := NewLink(clock, sim.NewRand(1), "t", LinkConfig{RateMbps: 8, Delay: 0, QueueDelay: 5 * time.Millisecond},
		func(Datagram) {})
	for i := 0; i < 10; i++ {
		l.Send(dg("a", "b", 1000)) // queue bound 5000 B: half are tail-dropped
	}
	clock.Run()
	if l.Stats.EnqueuedBytes != 5000 {
		t.Fatalf("EnqueuedBytes %d, want 5000", l.Stats.EnqueuedBytes)
	}
	if l.Stats.QueueDrops != 5 {
		t.Fatalf("QueueDrops %d, want 5", l.Stats.QueueDrops)
	}
}

func TestTopologySetTracerCoversAllLinks(t *testing.T) {
	clock := sim.NewClock()
	tp := NewTwoPath(clock, sim.NewRand(1), [2]PathSpec{
		{CapacityMbps: 10, RTT: 30 * time.Millisecond, QueueDelay: 100 * time.Millisecond},
		{CapacityMbps: 10, RTT: 30 * time.Millisecond, QueueDelay: 100 * time.Millisecond},
	})
	ctr := trace.NewCounter()
	tp.SetTracer(ctr)
	tp.KillPath(0)
	tp.KillPath(1)
	if ctr.Counts[trace.LinkDown] != 4 {
		t.Fatalf("link_down events %d, want 4 (both directions of both paths)", ctr.Counts[trace.LinkDown])
	}
}

func TestPathLinksReturnsBothDirections(t *testing.T) {
	clock := sim.NewClock()
	tp := NewTwoPath(clock, sim.NewRand(1), [2]PathSpec{
		{CapacityMbps: 10, RTT: 30 * time.Millisecond, QueueDelay: 100 * time.Millisecond},
		{CapacityMbps: 10, RTT: 30 * time.Millisecond, QueueDelay: 100 * time.Millisecond},
	})
	for i := 0; i < 2; i++ {
		ls := tp.PathLinks(i)
		if len(ls) != 2 || ls[0] != tp.Fwd[i] || ls[1] != tp.Rev[i] {
			t.Fatalf("PathLinks(%d) = %v, want [Fwd Rev]", i, ls)
		}
	}
}
