package wire

import (
	"fmt"
	"sort"
	"time"
)

// MaxAckRanges caps the number of ranges one ACK frame can carry. The
// paper leans on this (256 ranges vs TCP's 2-3 SACK blocks) to explain
// QUIC's superior loss recovery (§4.1, low-BDP-losses).
const MaxAckRanges = 256

// AckRange is a closed interval [Smallest, Largest] of received packet
// numbers.
type AckRange struct {
	Smallest, Largest PacketNumber
}

// Len reports the number of packet numbers covered by the range.
func (r AckRange) Len() uint64 { return uint64(r.Largest-r.Smallest) + 1 }

// AckFrame acknowledges packets received on one path. The PathID field
// is the multipath extension: it lets acknowledgments for path i travel
// on any path (§3, Reliable Data Transmission).
type AckFrame struct {
	// PathID names the path whose packet-number space is acknowledged.
	// Only meaningful on multipath connections; 0 on single-path.
	PathID PathID
	// Ranges is sorted descending by Largest; Ranges[0].Largest is the
	// largest acknowledged packet number.
	Ranges []AckRange
	// AckDelay is the time between receiving the largest acknowledged
	// packet and sending this frame, letting the peer subtract
	// delayed-ack time from RTT samples (§2).
	AckDelay time.Duration
}

// LargestAcked returns the largest packet number the frame covers.
func (f *AckFrame) LargestAcked() PacketNumber {
	if len(f.Ranges) == 0 {
		return InvalidPacketNumber
	}
	return f.Ranges[0].Largest
}

// LowestAcked returns the smallest covered packet number.
func (f *AckFrame) LowestAcked() PacketNumber {
	if len(f.Ranges) == 0 {
		return InvalidPacketNumber
	}
	return f.Ranges[len(f.Ranges)-1].Smallest
}

// Acks reports whether pn is covered by the frame.
func (f *AckFrame) Acks(pn PacketNumber) bool {
	// Ranges are descending; binary search for the first range whose
	// Largest >= pn could be below.
	i := sort.Search(len(f.Ranges), func(i int) bool { return f.Ranges[i].Largest < pn })
	// Candidate is i-1? No: ranges with Largest >= pn are at indices < i.
	if i == 0 {
		return false
	}
	r := f.Ranges[i-1]
	return pn >= r.Smallest && pn <= r.Largest
}

// Validate checks range ordering invariants.
func (f *AckFrame) Validate() error {
	if len(f.Ranges) == 0 {
		return fmt.Errorf("wire: ACK frame with no ranges")
	}
	if len(f.Ranges) > MaxAckRanges {
		return fmt.Errorf("wire: ACK frame with %d ranges (max %d)", len(f.Ranges), MaxAckRanges)
	}
	for i, r := range f.Ranges {
		if r.Smallest > r.Largest {
			return fmt.Errorf("wire: ACK range %d inverted", i)
		}
		if i > 0 && r.Largest+1 >= f.Ranges[i-1].Smallest {
			return fmt.Errorf("wire: ACK ranges %d,%d overlap or touch", i-1, i)
		}
	}
	return nil
}

func (f *AckFrame) Type() FrameType       { return TypeAck }
func (f *AckFrame) Retransmittable() bool { return false }

func (f *AckFrame) EncodedSize() int {
	n := 1 + 1 // type + path id
	n += VarintLen(uint64(f.LargestAcked()))
	n += VarintLen(uint64(f.AckDelay / time.Microsecond))
	n += VarintLen(uint64(len(f.Ranges) - 1))
	n += VarintLen(f.Ranges[0].Len() - 1)
	for i := 1; i < len(f.Ranges); i++ {
		gap := uint64(f.Ranges[i-1].Smallest-f.Ranges[i].Largest) - 2
		n += VarintLen(gap) + VarintLen(f.Ranges[i].Len()-1)
	}
	return n
}

func (f *AckFrame) Append(b []byte) []byte {
	b = append(b, byte(TypeAck), byte(f.PathID))
	b = AppendVarint(b, uint64(f.LargestAcked()))
	b = AppendVarint(b, uint64(f.AckDelay/time.Microsecond))
	b = AppendVarint(b, uint64(len(f.Ranges)-1))
	b = AppendVarint(b, f.Ranges[0].Len()-1)
	for i := 1; i < len(f.Ranges); i++ {
		gap := uint64(f.Ranges[i-1].Smallest-f.Ranges[i].Largest) - 2
		b = AppendVarint(b, gap)
		b = AppendVarint(b, f.Ranges[i].Len()-1)
	}
	return b
}

func parseAckFrame(b []byte) (Frame, int, error) {
	if len(b) < 2 {
		return nil, 0, frameErr("ACK", ErrTruncated)
	}
	f := &AckFrame{PathID: PathID(b[1])}
	off := 2
	largest, n, err := ConsumeVarint(b[off:])
	if err != nil {
		return nil, 0, frameErr("ACK", err)
	}
	off += n
	delayUS, n, err := ConsumeVarint(b[off:])
	if err != nil {
		return nil, 0, frameErr("ACK", err)
	}
	off += n
	if delayUS > maxDurationUS {
		return nil, 0, frameErr("ACK", errDurationRange)
	}
	f.AckDelay = time.Duration(delayUS) * time.Microsecond
	extra, n, err := ConsumeVarint(b[off:])
	if err != nil {
		return nil, 0, frameErr("ACK", err)
	}
	off += n
	if extra >= MaxAckRanges {
		return nil, 0, fmt.Errorf("wire: ACK frame with %d ranges", extra+1)
	}
	firstLen, n, err := ConsumeVarint(b[off:])
	if err != nil {
		return nil, 0, frameErr("ACK", err)
	}
	off += n
	if firstLen > largest {
		return nil, 0, fmt.Errorf("wire: ACK first range underflows")
	}
	cur := AckRange{Smallest: PacketNumber(largest - firstLen), Largest: PacketNumber(largest)}
	f.Ranges = make([]AckRange, 0, extra+1)
	f.Ranges = append(f.Ranges, cur)
	for i := uint64(0); i < extra; i++ {
		gap, n, err := ConsumeVarint(b[off:])
		if err != nil {
			return nil, 0, frameErr("ACK", err)
		}
		off += n
		length, n, err := ConsumeVarint(b[off:])
		if err != nil {
			return nil, 0, frameErr("ACK", err)
		}
		off += n
		if uint64(cur.Smallest) < gap+2+length {
			return nil, 0, fmt.Errorf("wire: ACK range underflows")
		}
		largestNext := uint64(cur.Smallest) - gap - 2
		cur = AckRange{Smallest: PacketNumber(largestNext - length), Largest: PacketNumber(largestNext)}
		f.Ranges = append(f.Ranges, cur)
	}
	if err := f.Validate(); err != nil {
		return nil, 0, err
	}
	return f, off, nil
}

// BuildAckRanges converts a set of received packet numbers (any order,
// duplicates allowed) into maximal descending ranges, truncated to the
// MaxAckRanges highest ranges, mirroring what a QUIC receiver tracks.
func BuildAckRanges(pns []PacketNumber) []AckRange {
	if len(pns) == 0 {
		return nil
	}
	sorted := make([]PacketNumber, len(pns))
	copy(sorted, pns)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	var ranges []AckRange
	cur := AckRange{Smallest: sorted[0], Largest: sorted[0]}
	for _, pn := range sorted[1:] {
		switch {
		case pn == cur.Smallest: // duplicate
		case pn == cur.Smallest-1:
			cur.Smallest = pn
		default:
			ranges = append(ranges, cur)
			if len(ranges) == MaxAckRanges {
				return ranges
			}
			cur = AckRange{Smallest: pn, Largest: pn}
		}
	}
	return append(ranges, cur)
}
