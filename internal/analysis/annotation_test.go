package analysis_test

import (
	"testing"

	"mpquic/internal/analysis"
	"mpquic/internal/analysis/analysistest"
)

func TestAnnotation(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Annotation, "annotation")
}
