// Package maporder exercises the maporder analyzer: map iterations
// whose order reaches scheduling, transmission, result slices or float
// accumulations are flagged; the collect-keys-then-sort idiom and
// order-insensitive bodies are not.
package maporder

import (
	"sort"
	"time"

	"mpquic/internal/netem"
	"mpquic/internal/sim"
)

func schedules(c *sim.Clock, m map[int]func()) {
	for _, fn := range m { // want `map iteration order leaks into event scheduling`
		c.After(time.Millisecond, fn)
	}
}

func rearmsTimer(t *sim.Timer, m map[int]sim.Time) {
	for _, at := range m { // want `map iteration order leaks into event scheduling`
		t.Reset(at)
	}
}

func transmits(nw *netem.Network, m map[string]netem.Datagram) {
	for _, dg := range m { // want `map iteration order leaks into frame/datagram transmission`
		nw.Send(dg)
	}
}

func collects(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `map iteration order leaks into a slice that outlives the loop`
		out = append(out, v)
	}
	return out
}

func sums(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `map iteration order leaks into a floating-point accumulation`
		total += v
	}
	return total
}

func sumsSelfAssign(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `map iteration order leaks into a floating-point accumulation`
		total = total + v
	}
	return total
}

// sortedKeys is the sanctioned idiom: collect, sort, then iterate.
func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// counts is order-insensitive: integer addition commutes exactly.
func counts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// loopLocal appends to a slice that dies with each iteration.
func loopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var scratch []int
		scratch = append(scratch, vs...)
		n += len(scratch)
	}
	return n
}

// allowed demonstrates an audited suppression.
func allowed(m map[string]float64) float64 {
	var total float64
	//mpqvet:allow maporder exemplar suppression for the analyzer tests
	for _, v := range m {
		total += v
	}
	return total
}
