package walltime

import "time"

// Test files are a timing harness: wall-clock reads here are exempt,
// so this file carries no want comments.
func measure() time.Duration {
	start := time.Now()
	return time.Since(start)
}
