package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression annotation:
//
//	//mpqvet:allow <analyzer> <reason>
//
// placed on the flagged line or on the line directly above it. The
// analyzer name must match an analyzer in the suite and the reason is
// mandatory — suppressions are audited decisions, not escape hatches.
const allowPrefix = "mpqvet:allow"

// allowAnnotation is one //mpqvet:allow comment. It covers its own
// line (trailing comment) and the line below (comment on its own
// line).
type allowAnnotation struct {
	file     string
	line     int
	analyzer string
	matched  bool // suppressed at least one diagnostic this run
}

// covers reports whether the annotation suppresses a diagnostic at
// (file, line).
func (a *allowAnnotation) covers(file string, line int) bool {
	return a.file == file && (a.line == line || a.line+1 == line)
}

// collectAllows scans pkg's comments for //mpqvet:allow annotations.
// It returns the annotations and an error listing any malformed one
// (unknown analyzer, missing reason) — a bad allow must fail the
// build, or typos would silently disable checks.
func collectAllows(pkg *Package) ([]*allowAnnotation, error) {
	var allows []*allowAnnotation
	var bad []string
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
				if len(fields) < 2 {
					bad = append(bad, fmt.Sprintf("%s: //%s needs \"<analyzer> <reason>\"", pos, allowPrefix))
					continue
				}
				name := fields[0]
				if ByName(name) == nil {
					bad = append(bad, fmt.Sprintf("%s: //%s names unknown analyzer %q", pos, allowPrefix, name))
					continue
				}
				allows = append(allows, &allowAnnotation{file: pos.Filename, line: pos.Line, analyzer: name})
			}
		}
	}
	if len(bad) > 0 {
		return nil, fmt.Errorf("%s", strings.Join(bad, "\n"))
	}
	return allows, nil
}

// filterSuppressed drops diagnostics covered by an //mpqvet:allow
// annotation. ran names the analyzers that actually executed this run:
// an annotation for a ran analyzer that suppressed nothing is stale —
// the code it excused has been fixed or moved — and is itself an
// error, mirroring the malformed-annotation rule (an allow that does
// nothing is a latent hole, not a no-op). Malformed annotations
// surface as the returned error even when there are no diagnostics.
func filterSuppressed(pkg *Package, diags []Diagnostic, ran map[string]bool) ([]Diagnostic, error) {
	allows, err := collectAllows(pkg)
	if err != nil {
		return diags, err
	}
	if len(allows) == 0 {
		return diags, nil
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		suppressed := false
		for _, a := range allows {
			if a.analyzer == d.Analyzer && a.covers(pos.Filename, pos.Line) {
				a.matched = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	var stale []string
	for _, a := range allows {
		if !a.matched && ran[a.analyzer] {
			stale = append(stale, fmt.Sprintf("%s:%d: stale //%s %s: it suppresses no diagnostic; remove it",
				a.file, a.line, allowPrefix, a.analyzer))
		}
	}
	if len(stale) > 0 {
		return kept, fmt.Errorf("%s", strings.Join(stale, "\n"))
	}
	return kept, nil
}

// Position formats a diagnostic for terminal output.
func (d Diagnostic) Format(fset *token.FileSet) string {
	return fmt.Sprintf("%s: %s: %s", fset.Position(d.Pos), d.Analyzer, d.Message)
}
