package core_test

import (
	"testing"
	"time"

	"mpquic/internal/apps"
	"mpquic/internal/core"
	"mpquic/internal/netem"
	"mpquic/internal/sim"
	"mpquic/internal/trace"
)

// TestTracerReceivesLifecycleEvents: a traced transfer produces the
// expected event mix.
func TestTracerReceivesLifecycleEvents(t *testing.T) {
	cfg := core.DefaultConfig()
	counter := trace.NewCounter()
	cfg.Tracer = counter
	h := newHarness(t, cfg, core.DefaultConfig(), symSpecs(10, 20*time.Millisecond))
	apps.NewGetServer(h.listener)
	var res *apps.GetResult
	apps.NewGetClient(h.client, 1<<20, func() time.Duration { return h.clock.Now().Duration() },
		func(r apps.GetResult) { res = &r })
	h.run(t, 30*time.Second)
	if res == nil {
		t.Fatal("transfer failed")
	}
	if counter.Counts[trace.HandshakeDone] != 1 {
		t.Fatalf("handshake events: %d", counter.Counts[trace.HandshakeDone])
	}
	if counter.Counts[trace.PathOpened] != 2 {
		t.Fatalf("path events: %d", counter.Counts[trace.PathOpened])
	}
	if counter.Counts[trace.PacketSent] == 0 || counter.Counts[trace.PacketReceived] == 0 {
		t.Fatal("no packet events")
	}
	// The client mostly receives; sent events must cover both paths.
	if len(counter.ByPath) < 2 {
		t.Fatalf("events on %d paths", len(counter.ByPath))
	}
}

// TestTracerSeesLossesAndRTO under a dead path.
func TestTracerSeesLossesAndRTO(t *testing.T) {
	cfg := core.DefaultConfig()
	counter := trace.NewCounter()
	cfg.Tracer = counter
	// Path 0 has the lower RTT so requests stick to it until it dies.
	specs := [2]netem.PathSpec{
		{CapacityMbps: 10, RTT: 15 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
		{CapacityMbps: 10, RTT: 25 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
	}
	h := newHarness(t, cfg, core.DefaultConfig(), specs)
	apps.NewEchoServer(h.listener)
	apps.NewReqRespClient(h.client, h.clock, 6*time.Second)
	h.clock.At(h.clock.Now().Add(2*time.Second), func() { h.tp.KillPath(0) })
	h.run(t, 8*time.Second)
	if counter.Counts[trace.RTOFired] == 0 {
		t.Fatal("no RTO traced on the dead path")
	}
	if counter.Counts[trace.PathFailed] == 0 {
		t.Fatal("no PF event traced")
	}
}

// TestLIACongestionControlTransfer: the LIA extension completes and
// aggregates.
func TestLIACongestionControlTransfer(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.CC = core.CCLia
	h := newHarness(t, cfg, cfg, symSpecs(10, 30*time.Millisecond))
	apps.NewGetServer(h.listener)
	var res *apps.GetResult
	apps.NewGetClient(h.client, 4<<20, func() time.Duration { return h.clock.Now().Duration() },
		func(r apps.GetResult) { res = &r })
	h.run(t, 60*time.Second)
	if res == nil {
		t.Fatal("LIA transfer failed")
	}
	if res.GoodputBps() < 12e6 {
		t.Fatalf("LIA did not aggregate: %.2f Mbps", res.GoodputBps()/1e6)
	}
	srv := h.serverConn(t)
	if srv.Paths()[0].CC().Name() != "lia" {
		t.Fatalf("cc %s", srv.Paths()[0].CC().Name())
	}
}

// TestBLESTSchedulerAvoidsBlockingSlowPath: with a tiny connection
// window and wildly heterogeneous paths, BLEST parks less data on the
// slow path than the plain lowest-RTT scheduler.
func TestBLESTSchedulerAvoidsBlockingSlowPath(t *testing.T) {
	specs := [2]netem.PathSpec{
		{CapacityMbps: 20, RTT: 10 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
		{CapacityMbps: 1, RTT: 400 * time.Millisecond, QueueDelay: 400 * time.Millisecond},
	}
	slowPathBytes := func(sched core.SchedulerKind) uint64 {
		cfg := core.DefaultConfig()
		cfg.Scheduler = sched
		cfg.ConnWindow = 256 << 10
		cfg.StreamWindow = 256 << 10
		h := newHarness(t, cfg, cfg, specs)
		apps.NewGetServer(h.listener)
		var res *apps.GetResult
		apps.NewGetClient(h.client, 4<<20, func() time.Duration { return h.clock.Now().Duration() },
			func(r apps.GetResult) { res = &r })
		h.run(t, 300*time.Second)
		if res == nil {
			t.Fatalf("%v transfer failed", sched)
		}
		return h.serverConn(t).PathByID(1).SentBytes
	}
	blest := slowPathBytes(core.SchedBLEST)
	lowest := slowPathBytes(core.SchedLowestRTT)
	if blest >= lowest {
		t.Fatalf("BLEST sent %d bytes on the slow path, lowest-RTT sent %d", blest, lowest)
	}
}

// TestTailReinjectionCutsTail: when a path silently blackholes its
// forward direction mid-transfer, the data stranded there gates the
// transfer until the path's RTO fires — unless tail reinjection lets
// the healthy path deliver those bytes as soon as it runs dry.
func TestTailReinjectionCutsTail(t *testing.T) {
	specs := [2]netem.PathSpec{
		{CapacityMbps: 10, RTT: 50 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
		{CapacityMbps: 10, RTT: 50 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
	}
	run := func(tail bool) (time.Duration, uint64) {
		cfg := core.DefaultConfig()
		cfg.TailReinjection = tail
		h := newHarness(t, cfg, cfg, specs)
		apps.NewGetServer(h.listener)
		var res *apps.GetResult
		apps.NewGetClient(h.client, 512<<10, func() time.Duration { return h.clock.Now().Duration() },
			func(r apps.GetResult) { res = &r })
		h.clock.At(sim.Time(400*time.Millisecond), func() { h.tp.Fwd[1].SetDown(true) })
		h.run(t, 60*time.Second)
		if res == nil {
			t.Fatalf("transfer failed (tail=%v)", tail)
		}
		return res.Elapsed(), h.serverConn(t).Stats.TailReinjections
	}
	withTail, reinjections := run(true)
	withoutTail, zero := run(false)
	if zero != 0 {
		t.Fatal("reinjection fired while disabled")
	}
	if reinjections == 0 {
		t.Fatal("tail reinjection never fired")
	}
	// Reinjection must beat the RTO-gated recovery decisively (the
	// gap is roughly the dead path's remaining RTO delay).
	if withTail+100*time.Millisecond > withoutTail {
		t.Fatalf("tail reinjection did not cut the tail: %v vs %v", withTail, withoutTail)
	}
}

// TestPFProbingRecoversTemporarilyDeadPath: a path that fails and
// later heals is re-detected by PING probes, cleared of its
// potentially-failed state, and used again.
func TestPFProbingRecoversTemporarilyDeadPath(t *testing.T) {
	specs := [2]netem.PathSpec{
		{CapacityMbps: 10, RTT: 15 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
		{CapacityMbps: 10, RTT: 25 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
	}
	mp := core.DefaultConfig()
	h := newHarness(t, mp, mp, specs)
	apps.NewEchoServer(h.listener)
	rr := apps.NewReqRespClient(h.client, h.clock, 20*time.Second)
	// Path 0 dies at 2 s and heals at 6 s.
	h.clock.At(sim.Time(2*time.Second), func() { h.tp.KillPath(0) })
	h.clock.At(sim.Time(6*time.Second), func() {
		h.tp.Fwd[0].SetDown(false)
		h.tp.Rev[0].SetDown(false)
	})
	h.run(t, 25*time.Second)
	p0 := h.client.PathByID(0)
	if p0.PotentiallyFailed() {
		t.Fatal("healed path still potentially failed — probing broken")
	}
	// Traffic returns to the lower-RTT path: late samples run at its
	// ~16 ms delay again rather than path 1's ~26 ms.
	var late []time.Duration
	for _, s := range rr.Samples() {
		if s.SentAt > 15*time.Second {
			late = append(late, s.Delay)
		}
	}
	if len(late) == 0 {
		t.Fatal("no late samples")
	}
	for _, d := range late {
		if d > 20*time.Millisecond {
			t.Fatalf("late delay %v — traffic never returned to the healed path", d)
		}
	}
}

// TestTailReinjectionNoSignificantHarm: on an ordinary heterogeneous
// transfer the extension may fire but must not slow things down
// noticeably (the duplicates ride otherwise-idle window space).
func TestTailReinjectionNoSignificantHarm(t *testing.T) {
	specs := [2]netem.PathSpec{
		{CapacityMbps: 10, RTT: 20 * time.Millisecond, QueueDelay: 50 * time.Millisecond},
		{CapacityMbps: 5, RTT: 300 * time.Millisecond, QueueDelay: 100 * time.Millisecond},
	}
	run := func(tail bool) time.Duration {
		cfg := core.DefaultConfig()
		cfg.TailReinjection = tail
		h := newHarness(t, cfg, cfg, specs)
		apps.NewGetServer(h.listener)
		var res *apps.GetResult
		apps.NewGetClient(h.client, 4<<20, func() time.Duration { return h.clock.Now().Duration() },
			func(r apps.GetResult) { res = &r })
		h.run(t, 120*time.Second)
		if res == nil {
			t.Fatalf("transfer failed (tail=%v)", tail)
		}
		return res.Elapsed()
	}
	withTail := run(true)
	withoutTail := run(false)
	if float64(withTail) > float64(withoutTail)*1.02 {
		t.Fatalf("tail reinjection cost too much: %v vs %v", withTail, withoutTail)
	}
}

// TestZeroRTTSavesOneRoundTrip: with a cached server config the client
// places the request in its very first flight, completing a short
// transfer one RTT sooner than the 1-RTT handshake.
func TestZeroRTTSavesOneRoundTrip(t *testing.T) {
	run := func(zeroRTT bool) time.Duration {
		cfg := core.DefaultConfig()
		cfg.ZeroRTT = zeroRTT
		h := newHarness(t, cfg, cfg, symSpecs(10, 40*time.Millisecond))
		apps.NewGetServer(h.listener)
		var res *apps.GetResult
		apps.NewGetClient(h.client, 32<<10, func() time.Duration { return h.clock.Now().Duration() },
			func(r apps.GetResult) { res = &r })
		h.run(t, 10*time.Second)
		if res == nil {
			t.Fatalf("transfer failed (0rtt=%v)", zeroRTT)
		}
		return res.Elapsed()
	}
	zero := run(true)
	one := run(false)
	saved := one - zero
	// One RTT is 40 ms; allow serialization slack.
	if saved < 30*time.Millisecond || saved > 60*time.Millisecond {
		t.Fatalf("0-RTT saved %v, want ~1 RTT (40ms): %v vs %v", saved, zero, one)
	}
}

// TestZeroRTTWithCryptoAndWireMode: the resumption keys must agree on
// both sides under real AEAD and full serialization.
func TestZeroRTTWithCryptoAndWireMode(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.ZeroRTT = true
	cfg.EnableCrypto = true
	cfg.WireSerialization = true
	h := newHarness(t, cfg, cfg, symSpecs(10, 30*time.Millisecond))
	apps.NewGetServer(h.listener)
	var res *apps.GetResult
	apps.NewGetClient(h.client, 256<<10, func() time.Duration { return h.clock.Now().Duration() },
		func(r apps.GetResult) { res = &r })
	h.run(t, 10*time.Second)
	if res == nil {
		t.Fatal("0-RTT transfer with AEAD failed")
	}
}

// TestZeroRTTRejectedWithoutServerSupport: a server without the cached
// config cannot decrypt 0-RTT data; the connection must not complete
// (a real stack would fall back to 1-RTT — the model rejects).
func TestZeroRTTRejectedWithoutServerSupport(t *testing.T) {
	clientCfg := core.DefaultConfig()
	clientCfg.ZeroRTT = true
	clientCfg.EnableCrypto = true
	clientCfg.WireSerialization = true
	serverCfg := core.DefaultConfig()
	serverCfg.EnableCrypto = true
	serverCfg.WireSerialization = true
	h := newHarness(t, clientCfg, serverCfg, symSpecs(10, 30*time.Millisecond))
	apps.NewGetServer(h.listener)
	var res *apps.GetResult
	apps.NewGetClient(h.client, 32<<10, func() time.Duration { return h.clock.Now().Duration() },
		func(r apps.GetResult) { res = &r })
	h.run(t, 5*time.Second)
	if res != nil {
		t.Fatal("server without cached config accepted 0-RTT data")
	}
}
