package netem

import (
	"testing"
	"time"

	"mpquic/internal/sim"
)

func TestConnectAsymDirections(t *testing.T) {
	clock := sim.NewClock()
	n := New(clock, sim.NewRand(1))
	var aToB, bToA sim.Time
	n.Register("b", HandlerFunc(func(d Datagram) { aToB = clock.Now() }))
	n.Register("a", HandlerFunc(func(d Datagram) { bToA = clock.Now() }))
	// Asymmetric: fast downlink, slow uplink (an ADSL-like path).
	n.ConnectAsym("a", "b",
		LinkConfig{RateMbps: 8, Delay: 10 * time.Millisecond, QueueDelay: time.Second},
		LinkConfig{RateMbps: 0.8, Delay: 10 * time.Millisecond, QueueDelay: time.Second})
	n.Send(dg("a", "b", 1000)) // 1 ms tx + 10 ms
	n.Send(dg("b", "a", 1000)) // 10 ms tx + 10 ms
	clock.Run()
	if aToB != sim.Time(11*time.Millisecond) {
		t.Fatalf("a->b at %v", aToB)
	}
	if bToA != sim.Time(20*time.Millisecond) {
		t.Fatalf("b->a at %v", bToA)
	}
}

func TestLinkStatsAccounting(t *testing.T) {
	clock := sim.NewClock()
	l := NewLink(clock, sim.NewRand(2), "t",
		LinkConfig{RateMbps: 8, Delay: 0, QueueDelay: 3 * time.Millisecond}, func(Datagram) {})
	for i := 0; i < 10; i++ {
		l.Send(dg("a", "b", 1000))
	}
	clock.Run()
	if l.Stats.SentPackets+l.Stats.QueueDrops != 10 {
		t.Fatalf("stats don't add up: %+v", l.Stats)
	}
	if l.Stats.SentBytes != l.Stats.SentPackets*1000 {
		t.Fatalf("byte accounting: %+v", l.Stats)
	}
	if l.Stats.QueueDrops == 0 {
		t.Fatal("expected tail drops with a 3 ms queue")
	}
}

func TestQueueBytesDrainOverTime(t *testing.T) {
	clock := sim.NewClock()
	l := NewLink(clock, sim.NewRand(1), "t",
		LinkConfig{RateMbps: 8, Delay: 0, QueueDelay: time.Second}, func(Datagram) {})
	l.Send(dg("a", "b", 1000))
	l.Send(dg("a", "b", 1000))
	if l.QueueBytes() != 2000 {
		t.Fatalf("queue %d", l.QueueBytes())
	}
	clock.RunUntil(sim.Time(1500 * time.Microsecond)) // 1.5 packets serialized
	if l.QueueBytes() != 1000 {
		t.Fatalf("queue %d after partial drain", l.QueueBytes())
	}
	clock.Run()
	if l.QueueBytes() != 0 {
		t.Fatalf("queue %d after full drain", l.QueueBytes())
	}
}

func TestSetPathLossTakesEffectMidRun(t *testing.T) {
	clock := sim.NewClock()
	tp := NewTwoPath(clock, sim.NewRand(9), [2]PathSpec{
		{CapacityMbps: 100, RTT: 0, QueueDelay: time.Second},
		{CapacityMbps: 100, RTT: 0, QueueDelay: time.Second},
	})
	got := 0
	tp.Net.Register(tp.ServerAddrs[0], HandlerFunc(func(Datagram) { got++ }))
	send := func() { tp.Net.Send(dg(tp.ClientAddrs[0], tp.ServerAddrs[0], 100)) }
	for i := 0; i < 100; i++ {
		send()
	}
	clock.Run()
	if got != 100 {
		t.Fatalf("lossless phase dropped packets: %d", got)
	}
	tp.SetPathLoss(0, 1.0)
	for i := 0; i < 50; i++ {
		send()
	}
	clock.Run()
	if got != 100 {
		t.Fatalf("full loss did not drop: %d", got)
	}
}

func TestRouteLookup(t *testing.T) {
	clock := sim.NewClock()
	n := New(clock, sim.NewRand(1))
	fwd, rev := n.Connect("a", "b", LinkConfig{RateMbps: 1, QueueDelay: time.Second})
	if n.Route("a", "b") != fwd || n.Route("b", "a") != rev {
		t.Fatal("route lookup broken")
	}
	if n.Route("a", "c") != nil {
		t.Fatal("phantom route")
	}
	if fwd.Name() == "" || fwd.Config().RateMbps != 1 {
		t.Fatal("link accessors")
	}
}
