package core

import (
	"time"

	"mpquic/internal/cc"
	"mpquic/internal/netem"
	"mpquic/internal/recovery"
	"mpquic/internal/rtt"
	"mpquic/internal/wire"
)

// Path is one unidirectional-pair flow of a connection: a (local,
// remote) address pair with its own packet-number space, RTT estimator,
// ack state and congestion controller (§3, Fig. 1).
type Path struct {
	ID     wire.PathID
	Local  netem.Addr
	Remote netem.Addr

	space  *recovery.Space
	ackMgr *recovery.AckManager
	est    *rtt.Estimator
	cc     cc.Controller
	olia   *cc.OliaPath // non-nil when cc is an OLIA member

	// potentiallyFailed is the paper's PF state (§4.3): set after an
	// RTO fires with no network activity since the last transmission,
	// cleared when data is acknowledged on the path. The scheduler
	// skips PF paths unless every path is PF.
	potentiallyFailed bool
	// remotePF mirrors the peer's PF declaration from a PATHS frame.
	remotePF bool

	// lastRetransmittableSent and lastAckProgress anchor the RTO
	// deadline: the timer restarts on acknowledgment progress, so a
	// window's worth of in-flight data behind a bufferbloated queue
	// does not fire spurious timeouts while acks are still arriving.
	lastRetransmittableSent time.Duration
	lastAckProgress         time.Duration
	// lastActivity is the last receive time on this path.
	lastActivity time.Duration

	open bool
	// ctrl queues frames that must leave on this specific path
	// (per-path WINDOW_UPDATE copies, PATHS frames, acks ride along
	// separately).
	ctrl []wire.Frame

	// Stats
	SentPackets  uint64
	SentBytes    uint64
	RecvPackets  uint64
	RecvBytes    uint64
	AckedPackets uint64
	AckedBytes   uint64
}

func newPath(id wire.PathID, local, remote netem.Addr, est *rtt.Estimator, ctrl cc.Controller, oliaPath *cc.OliaPath) *Path {
	return &Path{
		ID:     id,
		Local:  local,
		Remote: remote,
		space:  recovery.NewSpace(est),
		ackMgr: recovery.NewAckManager(id),
		est:    est,
		cc:     ctrl,
		olia:   oliaPath,
		open:   true,
	}
}

// RTT returns the path's estimator.
func (p *Path) RTT() *rtt.Estimator { return p.est }

// Space returns the path's packet-number space.
func (p *Path) Space() *recovery.Space { return p.space }

// CC returns the path's congestion controller.
func (p *Path) CC() cc.Controller { return p.cc }

// PotentiallyFailed reports the local PF state.
func (p *Path) PotentiallyFailed() bool { return p.potentiallyFailed }

// RemotePF reports whether the peer flagged this path as failed.
func (p *Path) RemotePF() bool { return p.remotePF }

// Usable reports whether the scheduler may consider the path at all.
func (p *Path) Usable() bool { return p.open }

// cwndAvailable reports whether size more bytes fit the window.
func (p *Path) cwndAvailable(size int) bool {
	return p.space.BytesInFlight()+size <= p.cc.Cwnd()
}

// queueCtrl appends a frame to the path-pinned control queue.
func (p *Path) queueCtrl(f wire.Frame) { p.ctrl = append(p.ctrl, f) }

// rtoBase anchors the retransmission timer at the later of the oldest
// outstanding packet's send time and the last ack progress. Anchoring
// at the oldest (not newest) transmission means continued sending on a
// silent path cannot defer its own timeout — a blackholed path is
// detected one RTO after its acks stop.
func (p *Path) rtoBase() time.Duration {
	base := p.lastRetransmittableSent
	if t, ok := p.space.OldestUnackedSentTime(); ok {
		base = t
	}
	if p.lastAckProgress > base {
		return p.lastAckProgress
	}
	return base
}
