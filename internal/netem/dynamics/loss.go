package dynamics

import (
	"fmt"

	"mpquic/internal/sim"
)

// Bernoulli is the memoryless loss process — each packet is dropped
// independently with probability P. It reproduces exactly what a
// netem.Link does on its own with LinkConfig.LossRate, packaged as a
// LossModel so scripts can swap processes uniformly.
type Bernoulli struct {
	P    float64
	rand *sim.Rand
}

// NewBernoulli builds a Bernoulli loss model over its own PRNG.
func NewBernoulli(r *sim.Rand, p float64) *Bernoulli {
	return &Bernoulli{P: p, rand: r}
}

// Drop implements netem.LossModel.
func (b *Bernoulli) Drop(int) bool { return b.rand.Bernoulli(b.P) }

// GEConfig parameterizes a two-state Gilbert–Elliott loss process.
// The chain steps once per packet: from Good it moves to Bad with
// probability PGoodBad, from Bad back to Good with probability
// PBadGood; the packet is then dropped with the current state's loss
// probability. The stationary Bad-state share is
//
//	π_bad = PGoodBad / (PGoodBad + PBadGood)
//
// and the long-run average loss rate is
//
//	LossGood·(1−π_bad) + LossBad·π_bad.
//
// The mean sojourn in the Bad state — the expected burst length in
// packets when LossBad = 1 — is 1/PBadGood.
type GEConfig struct {
	PGoodBad float64 // per-packet P(Good → Bad)
	PBadGood float64 // per-packet P(Bad → Good)
	LossGood float64 // drop probability while Good (usually 0)
	LossBad  float64 // drop probability while Bad (usually 1)
}

// StationaryBad returns the long-run fraction of packets that see the
// Bad state.
func (c GEConfig) StationaryBad() float64 {
	if c.PGoodBad+c.PBadGood == 0 {
		return 0
	}
	return c.PGoodBad / (c.PGoodBad + c.PBadGood)
}

// AverageLoss returns the long-run packet loss rate of the process.
func (c GEConfig) AverageLoss() float64 {
	pb := c.StationaryBad()
	return c.LossGood*(1-pb) + c.LossBad*pb
}

// GEFromAverage builds the canonical bursty configuration matching a
// target long-run loss rate: drops happen only in the Bad state
// (LossBad = 1, LossGood = 0), bursts last meanBurstPkts packets on
// average, and the stationary Bad share equals avgLoss — so the model
// is directly comparable to a Bernoulli process of the same rate,
// differing only in how the drops clump.
func GEFromAverage(avgLoss, meanBurstPkts float64) GEConfig {
	if avgLoss < 0 || avgLoss >= 1 {
		panic(fmt.Sprintf("dynamics: GE average loss %v out of [0,1)", avgLoss))
	}
	if meanBurstPkts < 1 {
		meanBurstPkts = 1
	}
	pbg := 1 / meanBurstPkts
	return GEConfig{
		PGoodBad: pbg * avgLoss / (1 - avgLoss),
		PBadGood: pbg,
		LossGood: 0,
		LossBad:  1,
	}
}

// GilbertElliott is the two-state bursty loss process of Gilbert
// (1960) and Elliott (1963), the standard model for wireless-style
// correlated loss. It starts in the Good state.
type GilbertElliott struct {
	cfg  GEConfig
	rand *sim.Rand
	bad  bool

	// Packets and Drops count the process's decisions, for tests and
	// reports.
	Packets, Drops uint64
}

// NewGilbertElliott builds the process over its own PRNG. One instance
// serves exactly one link (the chain state is per-link).
func NewGilbertElliott(r *sim.Rand, cfg GEConfig) *GilbertElliott {
	return &GilbertElliott{cfg: cfg, rand: r}
}

// Config returns the process parameters.
func (g *GilbertElliott) Config() GEConfig { return g.cfg }

// Bad reports the current chain state.
func (g *GilbertElliott) Bad() bool { return g.bad }

// Drop implements netem.LossModel: one chain step, then a loss draw in
// the resulting state.
func (g *GilbertElliott) Drop(int) bool {
	if g.bad {
		if g.rand.Bernoulli(g.cfg.PBadGood) {
			g.bad = false
		}
	} else {
		if g.rand.Bernoulli(g.cfg.PGoodBad) {
			g.bad = true
		}
	}
	p := g.cfg.LossGood
	if g.bad {
		p = g.cfg.LossBad
	}
	g.Packets++
	if g.rand.Bernoulli(p) {
		g.Drops++
		return true
	}
	return false
}
