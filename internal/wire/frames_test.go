package wire

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// roundTrip encodes f, checks EncodedSize against the actual output,
// parses it back, and returns the parsed frame.
func roundTrip(t *testing.T, f Frame) Frame {
	t.Helper()
	b := f.Append(nil)
	if len(b) != f.EncodedSize() {
		t.Fatalf("%T: EncodedSize %d != encoded %d", f, f.EncodedSize(), len(b))
	}
	got, n, err := ParseFrame(b)
	if err != nil {
		t.Fatalf("%T: parse: %v", f, err)
	}
	if n != len(b) {
		t.Fatalf("%T: consumed %d of %d", f, n, len(b))
	}
	return got
}

func TestPaddingFrameRoundTrip(t *testing.T) {
	got := roundTrip(t, &PaddingFrame{Length: 17}).(*PaddingFrame)
	if got.Length != 17 {
		t.Fatalf("length %d", got.Length)
	}
	if got.Retransmittable() {
		t.Fatal("padding must not be retransmittable")
	}
}

func TestPingFrameRoundTrip(t *testing.T) {
	got := roundTrip(t, &PingFrame{})
	if got.Type() != TypePing || !got.Retransmittable() {
		t.Fatal("ping broken")
	}
}

func TestStreamFrameRoundTrip(t *testing.T) {
	f := &StreamFrame{StreamID: 3, Offset: 100000, Data: []byte("hello multipath"), Fin: true}
	got := roundTrip(t, f).(*StreamFrame)
	if got.StreamID != 3 || got.Offset != 100000 || !got.Fin || !bytes.Equal(got.Data, f.Data) {
		t.Fatalf("got %+v", got)
	}
}

func TestStreamFrameStructModeSizeMatchesDataMode(t *testing.T) {
	withData := &StreamFrame{StreamID: 5, Offset: 42, Data: make([]byte, 1000)}
	structMode := &StreamFrame{StreamID: 5, Offset: 42, DataLen: 1000}
	if withData.EncodedSize() != structMode.EncodedSize() {
		t.Fatalf("struct mode size %d != data mode %d", structMode.EncodedSize(), withData.EncodedSize())
	}
	b := structMode.Append(nil)
	if len(b) != structMode.EncodedSize() {
		t.Fatal("struct-mode encoding size mismatch")
	}
	got, _, err := ParseFrame(b)
	if err != nil || got.(*StreamFrame).Len() != 1000 {
		t.Fatalf("struct-mode parse: %v", err)
	}
}

func TestStreamFrameMaxStreamDataLen(t *testing.T) {
	for _, budget := range []int{10, 50, 100, 1000, 1350} {
		f := &StreamFrame{StreamID: 3, Offset: 1 << 20}
		l := f.MaxStreamDataLen(budget)
		f.DataLen = l
		if f.EncodedSize() > budget {
			t.Fatalf("budget %d: frame encodes to %d", budget, f.EncodedSize())
		}
		f.DataLen = l + 1
		if l > 0 && f.EncodedSize() <= budget {
			t.Fatalf("budget %d: MaxStreamDataLen %d not maximal", budget, l)
		}
	}
}

func TestWindowUpdateFrameRoundTrip(t *testing.T) {
	f := &WindowUpdateFrame{StreamID: 0, Offset: 16 << 20}
	got := roundTrip(t, f).(*WindowUpdateFrame)
	if got.StreamID != 0 || got.Offset != 16<<20 {
		t.Fatalf("got %+v", got)
	}
}

func TestBlockedFrameRoundTrip(t *testing.T) {
	got := roundTrip(t, &BlockedFrame{StreamID: 7}).(*BlockedFrame)
	if got.StreamID != 7 {
		t.Fatalf("got %+v", got)
	}
}

func TestAddAddressFrameRoundTrip(t *testing.T) {
	f := &AddAddressFrame{AddrIndex: 2, Address: "[2001:db8::1]:443"}
	got := roundTrip(t, f).(*AddAddressFrame)
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("got %+v want %+v", got, f)
	}
}

func TestPathsFrameRoundTrip(t *testing.T) {
	f := &PathsFrame{Paths: []PathInfo{
		{PathID: 0, PotentiallyFailed: true, SRTT: 15 * time.Millisecond},
		{PathID: 3, SRTT: 25400 * time.Microsecond},
	}}
	got := roundTrip(t, f).(*PathsFrame)
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("got %+v want %+v", got, f)
	}
}

func TestConnectionCloseFrameRoundTrip(t *testing.T) {
	f := &ConnectionCloseFrame{ErrorCode: 42, Reason: "done"}
	got := roundTrip(t, f).(*ConnectionCloseFrame)
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("got %+v", got)
	}
}

func TestHandshakeFrameRoundTrip(t *testing.T) {
	f := &HandshakeFrame{Message: HandshakeSHLO, Payload: []byte{1, 2, 3, 4}}
	got := roundTrip(t, f).(*HandshakeFrame)
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("got %+v", got)
	}
}

func TestParseFrameErrors(t *testing.T) {
	if _, _, err := ParseFrame(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, _, err := ParseFrame([]byte{0x3f}); err == nil {
		t.Fatal("unknown type accepted")
	}
	// Truncated STREAM frame.
	f := &StreamFrame{StreamID: 1, Offset: 2, Data: []byte("abcdef")}
	b := f.Append(nil)
	if _, _, err := ParseFrame(b[:len(b)-3]); err == nil {
		t.Fatal("truncated stream frame accepted")
	}
}

func TestStreamFrameRoundTripProperty(t *testing.T) {
	f := func(sid uint32, offset uint32, data []byte, fin bool) bool {
		fr := &StreamFrame{StreamID: StreamID(sid), Offset: uint64(offset), Data: data, Fin: fin}
		b := fr.Append(nil)
		if len(b) != fr.EncodedSize() {
			return false
		}
		got, n, err := ParseFrame(b)
		if err != nil || n != len(b) {
			return false
		}
		g := got.(*StreamFrame)
		return g.StreamID == fr.StreamID && g.Offset == fr.Offset &&
			g.Fin == fin && bytes.Equal(g.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
