// Package expdesign implements the paper's experimental-design
// methodology (§4.1): WSP-selected scenarios over the Table 1
// parameter ranges, grouped into four classes (low/high BDP ×
// with/without random losses), executed for all four protocol stacks
// with both choices of initial path and three seeded repetitions, and
// summarized as the time-ratio CDFs and experimental aggregation
// benefit boxes of Figs. 3–10.
package expdesign

import (
	"fmt"
	"math"
	"time"

	"mpquic/internal/netem"
	"mpquic/internal/wsp"
)

// Ranges are the Table 1 experimental-design factor ranges.
type Ranges struct {
	CapacityMinMbps, CapacityMaxMbps float64
	RTTMax                           time.Duration
	QueueDelayMax                    time.Duration
	LossMax                          float64 // fraction, e.g. 0.025
}

// Table 1 of the paper.
var (
	// LowBDPRanges: capacity 0.1–100 Mbps, RTT 0–50 ms, queueing
	// 0–100 ms, loss 0–2.5 %.
	LowBDPRanges = Ranges{0.1, 100, 50 * time.Millisecond, 100 * time.Millisecond, 0.025}
	// HighBDPRanges: RTT 0–400 ms, queueing 0–2000 ms.
	HighBDPRanges = Ranges{0.1, 100, 400 * time.Millisecond, 2000 * time.Millisecond, 0.025}
)

// Class is one of the four scenario classes of §4.1.
type Class struct {
	Name   string
	Ranges Ranges
	Losses bool
	// Seed decorrelates the WSP designs of different classes.
	Seed uint64
}

// The four classes of the evaluation.
var (
	LowBDPNoLoss  = Class{Name: "low-BDP-no-loss", Ranges: LowBDPRanges, Losses: false, Seed: 101}
	LowBDPLosses  = Class{Name: "low-BDP-losses", Ranges: LowBDPRanges, Losses: true, Seed: 102}
	HighBDPNoLoss = Class{Name: "high-BDP-no-loss", Ranges: HighBDPRanges, Losses: false, Seed: 103}
	HighBDPLosses = Class{Name: "high-BDP-losses", Ranges: HighBDPRanges, Losses: true, Seed: 104}
)

// Classes lists all four in paper order.
var Classes = []Class{LowBDPNoLoss, LowBDPLosses, HighBDPNoLoss, HighBDPLosses}

// PaperScenarioCount is the per-class scenario count of §4.1.
const PaperScenarioCount = 253

// Scenario is one emulated two-path environment.
type Scenario struct {
	ID    int
	Class string
	Paths [2]netem.PathSpec
}

// String renders a compact description.
func (s Scenario) String() string {
	p := s.Paths
	return fmt.Sprintf("%s#%d [%.2fMbps/%v/%v/%.2f%% | %.2fMbps/%v/%v/%.2f%%]",
		s.Class, s.ID,
		p[0].CapacityMbps, p[0].RTT, p[0].QueueDelay, p[0].LossRate*100,
		p[1].CapacityMbps, p[1].RTT, p[1].QueueDelay, p[1].LossRate*100)
}

// dims is the design dimensionality: (capacity, RTT, queueing) per
// path, plus loss per path in lossy classes.
func dims(losses bool) int {
	if losses {
		return 8
	}
	return 6
}

// GenerateScenarios builds n WSP-selected scenarios for a class.
// Capacity is mapped logarithmically across its three decades (0.1–100
// Mbps); the remaining factors map linearly, exactly as an
// experimental-design study spreads heterogeneous ranges.
func GenerateScenarios(c Class, n int) []Scenario {
	pts := wsp.Select(n, dims(c.Losses), c.Seed)
	out := make([]Scenario, len(pts))
	for i, p := range pts {
		var sc Scenario
		sc.ID = i
		sc.Class = c.Name
		for path := 0; path < 2; path++ {
			spec := netem.PathSpec{
				CapacityMbps: logMap(p[path], c.Ranges.CapacityMinMbps, c.Ranges.CapacityMaxMbps),
				RTT:          time.Duration(p[2+path] * float64(c.Ranges.RTTMax)),
				QueueDelay:   time.Duration(p[4+path] * float64(c.Ranges.QueueDelayMax)),
			}
			if c.Losses {
				spec.LossRate = p[6+path] * c.Ranges.LossMax
			}
			sc.Paths[path] = spec
		}
		out[i] = sc
	}
	return out
}

// logMap maps x∈[0,1) onto [lo,hi] logarithmically.
func logMap(x, lo, hi float64) float64 {
	return lo * math.Pow(hi/lo, x)
}

// BestPath returns the index of the path with the higher capacity
// (tie-broken by lower RTT) — the a-priori "best" path used to label
// best/worst-path-first runs when single-path goodputs are equal.
func (s Scenario) BestPath() int {
	a, b := s.Paths[0], s.Paths[1]
	if a.CapacityMbps != b.CapacityMbps {
		if a.CapacityMbps > b.CapacityMbps {
			return 0
		}
		return 1
	}
	if a.RTT <= b.RTT {
		return 0
	}
	return 1
}
