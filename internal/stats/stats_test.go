package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Median([]float64{4, 1, 3, 2}) != 2.5 {
		t.Fatal("even median")
	}
	if !math.IsNaN(Median(nil)) {
		t.Fatal("empty median should be NaN")
	}
}

func TestPercentileEndpoints(t *testing.T) {
	xs := []float64{5, 1, 9, 3}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 9 {
		t.Fatal("endpoint percentiles")
	}
	if Percentile(xs, -5) != 1 || Percentile(xs, 200) != 9 {
		t.Fatal("clamping")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 25); got != 2.5 {
		t.Fatalf("got %v", got)
	}
}

func TestMeanAndFractionAbove(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Fatal("mean")
	}
	if FractionAbove(xs, 2) != 0.5 {
		t.Fatal("fraction above")
	}
	if FractionAbove(xs, 0) != 1 || FractionAbove(xs, 4) != 0 {
		t.Fatal("fraction extremes")
	}
}

func TestCDFMonotonic(t *testing.T) {
	xs := []float64{3, 1, 2, 2}
	cdf := CDF(xs)
	if len(cdf) != 4 {
		t.Fatal("length")
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].X < cdf[i-1].X || cdf[i].P <= cdf[i-1].P {
			t.Fatalf("not monotone at %d: %+v", i, cdf)
		}
	}
	if cdf[len(cdf)-1].P != 1 {
		t.Fatal("CDF must end at 1")
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if CDFAt(xs, 2.5) != 0.5 {
		t.Fatal("CDFAt")
	}
	if CDFAt(xs, 0) != 0 || CDFAt(xs, 10) != 1 {
		t.Fatal("CDFAt extremes")
	}
}

func TestBoxOf(t *testing.T) {
	b := BoxOf([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Median != 3 || b.Max != 5 || b.N != 5 {
		t.Fatalf("box %+v", b)
	}
	if b.Q1 != 2 || b.Q3 != 4 {
		t.Fatalf("quartiles %+v", b)
	}
}

// Property: percentile is monotone in p and bounded by the data range.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, aSeed, bSeed uint8) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := float64(aSeed) / 255 * 100
		b := float64(bSeed) / 255 * 100
		if a > b {
			a, b = b, a
		}
		pa, pb := Percentile(xs, a), Percentile(xs, b)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return pa <= pb && pa >= sorted[0] && pb <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
