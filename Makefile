# Convenience targets; see scripts/check.sh for the pre-commit gate and
# scripts/bench.sh for the perf harness.

.PHONY: build test vet escape doclint fuzz-smoke bench bench-smoke live-smoke chaos-smoke check

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...
	go run ./cmd/mpq-vet ./...

escape:
	go run ./cmd/mpq-escape ./...

doclint:
	go run ./scripts/doclint.go

fuzz-smoke:
	go test -run='^$$' -fuzz='^FuzzDecode$$' -fuzztime=30s ./internal/wire
	go test -run='^$$' -fuzz='^FuzzDecodeBorrowed$$' -fuzztime=30s ./internal/wire
	go test -run='^$$' -fuzz='^FuzzLiveIngress$$' -fuzztime=30s ./internal/live

bench:
	sh scripts/bench.sh

bench-smoke:
	sh scripts/bench.sh -smoke

live-smoke:
	sh scripts/live_smoke.sh

chaos-smoke:
	sh scripts/chaos_smoke.sh

check:
	sh scripts/check.sh
